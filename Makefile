GO ?= go
GOFMT ?= gofmt

.PHONY: build test vet fmt fmt-check lint vulncheck fuzz-smoke race cover verify bench bench-guarded experiments docs-check clean

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt:
	$(GOFMT) -w .

# Fails (and prints the offenders) when any file needs gofmt — the CI
# formatting gate.
fmt-check:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis beyond vet. Uses a staticcheck binary when one is on
# PATH; otherwise runs it through the module cache (needs network the
# first time — CI installs it, offline dev boxes can skip lint).
STATICCHECK_VERSION ?= 2025.1.1
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

# Known-vulnerability scan of the code paths the binaries reach. Uses
# a govulncheck binary when one is on PATH (CI installs it); otherwise
# runs it through the module cache (needs network the first time).
GOVULNCHECK_VERSION ?= latest
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	fi

# Short fuzzing bursts over the wire-format parsers: enough to catch a
# freshly introduced panic or round-trip break without burning minutes.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseOptions -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzReadHeader -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzChunkFrames -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzCacheOptions -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzPathOptions -fuzztime 10s ./internal/wire/

# The data path is lock-free by design; prove it under the race
# detector where the concurrency lives.
race:
	$(GO) test -race ./internal/obs/... ./internal/depot/... ./internal/cache/... ./internal/lsl/... ./internal/core/... ./internal/ctl/... ./internal/schedule/...

# Statement-coverage floors for the packages whose untested branches
# hurt the most (see coverage-floors.txt for which and why). The
# profile covers exactly the floored packages; cmd/covercheck fails on
# any floor breach or floored package missing from the profile.
COVER_OUT ?= cover.out
cover:
	$(GO) test -coverprofile $(COVER_OUT) -covermode atomic ./internal/wire/ ./internal/cache/ ./internal/schedule/ ./internal/core/
	$(GO) run ./cmd/covercheck -profile $(COVER_OUT) -floors coverage-floors.txt

# The full pre-commit gate.
verify: fmt-check build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The guarded benchmark set behind CI's perf-regression gate: repeated
# runs of the hot-path benchmarks, appended to $(BENCH_OUT) for
# benchstat and cmd/benchgate to compare across commits. Fixed
# -benchtime iteration counts keep base and head doing identical work.
BENCH_COUNT ?= 6
BENCH_OUT ?= bench.txt
bench-guarded:
	: > $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkPump$$|BenchmarkPumpChecksum$$|BenchmarkFairShare$$' -benchtime 100x -count $(BENCH_COUNT) ./internal/depot/ | tee -a $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkEmit$$' -count $(BENCH_COUNT) ./internal/obs/ | tee -a $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkStriping$$|BenchmarkMultipath$$' -benchtime 1x -count $(BENCH_COUNT) . | tee -a $(BENCH_OUT)

# Regenerate the canonical experiment log that EXPERIMENTS.md quotes
# (seed 1, paper iteration counts). Rerun after changing anything under
# internal/experiments, then re-check the numbers quoted per figure in
# EXPERIMENTS.md against the fresh experiments_output.txt.
experiments:
	$(GO) run ./cmd/lsl-exp -iterations 10 -measurements 20000 all > experiments_output.txt

# The documentation gates alone: godoc coverage of the protocol-facing
# packages and markdown link resolution (also run by CI's docs job).
docs-check:
	$(GO) test ./internal/docs/

clean:
	$(GO) clean ./...
