GO ?= go
GOFMT ?= gofmt

.PHONY: build test vet fmt fmt-check race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	$(GOFMT) -w .

# Fails (and prints the offenders) when any file needs gofmt — the CI
# formatting gate.
fmt-check:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The data path is lock-free by design; prove it under the race
# detector where the concurrency lives.
race:
	$(GO) test -race ./internal/obs/... ./internal/depot/... ./internal/lsl/... ./internal/core/...

# The full pre-commit gate.
verify: fmt-check build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
