GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The data path is lock-free by design; prove it under the race
# detector where the concurrency lives.
race:
	$(GO) test -race ./internal/obs/... ./internal/depot/... ./internal/lsl/... ./internal/core/...

# The full pre-commit gate.
verify: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
