// Package lsl reproduces "Improving Throughput for Grid Applications
// with Network Logistics" (Martin Swany, SC 2004): the Logistical
// Session Layer — split-TCP forwarding through storage depots "in" the
// network — and the Minimax-Path scheduler that decides when and where
// to relay.
//
// The implementation lives under internal/:
//
//   - internal/core      — top-level façade: an in-process deployment
//     (emulated WAN + depots + planner) with Transfer/Multicast APIs
//   - internal/wire      — the LSL header and option wire format
//   - internal/lsl       — session establishment over any net.Conn
//   - internal/depot     — the forwarding depot server
//   - internal/graph     — Minimax-Path trees with ε edge-equivalence,
//     route tables, and baselines
//   - internal/schedule  — the NWS-fed planner
//   - internal/nws       — Network Weather Service-style forecasting
//   - internal/topo      — testbed models (two-path, PlanetLab,
//     Abilene core)
//   - internal/netsim, internal/tcpsim, internal/pipesim — the
//     discrete-event TCP and depot-chain simulator behind the paper's
//     evaluation figures
//   - internal/experiments — one entry point per paper table/figure
//   - internal/emu       — a real-time emulated WAN for the wire stack
//
// The benchmarks in this directory regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the measured results
// and README.md for a tour.
package lsl
