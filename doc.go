// Package lsl reproduces "Improving Throughput for Grid Applications
// with Network Logistics" (Martin Swany, SC 2004): the Logistical
// Session Layer — split-TCP forwarding through storage depots "in" the
// network — and the Minimax-Path scheduler that decides when and where
// to relay.
//
// # Package map
//
// The implementation lives under internal/. Each entry names the
// DESIGN.md section that specifies it.
//
// Protocol and data path:
//
//   - internal/wire — the LSL header and TLV option wire format:
//     source routes, hop indexes, resume offsets, stripe annotations
//     (DESIGN.md §7 conventions, §9 resume, §10 striping)
//   - internal/lsl — session establishment over any net.Conn: Open,
//     OpenAt (resume), OpenStripe, OpenStore/Fetch, OpenGenerate
//     (DESIGN.md §3 inventory)
//   - internal/depot — the forwarding depot server: per-flow pump
//     with bounded occupancy, route tables, pattern generation and
//     verification, fault injection (DESIGN.md §3, §9)
//   - internal/cache — the depot-resident content-addressed chunk
//     cache: CRC-framed byte ranges keyed by content digest, served
//     back to repeat transfers (DESIGN.md §15)
//   - internal/bufpool — pooled fixed-size copy buffers shared by the
//     depot pump, sink read loops, and pattern writers (DESIGN.md §10)
//   - internal/core — top-level façade: an in-process deployment
//     (emulated WAN + depots + planner) with Transfer,
//     TransferReliable, TransferStriped, TransferCached, Multicast,
//     and async store/fetch APIs (DESIGN.md §3, §9, §10, §15)
//   - internal/emu — a real-time emulated WAN (latency, rate, window
//     shaping per connection) for the wire stack (DESIGN.md §3)
//
// Scheduling and forecasting:
//
//   - internal/graph — Minimax-Path trees with ε edge-equivalence,
//     route tables, and baseline schedulers (DESIGN.md §3)
//   - internal/schedule — the NWS-fed planner: Prime/Observe/Replan,
//     PathAvoiding for failover, StripedBottleneck and SuggestStripes
//     for stripe-aware capacity (DESIGN.md §3, §9, §10)
//   - internal/ctl — the distributed control plane: a controller that
//     probes the depot mesh, feeds the forecasters, and pushes
//     epoch-stamped route tables to table-driven depots (DESIGN.md §11)
//   - internal/nws — Network Weather Service-style forecasting
//     (DESIGN.md §6 calibration)
//   - internal/topo — testbed models: two-path, PlanetLab, Abilene
//     core (DESIGN.md §6)
//
// Simulation and evaluation:
//
//   - internal/netsim, internal/tcpsim, internal/pipesim,
//     internal/tcpmodel — the discrete-event TCP and depot-chain
//     simulators behind the paper's evaluation figures (DESIGN.md §4)
//   - internal/workload — transfer request generators for the
//     aggregate evaluation (DESIGN.md §4)
//   - internal/experiments — one entry point per paper table/figure,
//     plus the repository's ablations and the striping sweep
//     (DESIGN.md §4, §5, §10)
//
// Support:
//
//   - internal/retry — transient/fatal error classification and
//     backoff policies (DESIGN.md §9)
//   - internal/obs — live telemetry: trace events, metrics registry,
//     session tables, HTTP endpoints (DESIGN.md §8)
//   - internal/trace — sequence-trace series and rendering
//     (DESIGN.md §8)
//   - internal/simtime — simulated clocks and scaled durations
//     (DESIGN.md §7)
//   - internal/stats — means, quantiles, box statistics (DESIGN.md §4)
//
// The commands under cmd/ (lsl-depot, lsl-xfer, lsl-ctl, lsl-sched,
// lsl-exp) are documented flag by flag in docs/CLI.md;
// docs/ARCHITECTURE.md draws the layer diagram these packages form,
// and docs/OPERATIONS.md is the operator's runbook for a real mesh.
//
// The benchmarks in this directory regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the measured results
// and README.md for a tour.
package lsl
