// Multicast staging: the LSL header's synchronous application-layer
// multicast option (Section 2). One source stages a dataset to four
// university sites at once; the depots on the union of the scheduled
// unicast paths fan the stream out, so shared path segments carry the
// bytes only once.
//
//	go run ./examples/multicast
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

func main() {
	t := topo.AbileneCore(topo.DefaultAbileneCore(), 5)
	sys, err := core.NewSystem(t, core.Config{TimeScale: 0.05, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	source := "pl1.univ01.edu"
	sinks := []string{"pl1.univ02.edu", "pl1.univ04.edu", "pl1.univ06.edu", "pl1.univ09.edu"}
	const size = 512 << 10

	res, err := sys.Multicast(source, sinks, size)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("staged %d KB from %s to %d sinks in %.2fs (aggregate %.1f KB/s)\n\n",
		size>>10, source, len(res.Leaves), res.Elapsed.Seconds(), res.Bandwidth/1024)
	fmt.Println("staging tree:")
	printTree(sys, res.Tree, 0)

	fmt.Println("\ndelivered to:")
	for _, l := range res.Leaves {
		fmt.Println("  -", l)
	}
}

func printTree(sys *core.System, n *wire.TreeNode, depth int) {
	name := n.Addr.String()
	for i := 0; i < sys.Topo.N(); i++ {
		if sys.Endpoint(i) == n.Addr {
			name = sys.Topo.Hosts[i].Name
			break
		}
	}
	fmt.Printf("%s%s\n", strings.Repeat("  ", depth+1), name)
	for _, c := range n.Children {
		printTree(sys, c, depth+1)
	}
}
