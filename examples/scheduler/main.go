// Scheduler walkthrough: build the paper's Figures 6-8 example graph
// and a synthetic PlanetLab testbed, run the Minimax-Path algorithm
// with and without ε edge-equivalence, and print the trees, one depot's
// route table, and the fraction of paths the scheduler relays.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/netlogistics/lsl/internal/experiments"
	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
)

func main() {
	// Part 1: the six-host example of Figures 6-8.
	fmt.Println("=== Tree shaping with edge equivalence (Figures 6-8) ===")
	fmt.Println(experiments.TreeComparison(0.1))

	// Part 2: a full 142-host testbed through the production planner.
	fmt.Println("=== Scheduling a 142-host PlanetLab-like testbed ===")
	t := topo.PlanetLab(topo.DefaultPlanetLab(), 7)
	planner, err := schedule.NewPlanner(t, schedule.DefaultEpsilon)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if err := planner.Prime(rng, 20); err != nil {
		log.Fatal(err)
	}
	if err := planner.Replan(); err != nil {
		log.Fatal(err)
	}

	frac, err := planner.RelayedFraction()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler chose depot routes for %.1f%% of the %d paths (paper: 26%%)\n",
		100*frac, t.N()*(t.N()-1))
	fmt.Printf("automatic epsilon from NWS forecast error: %.3f (paper suggests this; default is %.2f)\n\n",
		planner.AutoEpsilon(), schedule.DefaultEpsilon)

	// Show one relayed path and the first few entries of the source's
	// route table (the state a depot consumes).
	for s := 0; s < t.N(); s++ {
		tree, err := planner.Tree(s)
		if err != nil {
			log.Fatal(err)
		}
		for d := 0; d < t.N(); d++ {
			if s == d || len(tree.Relays(graph.NodeID(d))) == 0 {
				continue
			}
			path, err := planner.Path(s, d)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("example scheduled path:\n  ")
			for i, h := range path {
				if i > 0 {
					fmt.Print(" -> ")
				}
				fmt.Print(t.Hosts[h].Name)
			}
			fmt.Println()

			rt, err := planner.RouteTable(s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nroute table at %s holds %d destinations; e.g. %s is reached via %s\n",
				t.Hosts[s].Name, len(rt), t.Hosts[d].Name, t.Hosts[int(rt[graph.NodeID(d)])].Name)
			return
		}
	}
}
