// Grid data staging: the workload the paper's introduction motivates.
// A dataset produced at one university must be staged to several
// compute sites across an Abilene-like backbone before a distributed
// job can start. The example stages it twice — once over direct TCP,
// once over the scheduled depot routes — and reports the makespan
// improvement.
//
//	go run ./examples/gridstage
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/topo"
)

func main() {
	t := topo.AbileneCore(topo.DefaultAbileneCore(), 11)
	sys, err := core.NewSystem(t, core.Config{
		TimeScale: 0.05, // 20x compressed time
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	source := "pl1.univ00.edu"
	computeSites := []string{"pl1.univ03.edu", "pl1.univ05.edu", "pl1.univ08.edu"}
	const datasetBytes = 1 << 20 // per-site shard

	fmt.Printf("staging %d KB from %s to %d compute sites\n\n",
		datasetBytes>>10, source, len(computeSites))

	var directTotal, schedTotal time.Duration
	for _, site := range computeSites {
		d, err := sys.DirectTransfer(source, site, datasetBytes)
		if err != nil {
			log.Fatalf("direct to %s: %v", site, err)
		}
		s, err := sys.Transfer(source, site, datasetBytes)
		if err != nil {
			log.Fatalf("scheduled to %s: %v", site, err)
		}
		directTotal += d.Elapsed
		schedTotal += s.Elapsed
		fmt.Printf("%-18s direct %6.2fs   scheduled %6.2fs   speedup %.2fx   path %v\n",
			site, d.Elapsed.Seconds(), s.Elapsed.Seconds(),
			s.Bandwidth/d.Bandwidth, s.Path)
	}

	fmt.Printf("\nsequential staging makespan: direct %.2fs, scheduled %.2fs (%.2fx)\n",
		directTotal.Seconds(), schedTotal.Seconds(),
		directTotal.Seconds()/schedTotal.Seconds())

	// Asynchronous variant: the producer stages the dataset into a core
	// depot and goes away; compute sites fetch it when they come online
	// (the paper's asynchronous session mode).
	depotHost := "obs.kscy.abilene.net"
	stored, err := sys.StoreAt(source, depotHost, datasetBytes)
	if err != nil {
		log.Fatalf("async store: %v", err)
	}
	fmt.Printf("\nasync: stored session %s at %s in %.2fs via %v\n",
		stored.Session, depotHost, stored.Elapsed.Seconds(), stored.Path)
	for _, site := range computeSites {
		got, err := sys.FetchFrom(site, depotHost, stored.Session)
		if err != nil {
			log.Fatalf("async fetch to %s: %v", site, err)
		}
		fmt.Printf("async: %-18s fetched %d KB in %.2fs\n",
			site, got.Bytes>>10, got.Elapsed.Seconds())
	}
}
