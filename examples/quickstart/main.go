// Quickstart: stand up a three-host emulated Grid — two sites with
// 64 KB TCP windows 80 ms apart and a well-provisioned depot in the
// middle — and compare a direct transfer against the scheduled
// logistical route.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/topo"
)

func buildTopology() *topo.Topology {
	t, err := topo.New("quickstart", []topo.Host{
		{Name: "src.campus.edu", Site: "campus-a", SndBuf: 64 << 10, RcvBuf: 64 << 10},
		{Name: "depot.core.net", Site: "core", SndBuf: 8 << 20, RcvBuf: 8 << 20,
			Depot: true, ForwardRate: 100e6, PipelineBytes: 32 << 20},
		{Name: "dst.campus.edu", Site: "campus-b", SndBuf: 64 << 10, RcvBuf: 64 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	src := t.MustHost("src.campus.edu")
	mid := t.MustHost("depot.core.net")
	dst := t.MustHost("dst.campus.edu")
	// 80 ms end to end; the depot splits it into two 40 ms sublinks.
	t.SetLink(src, mid, topo.Link{RTT: 0.040, Capacity: 100e6, Loss: 1e-6})
	t.SetLink(mid, dst, topo.Link{RTT: 0.040, Capacity: 100e6, Loss: 1e-6})
	t.SetLink(src, dst, topo.Link{RTT: 0.080, Capacity: 100e6, Loss: 2e-6})
	t.MeasureNoise = 0.02
	return t
}

func main() {
	sys, err := core.NewSystem(buildTopology(), core.Config{
		TimeScale: 0.1, // run the 80 ms WAN at 10x speed
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	path, err := sys.PlannedPath("src.campus.edu", "dst.campus.edu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scheduled path:", path)

	const size = 512 << 10
	direct, err := sys.DirectTransfer("src.campus.edu", "dst.campus.edu", size)
	if err != nil {
		log.Fatal(err)
	}
	scheduled, err := sys.Transfer("src.campus.edu", "dst.campus.edu", size)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("direct:    %6.2f s  %8.2f KB/s  via %v\n",
		direct.Elapsed.Seconds(), direct.Bandwidth/1024, direct.Path)
	fmt.Printf("scheduled: %6.2f s  %8.2f KB/s  via %v\n",
		scheduled.Elapsed.Seconds(), scheduled.Bandwidth/1024, scheduled.Path)
	fmt.Printf("logistical speedup: %.2fx\n", scheduled.Bandwidth/direct.Bandwidth)
}
