package lsl

// One benchmark per table and figure of the paper's evaluation, plus
// ablation and microbenchmarks. Each figure benchmark runs the full
// experiment harness (at a reduced iteration count where the paper used
// ten runs) and reports the headline quantity of that figure as a
// custom metric, so `go test -bench . -benchmem` both times the
// regeneration and surfaces the reproduced result.

import (
	"math/rand"
	"testing"

	"github.com/netlogistics/lsl/internal/experiments"
	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpsim"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

// BenchmarkFig2 regenerates Figure 2 (direct vs LSL bandwidth,
// UCSB→UIUC, 1-64 MB) and reports the 64 MB speedup.
func BenchmarkFig2(b *testing.B) {
	var last experiments.BandwidthCurve
	for i := 0; i < b.N; i++ {
		c, err := experiments.Fig2(int64(i+1), 3)
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	n := len(last.Sizes) - 1
	b.ReportMetric(last.LSLMbit[n]/last.DirectMbit[n], "speedup64M")
	b.ReportMetric(last.LSLMbit[n], "lslMbit64M")
}

// BenchmarkFig3 regenerates Figure 3 (UCSB→UF, 1-128 MB).
func BenchmarkFig3(b *testing.B) {
	var last experiments.BandwidthCurve
	for i := 0; i < b.N; i++ {
		c, err := experiments.Fig3(int64(i+1), 3)
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	n := len(last.Sizes) - 1
	b.ReportMetric(last.LSLMbit[n]/last.DirectMbit[n], "speedup128M")
	b.ReportMetric(last.LSLMbit[n], "lslMbit128M")
}

// BenchmarkFig4 regenerates Figure 4 (sequence traces via Houston,
// sublink slopes nearly equal) and reports the slope ratio.
func BenchmarkFig4(b *testing.B) {
	var last experiments.SeqTraces
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(int64(i+1), 3)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Sub1Slope/last.Sub2Slope, "slopeRatio")
	b.ReportMetric(float64(last.MaxLead)/(1<<20), "leadMB")
}

// BenchmarkFig5 regenerates Figure 5 (sequence traces via Denver) and
// reports how close the sublink-1 lead comes to the 32 MB pipeline.
func BenchmarkFig5(b *testing.B) {
	var last experiments.SeqTraces
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(int64(i+1), 3)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.MaxLead)/(1<<20), "leadMB")
	b.ReportMetric(float64(last.DepotPipeline)/(1<<20), "pipelineMB")
}

// BenchmarkTabRTT regenerates the Section 3 RTT table.
func BenchmarkTabRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RTTs()
		if err != nil || len(rows) != 6 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkFig6to8Trees regenerates the Figures 6-8 tree comparison.
func BenchmarkFig6to8Trees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TreeComparison(0.1); len(out) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkFig9Aggregate regenerates the Figure 9/10 aggregate
// evaluation (reduced to 3000 measurements per iteration; the paper ran
// 362,895) and reports the grand-mean speedup and the relayed-path
// fraction (the paper's 26% statistic).
func BenchmarkFig9Aggregate(b *testing.B) {
	var last experiments.AggregateResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAggregate()
		cfg.Seed = int64(i + 1)
		cfg.Measurements = 3000
		cfg.ReplanEvery = 0
		res, err := experiments.Aggregate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var sum float64
	for _, row := range last.Rows {
		sum += row.Mean
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(sum/float64(len(last.Rows)), "meanSpeedup")
	}
	b.ReportMetric(100*last.RelayedFraction, "relayedPct")
}

// BenchmarkTabPercentile regenerates the crossover-percentile table
// (the paper's "percentile where the speedup becomes greater than 1")
// and reports its average across sizes.
func BenchmarkTabPercentile(b *testing.B) {
	var last experiments.AggregateResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAggregate()
		cfg.Seed = int64(i + 1)
		cfg.Measurements = 3000
		cfg.ReplanEvery = 0
		res, err := experiments.Aggregate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var sum, n float64
	for _, row := range last.Rows {
		if row.PctOK {
			sum += float64(row.PctOver)
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/n, "meanPct>1")
	}
}

// BenchmarkFig11Core regenerates the Figure 11 core-depot evaluation
// and reports the 16 MB median and maximum speedups.
func BenchmarkFig11Core(b *testing.B) {
	var last experiments.CoreResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultCore()
		cfg.Seed = int64(i + 1)
		cfg.Reps16 = 3
		cfg.Reps128 = 2
		res, err := experiments.Core(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[0].Box.Median, "median16M")
		b.ReportMetric(last.Rows[0].Box.Max, "max16M")
	}
}

// BenchmarkAblateEpsilon runs the ε sweep.
func BenchmarkAblateEpsilon(b *testing.B) {
	var rows []experiments.EpsilonRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.EpsilonSweep(int64(i+1), []float64{0, 0.1, 0.3}, 400)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 3 {
		b.ReportMetric(100*rows[0].RelayedFraction, "relayedPctEps0")
		b.ReportMetric(100*rows[1].RelayedFraction, "relayedPctEps.1")
	}
}

// BenchmarkAblateBuffer runs the depot-pipeline sweep.
func BenchmarkAblateBuffer(b *testing.B) {
	var rows []experiments.BufferRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.BufferSweep(int64(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].MaxLeadBytes)/(1<<20), "leadAt1MB")
	}
}

// BenchmarkAblateLoss runs the loss sweep and reports the speedup at
// the highest loss rate.
func BenchmarkAblateLoss(b *testing.B) {
	var rows []experiments.LossRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.LossSweep(int64(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[len(rows)-1].Speedup, "speedupHighLoss")
	}
}

// BenchmarkAblateBaseline compares the minimax metric against
// shortest-path and always-direct.
func BenchmarkAblateBaseline(b *testing.B) {
	var rows []experiments.BaselineRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.BaselineComparison(int64(i+1), 1200)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[0].MeanSpeedup, "minimax")
		b.ReportMetric(rows[1].MeanSpeedup, "shortestPath")
	}
}

// --- Microbenchmarks of the core algorithms and substrates ---

// BenchmarkMinimaxTree142 times one MMP tree build on a 142-host dense
// graph, the per-source unit of work of every replan.
func BenchmarkMinimaxTree142(b *testing.B) {
	t := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	p, err := schedule.NewPlanner(t, schedule.DefaultEpsilon)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := p.Prime(rng, 3); err != nil {
		b.Fatal(err)
	}
	if err := p.Replan(); err != nil {
		b.Fatal(err)
	}
	g := p.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := graph.MinimaxTree(g, graph.NodeID(i%g.N()), 0.1)
		if tree.Root < 0 {
			b.Fatal("bad tree")
		}
	}
}

// BenchmarkReplan142 times a full replan: matrix snapshot, site
// aggregation, and 142 tree builds.
func BenchmarkReplan142(b *testing.B) {
	t := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	p, err := schedule.NewPlanner(t, schedule.DefaultEpsilon)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := p.Prime(rng, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Replan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPSimTransfer64M times one simulated 64 MB transfer, the
// unit cost of the evaluation harness.
func BenchmarkTCPSimTransfer64M(b *testing.B) {
	cfg := tcpsim.Config{
		RTT:      simtime.Milliseconds(70),
		Capacity: 8e6,
		LossRate: 4e-5,
	}
	b.SetBytes(64 << 20)
	for i := 0; i < b.N; i++ {
		eng := netsim.New(int64(i + 1))
		if _, err := pipesim.Run(eng, pipesim.Direct(64<<20, "d", cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainSim64M times a relayed 64 MB chain simulation.
func BenchmarkChainSim64M(b *testing.B) {
	cfg := tcpsim.Config{RTT: simtime.Milliseconds(40), Capacity: 12e6, LossRate: 1e-5}
	b.SetBytes(64 << 20)
	for i := 0; i < b.N; i++ {
		eng := netsim.New(int64(i + 1))
		chain := pipesim.Relayed(64<<20, []pipesim.Hop{{TCP: cfg}, {TCP: cfg}}, []pipesim.Depot{{}})
		if _, err := pipesim.Run(eng, chain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeaderMarshal times LSL header encoding with a source route.
func BenchmarkHeaderMarshal(b *testing.B) {
	h := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeData,
		Src:     wire.MustEndpoint("10.0.0.1:7411"),
		Dst:     wire.MustEndpoint("10.0.0.2:7411"),
	}
	h.AddOption(wire.SourceRouteOption([]wire.Endpoint{
		wire.MustEndpoint("10.0.0.3:7411"),
		wire.MustEndpoint("10.0.0.4:7411"),
	}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := h.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var got wire.Header
		if err := got.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNWSForecast times one monitor update+forecast cycle.
func BenchmarkNWSForecast(b *testing.B) {
	t := topo.TwoPath()
	p, err := schedule.NewPlanner(t, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw := t.MeasuredBW(0, 3, rng)
		if err := p.Observe(topo.UCSB, topo.UIUC, bw); err != nil {
			b.Fatal(err)
		}
		_ = p.Monitor.Forecast(topo.UCSB, topo.UIUC)
	}
}

// BenchmarkExtHostAware runs the host-transit-aware scheduler
// comparison (the paper's future work) and reports both means.
func BenchmarkExtHostAware(b *testing.B) {
	var rows []experiments.HostAwareRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.HostAwareComparison(int64(i+1), 1500)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].MeanSpeedup, "paperSched")
		b.ReportMetric(rows[1].MeanSpeedup, "hostAware")
	}
}

// BenchmarkExtPSockets runs the parallel-vs-serial sockets comparison.
func BenchmarkExtPSockets(b *testing.B) {
	var rows []experiments.PSocketsRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.PSocketsComparison(int64(i+1), 16<<20, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Strategy == "LSL via 1 depot" {
			b.ReportMetric(r.Speedup, "lslSpeedup")
		}
		if r.Strategy == "parallel x2" {
			b.ReportMetric(r.Speedup, "px2Speedup")
		}
	}
}

// BenchmarkExtContention runs the depot-contention sweep and reports
// the solo and saturated per-session speedups.
func BenchmarkExtContention(b *testing.B) {
	var rows []experiments.ContentionRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.ContentionSweep(int64(i+1), []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[0].MeanSpeedup, "soloSpeedup")
		b.ReportMetric(rows[2].MeanSpeedup, "x16Speedup")
	}
}

// BenchmarkMultipath runs the disjoint-route aggregation sweep on the
// capacity-limited two-route testbed and reports single- and
// two-route throughput plus their ratio — the multipath acceptance
// quantity (aggregate must stay well above the best single route).
func BenchmarkMultipath(b *testing.B) {
	var rows []experiments.MultipathRow
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMultipath()
		cfg.Seed = int64(i + 1)
		cfg.Size = 4 << 20
		cfg.Reps = 2
		r, err := experiments.Multipath(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].Mbit, "mbit1")
		b.ReportMetric(rows[1].Mbit, "mbit2")
		b.ReportMetric(rows[1].Speedup, "speedup")
	}
}

// BenchmarkStriping runs the parallel-sublink sweep on the
// window-limited testbed and reports single- and 4-stripe throughput
// plus their ratio — the striped-transfer acceptance quantity.
func BenchmarkStriping(b *testing.B) {
	var rows []experiments.StripingRow
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultStriping()
		cfg.Seed = int64(i + 1)
		cfg.Size = 2 << 20
		cfg.Stripes = []int{1, 4}
		cfg.Reps = 2
		r, err := experiments.Striping(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 2 {
		b.ReportMetric(rows[0].Mbit, "mbit1")
		b.ReportMetric(rows[1].Mbit, "mbit4")
		b.ReportMetric(rows[1].Speedup, "speedup")
	}
}
