package wire

import (
	"bytes"
	"errors"
	"testing"
)

func ep(s string) Endpoint { return MustEndpoint(s) }

func TestRouteTableRoundTrip(t *testing.T) {
	entries := []RouteEntry{
		{Dst: ep("10.0.0.3:7411"), Next: ep("10.0.0.2:7411")},
		{Dst: ep("10.0.0.4:7411"), Next: ep("10.0.0.2:7411")},
		{Dst: ep("10.0.0.2:7411"), Next: ep("10.0.0.2:7411")},
	}
	opts, err := RouteTableOptions(entries)
	if err != nil {
		t.Fatalf("RouteTableOptions: %v", err)
	}
	if len(opts) != 1 {
		t.Fatalf("got %d options, want 1", len(opts))
	}
	got, err := ParseRouteTable(opts[0])
	if err != nil {
		t.Fatalf("ParseRouteTable: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	// Entries come back sorted by destination.
	for i := 1; i < len(got); i++ {
		if !lessEndpoint(got[i-1].Dst, got[i].Dst) {
			t.Fatalf("entries not sorted: %v before %v", got[i-1].Dst, got[i].Dst)
		}
	}
}

func TestRouteTableOptionsDeterministic(t *testing.T) {
	a := []RouteEntry{
		{Dst: ep("10.0.0.3:7411"), Next: ep("10.0.0.2:7411")},
		{Dst: ep("10.0.0.2:7411"), Next: ep("10.0.0.2:7411")},
	}
	b := []RouteEntry{a[1], a[0]} // same table, different order
	oa, err := RouteTableOptions(a)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := RouteTableOptions(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(oa) != len(ob) || !bytes.Equal(oa[0].Data, ob[0].Data) {
		t.Fatal("equal tables should serialize to equal bytes")
	}
}

func TestRouteTableChunking(t *testing.T) {
	n := maxRouteEntriesPerOption + 7
	entries := make([]RouteEntry, n)
	for i := range entries {
		e := Endpoint{IP: [4]byte{10, byte(i / 200), byte(i%200 + 1), 1}, Port: 7411}
		entries[i] = RouteEntry{Dst: e, Next: e}
	}
	opts, err := RouteTableOptions(entries)
	if err != nil {
		t.Fatalf("RouteTableOptions: %v", err)
	}
	if len(opts) != 2 {
		t.Fatalf("got %d options, want 2", len(opts))
	}
	h := &Header{Version: Version1, Type: TypeControl, Options: append(opts, TableEpochOption(3))}
	got, err := h.RouteEntries()
	if err != nil {
		t.Fatalf("RouteEntries: %v", err)
	}
	if len(got) != n {
		t.Fatalf("reassembled %d entries, want %d", len(got), n)
	}
	if h.TableEpoch() != 3 {
		t.Fatalf("TableEpoch = %d, want 3", h.TableEpoch())
	}
}

func TestRouteTableTooLarge(t *testing.T) {
	entries := make([]RouteEntry, MaxRouteEntries+1)
	for i := range entries {
		e := Endpoint{IP: [4]byte{10, byte(i >> 8), byte(i), 1}, Port: 7411}
		entries[i] = RouteEntry{Dst: e, Next: e}
	}
	if _, err := RouteTableOptions(entries); err == nil {
		t.Fatal("expected error for oversized table")
	}
}

func TestRouteTableEmpty(t *testing.T) {
	opts, err := RouteTableOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 1 {
		t.Fatalf("got %d options, want 1", len(opts))
	}
	got, err := ParseRouteTable(opts[0])
	if err != nil || len(got) != 0 {
		t.Fatalf("ParseRouteTable(empty) = %v, %v", got, err)
	}
}

func TestParseRouteTableMalformed(t *testing.T) {
	cases := []Option{
		{Kind: OptSourceRoute, Data: nil},                 // wrong kind
		{Kind: OptRouteTable, Data: make([]byte, 5)},      // not a multiple of 12
		{Kind: OptRouteTable, Data: make([]byte, 12)},     // zero endpoints
		{Kind: OptRouteTable, Data: make([]byte, 12*3+1)}, // trailing garbage
	}
	for i, o := range cases {
		if _, err := ParseRouteTable(o); !errors.Is(err, ErrBadOption) {
			t.Errorf("case %d: err = %v, want ErrBadOption", i, err)
		}
	}
}

func TestTableEpochRoundTrip(t *testing.T) {
	o := TableEpochOption(42)
	e, err := ParseTableEpoch(o)
	if err != nil || e != 42 {
		t.Fatalf("ParseTableEpoch = %d, %v", e, err)
	}
	if _, err := ParseTableEpoch(Option{Kind: OptTableEpoch, Data: []byte{1}}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("short epoch: err = %v, want ErrBadOption", err)
	}
	// Damaged epoch degrades to 0 via the header accessor.
	h := &Header{Options: []Option{{Kind: OptTableEpoch, Data: []byte{9}}}}
	if h.TableEpoch() != 0 {
		t.Fatalf("TableEpoch on damaged option = %d, want 0", h.TableEpoch())
	}
}

func TestHeaderRouteEntriesRejectsDamagedChunk(t *testing.T) {
	good, err := RouteTableOptions([]RouteEntry{{Dst: ep("10.0.0.2:1"), Next: ep("10.0.0.3:1")}})
	if err != nil {
		t.Fatal(err)
	}
	h := &Header{Options: append(good, Option{Kind: OptRouteTable, Data: []byte{1, 2, 3}})}
	if _, err := h.RouteEntries(); !errors.Is(err, ErrBadOption) {
		t.Fatalf("err = %v, want ErrBadOption", err)
	}
}
