package wire

import (
	"encoding/binary"
	"fmt"
)

// OptSessionWeight carries the session's fair-share weight: the
// relative bandwidth share the initiator requests when the session
// contends with others through a depot running the weighted
// deficit-round-robin scheduler. Depots forward the option untouched;
// a malformed or absent weight reads as 1 (an unreadable weight must
// never make a depot drop a session it can still serve).
const OptSessionWeight uint16 = 13

// DefaultSessionWeight is the share of a session that carries no
// weight option: every session is equal until an initiator asks for
// more.
const DefaultSessionWeight = 1

// SessionWeightOption encodes a fair-share weight. A weight of zero is
// promoted to DefaultSessionWeight at parse time, so initiators cannot
// encode a session that would starve itself.
func SessionWeightOption(weight uint16) Option {
	var data [2]byte
	binary.BigEndian.PutUint16(data[:], weight)
	return Option{Kind: OptSessionWeight, Data: data[:]}
}

// ParseSessionWeight decodes a session-weight option body. A weight of
// zero is malformed: the scheduler has no share to give a zero-weight
// flow.
func ParseSessionWeight(o Option) (uint16, error) {
	if o.Kind != OptSessionWeight || len(o.Data) != 2 {
		return 0, fmt.Errorf("%w: bad session weight", ErrBadOption)
	}
	w := binary.BigEndian.Uint16(o.Data)
	if w == 0 {
		return 0, fmt.Errorf("%w: session weight 0", ErrBadOption)
	}
	return w, nil
}

// SessionWeight returns the session's fair-share weight:
// DefaultSessionWeight when the header carries no weight option or the
// option is malformed, the carried weight otherwise.
func (h *Header) SessionWeight() int {
	if opt, ok := h.Option(OptSessionWeight); ok {
		if w, err := ParseSessionWeight(opt); err == nil {
			return int(w)
		}
	}
	return DefaultSessionWeight
}
