package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSourceRouteRoundTrip(t *testing.T) {
	hops := []Endpoint{
		MustEndpoint("10.0.0.1:1"),
		MustEndpoint("10.0.0.2:2"),
		MustEndpoint("10.0.0.3:3"),
	}
	got, err := ParseSourceRoute(SourceRouteOption(hops))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("hops = %v", got)
	}
	for i := range hops {
		if got[i] != hops[i] {
			t.Fatalf("hop %d = %v, want %v", i, got[i], hops[i])
		}
	}
}

func TestSourceRouteEmpty(t *testing.T) {
	got, err := ParseSourceRoute(SourceRouteOption(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty route: %v, %v", got, err)
	}
}

func TestSourceRouteErrors(t *testing.T) {
	if _, err := ParseSourceRoute(Option{Kind: OptBufferAdvert}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := ParseSourceRoute(Option{Kind: OptSourceRoute, Data: []byte{1, 2, 3}}); err == nil {
		t.Fatal("odd length accepted")
	}
}

func TestSourceRouteProperty(t *testing.T) {
	f := func(raw []byte) bool {
		n := len(raw) / 6
		hops := make([]Endpoint, n)
		for i := range hops {
			copy(hops[i].IP[:], raw[i*6:])
			hops[i].Port = uint16(raw[i*6+4])<<8 | uint16(raw[i*6+5])
		}
		got, err := ParseSourceRoute(SourceRouteOption(hops))
		if err != nil || len(got) != n {
			return false
		}
		for i := range hops {
			if got[i] != hops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferAdvert(t *testing.T) {
	got, err := ParseBufferAdvert(BufferAdvertOption(12345))
	if err != nil || got != 12345 {
		t.Fatalf("advert = %v, %v", got, err)
	}
	if _, err := ParseBufferAdvert(Option{Kind: OptBufferAdvert, Data: []byte{1}}); err == nil {
		t.Fatal("short advert accepted")
	}
}

func TestGenerate(t *testing.T) {
	got, err := ParseGenerate(GenerateOption(1 << 40))
	if err != nil || got != 1<<40 {
		t.Fatalf("generate = %v, %v", got, err)
	}
	if _, err := ParseGenerate(Option{Kind: OptGenerate, Data: []byte{1, 2}}); err == nil {
		t.Fatal("short generate accepted")
	}
}

func sampleTree() *TreeNode {
	return &TreeNode{
		Addr: MustEndpoint("10.0.0.1:1"),
		Children: []*TreeNode{
			{
				Addr: MustEndpoint("10.0.0.2:2"),
				Children: []*TreeNode{
					{Addr: MustEndpoint("10.0.0.3:3")},
					{Addr: MustEndpoint("10.0.0.4:4")},
				},
			},
			{Addr: MustEndpoint("10.0.0.5:5")},
		},
	}
}

func TestMulticastTreeRoundTrip(t *testing.T) {
	tree := sampleTree()
	opt, err := MulticastTreeOption(tree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMulticastTree(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 5 {
		t.Fatalf("size = %d", got.Size())
	}
	if got.Addr != tree.Addr {
		t.Fatal("root mismatch")
	}
	if len(got.Children) != 2 || len(got.Children[0].Children) != 2 {
		t.Fatalf("shape mismatch: %+v", got)
	}
	leaves := got.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v", leaves)
	}
	want := []Endpoint{
		MustEndpoint("10.0.0.3:3"),
		MustEndpoint("10.0.0.4:4"),
		MustEndpoint("10.0.0.5:5"),
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("leaf %d = %v, want %v", i, leaves[i], want[i])
		}
	}
}

func TestMulticastTreeSingleNode(t *testing.T) {
	root := &TreeNode{Addr: MustEndpoint("1.1.1.1:1")}
	opt, err := MulticastTreeOption(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMulticastTree(opt)
	if err != nil || got.Size() != 1 {
		t.Fatalf("single-node tree: %v, %v", got, err)
	}
	if ls := got.Leaves(); len(ls) != 1 || ls[0] != root.Addr {
		t.Fatalf("leaves = %v", ls)
	}
}

func TestMulticastTreeErrors(t *testing.T) {
	if _, err := MulticastTreeOption(nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := ParseMulticastTree(Option{Kind: OptSourceRoute}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := ParseMulticastTree(Option{Kind: OptMulticastTree, Data: []byte{1, 2}}); err == nil {
		t.Fatal("bad length accepted")
	}
	// Root must start at depth 0.
	bad := Option{Kind: OptMulticastTree, Data: []byte{1, 10, 0, 0, 1, 0, 1}}
	if _, err := ParseMulticastTree(bad); err == nil {
		t.Fatal("root at depth 1 accepted")
	}
	// Depth jump of 2.
	opt, _ := MulticastTreeOption(sampleTree())
	data := append([]byte(nil), opt.Data...)
	data[7] = 3 // second entry jumps from depth 0 to 3
	if _, err := ParseMulticastTree(Option{Kind: OptMulticastTree, Data: data}); err == nil {
		t.Fatal("depth jump accepted")
	}
}

func TestMulticastDeepChain(t *testing.T) {
	// A 50-deep chain round-trips.
	root := &TreeNode{Addr: MustEndpoint("10.0.0.1:1")}
	cur := root
	for i := 2; i <= 50; i++ {
		child := &TreeNode{Addr: Endpoint{IP: [4]byte{10, 0, byte(i), 1}, Port: 1}}
		cur.Children = []*TreeNode{child}
		cur = child
	}
	opt, err := MulticastTreeOption(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMulticastTree(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 50 {
		t.Fatalf("size = %d", got.Size())
	}
	if len(got.Leaves()) != 1 {
		t.Fatalf("leaves = %d", len(got.Leaves()))
	}
}

func TestStripeOptionsRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		count uint16
		index uint16
	}{
		{"two-stripes-first", 2, 0},
		{"two-stripes-second", 2, 1},
		{"mid-fan", 8, 3},
		{"max-count", ^uint16(0), 1234},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			count, err := ParseStripeCount(StripeCountOption(tc.count))
			if err != nil || count != tc.count {
				t.Fatalf("count = %d, %v; want %d", count, err, tc.count)
			}
			index, err := ParseStripeIndex(StripeIndexOption(tc.index))
			if err != nil || index != tc.index {
				t.Fatalf("index = %d, %v; want %d", index, err, tc.index)
			}
		})
	}
}

func TestStripeOptionsErrors(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		via  string // which parser
	}{
		{"count-wrong-kind", Option{Kind: OptStripeIndex, Data: []byte{0, 2}}, "count"},
		{"count-short", Option{Kind: OptStripeCount, Data: []byte{2}}, "count"},
		{"count-long", Option{Kind: OptStripeCount, Data: []byte{0, 0, 2}}, "count"},
		{"count-zero", Option{Kind: OptStripeCount, Data: []byte{0, 0}}, "count"},
		{"index-wrong-kind", Option{Kind: OptStripeCount, Data: []byte{0, 1}}, "index"},
		{"index-short", Option{Kind: OptStripeIndex, Data: []byte{1}}, "index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.via == "count" {
				_, err = ParseStripeCount(tc.opt)
			} else {
				_, err = ParseStripeIndex(tc.opt)
			}
			if err == nil {
				t.Fatalf("%s parser accepted %v", tc.via, tc.opt)
			}
		})
	}
}

func TestHeaderStripeHelpers(t *testing.T) {
	h := &Header{Version: Version1, Type: TypeData}
	if h.StripeCount() != 1 || h.StripeIndex() != 0 {
		t.Fatalf("fresh header: count=%d index=%d", h.StripeCount(), h.StripeIndex())
	}
	h.AddOption(StripeCountOption(4))
	h.AddOption(StripeIndexOption(2))
	if h.StripeCount() != 4 || h.StripeIndex() != 2 {
		t.Fatalf("striped header: count=%d index=%d", h.StripeCount(), h.StripeIndex())
	}
	// Malformed options degrade to the unstriped defaults rather than
	// poisoning the forwarding path.
	bad := &Header{Version: Version1, Type: TypeData}
	bad.AddOption(Option{Kind: OptStripeCount, Data: []byte{9}})
	bad.AddOption(Option{Kind: OptStripeIndex, Data: []byte{9}})
	if bad.StripeCount() != 1 || bad.StripeIndex() != 0 {
		t.Fatalf("malformed header: count=%d index=%d", bad.StripeCount(), bad.StripeIndex())
	}
}

func TestStripeOptionsSurviveHeaderRoundTrip(t *testing.T) {
	id, err := NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	h := &Header{
		Version: Version1,
		Type:    TypeData,
		Session: id,
		Src:     MustEndpoint("10.0.0.1:7411"),
		Dst:     MustEndpoint("10.0.0.2:7411"),
	}
	h.AddOption(StripeCountOption(3))
	h.AddOption(StripeIndexOption(1))
	h.AddOption(ResumeOffsetOption(1 << 20))
	var buf bytes.Buffer
	if err := WriteHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.StripeCount() != 3 || got.StripeIndex() != 1 || got.ResumeOffset() != 1<<20 {
		t.Fatalf("after round trip: count=%d index=%d offset=%d",
			got.StripeCount(), got.StripeIndex(), got.ResumeOffset())
	}
}

func TestResumeOffsetOption(t *testing.T) {
	opt := ResumeOffsetOption(1 << 33)
	off, err := ParseResumeOffset(opt)
	if err != nil || off != 1<<33 {
		t.Fatalf("off=%d err=%v", off, err)
	}
	h := &Header{Version: Version1, Type: TypeData}
	if h.ResumeOffset() != 0 {
		t.Fatal("fresh header should resume at 0")
	}
	h.AddOption(opt)
	if h.ResumeOffset() != 1<<33 {
		t.Fatalf("ResumeOffset = %d", h.ResumeOffset())
	}
	if _, err := ParseResumeOffset(Option{Kind: OptResumeOffset, Data: []byte{1}}); err == nil {
		t.Fatal("short resume offset accepted")
	}
}
