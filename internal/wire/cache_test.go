package wire

import (
	"bytes"
	"errors"
	"testing"
)

func testDigest(size int64) ContentDigest {
	d := ContentDigest{Size: size}
	for i := range d.Sum {
		d.Sum[i] = byte(i * 7)
	}
	return d
}

func TestCacheLookupRoundTrip(t *testing.T) {
	want := testDigest(1 << 30)
	got, err := ParseCacheLookup(CacheLookupOption(want))
	if err != nil {
		t.Fatalf("ParseCacheLookup: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	h := &Header{Options: []Option{CacheLookupOption(want)}}
	if d, ok := h.CacheLookup(); !ok || d != want {
		t.Fatalf("CacheLookup() = %+v, %v", d, ok)
	}
	if ds := h.CacheLookups(); len(ds) != 1 || ds[0] != want {
		t.Fatalf("CacheLookups() = %+v", ds)
	}
}

func TestCacheAdvertRoundTrip(t *testing.T) {
	for _, tc := range [][]ByteRange{
		nil,
		{{Off: 0, Len: 1}},
		{{Off: 0, Len: 4096}, {Off: 4096, Len: 1}}, // adjacency is legal
		{{Off: 100, Len: 50}, {Off: 1 << 40, Len: 1 << 20}},
	} {
		o := CacheAdvertOption(tc)
		got, err := ParseCacheAdvert(o)
		if err != nil {
			t.Fatalf("ParseCacheAdvert(%+v): %v", tc, err)
		}
		if len(got) != len(tc) {
			t.Fatalf("round trip %+v: got %+v", tc, got)
		}
		for i := range tc {
			if got[i] != tc[i] {
				t.Fatalf("round trip %+v: got %+v", tc, got)
			}
		}
		h := &Header{Options: []Option{o}}
		if rs, ok := h.CacheAdvert(); !ok || len(rs) != len(tc) {
			t.Fatalf("CacheAdvert() = %+v, %v for %+v", rs, ok, tc)
		}
	}
}

func TestCacheAdvertMalformed(t *testing.T) {
	pair := CacheAdvertOption([]ByteRange{{Off: 0, Len: 4096}, {Off: 8192, Len: 64}}).Data
	cases := map[string][]byte{
		"truncated":      pair[:len(pair)-5],
		"zero length":    CacheAdvertOption([]ByteRange{{Off: 0, Len: 0}}).Data,
		"overlapping":    append(append([]byte{}, CacheAdvertOption([]ByteRange{{Off: 0, Len: 4096}}).Data...), CacheAdvertOption([]ByteRange{{Off: 100, Len: 10}}).Data...),
		"unsorted":       append(append([]byte{}, CacheAdvertOption([]ByteRange{{Off: 8192, Len: 10}}).Data...), CacheAdvertOption([]ByteRange{{Off: 0, Len: 10}}).Data...),
		"offset too big": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 1},
	}
	for name, data := range cases {
		if _, err := ParseCacheAdvert(Option{Kind: OptCacheAdvert, Data: data}); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: ParseCacheAdvert err = %v, want ErrBadOption", name, err)
		}
		h := &Header{Options: []Option{{Kind: OptCacheAdvert, Data: data}}}
		if rs, ok := h.CacheAdvert(); ok {
			t.Errorf("%s: malformed advert did not degrade to absent: %+v", name, rs)
		}
	}
	if _, err := ParseCacheAdvert(Option{Kind: OptCacheLookup}); !errors.Is(err, ErrBadOption) {
		t.Errorf("wrong kind accepted: %v", err)
	}
}

func TestCacheServeRoundTrip(t *testing.T) {
	d := testDigest(1 << 20)
	r := ByteRange{Off: 4096, Len: 1<<20 - 4096}
	gd, gr, err := ParseCacheServe(CacheServeOption(d, r))
	if err != nil || gd != d || gr != r {
		t.Fatalf("round trip: %+v %+v %v", gd, gr, err)
	}
	h := &Header{Options: []Option{CacheServeOption(d, r)}}
	if hd, hr, ok := h.CacheServe(); !ok || hd != d || hr != r {
		t.Fatalf("CacheServe() = %+v %+v %v", hd, hr, ok)
	}
}

func TestCacheServeMalformed(t *testing.T) {
	d := testDigest(1 << 20)
	good := CacheServeOption(d, ByteRange{Off: 0, Len: 1 << 20})
	cases := map[string]Option{
		"truncated":  {Kind: OptCacheServe, Data: good.Data[:40]},
		"overruns":   CacheServeOption(ContentDigest{Size: 100, Sum: d.Sum}, ByteRange{Off: 50, Len: 100}),
		"zero len":   CacheServeOption(d, ByteRange{Off: 0, Len: 0}),
		"wrong kind": {Kind: OptCacheAdvert, Data: good.Data},
	}
	for name, o := range cases {
		if _, _, err := ParseCacheServe(o); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", name, err)
		}
		h := &Header{Options: []Option{o}}
		if _, _, ok := h.CacheServe(); ok {
			t.Errorf("%s: malformed serve did not degrade to absent", name)
		}
	}
}

// TestDuplicateOptionsLastWins locks the duplicate-occurrence contract:
// when a header carries two options of the same singleton kind, the
// later one governs, for the generic accessor and for every typed
// accessor built on it — and the rule survives a marshal round trip,
// so every hop on the path reads the same winner.
func TestDuplicateOptionsLastWins(t *testing.T) {
	d1, d2 := testDigest(100), testDigest(200)
	cases := []struct {
		name  string
		opts  []Option
		check func(t *testing.T, h *Header)
	}{
		{
			name: "resume offset",
			opts: []Option{ResumeOffsetOption(100), ResumeOffsetOption(4096)},
			check: func(t *testing.T, h *Header) {
				if got := h.ResumeOffset(); got != 4096 {
					t.Errorf("ResumeOffset() = %d, want 4096", got)
				}
			},
		},
		{
			name: "hop index",
			opts: []Option{HopIndexOption(1), HopIndexOption(5)},
			check: func(t *testing.T, h *Header) {
				if got := h.HopIndex(); got != 5 {
					t.Errorf("HopIndex() = %d, want 5", got)
				}
			},
		},
		{
			name: "session weight",
			opts: []Option{SessionWeightOption(2), SessionWeightOption(7)},
			check: func(t *testing.T, h *Header) {
				if got := h.SessionWeight(); got != 7 {
					t.Errorf("SessionWeight() = %d, want 7", got)
				}
			},
		},
		{
			name: "table epoch",
			opts: []Option{TableEpochOption(3), TableEpochOption(9)},
			check: func(t *testing.T, h *Header) {
				if got := h.TableEpoch(); got != 9 {
					t.Errorf("TableEpoch() = %d, want 9", got)
				}
			},
		},
		{
			name: "content digest",
			opts: []Option{ContentDigestOption(d1), ContentDigestOption(d2)},
			check: func(t *testing.T, h *Header) {
				if got, ok := h.ContentDigest(); !ok || got != d2 {
					t.Errorf("ContentDigest() = %+v, %v, want later digest", got, ok)
				}
			},
		},
		{
			name: "cache lookup",
			opts: []Option{CacheLookupOption(d1), CacheLookupOption(d2)},
			check: func(t *testing.T, h *Header) {
				if got, ok := h.CacheLookup(); !ok || got != d2 {
					t.Errorf("CacheLookup() = %+v, %v, want later digest", got, ok)
				}
			},
		},
		{
			name: "cache advert",
			opts: []Option{
				CacheAdvertOption([]ByteRange{{Off: 0, Len: 1}}),
				CacheAdvertOption([]ByteRange{{Off: 0, Len: 2}}),
			},
			check: func(t *testing.T, h *Header) {
				rs, ok := h.CacheAdvert()
				if !ok || len(rs) != 1 || rs[0].Len != 2 {
					t.Errorf("CacheAdvert() = %+v, %v, want the later advert", rs, ok)
				}
			},
		},
		{
			name: "later copy malformed degrades whole lookup",
			opts: []Option{ResumeOffsetOption(100), {Kind: OptResumeOffset, Data: []byte{1}}},
			check: func(t *testing.T, h *Header) {
				// Last-wins selects the later copy even when it is
				// malformed; the typed accessor then degrades to its
				// default rather than falling back to the earlier copy —
				// degrade, never guess.
				if got := h.ResumeOffset(); got != 0 {
					t.Errorf("ResumeOffset() = %d, want 0 (degraded)", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &Header{
				Version: Version1,
				Type:    TypeData,
				Src:     MustEndpoint("10.0.0.1:7411"),
				Dst:     MustEndpoint("10.0.0.9:7411"),
				Options: tc.opts,
			}
			if o, ok := h.Option(tc.opts[0].Kind); !ok || !bytes.Equal(o.Data, tc.opts[len(tc.opts)-1].Data) {
				t.Errorf("Option(%d) did not return the last occurrence", tc.opts[0].Kind)
			}
			tc.check(t, h)

			// The winner must survive the wire: marshal preserves option
			// order, so a forwarding depot sees the same last copy.
			buf, err := h.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			var back Header
			if err := back.UnmarshalBinary(buf); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			tc.check(t, &back)
		})
	}
}
