package wire

import (
	"bytes"
	"testing"
)

func TestPathSetIDRoundTrip(t *testing.T) {
	id, err := NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePathSetID(PathSetIDOption(id))
	if err != nil {
		t.Fatalf("ParsePathSetID: %v", err)
	}
	if got != id {
		t.Fatalf("round trip mismatch: %v != %v", got, id)
	}
}

func TestPathIndexRoundTrip(t *testing.T) {
	for _, tc := range []struct{ index, count uint16 }{
		{0, 1}, {0, 2}, {1, 2}, {7, 8}, {0, 65535}, {65534, 65535},
	} {
		i, n, err := ParsePathIndex(PathIndexOption(tc.index, tc.count))
		if err != nil {
			t.Fatalf("ParsePathIndex(%d,%d): %v", tc.index, tc.count, err)
		}
		if i != tc.index || n != tc.count {
			t.Fatalf("round trip (%d,%d) != (%d,%d)", i, n, tc.index, tc.count)
		}
	}
}

func TestParsePathOptionsMalformed(t *testing.T) {
	for _, o := range []Option{
		{Kind: OptStripeIndex, Data: make([]byte, 16)}, // wrong kind
		{Kind: OptPathSetID, Data: make([]byte, 15)},   // short
		{Kind: OptPathSetID, Data: make([]byte, 17)},   // long
		{Kind: OptPathSetID},                           // empty
	} {
		if _, err := ParsePathSetID(o); err == nil {
			t.Errorf("ParsePathSetID accepted kind=%d len=%d", o.Kind, len(o.Data))
		}
	}
	for _, o := range []Option{
		{Kind: OptStripeIndex, Data: make([]byte, 4)}, // wrong kind
		{Kind: OptPathIndex, Data: make([]byte, 3)},   // short
		{Kind: OptPathIndex, Data: make([]byte, 5)},   // long
		{Kind: OptPathIndex},                          // empty
		PathIndexOption(0, 0),                         // zero count
		PathIndexOption(2, 2),                         // index == count
		PathIndexOption(9, 2),                         // index > count
	} {
		if _, _, err := ParsePathIndex(o); err == nil {
			t.Errorf("ParsePathIndex accepted kind=%d data=%x", o.Kind, o.Data)
		}
	}
}

// TestHeaderPathOptionsDegradeToSinglePath exercises the degradation
// contract: any malformed path option reads as absent through the
// header accessors, so a depot treats the session as ordinary
// single-path traffic instead of refusing it.
func TestHeaderPathOptionsDegradeToSinglePath(t *testing.T) {
	h := &Header{Version: Version1, Type: TypeData}
	if _, ok := h.PathSetID(); ok {
		t.Fatal("PathSetID present on a header without the option")
	}
	if h.PathCount() != 1 || h.PathIndex() != 0 {
		t.Fatalf("bare header: count=%d index=%d, want 1/0", h.PathCount(), h.PathIndex())
	}

	id, err := NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	h.Options = []Option{PathSetIDOption(id), PathIndexOption(2, 4)}
	raw, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Header
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if got, ok := back.PathSetID(); !ok || got != id {
		t.Fatalf("PathSetID after wire round trip = %v/%v", got, ok)
	}
	if back.PathCount() != 4 || back.PathIndex() != 2 {
		t.Fatalf("path coordinate after round trip = %d/%d, want 2/4", back.PathIndex(), back.PathCount())
	}

	for _, opts := range [][]Option{
		{{Kind: OptPathSetID, Data: make([]byte, 3)}, {Kind: OptPathIndex, Data: []byte{1}}},
		{PathIndexOption(0, 0)},
		{PathIndexOption(5, 5)},
	} {
		h := &Header{Version: Version1, Type: TypeData, Options: opts}
		raw, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Header
		if err := back.UnmarshalBinary(raw); err != nil {
			t.Fatal(err)
		}
		if _, ok := back.PathSetID(); ok {
			t.Errorf("malformed path set id %x read as present", opts)
		}
		if back.PathCount() != 1 || back.PathIndex() != 0 {
			t.Errorf("malformed %x: count=%d index=%d, want single-path 1/0",
				opts, back.PathCount(), back.PathIndex())
		}
	}
}

// TestPathOptionsForwardedUntouched checks that a depot re-marshalling
// a header preserves the path options byte-for-byte (the forwarding
// path rewrites the source route but must not disturb path identity).
func TestPathOptionsForwardedUntouched(t *testing.T) {
	id, err := NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	h := &Header{Version: Version1, Type: TypeData, Options: []Option{
		PathSetIDOption(id),
		PathIndexOption(1, 3),
	}}
	raw, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Header
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	re, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, re) {
		t.Fatal("header with path options did not re-marshal byte-for-byte")
	}
}
