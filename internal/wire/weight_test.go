package wire

import "testing"

// TestSessionWeightRoundTrip drives the weight option through
// encode/parse across the legal range.
func TestSessionWeightRoundTrip(t *testing.T) {
	for _, w := range []uint16{1, 2, 7, 255, 65535} {
		o := SessionWeightOption(w)
		got, err := ParseSessionWeight(o)
		if err != nil {
			t.Fatalf("weight %d: %v", w, err)
		}
		if got != w {
			t.Fatalf("weight round trip: got %d want %d", got, w)
		}
	}
}

// TestSessionWeightMalformed covers the degrade-to-default contract:
// parsers reject bad bodies, the header accessor reads them as 1.
func TestSessionWeightMalformed(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"zero weight", SessionWeightOption(0)},
		{"short body", Option{Kind: OptSessionWeight, Data: []byte{1}}},
		{"long body", Option{Kind: OptSessionWeight, Data: []byte{0, 1, 2}}},
		{"empty body", Option{Kind: OptSessionWeight}},
		{"wrong kind", Option{Kind: OptHopIndex, Data: []byte{0, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSessionWeight(tc.opt); err == nil {
				t.Fatalf("parse accepted %v", tc.opt)
			}
			h := &Header{Options: []Option{tc.opt}}
			if got := h.SessionWeight(); got != DefaultSessionWeight {
				t.Fatalf("SessionWeight() = %d, want default %d", got, DefaultSessionWeight)
			}
		})
	}
}

// TestSessionWeightHeaderAccessor covers the present/absent cases and
// survival of a marshal/unmarshal round trip.
func TestSessionWeightHeaderAccessor(t *testing.T) {
	h := &Header{
		Version: Version1,
		Type:    TypeData,
		Src:     MustEndpoint("10.0.0.1:7411"),
		Dst:     MustEndpoint("10.0.0.2:7411"),
	}
	if got := h.SessionWeight(); got != DefaultSessionWeight {
		t.Fatalf("absent option: weight %d, want %d", got, DefaultSessionWeight)
	}
	h.AddOption(SessionWeightOption(4))
	buf, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Header
	if err := back.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got := back.SessionWeight(); got != 4 {
		t.Fatalf("round-tripped weight %d, want 4", got)
	}
}
