package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzParseOptions drives every option parser over arbitrary bodies.
// Parsers must never panic; for the canonical encodings (source route,
// multicast tree, route table) a successful parse must re-encode to the
// bytes that were parsed.
func FuzzParseOptions(f *testing.F) {
	f.Add(uint16(OptSourceRoute), []byte{})
	f.Add(uint16(OptSourceRoute), SourceRouteOption([]Endpoint{MustEndpoint("10.0.0.1:1")}).Data)
	f.Add(uint16(OptBufferAdvert), BufferAdvertOption(4096).Data)
	f.Add(uint16(OptGenerate), GenerateOption(1<<20).Data)
	f.Add(uint16(OptHopIndex), HopIndexOption(3).Data)
	f.Add(uint16(OptResumeOffset), ResumeOffsetOption(12345).Data)
	f.Add(uint16(OptStripeCount), StripeCountOption(4).Data)
	f.Add(uint16(OptStripeIndex), StripeIndexOption(1).Data)
	f.Add(uint16(OptTableEpoch), TableEpochOption(7).Data)
	f.Add(uint16(OptTraceID), TraceIDOption(TraceID{1, 2, 3}).Data)
	f.Add(uint16(OptSessionWeight), SessionWeightOption(2).Data)
	f.Add(uint16(OptSessionWeight), SessionWeightOption(0).Data)
	f.Add(uint16(OptSessionWeight), []byte{0xff})
	f.Add(uint16(OptChunkChecksum), ChunkChecksumOption().Data)
	f.Add(uint16(OptChunkChecksum), []byte{0, 99})
	f.Add(uint16(OptContentDigest), ContentDigestOption(ContentDigest{Size: 1 << 20}).Data)
	f.Add(uint16(OptContentDigest), []byte{1, 2, 3})
	f.Add(uint16(OptCacheLookup), CacheLookupOption(ContentDigest{Size: 1 << 20}).Data)
	f.Add(uint16(OptCacheAdvert), CacheAdvertOption([]ByteRange{{Off: 0, Len: 4096}, {Off: 8192, Len: 100}}).Data)
	f.Add(uint16(OptCacheServe), CacheServeOption(ContentDigest{Size: 1 << 20}, ByteRange{Off: 512, Len: 1024}).Data)
	if rt, err := RouteTableOptions([]RouteEntry{{Dst: MustEndpoint("10.0.0.2:1"), Next: MustEndpoint("10.0.0.3:1")}}); err == nil {
		f.Add(uint16(OptRouteTable), rt[0].Data)
	}
	if mt, err := MulticastTreeOption(&TreeNode{
		Addr:     MustEndpoint("10.0.0.1:1"),
		Children: []*TreeNode{{Addr: MustEndpoint("10.0.0.2:2")}},
	}); err == nil {
		f.Add(uint16(OptMulticastTree), mt.Data)
	}
	f.Add(uint16(999), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})

	f.Fuzz(func(t *testing.T, kind uint16, data []byte) {
		o := Option{Kind: kind, Data: data}

		if hops, err := ParseSourceRoute(o); err == nil {
			if re := SourceRouteOption(hops); !bytes.Equal(re.Data, data) {
				t.Errorf("source route round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		if root, err := ParseMulticastTree(o); err == nil {
			re, err := MulticastTreeOption(root)
			if err != nil {
				t.Errorf("re-encoding parsed multicast tree: %v", err)
			} else if !bytes.Equal(re.Data, data) {
				t.Errorf("multicast tree round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		if entries, err := ParseRouteTable(o); err == nil && len(entries) <= maxRouteEntriesPerOption {
			re, err := RouteTableOptions(entries)
			if err != nil {
				t.Errorf("re-encoding parsed route table: %v", err)
			} else {
				// ParseRouteTable accepts any order; re-encoding sorts, so
				// compare entry sets by re-parsing.
				back, err := ParseRouteTable(re[0])
				if err != nil || len(back) != len(entries) {
					t.Errorf("route table round-trip lost entries: %d != %d (%v)", len(back), len(entries), err)
				}
			}
		}
		// The scalar parsers must simply not panic and must reject
		// wrong-kind or wrong-length bodies without bogus success.
		_, _ = ParseBufferAdvert(o)
		_, _ = ParseGenerate(o)
		_, _ = ParseFetchID(o)
		_, _ = ParseHopIndex(o)
		_, _ = ParseResumeOffset(o)
		_, _ = ParseStripeCount(o)
		_, _ = ParseStripeIndex(o)
		_, _ = ParseTableEpoch(o)
		_, _ = ParseTraceID(o)
		_, _ = ParseChunkChecksum(o)
		_, _ = ParseContentDigest(o)
		_, _ = ParseCacheLookup(o)
		_, _, _ = ParseCacheServe(o)
		if rs, err := ParseCacheAdvert(o); err == nil {
			if re := CacheAdvertOption(rs); !bytes.Equal(re.Data, data) {
				t.Errorf("cache advert round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		if w, err := ParseSessionWeight(o); err == nil {
			if re := SessionWeightOption(w); !bytes.Equal(re.Data, data) {
				t.Errorf("session weight round-trip mismatch: %x != %x", re.Data, data)
			}
		}

		// The nil-safe header accessors must degrade, never panic.
		h := &Header{Options: []Option{o}}
		_ = h.StripeCount()
		_ = h.StripeIndex()
		_ = h.ResumeOffset()
		_ = h.HopIndex()
		_ = h.TableEpoch()
		_, _ = h.TraceID()
		_ = h.Checksummed()
		_, _ = h.ContentDigest()
		_, _ = h.CacheLookup()
		_, _ = h.CacheAdvert()
		_, _, _ = h.CacheServe()
		_ = h.CacheLookups()
		if w := h.SessionWeight(); w < 1 {
			t.Errorf("SessionWeight() = %d, must never drop below 1", w)
		}
	})
}

// FuzzChunkFrames feeds arbitrary bytes to both frame scanners: they
// must never panic, never yield more bytes than the stream carries,
// and for well-formed input produced by FrameWriter the FrameReader
// must return exactly the original payload.
func FuzzChunkFrames(f *testing.F) {
	var framed bytes.Buffer
	fw := NewFrameWriter(&framed)
	if _, err := fw.Write([]byte("the quick brown fox")); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	// A valid frame with its payload flipped: CRC must catch it.
	if framed.Len() > FrameHeaderLen {
		bad := append([]byte(nil), framed.Bytes()...)
		bad[FrameHeaderLen] ^= 0xFF
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		raw, err := readAll(NewFrameReader(bytes.NewReader(data)))
		if err == nil {
			// Whatever the reader accepted must round-trip: re-framing
			// the payload and stripping it again is the identity.
			var re bytes.Buffer
			if _, werr := NewFrameWriter(&re).Write(raw); werr != nil {
				t.Fatalf("re-framing accepted payload: %v", werr)
			}
			back, rerr := readAll(NewFrameReader(bytes.NewReader(re.Bytes())))
			if rerr != nil || !bytes.Equal(back, raw) {
				t.Errorf("frame round-trip mismatch (%v)", rerr)
			}
		}
		// The verifying (pass-through) scanner must yield a prefix it
		// verified — at most the input itself.
		passed, _ := readAll(NewVerifyingReader(bytes.NewReader(data)))
		if len(passed) > len(data) {
			t.Errorf("verifier yielded %d bytes from %d input", len(passed), len(data))
		}
	})
}

// readAll drains r, returning what arrived before the first error and
// that error (nil on clean EOF).
func readAll(r io.Reader) ([]byte, error) {
	var out bytes.Buffer
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if errors.Is(err, io.EOF) {
			return out.Bytes(), nil
		}
		if err != nil {
			return out.Bytes(), err
		}
	}
}

// FuzzCacheOptions concentrates on the three cache wire options, with
// a seed corpus of the malformations a depot actually meets: truncated
// advertisements, overlapping and unsorted ranges, zero-length ranges,
// and serve directives that overrun the digested object. A parser may
// reject or accept, but an accepted advertisement must be canonical
// (sorted, non-overlapping, round-trips byte-for-byte) and an accepted
// serve range must lie inside its object.
func FuzzCacheOptions(f *testing.F) {
	d := ContentDigest{Size: 1 << 20}
	for i := range d.Sum {
		d.Sum[i] = byte(i)
	}
	full := CacheAdvertOption([]ByteRange{{Off: 0, Len: 4096}, {Off: 8192, Len: 1 << 16}}).Data
	f.Add(uint16(OptCacheLookup), CacheLookupOption(d).Data)
	f.Add(uint16(OptCacheLookup), CacheLookupOption(d).Data[:39])
	f.Add(uint16(OptCacheAdvert), []byte{})
	f.Add(uint16(OptCacheAdvert), full)
	f.Add(uint16(OptCacheAdvert), full[:len(full)-3])                          // truncated mid-range
	f.Add(uint16(OptCacheAdvert), full[:cacheRangeLen+7])                      // truncated second range
	f.Add(uint16(OptCacheAdvert), append(full[:len(full):len(full)], full...)) // duplicated -> overlapping
	overlap := CacheAdvertOption([]ByteRange{{Off: 0, Len: 4096}}).Data
	overlap = append(overlap, CacheAdvertOption([]ByteRange{{Off: 2048, Len: 4096}}).Data...)
	f.Add(uint16(OptCacheAdvert), overlap) // second range starts inside the first
	unsorted := CacheAdvertOption([]ByteRange{{Off: 8192, Len: 100}}).Data
	unsorted = append(unsorted, CacheAdvertOption([]ByteRange{{Off: 0, Len: 100}}).Data...)
	f.Add(uint16(OptCacheAdvert), unsorted)
	zero := CacheAdvertOption([]ByteRange{{Off: 4096, Len: 0}}).Data
	f.Add(uint16(OptCacheAdvert), zero)
	f.Add(uint16(OptCacheServe), CacheServeOption(d, ByteRange{Off: 0, Len: 1 << 20}).Data)
	f.Add(uint16(OptCacheServe), CacheServeOption(d, ByteRange{Off: 1 << 19, Len: 1 << 20}).Data) // overruns object
	f.Add(uint16(OptCacheServe), CacheServeOption(d, ByteRange{Off: 0, Len: 1}).Data[:40])

	f.Fuzz(func(t *testing.T, kind uint16, data []byte) {
		o := Option{Kind: kind, Data: data}
		if rs, err := ParseCacheAdvert(o); err == nil {
			var prevEnd int64
			for _, r := range rs {
				if r.Len <= 0 || r.Off < prevEnd {
					t.Fatalf("accepted non-canonical advert range %+v (prev end %d)", r, prevEnd)
				}
				prevEnd = r.End()
			}
			if re := CacheAdvertOption(rs); !bytes.Equal(re.Data, data) {
				t.Errorf("cache advert round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		if got, r, err := ParseCacheServe(o); err == nil {
			if r.Len <= 0 || r.Off < 0 || r.End() > got.Size {
				t.Fatalf("accepted serve range %+v outside object of %d bytes", r, got.Size)
			}
		}
		if got, err := ParseCacheLookup(o); err == nil {
			if re := CacheLookupOption(got); !bytes.Equal(re.Data, data) {
				t.Errorf("cache lookup round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		// Accessors degrade, never panic, on whatever the parsers reject.
		h := &Header{Options: []Option{o}}
		_, _ = h.CacheLookup()
		_, _ = h.CacheAdvert()
		_, _, _ = h.CacheServe()
	})
}

// FuzzReadHeader feeds arbitrary bytes to the header decoder: it must
// never panic, and any header it accepts must re-marshal successfully.
func FuzzReadHeader(f *testing.F) {
	h := &Header{
		Version: Version1,
		Type:    TypeData,
		Src:     MustEndpoint("10.0.0.1:7411"),
		Dst:     MustEndpoint("10.0.0.9:7411"),
		Options: []Option{HopIndexOption(1), BufferAdvertOption(4096)},
	}
	buf, err := h.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderFixedLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Header
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := got.MarshalBinary(); err != nil {
			t.Errorf("accepted header failed to re-marshal: %v", err)
		}
		if _, err := ReadHeader(bytes.NewReader(data)); err != nil {
			// ReadHeader may legitimately reject what UnmarshalBinary
			// accepted only if the stream framing differs; it must not
			// panic, which reaching here proves.
			_ = err
		}
	})
}

// FuzzPathOptions concentrates on the two multipath wire options, with
// a seed corpus of the malformations a depot actually meets: truncated
// and oversized set ids, zero path counts, and indices at or beyond the
// count. A parser may reject or accept; an accepted body must
// round-trip byte-for-byte and satisfy index < count, and whatever the
// parser decides, the header accessors must degrade malformed bodies
// to single-path (count 1, index 0, set id absent) rather than panic.
func FuzzPathOptions(f *testing.F) {
	var id SessionID
	for i := range id {
		id[i] = byte(i * 7)
	}
	f.Add(uint16(OptPathSetID), PathSetIDOption(id).Data)
	f.Add(uint16(OptPathSetID), PathSetIDOption(id).Data[:15])
	f.Add(uint16(OptPathSetID), append(PathSetIDOption(id).Data, 0xff))
	f.Add(uint16(OptPathSetID), []byte{})
	f.Add(uint16(OptPathIndex), PathIndexOption(0, 1).Data)
	f.Add(uint16(OptPathIndex), PathIndexOption(3, 4).Data)
	f.Add(uint16(OptPathIndex), PathIndexOption(0, 0).Data)            // zero count
	f.Add(uint16(OptPathIndex), PathIndexOption(4, 4).Data)            // index == count
	f.Add(uint16(OptPathIndex), PathIndexOption(9, 2).Data)            // index > count
	f.Add(uint16(OptPathIndex), PathIndexOption(1, 2).Data[:3])        // truncated
	f.Add(uint16(OptPathIndex), append(PathIndexOption(1, 2).Data, 0)) // oversized

	f.Fuzz(func(t *testing.T, kind uint16, data []byte) {
		o := Option{Kind: kind, Data: data}
		if got, err := ParsePathSetID(o); err == nil {
			if !bytes.Equal(PathSetIDOption(got).Data, data) {
				t.Errorf("path set id round-trip mismatch: %x", data)
			}
		}
		if i, n, err := ParsePathIndex(o); err == nil {
			if n == 0 || i >= n {
				t.Fatalf("accepted path coordinate %d/%d", i, n)
			}
			if !bytes.Equal(PathIndexOption(i, n).Data, data) {
				t.Errorf("path index round-trip mismatch: %x", data)
			}
		}
		h := Header{Version: Version1, Type: TypeData, Options: []Option{o}}
		raw, err := h.MarshalBinary()
		if err != nil {
			return // oversized option bodies may exceed the header cap
		}
		var back Header
		if err := back.UnmarshalBinary(raw); err != nil {
			t.Fatalf("re-read of marshalled header: %v", err)
		}
		// Accessors never panic and degrade malformed to single-path.
		if n := back.PathCount(); n < 1 {
			t.Fatalf("PathCount = %d", n)
		}
		if i := back.PathIndex(); i < 0 || (i != 0 && i >= back.PathCount()) {
			t.Fatalf("PathIndex = %d of %d", i, back.PathCount())
		}
		_, _ = back.PathSetID()
	})
}
