package wire

import (
	"bytes"
	"testing"
)

// FuzzParseOptions drives every option parser over arbitrary bodies.
// Parsers must never panic; for the canonical encodings (source route,
// multicast tree, route table) a successful parse must re-encode to the
// bytes that were parsed.
func FuzzParseOptions(f *testing.F) {
	f.Add(uint16(OptSourceRoute), []byte{})
	f.Add(uint16(OptSourceRoute), SourceRouteOption([]Endpoint{MustEndpoint("10.0.0.1:1")}).Data)
	f.Add(uint16(OptBufferAdvert), BufferAdvertOption(4096).Data)
	f.Add(uint16(OptGenerate), GenerateOption(1<<20).Data)
	f.Add(uint16(OptHopIndex), HopIndexOption(3).Data)
	f.Add(uint16(OptResumeOffset), ResumeOffsetOption(12345).Data)
	f.Add(uint16(OptStripeCount), StripeCountOption(4).Data)
	f.Add(uint16(OptStripeIndex), StripeIndexOption(1).Data)
	f.Add(uint16(OptTableEpoch), TableEpochOption(7).Data)
	f.Add(uint16(OptTraceID), TraceIDOption(TraceID{1, 2, 3}).Data)
	f.Add(uint16(OptSessionWeight), SessionWeightOption(2).Data)
	f.Add(uint16(OptSessionWeight), SessionWeightOption(0).Data)
	f.Add(uint16(OptSessionWeight), []byte{0xff})
	if rt, err := RouteTableOptions([]RouteEntry{{Dst: MustEndpoint("10.0.0.2:1"), Next: MustEndpoint("10.0.0.3:1")}}); err == nil {
		f.Add(uint16(OptRouteTable), rt[0].Data)
	}
	if mt, err := MulticastTreeOption(&TreeNode{
		Addr:     MustEndpoint("10.0.0.1:1"),
		Children: []*TreeNode{{Addr: MustEndpoint("10.0.0.2:2")}},
	}); err == nil {
		f.Add(uint16(OptMulticastTree), mt.Data)
	}
	f.Add(uint16(999), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})

	f.Fuzz(func(t *testing.T, kind uint16, data []byte) {
		o := Option{Kind: kind, Data: data}

		if hops, err := ParseSourceRoute(o); err == nil {
			if re := SourceRouteOption(hops); !bytes.Equal(re.Data, data) {
				t.Errorf("source route round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		if root, err := ParseMulticastTree(o); err == nil {
			re, err := MulticastTreeOption(root)
			if err != nil {
				t.Errorf("re-encoding parsed multicast tree: %v", err)
			} else if !bytes.Equal(re.Data, data) {
				t.Errorf("multicast tree round-trip mismatch: %x != %x", re.Data, data)
			}
		}
		if entries, err := ParseRouteTable(o); err == nil && len(entries) <= maxRouteEntriesPerOption {
			re, err := RouteTableOptions(entries)
			if err != nil {
				t.Errorf("re-encoding parsed route table: %v", err)
			} else {
				// ParseRouteTable accepts any order; re-encoding sorts, so
				// compare entry sets by re-parsing.
				back, err := ParseRouteTable(re[0])
				if err != nil || len(back) != len(entries) {
					t.Errorf("route table round-trip lost entries: %d != %d (%v)", len(back), len(entries), err)
				}
			}
		}
		// The scalar parsers must simply not panic and must reject
		// wrong-kind or wrong-length bodies without bogus success.
		_, _ = ParseBufferAdvert(o)
		_, _ = ParseGenerate(o)
		_, _ = ParseFetchID(o)
		_, _ = ParseHopIndex(o)
		_, _ = ParseResumeOffset(o)
		_, _ = ParseStripeCount(o)
		_, _ = ParseStripeIndex(o)
		_, _ = ParseTableEpoch(o)
		_, _ = ParseTraceID(o)
		if w, err := ParseSessionWeight(o); err == nil {
			if re := SessionWeightOption(w); !bytes.Equal(re.Data, data) {
				t.Errorf("session weight round-trip mismatch: %x != %x", re.Data, data)
			}
		}

		// The nil-safe header accessors must degrade, never panic.
		h := &Header{Options: []Option{o}}
		_ = h.StripeCount()
		_ = h.StripeIndex()
		_ = h.ResumeOffset()
		_ = h.HopIndex()
		_ = h.TableEpoch()
		_, _ = h.TraceID()
		if w := h.SessionWeight(); w < 1 {
			t.Errorf("SessionWeight() = %d, must never drop below 1", w)
		}
	})
}

// FuzzReadHeader feeds arbitrary bytes to the header decoder: it must
// never panic, and any header it accepts must re-marshal successfully.
func FuzzReadHeader(f *testing.F) {
	h := &Header{
		Version: Version1,
		Type:    TypeData,
		Src:     MustEndpoint("10.0.0.1:7411"),
		Dst:     MustEndpoint("10.0.0.9:7411"),
		Options: []Option{HopIndexOption(1), BufferAdvertOption(4096)},
	}
	buf, err := h.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderFixedLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Header
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := got.MarshalBinary(); err != nil {
			t.Errorf("accepted header failed to re-marshal: %v", err)
		}
		if _, err := ReadHeader(bytes.NewReader(data)); err != nil {
			// ReadHeader may legitimately reject what UnmarshalBinary
			// accepted only if the stream framing differs; it must not
			// panic, which reaching here proves.
			_ = err
		}
	})
}
