package wire_test

import (
	"bytes"
	"fmt"

	"github.com/netlogistics/lsl/internal/wire"
)

// ExampleHeader shows an LSL session header round-tripping through its
// wire encoding with a loose source route.
func ExampleHeader() {
	h := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeData,
		Session: wire.SessionID{0xAB},
		Src:     wire.MustEndpoint("10.0.0.1:7411"),
		Dst:     wire.MustEndpoint("10.0.0.9:7411"),
	}
	h.AddOption(wire.SourceRouteOption([]wire.Endpoint{
		wire.MustEndpoint("10.0.0.5:7411"), // the depot to traverse
		wire.MustEndpoint("10.0.0.9:7411"), // then the sink
	}))

	var buf bytes.Buffer
	if err := wire.WriteHeader(&buf, h); err != nil {
		panic(err)
	}
	got, err := wire.ReadHeader(&buf)
	if err != nil {
		panic(err)
	}
	opt, _ := got.Option(wire.OptSourceRoute)
	hops, _ := wire.ParseSourceRoute(opt)
	fmt.Println("dst:", got.Dst)
	fmt.Println("next hop:", hops[0])
	// Output:
	// dst: 10.0.0.9:7411
	// next hop: 10.0.0.5:7411
}
