package wire

import (
	"encoding/binary"
	"fmt"
)

// Cache session types. A cache probe is a request/response exchange
// with a single depot (like TypeFetch); a cache serve asks a depot to
// push a byte range it holds toward the session's destination (like
// TypeGenerate, but sourced from the depot's content-addressed cache
// instead of the pattern generator).
const (
	// TypeCacheProbe asks a depot what it holds: with an OptCacheLookup
	// option, the depot answers with a TypeCacheProbe header carrying an
	// OptCacheAdvert of the byte ranges it caches for that digest; with
	// no lookup option, the answer carries one OptCacheLookup per fully
	// held object — the depot's digest inventory. A depot with no cache
	// refuses the probe.
	TypeCacheProbe uint16 = 8
	// TypeCacheServe directs a depot to serve a cached byte range: the
	// header carries an OptCacheServe naming the digest and range, and
	// the depot forwards the bytes toward the header's destination as an
	// ordinary TypeData session resuming at the range's offset. A depot
	// that does not hold the range (or whose cached copy fails its
	// integrity check on read) refuses, and the initiator falls back to
	// an origin send.
	TypeCacheServe uint16 = 9
)

// Cache option kinds.
const (
	// OptCacheLookup names a content digest a cache probe asks about (or,
	// in an inventory response, one the depot fully holds). Body is the
	// content-digest encoding: 8 bytes of size, 32 bytes of SHA-256.
	// Depots that do not understand it forward it untouched.
	OptCacheLookup uint16 = 16
	// OptCacheAdvert is a cache-hit advertisement: the byte ranges of
	// the probed object this depot holds, each encoded as 8 bytes of
	// offset and 8 bytes of length, sorted by offset and non-overlapping.
	// An empty body advertises nothing — a miss.
	OptCacheAdvert uint16 = 17
	// OptCacheServe is the serve-from-cache directive: a content digest
	// (40 bytes) followed by one byte range (16 bytes) the depot must
	// serve from its cache toward the session destination.
	OptCacheServe uint16 = 18
)

// ByteRange is a half-open byte range [Off, Off+Len) of a cached
// object.
type ByteRange struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset of the range.
func (r ByteRange) End() int64 { return r.Off + r.Len }

// maxAdvertRanges bounds one advertisement, defending receivers against
// corrupt counts while leaving room for pathological fragmentation.
const maxAdvertRanges = 1024

// cacheRangeLen is the encoded size of one ByteRange.
const cacheRangeLen = 16

// CacheLookupOption encodes a cache lookup for the given digest. The
// body reuses the content-digest encoding so the two options stay
// parseable by the same amount of code.
func CacheLookupOption(d ContentDigest) Option {
	o := ContentDigestOption(d)
	o.Kind = OptCacheLookup
	return o
}

// ParseCacheLookup decodes a cache-lookup option.
func ParseCacheLookup(o Option) (ContentDigest, error) {
	if o.Kind != OptCacheLookup {
		return ContentDigest{}, fmt.Errorf("%w: bad cache lookup", ErrBadOption)
	}
	return parseDigestBody(o.Data)
}

// parseDigestBody decodes the shared digest encoding (8-byte size +
// 32-byte sum) used by OptContentDigest, OptCacheLookup and the digest
// half of OptCacheServe.
func parseDigestBody(data []byte) (ContentDigest, error) {
	var d ContentDigest
	if len(data) != 8+DigestLen {
		return d, fmt.Errorf("%w: digest body length %d", ErrBadOption, len(data))
	}
	size := binary.BigEndian.Uint64(data)
	if size > 1<<62 {
		return d, fmt.Errorf("%w: digest size %d out of range", ErrBadOption, size)
	}
	d.Size = int64(size)
	copy(d.Sum[:], data[8:])
	return d, nil
}

// CacheAdvertOption encodes a cache-hit advertisement of the held byte
// ranges. The caller must pass ranges sorted by offset and
// non-overlapping (adjacent is fine); an empty slice encodes an empty
// advertisement, the explicit miss.
func CacheAdvertOption(ranges []ByteRange) Option {
	data := make([]byte, 0, len(ranges)*cacheRangeLen)
	var tmp [cacheRangeLen]byte
	for _, r := range ranges {
		binary.BigEndian.PutUint64(tmp[0:8], uint64(r.Off))
		binary.BigEndian.PutUint64(tmp[8:16], uint64(r.Len))
		data = append(data, tmp[:]...)
	}
	return Option{Kind: OptCacheAdvert, Data: data}
}

// ParseCacheAdvert decodes a cache-hit advertisement. The encoded
// ranges must be sorted by offset, non-overlapping, non-empty and
// within the addressable object space; anything else is malformed and
// the caller degrades to "nothing advertised" — a depot must never
// guess at which half of an inconsistent advertisement to believe.
func ParseCacheAdvert(o Option) ([]ByteRange, error) {
	if o.Kind != OptCacheAdvert || len(o.Data)%cacheRangeLen != 0 {
		return nil, fmt.Errorf("%w: bad cache advert", ErrBadOption)
	}
	n := len(o.Data) / cacheRangeLen
	if n > maxAdvertRanges {
		return nil, fmt.Errorf("%w: cache advert carries %d ranges (max %d)", ErrBadOption, n, maxAdvertRanges)
	}
	out := make([]ByteRange, 0, n)
	var prevEnd int64
	for i := 0; i < n; i++ {
		body := o.Data[i*cacheRangeLen:]
		off := binary.BigEndian.Uint64(body[0:8])
		length := binary.BigEndian.Uint64(body[8:16])
		if off > 1<<62 || length == 0 || length > 1<<62 || off+length > 1<<62 {
			return nil, fmt.Errorf("%w: cache advert range out of bounds", ErrBadOption)
		}
		r := ByteRange{Off: int64(off), Len: int64(length)}
		if r.Off < prevEnd {
			return nil, fmt.Errorf("%w: cache advert ranges overlap or unsorted", ErrBadOption)
		}
		prevEnd = r.End()
		out = append(out, r)
	}
	return out, nil
}

// CacheServeOption encodes a serve-from-cache directive for one range
// of the digested object.
func CacheServeOption(d ContentDigest, r ByteRange) Option {
	data := make([]byte, 8+DigestLen+cacheRangeLen)
	binary.BigEndian.PutUint64(data, uint64(d.Size))
	copy(data[8:], d.Sum[:])
	binary.BigEndian.PutUint64(data[8+DigestLen:], uint64(r.Off))
	binary.BigEndian.PutUint64(data[8+DigestLen+8:], uint64(r.Len))
	return Option{Kind: OptCacheServe, Data: data}
}

// ParseCacheServe decodes a serve-from-cache directive. The range must
// be non-empty and lie inside the digested object.
func ParseCacheServe(o Option) (ContentDigest, ByteRange, error) {
	if o.Kind != OptCacheServe || len(o.Data) != 8+DigestLen+cacheRangeLen {
		return ContentDigest{}, ByteRange{}, fmt.Errorf("%w: bad cache serve", ErrBadOption)
	}
	d, err := parseDigestBody(o.Data[:8+DigestLen])
	if err != nil {
		return ContentDigest{}, ByteRange{}, err
	}
	off := binary.BigEndian.Uint64(o.Data[8+DigestLen:])
	length := binary.BigEndian.Uint64(o.Data[8+DigestLen+8:])
	if length == 0 || off > 1<<62 || length > 1<<62 || int64(off)+int64(length) > d.Size {
		return ContentDigest{}, ByteRange{}, fmt.Errorf("%w: cache serve range outside object", ErrBadOption)
	}
	return d, ByteRange{Off: int64(off), Len: int64(length)}, nil
}

// CacheLookup returns the digest a cache probe asks about and whether
// a well-formed lookup option is present. Malformed degrades to absent.
func (h *Header) CacheLookup() (ContentDigest, bool) {
	if opt, ok := h.Option(OptCacheLookup); ok {
		if d, err := ParseCacheLookup(opt); err == nil {
			return d, true
		}
	}
	return ContentDigest{}, false
}

// CacheAdvert returns the advertised held ranges and whether a
// well-formed advertisement is present. An empty advertisement (an
// explicit miss) returns a nil slice and true; a malformed one degrades
// to absent.
func (h *Header) CacheAdvert() ([]ByteRange, bool) {
	if opt, ok := h.Option(OptCacheAdvert); ok {
		if rs, err := ParseCacheAdvert(opt); err == nil {
			return rs, true
		}
	}
	return nil, false
}

// CacheServe returns the serve-from-cache directive and whether a
// well-formed one is present. Malformed degrades to absent — the depot
// refuses rather than serving a guessed range.
func (h *Header) CacheServe() (ContentDigest, ByteRange, bool) {
	if opt, ok := h.Option(OptCacheServe); ok {
		if d, r, err := ParseCacheServe(opt); err == nil {
			return d, r, true
		}
	}
	return ContentDigest{}, ByteRange{}, false
}

// CacheLookups returns every well-formed cache-lookup digest in the
// header, in option order — the decoding side of a digest inventory
// response, which carries one OptCacheLookup per held object. Malformed
// entries are skipped individually.
func (h *Header) CacheLookups() []ContentDigest {
	var out []ContentDigest
	for _, o := range h.Options {
		if o.Kind != OptCacheLookup {
			continue
		}
		if d, err := ParseCacheLookup(o); err == nil {
			out = append(out, d)
		}
	}
	return out
}
