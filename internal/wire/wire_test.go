package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func sampleHeader() *Header {
	return &Header{
		Version: Version1,
		Type:    TypeData,
		Session: SessionID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Src:     MustEndpoint("10.0.0.1:7411"),
		Dst:     MustEndpoint("10.0.1.2:7411"),
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	h.AddOption(SourceRouteOption([]Endpoint{
		MustEndpoint("10.0.0.9:7411"),
		MustEndpoint("10.0.0.10:7411"),
	}))
	h.AddOption(BufferAdvertOption(32 << 20))

	buf, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Header
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if got.Version != h.Version || got.Type != h.Type || got.Session != h.Session {
		t.Fatalf("fixed fields mismatch: %+v", got)
	}
	if got.Src != h.Src || got.Dst != h.Dst {
		t.Fatalf("endpoints mismatch: %+v", got)
	}
	if len(got.Options) != 2 {
		t.Fatalf("options = %d", len(got.Options))
	}
	hops, err := ParseSourceRoute(got.Options[0])
	if err != nil || len(hops) != 2 || hops[1] != MustEndpoint("10.0.0.10:7411") {
		t.Fatalf("source route = %v, %v", hops, err)
	}
	adv, err := ParseBufferAdvert(got.Options[1])
	if err != nil || adv != 32<<20 {
		t.Fatalf("advert = %v, %v", adv, err)
	}
}

func TestHeaderStreamRoundTrip(t *testing.T) {
	h := sampleHeader()
	var buf bytes.Buffer
	if err := WriteHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	payload := []byte("payload follows the header")
	buf.Write(payload)

	got, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != h.Session {
		t.Fatal("session id mismatch")
	}
	rest, _ := io.ReadAll(&buf)
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload corrupted: %q", rest)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(sess [16]byte, srcIP, dstIP [4]byte, srcPort, dstPort uint16, typ uint16, optData []byte) bool {
		if len(optData) > 1024 {
			optData = optData[:1024]
		}
		h := &Header{
			Version: Version1,
			Type:    typ,
			Session: SessionID(sess),
			Src:     Endpoint{IP: srcIP, Port: srcPort},
			Dst:     Endpoint{IP: dstIP, Port: dstPort},
		}
		h.AddOption(Option{Kind: 42, Data: optData})
		buf, err := h.MarshalBinary()
		if err != nil {
			return false
		}
		var got Header
		if err := got.UnmarshalBinary(buf); err != nil {
			return false
		}
		return got.Session == h.Session &&
			got.Src == h.Src && got.Dst == h.Dst &&
			got.Type == typ &&
			len(got.Options) == 1 &&
			got.Options[0].Kind == 42 &&
			bytes.Equal(got.Options[0].Data, optData)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var h Header
	if err := h.UnmarshalBinary(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short buffer: %v", err)
	}
	good, _ := sampleHeader().MarshalBinary()

	bad := append([]byte(nil), good...)
	bad[0], bad[1] = 0xFF, 0xFF // version
	if err := h.UnmarshalBinary(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[4], bad[5] = 0xFF, 0xFF // header length beyond buffer
	if err := h.UnmarshalBinary(bad); !errors.Is(err, ErrBadMagicLen) {
		t.Fatalf("bad length: %v", err)
	}

	// Option overrunning the header bounds.
	withOpt := sampleHeader()
	withOpt.AddOption(Option{Kind: 1, Data: []byte{1, 2, 3, 4}})
	buf, _ := withOpt.MarshalBinary()
	buf[len(buf)-6] = 0xFF // option length field sabotage
	buf[len(buf)-5] = 0xFF
	if err := h.UnmarshalBinary(buf); !errors.Is(err, ErrOptionBounds) {
		t.Fatalf("option overrun: %v", err)
	}
}

func TestReadHeaderErrors(t *testing.T) {
	// Truncated stream.
	if _, err := ReadHeader(bytes.NewReader([]byte{0, 1})); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Bad version on the wire.
	buf, _ := sampleHeader().MarshalBinary()
	buf[0], buf[1] = 9, 9
	if _, err := ReadHeader(bytes.NewReader(buf)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	// Options cut off mid-stream.
	h := sampleHeader()
	h.AddOption(Option{Kind: 7, Data: make([]byte, 100)})
	full, _ := h.MarshalBinary()
	if _, err := ReadHeader(bytes.NewReader(full[:50])); err == nil {
		t.Fatal("cut-off options accepted")
	}
}

func TestMaxHeaderLen(t *testing.T) {
	h := sampleHeader()
	h.AddOption(Option{Kind: 1, Data: make([]byte, MaxHeaderLen)})
	if _, err := h.MarshalBinary(); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestParseEndpoint(t *testing.T) {
	e, err := ParseEndpoint("192.168.1.10:8080")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "192.168.1.10:8080" {
		t.Fatalf("round trip = %q", e.String())
	}
	bad := []string{
		"192.168.1.10",      // no port
		"hostname:80",       // not an IP
		"[::1]:80",          // IPv6
		"10.0.0.1:notaport", // bad port
		"10.0.0.1:70000",    // port overflow
	}
	for _, s := range bad {
		if _, err := ParseEndpoint(s); err == nil {
			t.Errorf("ParseEndpoint(%q) accepted", s)
		}
	}
}

func TestMustEndpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEndpoint should panic")
		}
	}()
	MustEndpoint("nope")
}

func TestEndpointIsZero(t *testing.T) {
	if !(Endpoint{}).IsZero() {
		t.Fatal("zero endpoint not detected")
	}
	if MustEndpoint("1.2.3.4:5").IsZero() {
		t.Fatal("non-zero endpoint reported zero")
	}
}

func TestNewSessionIDUnique(t *testing.T) {
	a, err := NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two session ids collided")
	}
	if len(a.String()) != 32 {
		t.Fatalf("hex id length = %d", len(a.String()))
	}
}

func TestHeaderOptionLookup(t *testing.T) {
	h := sampleHeader()
	h.AddOption(Option{Kind: 5, Data: []byte{1}})
	h.AddOption(Option{Kind: 5, Data: []byte{2}})
	got, ok := h.Option(5)
	if !ok || got.Data[0] != 2 {
		t.Fatalf("Option lookup = %+v, %v (want last match)", got, ok)
	}
	if _, ok := h.Option(99); ok {
		t.Fatal("missing option found")
	}
}

func TestUnmarshalNeverPanicsOnGarbage(t *testing.T) {
	// Random byte soup must produce errors, never panics.
	f := func(data []byte) bool {
		var h Header
		_ = h.UnmarshalBinary(data) // error or nil, either is fine
		_, _ = ReadHeader(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionParsersNeverPanic(t *testing.T) {
	f := func(kind uint16, data []byte) bool {
		o := Option{Kind: kind, Data: data}
		_, _ = ParseSourceRoute(o)
		_, _ = ParseBufferAdvert(o)
		_, _ = ParseGenerate(o)
		_, _ = ParseMulticastTree(o)
		_, _ = ParseFetchID(o)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchIDOptionRoundTrip(t *testing.T) {
	id := SessionID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	got, err := ParseFetchID(FetchIDOption(id))
	if err != nil || got != id {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := ParseFetchID(Option{Kind: OptFetchID, Data: []byte{1}}); err == nil {
		t.Fatal("short fetch id accepted")
	}
}
