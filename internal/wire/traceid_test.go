package wire

import (
	"strings"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id, err := NewTraceID()
	if err != nil {
		t.Fatal(err)
	}
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero id")
	}
	opt := TraceIDOption(id)
	got, err := ParseTraceID(opt)
	if err != nil {
		t.Fatalf("ParseTraceID: %v", err)
	}
	if got != id {
		t.Fatalf("round trip mismatch: %v != %v", got, id)
	}
	if s := id.String(); len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex chars", s)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 64; i++ {
		id, err := NewTraceID()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %v", id)
		}
		seen[id] = true
	}
}

func TestParseTraceIDErrors(t *testing.T) {
	cases := []Option{
		{Kind: OptHopIndex, Data: make([]byte, 16)},
		{Kind: OptTraceID, Data: make([]byte, 15)},
		{Kind: OptTraceID, Data: make([]byte, 17)},
		{Kind: OptTraceID},
	}
	for _, o := range cases {
		if _, err := ParseTraceID(o); err == nil {
			t.Errorf("ParseTraceID accepted kind=%d len=%d", o.Kind, len(o.Data))
		}
	}
}

func TestHeaderTraceID(t *testing.T) {
	h := &Header{Version: Version1, Type: TypeData}
	if _, ok := h.TraceID(); ok {
		t.Fatal("TraceID present on a header without the option")
	}
	id := TraceID{0xAA, 1, 2, 3}
	h.AddOption(TraceIDOption(id))
	got, ok := h.TraceID()
	if !ok || got != id {
		t.Fatalf("TraceID() = %v, %v; want %v, true", got, ok, id)
	}

	// A malformed option reads as absent, never as a bogus id.
	bad := &Header{Version: Version1, Type: TypeData,
		Options: []Option{{Kind: OptTraceID, Data: []byte{1, 2, 3}}}}
	if _, ok := bad.TraceID(); ok {
		t.Fatal("TraceID parsed a malformed option")
	}
}

func TestTraceIDSurvivesHeaderRoundTrip(t *testing.T) {
	id, err := NewTraceID()
	if err != nil {
		t.Fatal(err)
	}
	h := &Header{
		Version: Version1,
		Type:    TypeData,
		Src:     MustEndpoint("10.0.0.1:7411"),
		Dst:     MustEndpoint("10.0.0.9:7411"),
		Options: []Option{TraceIDOption(id), HopIndexOption(2)},
	}
	buf, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Header
	if err := back.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	got, ok := back.TraceID()
	if !ok || got != id {
		t.Fatalf("trace id lost in header round trip: %v, %v", got, ok)
	}
}
