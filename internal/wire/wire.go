// Package wire defines the Logistical Session Layer wire format.
//
// Every LSL session begins with a header carrying a 128-bit session
// identifier, IPv4 source and destination addresses with 16-bit ports,
// 16-bit Version and Type fields, and a header-length field so the
// header can carry variable-length options (Section 2 of the paper).
// Options are TLVs; the ones defined here are the loose source route
// (the initiator-specified path through session-layer depots), the
// multicast staging tree, a buffer advertisement, and the generate-data
// test request used by the evaluation harness.
//
// Fixed header layout, big endian:
//
//	offset 0  Version   uint16
//	offset 2  Type      uint16
//	offset 4  HeaderLen uint16 (total bytes including options)
//	offset 6  reserved  uint16 (zero)
//	offset 8  SessionID [16]byte
//	offset 24 SrcIP     [4]byte
//	offset 28 DstIP     [4]byte
//	offset 32 SrcPort   uint16
//	offset 34 DstPort   uint16
//	offset 36 options...
package wire

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Version1 is the protocol version implemented by this package.
const Version1 uint16 = 1

// Session types.
const (
	// TypeData opens a point-to-point data session: the byte stream
	// after the header is the payload, terminated by connection close.
	TypeData uint16 = 1
	// TypeGenerate asks the receiving depot to synthesize test data:
	// the header must carry a GenerateOption. Used by the evaluation's
	// pseudo-random test generator.
	TypeGenerate uint16 = 2
	// TypeRefuse is sent back by a depot that declines a session (e.g.
	// on load), before closing the connection.
	TypeRefuse uint16 = 3
	// TypeMulticast opens a staging session that fans the payload out
	// to every leaf of the carried multicast tree.
	TypeMulticast uint16 = 4
	// TypeStore asks the destination depot to hold the payload instead
	// of delivering it, keyed by the session id — the first half of the
	// paper's asynchronous session mode ("an asynchronous session is
	// possible with the receiver discovering the session identifier and
	// reading the data from the last depot").
	TypeStore uint16 = 5
	// TypeFetch retrieves a stored payload: the header carries an
	// OptFetchID naming the stored session; the depot answers with a
	// TypeData header followed by the bytes.
	TypeFetch uint16 = 6
)

// Option kinds.
const (
	// OptSourceRoute carries the remaining loose source route: a list
	// of endpoints still to traverse, ending with the final sink.
	OptSourceRoute uint16 = 1
	// OptBufferAdvert advertises the sender's pipeline buffer size.
	OptBufferAdvert uint16 = 2
	// OptGenerate carries the byte count for TypeGenerate sessions.
	OptGenerate uint16 = 3
	// OptMulticastTree carries a serialized staging tree.
	OptMulticastTree uint16 = 4
	// OptFetchID names the stored session a TypeFetch request wants.
	OptFetchID uint16 = 5
	// OptHopIndex counts the depots a session has traversed so far.
	// The initiator omits it (hop 0); each depot stamps its own
	// position into the forwarded header, so every node knows where it
	// sits in the chain — the key per-hop trace events are indexed by.
	OptHopIndex uint16 = 6
	// OptResumeOffset marks a session as the continuation of an
	// interrupted transfer: the payload stream begins at this absolute
	// byte offset of the original object rather than at zero. Depots
	// forward it untouched; the sink uses it to append instead of
	// restart — the recovery path's resume semantics.
	OptResumeOffset uint16 = 7
	// OptStripeCount announces that the session's object is striped
	// over this many parallel sublink chains sharing one session id.
	// Each stripe is an ordinary data session carrying a contiguous
	// byte range of the object; the range start travels in
	// OptResumeOffset, so the sink reassembles by absolute offset with
	// the same machinery that handles resumed transfers. Depots forward
	// the option untouched.
	OptStripeCount uint16 = 8
	// OptStripeIndex identifies which stripe (0-based, less than the
	// carried OptStripeCount) this sublink chain carries. Depots use it
	// to label per-stripe trace events and the active-stripes gauge;
	// it never affects routing.
	OptStripeIndex uint16 = 9
	// OptChunkChecksum announces that the session payload is framed in
	// checksummed chunks: every chunk travels behind a length + CRC-32C
	// frame header that each depot hop verifies and re-stamps before
	// forwarding, so a corrupting hop is caught by its immediate
	// successor. A malformed option degrades to unchecked forwarding.
	OptChunkChecksum uint16 = 14
	// OptContentDigest carries the SHA-256 of the whole payload (and
	// its byte size), minted by the sender and forwarded untouched;
	// the sink verifies the reassembled object against it end to end.
	OptContentDigest uint16 = 15
)

// HeaderFixedLen is the size of the fixed portion of the header.
const HeaderFixedLen = 36

// MaxHeaderLen bounds accepted headers, defending depots against
// malformed length fields.
const MaxHeaderLen = 64 << 10

// SessionID is the 128-bit session identifier.
type SessionID [16]byte

// NewSessionID draws a random session identifier.
func NewSessionID() (SessionID, error) {
	var id SessionID
	if _, err := rand.Read(id[:]); err != nil {
		return id, fmt.Errorf("wire: session id: %w", err)
	}
	return id, nil
}

// String renders the id as hex.
func (id SessionID) String() string { return hex.EncodeToString(id[:]) }

// Endpoint is an IPv4 address and port, the addressing unit of LSL.
type Endpoint struct {
	IP   [4]byte
	Port uint16
}

// ParseEndpoint parses "a.b.c.d:port".
func ParseEndpoint(s string) (Endpoint, error) {
	host, portStr, err := net.SplitHostPort(s)
	if err != nil {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: %w", s, err)
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: bad IPv4 address", s)
	}
	v4 := ip.To4()
	if v4 == nil {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: not IPv4 (LSL headers are v4)", s)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: bad port: %w", s, err)
	}
	var e Endpoint
	copy(e.IP[:], v4)
	e.Port = uint16(port)
	return e, nil
}

// MustEndpoint is ParseEndpoint panicking on error, for tests and
// literals.
func MustEndpoint(s string) Endpoint {
	e, err := ParseEndpoint(s)
	if err != nil {
		panic(err)
	}
	return e
}

// String renders the endpoint as "a.b.c.d:port".
func (e Endpoint) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", e.IP[0], e.IP[1], e.IP[2], e.IP[3], e.Port)
}

// IsZero reports whether the endpoint is unset.
func (e Endpoint) IsZero() bool { return e == Endpoint{} }

// Option is one header TLV.
type Option struct {
	Kind uint16
	Data []byte
}

// Header is a parsed LSL session header.
type Header struct {
	Version uint16
	Type    uint16
	Session SessionID
	Src     Endpoint
	Dst     Endpoint
	Options []Option
}

// Errors returned by header parsing.
var (
	ErrBadMagicLen   = errors.New("wire: header length field out of range")
	ErrBadVersion    = errors.New("wire: unsupported version")
	ErrTruncated     = errors.New("wire: truncated header")
	ErrOptionBounds  = errors.New("wire: option overruns header")
	ErrOptionMissing = errors.New("wire: required option missing")
)

// Option returns the last option of the given kind. Duplicate
// occurrences of a singleton option kind are explicitly last-wins: a
// node that wants to override an inherited value appends its own
// option rather than rewriting the header, and every reader agrees on
// which copy governs. Multi-instance kinds (OptRouteTable chunks,
// OptCacheLookup inventories) are read by iterating Options directly
// and are unaffected.
func (h *Header) Option(kind uint16) (Option, bool) {
	for i := len(h.Options) - 1; i >= 0; i-- {
		if h.Options[i].Kind == kind {
			return h.Options[i], true
		}
	}
	return Option{}, false
}

// AddOption appends an option.
func (h *Header) AddOption(o Option) { h.Options = append(h.Options, o) }

// MarshalBinary encodes the header.
func (h *Header) MarshalBinary() ([]byte, error) {
	total := HeaderFixedLen
	for _, o := range h.Options {
		total += 4 + len(o.Data)
	}
	if total > MaxHeaderLen {
		return nil, fmt.Errorf("wire: header too large (%d > %d)", total, MaxHeaderLen)
	}
	buf := make([]byte, total)
	be := binary.BigEndian
	be.PutUint16(buf[0:], h.Version)
	be.PutUint16(buf[2:], h.Type)
	be.PutUint16(buf[4:], uint16(total))
	copy(buf[8:24], h.Session[:])
	copy(buf[24:28], h.Src.IP[:])
	copy(buf[28:32], h.Dst.IP[:])
	be.PutUint16(buf[32:], h.Src.Port)
	be.PutUint16(buf[34:], h.Dst.Port)
	off := HeaderFixedLen
	for _, o := range h.Options {
		be.PutUint16(buf[off:], o.Kind)
		be.PutUint16(buf[off+2:], uint16(len(o.Data)))
		copy(buf[off+4:], o.Data)
		off += 4 + len(o.Data)
	}
	return buf, nil
}

// UnmarshalBinary decodes a complete header from buf.
func (h *Header) UnmarshalBinary(buf []byte) error {
	if len(buf) < HeaderFixedLen {
		return ErrTruncated
	}
	be := binary.BigEndian
	h.Version = be.Uint16(buf[0:])
	if h.Version != Version1 {
		return fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	h.Type = be.Uint16(buf[2:])
	hlen := int(be.Uint16(buf[4:]))
	if hlen < HeaderFixedLen || hlen > len(buf) {
		return ErrBadMagicLen
	}
	copy(h.Session[:], buf[8:24])
	copy(h.Src.IP[:], buf[24:28])
	copy(h.Dst.IP[:], buf[28:32])
	h.Src.Port = be.Uint16(buf[32:])
	h.Dst.Port = be.Uint16(buf[34:])
	h.Options = nil
	off := HeaderFixedLen
	for off < hlen {
		if off+4 > hlen {
			return ErrOptionBounds
		}
		kind := be.Uint16(buf[off:])
		dlen := int(be.Uint16(buf[off+2:]))
		if off+4+dlen > hlen {
			return ErrOptionBounds
		}
		h.Options = append(h.Options, Option{
			Kind: kind,
			Data: append([]byte(nil), buf[off+4:off+4+dlen]...),
		})
		off += 4 + dlen
	}
	return nil
}

// WriteHeader writes the encoded header to w.
func WriteHeader(w io.Writer, h *Header) error {
	buf, err := h.MarshalBinary()
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	return nil
}

// ReadHeader reads and decodes one header from r.
func ReadHeader(r io.Reader) (*Header, error) {
	fixed := make([]byte, HeaderFixedLen)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if v := binary.BigEndian.Uint16(fixed[0:]); v != Version1 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	hlen := int(binary.BigEndian.Uint16(fixed[4:]))
	if hlen < HeaderFixedLen || hlen > MaxHeaderLen {
		return nil, ErrBadMagicLen
	}
	buf := make([]byte, hlen)
	copy(buf, fixed)
	if _, err := io.ReadFull(r, buf[HeaderFixedLen:]); err != nil {
		return nil, fmt.Errorf("wire: read header options: %w", err)
	}
	h := new(Header)
	if err := h.UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	return h, nil
}
