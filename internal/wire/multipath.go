package wire

import (
	"encoding/binary"
	"fmt"
)

// Multipath options tie the k pinned-route sessions of one logical
// transfer together. Every session of a multipath transfer shares the
// transfer's session id (so sinks dispatch acks by absolute offset,
// exactly as stripes do) and additionally carries a path-set id — a
// second identifier grouping the disjoint routes for tracing and
// per-path accounting — plus its own (index, count) coordinate in the
// set. Depots forward both options untouched; a malformed body
// degrades to absent, which a reader must treat as "single path".
const (
	// OptPathSetID carries the 16-byte identifier of the multipath
	// set this session belongs to.
	OptPathSetID uint16 = 19
	// OptPathIndex carries which disjoint route (index) of how many
	// (count) this session is pinned to.
	OptPathIndex uint16 = 20
)

// PathSetIDOption tags a session with the multipath set it belongs
// to.
func PathSetIDOption(id SessionID) Option {
	return Option{Kind: OptPathSetID, Data: append([]byte(nil), id[:]...)}
}

// ParsePathSetID decodes a path-set-id option body.
func ParsePathSetID(o Option) (SessionID, error) {
	var id SessionID
	if o.Kind != OptPathSetID || len(o.Data) != len(id) {
		return id, fmt.Errorf("%w: bad path set id", ErrBadOption)
	}
	copy(id[:], o.Data)
	return id, nil
}

// PathIndexOption identifies which of count disjoint routes this
// session is pinned to. Index is zero-based and must be below count.
func PathIndexOption(index, count uint16) Option {
	var data [4]byte
	binary.BigEndian.PutUint16(data[:2], index)
	binary.BigEndian.PutUint16(data[2:], count)
	return Option{Kind: OptPathIndex, Data: data[:]}
}

// ParsePathIndex decodes a path-index option body. A count of zero or
// an index at or beyond the count is malformed: a multipath set always
// has at least one route and every session must name one of them.
func ParsePathIndex(o Option) (index, count uint16, err error) {
	if o.Kind != OptPathIndex || len(o.Data) != 4 {
		return 0, 0, fmt.Errorf("%w: bad path index", ErrBadOption)
	}
	index = binary.BigEndian.Uint16(o.Data[:2])
	count = binary.BigEndian.Uint16(o.Data[2:])
	if count == 0 {
		return 0, 0, fmt.Errorf("%w: path count 0", ErrBadOption)
	}
	if index >= count {
		return 0, 0, fmt.Errorf("%w: path index %d of %d", ErrBadOption, index, count)
	}
	return index, count, nil
}

// PathSetID returns the multipath set this session belongs to, if the
// header carries a well-formed path-set-id option. Malformed degrades
// to absent — the session is treated as an ordinary single-path one.
func (h *Header) PathSetID() (SessionID, bool) {
	if opt, ok := h.Option(OptPathSetID); ok {
		if id, err := ParsePathSetID(opt); err == nil {
			return id, true
		}
	}
	return SessionID{}, false
}

// PathCount returns how many disjoint routes the session's transfer is
// fanned over: 1 for a single-path session or a malformed option — an
// unreadable coordinate must not make a depot misroute a session it
// can still forward.
func (h *Header) PathCount() int {
	if opt, ok := h.Option(OptPathIndex); ok {
		if _, n, err := ParsePathIndex(opt); err == nil {
			return int(n)
		}
	}
	return 1
}

// PathIndex returns which disjoint route this session is pinned to
// (0 when single-path or unreadable).
func (h *Header) PathIndex() int {
	if opt, ok := h.Option(OptPathIndex); ok {
		if i, _, err := ParsePathIndex(opt); err == nil {
			return int(i)
		}
	}
	return 0
}
