package wire

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// OptTraceID carries the 128-bit end-to-end trace identifier of the
// logical transfer this session belongs to. The initiator mints it
// once; depots forward it untouched; retry, resume, and failover
// continuation sessions — and every stripe of a striped transfer —
// reuse the original value, so the trace id is the correlation key
// that stitches all obs.Events of one logical transfer into a single
// causally ordered timeline, even across fresh session identifiers.
const OptTraceID uint16 = 12

// TraceID is the 128-bit end-to-end transfer trace identifier.
type TraceID [16]byte

// NewTraceID draws a random trace identifier.
func NewTraceID() (TraceID, error) {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil {
		return id, fmt.Errorf("wire: trace id: %w", err)
	}
	return id, nil
}

// String renders the id as hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// TraceIDOption carries a trace identifier in a session header.
func TraceIDOption(id TraceID) Option {
	return Option{Kind: OptTraceID, Data: append([]byte(nil), id[:]...)}
}

// ParseTraceID decodes a trace-id option.
func ParseTraceID(o Option) (TraceID, error) {
	var id TraceID
	if o.Kind != OptTraceID || len(o.Data) != len(id) {
		return id, fmt.Errorf("%w: bad trace id", ErrBadOption)
	}
	copy(id[:], o.Data)
	return id, nil
}

// TraceID returns the trace identifier the header carries and whether
// one was present and well-formed. A malformed option reads as absent:
// an unreadable trace id must not make a depot refuse a session it can
// still forward.
func (h *Header) TraceID() (TraceID, bool) {
	opt, ok := h.Option(OptTraceID)
	if !ok {
		return TraceID{}, false
	}
	id, err := ParseTraceID(opt)
	if err != nil {
		return TraceID{}, false
	}
	return id, true
}
