package wire

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// TypeControl opens a control-plane session: the header's options carry
// the payload (a versioned route table pushed by the controller) and no
// byte stream follows. The depot answers with a TypeControl header
// echoing its installed table epoch, so the pusher can verify the push
// landed, or a TypeRefuse header when it does not accept control
// sessions.
const TypeControl uint16 = 7

// Control-plane option kinds.
const (
	// OptRouteTable carries a batch of destination → next-hop tuples,
	// 12 bytes each (dst IPv4+port, next IPv4+port). A header may carry
	// several OptRouteTable options; the receiver concatenates them, so
	// one push can exceed a single option's 64 KB TLV length limit.
	OptRouteTable uint16 = 10
	// OptTableEpoch stamps a control push with the controller's
	// monotonically increasing table version. Depots ignore pushes whose
	// epoch is not newer than the installed table's, so reordered or
	// duplicated pushes never roll routing state backwards.
	OptTableEpoch uint16 = 11
)

// RouteEntry is one destination → next-hop tuple of a pushed route
// table, the wire form of the paper's "destination/next hop tuples
// [that] form a route table ... consumed by the logistical depot".
type RouteEntry struct {
	// Dst is the final destination endpoint the entry routes.
	Dst Endpoint
	// Next is the next-hop endpoint a session for Dst is forwarded to.
	// Next equal to the depot's own endpoint means "deliver locally".
	Next Endpoint
}

// routeEntryLen is the encoded size of one RouteEntry.
const routeEntryLen = 12

// maxRouteEntriesPerOption bounds one OptRouteTable option body well
// under the 64 KB TLV length limit; larger tables are chunked across
// several options in the same header.
const maxRouteEntriesPerOption = 2048

// MaxRouteEntries is the largest route table one control push can
// carry: the chunked options plus the epoch option must still fit the
// MaxHeaderLen header bound.
const MaxRouteEntries = (MaxHeaderLen - HeaderFixedLen - 64) / routeEntryLen

// RouteTableOptions encodes a route table as one or more OptRouteTable
// options, chunked so every option body stays within TLV bounds. The
// entries are encoded in sorted order (by destination, then next hop)
// so equal tables always serialize to equal bytes. It fails when the
// table cannot fit a single header.
func RouteTableOptions(entries []RouteEntry) ([]Option, error) {
	if len(entries) > MaxRouteEntries {
		return nil, fmt.Errorf("wire: route table with %d entries exceeds the %d-entry header bound", len(entries), MaxRouteEntries)
	}
	sorted := append([]RouteEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dst != sorted[j].Dst {
			return lessEndpoint(sorted[i].Dst, sorted[j].Dst)
		}
		return lessEndpoint(sorted[i].Next, sorted[j].Next)
	})
	var opts []Option
	for len(sorted) > 0 {
		n := len(sorted)
		if n > maxRouteEntriesPerOption {
			n = maxRouteEntriesPerOption
		}
		data := make([]byte, 0, n*routeEntryLen)
		for _, e := range sorted[:n] {
			data = appendEndpoint(data, e.Dst)
			data = appendEndpoint(data, e.Next)
		}
		opts = append(opts, Option{Kind: OptRouteTable, Data: data})
		sorted = sorted[n:]
	}
	if len(opts) == 0 {
		// An explicitly empty table is still a valid push (it clears
		// routing state), so it encodes as one empty option.
		opts = []Option{{Kind: OptRouteTable}}
	}
	return opts, nil
}

// appendEndpoint appends the 6-byte wire form of e.
func appendEndpoint(data []byte, e Endpoint) []byte {
	data = append(data, e.IP[:]...)
	var p [2]byte
	binary.BigEndian.PutUint16(p[:], e.Port)
	return append(data, p[:]...)
}

// lessEndpoint orders endpoints by IP bytes, then port.
func lessEndpoint(a, b Endpoint) bool {
	for i := range a.IP {
		if a.IP[i] != b.IP[i] {
			return a.IP[i] < b.IP[i]
		}
	}
	return a.Port < b.Port
}

// ParseRouteTable decodes one OptRouteTable option body. Malformed
// bodies are rejected whole — a route table is installed atomically or
// not at all, so a depot never forwards by half a table.
func ParseRouteTable(o Option) ([]RouteEntry, error) {
	if o.Kind != OptRouteTable {
		return nil, fmt.Errorf("%w: kind %d is not a route table", ErrBadOption, o.Kind)
	}
	if len(o.Data)%routeEntryLen != 0 {
		return nil, fmt.Errorf("%w: route table length %d not a multiple of %d", ErrBadOption, len(o.Data), routeEntryLen)
	}
	entries := make([]RouteEntry, 0, len(o.Data)/routeEntryLen)
	for off := 0; off < len(o.Data); off += routeEntryLen {
		var e RouteEntry
		copy(e.Dst.IP[:], o.Data[off:off+4])
		e.Dst.Port = binary.BigEndian.Uint16(o.Data[off+4:])
		copy(e.Next.IP[:], o.Data[off+6:off+10])
		e.Next.Port = binary.BigEndian.Uint16(o.Data[off+10:])
		if e.Dst.IsZero() || e.Next.IsZero() {
			return nil, fmt.Errorf("%w: route table entry with zero endpoint", ErrBadOption)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// TableEpochOption stamps a control push with its table version.
func TableEpochOption(epoch uint64) Option {
	var data [8]byte
	binary.BigEndian.PutUint64(data[:], epoch)
	return Option{Kind: OptTableEpoch, Data: data[:]}
}

// ParseTableEpoch decodes a table-epoch option.
func ParseTableEpoch(o Option) (uint64, error) {
	if o.Kind != OptTableEpoch || len(o.Data) != 8 {
		return 0, fmt.Errorf("%w: bad table epoch", ErrBadOption)
	}
	return binary.BigEndian.Uint64(o.Data), nil
}

// TableEpoch returns the table epoch carried by the header, or 0 when
// the option is absent or unreadable — epoch 0 is never a valid push
// (controllers start at 1), so a damaged epoch degrades to "stale" and
// the receiver keeps its current table, the same discipline as the
// stripe options.
func (h *Header) TableEpoch() uint64 {
	if opt, ok := h.Option(OptTableEpoch); ok {
		if e, err := ParseTableEpoch(opt); err == nil {
			return e
		}
	}
	return 0
}

// RouteEntries concatenates every OptRouteTable option in the header in
// order. Any malformed chunk fails the whole parse, so callers install
// complete tables or nothing.
func (h *Header) RouteEntries() ([]RouteEntry, error) {
	var entries []RouteEntry
	for _, o := range h.Options {
		if o.Kind != OptRouteTable {
			continue
		}
		es, err := ParseRouteTable(o)
		if err != nil {
			return nil, err
		}
		entries = append(entries, es...)
	}
	return entries, nil
}
