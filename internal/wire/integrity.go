package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ChecksumCRC32C is the only chunk-checksum algorithm defined so far:
// CRC-32C (Castagnoli), the polynomial with hardware support on every
// platform the depots run on. The option carries the algorithm
// explicitly so a future one can be introduced without a version bump.
const ChecksumCRC32C uint16 = 1

// crcTable is the Castagnoli table shared by every frame writer,
// verifier, and reader in the process.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum indicates a chunk frame failed its CRC-32C check (or its
// frame header was structurally invalid). The retry package classifies
// it as transient: the damaged range is re-sent via the resume path.
var ErrChecksum = errors.New("wire: chunk checksum mismatch")

// ErrDigest indicates a delivered payload failed its end-to-end
// SHA-256 content-digest check at the sink. Also transient: the whole
// object is re-sent.
var ErrDigest = errors.New("wire: content digest mismatch")

// ChunkChecksumOption announces CRC-32C chunk framing for the session
// payload.
func ChunkChecksumOption() Option {
	var data [2]byte
	binary.BigEndian.PutUint16(data[:], ChecksumCRC32C)
	return Option{Kind: OptChunkChecksum, Data: data[:]}
}

// ParseChunkChecksum decodes a chunk-checksum option, returning the
// algorithm identifier. Unknown algorithms are malformed: a depot that
// cannot verify must degrade to unchecked forwarding, not guess.
func ParseChunkChecksum(o Option) (uint16, error) {
	if o.Kind != OptChunkChecksum || len(o.Data) != 2 {
		return 0, fmt.Errorf("%w: bad chunk checksum option", ErrBadOption)
	}
	alg := binary.BigEndian.Uint16(o.Data)
	if alg != ChecksumCRC32C {
		return 0, fmt.Errorf("%w: unknown checksum algorithm %d", ErrBadOption, alg)
	}
	return alg, nil
}

// Checksummed reports whether the session payload is framed in
// CRC-32C-checksummed chunks. A missing or malformed option degrades
// to false — unchecked forwarding — never to a parse failure.
func (h *Header) Checksummed() bool {
	if opt, ok := h.Option(OptChunkChecksum); ok {
		if _, err := ParseChunkChecksum(opt); err == nil {
			return true
		}
	}
	return false
}

// DigestLen is the length of a content digest sum (SHA-256).
const DigestLen = 32

// ContentDigest is the end-to-end integrity statement a sender mints
// for a transfer: the object's byte size and the SHA-256 over those
// bytes in offset order.
type ContentDigest struct {
	Size int64
	Sum  [DigestLen]byte
}

// ContentDigestOption encodes a content digest: 8 bytes of big-endian
// size followed by the 32-byte SHA-256 sum.
func ContentDigestOption(d ContentDigest) Option {
	data := make([]byte, 8+DigestLen)
	binary.BigEndian.PutUint64(data, uint64(d.Size))
	copy(data[8:], d.Sum[:])
	return Option{Kind: OptContentDigest, Data: data}
}

// ParseContentDigest decodes a content-digest option.
func ParseContentDigest(o Option) (ContentDigest, error) {
	var d ContentDigest
	if o.Kind != OptContentDigest || len(o.Data) != 8+DigestLen {
		return d, fmt.Errorf("%w: bad content digest", ErrBadOption)
	}
	size := binary.BigEndian.Uint64(o.Data)
	if size > 1<<62 {
		return d, fmt.Errorf("%w: content digest size %d out of range", ErrBadOption, size)
	}
	d.Size = int64(size)
	copy(d.Sum[:], o.Data[8:])
	return d, nil
}

// ContentDigest returns the carried end-to-end digest and whether one
// is present. A malformed option degrades to absent — the sink simply
// does not verify — never to a parse failure.
func (h *Header) ContentDigest() (ContentDigest, bool) {
	if opt, ok := h.Option(OptContentDigest); ok {
		if d, err := ParseContentDigest(opt); err == nil {
			return d, true
		}
	}
	return ContentDigest{}, false
}

// Chunk frame layout: a 4-byte big-endian payload length and a 4-byte
// big-endian CRC-32C over the payload, followed by the payload itself.
// The stream is a back-to-back frame sequence ending at transport EOF.
const (
	// FrameHeaderLen is the per-chunk framing overhead in bytes.
	FrameHeaderLen = 8
	// MaxFramePayload bounds one frame's payload, defending receivers
	// against corrupt length fields. It comfortably covers the depot
	// pipeline's 32 KiB chunk unit.
	MaxFramePayload = 64 << 10
)

// FrameWriter frames a payload stream into checksummed chunks: each
// Write becomes one or more frames of at most MaxFramePayload bytes.
// The initiator of a checksummed session writes its payload through
// one of these.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a FrameWriter emitting frames to w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: make([]byte, FrameHeaderLen+MaxFramePayload)}
}

// Write frames p and writes it out, reporting len(p) on success. Each
// frame is emitted in a single underlying Write so the downstream
// transport sees whole frames.
func (fw *FrameWriter) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		n := len(p)
		if n > MaxFramePayload {
			n = MaxFramePayload
		}
		binary.BigEndian.PutUint32(fw.buf[0:4], uint32(n))
		binary.BigEndian.PutUint32(fw.buf[4:8], crc32.Checksum(p[:n], crcTable))
		copy(fw.buf[FrameHeaderLen:], p[:n])
		if _, err := fw.w.Write(fw.buf[:FrameHeaderLen+n]); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// frameScanner reads a checksummed frame stream, verifying each frame's
// CRC-32C. With strip=false (VerifyingReader) it yields the re-stamped
// encoded frames, ready to forward to the next hop; with strip=true
// (FrameReader) it yields the raw payload, for the sink.
type frameScanner struct {
	r      io.Reader
	strip  bool
	buf    []byte // one encoded frame
	pos, n int    // unread window of buf
	frame  int64  // frames verified so far
	offset int64  // payload bytes verified so far
}

// VerifyingReader verifies a checksummed frame stream chunk by chunk
// and yields the verified, re-stamped frames unchanged — the depot
// forwarding path reads through one of these, so a corrupted chunk
// surfaces as ErrChecksum at the first hop after the corruption.
type VerifyingReader struct{ frameScanner }

// NewVerifyingReader returns a VerifyingReader over r.
func NewVerifyingReader(r io.Reader) *VerifyingReader {
	return &VerifyingReader{frameScanner{r: r, buf: make([]byte, FrameHeaderLen+MaxFramePayload)}}
}

// FrameReader verifies a checksummed frame stream and yields the raw
// payload with the framing stripped — the sink side of a checksummed
// session.
type FrameReader struct{ frameScanner }

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{frameScanner{r: r, strip: true, buf: make([]byte, FrameHeaderLen+MaxFramePayload)}}
}

// Read implements io.Reader over the verified stream.
func (s *frameScanner) Read(p []byte) (int, error) {
	for s.pos >= s.n {
		if err := s.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, s.buf[s.pos:s.n])
	s.pos += n
	return n, nil
}

// fill reads and verifies the next frame into buf. A clean EOF at a
// frame boundary is the end of the stream; a tear inside a frame is a
// transport event (io.ErrUnexpectedEOF — transient), while a bad
// length or CRC is ErrChecksum — detected corruption.
func (s *frameScanner) fill() error {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: torn frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length == 0 || length > MaxFramePayload {
		return fmt.Errorf("%w: frame %d at offset %d: length %d out of range",
			ErrChecksum, s.frame, s.offset, length)
	}
	payload := s.buf[FrameHeaderLen : FrameHeaderLen+int(length)]
	if _, err := io.ReadFull(s.r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("wire: torn frame payload: %w", err)
	}
	sum := crc32.Checksum(payload, crcTable)
	if sum != binary.BigEndian.Uint32(hdr[4:8]) {
		return fmt.Errorf("%w: frame %d at offset %d", ErrChecksum, s.frame, s.offset)
	}
	if s.strip {
		s.pos, s.n = FrameHeaderLen, FrameHeaderLen+int(length)
	} else {
		// Re-stamp: the forwarded frame header carries the CRC this hop
		// computed over the bytes it verified, not the bytes it received.
		binary.BigEndian.PutUint32(s.buf[0:4], length)
		binary.BigEndian.PutUint32(s.buf[4:8], sum)
		s.pos, s.n = 0, FrameHeaderLen+int(length)
	}
	s.frame++
	s.offset += int64(length)
	return nil
}
