package wire

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func TestChunkChecksumOptionRoundTrip(t *testing.T) {
	o := ChunkChecksumOption()
	alg, err := ParseChunkChecksum(o)
	if err != nil {
		t.Fatalf("ParseChunkChecksum: %v", err)
	}
	if alg != ChecksumCRC32C {
		t.Fatalf("algorithm = %d, want %d", alg, ChecksumCRC32C)
	}
	h := &Header{Options: []Option{o}}
	if !h.Checksummed() {
		t.Fatal("Checksummed() = false with a valid option")
	}
}

func TestChecksummedDegradesOnMalformed(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"absent", nil},
		{"short body", []Option{{Kind: OptChunkChecksum, Data: []byte{1}}}},
		{"unknown algorithm", []Option{{Kind: OptChunkChecksum, Data: []byte{0, 99}}}},
	}
	for _, tc := range cases {
		h := &Header{Options: tc.opts}
		if h.Checksummed() {
			t.Errorf("%s: Checksummed() = true, want degraded false", tc.name)
		}
	}
}

func TestContentDigestRoundTrip(t *testing.T) {
	want := ContentDigest{Size: 1 << 30, Sum: sha256.Sum256([]byte("payload"))}
	h := &Header{Options: []Option{ContentDigestOption(want)}}
	got, ok := h.ContentDigest()
	if !ok {
		t.Fatal("ContentDigest() missing after AddOption")
	}
	if got != want {
		t.Fatalf("digest round-trip: got %+v want %+v", got, want)
	}
}

func TestContentDigestDegradesOnMalformed(t *testing.T) {
	h := &Header{Options: []Option{{Kind: OptContentDigest, Data: []byte{1, 2, 3}}}}
	if _, ok := h.ContentDigest(); ok {
		t.Fatal("malformed digest option parsed as present")
	}
	if _, err := ParseContentDigest(Option{Kind: OptContentDigest, Data: make([]byte, 39)}); err == nil {
		t.Fatal("ParseContentDigest accepted a 39-byte body")
	}
}

// TestFrameRoundTrip frames a payload with odd-sized writes and strips
// it back through both one-frame-at-a-time and bulk reads.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 3*MaxFramePayload+777)
	rng.Read(payload)

	var framed bytes.Buffer
	fw := NewFrameWriter(&framed)
	for off := 0; off < len(payload); {
		n := 1 + rng.Intn(MaxFramePayload*2)
		if off+n > len(payload) {
			n = len(payload) - off
		}
		wrote, err := fw.Write(payload[off : off+n])
		if err != nil || wrote != n {
			t.Fatalf("FrameWriter.Write = %d, %v (want %d)", wrote, err, n)
		}
		off += n
	}

	got, err := io.ReadAll(NewFrameReader(bytes.NewReader(framed.Bytes())))
	if err != nil {
		t.Fatalf("FrameReader: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("FrameReader payload mismatch")
	}

	// The verifying reader must pass the encoded stream through intact.
	passed, err := io.ReadAll(NewVerifyingReader(bytes.NewReader(framed.Bytes())))
	if err != nil {
		t.Fatalf("VerifyingReader: %v", err)
	}
	if !bytes.Equal(passed, framed.Bytes()) {
		t.Fatal("VerifyingReader altered the encoded stream")
	}
}

// TestFrameDetectsCorruption flips one payload byte and expects
// ErrChecksum from both scanners, after any clean prefix.
func TestFrameDetectsCorruption(t *testing.T) {
	payload := make([]byte, 2*MaxFramePayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	var framed bytes.Buffer
	if _, err := NewFrameWriter(&framed).Write(payload); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), framed.Bytes()...)
	// Corrupt a byte inside the second frame's payload.
	bad[FrameHeaderLen+MaxFramePayload+FrameHeaderLen+10] ^= 0xFF

	for _, tc := range []struct {
		name string
		r    io.Reader
	}{
		{"FrameReader", NewFrameReader(bytes.NewReader(bad))},
		{"VerifyingReader", NewVerifyingReader(bytes.NewReader(bad))},
	} {
		got, err := io.ReadAll(tc.r)
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("%s: err = %v, want ErrChecksum", tc.name, err)
		}
		if len(got) == 0 {
			t.Errorf("%s: clean first frame was withheld", tc.name)
		}
	}
}

// TestFrameDetectsBadLength rejects out-of-range length fields as
// corruption, not as a huge allocation or a hang.
func TestFrameDetectsBadLength(t *testing.T) {
	for _, hdr := range [][]byte{
		{0, 0, 0, 0, 0, 0, 0, 0},             // zero length
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // 4 GiB length
	} {
		_, err := io.ReadAll(NewFrameReader(bytes.NewReader(hdr)))
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("length %x: err = %v, want ErrChecksum", hdr[:4], err)
		}
	}
}

// TestFrameTornStream distinguishes a mid-frame tear (a transport
// event, io.ErrUnexpectedEOF) from detected corruption.
func TestFrameTornStream(t *testing.T) {
	var framed bytes.Buffer
	if _, err := NewFrameWriter(&framed).Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	torn := framed.Bytes()[:framed.Len()-100]
	_, err := io.ReadAll(NewFrameReader(bytes.NewReader(torn)))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn payload: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if errors.Is(err, ErrChecksum) {
		t.Fatal("a torn stream must not be reported as corruption")
	}

	// A tear inside the 8-byte frame header is the same transport event.
	_, err = io.ReadAll(NewFrameReader(bytes.NewReader(framed.Bytes()[:3])))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header: err = %v, want io.ErrUnexpectedEOF", err)
	}
}
