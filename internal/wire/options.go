package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SourceRouteOption encodes the remaining loose source route: the
// endpoints still to traverse in order, ending with the final sink.
// A depot receiving a session pops the first entry (itself, or rather
// its successor) and forwards.
func SourceRouteOption(hops []Endpoint) Option {
	data := make([]byte, 0, 6*len(hops))
	for _, h := range hops {
		data = append(data, h.IP[:]...)
		var p [2]byte
		binary.BigEndian.PutUint16(p[:], h.Port)
		data = append(data, p[:]...)
	}
	return Option{Kind: OptSourceRoute, Data: data}
}

// ErrBadOption indicates a malformed option body.
var ErrBadOption = errors.New("wire: malformed option")

// ParseSourceRoute decodes a source-route option body.
func ParseSourceRoute(o Option) ([]Endpoint, error) {
	if o.Kind != OptSourceRoute {
		return nil, fmt.Errorf("%w: kind %d is not a source route", ErrBadOption, o.Kind)
	}
	if len(o.Data)%6 != 0 {
		return nil, fmt.Errorf("%w: source route length %d not a multiple of 6", ErrBadOption, len(o.Data))
	}
	hops := make([]Endpoint, 0, len(o.Data)/6)
	for off := 0; off < len(o.Data); off += 6 {
		var e Endpoint
		copy(e.IP[:], o.Data[off:off+4])
		e.Port = binary.BigEndian.Uint16(o.Data[off+4:])
		hops = append(hops, e)
	}
	return hops, nil
}

// BufferAdvertOption advertises the sender's pipeline buffering in
// bytes.
func BufferAdvertOption(bytes uint32) Option {
	var data [4]byte
	binary.BigEndian.PutUint32(data[:], bytes)
	return Option{Kind: OptBufferAdvert, Data: data[:]}
}

// ParseBufferAdvert decodes a buffer advertisement.
func ParseBufferAdvert(o Option) (uint32, error) {
	if o.Kind != OptBufferAdvert || len(o.Data) != 4 {
		return 0, fmt.Errorf("%w: bad buffer advertisement", ErrBadOption)
	}
	return binary.BigEndian.Uint32(o.Data), nil
}

// GenerateOption carries the byte count of a TypeGenerate request.
func GenerateOption(size uint64) Option {
	var data [8]byte
	binary.BigEndian.PutUint64(data[:], size)
	return Option{Kind: OptGenerate, Data: data[:]}
}

// ParseGenerate decodes a generate request size.
func ParseGenerate(o Option) (uint64, error) {
	if o.Kind != OptGenerate || len(o.Data) != 8 {
		return 0, fmt.Errorf("%w: bad generate option", ErrBadOption)
	}
	return binary.BigEndian.Uint64(o.Data), nil
}

// FetchIDOption names a stored session for TypeFetch requests.
func FetchIDOption(id SessionID) Option {
	return Option{Kind: OptFetchID, Data: append([]byte(nil), id[:]...)}
}

// ParseFetchID decodes a fetch-id option.
func ParseFetchID(o Option) (SessionID, error) {
	var id SessionID
	if o.Kind != OptFetchID || len(o.Data) != len(id) {
		return id, fmt.Errorf("%w: bad fetch id", ErrBadOption)
	}
	copy(id[:], o.Data)
	return id, nil
}

// HopIndexOption records how many depots the session has traversed.
func HopIndexOption(hop uint16) Option {
	var data [2]byte
	binary.BigEndian.PutUint16(data[:], hop)
	return Option{Kind: OptHopIndex, Data: data[:]}
}

// ParseHopIndex decodes a hop-index option.
func ParseHopIndex(o Option) (uint16, error) {
	if o.Kind != OptHopIndex || len(o.Data) != 2 {
		return 0, fmt.Errorf("%w: bad hop index", ErrBadOption)
	}
	return binary.BigEndian.Uint16(o.Data), nil
}

// ResumeOffsetOption marks the session payload as starting at the
// given absolute byte offset of the transfer it resumes.
func ResumeOffsetOption(offset uint64) Option {
	var data [8]byte
	binary.BigEndian.PutUint64(data[:], offset)
	return Option{Kind: OptResumeOffset, Data: data[:]}
}

// ParseResumeOffset decodes a resume-offset option.
func ParseResumeOffset(o Option) (uint64, error) {
	if o.Kind != OptResumeOffset || len(o.Data) != 8 {
		return 0, fmt.Errorf("%w: bad resume offset", ErrBadOption)
	}
	return binary.BigEndian.Uint64(o.Data), nil
}

// StripeCountOption announces the number of parallel stripes the
// session's object is split over.
func StripeCountOption(count uint16) Option {
	var data [2]byte
	binary.BigEndian.PutUint16(data[:], count)
	return Option{Kind: OptStripeCount, Data: data[:]}
}

// ParseStripeCount decodes a stripe-count option. A count of zero is
// malformed: a striped session always has at least one stripe.
func ParseStripeCount(o Option) (uint16, error) {
	if o.Kind != OptStripeCount || len(o.Data) != 2 {
		return 0, fmt.Errorf("%w: bad stripe count", ErrBadOption)
	}
	n := binary.BigEndian.Uint16(o.Data)
	if n == 0 {
		return 0, fmt.Errorf("%w: stripe count 0", ErrBadOption)
	}
	return n, nil
}

// StripeIndexOption identifies which stripe this sublink chain carries.
func StripeIndexOption(index uint16) Option {
	var data [2]byte
	binary.BigEndian.PutUint16(data[:], index)
	return Option{Kind: OptStripeIndex, Data: data[:]}
}

// ParseStripeIndex decodes a stripe-index option.
func ParseStripeIndex(o Option) (uint16, error) {
	if o.Kind != OptStripeIndex || len(o.Data) != 2 {
		return 0, fmt.Errorf("%w: bad stripe index", ErrBadOption)
	}
	return binary.BigEndian.Uint16(o.Data), nil
}

// StripeCount returns the number of parallel stripes the session's
// object is split over: 1 for an unstriped session (or a malformed
// option — an unreadable count must not make a depot misroute a
// session it can still forward).
func (h *Header) StripeCount() int {
	if opt, ok := h.Option(OptStripeCount); ok {
		if n, err := ParseStripeCount(opt); err == nil {
			return int(n)
		}
	}
	return 1
}

// StripeIndex returns which stripe this session carries (0 when
// unstriped or unreadable).
func (h *Header) StripeIndex() int {
	if opt, ok := h.Option(OptStripeIndex); ok {
		if i, err := ParseStripeIndex(opt); err == nil {
			return int(i)
		}
	}
	return 0
}

// ResumeOffset returns the absolute byte offset this session's payload
// begins at: 0 for a fresh transfer, the carried offset for a resumed
// one.
func (h *Header) ResumeOffset() int64 {
	if opt, ok := h.Option(OptResumeOffset); ok {
		if off, err := ParseResumeOffset(opt); err == nil {
			return int64(off)
		}
	}
	return 0
}

// HopIndex returns the number of depots this session's header records
// as already traversed: 0 for a header fresh from the initiator, and
// therefore hop n for the n-th depot on the chain after it stamps the
// forwarded header with HopIndexOption(n).
func (h *Header) HopIndex() int {
	if opt, ok := h.Option(OptHopIndex); ok {
		if hop, err := ParseHopIndex(opt); err == nil {
			return int(hop)
		}
	}
	return 0
}

// TreeNode is one node of a multicast staging tree (the synchronous
// application-layer multicast header option of Section 2).
type TreeNode struct {
	Addr     Endpoint
	Children []*TreeNode
}

// MulticastTreeOption serializes a staging tree in preorder, each entry
// carrying its depth so the shape can be rebuilt.
func MulticastTreeOption(root *TreeNode) (Option, error) {
	var data []byte
	var walk func(n *TreeNode, depth int) error
	walk = func(n *TreeNode, depth int) error {
		if n == nil {
			return errors.New("wire: nil multicast tree node")
		}
		if depth > 255 {
			return errors.New("wire: multicast tree too deep")
		}
		data = append(data, byte(depth))
		data = append(data, n.Addr.IP[:]...)
		var p [2]byte
		binary.BigEndian.PutUint16(p[:], n.Addr.Port)
		data = append(data, p[:]...)
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return Option{}, err
	}
	return Option{Kind: OptMulticastTree, Data: data}, nil
}

// ParseMulticastTree rebuilds a staging tree from its option body.
func ParseMulticastTree(o Option) (*TreeNode, error) {
	if o.Kind != OptMulticastTree {
		return nil, fmt.Errorf("%w: kind %d is not a multicast tree", ErrBadOption, o.Kind)
	}
	if len(o.Data)%7 != 0 || len(o.Data) == 0 {
		return nil, fmt.Errorf("%w: multicast tree length %d", ErrBadOption, len(o.Data))
	}
	type entry struct {
		depth int
		addr  Endpoint
	}
	entries := make([]entry, 0, len(o.Data)/7)
	for off := 0; off < len(o.Data); off += 7 {
		var e entry
		e.depth = int(o.Data[off])
		copy(e.addr.IP[:], o.Data[off+1:off+5])
		e.addr.Port = binary.BigEndian.Uint16(o.Data[off+5:])
		entries = append(entries, e)
	}
	if entries[0].depth != 0 {
		return nil, fmt.Errorf("%w: multicast tree root depth %d", ErrBadOption, entries[0].depth)
	}
	root := &TreeNode{Addr: entries[0].addr}
	stack := []*TreeNode{root}
	for _, e := range entries[1:] {
		if e.depth < 1 || e.depth > len(stack) {
			return nil, fmt.Errorf("%w: multicast tree depth jump to %d", ErrBadOption, e.depth)
		}
		node := &TreeNode{Addr: e.addr}
		parent := stack[e.depth-1]
		parent.Children = append(parent.Children, node)
		stack = append(stack[:e.depth], node)
	}
	return root, nil
}

// Leaves returns the addresses of the tree's leaf nodes.
func (n *TreeNode) Leaves() []Endpoint {
	if len(n.Children) == 0 {
		return []Endpoint{n.Addr}
	}
	var out []Endpoint
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Size returns the number of nodes in the tree.
func (n *TreeNode) Size() int {
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}
