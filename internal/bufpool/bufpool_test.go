package bufpool

import "testing"

func TestGetPutRoundTrip(t *testing.T) {
	b := Get()
	if b == nil || len(*b) != ChunkSize {
		t.Fatalf("Get returned %v", b)
	}
	(*b)[0] = 0xAB
	Put(b)
	// A second Get must hand back a full-size buffer regardless of
	// whether the pool recycled ours.
	c := Get()
	if len(*c) != ChunkSize {
		t.Fatalf("recycled len = %d", len(*c))
	}
	Put(c)
}

func TestPutRejectsWrongSize(t *testing.T) {
	Put(nil) // must not panic
	short := make([]byte, 10)
	Put(&short) // silently dropped
	if b := Get(); len(*b) != ChunkSize {
		t.Fatalf("pool handed out a foreign buffer of len %d", len(*b))
	}
}

func TestGetAllocsAmortizeToZero(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get()
		Put(b)
	})
	// sync.Pool may miss occasionally (GC, per-P caches); the point is
	// that steady-state reuse does not allocate per call.
	if allocs > 0.1 {
		t.Fatalf("Get/Put allocates %.2f per op", allocs)
	}
}
