// Package bufpool provides the shared pool of fixed-size copy buffers
// behind every hot loop of the data path: the depot forwarding pump,
// the pattern generators, and the sink read loops.
//
// The forwarding pump used to allocate one fresh chunk per 32 KiB of
// payload (a chunk's lifetime outlives the read loop — it sits in the
// pipeline channel until the downstream sublink drains it), which put
// ~256 allocations and 8 MB of garbage on every 8 MB forwarded. A
// sync.Pool turns that into a small steady-state working set sized by
// the pipeline depth, while striped transfers — N concurrent pumps per
// hop — share one pool instead of multiplying the garbage by N.
//
// Buffers are handed out as *[]byte so returning one to the pool does
// not re-box the slice header on every Put. The canonical shape:
//
//	bp := bufpool.Get()
//	defer bufpool.Put(bp)
//	buf := *bp // len(buf) == bufpool.ChunkSize
package bufpool

import "sync"

// ChunkSize is the length of every pooled buffer: the depot pipeline's
// chunk unit (32 KiB, matching the paper's forwarding granularity).
const ChunkSize = 32 << 10

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, ChunkSize)
		return &b
	},
}

// Get returns a buffer of length ChunkSize. The contents are
// arbitrary; callers must not assume zeroing.
func Get() *[]byte { return pool.Get().(*[]byte) }

// Put returns a buffer obtained from Get to the pool. The caller must
// not touch the slice afterwards. Buffers whose length has been
// changed (rather than re-sliced locally) are rejected, protecting the
// pool's fixed-size invariant.
func Put(b *[]byte) {
	if b == nil || len(*b) != ChunkSize {
		return
	}
	pool.Put(b)
}
