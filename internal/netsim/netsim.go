// Package netsim provides the discrete-event simulation engine underlying
// the TCP and depot-pipeline models.
//
// The engine is a classic event-heap design: callers schedule callbacks at
// future simulated instants and Run dispatches them in time order. Events
// scheduled for the same instant fire in scheduling order, which keeps
// runs deterministic for a fixed seed.
package netsim

import (
	"container/heap"
	"errors"
	"math/rand"

	"github.com/netlogistics/lsl/internal/simtime"
)

// Event is a callback due at a simulated instant.
type Event func(now simtime.Time)

type scheduled struct {
	at    simtime.Time
	seq   uint64 // tie-break: FIFO among same-instant events
	fn    Event
	index int
	dead  bool
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	s := x.(*scheduled)
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.index = -1
	*h = old[:n-1]
	return s
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ s *scheduled }

// Stop cancels the timer if it has not fired. It reports whether the
// cancellation prevented a pending event.
func (t Timer) Stop() bool {
	if t.s == nil || t.s.dead {
		return false
	}
	t.s.dead = true
	return true
}

// ErrTooManyEvents indicates a run exceeded its event budget, which
// almost always means a model is stuck in a zero-delay loop.
var ErrTooManyEvents = errors.New("netsim: event budget exhausted")

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now    simtime.Time
	heap   eventHeap
	seq    uint64
	rng    *rand.Rand
	budget int64
}

// DefaultEventBudget bounds the number of events a single Run may
// dispatch before aborting with ErrTooManyEvents.
const DefaultEventBudget = 500_000_000

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		budget: DefaultEventBudget,
	}
}

// SetEventBudget overrides the per-Run event budget. Non-positive
// budgets restore the default.
func (e *Engine) SetEventBudget(n int64) {
	if n <= 0 {
		n = DefaultEventBudget
	}
	e.budget = n
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at the absolute instant at. Instants earlier than the
// current time are clamped to the current time.
func (e *Engine) At(at simtime.Time, fn Event) Timer {
	if at < e.now {
		at = e.now
	}
	s := &scheduled{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, s)
	return Timer{s: s}
}

// After schedules fn after delay d from the current time. Negative
// delays are treated as zero.
func (e *Engine) After(d simtime.Duration, fn Event) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Pending reports the number of live scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.heap {
		if !s.dead {
			n++
		}
	}
	return n
}

// Run dispatches events in time order until the queue drains or until
// simulated time would pass deadline. Events at exactly deadline fire.
// It returns the time of the last dispatched event (or the unchanged
// current time when nothing fired).
func (e *Engine) Run(deadline simtime.Time) (simtime.Time, error) {
	var dispatched int64
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.heap)
		if next.dead {
			continue
		}
		e.now = next.at
		dispatched++
		if dispatched > e.budget {
			return e.now, ErrTooManyEvents
		}
		next.fn(e.now)
	}
	return e.now, nil
}

// RunAll dispatches events until the queue drains.
func (e *Engine) RunAll() (simtime.Time, error) { return e.Run(simtime.Never) }
