package netsim

import (
	"testing"

	"github.com/netlogistics/lsl/internal/simtime"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	eng := New(1)
	var order []int
	eng.At(3, func(simtime.Time) { order = append(order, 3) })
	eng.At(1, func(simtime.Time) { order = append(order, 1) })
	eng.At(2, func(simtime.Time) { order = append(order, 2) })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 3 {
		t.Fatalf("Now = %v, want 3", eng.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	eng := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5, func(simtime.Time) { order = append(order, i) })
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	eng := New(1)
	var at simtime.Time
	eng.At(2, func(now simtime.Time) {
		eng.After(3, func(now2 simtime.Time) { at = now2 })
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("After fired at %v, want 5", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	eng := New(1)
	fired := false
	eng.After(-5, func(now simtime.Time) {
		if now != 0 {
			t.Errorf("negative delay fired at %v", now)
		}
		fired = true
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestPastInstantClamped(t *testing.T) {
	eng := New(1)
	var second simtime.Time
	eng.At(10, func(simtime.Time) {
		eng.At(3, func(now simtime.Time) { second = now })
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if second != 10 {
		t.Fatalf("past event fired at %v, want clamp to 10", second)
	}
}

func TestTimerStop(t *testing.T) {
	eng := New(1)
	fired := false
	tm := eng.At(1, func(simtime.Time) { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop should report cancellation")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunDeadline(t *testing.T) {
	eng := New(1)
	var fired []simtime.Time
	for _, at := range []simtime.Time{1, 2, 3, 4} {
		at := at
		eng.At(at, func(now simtime.Time) { fired = append(fired, now) })
	}
	if _, err := eng.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if eng.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", eng.Pending())
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v after RunAll", fired)
	}
}

func TestEventBudget(t *testing.T) {
	eng := New(1)
	eng.SetEventBudget(100)
	var loop func(now simtime.Time)
	loop = func(now simtime.Time) { eng.After(0, loop) }
	eng.After(0, loop)
	if _, err := eng.RunAll(); err != ErrTooManyEvents {
		t.Fatalf("err = %v, want ErrTooManyEvents", err)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Float64() != b.Rand().Float64() {
			t.Fatal("same seed should give identical sequences")
		}
	}
}

func TestPendingCountsLiveOnly(t *testing.T) {
	eng := New(1)
	eng.At(1, func(simtime.Time) {})
	tm := eng.At(2, func(simtime.Time) {})
	tm.Stop()
	if got := eng.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}
