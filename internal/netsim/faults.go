package netsim

import "github.com/netlogistics/lsl/internal/simtime"

// FaultPlan is the simulation-side fault-injection hook: a schedule of
// deterministic failures for named components (links, depots, hosts)
// that discrete-event models consult on their data path. It mirrors the
// live stack's depot.FaultInjector so the same recovery scenarios —
// refuse-connect, drop-after-N-bytes, stall — can be scripted against
// the simulated transports:
//
//	plan := netsim.NewFaultPlan()
//	plan.FailAt("depot-b", 3*simtime.Second)      // dies at t=3s
//	plan.RestoreAt("depot-b", 8*simtime.Second)   // back at t=8s
//	plan.DropAfter("link-ab", 1<<20)              // link dies after 1 MB
//
// Models call Down(name, now) before dialing/forwarding and
// Account(name, n) as bytes move; both are O(1) after the schedule is
// sorted into per-component state. A nil *FaultPlan injects nothing, so
// models need no configuration branches.
type FaultPlan struct {
	components map[string]*componentFaults
	injected   int
}

type componentFaults struct {
	// transitions is the ordered fail/restore schedule.
	transitions []transition
	// dropAfter is a byte budget; <0 means unarmed.
	dropAfter int64
	moved     int64
	dropped   bool
}

type transition struct {
	at   simtime.Time
	down bool
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{components: make(map[string]*componentFaults)}
}

func (p *FaultPlan) component(name string) *componentFaults {
	c, ok := p.components[name]
	if !ok {
		c = &componentFaults{dropAfter: -1}
		p.components[name] = c
	}
	return c
}

// FailAt schedules component name to go down at the given instant.
// Transitions must be added in increasing time order per component.
func (p *FaultPlan) FailAt(name string, at simtime.Time) {
	c := p.component(name)
	c.transitions = append(c.transitions, transition{at: at, down: true})
}

// RestoreAt schedules component name to come back at the given instant.
func (p *FaultPlan) RestoreAt(name string, at simtime.Time) {
	c := p.component(name)
	c.transitions = append(c.transitions, transition{at: at, down: false})
}

// DropAfter arms a one-shot byte-budget fault: after n bytes have been
// Accounted against name, the component reports Down forever (until the
// plan is rebuilt).
func (p *FaultPlan) DropAfter(name string, n int64) {
	c := p.component(name)
	c.dropAfter = n
	c.moved = 0
	c.dropped = false
}

// Account records n bytes moved through name and reports whether the
// component is still up. The first crossing of a DropAfter budget
// counts as one injected fault. Nil-safe.
func (p *FaultPlan) Account(name string, n int64) bool {
	if p == nil {
		return true
	}
	c, ok := p.components[name]
	if !ok {
		return true
	}
	c.moved += n
	if c.dropAfter >= 0 && !c.dropped && c.moved >= c.dropAfter {
		c.dropped = true
		p.injected++
	}
	return !c.dropped
}

// Down reports whether component name is failed at instant now, from
// either its transition schedule or an exhausted byte budget. Nil-safe:
// a nil plan (or unknown name) is always up.
func (p *FaultPlan) Down(name string, now simtime.Time) bool {
	if p == nil {
		return false
	}
	c, ok := p.components[name]
	if !ok {
		return false
	}
	if c.dropped {
		return true
	}
	down := false
	for _, tr := range c.transitions {
		if tr.at > now {
			break
		}
		down = tr.down
	}
	return down
}

// Injected reports how many byte-budget faults have fired.
func (p *FaultPlan) Injected() int {
	if p == nil {
		return 0
	}
	return p.injected
}

// Arm schedules a no-op event at every transition instant on e, so a
// Run over the plan's horizon steps through each state change even
// when no model event happens to land there — keeping time-driven
// failure windows visible to pollers that only act inside events.
func (p *FaultPlan) Arm(e *Engine) {
	if p == nil {
		return
	}
	for _, c := range p.components {
		for _, tr := range c.transitions {
			e.At(tr.at, func(simtime.Time) {})
		}
	}
}
