package netsim

import (
	"testing"

	"github.com/netlogistics/lsl/internal/simtime"
)

func TestFaultPlanTransitions(t *testing.T) {
	plan := NewFaultPlan()
	plan.FailAt("depot-b", 3)
	plan.RestoreAt("depot-b", 8)

	checks := []struct {
		at   simtime.Time
		down bool
	}{
		{0, false}, {2.999, false}, {3, true}, {5, true}, {8, false}, {100, false},
	}
	for _, c := range checks {
		if got := plan.Down("depot-b", c.at); got != c.down {
			t.Errorf("Down(depot-b, %v) = %v, want %v", c.at, got, c.down)
		}
	}
	if plan.Down("unknown", 5) {
		t.Error("unknown component reported down")
	}
}

func TestFaultPlanDropAfter(t *testing.T) {
	plan := NewFaultPlan()
	plan.DropAfter("link-ab", 1000)
	if !plan.Account("link-ab", 999) {
		t.Fatal("down before budget exhausted")
	}
	if plan.Down("link-ab", 0) {
		t.Fatal("Down before budget exhausted")
	}
	if plan.Account("link-ab", 1) {
		t.Fatal("still up after budget exhausted")
	}
	if !plan.Down("link-ab", 0) {
		t.Fatal("Down should report the exhausted budget")
	}
	if plan.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", plan.Injected())
	}
	// Further accounting doesn't double-count the fault.
	plan.Account("link-ab", 50)
	if plan.Injected() != 1 {
		t.Fatalf("Injected = %d after extra bytes, want 1", plan.Injected())
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var plan *FaultPlan
	if plan.Down("x", 1) || !plan.Account("x", 10) || plan.Injected() != 0 {
		t.Fatal("nil plan should inject nothing")
	}
	plan.Arm(nil) // no panic
}

func TestFaultPlanArmSchedulesTransitions(t *testing.T) {
	e := New(1)
	plan := NewFaultPlan()
	plan.FailAt("d", 2)
	plan.RestoreAt("d", 4)
	plan.Arm(e)
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	end, err := e.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if end != 4 {
		t.Fatalf("final time = %v, want 4", end)
	}
}

func TestFaultPlanWithEngineRun(t *testing.T) {
	// A model polls the plan from inside events: during the outage the
	// component reports down, before and after it reports up.
	e := New(1)
	plan := NewFaultPlan()
	plan.FailAt("depot", 5)
	plan.RestoreAt("depot", 10)

	var states []bool
	for _, at := range []simtime.Time{1, 6, 11} {
		at := at
		e.At(at, func(now simtime.Time) {
			states = append(states, plan.Down("depot", now))
		})
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
}
