// Package trace captures acknowledged-sequence-number time series from
// simulated connections, the moral equivalent of the paper's tcpdump
// analysis in Figures 4 and 5.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/netlogistics/lsl/internal/simtime"
)

// Point is one (time, cumulative acknowledged bytes) sample.
type Point struct {
	At    simtime.Time
	Acked int64
}

// Series is the acknowledged-sequence trace of one connection. Samples
// are appended in time order by the simulator.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty series with the given display name.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Observe appends a sample. It is shaped to plug directly into
// tcpsim.Conn's OnAck hook.
func (s *Series) Observe(at simtime.Time, acked int64) {
	s.Points = append(s.Points, Point{At: at, Acked: acked})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Final returns the last sample, or a zero Point for an empty series.
func (s *Series) Final() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// AckedAt returns the cumulative acknowledged bytes at instant t by
// step interpolation (the value of the most recent sample at or before
// t), 0 before the first sample.
func (s *Series) AckedAt(t simtime.Time) int64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].At > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].Acked
}

// Slope returns the average growth rate in bytes/sec between instants
// t0 and t1 (0 when t1 <= t0).
func (s *Series) Slope(t0, t1 simtime.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	return float64(s.AckedAt(t1)-s.AckedAt(t0)) / t1.Sub(t0).Seconds()
}

// Lead returns the byte lead of s over other at instant t: how far the
// upstream sublink's acknowledged sequence runs ahead of the downstream
// sublink's. In a buffer-limited chain the lead saturates at the depot
// pipeline capacity (the Figure 5 knee).
func (s *Series) Lead(other *Series, t simtime.Time) int64 {
	return s.AckedAt(t) - other.AckedAt(t)
}

// MaxLead returns the maximum lead of s over other across the union of
// both series' sample instants.
func (s *Series) MaxLead(other *Series) int64 {
	var max int64
	for _, p := range s.Points {
		if l := s.Lead(other, p.At); l > max {
			max = l
		}
	}
	for _, p := range other.Points {
		if l := s.Lead(other, p.At); l > max {
			max = l
		}
	}
	return max
}

// Resample returns the series sampled at n+1 evenly spaced instants
// across [t0, t1], suitable for plotting or averaging across runs.
func (s *Series) Resample(t0, t1 simtime.Time, n int) []Point {
	if n < 1 || t1 <= t0 {
		return nil
	}
	out := make([]Point, 0, n+1)
	step := t1.Sub(t0).Seconds() / float64(n)
	for i := 0; i <= n; i++ {
		t := t0.Add(simtime.Seconds(step * float64(i)))
		out = append(out, Point{At: t, Acked: s.AckedAt(t)})
	}
	return out
}

// AverageSeries resamples each input series onto a common grid of n
// intervals from time zero to the latest final sample, and returns the
// pointwise mean, reproducing the paper's "averaged over 10 tests"
// sequence plots.
func AverageSeries(name string, runs []*Series, n int) *Series {
	if len(runs) == 0 || n < 1 {
		return NewSeries(name)
	}
	var tEnd simtime.Time
	for _, r := range runs {
		if f := r.Final().At; f > tEnd {
			tEnd = f
		}
	}
	if tEnd == 0 {
		return NewSeries(name)
	}
	avg := NewSeries(name)
	step := tEnd.Seconds() / float64(n)
	for i := 0; i <= n; i++ {
		t := simtime.Time(step * float64(i))
		var sum float64
		for _, r := range runs {
			sum += float64(r.AckedAt(t))
		}
		avg.Points = append(avg.Points, Point{At: t, Acked: int64(sum / float64(len(runs)))})
	}
	return avg
}

// Table renders one aligned text table of the given series on a common
// n-interval grid, with time in seconds and sequence numbers in MB —
// the textual form of Figures 4 and 5.
func Table(series []*Series, n int) string {
	var tEnd simtime.Time
	for _, s := range series {
		if f := s.Final().At; f > tEnd {
			tEnd = f
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "time(s)")
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	if n < 1 || tEnd == 0 {
		return b.String()
	}
	step := tEnd.Seconds() / float64(n)
	for i := 0; i <= n; i++ {
		t := simtime.Time(step * float64(i))
		fmt.Fprintf(&b, "%10.2f", t.Seconds())
		for _, s := range series {
			fmt.Fprintf(&b, " %16.2f", float64(s.AckedAt(t))/(1<<20))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
