package trace

import (
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/simtime"
)

func mkSeries(name string, pts ...Point) *Series {
	s := NewSeries(name)
	s.Points = pts
	return s
}

func TestObserveAndFinal(t *testing.T) {
	s := NewSeries("x")
	if s.Len() != 0 || s.Final() != (Point{}) {
		t.Fatal("fresh series should be empty")
	}
	s.Observe(1, 100)
	s.Observe(2, 250)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if f := s.Final(); f.At != 2 || f.Acked != 250 {
		t.Fatalf("final = %+v", f)
	}
}

func TestAckedAtStepInterpolation(t *testing.T) {
	s := mkSeries("x", Point{1, 10}, Point{2, 30}, Point{4, 50})
	cases := []struct {
		at   simtime.Time
		want int64
	}{
		{0.5, 0},
		{1, 10},
		{1.5, 10},
		{2, 30},
		{3.9, 30},
		{4, 50},
		{100, 50},
	}
	for _, c := range cases {
		if got := s.AckedAt(c.at); got != c.want {
			t.Errorf("AckedAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestSlope(t *testing.T) {
	s := mkSeries("x", Point{0, 0}, Point{1, 1000}, Point{2, 2000})
	if got := s.Slope(0, 2); got != 1000 {
		t.Fatalf("slope = %v", got)
	}
	if got := s.Slope(2, 2); got != 0 {
		t.Fatalf("degenerate slope = %v", got)
	}
}

func TestLeadAndMaxLead(t *testing.T) {
	fast := mkSeries("fast", Point{1, 100}, Point{2, 300}, Point{3, 300})
	slow := mkSeries("slow", Point{1, 50}, Point{2, 100}, Point{3, 300})
	if got := fast.Lead(slow, 2); got != 200 {
		t.Fatalf("lead at 2 = %d", got)
	}
	if got := fast.MaxLead(slow); got != 200 {
		t.Fatalf("max lead = %d", got)
	}
	if got := slow.MaxLead(fast); got != 0 {
		t.Fatalf("reverse max lead = %d, want 0", got)
	}
}

func TestResample(t *testing.T) {
	s := mkSeries("x", Point{0, 0}, Point{10, 1000})
	pts := s.Resample(0, 10, 5)
	if len(pts) != 6 {
		t.Fatalf("resampled %d points", len(pts))
	}
	if pts[0].Acked != 0 || pts[5].Acked != 1000 {
		t.Fatalf("endpoints wrong: %+v", pts)
	}
	if s.Resample(0, 10, 0) != nil {
		t.Fatal("n=0 should give nil")
	}
	if s.Resample(5, 5, 3) != nil {
		t.Fatal("empty interval should give nil")
	}
}

func TestAverageSeries(t *testing.T) {
	a := mkSeries("a", Point{0, 0}, Point{10, 1000})
	b := mkSeries("b", Point{0, 0}, Point{10, 3000})
	avg := AverageSeries("avg", []*Series{a, b}, 10)
	if avg.Name != "avg" {
		t.Fatalf("name = %q", avg.Name)
	}
	if got := avg.Final().Acked; got != 2000 {
		t.Fatalf("final avg = %d, want 2000", got)
	}
	if empty := AverageSeries("e", nil, 10); empty.Len() != 0 {
		t.Fatal("empty input should give empty series")
	}
}

func TestAverageSeriesMonotone(t *testing.T) {
	a := mkSeries("a", Point{0, 0}, Point{1, 500}, Point{2, 900})
	b := mkSeries("b", Point{0, 0}, Point{1.5, 700}, Point{3, 1500})
	avg := AverageSeries("avg", []*Series{a, b}, 30)
	prev := int64(-1)
	for _, p := range avg.Points {
		if p.Acked < prev {
			t.Fatalf("average series not monotone at %v", p.At)
		}
		prev = p.Acked
	}
}

func TestTable(t *testing.T) {
	a := mkSeries("alpha", Point{0, 0}, Point{2, 2 << 20})
	b := mkSeries("beta", Point{0, 0}, Point{2, 1 << 20})
	out := Table([]*Series{a, b}, 4)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("headers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 grid rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[5], "2.00") || !strings.Contains(lines[5], "1.00") {
		t.Fatalf("final row should show MB values:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	out := Table([]*Series{NewSeries("x")}, 4)
	if !strings.Contains(out, "x") {
		t.Fatal("header missing for empty series")
	}
}
