// Package tcpsim simulates individual TCP Reno connections on the
// discrete-event engine.
//
// The model is round-based fluid TCP: each "round" carries up to one
// congestion window of bytes and lasts max(RTT, bytes/capacity); at the
// end of a round the bytes are acknowledged and delivered to the
// connection's Sink. Slow start doubles the window each round,
// congestion avoidance adds roughly one MSS per round, loss events halve
// the window (fast recovery) or collapse it to one MSS after a
// retransmission timeout. The window is clamped by the socket buffers
// (flow control), and each round is additionally limited by the bytes
// the Source can supply and the space the Sink can absorb — which is how
// depot back-pressure couples chained connections in internal/pipesim.
//
// The abstraction deliberately trades packet-level detail for speed: a
// 128 MB transfer is a few thousand events, so the PlanetLab-scale
// aggregate experiments (hundreds of thousands of transfers) remain
// cheap, while the RTT-clocked ramp and loss response that produce the
// paper's logistical effect are preserved.
package tcpsim

import (
	"fmt"
	"math"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpmodel"
)

// Source supplies the bytes a connection sends.
type Source interface {
	// Available reports how many bytes are ready to send now.
	Available() int64
	// Take removes n bytes from the source. n never exceeds the last
	// reported Available.
	Take(n int64)
	// Exhausted reports that no bytes are available now and none will
	// ever become available.
	Exhausted() bool
}

// Sink absorbs the bytes a connection delivers.
type Sink interface {
	// Free reports how many bytes of space are available now.
	Free() int64
	// Put adds n bytes. n never exceeds the last reported Free.
	Put(n int64)
}

// Config parameterizes one simulated connection.
type Config struct {
	RTT      simtime.Duration // base round-trip time
	Capacity float64          // bottleneck rate in bytes/sec (0 = unlimited)
	LossRate float64          // per-packet loss probability
	MSS      int64            // segment size (0 = tcpmodel.DefaultMSS)
	SndBuf   int64            // sender socket buffer (0 = 8 MB)
	RcvBuf   int64            // receiver socket buffer (0 = 8 MB)
	InitCwnd int64            // initial congestion window (0 = 2 MSS)
	Jitter   float64          // fractional uniform RTT jitter (e.g. 0.1)
	RTOMin   simtime.Duration // minimum retransmission timeout (0 = 200 ms)
	// QueueFactor sizes the bottleneck router queue as a fraction of
	// the bandwidth-delay product. The congestion window is capped at
	// BDP·(1+QueueFactor); growing past the cap overflows the drop-tail
	// queue and counts as a congestion loss, which is what confines a
	// Reno flow near the path capacity instead of letting the fluid
	// model serialize arbitrarily large windows. Zero selects the
	// classic buffer-equals-BDP rule (factor 1).
	QueueFactor float64
	// Shared, when non-nil, is a bottleneck whose capacity is divided
	// among the connections concurrently transmitting through it (e.g.
	// a depot host forwarding several sessions). Each round is limited
	// by min(Capacity, Shared.capacity/flows).
	Shared *SharedLink
}

func (c Config) normalize() Config {
	if c.MSS <= 0 {
		c.MSS = tcpmodel.DefaultMSS
	}
	if c.SndBuf <= 0 {
		c.SndBuf = tcpmodel.DefaultWindow
	}
	if c.RcvBuf <= 0 {
		c.RcvBuf = tcpmodel.DefaultWindow
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 2 * c.MSS
	}
	if c.RTT <= 0 {
		c.RTT = simtime.Milliseconds(1)
	}
	if c.Capacity <= 0 {
		c.Capacity = math.MaxFloat64
	}
	if c.LossRate < 0 {
		c.LossRate = 0
	}
	if c.LossRate > 1 {
		c.LossRate = 1
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.RTOMin <= 0 {
		c.RTOMin = simtime.Milliseconds(200)
	}
	if c.QueueFactor <= 0 {
		c.QueueFactor = 1
	}
	return c
}

// Model converts the simulation config to analytic model parameters.
func (c Config) Model() tcpmodel.Params {
	c = c.normalize()
	w := c.SndBuf
	if c.RcvBuf < w {
		w = c.RcvBuf
	}
	return tcpmodel.Params{
		RTT:         c.RTT,
		Capacity:    c.Capacity,
		LossRate:    c.LossRate,
		MSS:         c.MSS,
		WindowLimit: w,
		InitCwnd:    c.InitCwnd,
	}
}

// Stats reports a connection's cumulative behaviour.
type Stats struct {
	BytesAcked      int64
	Rounds          int
	LossEvents      int
	Timeouts        int
	CongestionDrops int // bottleneck queue overflows
	IdleWakeups     int
	StartedAt       simtime.Time
	LastAckAt       simtime.Time
	BlockedAtSrc    int // rounds skipped for lack of source bytes
	BlockedAtDst    int // rounds skipped for lack of sink space
}

// Conn is one simulated TCP connection. Construct with New, then Start.
type Conn struct {
	eng  *netsim.Engine
	cfg  Config
	src  Source
	dst  Sink
	name string

	wmax     int64
	wcap     float64 // congestion ceiling: BDP·(1+QueueFactor), ∞ on unlimited paths
	cwnd     float64
	ssthresh float64

	started bool
	running bool // a round is in flight
	idle    bool // blocked waiting for source bytes or sink space
	done    bool

	stats Stats

	// OnAck, if set, observes each delivery: the instant and the new
	// cumulative acknowledged byte count.
	OnAck func(now simtime.Time, acked int64)
	// OnDone, if set, fires once when the source is exhausted and every
	// byte has been delivered.
	OnDone func(now simtime.Time)
	// OnCwnd, if set, observes the congestion window (bytes) after each
	// round's growth or loss response — the data behind classic TCP
	// sawtooth plots.
	OnCwnd func(now simtime.Time, cwnd float64)
}

// New creates a connection moving bytes from src to dst over eng.
// The name appears in diagnostics only.
func New(eng *netsim.Engine, name string, cfg Config, src Source, dst Sink) *Conn {
	cfg = cfg.normalize()
	wmax := cfg.SndBuf
	if cfg.RcvBuf < wmax {
		wmax = cfg.RcvBuf
	}
	wcap := math.Inf(1)
	if cfg.Capacity < math.MaxFloat64 {
		wcap = cfg.Capacity * cfg.RTT.Seconds() * (1 + cfg.QueueFactor)
		if min := float64(4 * cfg.MSS); wcap < min {
			wcap = min
		}
	}
	return &Conn{
		eng:      eng,
		cfg:      cfg,
		src:      src,
		dst:      dst,
		name:     name,
		wmax:     wmax,
		wcap:     wcap,
		cwnd:     float64(cfg.InitCwnd),
		ssthresh: float64(wmax),
	}
}

// Config returns the (normalized) configuration.
func (c *Conn) Config() Config { return c.cfg }

// Stats returns a snapshot of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// Done reports whether the connection has delivered every byte.
func (c *Conn) Done() bool { return c.done }

// Name returns the diagnostic name.
func (c *Conn) Name() string { return c.name }

// Start schedules connection establishment at the given instant; the
// three-way handshake costs one RTT before the first data round.
func (c *Conn) Start(at simtime.Time) {
	if c.started {
		panic(fmt.Sprintf("tcpsim: connection %q started twice", c.name))
	}
	c.started = true
	c.stats.StartedAt = at
	c.eng.At(at.Add(c.rtt()), func(now simtime.Time) { c.beginRound(now) })
}

// Wake prods a connection that went idle waiting on its source or sink.
// Buffers call this when bytes arrive or space frees. Waking a running
// or finished connection is a no-op.
func (c *Conn) Wake() {
	if !c.started || c.running || c.done || !c.idle {
		return
	}
	c.idle = false
	c.stats.IdleWakeups++
	c.eng.After(0, func(now simtime.Time) { c.beginRound(now) })
}

// rtt returns the per-round RTT with jitter applied.
func (c *Conn) rtt() simtime.Duration {
	r := c.cfg.RTT
	if c.cfg.Jitter > 0 {
		r = simtime.Duration(float64(r) * (1 + c.cfg.Jitter*(c.eng.Rand().Float64()-0.5)))
	}
	return r
}

func (c *Conn) beginRound(now simtime.Time) {
	if c.done || c.running {
		return
	}
	avail := c.src.Available()
	if avail <= 0 {
		if c.src.Exhausted() {
			c.finish(now)
			return
		}
		c.stats.BlockedAtSrc++
		c.idle = true
		return
	}
	free := c.dst.Free()
	if free <= 0 {
		c.stats.BlockedAtDst++
		c.idle = true
		return
	}

	w := int64(c.cwnd)
	if w > c.wmax {
		w = c.wmax
	}
	if float64(w) > c.wcap {
		w = int64(c.wcap)
	}
	if w < c.cfg.MSS {
		w = c.cfg.MSS
	}
	n := w
	if avail < n {
		n = avail
	}
	if free < n {
		n = free
	}
	c.src.Take(n)
	c.running = true
	c.stats.Rounds++

	rtt := c.rtt()
	capacity := c.cfg.Capacity
	if c.cfg.Shared != nil {
		if s := c.cfg.Shared.share(); s < capacity {
			capacity = s
		}
		c.cfg.Shared.join()
	}
	dur := rtt
	if serial := simtime.Seconds(float64(n) / capacity); serial > dur {
		dur = serial
	}

	lost := false
	if p := c.cfg.LossRate; p > 0 {
		packets := float64((n + c.cfg.MSS - 1) / c.cfg.MSS)
		pRound := 1 - math.Pow(1-p, packets)
		lost = c.eng.Rand().Float64() < pRound
	}

	c.eng.After(dur, func(end simtime.Time) { c.endRound(end, n, lost, rtt) })
}

func (c *Conn) endRound(now simtime.Time, n int64, lost bool, rtt simtime.Duration) {
	c.running = false
	if c.cfg.Shared != nil {
		c.cfg.Shared.leave()
	}
	c.dst.Put(n)
	c.stats.BytesAcked += n
	c.stats.LastAckAt = now
	if c.OnAck != nil {
		c.OnAck(now, c.stats.BytesAcked)
	}

	var penalty simtime.Duration
	if lost {
		mss := float64(c.cfg.MSS)
		newSS := c.cwnd / 2
		if newSS < 2*mss {
			newSS = 2 * mss
		}
		if c.cwnd >= 4*mss {
			// Fast retransmit / fast recovery: halve and pay one RTT.
			c.stats.LossEvents++
			c.ssthresh = newSS
			c.cwnd = newSS
			penalty = rtt
		} else {
			// Window too small for triple duplicate ACKs: timeout.
			c.stats.Timeouts++
			c.ssthresh = newSS
			c.cwnd = mss
			rto := simtime.Duration(2 * float64(rtt))
			if rto < c.cfg.RTOMin {
				rto = c.cfg.RTOMin
			}
			penalty = rto
		}
	} else {
		if c.cwnd < c.ssthresh {
			c.cwnd += float64(n) // slow start: +1 MSS per acked MSS
			if c.cwnd > c.ssthresh {
				c.cwnd = c.ssthresh
			}
		} else {
			// Congestion avoidance: +MSS²/cwnd per acked segment.
			c.cwnd += float64(c.cfg.MSS) * float64(n) / c.cwnd
		}
		if c.cwnd > float64(c.wmax) {
			c.cwnd = float64(c.wmax)
		}
		if c.cwnd >= c.wcap {
			// The window outgrew path BDP plus the bottleneck queue:
			// the drop-tail router overflows and the flow halves, the
			// classic Reno sawtooth around the path capacity.
			c.stats.CongestionDrops++
			c.ssthresh = c.wcap / 2
			if min := 2 * float64(c.cfg.MSS); c.ssthresh < min {
				c.ssthresh = min
			}
			c.cwnd = c.ssthresh
			penalty = rtt
		}
	}

	if c.OnCwnd != nil {
		c.OnCwnd(now, c.cwnd)
	}
	if c.src.Available() <= 0 && c.src.Exhausted() {
		c.finish(now)
		return
	}
	c.eng.After(penalty, func(next simtime.Time) { c.beginRound(next) })
}

func (c *Conn) finish(now simtime.Time) {
	if c.done {
		return
	}
	c.done = true
	if c.OnDone != nil {
		c.OnDone(now)
	}
}
