package tcpsim

import "math"

// ByteSource is a Source holding a fixed number of bytes, modelling an
// application that has the whole transfer ready to send (the paper's
// depot-generated arbitrary test data).
type ByteSource struct {
	remaining int64
}

// NewByteSource returns a source holding size bytes.
func NewByteSource(size int64) *ByteSource {
	if size < 0 {
		size = 0
	}
	return &ByteSource{remaining: size}
}

// Available implements Source.
func (s *ByteSource) Available() int64 { return s.remaining }

// Take implements Source.
func (s *ByteSource) Take(n int64) {
	if n > s.remaining {
		panic("tcpsim: ByteSource overdrawn")
	}
	s.remaining -= n
}

// Exhausted implements Source.
func (s *ByteSource) Exhausted() bool { return s.remaining == 0 }

// CountSink is a Sink with unlimited space that counts delivered bytes,
// modelling a receiving application that drains its socket promptly.
type CountSink struct {
	received int64
}

// NewCountSink returns an empty counting sink.
func NewCountSink() *CountSink { return &CountSink{} }

// Free implements Sink.
func (s *CountSink) Free() int64 { return math.MaxInt64 }

// Put implements Sink.
func (s *CountSink) Put(n int64) { s.received += n }

// Received reports the cumulative delivered byte count.
func (s *CountSink) Received() int64 { return s.received }
