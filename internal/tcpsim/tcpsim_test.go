package tcpsim

import (
	"math"
	"testing"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpmodel"
)

// runTransfer simulates one lone connection moving size bytes and
// returns (elapsed seconds, stats).
func runTransfer(t *testing.T, cfg Config, size int64, seed int64) (float64, Stats) {
	t.Helper()
	eng := netsim.New(seed)
	src := NewByteSource(size)
	dst := NewCountSink()
	conn := New(eng, "test", cfg, src, dst)
	var doneAt simtime.Time
	conn.OnDone = func(now simtime.Time) { doneAt = now }
	conn.Start(0)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !conn.Done() {
		t.Fatal("connection did not finish")
	}
	if dst.Received() != size {
		t.Fatalf("sink received %d of %d", dst.Received(), size)
	}
	return doneAt.Seconds(), conn.Stats()
}

func TestTransferDeliversAllBytes(t *testing.T) {
	cfg := Config{RTT: simtime.Milliseconds(50), Capacity: 10e6}
	elapsed, st := runTransfer(t, cfg, 4<<20, 1)
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	if st.BytesAcked != 4<<20 {
		t.Fatalf("acked %d", st.BytesAcked)
	}
}

func TestHandshakeCostsOneRTT(t *testing.T) {
	cfg := Config{RTT: simtime.Milliseconds(100), Capacity: 1e9}
	elapsed, _ := runTransfer(t, cfg, 1, 1)
	// Handshake (0.1s) plus at least one data round (0.1s).
	if elapsed < 0.2 {
		t.Fatalf("elapsed %v, want >= 0.2 (handshake + 1 round)", elapsed)
	}
}

func TestThroughputInverseRTTWindowLimited(t *testing.T) {
	size := int64(8 << 20)
	mk := func(rttMS float64) float64 {
		cfg := Config{
			RTT:      simtime.Milliseconds(rttMS),
			Capacity: 1e9,
			SndBuf:   64 << 10,
			RcvBuf:   64 << 10,
		}
		elapsed, _ := runTransfer(t, cfg, size, 1)
		return float64(size) / elapsed
	}
	bwShort := mk(25)
	bwLong := mk(100)
	ratio := bwShort / bwLong
	if ratio < 3 || ratio > 5 {
		t.Fatalf("window-limited throughput ratio = %.2f, want ≈4 (inverse RTT)", ratio)
	}
}

func TestThroughputApproachesCapacityWhenUnconstrained(t *testing.T) {
	cfg := Config{
		RTT:      simtime.Milliseconds(20),
		Capacity: 8e6,
		SndBuf:   8 << 20,
		RcvBuf:   8 << 20,
	}
	size := int64(64 << 20)
	elapsed, _ := runTransfer(t, cfg, size, 1)
	bw := float64(size) / elapsed
	if bw < 0.6*8e6 || bw > 8e6*1.01 {
		t.Fatalf("bw = %.0f, want near capacity 8e6", bw)
	}
}

func TestLossReducesThroughput(t *testing.T) {
	size := int64(32 << 20)
	mk := func(loss float64) float64 {
		cfg := Config{
			RTT:      simtime.Milliseconds(80),
			Capacity: 16e6,
			LossRate: loss,
		}
		elapsed, _ := runTransfer(t, cfg, size, 3)
		return float64(size) / elapsed
	}
	clean := mk(0)
	lossy := mk(2e-3)
	if lossy >= clean*0.6 {
		t.Fatalf("loss did not hurt: clean=%.0f lossy=%.0f", clean, lossy)
	}
}

func TestLossFollowsMathisShape(t *testing.T) {
	// Quadrupling the loss rate should roughly halve loss-limited
	// throughput. Allow a wide band: the simulator has slow start and
	// discrete rounds.
	size := int64(64 << 20)
	mk := func(loss float64) float64 {
		cfg := Config{RTT: simtime.Milliseconds(60), Capacity: 1e9, LossRate: loss,
			SndBuf: 64 << 20, RcvBuf: 64 << 20}
		var sum float64
		for seed := int64(0); seed < 5; seed++ {
			elapsed, _ := runTransfer(t, cfg, size, 100+seed)
			sum += float64(size) / elapsed
		}
		return sum / 5
	}
	b1 := mk(5e-4)
	b2 := mk(2e-3)
	ratio := b1 / b2
	if ratio < 1.4 || ratio > 3.2 {
		t.Fatalf("Mathis shape violated: 4x loss gave ratio %.2f, want ≈2", ratio)
	}
}

func TestCongestionDropsBoundWindow(t *testing.T) {
	cfg := Config{
		RTT:      simtime.Milliseconds(50),
		Capacity: 2e6,
		SndBuf:   64 << 20,
		RcvBuf:   64 << 20,
	}
	_, st := runTransfer(t, cfg, 32<<20, 1)
	if st.CongestionDrops == 0 {
		t.Fatal("expected bottleneck-queue congestion drops on a loss-free capped path")
	}
}

func TestSmallWindowTimeouts(t *testing.T) {
	cfg := Config{
		RTT:      simtime.Milliseconds(10),
		Capacity: 1e9,
		LossRate: 0.05,
		SndBuf:   8 << 10,
		RcvBuf:   8 << 10,
	}
	_, st := runTransfer(t, cfg, 1<<20, 7)
	if st.Timeouts == 0 {
		t.Fatal("expected timeouts with tiny windows and heavy loss")
	}
}

func TestJitterStaysReasonable(t *testing.T) {
	cfg := Config{RTT: simtime.Milliseconds(40), Capacity: 1e7, Jitter: 0.2}
	e1, _ := runTransfer(t, cfg, 4<<20, 1)
	e2, _ := runTransfer(t, cfg, 4<<20, 2)
	if e1 <= 0 || e2 <= 0 {
		t.Fatal("transfers did not finish")
	}
	if math.Abs(e1-e2)/e1 > 0.5 {
		t.Fatalf("jitter caused wild divergence: %v vs %v", e1, e2)
	}
}

func TestOnAckMonotone(t *testing.T) {
	eng := netsim.New(1)
	src := NewByteSource(2 << 20)
	dst := NewCountSink()
	conn := New(eng, "t", Config{RTT: simtime.Milliseconds(30), Capacity: 1e7}, src, dst)
	var prevAt simtime.Time
	var prevAcked int64
	conn.OnAck = func(now simtime.Time, acked int64) {
		if now < prevAt {
			t.Errorf("ack time went backwards: %v < %v", now, prevAt)
		}
		if acked <= prevAcked {
			t.Errorf("acked bytes not increasing: %d <= %d", acked, prevAcked)
		}
		prevAt, prevAcked = now, acked
	}
	conn.Start(0)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if prevAcked != 2<<20 {
		t.Fatalf("final acked = %d", prevAcked)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	eng := netsim.New(1)
	conn := New(eng, "t", Config{RTT: simtime.Milliseconds(1)}, NewByteSource(1), NewCountSink())
	conn.Start(0)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start should panic")
		}
	}()
	conn.Start(0)
}

func TestConfigModelWindow(t *testing.T) {
	cfg := Config{SndBuf: 1 << 20, RcvBuf: 64 << 10}
	m := cfg.Model()
	if m.WindowLimit != 64<<10 {
		t.Fatalf("model window = %d, want min(snd,rcv)", m.WindowLimit)
	}
}

func TestZeroSizeSourceFinishesImmediately(t *testing.T) {
	eng := netsim.New(1)
	conn := New(eng, "t", Config{RTT: simtime.Milliseconds(10)}, NewByteSource(0), NewCountSink())
	conn.Start(0)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !conn.Done() {
		t.Fatal("zero-byte transfer should finish")
	}
}

func TestWakeOnIdleConnection(t *testing.T) {
	// A connection starved by an empty source goes idle; feeding the
	// source and waking it resumes the transfer.
	eng := netsim.New(1)
	buf := &manualSource{}
	dst := NewCountSink()
	conn := New(eng, "t", Config{RTT: simtime.Milliseconds(10), Capacity: 1e9}, buf, dst)
	conn.Start(0)

	// Deliver 1000 bytes at t=1s via an event.
	eng.At(1, func(simtime.Time) {
		buf.avail = 1000
		conn.Wake()
	})
	eng.At(2, func(simtime.Time) {
		buf.done = true
		conn.Wake()
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !conn.Done() {
		t.Fatal("connection should finish after wake")
	}
	if dst.Received() != 1000 {
		t.Fatalf("received %d", dst.Received())
	}
	if conn.Stats().IdleWakeups == 0 {
		t.Fatal("expected idle wakeups")
	}
}

// manualSource is a hand-driven Source for wake tests.
type manualSource struct {
	avail int64
	done  bool
}

func (m *manualSource) Available() int64 { return m.avail }
func (m *manualSource) Take(n int64)     { m.avail -= n }
func (m *manualSource) Exhausted() bool  { return m.done && m.avail == 0 }

func TestByteSourceOverdrawPanics(t *testing.T) {
	s := NewByteSource(10)
	defer func() {
		if recover() == nil {
			t.Fatal("overdraw should panic")
		}
	}()
	s.Take(11)
}

func TestCountSinkUnlimited(t *testing.T) {
	s := NewCountSink()
	if s.Free() <= 0 {
		t.Fatal("sink should always have space")
	}
	s.Put(5)
	s.Put(7)
	if s.Received() != 12 {
		t.Fatalf("received = %d", s.Received())
	}
}

func TestAnalyticAgreementWindowLimited(t *testing.T) {
	// The simulator and the closed-form model should agree within ~40%
	// for a clean window-limited path.
	cfg := Config{
		RTT:      simtime.Milliseconds(80),
		Capacity: 1e9,
		SndBuf:   64 << 10,
		RcvBuf:   64 << 10,
	}
	size := int64(16 << 20)
	elapsed, _ := runTransfer(t, cfg, size, 1)
	predicted := tcpmodel.TransferTime(cfg.Model(), size).Seconds()
	ratio := elapsed / predicted
	if ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("sim %.2fs vs model %.2fs (ratio %.2f)", elapsed, predicted, ratio)
	}
}

func TestSharedLinkFairSharing(t *testing.T) {
	// Two connections through one 4 MB/s shared link each get ~half.
	eng := netsim.New(1)
	link := NewSharedLink(4e6)
	size := int64(8 << 20)
	mk := func() (*Conn, *CountSink) {
		src := NewByteSource(size)
		dst := NewCountSink()
		c := New(eng, "s", Config{
			RTT:      simtime.Milliseconds(20),
			Capacity: 100e6,
			Shared:   link,
		}, src, dst)
		return c, dst
	}
	c1, d1 := mk()
	c2, d2 := mk()
	var end1, end2 simtime.Time
	c1.OnDone = func(now simtime.Time) { end1 = now }
	c2.OnDone = func(now simtime.Time) { end2 = now }
	c1.Start(0)
	c2.Start(0)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if d1.Received() != size || d2.Received() != size {
		t.Fatal("shared transfers incomplete")
	}
	// Aggregate ≈ link capacity: both done in ≈ 2·size/capacity.
	ideal := 2 * float64(size) / 4e6
	last := end1
	if end2 > last {
		last = end2
	}
	if got := last.Seconds(); got < ideal*0.8 || got > ideal*1.6 {
		t.Fatalf("shared completion %.2fs, want ≈%.2fs", got, ideal)
	}
	if link.Active() != 0 {
		t.Fatalf("link active count leaked: %d", link.Active())
	}
}

func TestSharedLinkSoloUnaffected(t *testing.T) {
	// A single flow on a shared link behaves like an unshared one.
	size := int64(4 << 20)
	solo := func(shared bool) float64 {
		eng := netsim.New(1)
		cfg := Config{RTT: simtime.Milliseconds(20), Capacity: 100e6}
		if shared {
			cfg.Shared = NewSharedLink(2e6)
		} else {
			cfg.Capacity = 2e6
		}
		src := NewByteSource(size)
		dst := NewCountSink()
		c := New(eng, "s", cfg, src, dst)
		var end simtime.Time
		c.OnDone = func(now simtime.Time) { end = now }
		c.Start(0)
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return end.Seconds()
	}
	a, b := solo(true), solo(false)
	// The shared-link path bypasses the BDP window cap (wcap uses the
	// nominal capacity), so allow a loose band.
	if a > b*1.5 || b > a*1.5 {
		t.Fatalf("solo shared %.2fs vs plain %.2fs diverge", a, b)
	}
}

func TestSharedLinkPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSharedLink(0)
}

func TestOnCwndSawtooth(t *testing.T) {
	// With loss, the observed cwnd series must show decreases (the
	// sawtooth), and never exceed the window limit.
	eng := netsim.New(3)
	src := NewByteSource(32 << 20)
	dst := NewCountSink()
	cfg := Config{
		RTT:      simtime.Milliseconds(40),
		Capacity: 1e9,
		LossRate: 3e-4,
		SndBuf:   1 << 20,
		RcvBuf:   1 << 20,
	}
	c := New(eng, "saw", cfg, src, dst)
	var drops int
	var prev float64
	c.OnCwnd = func(now simtime.Time, cwnd float64) {
		if cwnd > float64(1<<20)+1 {
			t.Errorf("cwnd %v exceeds window limit", cwnd)
		}
		if cwnd < prev {
			drops++
		}
		prev = cwnd
	}
	c.Start(0)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if drops == 0 {
		t.Fatal("no sawtooth drops observed despite loss")
	}
}

func TestSimulatorBracketsPadhyeAndMathisAtHighLoss(t *testing.T) {
	// The round-based simulator's timeout behaviour is milder than real
	// Reno's (timeouts only fire below 4 MSS), so at heavy loss it
	// lands between the PFTK (Padhye) prediction, which fully prices
	// timeouts, and the Mathis bound, which ignores them — and the gap
	// to Mathis widens with loss, which is exactly the effect PFTK
	// models.
	measure := func(loss float64) (sim, mathis, padhye float64) {
		cfg := Config{
			RTT:      simtime.Milliseconds(80),
			Capacity: 1e9,
			LossRate: loss,
			SndBuf:   8 << 20,
			RcvBuf:   8 << 20,
		}
		size := int64(4 << 20)
		var sum float64
		const runs = 8
		for seed := int64(0); seed < runs; seed++ {
			elapsed, _ := runTransfer(t, cfg, size, 200+seed)
			sum += float64(size) / elapsed
		}
		return sum / runs,
			tcpmodel.MathisBW(cfg.Model()),
			tcpmodel.PadhyeBW(cfg.Model(), simtime.Milliseconds(200))
	}

	sim3, mathis3, padhye3 := measure(0.03)
	if sim3 > mathis3*1.05 || sim3 < padhye3*0.85 {
		t.Fatalf("loss 3%%: sim %.0f outside [Padhye %.0f, Mathis %.0f]", sim3, padhye3, mathis3)
	}
	sim10, mathis10, padhye10 := measure(0.10)
	if sim10 > mathis10*1.05 || sim10 < padhye10*0.85 {
		t.Fatalf("loss 10%%: sim %.0f outside [Padhye %.0f, Mathis %.0f]", sim10, padhye10, mathis10)
	}
	// The Mathis error grows with loss; PFTK explains why.
	if sim10/mathis10 >= sim3/mathis3 {
		t.Fatalf("Mathis gap did not widen: %.2f at 3%% vs %.2f at 10%%",
			sim3/mathis3, sim10/mathis10)
	}
}
