package tcpsim

// SharedLink models a resource whose capacity is divided among the
// connections actively transmitting through it — a depot host's
// forwarding engine or a saturated access link. Each connection's
// round sees capacity/active, the classic processor-sharing
// approximation of TCP fairness on a common bottleneck.
//
// The paper's evaluation measured transfers one at a time, but its
// conclusion asks about "the scalability of host-based forwarding";
// SharedLink is what the depot-contention ablation uses to answer it.
type SharedLink struct {
	capacity float64
	active   int
}

// NewSharedLink returns a shared resource of the given capacity in
// bytes/sec.
func NewSharedLink(capacity float64) *SharedLink {
	if capacity <= 0 {
		panic("tcpsim: shared link needs positive capacity")
	}
	return &SharedLink{capacity: capacity}
}

// Capacity returns the total capacity.
func (l *SharedLink) Capacity() float64 { return l.capacity }

// Active reports how many connections are currently mid-round.
func (l *SharedLink) Active() int { return l.active }

func (l *SharedLink) join()  { l.active++ }
func (l *SharedLink) leave() { l.active-- }

// share returns the per-flow capacity at the current occupancy, as
// seen by a flow about to start a round (so it counts itself).
func (l *SharedLink) share() float64 {
	n := l.active + 1
	return l.capacity / float64(n)
}
