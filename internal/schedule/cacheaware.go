// Cache-aware planning: scoring candidate routes by what a depot cache
// along them can serve. The cost model mirrors how a cached transfer
// actually runs (see core.TransferCached): the cold fraction of the
// object crosses the whole path from the origin, then the cached
// remainder crosses only the hops downstream of the holding depot. A
// route through a holder can therefore beat the plain minimax route
// even when its links are slower — most of the bytes never touch its
// upstream half.
package schedule

import (
	"math"

	"github.com/netlogistics/lsl/internal/graph"
)

// pathMaxCost is the minimax (bottleneck) per-byte cost of path on the
// last Replan's cost graph: the maximum edge cost along it, or +Inf
// when an edge is missing.
func (p *Planner) pathMaxCost(path []int) float64 {
	if p.g == nil || len(path) < 2 {
		return graph.Inf
	}
	var worst float64
	for k := 0; k+1 < len(path); k++ {
		c := p.g.Cost(graph.NodeID(path[k]), graph.NodeID(path[k+1]))
		if math.IsInf(c, 1) || c <= 0 {
			return graph.Inf
		}
		if c > worst {
			worst = c
		}
	}
	return worst
}

// EffectiveCost scores a path for a transfer whose object is partially
// cached on it. holders marks host indices whose depot cache holds the
// object's suffix; coldFrac is the fraction of the object the cache
// cannot supply (0 = full hit, 1 = fully cold). The score is the
// serial-phase transfer-time model: the cold fraction pays the whole
// path's bottleneck cost, the cached remainder pays only the bottleneck
// downstream of the last holder on the path. With no holder on the
// path the score reduces to the plain minimax cost. Lower is better;
// +Inf means the path is unusable.
func (p *Planner) EffectiveCost(path []int, holders map[int]bool, coldFrac float64) float64 {
	full := p.pathMaxCost(path)
	if math.IsInf(full, 1) {
		return graph.Inf
	}
	if coldFrac < 0 {
		coldFrac = 0
	}
	if coldFrac > 1 {
		coldFrac = 1
	}
	last := -1
	for i := 1; i < len(path)-1; i++ {
		if holders[path[i]] {
			last = i
		}
	}
	if last < 0 || coldFrac >= 1 {
		return full
	}
	warm := p.pathMaxCost(path[last:])
	if math.IsInf(warm, 1) {
		return graph.Inf
	}
	return coldFrac*full + (1-coldFrac)*warm
}

// CacheAwarePath picks the route src→dst with the lowest EffectiveCost
// among the planned minimax route and, for every holder depot, the
// detour through it (the minimax route src→holder joined to the minimax
// route holder→dst, when both exist and are loop-free). It returns the
// planned path unchanged when no detour scores strictly better — cache
// affinity bends a route only when the model says the bytes saved
// outweigh the links taken.
func (p *Planner) CacheAwarePath(src, dst int, holders map[int]bool, coldFrac float64) ([]int, error) {
	best, err := p.Path(src, dst)
	if err != nil {
		return nil, err
	}
	if best == nil || len(holders) == 0 {
		return best, nil
	}
	bestCost := p.EffectiveCost(best, holders, coldFrac)
	for h := range holders {
		if h == src || h == dst || !p.Topo.Hosts[h].Depot {
			continue
		}
		detour := p.detourVia(src, h, dst)
		if detour == nil {
			continue
		}
		if c := p.EffectiveCost(detour, holders, coldFrac); c < bestCost {
			best, bestCost = detour, c
		}
	}
	return best, nil
}

// detourVia joins the planned routes src→via and via→dst into one
// loop-free path, or returns nil when either leg is missing or the legs
// revisit a host.
func (p *Planner) detourVia(src, via, dst int) []int {
	a, err := p.Path(src, via)
	if err != nil || a == nil {
		return nil
	}
	b, err := p.Path(via, dst)
	if err != nil || b == nil {
		return nil
	}
	out := append(append([]int(nil), a...), b[1:]...)
	seen := make(map[int]bool, len(out))
	for _, h := range out {
		if seen[h] {
			return nil
		}
		seen[h] = true
	}
	return out
}
