package schedule

import (
	"testing"

	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/topo"
)

// parallelGraph builds src plus n relays plus dst with fully disjoint
// two-hop routes src→r_i→dst; relay i's route has bottleneck cost
// base+i (so route 0 is best).
func parallelGraph(n int, base float64) (*graph.Graph, graph.NodeID, graph.NodeID) {
	names := []string{"src"}
	for i := 0; i < n; i++ {
		names = append(names, string(rune('a'+i)))
	}
	names = append(names, "dst")
	g := graph.MustNew(names)
	src := graph.NodeID(0)
	dst := graph.NodeID(n + 1)
	for i := 0; i < n; i++ {
		r := graph.NodeID(i + 1)
		g.SetCost(src, r, base+float64(i))
		g.SetCost(r, dst, base+float64(i))
	}
	return g, src, dst
}

func TestDisjointPathsFullyDisjointParallel(t *testing.T) {
	g, src, dst := parallelGraph(3, 1)
	paths := DisjointPaths(g, src, dst, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(paths), paths)
	}
	seen := map[graph.NodeID]bool{}
	for i, p := range paths {
		if len(p) != 3 || p[0] != src || p[2] != dst {
			t.Fatalf("path %d = %v, want src→relay→dst", i, p)
		}
		if seen[p[1]] {
			t.Fatalf("relay %v reused across paths %v", p[1], paths)
		}
		seen[p[1]] = true
	}
	// Ranked best-first: extraction order follows the bottleneck.
	cost := func(p []graph.NodeID) float64 {
		c, err := g.PathCost(p)
		if err != nil {
			t.Fatalf("PathCost(%v): %v", p, err)
		}
		return c
	}
	for i := 1; i < len(paths); i++ {
		if cost(paths[i-1]) > cost(paths[i]) {
			t.Fatalf("paths not ranked by bottleneck: %v", paths)
		}
	}
	// Asking for more than exist degrades to what the graph has.
	if got := DisjointPaths(g, src, dst, 9); len(got) != 3 {
		t.Fatalf("k=9 returned %d paths, want 3", len(got))
	}
}

func TestDisjointPathsCutEdge(t *testing.T) {
	// Two disjoint routes src→{a,b}→m, then a single cut edge m→dst:
	// however many routes are requested, only one can be edge-disjoint.
	g := graph.MustNew([]string{"src", "a", "b", "m", "dst"})
	src, a, b, m, dst := graph.NodeID(0), graph.NodeID(1), graph.NodeID(2), graph.NodeID(3), graph.NodeID(4)
	g.SetCost(src, a, 1)
	g.SetCost(a, m, 1)
	g.SetCost(src, b, 2)
	g.SetCost(b, m, 2)
	g.SetCost(m, dst, 1)
	paths := DisjointPaths(g, src, dst, 3)
	if len(paths) != 1 {
		t.Fatalf("cut edge: got %d paths, want 1: %v", len(paths), paths)
	}
	if want := []graph.NodeID{src, a, m, dst}; len(paths[0]) != 4 ||
		paths[0][1] != want[1] || paths[0][2] != want[2] {
		t.Fatalf("cut-edge path = %v, want %v", paths[0], want)
	}
}

func TestDisjointPathsEdgeCases(t *testing.T) {
	g, src, dst := parallelGraph(2, 1)
	if p := DisjointPaths(g, src, src, 2); p != nil {
		t.Errorf("src==dst returned %v, want nil", p)
	}
	if p := DisjointPaths(g, src, dst, 0); p != nil {
		t.Errorf("k=0 returned %v, want nil", p)
	}
	if p := DisjointPaths(g, src, dst, -3); p != nil {
		t.Errorf("k<0 returned %v, want nil", p)
	}
	if p := DisjointPaths(nil, src, dst, 2); p != nil {
		t.Errorf("nil graph returned %v, want nil", p)
	}
	if p := DisjointPaths(g, -1, dst, 2); p != nil {
		t.Errorf("out-of-range src returned %v, want nil", p)
	}
	if p := DisjointPaths(g, src, graph.NodeID(99), 2); p != nil {
		t.Errorf("out-of-range dst returned %v, want nil", p)
	}
	// k=1 is exactly the single minimax path.
	one := DisjointPaths(g, src, dst, 1)
	if len(one) != 1 {
		t.Fatalf("k=1 returned %d paths", len(one))
	}
	tree := graph.MinimaxTree(g, src, 0)
	oneCost, err1 := g.PathCost(one[0])
	wantCost, err2 := g.PathCost(tree.PathTo(dst))
	if err1 != nil || err2 != nil || oneCost != wantCost {
		t.Fatalf("k=1 path %v is not the minimax path (%v/%v)", one[0], err1, err2)
	}
	// Unreachable destination: no edges toward it at all.
	iso := graph.MustNew([]string{"x", "y"})
	if p := DisjointPaths(iso, 0, 1, 2); p != nil {
		t.Errorf("unreachable dst returned %v, want nil", p)
	}
}

func TestPlannerDisjointPathsTwoPath(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, 0.1)
	src, dst := tp.MustHost(topo.UCSB), tp.MustHost(topo.UIUC)

	paths, err := p.DisjointPaths(src, dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("TwoPath yielded %d disjoint routes, want >= 2: %v", len(paths), paths)
	}
	// The first route is the planner's own minimax route.
	best, err := p.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0]) != len(best) {
		t.Fatalf("first disjoint route %v != planned route %v", paths[0], best)
	}
	for i := range best {
		if paths[0][i] != best[i] {
			t.Fatalf("first disjoint route %v != planned route %v", paths[0], best)
		}
	}
	// Pairwise edge-disjoint.
	type edge struct{ a, b int }
	seen := map[edge]int{}
	for pi, path := range paths {
		for i := 0; i+1 < len(path); i++ {
			e := edge{path[i], path[i+1]}
			if prev, dup := seen[e]; dup {
				t.Fatalf("edge %v shared by routes %d and %d", e, prev, pi)
			}
			seen[e] = pi
		}
	}
	// Every route begins and ends at the endpoints.
	for _, path := range paths {
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("route %v does not span %d→%d", path, src, dst)
		}
	}

	if _, err := p.DisjointPaths(-1, dst, 2); err == nil {
		t.Error("out-of-range src accepted")
	}
	if got, err := p.DisjointPaths(src, src, 2); err != nil || got != nil {
		t.Errorf("src==dst returned %v/%v, want nil/nil", got, err)
	}
}

func TestPlannerDisjointPathsErrNotPlanned(t *testing.T) {
	p, err := NewPlanner(topo.TwoPath(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DisjointPaths(0, 1, 2); err != ErrNotPlanned {
		t.Fatalf("before Replan: err = %v, want ErrNotPlanned", err)
	}
	if _, _, err := p.SuggestPaths(0, 1, 2); err != ErrNotPlanned {
		t.Fatalf("SuggestPaths before Replan: err = %v, want ErrNotPlanned", err)
	}
}

func TestAggregateBandwidthSumsRoutes(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, 0.1)
	src, dst := tp.MustHost(topo.UCSB), tp.MustHost(topo.UIUC)
	paths, err := p.DisjointPaths(src, dst, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, path := range paths {
		want += p.StripedBottleneck(path, 1)
	}
	if got := p.AggregateBandwidth(paths); got != want {
		t.Fatalf("AggregateBandwidth = %v, want %v", got, want)
	}
	if got := p.AggregateBandwidth(nil); got != 0 {
		t.Fatalf("AggregateBandwidth(nil) = %v, want 0", got)
	}
}

func TestSuggestPathsKeepsMeaningfulRoutes(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, 0.1)
	src, dst := tp.MustHost(topo.UCSB), tp.MustHost(topo.UIUC)

	paths, agg, err := p.SuggestPaths(src, dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 1 {
		t.Fatal("SuggestPaths kept no routes on a connected testbed")
	}
	if agg <= 0 {
		t.Fatalf("aggregate forecast %v, want > 0", agg)
	}
	// The aggregate must match the kept routes and never lose to the
	// single best route.
	if want := p.AggregateBandwidth(paths); agg != want {
		t.Fatalf("aggregate %v != recomputed %v", agg, want)
	}
	if single := p.StripedBottleneck(paths[0], 1); agg < single {
		t.Fatalf("aggregate %v below best single route %v", agg, single)
	}

	// A planner with a huge ε keeps only the best route: every further
	// route is below ε × the aggregate so far.
	p.Epsilon = 1e9
	only, _, err := p.SuggestPaths(src, dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 1 {
		t.Fatalf("ε→∞ kept %d routes, want 1", len(only))
	}
}
