package schedule

import (
	"testing"

	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/topo"
)

// replanTopo is the control plane's canonical three-host line: a and c
// are endpoints at distinct sites, b the only relay-capable depot.
func replanTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.New("replan-test", []topo.Host{
		{Name: "a", Site: "sa"},
		{Name: "b", Site: "sb", Depot: true},
		{Name: "c", Site: "sc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// observeMesh feeds one full round of pairwise measurements, the way a
// controller round does.
func observeMesh(t *testing.T, p *Planner, bw map[[2]string]float64) {
	t.Helper()
	for pair, v := range bw {
		if err := p.Observe(pair[0], pair[1], v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestObserveCollapseMovesNextHop drives the planner the way the
// controller does: repeated Observe rounds of a collapsing relay leg
// must move the source's route-table next hop off the relay and onto
// the direct path.
func TestObserveCollapseMovesNextHop(t *testing.T) {
	p, err := NewPlanner(replanTopo(t), -1)
	if err != nil {
		t.Fatal(err)
	}
	strong := map[[2]string]float64{
		{"a", "b"}: 100, {"b", "a"}: 100,
		{"b", "c"}: 100, {"c", "b"}: 100,
		{"a", "c"}: 10, {"c", "a"}: 10,
	}
	observeMesh(t, p, strong)
	if err := p.Replan(); err != nil {
		t.Fatal(err)
	}
	rt, err := p.RouteTable(0)
	if err != nil {
		t.Fatal(err)
	}
	if rt[2] != 1 {
		t.Fatalf("next hop a->c = %d, want relay b (1); table %v", rt[2], rt)
	}

	// The relay's exit leg collapses below the direct path. Forecasters
	// weigh history, so one reading is not a forecast — the controller
	// observes every round, and within a few rounds the table must move.
	collapsed := map[[2]string]float64{
		{"a", "b"}: 100, {"b", "a"}: 100,
		{"b", "c"}: 1, {"c", "b"}: 1,
		{"a", "c"}: 10, {"c", "a"}: 10,
	}
	moved := false
	for round := 0; round < 10 && !moved; round++ {
		observeMesh(t, p, collapsed)
		if err := p.Replan(); err != nil {
			t.Fatal(err)
		}
		rt, err = p.RouteTable(0)
		if err != nil {
			t.Fatal(err)
		}
		moved = rt[2] == 2
	}
	if !moved {
		t.Fatalf("next hop a->c never moved to direct after collapse; table %v", rt)
	}
	// The reverse direction must agree: c reaches a directly too.
	rtc, err := p.RouteTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if rtc[0] != 0 {
		t.Fatalf("next hop c->a = %d, want direct (0); table %v", rtc[0], rtc)
	}
}

// TestEpsilonSuppressesJitterReplans is the hysteresis half: forecast
// wobble within ε must reproduce identical route tables across Replans,
// so the controller's diff finds nothing to push.
func TestEpsilonSuppressesJitterReplans(t *testing.T) {
	p, err := NewPlanner(replanTopo(t), -1) // default ε = 0.10
	if err != nil {
		t.Fatal(err)
	}
	base := map[[2]string]float64{
		{"a", "b"}: 100, {"b", "a"}: 100,
		{"b", "c"}: 100, {"c", "b"}: 100,
		{"a", "c"}: 10, {"c", "a"}: 10,
	}
	observeMesh(t, p, base)
	if err := p.Replan(); err != nil {
		t.Fatal(err)
	}
	want := make([]graph.RouteTable, p.Topo.N())
	for s := range want {
		if want[s], err = p.RouteTable(s); err != nil {
			t.Fatal(err)
		}
	}

	// ±3% wobble — well within ε — over several rounds.
	for round := 0; round < 6; round++ {
		jitter := 1.0 + 0.03*float64(1-2*(round%2))
		wobbled := make(map[[2]string]float64, len(base))
		for pair, v := range base {
			wobbled[pair] = v * jitter
		}
		observeMesh(t, p, wobbled)
		if err := p.Replan(); err != nil {
			t.Fatal(err)
		}
		for s := range want {
			got, err := p.RouteTable(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want[s]) {
				t.Fatalf("round %d: host %d table %v, want %v", round, s, got, want[s])
			}
			for dst, next := range want[s] {
				if got[dst] != next {
					t.Fatalf("round %d: host %d route to %d moved %d -> %d under within-ε jitter",
						round, s, dst, next, got[dst])
				}
			}
		}
	}
}
