package schedule

import (
	"fmt"

	"github.com/netlogistics/lsl/internal/graph"
)

// DisjointPaths iteratively extracts up to k edge-disjoint routes from
// src to dst, ranked by minimax bottleneck: the best remaining minimax
// path is taken, its directed edges are pruned from the working graph,
// and the computation repeats on what survives. Because each round
// solves the reduced graph exactly, the i-th route is the best route
// that shares no edge with the first i-1 — and when a cut edge (or a
// cut depot) leaves no further route, the function degrades gracefully
// and returns the fewer routes it found. It returns nil when k < 1,
// src == dst, either endpoint is out of range, or dst is unreachable.
func DisjointPaths(g *graph.Graph, src, dst graph.NodeID, k int) [][]graph.NodeID {
	return DisjointPathsTransit(g, src, dst, k, 0, nil)
}

// DisjointPathsTransit is DisjointPaths with the planner's ε
// edge-equivalence damping and per-node transit costs applied to every
// extraction round (transit[v] = +Inf keeps non-depot hosts from
// forwarding, exactly as in Replan). A nil transit slice means free
// transit everywhere.
func DisjointPathsTransit(g *graph.Graph, src, dst graph.NodeID, k int, epsilon float64, transit []float64) [][]graph.NodeID {
	if g == nil || k < 1 || src == dst {
		return nil
	}
	if src < 0 || int(src) >= g.N() || dst < 0 || int(dst) >= g.N() {
		return nil
	}
	work := g.Clone()
	var out [][]graph.NodeID
	for len(out) < k {
		t := graph.MinimaxTreeTransit(work, src, epsilon, transit)
		p := t.PathTo(dst)
		if p == nil {
			break
		}
		out = append(out, p)
		for i := 0; i+1 < len(p); i++ {
			work.SetCost(p[i], p[i+1], graph.Inf)
		}
	}
	return out
}

// DisjointPaths returns up to k edge-disjoint planned routes from src
// to dst as host-index paths (including the endpoints), best minimax
// bottleneck first, computed on the last Replan's cost graph under the
// same relay rules as Path (non-depot hosts never forward; HostTransit
// depots pay their forwarding cost). Fewer than k routes — possibly
// zero — are returned when the surviving graph runs out of disjoint
// routes. It returns ErrNotPlanned before Replan.
func (p *Planner) DisjointPaths(src, dst, k int) ([][]int, error) {
	if p.g == nil {
		return nil, ErrNotPlanned
	}
	n := p.Topo.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("schedule: host index out of range")
	}
	raw := DisjointPathsTransit(p.g, graph.NodeID(src), graph.NodeID(dst), k, p.Epsilon, p.transitCosts(nil))
	if len(raw) == 0 {
		return nil, nil
	}
	paths := make([][]int, 0, len(raw))
	for _, nodes := range raw {
		path := make([]int, len(nodes))
		for i, id := range nodes {
			path[i] = int(id)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// AggregateBandwidth forecasts the capacity of one logical transfer
// fanned over the given routes concurrently: each route contributes
// its single-flow minimax bottleneck (forecast bandwidth capped by
// physical link capacity, as in StripedBottleneck with one stripe),
// and because the routes share no edge the contributions add. Routes
// with a missing edge contribute nothing.
func (p *Planner) AggregateBandwidth(paths [][]int) float64 {
	var sum float64
	for _, path := range paths {
		sum += p.StripedBottleneck(path, 1)
	}
	return sum
}

// SuggestPaths is the multipath analog of SuggestStripes: it extracts
// up to max disjoint routes from src to dst and keeps a route only
// while it still improves the aggregate meaningfully — the i-th route
// is kept when its own forecast bottleneck exceeds ε times the
// aggregate of the routes before it (ε is the planner's
// edge-equivalence; zero keeps every route with positive forecast).
// The trimmed routes and their forecast aggregate bandwidth are
// returned; a nil route list means src and dst are disconnected.
func (p *Planner) SuggestPaths(src, dst, max int) ([][]int, float64, error) {
	paths, err := p.DisjointPaths(src, dst, max)
	if err != nil {
		return nil, 0, err
	}
	var kept [][]int
	var sum float64
	for _, path := range paths {
		bw := p.StripedBottleneck(path, 1)
		if bw <= 0 || (len(kept) > 0 && bw <= p.Epsilon*sum) {
			break
		}
		kept = append(kept, path)
		sum += bw
	}
	return kept, sum, nil
}
