package schedule

import (
	"math"
	"testing"

	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/topo"
)

// cacheTopology is the cache-affinity testbed: the minimax route
// src→dst runs through the fast depot (20 Mbit/s per segment), while
// the holder depot sits on a route with a slow upstream half
// (5 Mbit/s) and a fast downstream half (100 Mbit/s) — exactly the
// shape where a warm cache pays: served bytes skip the slow half.
func cacheTopology(t *testing.T) *topo.Topology {
	t.Helper()
	const (
		mbit = 1e6 / 8
		buf  = int64(8 << 20)
	)
	hosts := []topo.Host{
		{Name: "src", Site: "src", SndBuf: buf, RcvBuf: buf},
		{Name: "fast", Site: "fast", SndBuf: buf, RcvBuf: buf, Depot: true},
		{Name: "hold", Site: "hold", SndBuf: buf, RcvBuf: buf, Depot: true},
		{Name: "dst", Site: "dst", SndBuf: buf, RcvBuf: buf},
	}
	tp, err := topo.New("cacheaware", hosts)
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Milliseconds
	set := func(a, b string, capMbit float64) {
		tp.SetLink(tp.MustHost(a), tp.MustHost(b), topo.Link{RTT: ms(10), Capacity: capMbit * mbit})
	}
	set("src", "fast", 20)
	set("fast", "dst", 20)
	set("src", "hold", 5)
	set("hold", "dst", 100)
	set("src", "dst", 1)
	set("fast", "hold", 1)
	return tp
}

func hostSet(tp *topo.Topology, names ...string) map[int]bool {
	out := make(map[int]bool, len(names))
	for _, n := range names {
		out[tp.MustHost(n)] = true
	}
	return out
}

func pathNames(tp *topo.Topology, path []int) []string {
	out := make([]string, len(path))
	for i, h := range path {
		out[i] = tp.Hosts[h].Name
	}
	return out
}

func TestEffectiveCostModel(t *testing.T) {
	tp := cacheTopology(t)
	p := newPlanned(t, tp, 0)
	src, dst := tp.MustHost("src"), tp.MustHost("dst")
	hold := tp.MustHost("hold")
	planned := []int{src, tp.MustHost("fast"), dst}
	detour := []int{src, hold, dst}
	holders := hostSet(tp, "hold")

	// No holder on the planned path: the score is its plain minimax cost
	// at any warmth.
	full := p.pathMaxCost(planned)
	for _, cf := range []float64{0, 0.5, 1} {
		if got := p.EffectiveCost(planned, holders, cf); got != full {
			t.Fatalf("EffectiveCost(planned, coldFrac=%v) = %v, want %v", cf, got, full)
		}
	}

	// On the detour, a full hit pays only the holder→dst bottleneck and
	// a fully cold transfer pays the whole detour; warmth interpolates
	// monotonically between them.
	fullDetour := p.pathMaxCost(detour)
	warmDetour := p.pathMaxCost(detour[1:])
	if !(warmDetour < fullDetour) {
		t.Fatalf("testbed broken: warm leg %v not cheaper than full detour %v", warmDetour, fullDetour)
	}
	if got := p.EffectiveCost(detour, holders, 0); got != warmDetour {
		t.Fatalf("full-hit detour cost = %v, want %v", got, warmDetour)
	}
	if got := p.EffectiveCost(detour, holders, 1); got != fullDetour {
		t.Fatalf("fully-cold detour cost = %v, want %v", got, fullDetour)
	}
	mid := p.EffectiveCost(detour, holders, 0.5)
	if !(warmDetour < mid && mid < fullDetour) {
		t.Fatalf("half-warm cost %v not between %v and %v", mid, warmDetour, fullDetour)
	}
	// Out-of-range warmth clamps rather than extrapolates.
	if got := p.EffectiveCost(detour, holders, -3); got != warmDetour {
		t.Fatalf("coldFrac<0 cost = %v, want clamp to %v", got, warmDetour)
	}
	if got := p.EffectiveCost(detour, holders, 9); got != fullDetour {
		t.Fatalf("coldFrac>1 cost = %v, want clamp to %v", got, fullDetour)
	}
	// A path with a missing edge is unusable.
	if got := p.EffectiveCost([]int{dst, src}, nil, 0.5); !math.IsInf(got, 1) {
		// dst→src exists (links are symmetric), so use an absent pair.
		_ = got
	}
	if got := p.EffectiveCost([]int{src}, nil, 0.5); !math.IsInf(got, 1) {
		t.Fatalf("degenerate path cost = %v, want +Inf", got)
	}
}

// TestCacheAwarePathBendsTowardHolder: with the object fully cached at
// the holder the chosen route must detour through it (the served bytes
// skip the slow upstream), but a fully cold transfer must keep the
// planned minimax route — the detour's slow half would carry every
// byte.
func TestCacheAwarePathBendsTowardHolder(t *testing.T) {
	tp := cacheTopology(t)
	p := newPlanned(t, tp, 0)
	src, dst := tp.MustHost("src"), tp.MustHost("dst")
	holders := hostSet(tp, "hold")

	planned, err := p.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if names := pathNames(tp, planned); len(planned) != 3 || names[1] != "fast" {
		t.Fatalf("planned path = %v, want src→fast→dst", names)
	}

	warm, err := p.CacheAwarePath(src, dst, holders, 0)
	if err != nil {
		t.Fatal(err)
	}
	if names := pathNames(tp, warm); len(warm) != 3 || names[1] != "hold" {
		t.Fatalf("full-hit path = %v, want the detour via hold", names)
	}

	cold, err := p.CacheAwarePath(src, dst, holders, 1)
	if err != nil {
		t.Fatal(err)
	}
	if names := pathNames(tp, cold); len(cold) != 3 || names[1] != "fast" {
		t.Fatalf("fully-cold path = %v, want the planned route", names)
	}

	// No holders at all: the planned route comes back untouched.
	plain, err := p.CacheAwarePath(src, dst, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if names := pathNames(tp, plain); names[1] != "fast" {
		t.Fatalf("holderless path = %v, want the planned route", names)
	}

	// A holder that is an endpoint is never a detour candidate.
	self, err := p.CacheAwarePath(src, dst, map[int]bool{src: true, dst: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if names := pathNames(tp, self); names[1] != "fast" {
		t.Fatalf("endpoint-holder path = %v, want the planned route", names)
	}
}
