// Package schedule ties the measurement, forecasting and graph layers
// into the paper's scheduling system: it maintains an NWS monitor over
// a topology's hosts, converts the forecast bandwidth matrix into a
// transfer-time cost graph (cost = 1/bandwidth), builds one ε-damped
// Minimax-Path tree per source, and answers routing queries — either a
// loose source route for the session initiator or per-depot route
// tables for hop-by-hop forwarding.
package schedule

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/nws"
	"github.com/netlogistics/lsl/internal/topo"
)

// DefaultEpsilon is the paper's edge-equivalence value: an alternative
// edge must be at least 10% better before it reshapes a tree.
const DefaultEpsilon = 0.10

// Planner is the scheduling system of Section 4.
type Planner struct {
	Topo    *topo.Topology
	Monitor *nws.Monitor
	Epsilon float64
	// AggregateSites applies the performance-topology clique
	// aggregation the paper takes from Swany & Wolski: the forecast for
	// an inter-site host pair is replaced by the mean forecast over all
	// host pairs between the two sites. Hosts at one site share the
	// same wide-area connectivity, so averaging both suppresses
	// measurement noise (which otherwise makes spurious relays look
	// >ε better) and makes functionally identical hosts identical in
	// the graph. Enabled by default, as in the paper.
	AggregateSites bool
	// HostTransit makes the planner account for the bandwidth through
	// each depot host ("the bandwidth through the host was not
	// accounted for" is the paper's main self-criticism; extending the
	// algorithm with host edges is its stated future work). When set,
	// forwarding through host m contributes 1/ForwardRate(m) to a
	// path's minimax cost, so overloaded depots stop attracting
	// sessions they will throttle.
	HostTransit bool

	trees   []*graph.Tree // per-source MMP trees from the last Replan
	g       *graph.Graph  // cost graph of the last Replan
	replans int
}

// NewPlanner builds a planner over t with edge-equivalence epsilon
// (negative epsilon selects DefaultEpsilon; zero disables damping).
func NewPlanner(t *topo.Topology, epsilon float64) (*Planner, error) {
	if t.N() < 2 {
		return nil, fmt.Errorf("schedule: topology %q has %d hosts, need >= 2", t.Name, t.N())
	}
	if epsilon < 0 {
		epsilon = DefaultEpsilon
	}
	mon, err := nws.NewMonitor(t.HostNames(), nil)
	if err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	return &Planner{Topo: t, Monitor: mon, Epsilon: epsilon, AggregateSites: true}, nil
}

// Prime feeds the monitor samples measurements of every ordered host
// pair, standing in for the NWS sensors that run continuously on a real
// deployment.
func (p *Planner) Prime(rng *rand.Rand, samples int) error {
	if samples < 1 {
		samples = 1
	}
	names := p.Topo.HostNames()
	for s := 0; s < len(names); s++ {
		for d := 0; d < len(names); d++ {
			if s == d {
				continue
			}
			for k := 0; k < samples; k++ {
				bw := p.Topo.MeasuredBW(s, d, rng)
				if err := p.Monitor.Observe(names[s], names[d], bw); err != nil {
					return fmt.Errorf("schedule: prime: %w", err)
				}
			}
		}
	}
	return nil
}

// Observe records one bandwidth measurement, e.g. the outcome of a real
// transfer fed back into the forecasts.
func (p *Planner) Observe(src, dst string, bw float64) error {
	return p.Monitor.Observe(src, dst, bw)
}

// ErrNotPlanned is returned by queries before the first Replan.
var ErrNotPlanned = errors.New("schedule: no plan built yet (call Replan)")

// Replan snapshots the forecast matrix and rebuilds every source tree.
// Intermediate (relay) positions are restricted to depot hosts: for each
// source's tree, outgoing edges of non-depot hosts other than the
// source are removed, so such hosts can terminate but never forward a
// session.
func (p *Planner) Replan() error {
	mx := p.Monitor.Snapshot()
	if p.AggregateSites {
		mx = p.aggregateSites(mx)
	}
	n := p.Topo.N()
	g, err := CostGraph(mx)
	if err != nil {
		return err
	}
	p.g = g

	// Per-node transit costs encode both rules at once: non-depot
	// hosts may never forward (infinite transit), and with HostTransit
	// a depot's forwarding bandwidth joins the minimax like any other
	// edge.
	transit := p.transitCosts(nil)

	p.trees = make([]*graph.Tree, n)
	for s := 0; s < n; s++ {
		p.trees[s] = graph.MinimaxTreeTransit(g, graph.NodeID(s), p.Epsilon, transit)
	}
	p.replans++
	return nil
}

// aggregateSites replaces every inter-site host-pair forecast with the
// mean of the finite forecasts between the two sites; intra-site
// forecasts are left alone.
func (p *Planner) aggregateSites(mx nws.Matrix) nws.Matrix {
	n := len(mx.Hosts)
	site := make([]string, n)
	for i := range site {
		site[i] = p.Topo.SiteOf(i)
	}
	type pair struct{ a, b string }
	sums := make(map[pair]float64)
	counts := make(map[pair]int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || site[i] == site[j] {
				continue
			}
			v := mx.BW[i][j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			k := pair{site[i], site[j]}
			sums[k] += v
			counts[k]++
		}
	}
	out := nws.Matrix{Hosts: mx.Hosts, BW: make([][]float64, n)}
	for i := 0; i < n; i++ {
		out.BW[i] = append([]float64(nil), mx.BW[i]...)
		for j := 0; j < n; j++ {
			if i == j || site[i] == site[j] {
				continue
			}
			k := pair{site[i], site[j]}
			if c := counts[k]; c > 0 {
				out.BW[i][j] = sums[k] / float64(c)
			}
		}
	}
	return out
}

// CostGraph converts a bandwidth forecast matrix into a transfer-time
// cost graph: cost(i,j) = 1/BW(i,j). Pairs with no forecast get no edge.
func CostGraph(mx nws.Matrix) (*graph.Graph, error) {
	g, err := graph.New(mx.Hosts)
	if err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	for i := range mx.Hosts {
		for j := range mx.Hosts {
			if i == j {
				continue
			}
			bw := mx.BW[i][j]
			if math.IsNaN(bw) || bw <= 0 {
				continue
			}
			g.SetCost(graph.NodeID(i), graph.NodeID(j), 1/bw)
		}
	}
	return g, nil
}

// Replans reports how many times the plan has been rebuilt.
func (p *Planner) Replans() int { return p.replans }

// Graph returns the cost graph of the last Replan (nil before any).
func (p *Planner) Graph() *graph.Graph { return p.g }

// Tree returns the MMP tree rooted at host index s.
func (p *Planner) Tree(s int) (*graph.Tree, error) {
	if p.trees == nil {
		return nil, ErrNotPlanned
	}
	if s < 0 || s >= len(p.trees) {
		return nil, fmt.Errorf("schedule: host index %d out of range", s)
	}
	return p.trees[s], nil
}

// Path returns the planned loose-source-route path from src to dst as
// host indices (including the endpoints). A two-element path means the
// scheduler chose direct transfer. It returns nil, ErrNotPlanned before
// Replan and nil, nil when dst is unreachable.
func (p *Planner) Path(src, dst int) ([]int, error) {
	t, err := p.Tree(src)
	if err != nil {
		return nil, err
	}
	nodes := t.PathTo(graph.NodeID(dst))
	if nodes == nil {
		return nil, nil
	}
	path := make([]int, len(nodes))
	for i, id := range nodes {
		path[i] = int(id)
	}
	return path, nil
}

// PathAvoiding recomputes the minimax path from src to dst on the last
// Replan's cost graph with the avoided hosts removed as relays — the
// failover query: when a depot on the planned route dies mid-transfer,
// the surviving topology is re-solved without waiting for the next
// measurement cadence. Avoided hosts get infinite transit cost, so they
// can still terminate a session (src and dst are never excluded) but
// never forward one. Like Path, it returns nil, nil when dst is
// unreachable in the surviving graph; callers degrade to a direct
// transfer in that case.
func (p *Planner) PathAvoiding(src, dst int, avoid map[int]bool) ([]int, error) {
	if p.g == nil {
		return nil, ErrNotPlanned
	}
	n := p.Topo.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("schedule: host index out of range")
	}
	t := graph.MinimaxTreeTransit(p.g, graph.NodeID(src), p.Epsilon, p.transitCosts(avoid))
	nodes := t.PathTo(graph.NodeID(dst))
	if nodes == nil {
		return nil, nil
	}
	path := make([]int, len(nodes))
	for i, id := range nodes {
		path[i] = int(id)
	}
	return path, nil
}

// transitCosts builds the per-node transit slice the tree builders
// consume: avoided and non-depot hosts get infinite transit (they may
// terminate a session but never forward one), and with HostTransit a
// depot's forwarding bandwidth joins the minimax like any other edge.
func (p *Planner) transitCosts(avoid map[int]bool) []float64 {
	transit := make([]float64, p.Topo.N())
	for i, h := range p.Topo.Hosts {
		switch {
		case avoid[i] || !h.Depot:
			transit[i] = graph.Inf
		case p.HostTransit && h.ForwardRate > 0:
			transit[i] = 1 / h.ForwardRate
		}
	}
	return transit
}

// Relayed reports whether the planned path src→dst uses at least one
// depot relay.
func (p *Planner) Relayed(src, dst int) (bool, error) {
	path, err := p.Path(src, dst)
	if err != nil {
		return false, err
	}
	return len(path) > 2, nil
}

// RelayedFraction reports the fraction of ordered reachable host pairs
// whose planned route uses depots — the paper's 26% statistic.
func (p *Planner) RelayedFraction() (float64, error) {
	if p.trees == nil {
		return 0, ErrNotPlanned
	}
	var relayed, total int
	for s, t := range p.trees {
		for d := 0; d < p.Topo.N(); d++ {
			if s == d || !t.Reachable(graph.NodeID(d)) {
				continue
			}
			total++
			if len(t.Relays(graph.NodeID(d))) > 0 {
				relayed++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(relayed) / float64(total), nil
}

// RouteTable reduces host s's tree to depot forwarding state.
func (p *Planner) RouteTable(s int) (graph.RouteTable, error) {
	t, err := p.Tree(s)
	if err != nil {
		return nil, err
	}
	return t.Routes(), nil
}

// StripedBottleneck predicts the end-to-end bandwidth of a transfer
// striped over n parallel sublink chains along path (host indices, as
// returned by Path). A single TCP flow on edge (i,j) is forecast at
// the monitor's bandwidth 1/cost(i,j); n stripes multiply that flow
// rate until the link's physical capacity caps it, so each edge
// contributes min(n × forecast, capacity) and the path moves at the
// narrowest edge — the minimax bottleneck, stripe-aware. Edges with no
// physical capacity record (test topologies) are capped only by the
// forecast. It returns 0 before Replan, for paths shorter than two
// hosts, or when any edge is missing from the cost graph.
func (p *Planner) StripedBottleneck(path []int, n int) float64 {
	if p.g == nil || len(path) < 2 || n < 1 {
		return 0
	}
	bottleneck := math.Inf(1)
	for k := 0; k+1 < len(path); k++ {
		i, j := path[k], path[k+1]
		c := p.g.Cost(graph.NodeID(i), graph.NodeID(j))
		if math.IsInf(c, 1) || c <= 0 {
			return 0
		}
		bw := float64(n) / c
		if l := p.Topo.Link(i, j); l.Valid() && l.Capacity > 0 && l.Capacity < bw {
			bw = l.Capacity
		}
		if bw < bottleneck {
			bottleneck = bw
		}
	}
	return bottleneck
}

// SuggestStripes returns the smallest stripe count in [1, max] beyond
// which StripedBottleneck stops improving on path — the point where
// every edge is capacity-limited and further sublinks only add
// connection overhead. The predicted striped bandwidth is returned
// alongside. max < 1 is treated as 1.
func (p *Planner) SuggestStripes(path []int, max int) (int, float64) {
	if max < 1 {
		max = 1
	}
	best, bw := 1, p.StripedBottleneck(path, 1)
	for n := 2; n <= max; n++ {
		next := p.StripedBottleneck(path, n)
		if next <= bw {
			break
		}
		best, bw = n, next
	}
	return best, bw
}

// AutoEpsilon returns the monitor's mean relative forecast error, the
// paper's suggested automatic ε ("prediction error from the NWS ...
// potentially good candidates for ε"). It falls back to DefaultEpsilon
// when there is not enough history.
func (p *Planner) AutoEpsilon() float64 {
	e := p.Monitor.MeanRelativeError()
	if math.IsNaN(e) || e <= 0 {
		return DefaultEpsilon
	}
	if e > 0.5 {
		e = 0.5
	}
	return e
}
