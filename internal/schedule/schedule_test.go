package schedule

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/nws"
	"github.com/netlogistics/lsl/internal/topo"
)

func newPlanned(t *testing.T, tp *topo.Topology, eps float64) *Planner {
	t.Helper()
	p, err := NewPlanner(tp, eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := p.Prime(rng, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Replan(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlannerValidation(t *testing.T) {
	cfg := topo.DefaultPlanetLab()
	cfg.Hosts = 1
	cfg.MaxHostsPerSite = 1
	tiny := topo.PlanetLab(cfg, 99)
	if _, err := NewPlanner(tiny, 0.1); err == nil {
		t.Fatal("single-host topology accepted")
	}
}

func TestErrNotPlanned(t *testing.T) {
	p, err := NewPlanner(topo.TwoPath(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Path(0, 1); !errors.Is(err, ErrNotPlanned) {
		t.Fatalf("Path before Replan: %v", err)
	}
	if _, err := p.RelayedFraction(); !errors.Is(err, ErrNotPlanned) {
		t.Fatalf("RelayedFraction before Replan: %v", err)
	}
	if _, err := p.Tree(0); !errors.Is(err, ErrNotPlanned) {
		t.Fatalf("Tree before Replan: %v", err)
	}
}

func TestTwoPathPlanFindsDepotRoutes(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	ucsb := tp.MustHost(topo.UCSB)
	uiuc := tp.MustHost(topo.UIUC)
	path, err := p.Path(ucsb, uiuc)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 3 {
		t.Fatalf("expected a depot route UCSB→UIUC, got %v", path)
	}
	// Every intermediate node must be a depot.
	for _, h := range path[1 : len(path)-1] {
		if !tp.Hosts[h].Depot {
			t.Fatalf("relay through non-depot %s", tp.Hosts[h].Name)
		}
	}
	relayed, err := p.Relayed(ucsb, uiuc)
	if err != nil || !relayed {
		t.Fatalf("Relayed = %v, %v", relayed, err)
	}
}

func TestNonDepotNeverForwards(t *testing.T) {
	tp := topo.AbileneCore(topo.DefaultAbileneCore(), 1)
	p := newPlanned(t, tp, DefaultEpsilon)
	for s := 0; s < tp.N(); s++ {
		for d := 0; d < tp.N(); d++ {
			if s == d {
				continue
			}
			path, err := p.Path(s, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range path[1:max(len(path)-1, 1)] {
				if !tp.Hosts[h].Depot {
					t.Fatalf("non-depot %s forwards on path %v", tp.Hosts[h].Name, path)
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPathEndpoints(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	for s := 0; s < tp.N(); s++ {
		for d := 0; d < tp.N(); d++ {
			if s == d {
				continue
			}
			path, err := p.Path(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if path == nil {
				t.Fatalf("no path %d→%d in a complete graph", s, d)
			}
			if path[0] != s || path[len(path)-1] != d {
				t.Fatalf("path endpoints wrong: %v", path)
			}
		}
	}
}

func TestRelayedFractionRange(t *testing.T) {
	tp := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	p := newPlanned(t, tp, DefaultEpsilon)
	frac, err := p.RelayedFraction()
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated to the paper's ballpark (26%): accept a generous band.
	if frac < 0.10 || frac > 0.60 {
		t.Fatalf("relayed fraction = %.2f, want within [0.10, 0.60]", frac)
	}
}

func TestEpsilonMonotone(t *testing.T) {
	tp := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	var prev float64 = 2
	for _, eps := range []float64{0.05, 0.2, 0.5} {
		p := newPlanned(t, tp, eps)
		frac, err := p.RelayedFraction()
		if err != nil {
			t.Fatal(err)
		}
		if frac > prev+0.02 {
			t.Fatalf("relayed fraction rose with epsilon: %v at eps=%v (prev %v)", frac, eps, prev)
		}
		prev = frac
	}
}

func TestRouteTable(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	rt, err := p.RouteTable(tp.MustHost(topo.UCSB))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != tp.N()-1 {
		t.Fatalf("route table entries = %d, want %d", len(rt), tp.N()-1)
	}
}

func TestCostGraph(t *testing.T) {
	mx := nws.Matrix{
		Hosts: []string{"a", "b"},
		BW: [][]float64{
			{math.Inf(1), 2},
			{math.NaN(), math.Inf(1)},
		},
	}
	g, err := CostGraph(mx)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Cost(0, 1); got != 0.5 {
		t.Fatalf("cost = %v, want 1/2", got)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("NaN forecast should give no edge")
	}
}

func TestObserveFeedsMonitor(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	before := p.Monitor.Updates()
	if err := p.Observe(topo.UCSB, topo.UIUC, 5e6); err != nil {
		t.Fatal(err)
	}
	if p.Monitor.Updates() != before+1 {
		t.Fatal("observation not recorded")
	}
}

func TestAutoEpsilon(t *testing.T) {
	tp := topo.TwoPath()
	p, err := NewPlanner(tp, DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	// Without history it falls back to the default.
	if got := p.AutoEpsilon(); got != DefaultEpsilon {
		t.Fatalf("fallback epsilon = %v", got)
	}
	rng := rand.New(rand.NewSource(1))
	if err := p.Prime(rng, 20); err != nil {
		t.Fatal(err)
	}
	got := p.AutoEpsilon()
	if got <= 0 || got > 0.5 {
		t.Fatalf("auto epsilon = %v", got)
	}
}

func TestReplanCountsAndGraph(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	if p.Replans() != 1 {
		t.Fatalf("replans = %d", p.Replans())
	}
	if p.Graph() == nil {
		t.Fatal("graph missing after replan")
	}
	if err := p.Replan(); err != nil {
		t.Fatal(err)
	}
	if p.Replans() != 2 {
		t.Fatalf("replans = %d", p.Replans())
	}
}

func TestSiteAggregationMakesSiteMatesEquivalent(t *testing.T) {
	// With aggregation on, two hosts at the same site must see the
	// same inter-site costs in the planner's graph.
	tp := topo.PlanetLab(topo.DefaultPlanetLab(), 3)
	p := newPlanned(t, tp, DefaultEpsilon)
	g := p.Graph()

	// Find a site with two hosts.
	bySite := map[string][]int{}
	for i := range tp.Hosts {
		site := tp.SiteOf(i)
		bySite[site] = append(bySite[site], i)
	}
	for site, hosts := range bySite {
		if len(hosts) < 2 {
			continue
		}
		a, b := hosts[0], hosts[1]
		for j := 0; j < tp.N(); j++ {
			if tp.SiteOf(j) == site {
				continue
			}
			ca := g.Cost(graph.NodeID(a), graph.NodeID(j))
			cb := g.Cost(graph.NodeID(b), graph.NodeID(j))
			if math.Abs(ca-cb) > 1e-12*math.Max(ca, cb) {
				t.Fatalf("site mates %d,%d see different costs to %d: %v vs %v", a, b, j, ca, cb)
			}
		}
		return // one site suffices
	}
	t.Skip("no multi-host site in this topology draw")
}

func TestTreeBounds(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	if _, err := p.Tree(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := p.Tree(999); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestHostTransitPrunesSlowForwarders(t *testing.T) {
	tp := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	plain := newPlanned(t, tp, DefaultEpsilon)

	aware, err := NewPlanner(tp, DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	aware.HostTransit = true
	rng := rand.New(rand.NewSource(1))
	if err := aware.Prime(rng, 8); err != nil {
		t.Fatal(err)
	}
	if err := aware.Replan(); err != nil {
		t.Fatal(err)
	}

	// Host-transit awareness can only remove relays whose forwarding
	// bandwidth would be the bottleneck, never add capacity from thin
	// air: the relayed fraction must not grow meaningfully.
	fPlain, err := plain.RelayedFraction()
	if err != nil {
		t.Fatal(err)
	}
	fAware, err := aware.RelayedFraction()
	if err != nil {
		t.Fatal(err)
	}
	if fAware > fPlain+0.05 {
		t.Fatalf("host-aware relayed %.2f > plain %.2f", fAware, fPlain)
	}

	// Every host-aware relay path must clear the forwarding-bandwidth
	// bar: no relay whose depot ForwardRate is below the path's
	// bottleneck estimate.
	g := aware.Graph()
	for s := 0; s < tp.N(); s++ {
		tree, err := aware.Tree(s)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < tp.N(); d++ {
			if s == d {
				continue
			}
			relays := tree.Relays(graph.NodeID(d))
			for _, r := range relays {
				fwd := tp.Hosts[int(r)].ForwardRate
				if fwd <= 0 {
					continue
				}
				// The path cost includes 1/fwd, so cost >= 1/fwd.
				if cost := tree.Cost[d]; cost < 1/fwd-1e-12 {
					t.Fatalf("path cost %v below transit floor %v of relay %d", cost, 1/fwd, r)
				}
			}
			_ = g
		}
	}
}

func TestPathAvoidingReroutesAroundDeadDepot(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, DefaultEpsilon)
	ucsb := tp.MustHost(topo.UCSB)
	uiuc := tp.MustHost(topo.UIUC)
	path, err := p.Path(ucsb, uiuc)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 3 {
		t.Fatalf("expected a relayed plan, got %v", path)
	}
	dead := path[1]
	avoid := map[int]bool{dead: true}
	alt, err := p.PathAvoiding(ucsb, uiuc, avoid)
	if err != nil {
		t.Fatal(err)
	}
	if alt == nil {
		t.Fatal("destination unreachable after removing one depot")
	}
	if alt[0] != ucsb || alt[len(alt)-1] != uiuc {
		t.Fatalf("endpoints of %v", alt)
	}
	for _, h := range alt[1 : len(alt)-1] {
		if h == dead {
			t.Fatalf("reroute %v still uses the dead depot %d", alt, dead)
		}
		if !tp.Hosts[h].Depot {
			t.Fatalf("reroute relays through non-depot %s", tp.Hosts[h].Name)
		}
	}
	// Avoiding nothing reproduces the planned path.
	same, err := p.PathAvoiding(ucsb, uiuc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != len(path) {
		t.Fatalf("PathAvoiding(nil) = %v, planner path %v", same, path)
	}
}

func TestPathAvoidingValidation(t *testing.T) {
	tp := topo.TwoPath()
	p, err := NewPlanner(tp, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PathAvoiding(0, 1, nil); !errors.Is(err, ErrNotPlanned) {
		t.Fatalf("before Replan: %v", err)
	}
	p = newPlanned(t, tp, 0.1)
	if _, err := p.PathAvoiding(-1, 1, nil); err == nil {
		t.Fatal("bad src accepted")
	}
	if _, err := p.PathAvoiding(0, tp.N(), nil); err == nil {
		t.Fatal("bad dst accepted")
	}
}

func TestStripedBottleneck(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, 0.1)
	ucsb, _ := tp.HostIndex(topo.UCSB)
	uiuc, _ := tp.HostIndex(topo.UIUC)
	path, err := p.Path(ucsb, uiuc)
	if err != nil || path == nil {
		t.Fatalf("path: %v, %v", path, err)
	}

	one := p.StripedBottleneck(path, 1)
	if one <= 0 {
		t.Fatalf("single-flow bottleneck = %v, want > 0", one)
	}
	// More stripes never predict less bandwidth, and each step is capped
	// at a linear speedup and at the physical link capacities.
	prev := one
	for n := 2; n <= 8; n++ {
		bw := p.StripedBottleneck(path, n)
		if bw < prev {
			t.Fatalf("StripedBottleneck(%d) = %v < StripedBottleneck(%d) = %v", n, bw, n-1, prev)
		}
		if bw > float64(n)*one+1e-9 {
			t.Fatalf("StripedBottleneck(%d) = %v exceeds linear speedup of %v", n, bw, one)
		}
		prev = bw
	}
	// Capacity cap: the prediction can never beat the narrowest physical
	// link on the path.
	minCap := math.Inf(1)
	for k := 0; k+1 < len(path); k++ {
		if l := tp.Link(path[k], path[k+1]); l.Valid() && l.Capacity > 0 && l.Capacity < minCap {
			minCap = l.Capacity
		}
	}
	if !math.IsInf(minCap, 1) {
		if bw := p.StripedBottleneck(path, 1000); bw > minCap+1e-9 {
			t.Fatalf("StripedBottleneck(1000) = %v exceeds physical capacity %v", bw, minCap)
		}
	}

	// Degenerate inputs.
	if bw := p.StripedBottleneck(nil, 4); bw != 0 {
		t.Fatalf("nil path: %v", bw)
	}
	if bw := p.StripedBottleneck(path, 0); bw != 0 {
		t.Fatalf("zero stripes: %v", bw)
	}
	unplanned, _ := NewPlanner(tp, 0.1)
	if bw := unplanned.StripedBottleneck(path, 2); bw != 0 {
		t.Fatalf("before Replan: %v", bw)
	}
}

func TestSuggestStripes(t *testing.T) {
	tp := topo.TwoPath()
	p := newPlanned(t, tp, 0.1)
	ucsb, _ := tp.HostIndex(topo.UCSB)
	uiuc, _ := tp.HostIndex(topo.UIUC)
	path, err := p.Path(ucsb, uiuc)
	if err != nil || path == nil {
		t.Fatalf("path: %v, %v", path, err)
	}
	n, bw := p.SuggestStripes(path, 16)
	if n < 1 || n > 16 {
		t.Fatalf("SuggestStripes n = %d", n)
	}
	if bw != p.StripedBottleneck(path, n) {
		t.Fatalf("bw = %v, want %v", bw, p.StripedBottleneck(path, n))
	}
	// One more stripe than suggested must not help.
	if next := p.StripedBottleneck(path, n+1); next > bw {
		t.Fatalf("n+1 stripes improve on the suggestion: %v > %v", next, bw)
	}
	// max clamps.
	if n, _ := p.SuggestStripes(path, 0); n != 1 {
		t.Fatalf("max=0 suggests %d", n)
	}
}
