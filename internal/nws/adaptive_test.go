package nws

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdaptiveMedianBasics(t *testing.T) {
	f := NewAdaptiveMedian(3, 9)
	if !math.IsNaN(f.Forecast()) {
		t.Fatal("fresh forecaster should predict NaN")
	}
	feed(f, 5, 5, 5, 5)
	if f.Forecast() != 5 {
		t.Fatalf("forecast = %v", f.Forecast())
	}
	if f.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestAdaptiveMedianBoundsClamp(t *testing.T) {
	f := NewAdaptiveMedian(0, -1)
	feed(f, 1, 2, 3)
	if w := f.Window(); w < 1 {
		t.Fatalf("window = %d", w)
	}
}

func TestAdaptiveMedianGrowsOnStableSeries(t *testing.T) {
	f := NewAdaptiveMedian(2, 20)
	start := f.Window()
	for i := 0; i < 200; i++ {
		f.Update(100)
	}
	if f.Window() <= start {
		t.Fatalf("window did not grow on a stable series: %d -> %d", start, f.Window())
	}
}

func TestAdaptiveMedianShrinksOnVolatileSeries(t *testing.T) {
	f := NewAdaptiveMedian(2, 20)
	rng := rand.New(rand.NewSource(1))
	// Warm up on stable data to grow the window first.
	for i := 0; i < 200; i++ {
		f.Update(100)
	}
	grown := f.Window()
	// Then feed violent level shifts.
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 0 {
			f.Update(10)
		} else {
			f.Update(1000)
		}
	}
	if f.Window() >= grown {
		t.Fatalf("window did not shrink under volatility: %d -> %d", grown, f.Window())
	}
}

func TestAdaptiveMedianTracksShiftFasterThanFixedWide(t *testing.T) {
	adaptive := NewAdaptiveMedian(2, 40)
	wide := NewSlidingMedian(40)
	for i := 0; i < 100; i++ {
		adaptive.Update(10)
		wide.Update(10)
	}
	// A level shift: feed the new regime for a handful of samples.
	for i := 0; i < 15; i++ {
		adaptive.Update(200)
		wide.Update(200)
	}
	aErr := math.Abs(adaptive.Forecast() - 200)
	wErr := math.Abs(wide.Forecast() - 200)
	if aErr > wErr {
		t.Fatalf("adaptive (%v) slower than fixed wide (%v) after shift", adaptive.Forecast(), wide.Forecast())
	}
}

func TestTrimmedMeanBasics(t *testing.T) {
	f := NewTrimmedMean(5, 0.2)
	if !math.IsNaN(f.Forecast()) {
		t.Fatal("fresh forecaster should predict NaN")
	}
	feed(f, 10, 10, 10, 10, 1000) // the outlier is trimmed
	if got := f.Forecast(); got != 10 {
		t.Fatalf("trimmed forecast = %v, want 10", got)
	}
}

func TestTrimmedMeanNoTrimEqualsMean(t *testing.T) {
	f := NewTrimmedMean(4, 0)
	feed(f, 1, 2, 3, 4)
	if got := f.Forecast(); got != 2.5 {
		t.Fatalf("forecast = %v", got)
	}
}

func TestTrimmedMeanClamps(t *testing.T) {
	f := NewTrimmedMean(0, 0.9)
	if f.w != 1 || f.trim != 0.4 {
		t.Fatalf("clamping failed: w=%d trim=%v", f.w, f.trim)
	}
	feed(f, 7)
	if f.Forecast() != 7 {
		t.Fatalf("single-sample forecast = %v", f.Forecast())
	}
}

func TestTrimmedMeanWindowSlides(t *testing.T) {
	f := NewTrimmedMean(3, 0)
	feed(f, 1, 2, 3, 4)
	if got := f.Forecast(); got != 3 { // mean of {2,3,4}
		t.Fatalf("forecast = %v", got)
	}
}

func TestDefaultBankIncludesAdaptive(t *testing.T) {
	bank := DefaultBank()
	var hasAdaptive, hasTrimmed bool
	for _, e := range bank {
		switch e.(type) {
		case *AdaptiveMedian:
			hasAdaptive = true
		case *TrimmedMean:
			hasTrimmed = true
		}
	}
	if !hasAdaptive || !hasTrimmed {
		t.Fatal("default bank missing adaptive predictors")
	}
}
