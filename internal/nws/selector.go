package nws

import (
	"math"
	"strings"
)

// Selector is the NWS "mixture of experts": it runs a bank of
// forecasters over the same measurement series, scores each by its
// cumulative mean absolute error on past one-step predictions, and
// forecasts with whichever expert has been most accurate so far.
type Selector struct {
	experts []Forecaster
	absErr  []float64
	n       int
	lastErr float64 // absolute error of the winning expert's last prediction
}

// DefaultBank returns the standard bank of experts used throughout the
// system: last value, running mean, window means and medians at a few
// widths, and exponential smoothing at two gains.
func DefaultBank() []Forecaster {
	return []Forecaster{
		&LastValue{},
		&RunningMean{},
		NewSlidingMean(5),
		NewSlidingMean(20),
		NewSlidingMedian(5),
		NewSlidingMedian(20),
		NewExpSmooth(0.1),
		NewExpSmooth(0.4),
		NewAdaptiveMedian(3, 30),
		NewTrimmedMean(15, 0.2),
	}
}

// NewSelector returns a selector over the given experts, or over
// DefaultBank() when none are given.
func NewSelector(experts ...Forecaster) *Selector {
	if len(experts) == 0 {
		experts = DefaultBank()
	}
	return &Selector{
		experts: experts,
		absErr:  make([]float64, len(experts)),
	}
}

// Update scores every expert's standing prediction against the new
// measurement, then feeds the measurement to all of them.
func (s *Selector) Update(v float64) {
	if s.n > 0 {
		bestIdx := s.bestIndex()
		for i, e := range s.experts {
			p := e.Forecast()
			if math.IsNaN(p) {
				continue
			}
			err := math.Abs(p - v)
			s.absErr[i] += err
			if i == bestIdx {
				s.lastErr = err
			}
		}
	}
	for _, e := range s.experts {
		e.Update(v)
	}
	s.n++
}

func (s *Selector) bestIndex() int {
	best, bestErr := 0, math.Inf(1)
	for i := range s.experts {
		if s.absErr[i] < bestErr {
			best, bestErr = i, s.absErr[i]
		}
	}
	return best
}

// Forecast returns the current best expert's prediction (NaN before the
// first update).
func (s *Selector) Forecast() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.experts[s.bestIndex()].Forecast()
}

// Name implements Forecaster, reporting the winning expert.
func (s *Selector) Name() string {
	var b strings.Builder
	b.WriteString("select(")
	b.WriteString(s.experts[s.bestIndex()].Name())
	b.WriteString(")")
	return b.String()
}

// MAE returns the winning expert's mean absolute one-step error so far,
// a natural candidate for the scheduler's ε (the paper suggests "
// prediction error from the NWS" as an automatic ε source). It returns
// NaN before two updates.
func (s *Selector) MAE() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.absErr[s.bestIndex()] / float64(s.n-1)
}

// LastError returns the winning expert's absolute error on the most
// recent measurement (NaN before two updates).
func (s *Selector) LastError() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.lastErr
}

// Samples reports how many measurements have been consumed.
func (s *Selector) Samples() int { return s.n }

var _ Forecaster = (*Selector)(nil)
