// Package nws reimplements the forecasting core of the Network Weather
// Service (Wolski, 1998), which the paper uses as the source of its
// "performance topology": per-host-pair bandwidth measurements are fed
// to a bank of simple predictors, the predictor with the lowest
// cumulative error is believed, and the winning forecasts populate the
// scheduler's cost matrix.
package nws

import (
	"fmt"
	"math"
	"sort"
)

// Forecaster is one predictor in the NWS bank: it consumes a measurement
// series one value at a time and predicts the next value.
type Forecaster interface {
	// Update records a new measurement.
	Update(v float64)
	// Forecast predicts the next measurement. NaN until the first update.
	Forecast() float64
	// Name identifies the predictor in diagnostics.
	Name() string
}

// LastValue predicts the most recent measurement.
type LastValue struct {
	last float64
	seen bool
}

// Name implements Forecaster.
func (f *LastValue) Name() string { return "last" }

// Update implements Forecaster.
func (f *LastValue) Update(v float64) { f.last, f.seen = v, true }

// Forecast implements Forecaster.
func (f *LastValue) Forecast() float64 {
	if !f.seen {
		return math.NaN()
	}
	return f.last
}

// RunningMean predicts the mean of the whole history.
type RunningMean struct {
	sum float64
	n   int
}

// Name implements Forecaster.
func (f *RunningMean) Name() string { return "mean" }

// Update implements Forecaster.
func (f *RunningMean) Update(v float64) { f.sum += v; f.n++ }

// Forecast implements Forecaster.
func (f *RunningMean) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// SlidingMean predicts the mean of the last W measurements.
type SlidingMean struct {
	w   int
	buf []float64
	pos int
	n   int
	sum float64
}

// NewSlidingMean returns a window-mean predictor of width w (min 1).
func NewSlidingMean(w int) *SlidingMean {
	if w < 1 {
		w = 1
	}
	return &SlidingMean{w: w, buf: make([]float64, w)}
}

// Name implements Forecaster.
func (f *SlidingMean) Name() string { return fmt.Sprintf("mean%d", f.w) }

// Update implements Forecaster.
func (f *SlidingMean) Update(v float64) {
	if f.n == f.w {
		f.sum -= f.buf[f.pos]
	} else {
		f.n++
	}
	f.buf[f.pos] = v
	f.sum += v
	f.pos = (f.pos + 1) % f.w
}

// Forecast implements Forecaster.
func (f *SlidingMean) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// SlidingMedian predicts the median of the last W measurements; NWS
// favours it for noisy series with outliers.
type SlidingMedian struct {
	w   int
	buf []float64
	pos int
	n   int
}

// NewSlidingMedian returns a window-median predictor of width w (min 1).
func NewSlidingMedian(w int) *SlidingMedian {
	if w < 1 {
		w = 1
	}
	return &SlidingMedian{w: w, buf: make([]float64, w)}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return fmt.Sprintf("median%d", f.w) }

// Update implements Forecaster.
func (f *SlidingMedian) Update(v float64) {
	f.buf[f.pos] = v
	f.pos = (f.pos + 1) % f.w
	if f.n < f.w {
		f.n++
	}
}

// Forecast implements Forecaster.
func (f *SlidingMedian) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	tmp := make([]float64, f.n)
	copy(tmp, f.buf[:f.n])
	sort.Float64s(tmp)
	if f.n%2 == 1 {
		return tmp[f.n/2]
	}
	return (tmp[f.n/2-1] + tmp[f.n/2]) / 2
}

// ExpSmooth predicts with exponential smoothing at gain alpha.
type ExpSmooth struct {
	alpha float64
	s     float64
	seen  bool
}

// NewExpSmooth returns an exponential-smoothing predictor with gain
// alpha clamped to (0,1].
func NewExpSmooth(alpha float64) *ExpSmooth {
	if alpha <= 0 {
		alpha = 0.05
	}
	if alpha > 1 {
		alpha = 1
	}
	return &ExpSmooth{alpha: alpha}
}

// Name implements Forecaster.
func (f *ExpSmooth) Name() string { return fmt.Sprintf("exp%.2f", f.alpha) }

// Update implements Forecaster.
func (f *ExpSmooth) Update(v float64) {
	if !f.seen {
		f.s, f.seen = v, true
		return
	}
	f.s = f.alpha*v + (1-f.alpha)*f.s
}

// Forecast implements Forecaster.
func (f *ExpSmooth) Forecast() float64 {
	if !f.seen {
		return math.NaN()
	}
	return f.s
}
