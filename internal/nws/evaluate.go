package nws

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ExpertScore is one predictor's hindsight accuracy on a series.
type ExpertScore struct {
	Name string
	MAE  float64
}

// Evaluate replays a measurement series through a fresh default bank
// plus a fresh selector and reports every predictor's mean absolute
// one-step error — the experiment NWS used to justify dynamic predictor
// selection: no single expert wins everywhere, but the selector stays
// competitive with the best one in hindsight.
func Evaluate(series []float64) (experts []ExpertScore, selector ExpertScore, err error) {
	if len(series) < 3 {
		return nil, ExpertScore{}, fmt.Errorf("nws: need at least 3 samples, got %d", len(series))
	}
	bank := DefaultBank()
	sums := make([]float64, len(bank))
	counts := make([]int, len(bank))
	sel := NewSelector()
	var selSum float64
	var selCount int

	for _, v := range series {
		for i, e := range bank {
			if p := e.Forecast(); !math.IsNaN(p) {
				sums[i] += math.Abs(p - v)
				counts[i]++
			}
		}
		if p := sel.Forecast(); !math.IsNaN(p) {
			selSum += math.Abs(p - v)
			selCount++
		}
		for _, e := range bank {
			e.Update(v)
		}
		sel.Update(v)
	}

	experts = make([]ExpertScore, 0, len(bank))
	for i, e := range bank {
		if counts[i] == 0 {
			continue
		}
		experts = append(experts, ExpertScore{Name: e.Name(), MAE: sums[i] / float64(counts[i])})
	}
	sort.Slice(experts, func(i, j int) bool { return experts[i].MAE < experts[j].MAE })
	if selCount == 0 {
		return nil, ExpertScore{}, fmt.Errorf("nws: selector never predicted")
	}
	selector = ExpertScore{Name: "selector", MAE: selSum / float64(selCount)}
	return experts, selector, nil
}

// FormatEvaluation renders the scores, best expert first.
func FormatEvaluation(experts []ExpertScore, selector ExpertScore) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s\n", "predictor", "MAE")
	for _, e := range experts {
		fmt.Fprintf(&b, "%-16s %12.4g\n", e.Name, e.MAE)
	}
	fmt.Fprintf(&b, "%-16s %12.4g\n", selector.Name, selector.MAE)
	return b.String()
}
