package nws

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feed(f Forecaster, xs ...float64) {
	for _, x := range xs {
		f.Update(x)
	}
}

func TestLastValue(t *testing.T) {
	f := &LastValue{}
	if !math.IsNaN(f.Forecast()) {
		t.Fatal("fresh forecaster should predict NaN")
	}
	feed(f, 1, 2, 3)
	if f.Forecast() != 3 {
		t.Fatalf("forecast = %v", f.Forecast())
	}
	if f.Name() != "last" {
		t.Fatalf("name = %q", f.Name())
	}
}

func TestRunningMean(t *testing.T) {
	f := &RunningMean{}
	if !math.IsNaN(f.Forecast()) {
		t.Fatal("fresh forecaster should predict NaN")
	}
	feed(f, 2, 4, 6)
	if f.Forecast() != 4 {
		t.Fatalf("forecast = %v", f.Forecast())
	}
}

func TestSlidingMean(t *testing.T) {
	f := NewSlidingMean(2)
	feed(f, 10, 20, 30)
	if f.Forecast() != 25 {
		t.Fatalf("window mean = %v, want 25", f.Forecast())
	}
	// Width clamps to 1.
	g := NewSlidingMean(0)
	feed(g, 5, 9)
	if g.Forecast() != 9 {
		t.Fatalf("width-1 mean = %v", g.Forecast())
	}
}

func TestSlidingMedian(t *testing.T) {
	f := NewSlidingMedian(3)
	feed(f, 1, 100, 2)
	if f.Forecast() != 2 {
		t.Fatalf("median = %v, want 2", f.Forecast())
	}
	feed(f, 3) // window now 100, 2, 3
	if f.Forecast() != 3 {
		t.Fatalf("median = %v, want 3", f.Forecast())
	}
	// Even window: mean of middle two.
	g := NewSlidingMedian(4)
	feed(g, 1, 2, 3, 10)
	if g.Forecast() != 2.5 {
		t.Fatalf("even median = %v, want 2.5", g.Forecast())
	}
}

func TestSlidingMedianRobustToOutliers(t *testing.T) {
	f := NewSlidingMedian(5)
	feed(f, 10, 10, 1e9, 10, 10)
	if f.Forecast() != 10 {
		t.Fatalf("median swayed by outlier: %v", f.Forecast())
	}
}

func TestExpSmooth(t *testing.T) {
	f := NewExpSmooth(0.5)
	feed(f, 10)
	if f.Forecast() != 10 {
		t.Fatalf("first = %v", f.Forecast())
	}
	feed(f, 20)
	if f.Forecast() != 15 {
		t.Fatalf("smoothed = %v, want 15", f.Forecast())
	}
	// Gain clamping.
	if g := NewExpSmooth(-1); g.alpha <= 0 {
		t.Fatal("alpha not clamped up")
	}
	if g := NewExpSmooth(2); g.alpha != 1 {
		t.Fatal("alpha not clamped down")
	}
}

func TestForecastsWithinObservedRange(t *testing.T) {
	// Every forecaster's prediction must stay within [min, max] of the
	// series seen so far — a basic sanity invariant of averaging-type
	// predictors.
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Abs(math.Mod(v, 1e6)))
			}
		}
		if len(xs) == 0 {
			return true
		}
		bank := DefaultBank()
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			for _, e := range bank {
				e.Update(x)
			}
		}
		for _, e := range bank {
			p := e.Forecast()
			if math.IsNaN(p) || p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorPrefersAccurateExpert(t *testing.T) {
	// A noisy stationary series: the windowed mean should beat the
	// last-value predictor, so the selector's forecast should be close
	// to the true mean.
	rng := rand.New(rand.NewSource(1))
	s := NewSelector()
	const mean = 100.0
	for i := 0; i < 500; i++ {
		s.Update(mean + rng.NormFloat64()*10)
	}
	if got := s.Forecast(); math.Abs(got-mean) > 5 {
		t.Fatalf("selector forecast %v, want near %v", got, mean)
	}
	if s.Samples() != 500 {
		t.Fatalf("samples = %d", s.Samples())
	}
}

func TestSelectorTracksShift(t *testing.T) {
	s := NewSelector()
	for i := 0; i < 100; i++ {
		s.Update(10)
	}
	for i := 0; i < 200; i++ {
		s.Update(50)
	}
	if got := s.Forecast(); math.Abs(got-50) > 15 {
		t.Fatalf("selector stuck at old level: %v", got)
	}
}

func TestSelectorMAE(t *testing.T) {
	s := NewSelector()
	if !math.IsNaN(s.MAE()) {
		t.Fatal("MAE before data should be NaN")
	}
	s.Update(10)
	if !math.IsNaN(s.MAE()) {
		t.Fatal("MAE after one sample should be NaN")
	}
	s.Update(10)
	s.Update(10)
	if got := s.MAE(); got != 0 {
		t.Fatalf("constant series MAE = %v, want 0", got)
	}
	if !math.IsNaN(NewSelector().LastError()) {
		t.Fatal("LastError before data should be NaN")
	}
}

func TestSelectorEmptyForecast(t *testing.T) {
	s := NewSelector(&LastValue{})
	if !math.IsNaN(s.Forecast()) {
		t.Fatal("selector with no data should predict NaN")
	}
	if s.Name() == "" {
		t.Fatal("selector name empty")
	}
}
