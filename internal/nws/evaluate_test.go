package nws

import (
	"math/rand"
	"strings"
	"testing"
)

// synthetic series in the three regimes NWS cares about.
func stationarySeries(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + rng.NormFloat64()*8
	}
	return out
}

func driftingSeries(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	level := 100.0
	for i := range out {
		level += rng.NormFloat64() * 3
		out[i] = level + rng.NormFloat64()*2
	}
	return out
}

func spikySeries(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + rng.NormFloat64()*3
		if rng.Float64() < 0.08 {
			out[i] *= 5 // measurement spike
		}
	}
	return out
}

func TestEvaluateValidation(t *testing.T) {
	if _, _, err := Evaluate([]float64{1, 2}); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestSelectorCompetitiveAcrossRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	regimes := map[string][]float64{
		"stationary": stationarySeries(400, rng),
		"drifting":   driftingSeries(400, rng),
		"spiky":      spikySeries(400, rng),
	}
	bestByRegime := map[string]string{}
	for name, series := range regimes {
		experts, selector, err := Evaluate(series)
		if err != nil {
			t.Fatal(err)
		}
		best := experts[0]
		bestByRegime[name] = best.Name
		// The selector must stay within 35% of the best expert in
		// hindsight (it pays a learning cost early in the series).
		if selector.MAE > best.MAE*1.35 {
			t.Fatalf("%s: selector MAE %v vs best %v (%s)",
				name, selector.MAE, best.MAE, best.Name)
		}
		// And it must beat the worst expert comfortably.
		worst := experts[len(experts)-1]
		if selector.MAE > worst.MAE {
			t.Fatalf("%s: selector worse than the worst expert", name)
		}
	}
	// The core justification for dynamic selection: different regimes
	// are won by different experts.
	seen := map[string]bool{}
	for _, b := range bestByRegime {
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Fatalf("one expert won every regime (%v); selection would be pointless", bestByRegime)
	}
}

func TestFormatEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	experts, selector, err := Evaluate(stationarySeries(100, rng))
	if err != nil {
		t.Fatal(err)
	}
	out := FormatEvaluation(experts, selector)
	if !strings.Contains(out, "selector") || !strings.Contains(out, "MAE") {
		t.Fatalf("rendering:\n%s", out)
	}
	// Sorted ascending.
	for i := 1; i < len(experts); i++ {
		if experts[i].MAE < experts[i-1].MAE {
			t.Fatal("experts not sorted by MAE")
		}
	}
}
