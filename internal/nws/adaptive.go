package nws

import (
	"fmt"
	"math"
	"sort"
)

// AdaptiveMedian is an error-driven sliding median in the style of
// NWS's adaptive-window predictors: when its recent predictions have
// been poor it shrinks the window (react faster), and when they have
// been good it grows the window (smooth harder), between the given
// bounds.
type AdaptiveMedian struct {
	minW, maxW int
	w          int
	buf        []float64 // most recent maxW measurements, oldest first
	recentErr  []float64 // last few absolute prediction errors
	scaleSum   float64   // running scale of the series for normalizing
	n          int
}

// NewAdaptiveMedian returns an adaptive median predictor with window
// bounds [minW, maxW].
func NewAdaptiveMedian(minW, maxW int) *AdaptiveMedian {
	if minW < 1 {
		minW = 1
	}
	if maxW < minW {
		maxW = minW
	}
	return &AdaptiveMedian{minW: minW, maxW: maxW, w: (minW + maxW) / 2}
}

// Name implements Forecaster.
func (f *AdaptiveMedian) Name() string { return fmt.Sprintf("amedian%d..%d", f.minW, f.maxW) }

// Update implements Forecaster.
func (f *AdaptiveMedian) Update(v float64) {
	if p := f.Forecast(); !math.IsNaN(p) {
		f.recentErr = append(f.recentErr, math.Abs(p-v))
		if len(f.recentErr) > 8 {
			f.recentErr = f.recentErr[1:]
		}
		f.adapt()
	}
	f.buf = append(f.buf, v)
	if len(f.buf) > f.maxW {
		f.buf = f.buf[1:]
	}
	f.scaleSum += math.Abs(v)
	f.n++
}

// adapt moves the window by one step according to recent relative
// error: above 15% shrink, below 5% grow.
func (f *AdaptiveMedian) adapt() {
	if len(f.recentErr) < 4 || f.n == 0 {
		return
	}
	var errSum float64
	for _, e := range f.recentErr {
		errSum += e
	}
	meanErr := errSum / float64(len(f.recentErr))
	scale := f.scaleSum / float64(f.n)
	if scale <= 0 {
		return
	}
	switch rel := meanErr / scale; {
	case rel > 0.15 && f.w > f.minW:
		f.w--
	case rel < 0.05 && f.w < f.maxW:
		f.w++
	}
}

// Forecast implements Forecaster.
func (f *AdaptiveMedian) Forecast() float64 {
	n := len(f.buf)
	if n == 0 {
		return math.NaN()
	}
	w := f.w
	if w > n {
		w = n
	}
	window := append([]float64(nil), f.buf[n-w:]...)
	sort.Float64s(window)
	if w%2 == 1 {
		return window[w/2]
	}
	return (window[w/2-1] + window[w/2]) / 2
}

// Window reports the current adaptive window width.
func (f *AdaptiveMedian) Window() int { return f.w }

// TrimmedMean predicts the mean of the last W measurements after
// discarding the smallest and largest trim fraction — NWS's defense
// against measurement spikes that the plain mean chases and the median
// over-ignores.
type TrimmedMean struct {
	w    int
	trim float64
	buf  []float64
}

// NewTrimmedMean returns a trimmed-mean predictor of width w trimming
// the given fraction (clamped to [0, 0.4]) from each tail.
func NewTrimmedMean(w int, trim float64) *TrimmedMean {
	if w < 1 {
		w = 1
	}
	if trim < 0 {
		trim = 0
	}
	if trim > 0.4 {
		trim = 0.4
	}
	return &TrimmedMean{w: w, trim: trim}
}

// Name implements Forecaster.
func (f *TrimmedMean) Name() string { return fmt.Sprintf("tmean%d/%.0f%%", f.w, f.trim*100) }

// Update implements Forecaster.
func (f *TrimmedMean) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.w {
		f.buf = f.buf[1:]
	}
}

// Forecast implements Forecaster.
func (f *TrimmedMean) Forecast() float64 {
	n := len(f.buf)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), f.buf...)
	sort.Float64s(sorted)
	cut := int(float64(n) * f.trim)
	kept := sorted[cut : n-cut]
	if len(kept) == 0 {
		kept = sorted
	}
	var sum float64
	for _, x := range kept {
		sum += x
	}
	return sum / float64(len(kept))
}

var (
	_ Forecaster = (*AdaptiveMedian)(nil)
	_ Forecaster = (*TrimmedMean)(nil)
)
