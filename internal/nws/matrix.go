package nws

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Monitor maintains one forecast series per ordered host pair and
// produces the fully connected bandwidth matrix the scheduler consumes.
// It is the reproduction of the paper's "performance matrix ...
// generated from Network Weather Service forecasts".
type Monitor struct {
	hosts   []string
	index   map[string]int
	series  []*Selector // row-major n×n, diagonal unused
	mkBank  func() []Forecaster
	updates int
}

// NewMonitor returns a monitor over the given host names. mkBank, when
// non-nil, constructs the expert bank for each pair (defaults to
// DefaultBank).
func NewMonitor(hosts []string, mkBank func() []Forecaster) (*Monitor, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("nws: need at least 2 hosts, got %d", len(hosts))
	}
	m := &Monitor{
		hosts:  append([]string(nil), hosts...),
		index:  make(map[string]int, len(hosts)),
		series: make([]*Selector, len(hosts)*len(hosts)),
		mkBank: mkBank,
	}
	for i, h := range hosts {
		if h == "" {
			return nil, fmt.Errorf("nws: empty host name at index %d", i)
		}
		if _, dup := m.index[h]; dup {
			return nil, fmt.Errorf("nws: duplicate host %q", h)
		}
		m.index[h] = i
	}
	return m, nil
}

// Hosts returns the monitored host names in index order.
func (m *Monitor) Hosts() []string { return append([]string(nil), m.hosts...) }

// Updates reports the total number of observations recorded.
func (m *Monitor) Updates() int { return m.updates }

func (m *Monitor) selector(src, dst int) *Selector {
	idx := src*len(m.hosts) + dst
	if m.series[idx] == nil {
		if m.mkBank != nil {
			m.series[idx] = NewSelector(m.mkBank()...)
		} else {
			m.series[idx] = NewSelector()
		}
	}
	return m.series[idx]
}

// Observe records a bandwidth measurement (bytes/sec) for the ordered
// pair src→dst.
func (m *Monitor) Observe(src, dst string, bw float64) error {
	si, ok := m.index[src]
	if !ok {
		return fmt.Errorf("nws: unknown host %q", src)
	}
	di, ok := m.index[dst]
	if !ok {
		return fmt.Errorf("nws: unknown host %q", dst)
	}
	if si == di {
		return fmt.Errorf("nws: self-measurement for %q", src)
	}
	if bw < 0 || math.IsNaN(bw) {
		return fmt.Errorf("nws: invalid bandwidth %v for %s→%s", bw, src, dst)
	}
	m.selector(si, di).Update(bw)
	m.updates++
	return nil
}

// Forecast returns the predicted bandwidth src→dst, or NaN when the
// pair has never been measured.
func (m *Monitor) Forecast(src, dst string) float64 {
	si, ok1 := m.index[src]
	di, ok2 := m.index[dst]
	if !ok1 || !ok2 || si == di {
		return math.NaN()
	}
	s := m.series[si*len(m.hosts)+di]
	if s == nil {
		return math.NaN()
	}
	return s.Forecast()
}

// ForecastError returns the winning expert's mean absolute error for
// the pair (NaN when unavailable). Divided by the forecast it yields a
// relative error usable as an automatic ε.
func (m *Monitor) ForecastError(src, dst string) float64 {
	si, ok1 := m.index[src]
	di, ok2 := m.index[dst]
	if !ok1 || !ok2 || si == di {
		return math.NaN()
	}
	s := m.series[si*len(m.hosts)+di]
	if s == nil {
		return math.NaN()
	}
	return s.MAE()
}

// Matrix is a snapshot of forecast bandwidths: BW[i][j] is the
// predicted bytes/sec from host i to host j (NaN when unknown).
type Matrix struct {
	Hosts []string
	BW    [][]float64
}

// Snapshot produces the forecast matrix for the scheduler.
func (m *Monitor) Snapshot() Matrix {
	n := len(m.hosts)
	bw := make([][]float64, n)
	for i := 0; i < n; i++ {
		bw[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = math.Inf(1)
				continue
			}
			s := m.series[i*n+j]
			if s == nil {
				bw[i][j] = math.NaN()
				continue
			}
			bw[i][j] = s.Forecast()
		}
	}
	return Matrix{Hosts: append([]string(nil), m.hosts...), BW: bw}
}

// MeanRelativeError averages forecast MAE divided by forecast magnitude
// across all measured pairs — the system-wide automatic ε candidate.
// It returns NaN when no pair has enough history.
func (m *Monitor) MeanRelativeError() float64 {
	var sum float64
	var n int
	for i := range m.hosts {
		for j := range m.hosts {
			if i == j {
				continue
			}
			s := m.series[i*len(m.hosts)+j]
			if s == nil {
				continue
			}
			mae := s.MAE()
			f := s.Forecast()
			if math.IsNaN(mae) || math.IsNaN(f) || f <= 0 {
				continue
			}
			sum += mae / f
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// AggregateBySite collapses the host matrix to a site matrix by
// averaging the finite host-pair forecasts between each pair of sites,
// following the clique-aggregation idea of the Swany & Wolski
// "performance topologies" work the paper builds on. siteOf maps host
// name to site name.
func (mx Matrix) AggregateBySite(siteOf func(host string) string) Matrix {
	type pair struct{ a, b string }
	sums := make(map[pair]float64)
	counts := make(map[pair]int)
	siteSet := make(map[string]bool)
	for i, hi := range mx.Hosts {
		for j, hj := range mx.Hosts {
			if i == j {
				continue
			}
			si, sj := siteOf(hi), siteOf(hj)
			siteSet[si] = true
			siteSet[sj] = true
			if si == sj {
				continue
			}
			v := mx.BW[i][j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			p := pair{si, sj}
			sums[p] += v
			counts[p]++
		}
	}
	sites := make([]string, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	idx := make(map[string]int, len(sites))
	for i, s := range sites {
		idx[s] = i
	}
	bw := make([][]float64, len(sites))
	for i := range bw {
		bw[i] = make([]float64, len(sites))
		for j := range bw[i] {
			if i == j {
				bw[i][j] = math.Inf(1)
			} else {
				bw[i][j] = math.NaN()
			}
		}
	}
	for p, sum := range sums {
		bw[idx[p.a]][idx[p.b]] = sum / float64(counts[p])
	}
	return Matrix{Hosts: sites, BW: bw}
}

// String renders the matrix compactly in MB/s.
func (mx Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "")
	for _, h := range mx.Hosts {
		fmt.Fprintf(&b, " %12s", truncate(h, 12))
	}
	b.WriteByte('\n')
	for i, h := range mx.Hosts {
		fmt.Fprintf(&b, "%-18s", truncate(h, 18))
		for j := range mx.Hosts {
			v := mx.BW[i][j]
			switch {
			case i == j:
				fmt.Fprintf(&b, " %12s", "-")
			case math.IsNaN(v):
				fmt.Fprintf(&b, " %12s", "?")
			default:
				fmt.Fprintf(&b, " %12.2f", v/1e6)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
