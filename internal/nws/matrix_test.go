package nws

import (
	"math"
	"strings"
	"testing"
)

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor([]string{"a"}, nil); err == nil {
		t.Fatal("single host accepted")
	}
	if _, err := NewMonitor([]string{"a", "a"}, nil); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewMonitor([]string{"a", ""}, nil); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestObserveAndForecast(t *testing.T) {
	m, err := NewMonitor([]string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.Forecast("a", "b")) {
		t.Fatal("unmeasured pair should forecast NaN")
	}
	for i := 0; i < 5; i++ {
		if err := m.Observe("a", "b", 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Forecast("a", "b"); got != 100 {
		t.Fatalf("forecast = %v", got)
	}
	// Direction matters.
	if !math.IsNaN(m.Forecast("b", "a")) {
		t.Fatal("reverse direction should be independent")
	}
	if m.Updates() != 5 {
		t.Fatalf("updates = %d", m.Updates())
	}
}

func TestObserveErrors(t *testing.T) {
	m, _ := NewMonitor([]string{"a", "b"}, nil)
	if err := m.Observe("zzz", "b", 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := m.Observe("a", "zzz", 1); err == nil {
		t.Fatal("unknown dest accepted")
	}
	if err := m.Observe("a", "a", 1); err == nil {
		t.Fatal("self measurement accepted")
	}
	if err := m.Observe("a", "b", -5); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if err := m.Observe("a", "b", math.NaN()); err == nil {
		t.Fatal("NaN bandwidth accepted")
	}
}

func TestSnapshot(t *testing.T) {
	m, _ := NewMonitor([]string{"a", "b", "c"}, nil)
	m.Observe("a", "b", 10)
	m.Observe("b", "a", 20)
	mx := m.Snapshot()
	if mx.BW[0][1] != 10 || mx.BW[1][0] != 20 {
		t.Fatalf("snapshot = %+v", mx.BW)
	}
	if !math.IsNaN(mx.BW[0][2]) {
		t.Fatal("unmeasured pair should be NaN")
	}
	if !math.IsInf(mx.BW[0][0], 1) {
		t.Fatal("diagonal should be +Inf")
	}
}

func TestForecastError(t *testing.T) {
	m, _ := NewMonitor([]string{"a", "b"}, nil)
	for i := 0; i < 10; i++ {
		m.Observe("a", "b", 100)
	}
	if got := m.ForecastError("a", "b"); got != 0 {
		t.Fatalf("constant-series error = %v", got)
	}
	if !math.IsNaN(m.ForecastError("b", "a")) {
		t.Fatal("unmeasured error should be NaN")
	}
}

func TestMeanRelativeError(t *testing.T) {
	m, _ := NewMonitor([]string{"a", "b"}, nil)
	if !math.IsNaN(m.MeanRelativeError()) {
		t.Fatal("no data should give NaN")
	}
	for i := 0; i < 20; i++ {
		m.Observe("a", "b", 100)
		m.Observe("b", "a", 200)
	}
	if got := m.MeanRelativeError(); got != 0 {
		t.Fatalf("constant series rel error = %v", got)
	}
}

func TestAggregateBySite(t *testing.T) {
	m, _ := NewMonitor([]string{"h1.x", "h2.x", "h1.y"}, nil)
	m.Observe("h1.x", "h1.y", 100)
	m.Observe("h2.x", "h1.y", 300)
	mx := m.Snapshot()
	site := func(h string) string { return strings.SplitN(h, ".", 2)[1] }
	agg := mx.AggregateBySite(site)
	if len(agg.Hosts) != 2 {
		t.Fatalf("sites = %v", agg.Hosts)
	}
	// x -> y should be mean(100, 300) = 200.
	xi, yi := -1, -1
	for i, s := range agg.Hosts {
		switch s {
		case "x":
			xi = i
		case "y":
			yi = i
		}
	}
	if xi < 0 || yi < 0 {
		t.Fatalf("missing sites: %v", agg.Hosts)
	}
	if got := agg.BW[xi][yi]; got != 200 {
		t.Fatalf("aggregated x→y = %v, want 200", got)
	}
	if !math.IsNaN(agg.BW[yi][xi]) {
		t.Fatal("unmeasured reverse should stay NaN")
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := NewMonitor([]string{"a", "b"}, nil)
	m.Observe("a", "b", 2e6)
	out := m.Snapshot().String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "2.00") {
		t.Fatalf("rendering:\n%s", out)
	}
	if !strings.Contains(out, "?") {
		t.Fatal("unmeasured cell should render '?'")
	}
}

func TestHostsCopy(t *testing.T) {
	m, _ := NewMonitor([]string{"a", "b"}, nil)
	hosts := m.Hosts()
	hosts[0] = "mutated"
	if m.Hosts()[0] != "a" {
		t.Fatal("Hosts() exposed internal slice")
	}
}

func TestCustomBank(t *testing.T) {
	m, err := NewMonitor([]string{"a", "b"}, func() []Forecaster {
		return []Forecaster{&LastValue{}}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe("a", "b", 1)
	m.Observe("a", "b", 9)
	if got := m.Forecast("a", "b"); got != 9 {
		t.Fatalf("last-value bank forecast = %v", got)
	}
}
