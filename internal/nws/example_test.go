package nws_test

import (
	"fmt"

	"github.com/netlogistics/lsl/internal/nws"
)

// ExampleSelector shows the mixture-of-experts forecaster converging on
// a noisy-but-stationary bandwidth series: the windowed experts beat
// the last-value predictor, so the selector's forecast lands near the
// true level rather than the last noisy sample.
func ExampleSelector() {
	s := nws.NewSelector()
	series := []float64{100, 96, 104, 99, 101, 95, 105, 100, 98, 102, 140 /* spike */, 101, 99}
	for _, v := range series {
		s.Update(v)
	}
	fmt.Printf("forecast near 100: %v\n", s.Forecast() > 95 && s.Forecast() < 110)
	// Output:
	// forecast near 100: true
}

// ExampleMonitor shows the per-pair forecast matrix the scheduler
// consumes.
func ExampleMonitor() {
	m, err := nws.NewMonitor([]string{"ucsb", "uiuc"}, nil)
	if err != nil {
		panic(err)
	}
	for _, bw := range []float64{4e6, 4.2e6, 3.9e6} {
		if err := m.Observe("ucsb", "uiuc", bw); err != nil {
			panic(err)
		}
	}
	fmt.Printf("ucsb→uiuc ≈ 4 MB/s: %v\n", m.Forecast("ucsb", "uiuc") > 3.5e6)
	// Output:
	// ucsb→uiuc ≈ 4 MB/s: true
}
