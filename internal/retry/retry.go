// Package retry provides the fault-tolerance primitives shared by the
// LSL data path: context-aware exponential backoff with deterministic
// jitter, and a typed classification of transfer errors into transient
// faults (worth retrying: refused connections, timed-out reads, torn
// sublinks) and fatal ones (protocol violations, verification
// mismatches, invalid requests — retrying cannot help).
//
// The chain-of-sublinks architecture multiplies failure points: a
// five-hop session has five TCP connections and four depot processes
// that can each die independently. This package is the vocabulary the
// rest of the stack uses to talk about those failures.
package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"syscall"
	"time"

	"github.com/netlogistics/lsl/internal/wire"
)

// Class partitions errors by how a caller should react.
type Class int

const (
	// Transient faults are expected path events — a refused dial, a
	// read deadline, a torn connection. Retrying (possibly on another
	// route) can succeed.
	Transient Class = iota
	// Fatal faults are protocol or usage errors; retrying the same
	// operation will fail the same way.
	Fatal
)

// String returns the class name.
func (c Class) String() string {
	if c == Fatal {
		return "fatal"
	}
	return "transient"
}

// classified wraps an error with an explicit class, overriding the
// heuristics in Classify.
type classified struct {
	err   error
	class Class
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// AsFatal marks err as fatal regardless of its underlying type. A nil
// err stays nil.
func AsFatal(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Fatal}
}

// AsTransient marks err as transient regardless of its underlying type.
// A nil err stays nil.
func AsTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: Transient}
}

// ErrExhausted wraps the final attempt's error when a Policy runs out
// of attempts.
var ErrExhausted = errors.New("retry: attempts exhausted")

// Classify sorts an error into Transient or Fatal. Explicit marks from
// AsFatal/AsTransient win; otherwise network-shaped failures (refused
// or reset connections, deadline expiries, timeouts, torn streams) are
// transient and everything else — protocol violations, verification
// failures, bad arguments — is fatal. A nil error is transient (the
// zero Class), but callers are expected to test err != nil first.
func Classify(err error) Class {
	if err == nil {
		return Transient
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, os.ErrDeadlineExceeded),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ETIMEDOUT):
		return Transient
	// Detected data corruption is transient by design: the damaged
	// range is re-sent via the resume path, and persistent corruption
	// is routed around by failover — never surfaced as a fatal abort
	// while recovery options remain.
	case errors.Is(err, wire.ErrChecksum),
		errors.Is(err, wire.ErrDigest):
		return Transient
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return Transient
	}
	// The emulated network and the depot fault injector produce plain
	// errors.New values; recognize their surface text so the in-process
	// stack classifies like the real one.
	msg := err.Error()
	for _, marker := range []string{
		"connection refused",
		"connection closed",
		"connection reset",
		"broken pipe",
		"use of closed network connection",
		"injected fault",
	} {
		if strings.Contains(msg, marker) {
			return Transient
		}
	}
	return Fatal
}

// IsTransient reports whether err should be retried.
func IsTransient(err error) bool { return err != nil && Classify(err) == Transient }

// IsFatal reports whether retrying err is pointless.
func IsFatal(err error) bool { return err != nil && Classify(err) == Fatal }

// Policy describes an exponential backoff schedule.
type Policy struct {
	// MaxAttempts bounds the total number of tries (the first attempt
	// included). Zero or negative means a single attempt — no retry.
	MaxAttempts int
	// BaseDelay is the delay before the first retry (default 50 ms
	// when retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5 s).
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay randomized away, in [0, 1):
	// delay d becomes d*(1-Jitter) + rand*d*Jitter. Zero means no
	// jitter; the paper-reproduction default is 0.2 so synchronized
	// retries against one recovering depot spread out.
	Jitter float64
	// Rand supplies the jitter randomness. Nil falls back to a fixed
	// seed, keeping tests deterministic.
	Rand *rand.Rand
}

// DefaultPolicy is the stack's standard schedule: 4 attempts, 50 ms
// base, doubling to a 5 s cap, 20% jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 5 * time.Second, Multiplier: 2, Jitter: 0.2}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0
	}
	return p
}

// Delay returns the backoff before retry number retryIdx (0 = the
// first retry). Jitter, when configured, randomizes the tail fraction
// of the delay.
func (p Policy) Delay(retryIdx int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 0; i < retryIdx; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		r := p.Rand
		if r == nil {
			r = fallbackRand
		}
		d = d*(1-p.Jitter) + r.Float64()*d*p.Jitter
	}
	return time.Duration(d)
}

// fallbackRand keeps jitter deterministic when no source is injected.
var fallbackRand = rand.New(rand.NewSource(1))

// Sleep waits for the retryIdx'th backoff delay or until ctx is done,
// returning ctx.Err() in the latter case.
func (p Policy) Sleep(ctx context.Context, retryIdx int) error {
	d := p.Delay(retryIdx)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn up to MaxAttempts times, backing off between attempts.
// It stops early on success, on a fatal error, or when ctx is done.
// The attempt number passed to fn starts at 0. On exhaustion the last
// error is wrapped with ErrExhausted so callers can distinguish "gave
// up" from "cannot work".
func (p Policy) Do(ctx context.Context, fn func(attempt int) error) error {
	p = p.withDefaults()
	var last error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = fn(attempt)
		if last == nil {
			return nil
		}
		if IsFatal(last) {
			return last
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		if err := p.Sleep(ctx, attempt); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, p.MaxAttempts, last)
}
