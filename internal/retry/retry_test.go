package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		os.ErrDeadlineExceeded,
		context.DeadlineExceeded,
		io.ErrUnexpectedEOF,
		io.ErrClosedPipe,
		fmt.Errorf("dial: %w", syscall.ECONNREFUSED),
		errors.New(`emu: dial "10.0.1.1:7411": connection refused`),
		errors.New("emu: connection closed"),
		errors.New("depot: injected fault: drop after 4096 bytes"),
		&net.OpError{Op: "read", Err: os.ErrDeadlineExceeded},
		AsTransient(errors.New("anything")),
	}
	for _, err := range transient {
		if !IsTransient(err) {
			t.Errorf("Classify(%v) = %v, want transient", err, Classify(err))
		}
	}
	fatal := []error{
		errors.New("wire: option overruns header"),
		errors.New("depot: pattern mismatch at offset 9"),
		AsFatal(errors.New("connection refused")), // explicit mark wins
	}
	for _, err := range fatal {
		if !IsFatal(err) {
			t.Errorf("Classify(%v) = %v, want fatal", err, Classify(err))
		}
	}
	if IsTransient(nil) || IsFatal(nil) {
		t.Error("nil error classified as an error")
	}
}

func TestClassifiedUnwrap(t *testing.T) {
	base := errors.New("boom")
	if !errors.Is(AsFatal(fmt.Errorf("wrap: %w", base)), base) {
		t.Error("AsFatal broke the error chain")
	}
	if AsFatal(nil) != nil || AsTransient(nil) != nil {
		t.Error("marking nil should stay nil")
	}
}

func TestDelaySchedule(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 60, 60} // capped at MaxDelay
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5, Rand: rand.New(rand.NewSource(7))}
	for i := 0; i < 100; i++ {
		d := p.Delay(0)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

func TestDoRetriesTransient(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return syscall.ECONNREFUSED
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnFatal(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	bad := errors.New("depot: pattern mismatch at offset 3")
	err := p.Do(context.Background(), func(int) error { calls++; return bad })
	if !errors.Is(err, bad) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want single fatal attempt", err, calls)
	}
}

func TestDoExhaustionWrapsLastError(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}
	last := fmt.Errorf("sublink: %w", syscall.ECONNRESET)
	err := p.Do(context.Background(), func(int) error { return last })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err=%v, want ErrExhausted", err)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err=%v lost the last attempt's cause", err)
	}
}

func TestDoHonorsContext(t *testing.T) {
	p := Policy{MaxAttempts: 100, BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(int) error { calls++; return syscall.ECONNREFUSED })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (cancelled during first backoff)", calls)
	}
}

func TestSingleAttemptPolicy(t *testing.T) {
	var p Policy // zero value: one attempt, no retry
	calls := 0
	err := p.Do(context.Background(), func(int) error { calls++; return syscall.ECONNRESET })
	if calls != 1 || !errors.Is(err, ErrExhausted) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}
