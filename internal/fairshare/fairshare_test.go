package fairshare

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNilFlowIsNoOp proves the unscheduled data path needs no
// branches: nil flows acquire and leave freely.
func TestNilFlowIsNoOp(t *testing.T) {
	var f *Flow
	f.Acquire(1 << 20)
	f.Leave()
	var s *Scheduler
	if fl := s.Join(3); fl != nil {
		t.Fatal("nil scheduler must hand out nil flows")
	}
	if s.Flows() != 0 {
		t.Fatal("nil scheduler has no flows")
	}
}

// TestSoleFlowNeverBlocks: with nobody to share with, Acquire must be
// credit-on-demand regardless of size or quantum.
func TestSoleFlowNeverBlocks(t *testing.T) {
	s := New(Config{Quantum: 1})
	f := s.Join(1)
	defer f.Leave()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Acquire(1 << 20)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sole flow blocked")
	}
}

// TestWeightedShares runs competing flows pulling fixed-size chunks as
// fast as the scheduler grants them through a shared trunk and checks
// the byte split tracks the weights. The trunk rate is what makes the
// shares observable: DRR divides the resource it schedules, and with
// no bottleneck a work-conserving arbiter rightly throttles nobody.
func TestWeightedShares(t *testing.T) {
	const (
		chunk   = 32 << 10
		perFlow = 128 // chunks the heavy flow moves before we stop
		// 32 MB/s puts one round (3 chunks of trunk time) at ~3ms,
		// comfortably above coarse sleep-timer granularity, so the
		// round cadence — not wakeup jitter — sets the schedule.
		rate      = 32 << 20
		tolerance = 0.15
	)
	s := New(Config{Quantum: chunk, Rate: rate})
	weights := []int{2, 1}
	var bytes [2]atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i, w := range weights {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := s.Join(w)
			defer f.Leave()
			for !stop.Load() {
				f.Acquire(chunk)
				bytes[i].Add(chunk)
			}
		}()
	}
	for bytes[0].Load() < perFlow*chunk {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	ratio := float64(bytes[0].Load()) / float64(bytes[1].Load())
	if ratio < 2*(1-tolerance) || ratio > 2*(1+tolerance) {
		t.Fatalf("2:1 weighted split measured %.2f:1 (bytes %d vs %d)",
			ratio, bytes[0].Load(), bytes[1].Load())
	}
}

// TestOversizedRequestCompletes: a request larger than quantum×weight
// must be topped up in one round, not spin forever.
func TestOversizedRequestCompletes(t *testing.T) {
	s := New(Config{Quantum: 1 << 10})
	a := s.Join(1)
	b := s.Join(1)
	defer b.Leave()
	done := make(chan struct{})
	go func() {
		a.Acquire(1 << 20) // 1024× the quantum
		a.Leave()
		close(done)
	}()
	// Keep the second flow pulling so rounds keep turning.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				b.Acquire(1 << 10)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("oversized acquire never completed")
	}
}

// TestLeaveUnblocksWaiter: when the competition departs mid-wait, the
// remaining flow must fall back to the sole-flow fast path.
func TestLeaveUnblocksWaiter(t *testing.T) {
	s := New(Config{Quantum: 1})
	a := s.Join(1)
	b := s.Join(1)
	done := make(chan struct{})
	go func() {
		a.Acquire(1 << 20)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Leave()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by Leave")
	}
	a.Leave()
	if n := s.Flows(); n != 0 {
		t.Fatalf("flows after everyone left: %d", n)
	}
}

// TestTrunkRatePacesAggregate: with a trunk rate set, total grant
// throughput must approximate the rate regardless of flow count.
func TestTrunkRatePacesAggregate(t *testing.T) {
	const (
		// 2 MB/s puts one round (3 chunks) at ~48ms of trunk time, so
		// scheduler-induced wakeup stalls of tens of milliseconds — a
		// fact of life on small shared machines — stay a fraction of
		// the cadence instead of dominating it.
		rate  = 2 << 20
		chunk = 32 << 10
		total = 1 << 20
	)
	s := New(Config{Quantum: chunk, Rate: rate})
	var moved atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := s.Join(1)
			defer f.Leave()
			for moved.Add(chunk) <= total {
				f.Acquire(chunk)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	got := float64(total) / elapsed
	if got > rate*1.25 {
		t.Fatalf("trunk rate %.0f B/s exceeded: measured %.0f B/s", float64(rate), got)
	}
	if got < rate*0.25 {
		t.Fatalf("trunk badly underutilized: measured %.0f of %.0f B/s", got, float64(rate))
	}
}

// TestWeightClamp: weights below 1 must not create zero-share flows.
func TestWeightClamp(t *testing.T) {
	s := New(Config{})
	f := s.Join(0)
	defer f.Leave()
	if f.weight != 1 {
		t.Fatalf("weight clamped to %d, want 1", f.weight)
	}
}
