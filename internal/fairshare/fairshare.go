// Package fairshare implements the depot's multi-tenant bandwidth
// arbiter: a weighted deficit-round-robin (DRR) chunk scheduler.
//
// A depot serving N concurrent sessions runs one forwarding pump per
// session; without coordination, the pumps race each other into the
// downstream sublinks and one aggressive transfer can starve every
// other session sharing a trunk — the aggregate-flow pathology TCP
// Trunking (Kung & Wang, 1998) manages at the trunk and the
// utilization-vs-fairness tension Freemon (2014) documents for
// guaranteed-bandwidth long-fat networks. The scheduler makes the
// contention explicit: every pump asks for credit before forwarding a
// chunk, and credit is paid in rounds — one full DRR revolution at a
// time, quantum×weight bytes to every flow with an unmet request.
// Paying the whole revolution in one batch is deliberate: granting
// flows one at a time makes the schedule sensitive to which pump
// happens to be mid-copy when its turn comes up, and those
// microsecond-scale races flatten weighted shares toward equality.
// A batch round charges the shared trunk horizon for every byte it
// grants, and the next round opens only when the horizon arrives —
// so under a configured trunk rate, wall-clock trunk time divides
// exactly as round sizes do, weight to weight.
//
// Without a trunk rate the scheduler is purely work-conserving:
// rounds open on demand and no flow is ever slowed, because fairness
// is only meaningful at a bottleneck and must cost nothing when the
// data path is unconstrained.
package fairshare

import (
	"sync"
	"time"
)

// DefaultQuantum is the per-weight-unit byte credit of one round.
// It matches the depot's pooled chunk size: DRR's fairness bound
// requires the quantum to be at least the maximum "packet" (here,
// chunk) size, and exactly one chunk per unit weight per round keeps
// the schedule's granularity as fine as the data path allows.
const DefaultQuantum = 32 << 10

// Config parameterizes a Scheduler.
type Config struct {
	// Quantum is the byte credit granted per weight unit per round
	// (0 selects DefaultQuantum). It should be at least the largest
	// chunk the data path forwards; a round additionally tops an
	// oversized request up in full, so a heavy chunk can never wait on
	// credit that accumulates one quantum at a time.
	Quantum int
	// Rate, when positive, paces aggregate grants to this many bytes
	// per second — the shared-trunk model: the scheduler then behaves
	// like a sublink of that capacity divided among the flows by
	// weight. Zero disables pacing (pure work-conserving arbitration).
	Rate float64
}

// Scheduler arbitrates chunk forwarding among concurrent flows.
type Scheduler struct {
	mu      sync.Mutex
	quantum int64
	rate    float64
	flows   []*Flow
	horizon time.Time // trunk time already claimed by paid rounds
}

// Flow is one session's handle on the scheduler. The zero value is not
// usable; obtain flows from Join. A nil *Flow is valid everywhere and
// does nothing, so unscheduled data paths need no branches.
type Flow struct {
	s       *Scheduler
	weight  int64
	deficit int64 // granted, unspent byte credit
	need    int64 // bytes the flow's blocked Acquire is asking for
	waiting bool
}

// New builds a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	return &Scheduler{quantum: int64(cfg.Quantum), rate: cfg.Rate}
}

// Join registers a new flow with the given weight (values below 1 are
// clamped to 1). The flow participates in arbitration until Leave.
func (s *Scheduler) Join(weight int) *Flow {
	if s == nil {
		return nil
	}
	if weight < 1 {
		weight = 1
	}
	f := &Flow{s: s, weight: int64(weight)}
	s.mu.Lock()
	s.flows = append(s.flows, f)
	s.mu.Unlock()
	return f
}

// Leave removes the flow from arbitration. Unspent deficit — and, under
// a trunk rate, the trunk time already claimed for it — is discarded;
// the waste is bounded by one round. Safe on a nil flow and idempotent.
func (f *Flow) Leave() {
	if f == nil || f.s == nil {
		return
	}
	s := f.s
	s.mu.Lock()
	for i, fl := range s.flows {
		if fl == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			break
		}
	}
	f.s = nil
	s.mu.Unlock()
}

// Acquire blocks until the flow holds credit for n bytes, then spends
// it. Blocked flows sleep out the trunk horizon and pay rounds as it
// arrives; with no trunk rate configured, rounds open on demand and
// Acquire never sleeps. A nil flow returns immediately — the
// unscheduled pump.
func (f *Flow) Acquire(n int) {
	if f == nil || f.s == nil || n <= 0 {
		return
	}
	s := f.s
	need := int64(n)
	s.mu.Lock()
	for f.deficit < need {
		f.waiting = true
		f.need = need
		if wait := s.gateWait(); wait > 0 {
			// The trunk is still serving already-paid rounds: sleep
			// until the horizon arrives. Another flow's round may pay
			// this one meanwhile; the loop re-checks either way.
			s.mu.Unlock()
			time.Sleep(wait)
			s.mu.Lock()
			if f.s == nil {
				// Removed while blocked (Leave from another
				// goroutine): let the caller proceed, not deadlock.
				s.mu.Unlock()
				return
			}
			continue
		}
		s.round()
	}
	f.waiting = false
	f.deficit -= need
	s.mu.Unlock()
}

// gateWait reports how long the next round must wait for the trunk to
// finish serving the rounds already paid. Zero when unpaced, when the
// horizon has arrived, or when no round was ever paid. Callers hold
// s.mu.
func (s *Scheduler) gateWait() time.Duration {
	if s.rate <= 0 || s.horizon.IsZero() {
		return 0
	}
	if d := time.Until(s.horizon); d > 0 {
		return d
	}
	return 0
}

// round runs one full DRR revolution: every flow with an unmet request
// is paid quantum×weight — floored at its pending need, so an
// oversized request is satisfied in one round instead of spinning —
// and the shared trunk horizon is charged for the total. Flows whose
// deficit already covers their need are skipped: credit never
// accumulates past one round ahead of demand. Callers hold s.mu.
func (s *Scheduler) round() {
	var granted int64
	for _, fl := range s.flows {
		if !fl.waiting || fl.deficit >= fl.need {
			continue
		}
		g := s.quantum * fl.weight
		if fl.deficit+g < fl.need {
			g = fl.need - fl.deficit
		}
		fl.deficit += g
		granted += g
	}
	if granted == 0 || s.rate <= 0 {
		return
	}
	start := time.Now()
	if s.horizon.After(start) {
		start = s.horizon
	}
	s.horizon = start.Add(time.Duration(float64(granted) / s.rate * float64(time.Second)))
}

// Flows reports how many flows are currently joined.
func (s *Scheduler) Flows() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}
