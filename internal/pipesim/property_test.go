package pipesim

import (
	"testing"
	"testing/quick"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpsim"
)

// TestPropertyConservation: for arbitrary (bounded) chain parameters,
// every hop acknowledges exactly the transfer size — bytes are neither
// lost nor duplicated through depot buffers — and the transfer always
// terminates.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, sizeKB uint16, rtt1, rtt2 uint8, capMbit1, capMbit2 uint8, lossMil uint8, bufKB uint16) bool {
		size := int64(sizeKB%2048+1) << 10
		mk := func(rttRaw, capRaw uint8) tcpsim.Config {
			return tcpsim.Config{
				RTT:      simtime.Milliseconds(float64(rttRaw%200) + 1),
				Capacity: (float64(capRaw%100) + 1) * 1e5,
				LossRate: float64(lossMil%50) / 10000, // up to 0.5%
			}
		}
		chain := Chain{
			Size: size,
			Hops: []Hop{
				{TCP: mk(rtt1, capMbit1)},
				{TCP: mk(rtt2, capMbit2)},
			},
			Depots: []Depot{{PipelineBytes: int64(bufKB%512+4) << 10}},
		}
		eng := netsim.New(seed)
		res, err := Run(eng, chain)
		if err != nil {
			return false
		}
		for _, st := range res.HopStats {
			if st.BytesAcked != size {
				return false
			}
		}
		return res.Elapsed > 0 && res.Bandwidth > 0
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMinimaxBound: the chain bandwidth never exceeds the
// slowest sublink's capacity.
func TestPropertyMinimaxBound(t *testing.T) {
	f := func(seed int64, cap1, cap2 uint8) bool {
		c1 := (float64(cap1%50) + 2) * 1e5
		c2 := (float64(cap2%50) + 2) * 1e5
		min := c1
		if c2 < min {
			min = c2
		}
		chain := Chain{
			Size: 2 << 20,
			Hops: []Hop{
				{TCP: tcpsim.Config{RTT: simtime.Milliseconds(20), Capacity: c1}},
				{TCP: tcpsim.Config{RTT: simtime.Milliseconds(20), Capacity: c2}},
			},
			Depots: []Depot{{}},
		}
		eng := netsim.New(seed)
		res, err := Run(eng, chain)
		if err != nil {
			return false
		}
		return res.Bandwidth <= min*1.01
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRunManyMatchesRun: a single chain behaves identically
// whether run alone or via RunMany.
func TestPropertyRunManyMatchesRun(t *testing.T) {
	cfg := tcpsim.Config{RTT: simtime.Milliseconds(30), Capacity: 5e6, LossRate: 1e-4, Jitter: 0.1}
	a := func() Result {
		eng := netsim.New(42)
		r, err := Run(eng, Direct(3<<20, "d", cfg))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	b := func() Result {
		eng := netsim.New(42)
		rs, err := RunMany(eng, []Chain{Direct(3<<20, "d", cfg)})
		if err != nil {
			t.Fatal(err)
		}
		return rs[0]
	}()
	if a.Elapsed != b.Elapsed || a.Bandwidth != b.Bandwidth {
		t.Fatalf("Run %v vs RunMany %v", a.Elapsed, b.Elapsed)
	}
}

// TestRunManyConcurrent: several chains progress concurrently on one
// engine, all complete, and total simulated time is far below the sum
// of their individual durations.
func TestRunManyConcurrent(t *testing.T) {
	cfg := tcpsim.Config{RTT: simtime.Milliseconds(50), Capacity: 2e6}
	const k = 4
	chains := make([]Chain, k)
	for i := range chains {
		chains[i] = Direct(2<<20, "p", cfg)
	}
	eng := netsim.New(1)
	results, err := RunMany(eng, chains)
	if err != nil {
		t.Fatal(err)
	}
	var maxEnd simtime.Time
	var sum simtime.Duration
	for _, r := range results {
		if r.HopStats[0].BytesAcked != 2<<20 {
			t.Fatalf("chain incomplete: %+v", r.HopStats[0])
		}
		if r.End > maxEnd {
			maxEnd = r.End
		}
		sum += r.Elapsed
	}
	// They ran concurrently: wall clock ≈ one transfer, not k.
	if maxEnd.Sub(0) > sum {
		t.Fatalf("no concurrency: wall %v vs sum %v", maxEnd, sum)
	}
	if maxEnd.Sub(0).Seconds() > 0.6*sum.Seconds() {
		t.Fatalf("weak concurrency: wall %v vs sum %v", maxEnd, sum)
	}
}
