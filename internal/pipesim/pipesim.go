// Package pipesim simulates LSL transfer chains: one or more tcpsim
// connections coupled through depot buffers with bounded capacity.
//
// A chain with a single hop is a direct TCP transfer. A chain with k>1
// hops models an LSL session relayed through k-1 depots: sublink i
// drains its upstream buffer and fills its downstream buffer, and the
// bounded buffers impose the back-pressure that makes the end-to-end
// rate the minimum of the sublink rates (the paper's minimax principle)
// and that produces the Figure 5 knee when an upstream sublink runs one
// depot-pipeline ahead of the bottleneck.
package pipesim

import (
	"errors"
	"fmt"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpsim"
	"github.com/netlogistics/lsl/internal/trace"
)

// DefaultDepotPipeline is the per-depot buffering of the paper's
// deployment: 8 MB kernel send + 8 MB kernel receive buffers plus
// matching user-space buffers, 32 MB in total.
const DefaultDepotPipeline int64 = 32 << 20

// Hop describes one TCP sublink of a chain.
type Hop struct {
	Name string
	TCP  tcpsim.Config
}

// Depot describes the relay between two hops.
type Depot struct {
	Name string
	// PipelineBytes is the total buffering a stream can occupy inside
	// the depot (kernel plus user-space). Zero selects
	// DefaultDepotPipeline; negative means unlimited.
	PipelineBytes int64
	// ForwardRate caps the rate at which the depot host can move bytes
	// between its sockets, in bytes/sec (the paper's "bandwidth through
	// the host", degraded on virtualized PlanetLab nodes). Zero means
	// unlimited.
	ForwardRate float64
}

// Chain specifies one end-to-end transfer.
type Chain struct {
	Size   int64
	Hops   []Hop
	Depots []Depot // must have len(Hops)-1 entries
	// Capture enables per-hop acknowledged-sequence traces.
	Capture bool
	// NoSetupCascade starts every sublink at the chain start instead of
	// cascading hop i's connection setup behind hop i-1's handshake and
	// the session-header propagation (the LSL loose-source-route
	// behaviour). Cascading is the default because it is what the
	// deployed system does.
	NoSetupCascade bool
}

// Result reports one completed transfer.
type Result struct {
	Start     simtime.Time
	End       simtime.Time
	Elapsed   simtime.Duration
	Bandwidth float64 // bytes/sec over the whole transfer
	HopStats  []tcpsim.Stats
	Traces    []*trace.Series // nil unless Chain.Capture
}

// Errors returned by Run.
var (
	ErrNoHops        = errors.New("pipesim: chain needs at least one hop")
	ErrDepotMismatch = errors.New("pipesim: chain needs exactly len(hops)-1 depots")
	ErrBadSize       = errors.New("pipesim: transfer size must be positive")
)

// buffer is the depot pipeline between two sublinks. It is a
// tcpsim.Sink for the upstream connection and a tcpsim.Source for the
// downstream one.
type buffer struct {
	cap      int64 // <=0 means unlimited
	occ      int64
	closed   bool
	producer *tcpsim.Conn
	consumer *tcpsim.Conn
	maxOcc   int64
}

func (b *buffer) Free() int64 {
	if b.cap <= 0 {
		return 1 << 62
	}
	return b.cap - b.occ
}

func (b *buffer) Put(n int64) {
	b.occ += n
	if b.cap > 0 && b.occ > b.cap {
		panic(fmt.Sprintf("pipesim: buffer overfilled (%d > %d)", b.occ, b.cap))
	}
	if b.occ > b.maxOcc {
		b.maxOcc = b.occ
	}
	if b.consumer != nil {
		b.consumer.Wake()
	}
}

func (b *buffer) Available() int64 { return b.occ }

func (b *buffer) Take(n int64) {
	if n > b.occ {
		panic("pipesim: buffer overdrawn")
	}
	b.occ -= n
	if b.producer != nil {
		b.producer.Wake()
	}
}

func (b *buffer) Exhausted() bool { return b.closed && b.occ == 0 }

func (b *buffer) close() {
	b.closed = true
	if b.consumer != nil {
		b.consumer.Wake()
	}
}

// Run simulates the chain on eng, starting at the engine's current time,
// and drives the engine until the transfer completes.
func Run(eng *netsim.Engine, chain Chain) (Result, error) {
	results, err := RunMany(eng, []Chain{chain})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// RunMany simulates several chains concurrently on eng — e.g. the
// parallel-socket (PSockets-style) baseline, where one transfer is
// striped over k simultaneous connections — and drives the engine until
// every chain completes.
func RunMany(eng *netsim.Engine, chains []Chain) ([]Result, error) {
	if len(chains) == 0 {
		return nil, ErrNoHops
	}
	results := make([]Result, len(chains))
	finishers := make([]func() (Result, error), len(chains))
	for i, chain := range chains {
		fin, err := launch(eng, chain)
		if err != nil {
			return nil, err
		}
		finishers[i] = fin
	}
	if _, err := eng.RunAll(); err != nil {
		return nil, fmt.Errorf("pipesim: %w", err)
	}
	for i, fin := range finishers {
		res, err := fin()
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// launch wires one chain's connections and buffers onto the engine and
// returns a closure that assembles the Result after the engine runs.
func launch(eng *netsim.Engine, chain Chain) (func() (Result, error), error) {
	if len(chain.Hops) == 0 {
		return nil, ErrNoHops
	}
	if len(chain.Depots) != len(chain.Hops)-1 {
		return nil, ErrDepotMismatch
	}
	if chain.Size <= 0 {
		return nil, ErrBadSize
	}

	start := eng.Now()
	nHops := len(chain.Hops)

	// Assemble buffers between hops.
	buffers := make([]*buffer, nHops-1)
	for i, d := range chain.Depots {
		capBytes := d.PipelineBytes
		if capBytes == 0 {
			capBytes = DefaultDepotPipeline
		}
		buffers[i] = &buffer{cap: capBytes}
	}

	// Assemble connections. A depot's forwarding rate caps the capacity
	// of both adjacent sublinks (every byte crosses the host twice:
	// once in, once out).
	conns := make([]*tcpsim.Conn, nHops)
	var traces []*trace.Series
	if chain.Capture {
		traces = make([]*trace.Series, nHops)
	}
	var finished int
	var endAt simtime.Time

	for i, hop := range chain.Hops {
		cfg := hop.TCP
		if i > 0 {
			if r := chain.Depots[i-1].ForwardRate; r > 0 && (cfg.Capacity <= 0 || r < cfg.Capacity) {
				cfg.Capacity = r
			}
		}
		if i < nHops-1 {
			if r := chain.Depots[i].ForwardRate; r > 0 && (cfg.Capacity <= 0 || r < cfg.Capacity) {
				cfg.Capacity = r
			}
		}

		var src tcpsim.Source
		if i == 0 {
			src = tcpsim.NewByteSource(chain.Size)
		} else {
			src = buffers[i-1]
		}
		var dst tcpsim.Sink
		if i == nHops-1 {
			dst = tcpsim.NewCountSink()
		} else {
			dst = buffers[i]
		}

		name := hop.Name
		if name == "" {
			name = fmt.Sprintf("sublink-%d", i+1)
		}
		conn := tcpsim.New(eng, name, cfg, src, dst)
		conns[i] = conn
		if i > 0 {
			buffers[i-1].consumer = conn
		}
		if i < nHops-1 {
			buffers[i].producer = conn
		}
		if chain.Capture {
			s := trace.NewSeries(name)
			traces[i] = s
			conn.OnAck = s.Observe
		}

		idx := i
		conn.OnDone = func(now simtime.Time) {
			finished++
			if idx < nHops-1 {
				buffers[idx].close()
			}
			if idx == nHops-1 {
				endAt = now
			}
		}
	}

	// Start times: the first sublink starts now; with the setup cascade
	// each later sublink starts after the previous hop's handshake plus
	// a half-RTT for the session header to reach the depot.
	at := start
	for _, conn := range conns {
		if chain.NoSetupCascade {
			conn.Start(start)
			continue
		}
		conn.Start(at)
		at = at.Add(simtime.Duration(1.5 * float64(conn.Config().RTT)))
	}

	finish := func() (Result, error) {
		if finished != nHops {
			return Result{}, fmt.Errorf("pipesim: deadlock, %d/%d sublinks finished", finished, nHops)
		}
		elapsed := endAt.Sub(start)
		res := Result{
			Start:     start,
			End:       endAt,
			Elapsed:   elapsed,
			Bandwidth: float64(chain.Size) / elapsed.Seconds(),
			HopStats:  make([]tcpsim.Stats, nHops),
			Traces:    traces,
		}
		for i, c := range conns {
			res.HopStats[i] = c.Stats()
		}
		return res, nil
	}
	return finish, nil
}

// Direct builds a single-hop chain for the given TCP parameters.
func Direct(size int64, name string, cfg tcpsim.Config) Chain {
	return Chain{Size: size, Hops: []Hop{{Name: name, TCP: cfg}}}
}

// Relayed builds a chain through the given depots. hops must have
// exactly one more element than depots.
func Relayed(size int64, hops []Hop, depots []Depot) Chain {
	return Chain{Size: size, Hops: hops, Depots: depots}
}
