package pipesim

import (
	"testing"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpsim"
)

func ms(v float64) simtime.Duration { return simtime.Milliseconds(v) }

func TestDirectChainDelivers(t *testing.T) {
	eng := netsim.New(1)
	res, err := Run(eng, Direct(4<<20, "d", tcpsim.Config{RTT: ms(40), Capacity: 1e7}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Bandwidth <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.HopStats[0].BytesAcked != 4<<20 {
		t.Fatalf("acked %d", res.HopStats[0].BytesAcked)
	}
}

func TestChainValidation(t *testing.T) {
	eng := netsim.New(1)
	if _, err := Run(eng, Chain{Size: 1}); err != ErrNoHops {
		t.Fatalf("no hops: %v", err)
	}
	if _, err := Run(eng, Chain{Size: 1, Hops: make([]Hop, 2)}); err != ErrDepotMismatch {
		t.Fatalf("depot mismatch: %v", err)
	}
	if _, err := Run(eng, Chain{Size: 0, Hops: make([]Hop, 1)}); err != ErrBadSize {
		t.Fatalf("bad size: %v", err)
	}
}

func TestRelayedConservesBytes(t *testing.T) {
	eng := netsim.New(1)
	size := int64(8 << 20)
	chain := Relayed(size,
		[]Hop{
			{TCP: tcpsim.Config{RTT: ms(30), Capacity: 1e7}},
			{TCP: tcpsim.Config{RTT: ms(30), Capacity: 1e7}},
		},
		[]Depot{{}},
	)
	res, err := Run(eng, chain)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.HopStats {
		if st.BytesAcked != size {
			t.Fatalf("hop %d acked %d of %d", i, st.BytesAcked, size)
		}
	}
}

func TestLogisticalEffect(t *testing.T) {
	// A long window-limited path split in half through a depot should
	// be substantially faster — the paper's core claim.
	size := int64(8 << 20)
	window := tcpsim.Config{
		RTT:      ms(120),
		Capacity: 1e9,
		SndBuf:   64 << 10,
		RcvBuf:   64 << 10,
	}
	eng := netsim.New(1)
	direct, err := Run(eng, Direct(size, "direct", window))
	if err != nil {
		t.Fatal(err)
	}
	half := window
	half.RTT = ms(60)
	relayed, err := Run(eng, Relayed(size, []Hop{{TCP: half}, {TCP: half}}, []Depot{{}}))
	if err != nil {
		t.Fatal(err)
	}
	speedup := relayed.Bandwidth / direct.Bandwidth
	if speedup < 1.5 {
		t.Fatalf("logistical speedup = %.2f, want > 1.5", speedup)
	}
}

func TestBottleneckDominates(t *testing.T) {
	// End-to-end bandwidth of a chain should approximate its slowest
	// sublink (minimax), not the sum or the first link.
	size := int64(16 << 20)
	fast := tcpsim.Config{RTT: ms(20), Capacity: 16e6}
	slow := tcpsim.Config{RTT: ms(20), Capacity: 2e6}
	eng := netsim.New(1)
	res, err := Run(eng, Relayed(size, []Hop{{TCP: fast}, {TCP: slow}}, []Depot{{}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth > 2e6*1.05 {
		t.Fatalf("chain bandwidth %.0f exceeds bottleneck 2e6", res.Bandwidth)
	}
	if res.Bandwidth < 2e6*0.5 {
		t.Fatalf("chain bandwidth %.0f far below bottleneck", res.Bandwidth)
	}
}

func TestBufferLimitsUpstreamLead(t *testing.T) {
	// With a fast first hop and slow second, the first sublink may run
	// at most one depot pipeline ahead — the Figure 5 knee.
	size := int64(24 << 20)
	pipeline := int64(4 << 20)
	eng := netsim.New(1)
	chain := Chain{
		Size: size,
		Hops: []Hop{
			{TCP: tcpsim.Config{RTT: ms(20), Capacity: 50e6}},
			{TCP: tcpsim.Config{RTT: ms(20), Capacity: 2e6}},
		},
		Depots:  []Depot{{PipelineBytes: pipeline}},
		Capture: true,
	}
	res, err := Run(eng, chain)
	if err != nil {
		t.Fatal(err)
	}
	lead := res.Traces[0].MaxLead(res.Traces[1])
	if lead > pipeline+(1<<20) {
		t.Fatalf("lead %d exceeds pipeline %d", lead, pipeline)
	}
	if lead < pipeline/2 {
		t.Fatalf("lead %d never approached pipeline %d", lead, pipeline)
	}
}

func TestUnlimitedBufferAllowsFullLead(t *testing.T) {
	size := int64(8 << 20)
	eng := netsim.New(1)
	chain := Chain{
		Size: size,
		Hops: []Hop{
			{TCP: tcpsim.Config{RTT: ms(20), Capacity: 50e6}},
			{TCP: tcpsim.Config{RTT: ms(20), Capacity: 2e6}},
		},
		Depots:  []Depot{{PipelineBytes: -1}},
		Capture: true,
	}
	res, err := Run(eng, chain)
	if err != nil {
		t.Fatal(err)
	}
	lead := res.Traces[0].MaxLead(res.Traces[1])
	if lead < size/2 {
		t.Fatalf("unlimited buffer lead %d, want most of transfer", lead)
	}
}

func TestForwardRateCapsChain(t *testing.T) {
	size := int64(8 << 20)
	cfg := tcpsim.Config{RTT: ms(20), Capacity: 50e6}
	eng := netsim.New(1)
	res, err := Run(eng, Chain{
		Size:   size,
		Hops:   []Hop{{TCP: cfg}, {TCP: cfg}},
		Depots: []Depot{{ForwardRate: 1e6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth > 1.1e6 {
		t.Fatalf("bandwidth %.0f exceeds depot forward rate 1e6", res.Bandwidth)
	}
}

func TestThreeHopChain(t *testing.T) {
	size := int64(4 << 20)
	cfg := tcpsim.Config{RTT: ms(25), Capacity: 1e7}
	eng := netsim.New(1)
	res, err := Run(eng, Relayed(size,
		[]Hop{{TCP: cfg}, {TCP: cfg}, {TCP: cfg}},
		[]Depot{{}, {}},
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HopStats) != 3 {
		t.Fatalf("hops = %d", len(res.HopStats))
	}
	for i, st := range res.HopStats {
		if st.BytesAcked != size {
			t.Fatalf("hop %d acked %d", i, st.BytesAcked)
		}
	}
}

func TestSetupCascadeDelaysLaterHops(t *testing.T) {
	size := int64(1 << 20)
	cfg := tcpsim.Config{RTT: ms(100), Capacity: 1e9}
	mk := func(noCascade bool) simtime.Duration {
		eng := netsim.New(1)
		res, err := Run(eng, Chain{
			Size:           size,
			Hops:           []Hop{{TCP: cfg}, {TCP: cfg}},
			Depots:         []Depot{{}},
			NoSetupCascade: noCascade,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	cascaded := mk(false)
	parallel := mk(true)
	if cascaded <= parallel {
		t.Fatalf("cascade (%v) should be slower than parallel setup (%v)", cascaded, parallel)
	}
}

func TestCaptureTraces(t *testing.T) {
	eng := netsim.New(1)
	res, err := Run(eng, Chain{
		Size:    1 << 20,
		Hops:    []Hop{{Name: "a", TCP: tcpsim.Config{RTT: ms(10), Capacity: 1e7}}},
		Capture: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1 || res.Traces[0].Len() == 0 {
		t.Fatalf("traces = %+v", res.Traces)
	}
	if res.Traces[0].Name != "a" {
		t.Fatalf("trace name = %q", res.Traces[0].Name)
	}
	if got := res.Traces[0].Final().Acked; got != 1<<20 {
		t.Fatalf("final acked %d", got)
	}
}

func TestSequentialRunsAccumulateTime(t *testing.T) {
	eng := netsim.New(1)
	cfg := tcpsim.Config{RTT: ms(10), Capacity: 1e7}
	r1, err := Run(eng, Direct(1<<20, "a", cfg))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(eng, Direct(1<<20, "b", cfg))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start < r1.End {
		t.Fatalf("second run started at %v before first ended %v", r2.Start, r1.End)
	}
	if r2.Elapsed <= 0 {
		t.Fatalf("second elapsed = %v", r2.Elapsed)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		eng := netsim.New(99)
		res, err := Run(eng, Direct(4<<20, "d",
			tcpsim.Config{RTT: ms(30), Capacity: 1e7, LossRate: 1e-4, Jitter: 0.1}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Elapsed != b.Elapsed || a.Bandwidth != b.Bandwidth {
		t.Fatalf("same seed diverged: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
