package loadgen

import (
	"math"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/workload"
)

// testSystem builds a fast scheduled deployment for load runs.
func testSystem(t *testing.T, cfg core.Config) *core.System {
	t.Helper()
	cfg.TimeScale = 0.0005
	cfg.Seed = 1
	sys, err := core.NewSystem(topo.TwoPath(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// TestRunCompletes: a small closed load over a fair-share deployment
// completes every session and reports coherent figures.
func TestRunCompletes(t *testing.T) {
	sys := testSystem(t, core.Config{FairShare: &fairshare.Config{}})
	rep := Run(sys, Config{
		Sessions: 9,
		Sizes:    []int64{64 << 10, 128 << 10},
		Weights:  []uint16{2, 1},
		Seed:     7,
	})
	if rep.Failed != 0 || rep.Completed != 9 {
		t.Fatalf("completed %d failed %d, want 9/0: %+v", rep.Completed, rep.Failed, rep.Sessions)
	}
	var want int64
	for _, s := range rep.Sessions {
		want += s.Size
	}
	if rep.Bytes != want {
		t.Fatalf("bytes %d, want %d", rep.Bytes, want)
	}
	if rep.Jain <= 0 || rep.Jain > 1 {
		t.Fatalf("Jain index %v out of (0,1]", rep.Jain)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 {
		t.Fatalf("disordered percentiles: p50 %v p95 %v p99 %v", rep.P50, rep.P95, rep.P99)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

// TestRunPacedArrivals: a paced open load launches sessions over time
// and still completes; the wall clock reflects the pacing.
func TestRunPacedArrivals(t *testing.T) {
	sys := testSystem(t, core.Config{})
	rep := Run(sys, Config{
		Sessions: 4,
		Sizes:    []int64{64 << 10},
		Arrival:  workload.UniformArrivals{Every: 10 * time.Millisecond},
		Seed:     3,
	})
	if rep.Completed != 4 {
		t.Fatalf("completed %d of 4", rep.Completed)
	}
	if rep.Wall < 30*time.Millisecond {
		t.Fatalf("wall %v, want ≥30ms of arrival pacing", rep.Wall)
	}
}

// directPair finds a host pair whose planned route is the direct
// connection and whose destination is a non-depot leaf, so killing
// that destination fails its own sessions at dial time without
// severing anyone else's relay.
func directPair(t *testing.T, sys *core.System) [2]string {
	t.Helper()
	for i := 0; i < sys.Topo.N(); i++ {
		for j := 0; j < sys.Topo.N(); j++ {
			if i == j || sys.Topo.Hosts[j].Depot {
				continue
			}
			a, b := sys.Topo.Hosts[i].Name, sys.Topo.Hosts[j].Name
			if p, err := sys.PlannedPath(a, b); err == nil && len(p) == 2 {
				return [2]string{a, b}
			}
		}
	}
	t.Fatal("no directly-planned pair to a leaf host in the topology")
	return [2]string{}
}

// pairAvoiding finds a pair whose planned route never touches the
// given host.
func pairAvoiding(t *testing.T, sys *core.System, host string) [2]string {
	t.Helper()
	for i := 0; i < sys.Topo.N(); i++ {
		for j := 0; j < sys.Topo.N(); j++ {
			a, b := sys.Topo.Hosts[i].Name, sys.Topo.Hosts[j].Name
			if i == j || a == host || b == host {
				continue
			}
			p, err := sys.PlannedPath(a, b)
			if err != nil {
				continue
			}
			clean := true
			for _, h := range p {
				if h == host {
					clean = false
				}
			}
			if clean {
				return [2]string{a, b}
			}
		}
	}
	t.Fatalf("every planned route touches %s", host)
	return [2]string{}
}

// TestRunCountsFaultCasualties: with one depot dead, sessions routed
// at it fail, sessions avoiding it complete, and the run reports both
// instead of aborting.
func TestRunCountsFaultCasualties(t *testing.T) {
	sys := testSystem(t, core.Config{})
	deadPair := directPair(t, sys)
	dead := deadPair[1]
	healthy := pairAvoiding(t, sys, dead)
	if err := sys.KillDepot(dead); err != nil {
		t.Fatal(err)
	}
	rep := Run(sys, Config{
		Sessions: 6,
		Sizes:    []int64{64 << 10},
		Pairs:    [][2]string{deadPair, healthy},
		Seed:     5,
	})
	if rep.Failed == 0 {
		t.Fatal("no failures recorded against a dead depot")
	}
	if rep.Completed == 0 {
		t.Fatal("healthy pairs should still complete")
	}
	if rep.Completed+rep.Failed != 6 {
		t.Fatalf("completed %d + failed %d != 6", rep.Completed, rep.Failed)
	}
}

// TestRunSoakSurvivesInjectedFault: the soak mode composes with the
// depot fault injector — a one-shot mid-stream drop at the sink depot
// fires, the reliable path resumes, and the run still completes clean.
func TestRunSoakSurvivesInjectedFault(t *testing.T) {
	sys := testSystem(t, core.Config{})
	pair := directPair(t, sys)
	fi, err := sys.Fault(pair[1])
	if err != nil {
		t.Fatal(err)
	}
	fi.DropAfter(16 << 10)
	rep := Run(sys, Config{
		Sessions: 3,
		Sizes:    []int64{64 << 10},
		Pairs:    [][2]string{pair},
		Reliable: true,
		Seed:     11,
	})
	if rep.Completed != 3 || rep.Failed != 0 {
		t.Fatalf("soak completed %d failed %d, want 3/0", rep.Completed, rep.Failed)
	}
	if fi.Injected() == 0 {
		t.Fatal("armed fault never fired: the soak exercised nothing")
	}
}

// TestByWeight groups mean throughput by session weight.
func TestByWeight(t *testing.T) {
	rep := summarize([]Session{
		{Weight: 2, Bandwidth: 10},
		{Weight: 2, Bandwidth: 20},
		{Weight: 1, Bandwidth: 6},
	}, time.Second)
	bw := rep.ByWeight()
	if bw[2] != 15 || bw[1] != 6 {
		t.Fatalf("by-weight means = %v", bw)
	}
	if math.IsNaN(rep.Jain) {
		t.Fatal("Jain index NaN for completed sessions")
	}
}
