// Package loadgen is the mesh load and soak harness: it drives many
// concurrent transfers through a core.System deployment — mixed sizes,
// mixed fair-share weights, a configurable arrival process — and
// reports the distributional figures a multi-tenant evaluation needs:
// per-session throughput, Jain's fairness index, and completion-latency
// percentiles.
//
// The harness composes with the rest of the testbed rather than
// duplicating it: the System under load may run fair-share schedulers,
// admission queues, or armed depot.FaultInjector instances, and a soak
// run can use the reliable (retry + failover) transfer path so injected
// faults are survived and counted instead of aborting the run.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/workload"
)

// Config parameterizes one load run.
type Config struct {
	// Sessions is the number of transfers to launch (default 32).
	Sessions int
	// Sizes is cycled across sessions (default 256 KiB, 1 MiB, 4 MiB).
	Sizes []int64
	// Weights is cycled across sessions (default all weight 1). With a
	// fair-share deployment, weight k earns k× the per-round credit of
	// weight 1 at every scheduled depot on the path.
	Weights []uint16
	// Pairs is the (source, destination) host-name pool, drawn uniformly
	// per session. Empty selects all ordered pairs of the topology.
	Pairs [][2]string
	// Arrival paces session launches; nil releases everything at once
	// (the closed load).
	Arrival workload.ArrivalProcess
	// Reliable routes each transfer through the retry + failover path
	// with the default recovery policy, the soak mode that survives
	// armed fault injectors.
	Reliable bool
	// Seed drives pair selection and the arrival process.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 32
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int64{256 << 10, 1 << 20, 4 << 20}
	}
	if len(c.Weights) == 0 {
		c.Weights = []uint16{1}
	}
	return c
}

// Session is the outcome of one generated transfer.
type Session struct {
	Index    int
	Src, Dst string
	Size     int64
	Weight   uint16
	// Elapsed and Bandwidth are in emulated time, like
	// core.TransferResult.
	Elapsed   time.Duration
	Bandwidth float64
	Err       error
}

// Report aggregates a completed run.
type Report struct {
	Sessions []Session
	// Completed and Failed partition the sessions.
	Completed int
	Failed    int
	// Bytes is the total delivered by completed sessions.
	Bytes int64
	// Wall is the real time the whole run took.
	Wall time.Duration
	// Jain is Jain's fairness index over completed sessions' bandwidth
	// (NaN when nothing completed).
	Jain float64
	// P50, P95 and P99 are completion-latency percentiles over
	// completed sessions, in emulated time.
	P50, P95, P99 time.Duration
}

// Run launches the configured load against sys and blocks until every
// session has finished, successfully or not. Individual transfer
// failures are recorded, not fatal: a soak run reports its casualties.
func Run(sys *core.System, cfg Config) Report {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := cfg.Pairs
	if len(pairs) == 0 {
		pairs = allPairs(sys)
	}

	sessions := make([]Session, cfg.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		if cfg.Arrival != nil {
			if d := cfg.Arrival.Delay(i, rng); d > 0 {
				time.Sleep(d)
			}
		}
		p := pairs[rng.Intn(len(pairs))]
		s := Session{
			Index:  i,
			Src:    p[0],
			Dst:    p[1],
			Size:   cfg.Sizes[i%len(cfg.Sizes)],
			Weight: cfg.Weights[i%len(cfg.Weights)],
		}
		wg.Add(1)
		go func(i int, s Session) {
			defer wg.Done()
			var res core.TransferResult
			var err error
			if cfg.Reliable {
				res, err = sys.TransferReliable(s.Src, s.Dst, s.Size, core.DefaultRecovery())
			} else {
				res, err = sys.TransferWeighted(s.Src, s.Dst, s.Size, s.Weight)
			}
			s.Elapsed = res.Elapsed
			s.Bandwidth = res.Bandwidth
			s.Err = err
			sessions[i] = s
		}(i, s)
	}
	wg.Wait()
	return summarize(sessions, time.Since(start))
}

// allPairs enumerates every ordered host pair of the deployment.
func allPairs(sys *core.System) [][2]string {
	n := sys.Topo.N()
	pairs := make([][2]string, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pairs = append(pairs, [2]string{sys.Topo.Hosts[i].Name, sys.Topo.Hosts[j].Name})
		}
	}
	return pairs
}

// summarize folds per-session outcomes into the report figures.
func summarize(sessions []Session, wall time.Duration) Report {
	r := Report{Sessions: sessions, Wall: wall}
	var rates, lats []float64
	for _, s := range sessions {
		if s.Err != nil {
			r.Failed++
			continue
		}
		r.Completed++
		r.Bytes += s.Size
		rates = append(rates, s.Bandwidth)
		lats = append(lats, s.Elapsed.Seconds())
	}
	r.Jain = stats.JainIndex(rates)
	sort.Float64s(lats)
	r.P50 = secs(stats.Percentile(lats, 50))
	r.P95 = secs(stats.Percentile(lats, 95))
	r.P99 = secs(stats.Percentile(lats, 99))
	return r
}

func secs(s float64) time.Duration {
	if s != s { // NaN: nothing completed
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// ByWeight groups completed sessions' mean bandwidth by their weight,
// the figure a fairness table is built from.
func (r Report) ByWeight() map[uint16]float64 {
	sums := map[uint16]float64{}
	counts := map[uint16]int{}
	for _, s := range r.Sessions {
		if s.Err != nil {
			continue
		}
		sums[s.Weight] += s.Bandwidth
		counts[s.Weight]++
	}
	out := make(map[uint16]float64, len(sums))
	for w, sum := range sums {
		out[w] = sum / float64(counts[w])
	}
	return out
}

// String renders the report as the summary block lsl-exp prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions %d (%d completed, %d failed), %.1f MB delivered in %v wall\n",
		len(r.Sessions), r.Completed, r.Failed, float64(r.Bytes)/1e6, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "completion latency (emulated): p50 %v  p95 %v  p99 %v\n",
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.P99.Round(time.Millisecond))
	fmt.Fprintf(&b, "fairness: Jain index %.3f over per-session throughput\n", r.Jain)
	weights := r.ByWeight()
	if len(weights) > 1 {
		ws := make([]int, 0, len(weights))
		for w := range weights {
			ws = append(ws, int(w))
		}
		sort.Ints(ws)
		for _, w := range ws {
			fmt.Fprintf(&b, "  weight %d: mean %s\n", w, formatRate(weights[uint16(w)]))
		}
	}
	return b.String()
}

// formatRate renders bytes/s in the largest unit that keeps two
// significant decimals, so slow emulated sessions don't all print as
// 0.00 MB/s.
func formatRate(bps float64) string {
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.2f MB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f KB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}
