// Package docs enforces the repository's documentation contract: every
// exported identifier in the audited packages carries a doc comment,
// and every relative link in the markdown documentation resolves to a
// file that exists. The checks run as ordinary tests (and in CI's docs
// job), so documentation rot fails the build like any other regression.
package docs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// MissingDocs parses the Go package in dir (test files excluded) and
// returns one "file:line: identifier" entry per exported declaration
// that has no doc comment. For grouped const/var/type declarations a
// doc comment on the group documents every member, matching godoc's
// rendering; a trailing line comment on the member also counts.
func MissingDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, f := range sortedFiles(pkg.Files) {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil && !exportedReceiver(d.Recv) {
						continue
					}
					report(d.Pos(), d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), s.Name.Name)
							}
						case *ast.ValueSpec:
							if d.Doc != nil || s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// sortedFiles returns the package's files in deterministic path order so
// failure output is stable across runs.
func sortedFiles(files map[string]*ast.File) []*ast.File {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	// insertion sort: the file count is tiny
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && paths[j] < paths[j-1]; j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
		}
	}
	out := make([]*ast.File, len(paths))
	for i, p := range paths {
		out[i] = files[p]
	}
	return out
}

// exportedReceiver reports whether a method's receiver names an
// exported type; methods on unexported types are internal API and
// exempt from the doc requirement.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// BrokenLinks scans a markdown file for relative links whose target
// does not exist on disk, returning one "file: target" entry per
// broken link. Absolute URLs (a scheme prefix) and pure in-page
// anchors are skipped; a "#section" suffix on a file link is stripped
// before the existence check (anchor names are not validated).
func BrokenLinks(mdPath string) ([]string, error) {
	raw, err := os.ReadFile(mdPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(mdPath)
	var broken []string
	for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			broken = append(broken, fmt.Sprintf("%s: %s", filepath.Base(mdPath), m[1]))
		}
	}
	return broken, nil
}
