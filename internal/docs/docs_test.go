package docs

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory (internal/docs)
// to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("no go.mod two levels above %s", wd)
	}
	return root
}

// TestExportedIdentifiersAreDocumented is the godoc-coverage gate for
// the protocol-facing and data-path packages: a missing doc comment on
// an exported identifier in wire, schedule, retry, graph, ctl, obs,
// fairshare, loadgen, depot, cache, core, or lsl fails the build.
func TestExportedIdentifiersAreDocumented(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range []string{"wire", "schedule", "retry", "graph", "ctl", "obs", "fairshare", "loadgen", "depot", "cache", "core", "lsl"} {
		t.Run(pkg, func(t *testing.T) {
			missing, err := MissingDocs(filepath.Join(root, "internal", pkg))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range missing {
				t.Errorf("internal/%s/%s has no doc comment", pkg, m)
			}
		})
	}
}

// TestMarkdownLinksResolve checks every relative link in the top-level
// documentation and docs/ tree against the filesystem.
func TestMarkdownLinksResolve(t *testing.T) {
	root := repoRoot(t)
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err == nil {
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".md" {
				files = append(files, filepath.Join("docs", e.Name()))
			}
		}
	}
	for _, f := range files {
		path := filepath.Join(root, f)
		if _, err := os.Stat(path); err != nil {
			continue // optional file
		}
		broken, err := BrokenLinks(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range broken {
			t.Errorf("broken link in %s", b)
		}
	}
}

// TestCheckerCatchesMissingDocs guards the checker itself: a synthetic
// package with documented and undocumented exported identifiers must
// yield exactly the undocumented ones.
func TestCheckerCatchesMissingDocs(t *testing.T) {
	dir := t.TempDir()
	src := `package sample

// Documented has a doc comment.
func Documented() {}

func Undocumented() {}

// Grouped constants share the block comment.
const (
	A = 1
	B = 2
)

var Naked = 3

type Bare struct{}

func (Bare) Method() {}

type hidden struct{}

func (hidden) Exported() {}
`
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := MissingDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Undocumented": false, "Naked": false, "Bare": false, "Method": false}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v, want exactly %d entries", missing, len(want))
	}
	for _, m := range missing {
		found := false
		for name := range want {
			if len(m) >= len(name) && m[len(m)-len(name):] == name {
				want[name], found = true, true
			}
		}
		if !found {
			t.Errorf("unexpected finding %q", m)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("checker missed %s", name)
		}
	}
}

// TestCheckerCatchesBrokenLinks guards the link checker with a
// synthetic markdown file.
func TestCheckerCatchesBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "real.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := `[ok](real.md) [anchored](real.md#sec) [web](https://example.com/x) [page](#local) [gone](missing.md)`
	path := filepath.Join(dir, "index.md")
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := BrokenLinks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0] != "index.md: missing.md" {
		t.Fatalf("broken = %v, want exactly [index.md: missing.md]", broken)
	}
}
