package emu

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func pairOn(t *testing.T, n *Network, from, to string) (client, server_ io.ReadWriteCloser) {
	t.Helper()
	ln, err := n.Listen(to)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type res struct {
		c   io.ReadWriteCloser
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	c, err := n.Dial(from, to)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return c, r.c
}

func TestRoundTripBytes(t *testing.T) {
	n := NewNetwork(0.001)
	client, server := pairOn(t, n, "a", "b:1")
	msg := []byte("hello across the emulated WAN")
	go func() {
		client.Write(msg)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestBidirectional(t *testing.T) {
	n := NewNetwork(0.001)
	client, server := pairOn(t, n, "a", "b:1")
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(server, buf)
		server.Write(bytes.ToUpper(buf))
	}()
	client.Write([]byte("howdy"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HOWDY" {
		t.Fatalf("reply = %q", buf)
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	n := NewNetwork(0.0001)
	n.SetLink("a", "b", LinkProps{Latency: 10 * time.Millisecond, Window: 64 << 10})
	client, server := pairOn(t, n, "a", "b:1")
	const size = 1 << 20
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i * 31)
	}
	go func() {
		client.Write(src)
		client.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestLatencyObserved(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("a", "b", LinkProps{Latency: 30 * time.Millisecond})
	client, server := pairOn(t, n, "a", "b:1")
	start := time.Now()
	go client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("one byte arrived in %v, want >= ~30ms", elapsed)
	}
}

func TestDialHandshakeCostsRTT(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("a", "b", LinkProps{Latency: 20 * time.Millisecond})
	ln, err := n.Listen("b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			defer c.Close()
		}
	}()
	start := time.Now()
	c, err := n.Dial("a", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("dial took %v, want >= ~40ms (one RTT)", elapsed)
	}
}

func TestRatePacing(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("a", "b", LinkProps{Rate: 1e6, Window: 1 << 20}) // 1 MB/s
	client, server := pairOn(t, n, "a", "b:1")
	const size = 200 << 10 // 200 KB should take ~0.2s
	go func() {
		client.Write(make([]byte, size))
		client.Close()
	}()
	start := time.Now()
	if _, err := io.Copy(io.Discard, server); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("rate not enforced: %v for 200KB at 1MB/s", elapsed)
	}
	if elapsed > 600*time.Millisecond {
		t.Fatalf("rate far too slow: %v", elapsed)
	}
}

func TestWindowBackpressure(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("a", "b", LinkProps{Window: 4 << 10})
	client, server := pairOn(t, n, "a", "b:1")

	// Writing far beyond the window must block until the reader drains.
	done := make(chan struct{})
	go func() {
		client.Write(make([]byte, 64<<10))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("write completed without reader; window not enforced")
	case <-time.After(50 * time.Millisecond):
	}
	go io.Copy(io.Discard, server)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("write never completed after reader drained")
	}
}

func TestCloseGivesEOF(t *testing.T) {
	n := NewNetwork(0.001)
	client, server := pairOn(t, n, "a", "b:1")
	client.Write([]byte("bye"))
	client.Close()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bye" {
		t.Fatalf("got %q", got)
	}
	// Writes after close fail.
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestReadDeadline(t *testing.T) {
	n := NewNetwork(0.001)
	client, server := pairOn(t, n, "a", "b:1")
	defer client.Close()
	sc := server.(interface{ SetReadDeadline(time.Time) error })
	sc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err := server.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline fired far too late")
	}
}

func TestWriteDeadlineOnFullWindow(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("a", "b", LinkProps{Window: 1 << 10})
	client, _ := pairOn(t, n, "a", "b:1")
	wc := client.(interface{ SetWriteDeadline(time.Time) error })
	wc.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := client.Write(make([]byte, 1<<20))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestListenErrors(t *testing.T) {
	n := NewNetwork(0.001)
	if _, err := n.Listen("not-an-address"); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); err == nil {
		t.Fatal("duplicate listen accepted")
	}
}

func TestDialErrors(t *testing.T) {
	n := NewNetwork(0.001)
	if _, err := n.Dial("a", "nowhere:1"); err == nil {
		t.Fatal("dial to missing listener succeeded")
	}
	if _, err := n.Dial("a", "garbage"); err == nil {
		t.Fatal("dial to bad address succeeded")
	}
}

func TestListenerClose(t *testing.T) {
	n := NewNetwork(0.001)
	ln, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	if err := <-done; err == nil {
		t.Fatal("Accept on closed listener should fail")
	}
	// The address is free again.
	if _, err := n.Listen("a:1"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	// Double close is safe.
	ln.Close()
}

func TestAddrs(t *testing.T) {
	n := NewNetwork(0.001)
	client, server := pairOn(t, n, "clienthost", "serverhost:9")
	cc := client.(net.Conn)
	sc := server.(net.Conn)
	if cc.RemoteAddr().String() != "serverhost:9" {
		t.Fatalf("client remote = %q", cc.RemoteAddr())
	}
	if cc.LocalAddr().Network() != "emu" {
		t.Fatalf("network = %q", cc.LocalAddr().Network())
	}
	if sc.LocalAddr().String() != "serverhost:9" {
		t.Fatalf("server local = %q", sc.LocalAddr())
	}
}

func TestConcurrentConnections(t *testing.T) {
	n := NewNetwork(0.0005)
	n.SetDefaultLink(LinkProps{Latency: 10 * time.Millisecond, Window: 32 << 10})
	ln, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, c)
				c.Close()
			}()
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("cli", "srv:1")
			if err != nil {
				t.Error(err)
				return
			}
			c.Write(make([]byte, 100<<10))
			c.Close()
		}(i)
	}
	wg.Wait()
}

func TestSetDeadlineBothDirections(t *testing.T) {
	n := NewNetwork(0) // non-positive scale defaults to 1
	client, _ := pairOn(t, n, "a", "b:1")
	cc := client.(net.Conn)
	if err := cc.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := cc.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read: %v", err)
	}
}

func TestListenerAddr(t *testing.T) {
	n := NewNetwork(0.001)
	ln, err := n.Listen("somehost:42")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Addr().String() != "somehost:42" || ln.Addr().Network() != "emu" {
		t.Fatalf("addr = %v/%v", ln.Addr().Network(), ln.Addr())
	}
}
