// Package emu provides an in-memory emulated wide-area network for the
// real (goroutine-based) LSL protocol stack: net.Conn connections with
// propagation latency, token-bucket rate pacing, and a bounded
// in-flight window that exerts back-pressure on writers.
//
// The paper's depots ran over real WAN TCP; this package supplies the
// "latency emulation" a single-machine reproduction needs so the
// protocol code (internal/lsl, internal/depot) exercises the same
// blocking, buffering and cascade behaviour it would against real
// sockets. Fidelity note: the window here is fixed (no slow start or
// loss), because protocol correctness is what runs on this substrate;
// the performance dynamics live in internal/tcpsim.
package emu

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// LinkProps describes one direction of an emulated path.
type LinkProps struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Rate is the serialization rate in bytes/sec (0 = unlimited).
	Rate float64
	// Window bounds the bytes in flight (written but not yet read);
	// writers block when it is full. 0 selects DefaultWindow.
	Window int
}

// DefaultWindow is the in-flight byte limit used when LinkProps.Window
// is zero, matching the paper's PlanetLab 64 KB socket buffers.
const DefaultWindow = 64 << 10

// Network is a registry of emulated hosts, listeners and link
// properties. The zero value is unusable; construct with NewNetwork.
type Network struct {
	mu sync.Mutex
	// TimeScale multiplies every latency, letting tests run a "wide
	// area" network in microseconds. 1.0 emulates in real time.
	timeScale   float64
	listeners   map[string]*listener
	links       map[[2]string]LinkProps
	defaultLink LinkProps
}

// NewNetwork returns an empty network whose latencies are scaled by
// timeScale (e.g. 0.001 runs a 40 ms link as 40 µs). Non-positive
// scales default to 1.
func NewNetwork(timeScale float64) *Network {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &Network{
		timeScale: timeScale,
		listeners: make(map[string]*listener),
		links:     make(map[[2]string]LinkProps),
	}
}

// SetDefaultLink sets the properties used for pairs with no explicit
// link.
func (n *Network) SetDefaultLink(p LinkProps) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLink = p
}

// SetLink sets the properties of the path between hosts a and b
// (symmetric). Host names are the host parts of dial/listen addresses.
func (n *Network) SetLink(a, b string, p LinkProps) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{a, b}] = p
	n.links[[2]string{b, a}] = p
}

func (n *Network) linkFor(a, b string) LinkProps {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.links[[2]string{a, b}]; ok {
		return p
	}
	return n.defaultLink
}

func (p LinkProps) scaled(timeScale float64) LinkProps {
	p.Latency = time.Duration(float64(p.Latency) * timeScale)
	if p.Window == 0 {
		p.Window = DefaultWindow
	}
	return p
}

// addr is the net.Addr of emulated endpoints.
type addr string

func (a addr) Network() string { return "emu" }
func (a addr) String() string  { return string(a) }

// listener implements net.Listener.
type listener struct {
	net     *Network
	address string
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

// Listen registers a listener at address ("host:port").
func (n *Network) Listen(address string) (net.Listener, error) {
	if _, _, err := net.SplitHostPort(address); err != nil {
		return nil, fmt.Errorf("emu: listen %q: %w", address, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[address]; exists {
		return nil, fmt.Errorf("emu: listen %q: address in use", address)
	}
	l := &listener{
		net:     n,
		address: address,
		backlog: make(chan net.Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[address] = l
	return l, nil
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, errors.New("emu: listener closed")
	}
}

// Close implements net.Listener.
func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.address)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return addr(l.address) }

// Dial connects from the named local host to a listening address,
// applying the link properties registered between the two hosts. The
// connection-establishment handshake costs one round trip.
func (n *Network) Dial(fromHost, to string) (net.Conn, error) {
	toHost, _, err := net.SplitHostPort(to)
	if err != nil {
		return nil, fmt.Errorf("emu: dial %q: %w", to, err)
	}
	n.mu.Lock()
	l, ok := n.listeners[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("emu: dial %q: connection refused", to)
	}
	props := n.linkFor(fromHost, toHost).scaled(n.timeScale)

	// One emulated round trip of connection establishment.
	time.Sleep(2 * props.Latency)

	clientToServer := newShapedPipe(props)
	serverToClient := newShapedPipe(props)
	local := addr(fromHost + ":0")
	remote := addr(to)
	client := &conn{r: serverToClient, w: clientToServer, local: local, remote: remote}
	server := &conn{r: clientToServer, w: serverToClient, local: remote, remote: local}
	select {
	case l.backlog <- server:
	case <-l.done:
		return nil, fmt.Errorf("emu: dial %q: connection refused (listener closed)", to)
	}
	return client, nil
}

// conn glues two unidirectional shaped pipes into a net.Conn.
type conn struct {
	r, w          *shapedPipe
	local, remote net.Addr
}

func (c *conn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *conn) Write(p []byte) (int, error) { return c.w.Write(p) }

func (c *conn) Close() error {
	c.w.CloseWrite()
	c.r.CloseRead()
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.r.setReadDeadline(t)
	c.w.setWriteDeadline(t)
	return nil
}
func (c *conn) SetReadDeadline(t time.Time) error  { c.r.setReadDeadline(t); return nil }
func (c *conn) SetWriteDeadline(t time.Time) error { c.w.setWriteDeadline(t); return nil }

var _ net.Conn = (*conn)(nil)

// ErrClosed is returned by writes on a closed pipe.
var ErrClosed = errors.New("emu: connection closed")

// segment is a chunk of bytes in flight with its delivery time.
type segment struct {
	data    []byte
	readyAt time.Time
}

// shapedPipe is a unidirectional byte stream with latency, rate pacing
// and a bounded in-flight window.
type shapedPipe struct {
	props LinkProps

	mu       sync.Mutex
	cond     *sync.Cond
	segs     []segment
	inFlight int
	nextFree time.Time // rate-pacing horizon
	wclosed  bool
	rclosed  bool

	readDeadline  time.Time
	writeDeadline time.Time
}

func newShapedPipe(props LinkProps) *shapedPipe {
	p := &shapedPipe{props: props}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// maxSegment bounds chunking so pacing is smooth.
const maxSegment = 32 << 10

func (p *shapedPipe) Write(buf []byte) (int, error) {
	total := 0
	for len(buf) > 0 {
		chunk := buf
		if len(chunk) > maxSegment {
			chunk = chunk[:maxSegment]
		}
		n, err := p.writeSegment(chunk)
		total += n
		if err != nil {
			return total, err
		}
		buf = buf[n:]
	}
	return total, nil
}

func (p *shapedPipe) writeSegment(chunk []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.wclosed || p.rclosed {
			return 0, ErrClosed
		}
		if dl := p.writeDeadline; !dl.IsZero() && !time.Now().Before(dl) {
			return 0, os.ErrDeadlineExceeded
		}
		if p.inFlight+len(chunk) <= p.props.Window || p.inFlight == 0 {
			break
		}
		p.waitLocked(p.writeDeadline)
	}
	now := time.Now()
	start := now
	if p.nextFree.After(start) {
		start = p.nextFree
	}
	var tx time.Duration
	if p.props.Rate > 0 {
		tx = time.Duration(float64(len(chunk)) / p.props.Rate * float64(time.Second))
	}
	p.nextFree = start.Add(tx)
	seg := segment{
		data:    append([]byte(nil), chunk...),
		readyAt: start.Add(tx + p.props.Latency),
	}
	p.segs = append(p.segs, seg)
	p.inFlight += len(chunk)
	p.cond.Broadcast()
	return len(chunk), nil
}

func (p *shapedPipe) Read(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rclosed {
			return 0, ErrClosed
		}
		if dl := p.readDeadline; !dl.IsZero() && !time.Now().Before(dl) {
			return 0, os.ErrDeadlineExceeded
		}
		if len(p.segs) > 0 {
			head := &p.segs[0]
			now := time.Now()
			if !head.readyAt.After(now) {
				n := copy(buf, head.data)
				head.data = head.data[n:]
				p.inFlight -= n
				if len(head.data) == 0 {
					p.segs = p.segs[1:]
				}
				p.cond.Broadcast() // window space freed
				return n, nil
			}
			// Head not yet delivered: wait until its arrival (or the
			// read deadline, whichever is first).
			dl := head.readyAt
			if rd := p.readDeadline; !rd.IsZero() && rd.Before(dl) {
				dl = rd
			}
			p.waitLocked(dl)
			continue
		}
		if p.wclosed {
			return 0, io.EOF
		}
		p.waitLocked(p.readDeadline)
	}
}

// waitLocked waits on the pipe's condition variable, additionally
// waking at the given deadline when it is non-zero.
func (p *shapedPipe) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		p.cond.Wait()
		return
	}
	d := time.Until(deadline)
	if d <= 0 {
		return
	}
	t := time.AfterFunc(d, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	p.cond.Wait()
	t.Stop()
}

// CloseWrite marks the producer side closed; readers drain then see EOF.
func (p *shapedPipe) CloseWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wclosed = true
	p.cond.Broadcast()
}

// CloseRead shuts the consumer side; subsequent reads and pending
// writes fail.
func (p *shapedPipe) CloseRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rclosed = true
	p.cond.Broadcast()
}

func (p *shapedPipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readDeadline = t
	p.cond.Broadcast()
}

func (p *shapedPipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeDeadline = t
	p.cond.Broadcast()
}
