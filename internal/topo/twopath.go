package topo

import "github.com/netlogistics/lsl/internal/simtime"

// Canonical host names of the Section 3 testbed.
const (
	UCSB    = "ash.ucsb.edu"
	Denver  = "depot.denver.pop"
	Houston = "depot.houston.pop"
	UIUC    = "bell.uiuc.edu"
	UF      = "gator.ufl.edu"
)

const (
	mbit = 1e6 / 8 // bytes/sec per Mbit/s
	kb64 = int64(64 << 10)
	mb8  = int64(8 << 20)
)

// TwoPath builds the paper's Section 3 testbed: UCSB transferring to
// UIUC through a depot in Denver and to UF through a depot in Houston,
// with the RTTs the paper measured from TCP acknowledgments:
//
//	UCSB to UF       87 ms
//	UCSB to Houston  68 ms
//	Houston to UF    34 ms
//	UCSB to UIUC     70 ms
//	UCSB to Denver   46 ms
//	Denver to UIUC   45 ms
//
// Losses and capacities are calibrated so the direct and relayed
// steady-state bandwidths land in the paper's observed ranges (Figures
// 2 and 3): tens of Mbit/s direct, roughly 2-2.5× that through the
// depots. The direct paths' loss rates are set independently of the
// segment losses because the default Internet route between the end
// sites is not the route through the depot.
func TwoPath() *Topology {
	hosts := []Host{
		{Name: UCSB, Site: "ucsb.edu", SndBuf: mb8, RcvBuf: mb8},
		{Name: Denver, Site: "denver.pop", SndBuf: mb8, RcvBuf: mb8,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 32 << 20},
		{Name: Houston, Site: "houston.pop", SndBuf: mb8, RcvBuf: mb8,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 32 << 20},
		{Name: UIUC, Site: "uiuc.edu", SndBuf: mb8, RcvBuf: mb8},
		{Name: UF, Site: "ufl.edu", SndBuf: mb8, RcvBuf: mb8},
	}
	t := newTopology("twopath", hosts)
	t.MeasureNoise = 0.10
	t.LoadNoise = 0.05

	ucsb := t.MustHost(UCSB)
	den := t.MustHost(Denver)
	hou := t.MustHost(Houston)
	uiuc := t.MustHost(UIUC)
	uf := t.MustHost(UF)

	ms := simtime.Milliseconds

	// The UIUC path. The Denver→UIUC segment is the chain bottleneck
	// (64 Mbit/s capacity), so sublink 1 races one depot pipeline ahead
	// — the Figure 5 knee.
	t.SetLink(ucsb, den, Link{RTT: ms(46), Capacity: 100 * mbit, Loss: 4e-6})
	t.SetLink(den, uiuc, Link{RTT: ms(45), Capacity: 64 * mbit, Loss: 9e-6})
	t.SetLink(ucsb, uiuc, Link{RTT: ms(70), Capacity: 64 * mbit, Loss: 7.0e-5})

	// The UF path. Here the first segment (UCSB→Houston) is the
	// bottleneck, so the two sublink traces track closely — Figure 4.
	t.SetLink(ucsb, hou, Link{RTT: ms(68), Capacity: 128 * mbit, Loss: 4e-6})
	t.SetLink(hou, uf, Link{RTT: ms(34), Capacity: 128 * mbit, Loss: 4e-6})
	t.SetLink(ucsb, uf, Link{RTT: ms(87), Capacity: 128 * mbit, Loss: 4.0e-5})

	// Remaining pairs, not exercised by the Section 3 experiments but
	// present because the scheduling graphs are fully connected.
	t.SetLink(den, hou, Link{RTT: ms(28), Capacity: 256 * mbit, Loss: 2e-6})
	t.SetLink(den, uf, Link{RTT: ms(60), Capacity: 100 * mbit, Loss: 1.0e-5})
	t.SetLink(hou, uiuc, Link{RTT: ms(30), Capacity: 100 * mbit, Loss: 8e-6})
	t.SetLink(uiuc, uf, Link{RTT: ms(45), Capacity: 64 * mbit, Loss: 1.6e-5})

	return t
}

// PaperRTTPairs lists the Section 3 RTT table rows in paper order.
func PaperRTTPairs() [][2]string {
	return [][2]string{
		{UCSB, UF},
		{UCSB, Houston},
		{Houston, UF},
		{UCSB, UIUC},
		{UCSB, Denver},
		{Denver, UIUC},
	}
}
