package topo

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
)

func TestTwoPathRTTsMatchPaper(t *testing.T) {
	tp := TwoPath()
	cases := []struct {
		a, b   string
		wantMS float64
	}{
		{UCSB, UF, 87},
		{UCSB, Houston, 68},
		{Houston, UF, 34},
		{UCSB, UIUC, 70},
		{UCSB, Denver, 46},
		{Denver, UIUC, 45},
	}
	for _, c := range cases {
		i, j := tp.MustHost(c.a), tp.MustHost(c.b)
		gotMS := tp.Link(i, j).RTT.Seconds() * 1e3
		if diff := gotMS - c.wantMS; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("RTT %s-%s = %vms, want %vms", c.a, c.b, gotMS, c.wantMS)
		}
	}
}

func TestTwoPathSymmetric(t *testing.T) {
	tp := TwoPath()
	for i := 0; i < tp.N(); i++ {
		for j := 0; j < tp.N(); j++ {
			if tp.Link(i, j) != tp.Link(j, i) {
				t.Fatalf("asymmetric link %d-%d", i, j)
			}
		}
	}
}

func TestTwoPathFullyConnected(t *testing.T) {
	tp := TwoPath()
	for i := 0; i < tp.N(); i++ {
		for j := 0; j < tp.N(); j++ {
			if i == j {
				continue
			}
			if !tp.Link(i, j).Valid() {
				t.Fatalf("missing link %s-%s", tp.Hosts[i].Name, tp.Hosts[j].Name)
			}
		}
	}
}

func TestTwoPathDepots(t *testing.T) {
	tp := TwoPath()
	depots := tp.DepotCandidates()
	if len(depots) != 2 {
		t.Fatalf("depots = %d, want Denver and Houston", len(depots))
	}
	for _, d := range depots {
		h := tp.Hosts[d]
		if !strings.Contains(h.Name, "pop") {
			t.Fatalf("unexpected depot host %s", h.Name)
		}
		if h.PipelineBytes != 32<<20 {
			t.Fatalf("depot pipeline = %d, want 32MB", h.PipelineBytes)
		}
	}
}

func TestHostIndexAndMustHost(t *testing.T) {
	tp := TwoPath()
	if _, ok := tp.HostIndex("nope"); ok {
		t.Fatal("bogus host resolved")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustHost should panic on unknown host")
		}
	}()
	tp.MustHost("nope")
}

func TestPathConfigBuffers(t *testing.T) {
	tp := TwoPath()
	cfg := tp.PathConfig(tp.MustHost(UCSB), tp.MustHost(UIUC))
	if cfg.SndBuf != 8<<20 || cfg.RcvBuf != 8<<20 {
		t.Fatalf("buffers = %d/%d", cfg.SndBuf, cfg.RcvBuf)
	}
	if cfg.RTT.Seconds() != 0.070 {
		t.Fatalf("rtt = %v", cfg.RTT)
	}
}

func TestPathConfigAppliesRateLimitAndNodeBW(t *testing.T) {
	hosts := []Host{
		{Name: "a", Site: "a", SndBuf: 1 << 20, RcvBuf: 1 << 20, RateLimit: 1e6},
		{Name: "b", Site: "b", SndBuf: 1 << 20, RcvBuf: 1 << 20, NodeBW: 2e6},
	}
	tt := newTopology("t", hosts)
	tt.SetLink(0, 1, Link{RTT: 0.01, Capacity: 1e8, Loss: 0})
	cfg := tt.PathConfig(0, 1)
	if cfg.Capacity != 1e6 {
		t.Fatalf("capacity = %v, want rate limit 1e6", cfg.Capacity)
	}
}

func TestMeasuredBWIgnoresRateLimit(t *testing.T) {
	hosts := []Host{
		{Name: "a", Site: "a", SndBuf: 8 << 20, RcvBuf: 8 << 20, RateLimit: 1e5},
		{Name: "b", Site: "b", SndBuf: 8 << 20, RcvBuf: 8 << 20},
	}
	tt := newTopology("t", hosts)
	tt.SetLink(0, 1, Link{RTT: 0.01, Capacity: 1e7, Loss: 0})
	bw := tt.MeasuredBW(0, 1, nil)
	if bw <= 1e6 {
		t.Fatalf("measured bw %v should not see the rate limit", bw)
	}
}

func TestMeasuredBWSeesNodeBW(t *testing.T) {
	hosts := []Host{
		{Name: "a", Site: "a", SndBuf: 8 << 20, RcvBuf: 8 << 20, NodeBW: 5e5},
		{Name: "b", Site: "b", SndBuf: 8 << 20, RcvBuf: 8 << 20},
	}
	tt := newTopology("t", hosts)
	tt.SetLink(0, 1, Link{RTT: 0.01, Capacity: 1e7, Loss: 0})
	if bw := tt.MeasuredBW(0, 1, nil); bw > 5e5*1.01 {
		t.Fatalf("measured bw %v should be capped by NodeBW", bw)
	}
}

func TestMeasuredBWNoise(t *testing.T) {
	tp := TwoPath()
	rng := rand.New(rand.NewSource(1))
	i, j := tp.MustHost(UCSB), tp.MustHost(UF)
	var lo, hi float64
	for k := 0; k < 50; k++ {
		bw := tp.MeasuredBW(i, j, rng)
		if lo == 0 || bw < lo {
			lo = bw
		}
		if bw > hi {
			hi = bw
		}
	}
	if hi/lo < 1.05 {
		t.Fatalf("noise too small: lo=%v hi=%v", lo, hi)
	}
	if hi/lo > 20 {
		t.Fatalf("noise clamp failed: lo=%v hi=%v", lo, hi)
	}
}

func TestDirectChainRuns(t *testing.T) {
	tp := TwoPath()
	eng := netsim.New(1)
	rng := rand.New(rand.NewSource(2))
	chain := tp.DirectChain(tp.MustHost(UCSB), tp.MustHost(UIUC), 1<<20, rng, false)
	res, err := pipesim.Run(eng, chain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bandwidth <= 0 {
		t.Fatalf("bandwidth = %v", res.Bandwidth)
	}
}

func TestRelayChainValidation(t *testing.T) {
	tp := TwoPath()
	rng := rand.New(rand.NewSource(2))
	if _, err := tp.RelayChain([]int{0}, 1<<20, rng, false); err == nil {
		t.Fatal("single-host path accepted")
	}
	// Relay through a non-depot host must fail.
	path := []int{tp.MustHost(UCSB), tp.MustHost(UIUC), tp.MustHost(UF)}
	if _, err := tp.RelayChain(path, 1<<20, rng, false); err == nil {
		t.Fatal("relay through non-depot accepted")
	}
}

func TestRelayChainProperties(t *testing.T) {
	tp := TwoPath()
	rng := rand.New(rand.NewSource(2))
	path := []int{tp.MustHost(UCSB), tp.MustHost(Denver), tp.MustHost(UIUC)}
	chain, err := tp.RelayChain(path, 4<<20, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain.Hops) != 2 || len(chain.Depots) != 1 {
		t.Fatalf("chain shape: %d hops, %d depots", len(chain.Hops), len(chain.Depots))
	}
	if chain.Depots[0].PipelineBytes != 32<<20 {
		t.Fatalf("depot pipeline = %d", chain.Depots[0].PipelineBytes)
	}
	eng := netsim.New(1)
	res, err := pipesim.Run(eng, chain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces == nil {
		t.Fatal("capture requested but no traces")
	}
}

func TestRTTTable(t *testing.T) {
	tp := TwoPath()
	rows, err := tp.RTTTable(PaperRTTPairs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0], "87ms") {
		t.Fatalf("first row = %q", rows[0])
	}
	if _, err := tp.RTTTable([][2]string{{"nope", UCSB}}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestHostNames(t *testing.T) {
	tp := TwoPath()
	names := tp.HostNames()
	if len(names) != tp.N() {
		t.Fatalf("names = %d", len(names))
	}
	if names[0] != tp.Hosts[0].Name {
		t.Fatal("order mismatch")
	}
}

func TestLoadDriftWalk(t *testing.T) {
	tp := TwoPath()
	// Disabled by default: factors are identity.
	if tp.loadFactor(0) != 1 {
		t.Fatal("load factor should default to 1")
	}
	rng := rand.New(rand.NewSource(1))
	tp.AdvanceLoad(rng) // no-op when disabled
	if tp.loadFactor(0) != 1 {
		t.Fatal("AdvanceLoad should be a no-op when drift is disabled")
	}

	tp.EnableLoadDrift(0.2)
	for i := 0; i < 100; i++ {
		tp.AdvanceLoad(rng)
	}
	moved := false
	for i := 0; i < tp.N(); i++ {
		f := tp.loadFactor(i)
		if f < 0.2 || f > 3 {
			t.Fatalf("load factor %v escaped clamp", f)
		}
		if f != 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("drift never moved any factor")
	}
}

func TestLoadDriftAffectsPathsAndMeasurements(t *testing.T) {
	hosts := []Host{
		{Name: "a", Site: "a", SndBuf: 8 << 20, RcvBuf: 8 << 20, NodeBW: 1e6},
		{Name: "b", Site: "b", SndBuf: 8 << 20, RcvBuf: 8 << 20},
	}
	tt := newTopology("drift", hosts)
	tt.SetLink(0, 1, Link{RTT: 0.01, Capacity: 1e8, Loss: 0})
	tt.EnableLoadDrift(0.3)
	// Force a's factor low by walking with a seed until it departs 1.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		tt.AdvanceLoad(rng)
	}
	f := tt.loadFactor(0)
	if f == 1 {
		t.Skip("walk landed exactly on 1")
	}
	cfg := tt.PathConfig(0, 1)
	want := 1e6 * f
	if diff := cfg.Capacity - want; diff > 1 || diff < -1 {
		t.Fatalf("path capacity %v, want NodeBW·factor %v", cfg.Capacity, want)
	}
	bw := tt.MeasuredBW(0, 1, nil)
	if bw > want*1.01 {
		t.Fatalf("measured %v should be capped by drifted NodeBW %v", bw, want)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", []Host{{Name: "a", Site: "s"}, {Name: "a", Site: "s"}}); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := New("x", []Host{{Name: "", Site: "s"}}); err == nil {
		t.Fatal("empty host name accepted")
	}
	tp, err := New("x", []Host{{Name: "a", Site: "s"}, {Name: "b", Site: "s"}})
	if err != nil || tp.N() != 2 {
		t.Fatalf("valid build failed: %v", err)
	}
}
