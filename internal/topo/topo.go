// Package topo models evaluation testbeds as performance topologies:
// hosts grouped into sites, a fully connected matrix of path properties
// (RTT, capacity, loss), and per-host properties (socket buffers, depot
// forwarding capacity, administrative rate limits).
//
// Three generators reproduce the paper's environments:
//
//   - TwoPath: the Section 3 testbed — UCSB sending to UIUC via a Denver
//     depot and to UF via a Houston depot, with the paper's measured RTTs.
//   - PlanetLab: the Section 4.2 aggregate testbed — 142 hosts at
//     university sites of 1-3 machines, small socket buffers, virtualized
//     (load-noisy) forwarding, and administratively rate-limited nodes.
//   - AbileneCore: the Figure 11 testbed — 10 university sites whose
//     traffic crosses a backbone of core POPs that host well-provisioned
//     depots.
//
// The paper ran on real wide-area paths; here every path is described by
// the same three parameters a real path presents to TCP, so the
// simulated transfers exhibit the same RTT- and loss-driven behaviour.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpmodel"
	"github.com/netlogistics/lsl/internal/tcpsim"
)

// Link is the TCP-visible description of one host-pair path.
type Link struct {
	RTT      simtime.Duration
	Capacity float64 // bottleneck rate, bytes/sec
	Loss     float64 // per-packet loss probability
}

// Valid reports whether the link is usable.
func (l Link) Valid() bool {
	return l.RTT > 0 && l.Capacity > 0 && l.Loss >= 0 && !math.IsNaN(l.Loss)
}

// Host is one machine in the testbed.
type Host struct {
	Name string
	Site string
	// SndBuf and RcvBuf are the TCP socket buffer sizes. PlanetLab
	// hosts carry the paper's crippling 64 KB; depot hosts carry 8 MB.
	SndBuf int64
	RcvBuf int64
	// Depot marks hosts that run a forwarding depot.
	Depot bool
	// ForwardRate is the rate at which this host can relay bytes
	// between connections when used as a depot, bytes/sec.
	ForwardRate float64
	// PipelineBytes is the depot buffering through this host (0 selects
	// pipesim.DefaultDepotPipeline).
	PipelineBytes int64
	// RateLimit is an administrative cap (bytes/sec) applied to bulk
	// transfers involving this host but invisible to small measurement
	// probes — the paper's "administrative, rather than technical,
	// limits". Zero means none.
	RateLimit float64
	// NodeBW is the host's effective TCP throughput ceiling from CPU
	// and virtualization ("each user is presented with a somewhat
	// virtualized machine ... this virtualization decreases the
	// bandwidth through the nodes"). It caps transfers and is visible
	// to measurements. Zero means unlimited.
	NodeBW float64
}

// Topology is a complete testbed description.
type Topology struct {
	Name  string
	Hosts []Host
	links []Link // row-major n×n, symmetric, diagonal zero

	index map[string]int

	// MeasureNoise is the lognormal σ applied to NWS-style bandwidth
	// measurements.
	MeasureNoise float64
	// LoadNoise is the lognormal σ applied per transfer to capacities
	// and depot forwarding rates, modelling fast load fluctuation.
	LoadNoise float64

	// loadFactors, when non-nil, are slowly drifting per-host load
	// multipliers (AR(1) walk advanced by AdvanceLoad). They model the
	// diurnal/secular load changes that make stale schedules rot —
	// measurements and transfers both see the current factors, so a
	// planner that replans on fresh data tracks them and a static plan
	// does not.
	loadFactors []float64
	// LoadDrift is the per-step lognormal σ of the load walk.
	LoadDrift float64
}

// EnableLoadDrift turns on the slowly-varying per-host load walk with
// the given per-step σ (e.g. 0.05). Factors start at 1.
func (t *Topology) EnableLoadDrift(sigma float64) {
	t.LoadDrift = sigma
	t.loadFactors = make([]float64, t.N())
	for i := range t.loadFactors {
		t.loadFactors[i] = 1
	}
}

// AdvanceLoad moves every host's load factor one AR(1) step: a
// lognormal perturbation plus gentle mean reversion toward 1, clamped
// to [0.2, 3].
func (t *Topology) AdvanceLoad(rng *rand.Rand) {
	if t.loadFactors == nil || t.LoadDrift <= 0 {
		return
	}
	for i := range t.loadFactors {
		f := t.loadFactors[i] * math.Exp(rng.NormFloat64()*t.LoadDrift)
		f = math.Pow(f, 0.98) // mean reversion toward 1
		if f < 0.2 {
			f = 0.2
		}
		if f > 3 {
			f = 3
		}
		t.loadFactors[i] = f
	}
}

// loadFactor reports host i's current slow-load multiplier (1 when the
// walk is disabled).
func (t *Topology) loadFactor(i int) float64 {
	if t.loadFactors == nil {
		return 1
	}
	return t.loadFactors[i]
}

// hostCap returns host i's current effective throughput ceiling, or 0
// when unlimited.
func (t *Topology) hostCap(i int) float64 {
	nb := t.Hosts[i].NodeBW
	if nb <= 0 {
		return 0
	}
	return nb * t.loadFactor(i)
}

// New builds a custom topology over the given hosts with no links;
// install links with SetLink. Host names must be unique.
func New(name string, hosts []Host) (*Topology, error) {
	seen := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		if h.Name == "" {
			return nil, fmt.Errorf("topo: empty host name in %q", name)
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("topo: duplicate host %q in %q", h.Name, name)
		}
		seen[h.Name] = true
	}
	return newTopology(name, hosts), nil
}

// newTopology allocates a topology skeleton for the given hosts.
func newTopology(name string, hosts []Host) *Topology {
	t := &Topology{
		Name:  name,
		Hosts: hosts,
		links: make([]Link, len(hosts)*len(hosts)),
		index: make(map[string]int, len(hosts)),
	}
	for i, h := range hosts {
		t.index[h.Name] = i
	}
	return t
}

// N returns the host count.
func (t *Topology) N() int { return len(t.Hosts) }

// HostIndex resolves a host name.
func (t *Topology) HostIndex(name string) (int, bool) {
	i, ok := t.index[name]
	return i, ok
}

// MustHost resolves a host name, panicking if absent (for tests and
// fixed testbeds).
func (t *Topology) MustHost(name string) int {
	i, ok := t.index[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown host %q in %s", name, t.Name))
	}
	return i
}

// SetLink installs a symmetric link between hosts i and j.
func (t *Topology) SetLink(i, j int, l Link) {
	if i == j {
		return
	}
	t.links[i*t.N()+j] = l
	t.links[j*t.N()+i] = l
}

// Link returns the path description between hosts i and j.
func (t *Topology) Link(i, j int) Link { return t.links[i*t.N()+j] }

// SiteOf returns the site of host index i.
func (t *Topology) SiteOf(i int) string { return t.Hosts[i].Site }

// HostNames returns all host names in index order.
func (t *Topology) HostNames() []string {
	names := make([]string, len(t.Hosts))
	for i, h := range t.Hosts {
		names[i] = h.Name
	}
	return names
}

// DepotCandidates returns the indices of hosts that run depots.
func (t *Topology) DepotCandidates() []int {
	var out []int
	for i, h := range t.Hosts {
		if h.Depot {
			out = append(out, i)
		}
	}
	return out
}

// PathConfig builds the TCP parameters for a direct connection from
// host i to host j, including socket buffers and administrative rate
// limits (which bind bulk transfers but, being policers on sustained
// traffic, are not reflected in MeasuredBW).
func (t *Topology) PathConfig(i, j int) tcpsim.Config {
	l := t.Link(i, j)
	capacity := l.Capacity
	if rl := t.Hosts[i].RateLimit; rl > 0 && rl < capacity {
		capacity = rl
	}
	if rl := t.Hosts[j].RateLimit; rl > 0 && rl < capacity {
		capacity = rl
	}
	if nb := t.hostCap(i); nb > 0 && nb < capacity {
		capacity = nb
	}
	if nb := t.hostCap(j); nb > 0 && nb < capacity {
		capacity = nb
	}
	return tcpsim.Config{
		RTT:      l.RTT,
		Capacity: capacity,
		LossRate: l.Loss,
		SndBuf:   t.Hosts[i].SndBuf,
		RcvBuf:   t.Hosts[j].RcvBuf,
		Jitter:   0.05,
	}
}

// noiseFactor samples a lognormal multiplier with σ=sigma, clamped to
// [1/4, 4] so a single draw cannot produce absurd paths.
func noiseFactor(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 || rng == nil {
		return 1
	}
	f := math.Exp(rng.NormFloat64() * sigma)
	if f < 0.25 {
		f = 0.25
	}
	if f > 4 {
		f = 4
	}
	return f
}

// MeasuredBW returns one NWS-style bandwidth observation for the pair
// i→j: the steady-state model estimate perturbed by measurement noise.
// Administrative rate limits are deliberately ignored — probes are too
// small to trip them — which is one of the paper's sources of
// scheduling error.
func (t *Topology) MeasuredBW(i, j int, rng *rand.Rand) float64 {
	l := t.Link(i, j)
	capacity := l.Capacity
	if nb := t.hostCap(i); nb > 0 && nb < capacity {
		capacity = nb
	}
	if nb := t.hostCap(j); nb > 0 && nb < capacity {
		capacity = nb
	}
	cfg := tcpsim.Config{
		RTT:      l.RTT,
		Capacity: capacity,
		LossRate: l.Loss,
		SndBuf:   t.Hosts[i].SndBuf,
		RcvBuf:   t.Hosts[j].RcvBuf,
	}
	bw := tcpmodel.SteadyBW(cfg.Model())
	return bw * noiseFactor(rng, t.MeasureNoise)
}

// DirectChain builds the single-hop transfer i→j of size bytes, with
// per-transfer load noise applied to the capacity.
func (t *Topology) DirectChain(i, j int, size int64, rng *rand.Rand, capture bool) pipesim.Chain {
	cfg := t.PathConfig(i, j)
	cfg.Capacity *= noiseFactor(rng, t.LoadNoise)
	return pipesim.Chain{
		Size:    size,
		Hops:    []pipesim.Hop{{Name: t.Hosts[i].Name + "->" + t.Hosts[j].Name, TCP: cfg}},
		Capture: capture,
	}
}

// RelayChain builds a multi-hop transfer along path (host indices,
// endpoints included), with per-transfer load noise on link capacities
// and depot forwarding rates.
func (t *Topology) RelayChain(path []int, size int64, rng *rand.Rand, capture bool) (pipesim.Chain, error) {
	if len(path) < 2 {
		return pipesim.Chain{}, fmt.Errorf("topo: relay path needs >= 2 hosts, got %d", len(path))
	}
	hops := make([]pipesim.Hop, 0, len(path)-1)
	depots := make([]pipesim.Depot, 0, len(path)-2)
	for k := 0; k+1 < len(path); k++ {
		i, j := path[k], path[k+1]
		cfg := t.PathConfig(i, j)
		cfg.Capacity *= noiseFactor(rng, t.LoadNoise)
		hops = append(hops, pipesim.Hop{
			Name: t.Hosts[i].Name + "->" + t.Hosts[j].Name,
			TCP:  cfg,
		})
	}
	for k := 1; k+1 < len(path); k++ {
		h := t.Hosts[path[k]]
		if !h.Depot {
			return pipesim.Chain{}, fmt.Errorf("topo: host %s on relay path runs no depot", h.Name)
		}
		rate := h.ForwardRate
		if rate > 0 {
			rate *= t.loadFactor(path[k]) * noiseFactor(rng, t.LoadNoise)
		}
		depots = append(depots, pipesim.Depot{
			Name:          h.Name,
			PipelineBytes: h.PipelineBytes,
			ForwardRate:   rate,
		})
	}
	return pipesim.Chain{Size: size, Hops: hops, Depots: depots, Capture: capture}, nil
}

// RTTTable renders the host-pair RTTs for the named pairs, reproducing
// the paper's Section 3 table.
func (t *Topology) RTTTable(pairs [][2]string) ([]string, error) {
	out := make([]string, 0, len(pairs))
	for _, p := range pairs {
		i, ok := t.HostIndex(p[0])
		if !ok {
			return nil, fmt.Errorf("topo: unknown host %q", p[0])
		}
		j, ok := t.HostIndex(p[1])
		if !ok {
			return nil, fmt.Errorf("topo: unknown host %q", p[1])
		}
		out = append(out, fmt.Sprintf("%-18s to %-18s %4.0fms",
			p[0], p[1], t.Link(i, j).RTT.Seconds()*1e3))
	}
	return out, nil
}
