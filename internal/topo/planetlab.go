package topo

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/netlogistics/lsl/internal/simtime"
)

// PlanetLabConfig parameterizes the synthetic PlanetLab-like testbed of
// the Section 4.2 aggregate experiment.
type PlanetLabConfig struct {
	Hosts           int     // total machines (paper: 142)
	MaxHostsPerSite int     // paper: "each site has only one to three machines"
	SocketBuf       int64   // paper: 64 KB socket buffers
	BadSiteFrac     float64 // fraction of sites with elevated loss
	RateLimitFrac   float64 // fraction of hosts with administrative rate caps
	MeasureNoise    float64 // lognormal σ on NWS measurements
	LoadNoise       float64 // lognormal σ on per-transfer load (virtualization)
	NodeBWMedian    float64 // median virtualized host throughput, bytes/sec
	NodeBWSigma     float64 // lognormal σ of host throughput
	RTTScale        float64 // ms of RTT per unit of plane distance
	ForwardFrac     float64 // depot forwarding rate as a fraction of NodeBW
}

// DefaultPlanetLab returns the configuration matching the paper's
// description of the testbed.
func DefaultPlanetLab() PlanetLabConfig {
	return PlanetLabConfig{
		Hosts:           142,
		MaxHostsPerSite: 3,
		SocketBuf:       kb64,
		BadSiteFrac:     0.10,
		RateLimitFrac:   0.12,
		MeasureNoise:    0.08,
		LoadNoise:       0.30,
		NodeBWMedian:    3.0e6,
		NodeBWSigma:     0.50,
		RTTScale:        68,
		ForwardFrac:     0.8,
	}
}

type plSite struct {
	name    string
	x, y    float64
	uplink  float64 // site access capacity, bytes/sec
	loss    float64 // site access loss contribution
	hosts   []int
	limited bool
}

// PlanetLab generates a synthetic wide-area testbed in the image of the
// paper's: university sites scattered across a plane (RTT grows with
// distance), one to three virtualized machines per site, small socket
// buffers, heterogeneous site uplinks, a minority of lossy sites and of
// administratively rate-limited hosts. Every host can act as source,
// sink, or depot, exactly as in the paper's experiment.
func PlanetLab(cfg PlanetLabConfig, seed int64) *Topology {
	if cfg.Hosts <= 0 {
		cfg = DefaultPlanetLab()
	}
	if cfg.MaxHostsPerSite < 1 {
		cfg.MaxHostsPerSite = 3
	}
	if cfg.SocketBuf <= 0 {
		cfg.SocketBuf = kb64
	}
	if cfg.NodeBWMedian <= 0 {
		cfg.NodeBWMedian = 3.0e6
	}
	if cfg.NodeBWSigma <= 0 {
		cfg.NodeBWSigma = 0.50
	}
	if cfg.RTTScale <= 0 {
		cfg.RTTScale = 115
	}
	rng := rand.New(rand.NewSource(seed))

	// Site geography is clustered, like the real PlanetLab: a dense
	// eastern cluster, a western cluster, a sparser central band, and a
	// scattering of far-flung sites. Intra-cluster paths are short-RTT
	// (relaying buys nothing there: the virtualized hosts, not the
	// window, are the limit), while inter-cluster paths are the
	// long-RTT, window-limited minority the scheduler finds depot
	// routes for.
	clusters := []struct {
		cx, cy, sigma, weight float64
	}{
		{0.82, 0.52, 0.06, 0.45},
		{0.12, 0.48, 0.05, 0.25},
		{0.50, 0.50, 0.09, 0.15},
		{0, 0, 0, 0.15}, // uniform scatter
	}
	place := func() (float64, float64) {
		r := rng.Float64()
		for _, c := range clusters {
			if r < c.weight {
				if c.sigma == 0 {
					return rng.Float64(), rng.Float64()
				}
				return c.cx + c.sigma*rng.NormFloat64(), c.cy + c.sigma*rng.NormFloat64()
			}
			r -= c.weight
		}
		return rng.Float64(), rng.Float64()
	}

	// Lay out sites until the host budget is filled.
	var sites []*plSite
	var hosts []Host
	for len(hosts) < cfg.Hosts {
		x, y := place()
		s := &plSite{
			name: fmt.Sprintf("site%02d.edu", len(sites)),
			x:    x,
			y:    y,
		}
		// Site uplinks: a mix of 10 Mbit, 45 Mbit and 100 Mbit access
		// links, as on the 2004-era PlanetLab, derated by a per-site
		// sharing factor (the uplink carries the whole site's traffic).
		// Pairs whose bandwidth is capacity-limited rather than
		// window-limited gain nothing from relaying — the relay still
		// crosses the same access links — which is what keeps the
		// scheduler's relayed fraction well below 100%.
		switch r := rng.Float64(); {
		case r < 0.40:
			s.uplink = 10 * mbit
		case r < 0.75:
			s.uplink = 45 * mbit
		default:
			s.uplink = 100 * mbit
		}
		s.uplink *= 0.35 + 0.65*rng.Float64()
		if rng.Float64() < cfg.BadSiteFrac {
			s.loss = 5e-5
		} else {
			s.loss = 2e-6
		}
		n := 1 + rng.Intn(cfg.MaxHostsPerSite)
		if remaining := cfg.Hosts - len(hosts); n > remaining {
			n = remaining
		}
		for k := 0; k < n; k++ {
			idx := len(hosts)
			// Virtualization caps each host's effective TCP throughput;
			// forwarding through two sockets costs more CPU still.
			nodeBW := cfg.NodeBWMedian * math.Exp(cfg.NodeBWSigma*rng.NormFloat64())
			h := Host{
				Name:   fmt.Sprintf("node%d.%s", k+1, s.name),
				Site:   s.name,
				SndBuf: cfg.SocketBuf,
				RcvBuf: cfg.SocketBuf,
				NodeBW: nodeBW,
				// Every PlanetLab host may serve as a depot, but
				// virtualization keeps its forwarding rate modest.
				Depot:         true,
				ForwardRate:   cfg.ForwardFrac * nodeBW,
				PipelineBytes: 4 << 20, // small user-space buffers on shared nodes
			}
			if rng.Float64() < cfg.RateLimitFrac {
				h.RateLimit = (0.8 + 0.7*rng.Float64()) * 1e6
			}
			hosts = append(hosts, h)
			s.hosts = append(s.hosts, idx)
		}
		sites = append(sites, s)
	}

	t := newTopology("planetlab", hosts)
	t.MeasureNoise = cfg.MeasureNoise
	t.LoadNoise = cfg.LoadNoise

	// Wide-area links between sites: RTT grows with plane distance
	// (continental scale: up to ~190 ms), loss grows with RTT because a
	// longer default route crosses more congested exchange points.
	for a := 0; a < len(sites); a++ {
		for b := a + 1; b < len(sites); b++ {
			sa, sb := sites[a], sites[b]
			dist := math.Hypot(sa.x-sb.x, sa.y-sb.y)
			rttMS := 12 + cfg.RTTScale*dist*(1+0.1*(rng.Float64()-0.5))
			capacity := math.Min(sa.uplink, sb.uplink)
			loss := sa.loss + sb.loss + 2e-7*rttMS
			link := Link{
				RTT:      simtime.Milliseconds(rttMS),
				Capacity: capacity,
				Loss:     loss,
			}
			for _, i := range sa.hosts {
				for _, j := range sb.hosts {
					// Per-host-pair jitter so hosts at one site are
					// similar but not identical, which is what the ε
					// equivalence exists to absorb.
					l := link
					l.RTT = simtime.Duration(float64(link.RTT) * (1 + 0.04*(rng.Float64()-0.5)))
					t.SetLink(i, j, l)
				}
			}
		}
		// LAN links within the site.
		for x := 0; x < len(sites[a].hosts); x++ {
			for y := x + 1; y < len(sites[a].hosts); y++ {
				t.SetLink(sites[a].hosts[x], sites[a].hosts[y], Link{
					RTT:      simtime.Milliseconds(0.6),
					Capacity: 12.5e6,
					Loss:     1e-7,
				})
			}
		}
	}
	return t
}
