package topo

import (
	"strings"
	"testing"
)

func TestPlanetLabShape(t *testing.T) {
	tp := PlanetLab(DefaultPlanetLab(), 1)
	if tp.N() != 142 {
		t.Fatalf("hosts = %d, want 142", tp.N())
	}
	// Sites hold 1-3 hosts.
	bySite := map[string]int{}
	for _, h := range tp.Hosts {
		bySite[h.Site]++
	}
	for site, n := range bySite {
		if n < 1 || n > 3 {
			t.Fatalf("site %s has %d hosts", site, n)
		}
	}
	if len(bySite) < 40 {
		t.Fatalf("only %d sites for 142 hosts", len(bySite))
	}
}

func TestPlanetLabHostProperties(t *testing.T) {
	tp := PlanetLab(DefaultPlanetLab(), 1)
	var limited int
	for _, h := range tp.Hosts {
		if h.SndBuf != 64<<10 || h.RcvBuf != 64<<10 {
			t.Fatalf("host %s buffers = %d/%d, want 64KB", h.Name, h.SndBuf, h.RcvBuf)
		}
		if !h.Depot {
			t.Fatalf("host %s should be a depot candidate", h.Name)
		}
		if h.NodeBW <= 0 || h.ForwardRate <= 0 {
			t.Fatalf("host %s missing virtualization caps", h.Name)
		}
		if h.ForwardRate >= h.NodeBW {
			t.Fatalf("host %s forwarding should cost more than endpoint traffic", h.Name)
		}
		if h.RateLimit > 0 {
			limited++
		}
	}
	if limited == 0 || limited > tp.N()/3 {
		t.Fatalf("rate-limited hosts = %d, want a small minority", limited)
	}
}

func TestPlanetLabLinksComplete(t *testing.T) {
	tp := PlanetLab(DefaultPlanetLab(), 1)
	for i := 0; i < tp.N(); i++ {
		for j := 0; j < tp.N(); j++ {
			if i == j {
				continue
			}
			l := tp.Link(i, j)
			if !l.Valid() {
				t.Fatalf("missing link %d-%d", i, j)
			}
			if tp.SiteOf(i) == tp.SiteOf(j) {
				if l.RTT.Seconds() > 0.005 {
					t.Fatalf("LAN RTT %v too high", l.RTT)
				}
			} else {
				if l.RTT.Seconds() < 0.005 {
					t.Fatalf("WAN RTT %v too low", l.RTT)
				}
			}
		}
	}
}

func TestPlanetLabDeterministic(t *testing.T) {
	a := PlanetLab(DefaultPlanetLab(), 5)
	b := PlanetLab(DefaultPlanetLab(), 5)
	if a.N() != b.N() {
		t.Fatal("host counts differ")
	}
	for i := 0; i < a.N(); i++ {
		if a.Hosts[i] != b.Hosts[i] {
			t.Fatalf("host %d differs between same-seed builds", i)
		}
		for j := 0; j < a.N(); j++ {
			if a.Link(i, j) != b.Link(i, j) {
				t.Fatalf("link %d-%d differs between same-seed builds", i, j)
			}
		}
	}
	c := PlanetLab(DefaultPlanetLab(), 6)
	same := true
	for i := 0; i < a.N() && same; i++ {
		if a.Hosts[i].NodeBW != c.Hosts[i].NodeBW {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestPlanetLabCustomSize(t *testing.T) {
	cfg := DefaultPlanetLab()
	cfg.Hosts = 30
	tp := PlanetLab(cfg, 1)
	if tp.N() != 30 {
		t.Fatalf("hosts = %d", tp.N())
	}
}

func TestAbileneCoreShape(t *testing.T) {
	tp := AbileneCore(DefaultAbileneCore(), 1)
	var depots, leaves int
	for _, h := range tp.Hosts {
		if h.Depot {
			depots++
			if h.SndBuf != 8<<20 {
				t.Fatalf("depot %s buffers = %d, want 8MB", h.Name, h.SndBuf)
			}
			if !strings.Contains(h.Name, "abilene.net") {
				t.Fatalf("depot %s not at a POP", h.Name)
			}
		} else {
			leaves++
			if h.SndBuf != 64<<10 {
				t.Fatalf("leaf %s buffers = %d, want 64KB", h.Name, h.SndBuf)
			}
			if h.NodeBW <= 0 {
				t.Fatalf("leaf %s should carry a virtualization cap", h.Name)
			}
		}
	}
	if depots != 11 {
		t.Fatalf("depots = %d, want 11 POPs", depots)
	}
	if leaves != 10 {
		t.Fatalf("leaves = %d, want 10 universities", leaves)
	}
	if got := AbileneUniversities(tp); len(got) != 10 {
		t.Fatalf("AbileneUniversities = %d", len(got))
	}
}

func TestAbileneTriangleStructure(t *testing.T) {
	// University-to-university RTT must be at least each one's access
	// leg, and the path through the home POP must be shorter than or
	// equal to the direct (same physical route).
	tp := AbileneCore(DefaultAbileneCore(), 1)
	unis := AbileneUniversities(tp)
	pops := tp.DepotCandidates()
	for _, u := range unis {
		for _, v := range unis {
			if u == v {
				continue
			}
			direct := tp.Link(u, v).RTT
			best := direct
			for _, p := range pops {
				leg1 := tp.Link(u, p).RTT
				leg2 := tp.Link(p, v).RTT
				if leg1 > best && leg2 > best {
					continue
				}
				// Max sublink RTT through the best POP should not
				// exceed the direct RTT (it is a subpath of it).
				max := leg1
				if leg2 > max {
					max = leg2
				}
				if max < best {
					best = max
				}
			}
			if best > direct {
				t.Fatalf("no POP splits the path %d-%d", u, v)
			}
		}
	}
}

func TestAbileneCoreLinksComplete(t *testing.T) {
	tp := AbileneCore(DefaultAbileneCore(), 1)
	for i := 0; i < tp.N(); i++ {
		for j := 0; j < tp.N(); j++ {
			if i != j && !tp.Link(i, j).Valid() {
				t.Fatalf("missing link %s-%s", tp.Hosts[i].Name, tp.Hosts[j].Name)
			}
		}
	}
}

func TestAbileneCoreFastCore(t *testing.T) {
	tp := AbileneCore(DefaultAbileneCore(), 1)
	pops := tp.DepotCandidates()
	for _, a := range pops {
		for _, b := range pops {
			if a == b {
				continue
			}
			if tp.Link(a, b).Capacity < 100e6 {
				t.Fatalf("core link %s-%s capacity %v too low",
					tp.Hosts[a].Name, tp.Hosts[b].Name, tp.Link(a, b).Capacity)
			}
		}
	}
}
