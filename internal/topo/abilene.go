package topo

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/netlogistics/lsl/internal/simtime"
)

// abilenePOP is one backbone point of presence. Coordinates are in
// one-way-millisecond units, laid out roughly like the Abilene map, so
// that coast-to-coast paths come out near the paper's observed RTTs.
type abilenePOP struct {
	name string
	x, y float64
}

var abilenePOPs = []abilenePOP{
	{"sttl", 2, 14},  // Seattle
	{"snva", 0, 8},   // Sunnyvale
	{"losa", 2, 4},   // Los Angeles
	{"dnvr", 10, 8},  // Denver
	{"kscy", 14, 8},  // Kansas City
	{"hstn", 14, 2},  // Houston
	{"ipls", 19, 9},  // Indianapolis
	{"atla", 20, 4},  // Atlanta
	{"chin", 19, 11}, // Chicago
	{"nycm", 26, 11}, // New York
	{"wash", 25, 8},  // Washington DC
}

// AbileneCoreConfig parameterizes the Figure 11 testbed.
type AbileneCoreConfig struct {
	Universities int     // leaf sites with PlanetLab-class hosts (paper: 10)
	LeafBuf      int64   // leaf host socket buffers (paper: 64 KB)
	DepotBuf     int64   // depot socket buffers (paper: 8 MB)
	MeasureNoise float64 // lognormal σ on measurements
	LoadNoise    float64 // lognormal σ on per-transfer load
	// CongestedFrac is the fraction of university pairs whose *direct*
	// route crosses a congested exchange (heavy loss) that the
	// depot route through the backbone avoids — the source of the
	// paper's extreme (up to 10x) winners.
	CongestedFrac float64
	CongestedLoss float64
}

// DefaultAbileneCore matches the paper's second experiment.
func DefaultAbileneCore() AbileneCoreConfig {
	return AbileneCoreConfig{
		Universities:  10,
		LeafBuf:       kb64,
		DepotBuf:      mb8,
		MeasureNoise:  0.20,
		LoadNoise:     0.25,
		CongestedFrac: 0.15,
		CongestedLoss: 1e-2,
	}
}

// AbileneCore generates the Figure 11 testbed: depot hosts at every
// backbone POP (the Internet2 Observatory machines) and PlanetLab-class
// endpoint hosts at university sites hanging off the POPs. University
// traffic crosses the backbone whether or not it uses depots; what the
// depots change is that each TCP sublink sees a fraction of the
// end-to-end RTT — decisive when a 64 KB window is the limit.
func AbileneCore(cfg AbileneCoreConfig, seed int64) *Topology {
	if cfg.Universities <= 0 {
		cfg = DefaultAbileneCore()
	}
	if cfg.LeafBuf <= 0 {
		cfg.LeafBuf = kb64
	}
	if cfg.DepotBuf <= 0 {
		cfg.DepotBuf = mb8
	}
	rng := rand.New(rand.NewSource(seed))

	nPOP := len(abilenePOPs)
	hosts := make([]Host, 0, nPOP+cfg.Universities)
	for _, p := range abilenePOPs {
		hosts = append(hosts, Host{
			Name:          "obs." + p.name + ".abilene.net",
			Site:          p.name + ".abilene.net",
			SndBuf:        cfg.DepotBuf,
			RcvBuf:        cfg.DepotBuf,
			Depot:         true,
			ForwardRate:   60e6,
			PipelineBytes: 32 << 20,
		})
	}
	// Universities attach round-robin with jittered access latency.
	type uni struct {
		pop       int
		accessRTT float64 // ms
	}
	unis := make([]uni, cfg.Universities)
	for u := 0; u < cfg.Universities; u++ {
		unis[u] = uni{
			pop:       u % nPOP,
			accessRTT: 4 + 10*rng.Float64(),
		}
		hosts = append(hosts, Host{
			Name:   fmt.Sprintf("pl1.univ%02d.edu", u),
			Site:   fmt.Sprintf("univ%02d.edu", u),
			SndBuf: cfg.LeafBuf,
			RcvBuf: cfg.LeafBuf,
			// The endpoints are still PlanetLab-class machines: the
			// virtualization throughput ceiling applies to them even
			// though the depots now sit on dedicated Observatory hosts.
			NodeBW: 2.0e6 * math.Exp(0.60*rng.NormFloat64()),
			// University PlanetLab nodes are not used as depots in this
			// experiment; the paper placed depots only at the POPs.
		})
	}

	t := newTopology("abilene-core", hosts)
	t.MeasureNoise = cfg.MeasureNoise
	t.LoadNoise = cfg.LoadNoise

	coreRTT := func(a, b int) float64 { // ms
		pa, pb := abilenePOPs[a], abilenePOPs[b]
		if a == b {
			return 0
		}
		return 2 + 2*math.Hypot(pa.x-pb.x, pa.y-pb.y)
	}

	const (
		coreCap   = 1250 * mbit // OC-192-era backbone, effectively unloaded
		accessCap = 100 * mbit
		coreLoss  = 5e-8 // per ms of core RTT
		leafLoss  = 2e-6
	)

	// POP-POP links.
	for a := 0; a < nPOP; a++ {
		for b := a + 1; b < nPOP; b++ {
			rtt := coreRTT(a, b)
			t.SetLink(a, b, Link{
				RTT:      simtime.Milliseconds(rtt),
				Capacity: coreCap,
				Loss:     coreLoss * rtt,
			})
		}
	}
	// University links: to every POP and to every other university. The
	// path always goes through the home POP.
	for u, info := range unis {
		ui := nPOP + u
		for p := 0; p < nPOP; p++ {
			rtt := info.accessRTT + coreRTT(info.pop, p)
			t.SetLink(ui, p, Link{
				RTT:      simtime.Milliseconds(rtt),
				Capacity: accessCap,
				Loss:     leafLoss + coreLoss*coreRTT(info.pop, p),
			})
		}
		for v := u + 1; v < len(unis); v++ {
			vi := nPOP + v
			rtt := info.accessRTT + coreRTT(info.pop, unis[v].pop) + unis[v].accessRTT
			loss := 2*leafLoss + coreLoss*coreRTT(info.pop, unis[v].pop)
			// A minority of direct routes cross a congested exchange
			// point the scheduled route avoids.
			if rng.Float64() < cfg.CongestedFrac {
				loss += cfg.CongestedLoss
			}
			t.SetLink(ui, vi, Link{
				RTT:      simtime.Milliseconds(rtt),
				Capacity: accessCap,
				Loss:     loss,
			})
		}
	}
	return t
}

// AbileneUniversities returns the indices of the leaf (university)
// hosts of an AbileneCore topology.
func AbileneUniversities(t *Topology) []int {
	var out []int
	for i, h := range t.Hosts {
		if !h.Depot {
			out = append(out, i)
		}
	}
	return out
}
