package depot

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// TestRealTCPChain exercises the depot stack over real loopback TCP
// sockets: sender → depot → sink, with pattern verification at the
// sink. This is the deployment configuration of cmd/lsl-depot and
// cmd/lsl-xfer.
func TestRealTCPChain(t *testing.T) {
	dial := lsl.DialerFunc(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})

	// Sink on an ephemeral port.
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sinkLn.Close()
	sinkEP, err := wire.ParseEndpoint(sinkLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	type delivery struct {
		id    wire.SessionID
		bytes int64
		err   error
	}
	got := make(chan delivery, 1)
	sink, err := New(Config{
		Self: sinkEP,
		Dial: dial,
		Local: func(s *lsl.Session) error {
			var total int64
			var verr error
			buf := make([]byte, 32<<10)
			for {
				n, rerr := s.Read(buf)
				if n > 0 {
					if verr == nil {
						verr = VerifyPattern(buf[:n], s.ID(), total)
					}
					total += int64(n)
				}
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					verr = rerr
					break
				}
			}
			got <- delivery{s.ID(), total, verr}
			return verr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go sink.Serve(sinkLn)
	defer sink.Close()

	// Relay depot on another ephemeral port.
	relayLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer relayLn.Close()
	relayEP, err := wire.ParseEndpoint(relayLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	relay, err := New(Config{Self: relayEP, Dial: dial, PipelineBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	go relay.Serve(relayLn)
	defer relay.Close()

	// Send 4 MB through the relay.
	const size = 4 << 20
	src := wire.MustEndpoint("127.0.0.1:1")
	sess, err := lsl.Open(dial, src, sinkEP, []wire.Endpoint{relayEP})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64<<10)
		var written int64
		for written < size {
			n := int64(len(buf))
			if remaining := size - written; remaining < n {
				n = remaining
			}
			FillPattern(buf[:n], sess.ID(), written)
			m, err := sess.Write(buf[:n])
			written += int64(m)
			if err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
		sess.Close()
	}()

	select {
	case d := <-got:
		if d.err != nil {
			t.Fatalf("sink verification: %v", d.err)
		}
		if d.id != sess.ID() {
			t.Fatal("session id mismatch across TCP chain")
		}
		if d.bytes != size {
			t.Fatalf("sink received %d of %d", d.bytes, size)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("transfer over real TCP timed out")
	}
	wg.Wait()

	if st := relay.Stats(); st.Forwarded != 1 || st.BytesForwarded != size {
		t.Fatalf("relay stats = %+v", st)
	}
}

// TestRealTCPGenerate exercises the generate-data request over real
// sockets, as cmd/lsl-xfer -generate does.
func TestRealTCPGenerate(t *testing.T) {
	dial := lsl.DialerFunc(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	self, err := wire.ParseEndpoint(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Self: self, Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	sess, err := lsl.OpenGenerate(dial, wire.MustEndpoint("127.0.0.1:1"), self, nil, 100<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Generated == 1 && st.Delivered == 1 {
			if st.BytesDelivered != 100<<10 {
				t.Fatalf("delivered %d bytes", st.BytesDelivered)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("generation never completed: %+v", srv.Stats())
}
