package depot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/netlogistics/lsl/internal/wire"
)

// DefaultSpoolBytes bounds the disk spool when Config.SpoolBytes is
// zero.
const DefaultSpoolBytes = 1 << 30

// spoolSuffix marks finished spool files; in-flight writes carry
// tmpSuffix until their rename.
const (
	spoolSuffix = ".p"
	tmpSuffix   = ".tmp"
)

// spool is the store's durable disk tier: one file per spilled payload
// in a content-addressed directory. A file is named
//
//	<sha256-of-payload-hex>.<session-id-hex>.p
//
// so the name alone carries both the index key and the integrity proof:
// recovery after a crash re-reads each file, recomputes the digest, and
// drops anything torn or altered. Writes go to a .tmp file first and
// are renamed into place, so a finished .p file is always complete.
type spool struct {
	dir string
}

// newSpool prepares the spool directory.
func newSpool(dir string) (*spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: spool dir: %w", err)
	}
	return &spool{dir: dir}, nil
}

// write persists data for id and returns the finished file's path.
func (sp *spool) write(id wire.SessionID, data []byte) (string, error) {
	sum := sha256.Sum256(data)
	name := hex.EncodeToString(sum[:]) + "." + id.String() + spoolSuffix
	path := filepath.Join(sp.dir, name)
	tmp := path + tmpSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("depot: spool write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("depot: spool commit: %w", err)
	}
	return path, nil
}

// read loads a spooled payload back, verifying it against the digest
// in its name — a mismatch means the file was damaged at rest and is
// reported as a checksum error, not served.
func (sp *spool) read(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("depot: spool read: %w", err)
	}
	want, _, ok := parseSpoolName(filepath.Base(path))
	if !ok {
		return nil, fmt.Errorf("depot: spool read %s: unparseable name", path)
	}
	if sum := sha256.Sum256(data); !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("%w: spooled payload %s damaged at rest", wire.ErrChecksum, filepath.Base(path))
	}
	return data, nil
}

// remove deletes a spooled payload.
func (sp *spool) remove(path string) { os.Remove(path) }

// spooledEntry is one payload found by recovery.
type spooledEntry struct {
	id   wire.SessionID
	path string
	size int64
}

// recover re-indexes the spool directory after a restart: every
// verifiable .p file becomes a store entry again, torn writes (.tmp
// leftovers, size or digest mismatches, unparseable names) are
// deleted and counted in dropped. Entries come back ordered
// oldest-modified first, so the rebuilt LRU evicts what was coldest
// before the crash.
func (sp *spool) recover() (entries []spooledEntry, dropped int64, err error) {
	des, err := os.ReadDir(sp.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("depot: spool scan: %w", err)
	}
	type candidate struct {
		e   spooledEntry
		mod int64
	}
	var found []candidate
	for _, de := range des {
		name := de.Name()
		path := filepath.Join(sp.dir, name)
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, tmpSuffix) {
			// An interrupted write: never completed, never indexed.
			os.Remove(path)
			dropped++
			continue
		}
		_, id, ok := parseSpoolName(name)
		if !ok {
			continue // not ours; leave foreign files alone
		}
		data, err := sp.read(path)
		if err != nil {
			// Torn or damaged: recovery must not resurrect bad bytes.
			os.Remove(path)
			dropped++
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, candidate{
			e:   spooledEntry{id: id, path: path, size: int64(len(data))},
			mod: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	out := make([]spooledEntry, len(found))
	for i, c := range found {
		out[i] = c.e
	}
	return out, dropped, nil
}

// parseSpoolName splits "<digest-hex>.<session-id-hex>.p" into its
// digest and session id.
func parseSpoolName(name string) (digest []byte, id wire.SessionID, ok bool) {
	if !strings.HasSuffix(name, spoolSuffix) {
		return nil, id, false
	}
	parts := strings.Split(strings.TrimSuffix(name, spoolSuffix), ".")
	if len(parts) != 2 {
		return nil, id, false
	}
	digest, err := hex.DecodeString(parts[0])
	if err != nil || len(digest) != sha256.Size {
		return nil, id, false
	}
	rawID, err := hex.DecodeString(parts[1])
	if err != nil || len(rawID) != len(id) {
		return nil, id, false
	}
	copy(id[:], rawID)
	return digest, id, true
}
