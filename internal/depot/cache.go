package depot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// maxInventoryDigests caps a cache-probe inventory response so it
// always fits a single header (64 KiB / 44 bytes per lookup option
// leaves ample headroom).
const maxInventoryDigests = 1024

// handleCacheProbe answers a TypeCacheProbe exchange on its own
// connection, like a fetch: with a lookup option the response carries
// the cached byte ranges for that digest; without one it carries the
// depot's digest inventory (fully held objects only). Probes bypass
// the admission gate for the same reason control pushes do — a depot
// shedding load still wants its cache found, because every hit it
// advertises is load somebody else does not send.
func (s *Server) handleCacheProbe(conn net.Conn, h *wire.Header, f *flow) error {
	defer conn.Close()
	if s.cfg.Cache == nil {
		s.st.refused.Add(1)
		s.met.refused.Inc()
		f.emit(obs.KindRefused, obs.Event{Peer: h.Src.String(), Detail: "no cache configured"})
		return lsl.Refuse(conn, h)
	}
	resp := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeCacheProbe,
		Session: h.Session,
		Src:     s.cfg.Self,
		Dst:     h.Src,
	}
	if d, ok := h.CacheLookup(); ok {
		resp.AddOption(wire.CacheAdvertOption(s.cfg.Cache.Ranges(d)))
	} else {
		keys := s.cfg.Cache.Keys()
		if len(keys) > maxInventoryDigests {
			keys = keys[:maxInventoryDigests]
		}
		for _, k := range keys {
			resp.AddOption(wire.CacheLookupOption(k))
		}
	}
	return wire.WriteHeader(conn, resp)
}

// handleCacheServe executes a serve-from-cache directive: the depot
// opens the named range in its cache and pushes it toward the session
// destination as an ordinary TypeData stream resuming at the range
// offset. A directive it cannot satisfy — no cache, malformed option,
// range not held — is refused, so the initiator's recovery machinery
// falls back to an origin send. A cached span that fails its CRC check
// mid-read ends the session partway; the sink's acked offset tells the
// initiator where the origin re-send must resume.
func (s *Server) handleCacheServe(sess *lsl.Session, f *flow) error {
	defer sess.Close()
	h := sess.Header
	d, r, ok := h.CacheServe()
	if !ok || s.cfg.Cache == nil {
		s.st.refused.Add(1)
		s.met.refused.Inc()
		f.emit(obs.KindRefused, obs.Event{Peer: h.Src.String(), Detail: "cache serve unavailable"})
		_ = lsl.Refuse(sess.Conn, h)
		return nil
	}
	rc, err := s.cfg.Cache.Open(d, r)
	if err != nil {
		s.st.refused.Add(1)
		s.met.refused.Inc()
		f.emit(obs.KindRefused, obs.Event{Peer: h.Src.String(), Detail: "cache miss: " + err.Error()})
		_ = lsl.Refuse(sess.Conn, h)
		return nil
	}
	defer rc.Close()
	next, rest, local, err := s.nextHop(h)
	if err != nil {
		if s.refuseRouting(sess, f, err) {
			return nil
		}
		return err
	}
	f.emit(obs.KindCacheHit, obs.Event{Peer: h.Dst.String(), Bytes: r.Len,
		Detail: fmt.Sprintf("serving [%d,%d) from cache", r.Off, r.End())})

	var dst io.WriteCloser
	if local {
		defer s.track(f, h, "cache-serve", wire.Endpoint{})()
		pr, pw := io.Pipe()
		dst = pw
		inner := &lsl.Session{Conn: pipeConn{PipeReader: pr}, Header: serveHeader(h, r, f.hopIndex())}
		done := make(chan error, 1)
		go func() { done <- s.deliver(inner, f) }()
		defer func() {
			pw.Close()
			<-done
		}()
	} else {
		defer s.track(f, h, "cache-serve", next)()
		out, derr := s.dialOnward(next, f)
		if derr != nil {
			return fmt.Errorf("cache serve dial %s: %w", next, derr)
		}
		defer out.Close()
		f.emit(obs.KindConnect, obs.Event{Peer: next.String()})
		fh := serveHeader(forwardHeader(h, rest, f.hopIndex()), r, f.hopIndex())
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		dst = out
	}

	_, perr := s.pump(framedWriter(dst, h), rc, f)
	s.st.forwarded.Add(1)
	return s.flagCorrupt(sess, f, perr)
}

// serveHeader turns a cache-serve header into the TypeData header the
// downstream path sees: the directive option is stripped and the
// resume offset pinned to the served range, so the sink lands the
// bytes at the right place in the object.
func serveHeader(h *wire.Header, r wire.ByteRange, hop int) *wire.Header {
	out := &wire.Header{
		Version: h.Version,
		Type:    wire.TypeData,
		Session: h.Session,
		Src:     h.Src,
		Dst:     h.Dst,
	}
	for _, o := range h.Options {
		if o.Kind == wire.OptCacheServe || o.Kind == wire.OptResumeOffset || o.Kind == wire.OptHopIndex {
			continue
		}
		out.AddOption(o)
	}
	if r.Off > 0 {
		out.AddOption(wire.ResumeOffsetOption(uint64(r.Off)))
	}
	out.AddOption(wire.HopIndexOption(uint16(hop)))
	return out
}

// cacheable extracts the cache key for a session's payload: a plain
// (unstriped) data session carrying a well-formed content digest. The
// remaining byte range follows from the resume offset.
func cacheable(h *wire.Header) (wire.ContentDigest, wire.ByteRange, bool) {
	if h.Type != wire.TypeData || h.StripeCount() > 1 {
		return wire.ContentDigest{}, wire.ByteRange{}, false
	}
	d, ok := h.ContentDigest()
	if !ok || d.Size <= 0 {
		return wire.ContentDigest{}, wire.ByteRange{}, false
	}
	off := h.ResumeOffset()
	if off < 0 || off >= d.Size {
		return wire.ContentDigest{}, wire.ByteRange{}, false
	}
	return d, wire.ByteRange{Off: off, Len: d.Size - off}, true
}

// cacheShortCircuit serves the session's remaining range from the
// local cache when it is held in full: the upstream sublink is
// terminated immediately (the sender sees its writes fail, exactly as
// if the path had collapsed behind the bytes already being delivered)
// and the depot pumps the cached bytes onward itself. Reports whether
// it served; when it did, the session error (if any) has already been
// accounted. A partial or failed cache read ends the session early and
// the initiator resumes from the sink's acked offset via the origin.
func (s *Server) cacheShortCircuit(sess *lsl.Session, f *flow, next wire.Endpoint, rest []wire.Endpoint) (bool, error) {
	if s.cfg.Cache == nil {
		return false, nil
	}
	h := sess.Header
	d, r, ok := cacheable(h)
	if !ok {
		return false, nil
	}
	if !s.cfg.Cache.Holds(d, r) {
		// Counted as a cache miss: this depot had to let the session go
		// to the origin path.
		return false, nil
	}
	rc, err := s.cfg.Cache.Open(d, r)
	if err != nil {
		return false, nil
	}
	defer rc.Close()
	defer s.track(f, h, "cache-serve", next)()
	f.emit(obs.KindCacheHit, obs.Event{Peer: h.Dst.String(), Bytes: r.Len,
		Detail: fmt.Sprintf("short-circuit: serving [%d,%d) from cache, upstream terminated", r.Off, r.End())})
	// Terminate the upstream sublink: everything the origin would still
	// send is already here.
	sess.Conn.Close()

	out, err := s.dialOnward(next, f)
	if err != nil {
		return true, fmt.Errorf("cache serve dial %s: %w", next, err)
	}
	defer out.Close()
	f.emit(obs.KindConnect, obs.Event{Peer: next.String()})
	fh := forwardHeader(h, rest, f.hopIndex())
	fh.Type = wire.TypeData
	if err := wire.WriteHeader(out, fh); err != nil {
		return true, err
	}
	_, perr := s.pump(framedWriter(out, h), rc, f)
	s.st.forwarded.Add(1)
	return true, s.flagCorrupt(sess, f, perr)
}

// cacheTap accumulates the payload a forwarding pump moves and commits
// it to the cache when the session ends — on-forward population. For a
// checksummed session the tap rides after the verifying reader, so it
// sees CRC-proven frames and unframes them incrementally; whatever
// complete frames arrived before a failure are still good bytes and
// are committed. An unchecked stream carries no per-chunk proof, so it
// is committed only when the session completes cleanly.
type cacheTap struct {
	c       *cache.Cache
	key     wire.ContentDigest
	base    int64
	framed  bool
	raw     bytes.Buffer
	pending []byte
	broken  bool
}

// cacheTap returns a population tap for the session, or nil when the
// session is not cacheable or would not fit the cache.
func (s *Server) cacheTap(h *wire.Header) *cacheTap {
	if s.cfg.Cache == nil {
		return nil
	}
	d, r, ok := cacheable(h)
	if !ok || !s.cfg.Cache.Fits(r.Len) {
		return nil
	}
	return &cacheTap{c: s.cfg.Cache, key: d, base: r.Off, framed: h.Checksummed()}
}

// Write implements io.Writer for the tee off the pump source. It never
// fails: population is best-effort and must not disturb forwarding.
func (t *cacheTap) Write(p []byte) (int, error) {
	if t.broken {
		return len(p), nil
	}
	if !t.framed {
		t.raw.Write(p)
		if int64(t.raw.Len()) > t.key.Size-t.base {
			// More payload than the digest promised: not trustworthy.
			t.broken = true
		}
		return len(p), nil
	}
	t.pending = append(t.pending, p...)
	for len(t.pending) >= wire.FrameHeaderLen {
		length := int(binary.BigEndian.Uint32(t.pending[0:4]))
		if length == 0 || length > wire.MaxFramePayload {
			t.broken = true
			return len(p), nil
		}
		if len(t.pending) < wire.FrameHeaderLen+length {
			break
		}
		t.raw.Write(t.pending[wire.FrameHeaderLen : wire.FrameHeaderLen+length])
		t.pending = t.pending[wire.FrameHeaderLen+length:]
		if int64(t.raw.Len()) > t.key.Size-t.base {
			t.broken = true
			return len(p), nil
		}
	}
	return len(p), nil
}

// commit stores the accumulated payload. Verified (framed) bytes are
// committed even after a mid-session failure — a partial range is
// still a true range; unverified bytes only on a clean end.
func (t *cacheTap) commit(clean bool) {
	if t == nil || t.broken || t.raw.Len() == 0 {
		return
	}
	if !t.framed && !clean {
		return
	}
	_ = t.c.Put(t.key, t.base, t.raw.Bytes())
}

// CacheStats exposes the configured cache's statistics (zero Stats
// without a cache).
func (s *Server) CacheStats() cache.Stats {
	if s.cfg.Cache == nil {
		return cache.Stats{}
	}
	return s.cfg.Cache.Stats()
}
