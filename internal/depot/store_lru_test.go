package depot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/wire"
)

// memStore builds a memory-only session store for unit tests.
func memStore(t *testing.T, capacity int64) *sessionStore {
	t.Helper()
	s, err := newSessionStore(capacity, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// spoolStore builds a store with a disk tier in a test directory.
func spoolStore(t *testing.T, capacity, spoolBytes int64, dir string) *sessionStore {
	t.Helper()
	s, err := newSessionStore(capacity, dir, spoolBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionStoreReplaceThenEvict is the regression for the old
// insertion-ordered eviction: replacing an entry must not leave a
// stale order slot behind, and the next eviction must pick the true
// least-recently-used payload.
func TestSessionStoreReplaceThenEvict(t *testing.T) {
	s := memStore(t, 10)
	a, b, c := wire.SessionID{1}, wire.SessionID{2}, wire.SessionID{3}
	s.put(a, []byte("aaaa"))
	s.put(b, []byte("bbbb"))
	// Replacing a makes it the most recently used entry.
	s.put(a, []byte("AAAA"))
	// c overflows the 10-byte budget: b, now coldest, must go — not a.
	s.put(c, []byte("ccc"))
	if _, ok := s.get(b); ok {
		t.Fatal("replace-then-evict: stale LRU order kept b alive")
	}
	data, ok := s.get(a)
	if !ok || string(data) != "AAAA" {
		t.Fatalf("replaced entry lost: %q, %v", data, ok)
	}
	if _, _, evicted := s.usage(); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
}

// TestSessionStoreRecencyEviction verifies eviction order follows use,
// not insertion: touching the oldest entry saves it.
func TestSessionStoreRecencyEviction(t *testing.T) {
	s := memStore(t, 10)
	a, b, c := wire.SessionID{1}, wire.SessionID{2}, wire.SessionID{3}
	s.put(a, []byte("aaaa"))
	s.put(b, []byte("bbbb"))
	s.get(a) // a is now more recently used than b
	s.put(c, []byte("cccc"))
	if _, ok := s.get(a); !ok {
		t.Fatal("recently-read entry evicted")
	}
	if _, ok := s.get(b); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

// TestSessionStoreSpillAndRestore overflows the memory budget and
// expects the coldest payload to move to the spool — and to come back,
// intact, on its next read.
func TestSessionStoreSpillAndRestore(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 10, 1<<20, dir)
	a, b, c := wire.SessionID{1}, wire.SessionID{2}, wire.SessionID{3}
	s.put(a, []byte("aaaa"))
	s.put(b, []byte("bbbb"))
	s.put(c, []byte("cccc")) // spills a instead of evicting it

	if diskBytes, spilled, _, _ := s.spoolUsage(); diskBytes != 4 || spilled != 1 {
		t.Fatalf("spool usage = %d bytes, %d spilled", diskBytes, spilled)
	}
	if _, _, evicted := s.usage(); evicted != 0 {
		t.Fatalf("spill counted as eviction (%d)", evicted)
	}
	data, ok := s.get(a)
	if !ok || string(data) != "aaaa" {
		t.Fatalf("spilled payload read back as %q, %v", data, ok)
	}
	if _, _, _, restored := s.spoolUsage(); restored != 1 {
		t.Fatal("restore not counted")
	}
}

// TestSessionStoreSpoolEviction fills the disk tier past its budget
// and expects the coldest spooled payload to be deleted for good.
func TestSessionStoreSpoolEviction(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 4, 8, dir)
	a, b, c := wire.SessionID{1}, wire.SessionID{2}, wire.SessionID{3}
	s.put(a, []byte("aaaa")) // fills memory
	s.put(b, []byte("bbbb")) // spills a
	s.put(c, []byte("cccc")) // spills b; disk now 8 bytes — at budget
	s.put(wire.SessionID{4}, []byte("dddd"))
	// c spilled; disk would hold 12 > 8, so a (coldest) is evicted.
	if _, ok := s.get(a); ok {
		t.Fatal("spool over budget kept its coldest entry")
	}
	if _, ok := s.get(b); !ok {
		t.Fatal("warmer spooled entry evicted")
	}
	if _, _, evicted := s.usage(); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
}

// TestSpoolCrashRecovery simulates a depot restart: a fresh store over
// the same directory must re-index every intact payload and serve it.
func TestSpoolCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 4, 1<<20, dir)
	a, b := wire.SessionID{1}, wire.SessionID{2}
	s.put(a, []byte("aaaa"))
	s.put(b, []byte("bbbb")) // spills a to disk
	// "Crash": drop the store, keep the directory. Only a's payload is
	// durable — b was still memory-resident.
	s2 := spoolStore(t, 4, 1<<20, dir)
	if _, spilled, recovered, _ := s2.spoolUsage(); recovered != 1 || spilled != 0 {
		t.Fatalf("recovery: recovered = %d, spilled = %d", recovered, spilled)
	}
	data, ok := s2.get(a)
	if !ok || string(data) != "aaaa" {
		t.Fatalf("recovered payload = %q, %v", data, ok)
	}
	if _, ok := s2.get(b); ok {
		t.Fatal("memory-resident payload survived a crash")
	}
}

// TestSpoolRecoveryDropsTornWrites plants a half-written .tmp file and
// a finished file whose bytes no longer match the digest in its name;
// recovery must delete both and index neither.
func TestSpoolRecoveryDropsTornWrites(t *testing.T) {
	dir := t.TempDir()
	// A torn in-flight write.
	tmpName := strings.Repeat("0", 64) + "." + strings.Repeat("0", 32) + ".p.tmp"
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A completed file damaged at rest: valid name shape, wrong digest.
	id := wire.SessionID{7}
	sum := sha256.Sum256([]byte("original"))
	badName := hex.EncodeToString(sum[:]) + "." + id.String() + ".p"
	if err := os.WriteFile(filepath.Join(dir, badName), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := spoolStore(t, 100, 1<<20, dir)
	if _, _, recovered, _ := s.spoolUsage(); recovered != 0 {
		t.Fatalf("recovered %d torn entries", recovered)
	}
	if _, ok := s.get(id); ok {
		t.Fatal("damaged payload served after recovery")
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("torn files left behind: %v", des)
	}
}

// TestSpoolDamagedAtRestIsMiss corrupts a spooled payload in place; a
// read must report a miss, never wrong bytes.
func TestSpoolDamagedAtRestIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 4, 1<<20, dir)
	a := wire.SessionID{1}
	s.put(a, []byte("aaaa"))
	s.put(wire.SessionID{2}, []byte("bbbb")) // spills a

	des, err := os.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("spool dir entries = %v (%v)", des, err)
	}
	path := filepath.Join(dir, des[0].Name())
	if err := os.WriteFile(path, []byte("XXaa"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, ok := s.get(a); ok {
		t.Fatalf("damaged payload served: %q", data)
	}
	if _, entries, _ := s.usage(); entries != 1 {
		t.Fatalf("damaged entry not dropped (entries = %d)", entries)
	}
}

// TestSpoolRoundTripLargePayload pushes a payload bigger than one
// write through spill and restore unchanged.
func TestSpoolRoundTripLargePayload(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 1<<16, 1<<24, dir)
	a := wire.SessionID{9}
	payload := bytes.Repeat([]byte("grid data, durably staged "), 2000)
	s.put(a, payload)
	s.put(wire.SessionID{10}, make([]byte, 1<<16)) // forces a out to disk
	got, ok := s.get(a)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("spill round-trip lost data (ok=%v, %d bytes)", ok, len(got))
	}
}
