package depot

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// pushTable opens a TypeControl session to target carrying the table at
// the given epoch and returns the ack header the depot answers with.
func pushTable(t *testing.T, h *harness, fromHost string, target wire.Endpoint, epoch uint64, entries []wire.RouteEntry) *wire.Header {
	t.Helper()
	conn, err := h.net.Dial(fromHost, target.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	opts, err := wire.RouteTableOptions(entries)
	if err != nil {
		t.Fatal(err)
	}
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	hd := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeControl,
		Session: id,
		Src:     wire.MustEndpoint(fromHost + ":7500"),
		Dst:     target,
		Options: append(opts, wire.TableEpochOption(epoch)),
	}
	if err := wire.WriteHeader(conn, hd); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := wire.ReadHeader(conn)
	if err != nil {
		t.Fatalf("reading control ack: %v", err)
	}
	return ack
}

func TestControlPushInstallsTable(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{AcceptControl: true})
	ack := pushTable(t, h, "10.0.0.9", epB, 1, []wire.RouteEntry{{Dst: epC, Next: epC}})
	if ack.Type != wire.TypeControl || ack.TableEpoch() != 1 {
		t.Fatalf("ack type %d epoch %d, want control epoch 1", ack.Type, ack.TableEpoch())
	}
	if srv.RouteEpoch() != 1 || srv.RouteCount() != 1 {
		t.Fatalf("epoch %d count %d, want 1/1", srv.RouteEpoch(), srv.RouteCount())
	}
	if st := srv.Stats(); st.TablePushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestControlStalePushIgnored(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{AcceptControl: true})
	pushTable(t, h, "10.0.0.9", epB, 5, []wire.RouteEntry{{Dst: epC, Next: epC}})
	ack := pushTable(t, h, "10.0.0.9", epB, 3, []wire.RouteEntry{{Dst: epC, Next: epD}})
	if ack.TableEpoch() != 5 {
		t.Fatalf("ack epoch %d, want installed epoch 5", ack.TableEpoch())
	}
	if srv.RouteEpoch() != 5 {
		t.Fatalf("stale push replaced table: epoch %d", srv.RouteEpoch())
	}
	if st := srv.Stats(); st.StalePushes != 1 || st.TablePushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestControlRefusedWhenNotAccepting(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{}) // AcceptControl defaults to false
	ack := pushTable(t, h, "10.0.0.9", epB, 1, nil)
	if ack.Type != wire.TypeRefuse {
		t.Fatalf("ack type %d, want refuse", ack.Type)
	}
	if st := srv.Stats(); st.Refused != 1 || srv.RouteEpoch() != 0 {
		t.Fatalf("stats = %+v epoch %d", st, srv.RouteEpoch())
	}
}

func TestControlMalformedPushKeepsTable(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{AcceptControl: true})
	pushTable(t, h, "10.0.0.9", epB, 1, []wire.RouteEntry{{Dst: epC, Next: epC}})

	// A newer epoch whose table bytes are damaged must not disturb the
	// installed table: reject whole, keep forwarding by epoch 1.
	conn, err := h.net.Dial("10.0.0.9", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	id, _ := wire.NewSessionID()
	hd := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeControl,
		Session: id,
		Src:     wire.MustEndpoint("10.0.0.9:7500"),
		Dst:     epB,
		Options: []wire.Option{
			{Kind: wire.OptRouteTable, Data: []byte{1, 2, 3}},
			wire.TableEpochOption(9),
		},
	}
	if err := wire.WriteHeader(conn, hd); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := wire.ReadHeader(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack.TableEpoch() != 1 || srv.RouteEpoch() != 1 {
		t.Fatalf("malformed push disturbed table: ack %d installed %d", ack.TableEpoch(), srv.RouteEpoch())
	}

	// Missing epoch likewise counts as stale, installs nothing.
	ack2 := pushTable(t, h, "10.0.0.9", epB, 0, nil)
	if srv.RouteEpoch() != 1 || ack2.TableEpoch() != 1 {
		t.Fatalf("epoch-0 push disturbed table: installed %d", srv.RouteEpoch())
	}
}

func TestTableDrivenForwarding(t *testing.T) {
	h := newHarness(t)
	reg := obs.NewRegistry()
	relay := h.addDepot(epB, Config{AcceptControl: true, TableDriven: true, Metrics: reg})
	h.addDepot(epC, Config{})
	pushTable(t, h, "10.0.0.9", epB, 1, []wire.RouteEntry{{Dst: epC, Next: epC}})

	// No source route: the relay must forward A→C purely by its table.
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := lsl.Wrap(conn, epA, epC)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("table-driven! "), 2048)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	st := relay.Stats()
	if st.Forwarded != 1 || st.TableHits != 1 || st.TableMisses != 0 {
		t.Fatalf("relay stats = %+v", st)
	}
	if v := reg.Gauge(MetricTableEpoch).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricTableEpoch, v)
	}
	perDst := fmt.Sprintf("%s{dst=%q}", MetricTableHits, epC.String())
	if v := reg.Counter(perDst).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", perDst, v)
	}
}

func TestTableDrivenMissRefused(t *testing.T) {
	h := newHarness(t)
	relay := h.addDepot(epB, Config{AcceptControl: true, TableDriven: true})

	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := lsl.Wrap(conn, epA, epC)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := wire.ReadHeader(sess)
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if ack.Type != wire.TypeRefuse {
		t.Fatalf("ack type %d, want refuse", ack.Type)
	}
	st := relay.Stats()
	if st.Refused != 1 || st.TableMisses != 1 {
		t.Fatalf("relay stats = %+v", st)
	}
}

func TestHopLimitRefused(t *testing.T) {
	h := newHarness(t)
	relay := h.addDepot(epB, Config{MaxHops: 2})

	// Forge a session that claims to have already traversed 2 depots.
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	id, _ := wire.NewSessionID()
	hd := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeData,
		Session: id,
		Src:     epA,
		Dst:     epC,
		Options: []wire.Option{
			wire.SourceRouteOption([]wire.Endpoint{epC}),
			wire.HopIndexOption(2),
		},
	}
	if err := wire.WriteHeader(conn, hd); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := wire.ReadHeader(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != wire.TypeRefuse {
		t.Fatalf("ack type %d, want refuse", ack.Type)
	}
	st := relay.Stats()
	if st.HopLimited != 1 || st.Refused != 1 {
		t.Fatalf("relay stats = %+v", st)
	}
}

func TestHopLimitAllowsShortChains(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{MaxHops: 2})
	h.addDepot(epC, Config{MaxHops: 2})
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("two hops is fine")
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q", got)
	}
}

func TestLegacyDepotIgnoresTableMode(t *testing.T) {
	// A depot with neither TableDriven nor an installed table keeps the
	// seed behaviour: unrouted sessions fall back to a direct dial and
	// no table metrics move.
	h := newHarness(t)
	relay := h.addDepot(epB, Config{})
	h.addDepot(epC, Config{})
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := lsl.Wrap(conn, epA, epC)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("direct fallback")
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q", got)
	}
	st := relay.Stats()
	if st.TableHits != 0 || st.TableMisses != 0 {
		t.Fatalf("legacy depot touched table metrics: %+v", st)
	}
}
