package depot

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// TestChainTraceEventOrdering drives a transfer through a two-depot
// chain (A → B → C) and checks the emitted trace: every hop reports its
// lifecycle events in order, with correct hop indices, node identities,
// and byte totals, and the shared registry aggregates both depots.
func TestChainTraceEventOrdering(t *testing.T) {
	h := newHarness(t)
	sink := &obs.MemorySink{}
	reg := obs.NewRegistry()
	shared := Config{Metrics: reg, Trace: sink, Sessions: obs.NewSessionTable()}
	h.addDepot(epB, shared) // relay, hop 1
	h.addDepot(epC, shared) // sink, hop 2

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("traced! "), 16<<10)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	h.waitDelivery(sess.ID())

	id := sess.ID().String()
	// The deliver event lands after the local handler returns.
	waitFor(t, func() bool {
		for _, e := range sink.Session(id) {
			if e.Kind == obs.KindDeliver {
				return true
			}
		}
		return false
	})

	byHop := map[int][]obs.Event{}
	for _, e := range sink.Session(id) {
		byHop[e.Hop] = append(byHop[e.Hop], e)
	}
	assertKinds := func(hop int, want ...string) []obs.Event {
		t.Helper()
		got := byHop[hop]
		if len(got) != len(want) {
			t.Fatalf("hop %d: %d events, want %d (%v)", hop, len(got), len(want), got)
		}
		for i, e := range got {
			if e.Kind != want[i] {
				t.Fatalf("hop %d event %d = %q, want %q", hop, i, e.Kind, want[i])
			}
		}
		return got
	}
	relay := assertKinds(1, obs.KindAccept, obs.KindConnect, obs.KindFirstByte, obs.KindLastByte)
	final := assertKinds(2, obs.KindAccept, obs.KindDeliver)

	for _, e := range relay {
		if e.Node != epB.String() {
			t.Fatalf("relay event node = %q", e.Node)
		}
	}
	if relay[1].Peer != epC.String() {
		t.Fatalf("relay connect peer = %q, want %s", relay[1].Peer, epC)
	}
	if relay[3].Bytes != int64(len(payload)) {
		t.Fatalf("relay last-byte bytes = %d, want %d", relay[3].Bytes, len(payload))
	}
	if !relay[2].Time.Before(relay[3].Time) && !relay[2].Time.Equal(relay[3].Time) {
		t.Fatal("first-byte after last-byte")
	}
	if final[0].Node != epC.String() || final[1].Bytes != int64(len(payload)) {
		t.Fatalf("sink events = %+v", final)
	}

	snap := reg.Snapshot()
	if snap.Counters[MetricSessionsAccepted] != 2 {
		t.Fatalf("accepted = %d, want 2 (both depots share the registry)", snap.Counters[MetricSessionsAccepted])
	}
	if snap.Counters[MetricBytesForwarded] != int64(len(payload)) {
		t.Fatalf("bytes forwarded = %d", snap.Counters[MetricBytesForwarded])
	}
	if snap.Counters[MetricBytesDelivered] != int64(len(payload)) {
		t.Fatalf("bytes delivered = %d", snap.Counters[MetricBytesDelivered])
	}
	if hs := snap.Histograms[MetricSublinkMbps]; hs.Count < 1 {
		t.Fatalf("sublink throughput histogram empty: %+v", hs)
	}
	if hs := snap.Histograms[MetricSessionSeconds]; hs.Count != 2 {
		t.Fatalf("session duration count = %d, want 2", hs.Count)
	}
}

// TestBackpressureOccupancyGauge rate-limits the downstream side of a
// relay (the sink refuses to read until released) and watches the
// relay's pipeline occupancy gauge rise — the live form of the paper's
// Figure 5 back-pressure knee — then drain back to zero.
func TestBackpressureOccupancyGauge(t *testing.T) {
	h := newHarness(t)
	reg := obs.NewRegistry()
	release := make(chan struct{})
	drained := make(chan struct{})
	h.addDepot(epC, Config{Local: func(s *lsl.Session) error {
		<-release // downstream stalls: no reads until released
		io.Copy(io.Discard, s)
		close(drained)
		return nil
	}})
	h.addDepot(epB, Config{Metrics: reg, PipelineBytes: 4 * chunkSize})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, chunkSize)
		for i := 0; i < 64; i++ {
			if _, err := sess.Write(buf); err != nil {
				return
			}
		}
		sess.Close()
	}()

	occupancy := reg.Gauge(MetricPipelineOccupancy)
	// With the sink stalled, the relay's bounded pipeline must fill.
	waitFor(t, func() bool { return occupancy.Value() >= int64(2*chunkSize) })

	close(release)
	<-drained
	// Everything queued was either written or drained on shutdown.
	waitFor(t, func() bool { return occupancy.Value() == 0 })
	if reg.Counter(MetricPumpStallNanos).Value() <= 0 {
		t.Fatal("no stall time recorded despite a full pipeline")
	}
}

// partialFailWriter accepts its first write whole, then takes 7 bytes
// of the second and fails — the shape of a sublink dying mid-chunk.
type partialFailWriter struct{ calls int }

func (w *partialFailWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.calls == 1 {
		return len(p), nil
	}
	return 7, errors.New("sublink died")
}

// TestPumpPartialBytesAccounted is the regression test for the error
// path: bytes that reached the downstream writer before a failure must
// appear in the stats and metrics, and the occupancy the queued chunks
// held must drain.
func TestPumpPartialBytesAccounted(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Self: epB,
		Dial: lsl.DialerFunc(func(string) (net.Conn, error) {
			return nil, errors.New("unused")
		}),
		Metrics:       reg,
		PipelineBytes: chunkSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.NewReader(make([]byte, 3*chunkSize))
	w := &partialFailWriter{}
	written, err := srv.pump(w, src, nil)
	if err == nil {
		t.Fatal("pump succeeded through a failing writer")
	}
	want := int64(chunkSize + 7)
	if written != want {
		t.Fatalf("pump returned %d bytes, want %d", written, want)
	}
	if got := srv.Stats().BytesForwarded; got != want {
		t.Fatalf("Stats().BytesForwarded = %d, want %d — partial transfer vanished", got, want)
	}
	if got := reg.Counter(MetricBytesForwarded).Value(); got != want {
		t.Fatalf("metric %s = %d, want %d", MetricBytesForwarded, got, want)
	}
	waitFor(t, func() bool { return reg.Gauge(MetricPipelineOccupancy).Value() == 0 })
}

// TestHopIndexPropagation checks the wire-level hop counting a trace
// depends on: a depot one hop in stamps the forwarded header so the
// next depot knows it is hop 2.
func TestHopIndexPropagation(t *testing.T) {
	h := newHarness(t)
	sink := &obs.MemorySink{}
	h.addDepot(epB, Config{Trace: sink})
	h.addDepot(epC, Config{Trace: sink})
	h.addDepot(epD, Config{Trace: sink})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epD, []wire.Endpoint{epB, epC})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		sess.Write([]byte("count my hops"))
		sess.Close()
	}()
	h.waitDelivery(sess.ID())

	id := sess.ID().String()
	waitFor(t, func() bool {
		for _, e := range sink.Session(id) {
			if e.Kind == obs.KindDeliver {
				return true
			}
		}
		return false
	})
	hopOf := map[string]int{}
	for _, e := range sink.Session(id) {
		if e.Kind == obs.KindAccept {
			hopOf[e.Node] = e.Hop
		}
	}
	want := map[string]int{epB.String(): 1, epC.String(): 2, epD.String(): 3}
	for node, hop := range want {
		if hopOf[node] != hop {
			t.Fatalf("hop of %s = %d, want %d (all: %v)", node, hopOf[node], hop, hopOf)
		}
	}
}

// TestSessionTableTracksInFlight holds a session open and checks it is
// visible in the shared session table, then gone after it completes.
func TestSessionTableTracksInFlight(t *testing.T) {
	h := newHarness(t)
	table := obs.NewSessionTable()
	release := make(chan struct{})
	done := make(chan struct{})
	h.addDepot(epB, Config{
		Sessions: table,
		Local: func(s *lsl.Session) error {
			<-release
			io.Copy(io.Discard, s)
			close(done)
			return nil
		},
	})
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Write([]byte("hold"))
	waitFor(t, func() bool { return table.Len() == 1 })
	infos := table.Snapshot()
	if len(infos) != 1 || infos[0].ID != sess.ID().String() || infos[0].Type != "data" {
		t.Fatalf("session table = %+v", infos)
	}
	close(release)
	sess.Close()
	<-done
	waitFor(t, func() bool { return table.Len() == 0 })
}
