package depot

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// harness stands up depots on an emulated network.
type harness struct {
	t   *testing.T
	net *emu.Network
	mu  sync.Mutex
	// delivered collects locally delivered payloads keyed by session.
	delivered map[wire.SessionID][]byte
	done      chan wire.SessionID
	servers   map[wire.Endpoint]*Server
}

func newHarness(t *testing.T) *harness {
	return &harness{
		t:         t,
		net:       emu.NewNetwork(0.001),
		delivered: make(map[wire.SessionID][]byte),
		done:      make(chan wire.SessionID, 16),
		servers:   make(map[wire.Endpoint]*Server),
	}
}

func (h *harness) dialerFrom(host string) lsl.Dialer {
	return lsl.DialerFunc(func(addr string) (net.Conn, error) {
		return h.net.Dial(host, addr)
	})
}

// addDepot starts a depot at the endpoint. routes may be nil.
func (h *harness) addDepot(ep wire.Endpoint, cfg Config) *Server {
	h.t.Helper()
	cfg.Self = ep
	if cfg.Dial == nil {
		host := ep.String()
		host = host[:len(host)-len(":7411")]
		cfg.Dial = h.dialerFrom(host)
	}
	if cfg.Local == nil {
		cfg.Local = func(s *lsl.Session) error {
			data, err := io.ReadAll(s)
			h.mu.Lock()
			h.delivered[s.ID()] = data
			h.mu.Unlock()
			h.done <- s.ID()
			return err
		}
	}
	srv, err := New(cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	ln, err := h.net.Listen(ep.String())
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { srv.Close(); ln.Close() })
	go srv.Serve(ln)
	h.servers[ep] = srv
	return srv
}

func (h *harness) waitDelivery(id wire.SessionID) []byte {
	h.t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case got := <-h.done:
			if got == id {
				h.mu.Lock()
				defer h.mu.Unlock()
				return h.delivered[id]
			}
		case <-deadline:
			h.t.Fatal("delivery timed out")
		}
	}
}

var (
	epA = wire.MustEndpoint("10.0.0.1:7411")
	epB = wire.MustEndpoint("10.0.0.2:7411")
	epC = wire.MustEndpoint("10.0.0.3:7411")
	epD = wire.MustEndpoint("10.0.0.4:7411")
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: epA}); err == nil {
		t.Fatal("missing dialer accepted")
	}
	if _, err := New(Config{Dial: lsl.DialerFunc(nil)}); err == nil {
		t.Fatal("missing self accepted")
	}
}

func TestLocalDelivery(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("deliver me")
	sess.Write(payload)
	sess.Close()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q", got)
	}
	st := h.servers[epB].Stats()
	if st.Accepted != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSourceRouteForwarding(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{}) // relay
	h.addDepot(epC, Config{}) // sink
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("relay through B! "), 4096)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	bSt := h.servers[epB].Stats()
	if bSt.Forwarded != 1 || bSt.BytesForwarded != int64(len(payload)) {
		t.Fatalf("relay stats = %+v", bSt)
	}
	cSt := h.servers[epC].Stats()
	if cSt.Delivered != 1 {
		t.Fatalf("sink stats = %+v", cSt)
	}
}

func TestTwoDepotChain(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	h.addDepot(epC, Config{})
	h.addDepot(epD, Config{})
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epD, []wire.Endpoint{epB, epC})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 200<<10)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes", len(got))
	}
	for _, ep := range []wire.Endpoint{epB, epC} {
		if st := h.servers[ep].Stats(); st.Forwarded != 1 {
			t.Fatalf("depot %v stats = %+v", ep, st)
		}
	}
}

func TestRouteTableForwarding(t *testing.T) {
	h := newHarness(t)
	// B routes sessions for C onward; no source route used.
	h.addDepot(epB, Config{
		Routes: func(dst wire.Endpoint) (wire.Endpoint, bool) {
			if dst == epC {
				return epC, true
			}
			return wire.Endpoint{}, false
		},
	})
	h.addDepot(epC, Config{})
	// The initiator "routes" via B by dialing it directly with dst=C
	// and no source route — hop-by-hop forwarding.
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := wire.NewSessionID()
	hd := &wire.Header{Version: wire.Version1, Type: wire.TypeData, Session: id, Src: epA, Dst: epC}
	if err := wire.WriteHeader(conn, hd); err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("table routed"))
	conn.Close()
	if got := h.waitDelivery(id); string(got) != "table routed" {
		t.Fatalf("delivered %q", got)
	}
}

func TestUnroutedFallsBackToDirect(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{}) // no route table
	h.addDepot(epC, Config{})
	// Session addressed to C arrives at B; with no routes and no
	// source route, B forwards directly to the destination.
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := wire.NewSessionID()
	hd := &wire.Header{Version: wire.Version1, Type: wire.TypeData, Session: id, Src: epA, Dst: epC}
	wire.WriteHeader(conn, hd)
	conn.Write([]byte("direct fallback"))
	conn.Close()
	if got := h.waitDelivery(id); string(got) != "direct fallback" {
		t.Fatalf("delivered %q", got)
	}
}

func TestGenerateSession(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	h.addDepot(epC, Config{})
	const size = 100 << 10
	sess, err := lsl.OpenGenerate(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB}, size)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := h.waitDelivery(sess.ID())
	if len(got) != size {
		t.Fatalf("generated %d bytes, want %d", len(got), size)
	}
	if err := VerifyPattern(got, sess.ID(), 0); err != nil {
		t.Fatal(err)
	}
	if st := h.servers[epB].Stats(); st.Generated != 1 {
		t.Fatalf("generator stats = %+v", st)
	}
}

func TestGenerateToSelf(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	sess, err := lsl.OpenGenerate(h.dialerFrom("10.0.0.1"), epA, epB, nil, 5000)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := h.waitDelivery(sess.ID())
	if len(got) != 5000 {
		t.Fatalf("generated %d bytes", len(got))
	}
	if err := VerifyPattern(got, sess.ID(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMissingOption(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{})
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := wire.NewSessionID()
	hd := &wire.Header{Version: wire.Version1, Type: wire.TypeGenerate, Session: id, Src: epA, Dst: epB}
	wire.WriteHeader(conn, hd)
	conn.Close()
	waitFor(t, func() bool { return srv.Stats().Errors == 1 })
}

func TestRefusalUnderLoad(t *testing.T) {
	h := newHarness(t)
	block := make(chan struct{})
	h.addDepot(epB, Config{
		MaxSessions: 1,
		Local: func(s *lsl.Session) error {
			<-block // hold the session open
			io.Copy(io.Discard, s)
			return nil
		},
	})
	defer close(block)

	// First session occupies the only slot.
	s1, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Accepted == 1 })

	// Second session must be refused.
	s2, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hd, err := wire.ReadHeader(s2)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Type != wire.TypeRefuse {
		t.Fatalf("second session response = %d, want refuse", hd.Type)
	}
	if st := h.servers[epB].Stats(); st.Refused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownSessionType(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{})
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := wire.NewSessionID()
	hd := &wire.Header{Version: wire.Version1, Type: 999, Session: id, Src: epA, Dst: epB}
	wire.WriteHeader(conn, hd)
	conn.Close()
	waitFor(t, func() bool { return srv.Stats().Errors == 1 })
}

func TestBadHeaderCounted(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{})
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(bytes.Repeat([]byte{0xFF}, 64))
	conn.Close()
	waitFor(t, func() bool { return srv.Stats().Errors == 1 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestPattern(t *testing.T) {
	id := wire.SessionID{9, 8, 7}
	buf := make([]byte, 1000)
	FillPattern(buf, id, 0)
	if err := VerifyPattern(buf, id, 0); err != nil {
		t.Fatal(err)
	}
	// Offsets compose: the second half verified at its own offset.
	if err := VerifyPattern(buf[500:], id, 500); err != nil {
		t.Fatal(err)
	}
	buf[17] ^= 0xFF
	if err := VerifyPattern(buf, id, 0); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestPatternDiffersAcrossSessions(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	FillPattern(a, wire.SessionID{1}, 0)
	FillPattern(b, wire.SessionID{2}, 0)
	if bytes.Equal(a, b) {
		t.Fatal("patterns identical across sessions")
	}
}

func TestIdleTimeoutAbortsStalledSession(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{IdleTimeout: 50 * time.Millisecond})
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Write a little, then stall without closing.
	sess.Write([]byte("partial"))
	waitFor(t, func() bool { return srv.Stats().Errors >= 1 })
}

func TestShutdownDrainsSessions(t *testing.T) {
	h := newHarness(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := h.addDepot(epB, Config{
		Local: func(s *lsl.Session) error {
			started <- struct{}{}
			<-release
			io.Copy(io.Discard, s)
			return nil
		},
	})
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Write([]byte("x"))
	<-started

	// Shutdown with a short timeout fails while the session hangs.
	if srv.Shutdown(20 * time.Millisecond) {
		t.Fatal("shutdown reported success with a live session")
	}
	close(release)
	sess.Close()
	if !srv.Shutdown(5 * time.Second) {
		t.Fatal("shutdown did not complete after session drained")
	}
}

func TestOpenCheckedDetectsRefusal(t *testing.T) {
	h := newHarness(t)
	block := make(chan struct{})
	defer close(block)
	h.addDepot(epB, Config{
		MaxSessions: 1,
		Local: func(s *lsl.Session) error {
			<-block
			io.Copy(io.Discard, s)
			return nil
		},
	})
	// Occupy the slot.
	s1, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Accepted == 1 })

	_, err = lsl.OpenChecked(h.dialerFrom("10.0.0.1"), epA, epB, nil, 2*time.Second)
	if err != lsl.ErrRefused {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestOpenCheckedAcceptsQuietly(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	sess, err := lsl.OpenChecked(h.dialerFrom("10.0.0.1"), epA, epB, nil, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("after the grace period")
	sess.Write(payload)
	sess.Close()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q", got)
	}
}
