package depot

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// DefaultStoreBytes bounds a depot's asynchronous-session storage.
const DefaultStoreBytes = 256 << 20

// sessionStore holds stored payloads keyed by session id, evicting the
// oldest entries when the byte budget is exceeded — the short-term,
// cooperative storage of user data the paper's introduction proposes.
type sessionStore struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[wire.SessionID][]byte
	order    []wire.SessionID // insertion order for eviction
	evicted  int64
}

func newSessionStore(capacity int64) *sessionStore {
	if capacity <= 0 {
		capacity = DefaultStoreBytes
	}
	return &sessionStore{
		capacity: capacity,
		entries:  make(map[wire.SessionID][]byte),
	}
}

// errTooLarge rejects single payloads beyond the whole store budget.
var errTooLarge = errors.New("depot: payload exceeds store capacity")

// put stores data under id, evicting oldest entries as needed. Storing
// under an existing id replaces the previous payload.
func (s *sessionStore) put(id wire.SessionID, data []byte) error {
	if int64(len(data)) > s.capacity {
		return errTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[id]; ok {
		s.used -= int64(len(old))
		delete(s.entries, id)
		s.removeFromOrder(id)
	}
	for s.used+int64(len(data)) > s.capacity && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		s.used -= int64(len(s.entries[victim]))
		delete(s.entries, victim)
		s.evicted++
	}
	s.entries[id] = data
	s.order = append(s.order, id)
	s.used += int64(len(data))
	return nil
}

func (s *sessionStore) removeFromOrder(id wire.SessionID) {
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// get returns the stored payload (without removing it).
func (s *sessionStore) get(id wire.SessionID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.entries[id]
	return data, ok
}

// usage reports (bytes used, entry count, evictions).
func (s *sessionStore) usage() (int64, int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used, len(s.entries), s.evicted
}

// handleStore implements the storing half of asynchronous sessions: a
// TypeStore session addressed to this depot is absorbed into the store;
// one addressed elsewhere is forwarded like data with its type intact.
func (s *Server) handleStore(sess *lsl.Session, f *flow) error {
	defer sess.Close()
	next, rest, local, err := s.nextHop(sess.Header)
	if err != nil {
		if s.refuseRouting(sess, f, err) {
			return nil
		}
		return err
	}
	if !local {
		defer s.track(f, sess.Header, "store", next)()
		out, err := s.cfg.Dial.Dial(next.String())
		if err != nil {
			return fmt.Errorf("store forward dial %s: %w", next, err)
		}
		defer out.Close()
		f.emit(obs.KindConnect, obs.Event{Peer: next.String()})
		fh := forwardHeader(sess.Header, rest, f.hopIndex())
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		_, err = s.pump(out, sess, f)
		s.st.forwarded.Add(1)
		return err
	}

	defer s.track(f, sess.Header, "store", wire.Endpoint{})()
	var buf bytes.Buffer
	limited := io.LimitReader(sess, s.store.capacity+1)
	n, err := io.Copy(&buf, limited)
	f.addBytes(n)
	if err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("store read: %w", err)
	}
	if err := s.store.put(sess.ID(), buf.Bytes()); err != nil {
		return err
	}
	s.st.stored.Add(1)
	s.st.bytesStored.Add(n)
	return nil
}

// handleFetch implements the reading half: the receiver names a stored
// session id and the depot streams the payload back as a TypeData
// response on the same connection.
func (s *Server) handleFetch(sess *lsl.Session) error {
	defer sess.Close()
	opt, found := sess.Header.Option(wire.OptFetchID)
	if !found {
		return fmt.Errorf("fetch session %s: %w", sess.Header.Session, wire.ErrOptionMissing)
	}
	id, err := wire.ParseFetchID(opt)
	if err != nil {
		return err
	}
	data, ok := s.store.get(id)
	if !ok {
		// Unknown id: answer with a refusal so the receiver can
		// distinguish "not here" from a transport failure.
		s.st.fetchMisses.Add(1)
		return lsl.Refuse(sess.Conn, sess.Header)
	}
	resp := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeData,
		Session: id,
		Src:     s.cfg.Self,
		Dst:     sess.Header.Src,
	}
	if err := wire.WriteHeader(sess.Conn, resp); err != nil {
		return err
	}
	n, werr := sess.Conn.Write(data)
	// Bytes that made it onto the wire are counted even when the write
	// fails partway — partial transfers must not vanish from the stats.
	s.st.bytesFetched.Add(int64(n))
	if werr != nil {
		return fmt.Errorf("fetch write: %w", werr)
	}
	s.st.fetched.Add(1)
	return nil
}

// StoreUsage reports the async store's occupancy: bytes held, entries,
// and evictions so far.
func (s *Server) StoreUsage() (bytes int64, entries int, evicted int64) {
	return s.store.usage()
}

// StoredSession reports whether the store holds the given session and
// how many bytes it has.
func (s *Server) StoredSession(id wire.SessionID) (int64, bool) {
	data, ok := s.store.get(id)
	return int64(len(data)), ok
}
