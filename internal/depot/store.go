package depot

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// DefaultStoreBytes bounds a depot's asynchronous-session storage.
const DefaultStoreBytes = 256 << 20

// storeEntry is one stored payload, resident in exactly one tier:
// data is non-nil while it sits in memory, path is non-empty once it
// has been spilled to the disk spool.
type storeEntry struct {
	id   wire.SessionID
	size int64
	data []byte
	path string
}

// sessionStore holds stored payloads keyed by session id — the
// short-term, cooperative storage of user data the paper's
// introduction proposes. Entries live on one recency list (front =
// most recently used) spanning both tiers: when the memory budget
// overflows, the least-recently-used in-memory payload spills to the
// disk spool (or is evicted when no spool is configured); when the
// spool budget overflows, the least-recently-used on-disk payload is
// evicted for good.
type sessionStore struct {
	mu        sync.Mutex
	capacity  int64 // memory budget
	spoolCap  int64 // disk budget (0 without a spool)
	sp        *spool
	memUsed   int64
	diskUsed  int64
	entries   map[wire.SessionID]*list.Element // of *storeEntry
	lru       *list.List
	evicted   int64
	spilled   int64
	recovered int64
	restored  int64
	// reindexDropped counts spool files crash recovery deleted instead
	// of re-indexing: interrupted .tmp writes plus .p files whose bytes
	// no longer matched the digest in their name.
	reindexDropped int64
}

// newSessionStore builds the store; with a spool directory it also
// runs crash recovery, re-indexing every verifiable spooled payload.
func newSessionStore(capacity int64, spoolDir string, spoolBytes int64) (*sessionStore, error) {
	if capacity <= 0 {
		capacity = DefaultStoreBytes
	}
	s := &sessionStore{
		capacity: capacity,
		entries:  make(map[wire.SessionID]*list.Element),
		lru:      list.New(),
	}
	if spoolDir != "" {
		sp, err := newSpool(spoolDir)
		if err != nil {
			return nil, err
		}
		s.sp = sp
		s.spoolCap = spoolBytes
		if s.spoolCap <= 0 {
			s.spoolCap = DefaultSpoolBytes
		}
		found, dropped, err := sp.recover()
		if err != nil {
			return nil, err
		}
		s.reindexDropped = dropped
		// recover returns oldest-modified first; pushing each to the
		// front leaves the newest payload most-recently-used.
		for _, e := range found {
			ent := &storeEntry{id: e.id, size: e.size, path: e.path}
			s.entries[e.id] = s.lru.PushFront(ent)
			s.diskUsed += e.size
			s.recovered++
		}
		s.rebalance()
	}
	return s, nil
}

// errTooLarge rejects single payloads beyond the in-memory budget.
var errTooLarge = errors.New("depot: payload exceeds store capacity")

// put stores data under id, spilling and evicting least-recently-used
// entries as needed. Storing under an existing id replaces the
// previous payload.
func (s *sessionStore) put(id wire.SessionID, data []byte) error {
	if int64(len(data)) > s.capacity {
		return errTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		s.drop(el)
	}
	ent := &storeEntry{id: id, size: int64(len(data)), data: data}
	s.entries[id] = s.lru.PushFront(ent)
	s.memUsed += ent.size
	s.rebalance()
	return nil
}

// rebalance restores both byte budgets, called with the lock held.
// Memory overflow spills (or, with no spool, evicts) the coldest
// in-memory entry; spool overflow evicts the coldest on-disk entry.
func (s *sessionStore) rebalance() {
	for s.memUsed > s.capacity {
		el := s.coldest(func(e *storeEntry) bool { return e.data != nil })
		if el == nil {
			break
		}
		ent := el.Value.(*storeEntry)
		if s.sp != nil {
			if path, err := s.sp.write(ent.id, ent.data); err == nil {
				ent.path = path
				ent.data = nil
				s.memUsed -= ent.size
				s.diskUsed += ent.size
				s.spilled++
				continue
			}
		}
		s.drop(el)
		s.evicted++
	}
	for s.sp != nil && s.diskUsed > s.spoolCap {
		el := s.coldest(func(e *storeEntry) bool { return e.path != "" })
		if el == nil {
			break
		}
		s.drop(el)
		s.evicted++
	}
}

// coldest walks the recency list from its least-recently-used end and
// returns the first element matching the tier predicate.
func (s *sessionStore) coldest(match func(*storeEntry) bool) *list.Element {
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		if match(el.Value.(*storeEntry)) {
			return el
		}
	}
	return nil
}

// drop removes an entry from the map, the recency list, its byte
// accounting, and (for an on-disk entry) the spool directory.
func (s *sessionStore) drop(el *list.Element) {
	ent := el.Value.(*storeEntry)
	s.lru.Remove(el)
	delete(s.entries, ent.id)
	if ent.data != nil {
		s.memUsed -= ent.size
	} else {
		s.diskUsed -= ent.size
		s.sp.remove(ent.path)
	}
}

// get returns the stored payload (without removing it), promoting the
// entry to most-recently-used. A spooled payload is read back from
// disk and verified against the digest in its file name; one damaged
// at rest is dropped and reported as a miss rather than served wrong.
func (s *sessionStore) get(id wire.SessionID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[id]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*storeEntry)
	if ent.data != nil {
		s.lru.MoveToFront(el)
		return ent.data, true
	}
	data, err := s.sp.read(ent.path)
	if err != nil {
		s.drop(el)
		return nil, false
	}
	s.restored++
	s.lru.MoveToFront(el)
	return data, true
}

// usage reports (bytes held across both tiers, entry count, evictions).
func (s *sessionStore) usage() (int64, int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memUsed + s.diskUsed, len(s.entries), s.evicted
}

// spoolUsage reports the disk tier: bytes on disk, entries spilled so
// far, entries re-indexed by crash recovery, and payloads read back.
func (s *sessionStore) spoolUsage() (bytes int64, spilled, recovered, restored int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskUsed, s.spilled, s.recovered, s.restored
}

// spoolReindexDropped reports how many spool files crash recovery
// deleted rather than re-indexed. Set once at construction, before the
// store is shared, so no lock is needed.
func (s *sessionStore) spoolReindexDropped() int64 { return s.reindexDropped }

// handleStore implements the storing half of asynchronous sessions: a
// TypeStore session addressed to this depot is absorbed into the store;
// one addressed elsewhere is forwarded like data with its type intact.
func (s *Server) handleStore(sess *lsl.Session, f *flow) error {
	defer sess.Close()
	next, rest, local, err := s.nextHop(sess.Header)
	if err != nil {
		if s.refuseRouting(sess, f, err) {
			return nil
		}
		return err
	}
	if !local {
		defer s.track(f, sess.Header, "store", next)()
		out, err := s.cfg.Dial.Dial(next.String())
		if err != nil {
			return fmt.Errorf("store forward dial %s: %w", next, err)
		}
		defer out.Close()
		f.emit(obs.KindConnect, obs.Event{Peer: next.String()})
		fh := forwardHeader(sess.Header, rest, f.hopIndex())
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		_, err = s.pump(out, s.checkedSource(sess), f)
		s.st.forwarded.Add(1)
		return s.flagCorrupt(sess, f, err)
	}

	defer s.track(f, sess.Header, "store", wire.Endpoint{})()
	// The storing depot is the payload's terminus: a checksummed stream
	// is verified and unframed here, so the store holds raw bytes.
	var src io.Reader = sess
	if sess.Header.Checksummed() {
		src = wire.NewFrameReader(sess)
	}
	var buf bytes.Buffer
	limited := io.LimitReader(src, s.store.capacity+1)
	n, err := io.Copy(&buf, limited)
	f.addBytes(n)
	if err != nil && !errors.Is(err, io.EOF) {
		return s.flagCorrupt(sess, f, fmt.Errorf("store read: %w", err))
	}
	if err := s.store.put(sess.ID(), buf.Bytes()); err != nil {
		return err
	}
	s.st.stored.Add(1)
	s.st.bytesStored.Add(n)
	return nil
}

// handleFetch implements the reading half: the receiver names a stored
// session id and the depot streams the payload back as a TypeData
// response on the same connection.
func (s *Server) handleFetch(sess *lsl.Session) error {
	defer sess.Close()
	opt, found := sess.Header.Option(wire.OptFetchID)
	if !found {
		return fmt.Errorf("fetch session %s: %w", sess.Header.Session, wire.ErrOptionMissing)
	}
	id, err := wire.ParseFetchID(opt)
	if err != nil {
		return err
	}
	data, ok := s.store.get(id)
	if !ok {
		// Unknown id: answer with a refusal so the receiver can
		// distinguish "not here" from a transport failure.
		s.st.fetchMisses.Add(1)
		return lsl.Refuse(sess.Conn, sess.Header)
	}
	resp := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeData,
		Session: id,
		Src:     s.cfg.Self,
		Dst:     sess.Header.Src,
	}
	if err := wire.WriteHeader(sess.Conn, resp); err != nil {
		return err
	}
	n, werr := sess.Conn.Write(data)
	// Bytes that made it onto the wire are counted even when the write
	// fails partway — partial transfers must not vanish from the stats.
	s.st.bytesFetched.Add(int64(n))
	if werr != nil {
		return fmt.Errorf("fetch write: %w", werr)
	}
	s.st.fetched.Add(1)
	return nil
}

// StoreUsage reports the async store's occupancy: bytes held, entries,
// and evictions so far.
func (s *Server) StoreUsage() (bytes int64, entries int, evicted int64) {
	return s.store.usage()
}

// SpoolUsage reports the durable disk tier: bytes spooled, entries
// spilled from memory, entries re-indexed by crash recovery, and
// spooled payloads read back since start.
func (s *Server) SpoolUsage() (bytes int64, spilled, recovered, restored int64) {
	return s.store.spoolUsage()
}

// StoredSession reports whether the store holds the given session and
// how many bytes it has.
func (s *Server) StoredSession(id wire.SessionID) (int64, bool) {
	data, ok := s.store.get(id)
	return int64(len(data)), ok
}
