package depot

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestMulticastFanOut(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{}) // interior relay
	h.addDepot(epC, Config{}) // leaf
	h.addDepot(epD, Config{}) // leaf

	tree := &wire.TreeNode{
		Addr: epB,
		Children: []*wire.TreeNode{
			{Addr: epC},
			{Addr: epD},
		},
	}
	sess, err := lsl.OpenMulticast(h.dialerFrom("10.0.0.1"), epA, epA, tree)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("stage me "), 10000)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	// Both leaves receive the full payload under the same session id.
	var got int
	deadline := 0
	for got < 2 && deadline < 2 {
		id := <-h.done
		if id != sess.ID() {
			continue
		}
		got++
	}
	h.mu.Lock()
	data := h.delivered[sess.ID()]
	h.mu.Unlock()
	if !bytes.Equal(data, payload) {
		t.Fatalf("leaf received %d bytes, want %d", len(data), len(payload))
	}
	if st := h.servers[epB].Stats(); st.Forwarded != 1 || st.BytesForwarded != int64(len(payload)) {
		t.Fatalf("interior stats = %+v", st)
	}
}

func TestMulticastThreeLevels(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	h.addDepot(epC, Config{})
	h.addDepot(epD, Config{})
	tree := &wire.TreeNode{
		Addr: epB,
		Children: []*wire.TreeNode{
			{Addr: epC, Children: []*wire.TreeNode{{Addr: epD}}},
		},
	}
	sess, err := lsl.OpenMulticast(h.dialerFrom("10.0.0.1"), epA, epA, tree)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("down the chain")
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("leaf got %q", got)
	}
}

func TestMulticastSingleNodeTreeDeliversLocally(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	tree := &wire.TreeNode{Addr: epB}
	sess, err := lsl.OpenMulticast(h.dialerFrom("10.0.0.1"), epA, epA, tree)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		sess.Write([]byte("solo"))
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); string(got) != "solo" {
		t.Fatalf("got %q", got)
	}
}

func TestMulticastDepotNotInTree(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{})
	tree := &wire.TreeNode{Addr: epC} // B is not in this tree
	// Dial B directly with C's tree: B must reject.
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := wire.MulticastTreeOption(tree)
	id, _ := wire.NewSessionID()
	hd := &wire.Header{Version: wire.Version1, Type: wire.TypeMulticast,
		Session: id, Src: epA, Dst: epB, Options: []wire.Option{opt}}
	wire.WriteHeader(conn, hd)
	conn.Close()
	waitFor(t, func() bool { return srv.Stats().Errors >= 1 })
}

func TestPumpMovesEverything(t *testing.T) {
	srv := &Server{cfg: Config{PipelineBytes: 64 << 10}}
	src := bytes.NewReader(bytes.Repeat([]byte{42}, 500<<10))
	var dst bytes.Buffer
	n, err := srv.pump(&dst, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500<<10 || dst.Len() != 500<<10 {
		t.Fatalf("pumped %d, buffered %d", n, dst.Len())
	}
}

func TestPumpPropagatesWriteError(t *testing.T) {
	srv := &Server{cfg: Config{PipelineBytes: 64 << 10}}
	src := bytes.NewReader(make([]byte, 1<<20))
	n, err := srv.pump(failWriter{}, src, nil)
	if err == nil {
		t.Fatal("write error swallowed")
	}
	if n != 0 {
		t.Fatalf("reported %d bytes written", n)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestPumpPropagatesReadError(t *testing.T) {
	srv := &Server{cfg: Config{PipelineBytes: 64 << 10}}
	var dst bytes.Buffer
	_, err := srv.pump(&dst, failReader{}, nil)
	if err == nil {
		t.Fatal("read error swallowed")
	}
}

type failReader struct{}

func (failReader) Read(p []byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestPumpTinyPipeline(t *testing.T) {
	srv := &Server{cfg: Config{PipelineBytes: 1}} // depth clamps to 1
	src := bytes.NewReader(make([]byte, 100<<10))
	var dst bytes.Buffer
	n, err := srv.pump(&dst, src, nil)
	if err != nil || n != 100<<10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestPipeConnInterface(t *testing.T) {
	pr, pw := io.Pipe()
	c := pipeConn{PipeReader: pr}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("pipeConn should be read-only")
	}
	if c.LocalAddr().Network() != "pipe" || c.RemoteAddr().String() != "pipe" {
		t.Fatal("pipe addresses wrong")
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	go pw.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("read via pipeConn: %q, %v", buf, err)
	}
	c.Close()
}
