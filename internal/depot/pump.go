package depot

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/netlogistics/lsl/internal/bufpool"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// addBytes records payload progress in the live session entry.
func (f *flow) addBytes(n int64) {
	if f != nil {
		f.entry.AddBytes(n)
	}
}

// addQueued moves the session's pipeline-occupancy figure.
func (f *flow) addQueued(n int64) {
	if f != nil {
		f.entry.AddQueued(n)
	}
}

// firstByte reports whether this is the first payload chunk of the
// flow (false for a nil flow, so no event fires).
func (f *flow) firstByte() bool {
	return f != nil && f.first.CompareAndSwap(false, true)
}

// acquire blocks until the flow holds fair-share credit for n bytes.
// Free for a nil flow or an unscheduled depot, so bare pumps and
// depots without a scheduler pay nothing.
func (f *flow) acquire(n int) {
	if f != nil {
		f.fs.Acquire(n)
	}
}

// pump moves the session payload from src to dst through a bounded
// pipeline of PipelineBytes: a reader goroutine fills chunks into a
// channel whose total capacity is the pipeline size, and the writer
// drains it. When the downstream sublink is slower, the channel fills
// and the reader — and therefore the upstream TCP connection — blocks:
// the depot back-pressure of Figure 5.
//
// Chunk buffers come from the shared bufpool: a chunk lives from its
// read until the downstream write completes (possibly queued for the
// whole pipeline depth), and is then recycled, so a pump's allocation
// cost is its steady-state pipeline working set rather than one buffer
// per 32 KiB forwarded — which matters ×N when a striped session runs
// N pumps through one depot.
//
// The pump is also where the logistical effect is observed: every chunk
// moved is recorded as it moves (so partial transfers never lose bytes
// on an error path), pipeline occupancy is kept as a live gauge that
// rises exactly when the downstream sublink back-pressures, and the
// time the reader spends blocked on a full pipeline is accounted as
// stall time. f may be nil (bare pumps in tests): accounting still
// lands in the server's counters, only per-session reporting is
// skipped.
func (s *Server) pump(dst io.Writer, src io.Reader, f *flow) (int64, error) {
	depth := s.cfg.PipelineBytes / chunkSize
	if depth < 1 {
		depth = 1
	}
	type item struct {
		data []byte
		buf  *[]byte // pool token; nil for the terminal error item
		err  error
	}
	ch := make(chan item, depth)
	enqueue := func(it item) {
		n := int64(len(it.data))
		s.met.occupancy.Add(n)
		f.addQueued(n)
		select {
		case ch <- it:
		default:
			// Pipeline full: the upstream sublink is now blocked on
			// this depot — Figure 5 back-pressure, measured.
			t0 := time.Now()
			ch <- it
			s.met.stallNanos.Add(time.Since(t0).Nanoseconds())
		}
	}
	dequeued := func(it item) {
		n := int64(len(it.data))
		s.met.occupancy.Add(-n)
		f.addQueued(-n)
		bufpool.Put(it.buf)
	}
	go func() {
		for {
			bp := bufpool.Get()
			buf := *bp
			n, err := src.Read(buf)
			if n > 0 {
				enqueue(item{data: buf[:n], buf: bp})
			} else {
				bufpool.Put(bp)
			}
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				enqueue(item{err: err})
				close(ch)
				return
			}
		}
	}()

	start := time.Now()
	var written int64
	finish := func(err error) (int64, error) {
		f.emit(obs.KindLastByte, obs.Event{Bytes: written})
		if elapsed := time.Since(start).Seconds(); elapsed > 0 && written > 0 {
			s.met.throughput.Observe(float64(written) * 8 / 1e6 / elapsed)
		}
		return written, err
	}
	for it := range ch {
		if it.data == nil {
			if it.err != nil {
				return finish(fmt.Errorf("pump read: %w", it.err))
			}
			break
		}
		if f.firstByte() {
			f.emit(obs.KindFirstByte, obs.Event{})
		}
		// Fair sharing gates the write, not the read: upstream bytes
		// still land in the pipeline at full speed, but the contended
		// resource — the downstream sublink — is granted by weight.
		f.acquire(len(it.data))
		t0 := time.Now()
		n, err := dst.Write(it.data)
		s.met.chunkWrite.Observe(time.Since(t0).Seconds())
		dequeued(it)
		// Record bytes as they move, not when the pump completes:
		// partial transfers keep their accounting on every error path.
		written += int64(n)
		s.st.bytesForwarded.Add(int64(n))
		s.met.bytesFwd.Add(int64(n))
		f.addBytes(int64(n))
		if err != nil {
			// Drain the reader goroutine so it can exit, releasing the
			// occupancy the queued chunks still hold.
			go func() {
				for it := range ch {
					dequeued(it)
				}
			}()
			return finish(fmt.Errorf("pump write: %w", err))
		}
	}
	return finish(nil)
}

// handleMulticast implements the synchronous application-layer
// multicast staging option: this depot locates itself in the carried
// tree, opens a session to each child, and duplicates the payload to
// all of them (and to local delivery when it is a leaf or the tree
// marks it as a consumer).
func (s *Server) handleMulticast(sess *lsl.Session, f *flow) error {
	defer sess.Close()
	opt, found := sess.Header.Option(wire.OptMulticastTree)
	if !found {
		return fmt.Errorf("multicast session %s: %w", sess.Header.Session, wire.ErrOptionMissing)
	}
	tree, err := wire.ParseMulticastTree(opt)
	if err != nil {
		return err
	}
	node := findNode(tree, s.cfg.Self)
	if node == nil {
		return fmt.Errorf("multicast session %s: depot %s not in tree", sess.Header.Session, s.cfg.Self)
	}
	defer s.track(f, sess.Header, "multicast", wire.Endpoint{})()

	// Open one onward session per child, carrying that child's subtree.
	var writers []io.Writer
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for _, child := range node.Children {
		childOpt, err := wire.MulticastTreeOption(child)
		if err != nil {
			return err
		}
		out, err := s.cfg.Dial.Dial(child.Addr.String())
		if err != nil {
			return fmt.Errorf("multicast dial %s: %w", child.Addr, err)
		}
		closers = append(closers, out)
		f.emit(obs.KindConnect, obs.Event{Peer: child.Addr.String()})
		fh := &wire.Header{
			Version: sess.Header.Version,
			Type:    wire.TypeMulticast,
			Session: sess.Header.Session,
			Src:     sess.Header.Src,
			Dst:     child.Addr,
			Options: []wire.Option{childOpt, wire.HopIndexOption(uint16(f.hopIndex()))},
		}
		if topt, ok := sess.Header.Option(wire.OptTraceID); ok {
			// The trace id rides every branch of the staging tree.
			fh.AddOption(topt)
		}
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		writers = append(writers, out)
	}

	// A leaf consumes the stream locally; an interior node relays.
	var localW *io.PipeWriter
	var localDone chan error
	if len(node.Children) == 0 {
		pr, pw := io.Pipe()
		localW = pw
		localDone = make(chan error, 1)
		inner := &lsl.Session{Conn: pipeConn{PipeReader: pr}, Header: sess.Header}
		// The pump already records this flow's progress; give delivery
		// an entry-less clone so session-table bytes aren't doubled.
		fd := &flow{srv: s, id: f.id, trace: f.trace, hop: f.hopIndex()}
		go func() { localDone <- s.deliver(inner, fd) }()
		writers = append(writers, pw)
	}

	var dst io.Writer
	switch len(writers) {
	case 0:
		dst = io.Discard
	case 1:
		dst = writers[0]
	default:
		dst = io.MultiWriter(writers...)
	}
	_, err = s.pump(dst, s.checkedSource(sess), f)
	s.st.forwarded.Add(1)
	if localW != nil {
		localW.Close()
		if derr := <-localDone; derr != nil && err == nil {
			err = derr
		}
	}
	return s.flagCorrupt(sess, f, err)
}

// hopIndex returns the flow's hop position (0 for a nil flow).
func (f *flow) hopIndex() int {
	if f == nil {
		return 0
	}
	return f.hop
}

// findNode locates the tree node whose address matches self.
func findNode(n *wire.TreeNode, self wire.Endpoint) *wire.TreeNode {
	if n.Addr == self {
		return n
	}
	for _, c := range n.Children {
		if found := findNode(c, self); found != nil {
			return found
		}
	}
	return nil
}
