package depot

import (
	"errors"
	"fmt"
	"io"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// pump moves the session payload from src to dst through a bounded
// pipeline of PipelineBytes: a reader goroutine fills chunks into a
// channel whose total capacity is the pipeline size, and the writer
// drains it. When the downstream sublink is slower, the channel fills
// and the reader — and therefore the upstream TCP connection — blocks:
// the depot back-pressure of Figure 5.
func (s *Server) pump(dst io.Writer, src io.Reader) (int64, error) {
	depth := s.cfg.PipelineBytes / chunkSize
	if depth < 1 {
		depth = 1
	}
	type item struct {
		data []byte
		err  error
	}
	ch := make(chan item, depth)
	go func() {
		for {
			buf := make([]byte, chunkSize)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- item{data: buf[:n]}
			}
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				ch <- item{err: err}
				close(ch)
				return
			}
		}
	}()

	var written int64
	for it := range ch {
		if it.data == nil {
			if it.err != nil {
				return written, fmt.Errorf("pump read: %w", it.err)
			}
			break
		}
		n, err := dst.Write(it.data)
		written += int64(n)
		if err != nil {
			// Drain the reader goroutine so it can exit.
			go func() {
				for range ch {
				}
			}()
			return written, fmt.Errorf("pump write: %w", err)
		}
	}
	return written, nil
}

// handleMulticast implements the synchronous application-layer
// multicast staging option: this depot locates itself in the carried
// tree, opens a session to each child, and duplicates the payload to
// all of them (and to local delivery when it is a leaf or the tree
// marks it as a consumer).
func (s *Server) handleMulticast(sess *lsl.Session) error {
	defer sess.Close()
	opt, found := sess.Header.Option(wire.OptMulticastTree)
	if !found {
		return fmt.Errorf("multicast session %s: %w", sess.Header.Session, wire.ErrOptionMissing)
	}
	tree, err := wire.ParseMulticastTree(opt)
	if err != nil {
		return err
	}
	node := findNode(tree, s.cfg.Self)
	if node == nil {
		return fmt.Errorf("multicast session %s: depot %s not in tree", sess.Header.Session, s.cfg.Self)
	}

	// Open one onward session per child, carrying that child's subtree.
	var writers []io.Writer
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for _, child := range node.Children {
		childOpt, err := wire.MulticastTreeOption(child)
		if err != nil {
			return err
		}
		out, err := s.cfg.Dial.Dial(child.Addr.String())
		if err != nil {
			return fmt.Errorf("multicast dial %s: %w", child.Addr, err)
		}
		closers = append(closers, out)
		fh := &wire.Header{
			Version: sess.Header.Version,
			Type:    wire.TypeMulticast,
			Session: sess.Header.Session,
			Src:     sess.Header.Src,
			Dst:     child.Addr,
			Options: []wire.Option{childOpt},
		}
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		writers = append(writers, out)
	}

	// A leaf consumes the stream locally; an interior node relays.
	var localW *io.PipeWriter
	var localDone chan error
	if len(node.Children) == 0 {
		pr, pw := io.Pipe()
		localW = pw
		localDone = make(chan error, 1)
		inner := &lsl.Session{Conn: pipeConn{PipeReader: pr}, Header: sess.Header}
		go func() { localDone <- s.deliver(inner) }()
		writers = append(writers, pw)
	}

	var dst io.Writer
	switch len(writers) {
	case 0:
		dst = io.Discard
	case 1:
		dst = writers[0]
	default:
		dst = io.MultiWriter(writers...)
	}
	n, err := s.pump(dst, sess)
	s.count(func(st *Stats) { st.Forwarded++; st.BytesForwarded += n })
	if localW != nil {
		localW.Close()
		if derr := <-localDone; derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// findNode locates the tree node whose address matches self.
func findNode(n *wire.TreeNode, self wire.Endpoint) *wire.TreeNode {
	if n.Addr == self {
		return n
	}
	for _, c := range n.Children {
		if found := findNode(c, self); found != nil {
			return found
		}
	}
	return nil
}
