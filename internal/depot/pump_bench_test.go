package depot

import (
	"bytes"
	"io"
	"net"
	"testing"

	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// benchServer builds a minimal depot for exercising the pump without a
// network.
func benchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := New(Config{
		Self: wire.MustEndpoint("10.0.0.1:7411"),
		Dial: lsl.DialerFunc(func(string) (net.Conn, error) { return nil, io.EOF }),
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkPump measures the forwarding pump moving 8 MB from an
// in-memory reader to a discarding writer: the per-chunk cost of the
// depot's hot path. allocs/op is the headline — the chunk-buffer pool
// exists to drive it down.
func BenchmarkPump(b *testing.B) {
	srv := benchServer(b)
	payload := make([]byte, 8<<20)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := bytes.NewReader(payload)
		if _, err := srv.pump(io.Discard, src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairShare measures the same 8 MB pump with a fair-share
// flow attached to a work-conserving scheduler: the per-chunk cost of
// the credit gate on the write path. The delta against BenchmarkPump
// is the scheduling tax an unloaded depot pays for multi-tenancy.
func BenchmarkFairShare(b *testing.B) {
	srv := benchServer(b)
	sched := fairshare.New(fairshare.Config{})
	f := &flow{srv: srv, fs: sched.Join(1)}
	defer f.fs.Leave()
	payload := make([]byte, 8<<20)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := bytes.NewReader(payload)
		if _, err := srv.pump(io.Discard, src, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPumpChecksum measures the same 8 MB pump reading through
// the per-chunk CRC-32C verifier — the integrity tax every depot hop
// of a checksummed session pays. The delta against BenchmarkPump is
// the guarded figure: hardware CRC should keep it a small fraction of
// the plain pump cost.
func BenchmarkPumpChecksum(b *testing.B) {
	srv := benchServer(b)
	var framed bytes.Buffer
	fw := wire.NewFrameWriter(&framed)
	if _, err := fw.Write(make([]byte, 8<<20)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := wire.NewVerifyingReader(bytes.NewReader(framed.Bytes()))
		if _, err := srv.pump(io.Discard, src, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePattern measures the generate-path pattern writer, the
// other per-transfer buffer consumer on the depot.
func BenchmarkWritePattern(b *testing.B) {
	var id wire.SessionID
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := writePattern(io.Discard, 8<<20, id); err != nil {
			b.Fatal(err)
		}
	}
}
