package depot

import (
	"errors"
	"fmt"
	"net"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// ErrNoRoute is the typed refusal for a table-driven depot that holds
// no route for a session's destination. The depot refuses the session
// (the initiator sees lsl.ErrRefused, which its retry and failover
// machinery already classifies as transient) rather than guessing a
// direct path the controller never sanctioned.
var ErrNoRoute = errors.New("depot: no route for destination")

// ErrHopLimit is the typed refusal for a session whose hop count
// reached Config.MaxHops. It bounds transient forwarding loops — a
// freshly pushed table can briefly disagree with a neighbour's stale
// one — the way an IP TTL bounds routing loops.
var ErrHopLimit = errors.New("depot: hop limit exceeded")

// routeTable is one immutable controller-pushed snapshot. Lookups load
// the current pointer and read the map lock-free; installs swap the
// whole pointer, so forwarding never sees a half-updated table.
type routeTable struct {
	epoch uint64
	next  map[wire.Endpoint]wire.Endpoint
}

// InstallRoutes atomically replaces the depot's route table if epoch is
// newer than the installed one, reporting whether the install happened.
// Stale or duplicate pushes (epoch not newer) are ignored, so reordered
// control sessions cannot roll routing state backwards.
func (s *Server) InstallRoutes(epoch uint64, entries []wire.RouteEntry) bool {
	table := &routeTable{epoch: epoch, next: make(map[wire.Endpoint]wire.Endpoint, len(entries))}
	for _, e := range entries {
		table.next[e.Dst] = e.Next
	}
	for {
		cur := s.routes.Load()
		if cur != nil && epoch <= cur.epoch {
			return false
		}
		if s.routes.CompareAndSwap(cur, table) {
			s.met.tableEpoch.Set(int64(epoch))
			return true
		}
	}
}

// RouteEpoch returns the epoch of the installed route table, or 0 when
// no table has ever been pushed.
func (s *Server) RouteEpoch() uint64 {
	if t := s.routes.Load(); t != nil {
		return t.epoch
	}
	return 0
}

// RouteCount returns the number of entries in the installed table.
func (s *Server) RouteCount() int {
	if t := s.routes.Load(); t != nil {
		return len(t.next)
	}
	return 0
}

// lookupRoute consults the installed table for dst, counting the hit or
// miss both in aggregate and per destination.
func (s *Server) lookupRoute(dst wire.Endpoint) (wire.Endpoint, bool) {
	t := s.routes.Load()
	if t == nil {
		s.st.tableMisses.Add(1)
		s.met.tableMisses.Inc()
		s.cfg.Metrics.Counter(fmt.Sprintf("%s{dst=%q}", MetricTableMisses, dst.String())).Inc()
		return wire.Endpoint{}, false
	}
	next, ok := t.next[dst]
	if ok {
		s.st.tableHits.Add(1)
		s.met.tableHits.Inc()
		s.cfg.Metrics.Counter(fmt.Sprintf("%s{dst=%q}", MetricTableHits, dst.String())).Inc()
	} else {
		s.st.tableMisses.Add(1)
		s.met.tableMisses.Inc()
		s.cfg.Metrics.Counter(fmt.Sprintf("%s{dst=%q}", MetricTableMisses, dst.String())).Inc()
	}
	return next, ok
}

// handleControl consumes a TypeControl push: it installs the carried
// route table if its epoch is newer than the installed one, then
// answers with a TypeControl header echoing the depot's installed
// epoch so the pusher can verify the push landed. A malformed table is
// rejected whole — the depot keeps forwarding by its current (possibly
// stale) table, which is the control-plane analogue of the stripe
// options' degrade-don't-guess discipline.
func (s *Server) handleControl(conn net.Conn, h *wire.Header, f *flow) error {
	defer conn.Close()
	if !s.cfg.AcceptControl {
		s.st.refused.Add(1)
		s.met.refused.Inc()
		f.emit(obs.KindRefused, obs.Event{Peer: h.Src.String(), Detail: "control sessions not accepted"})
		return lsl.Refuse(conn, h)
	}
	epoch := h.TableEpoch()
	entries, perr := h.RouteEntries()
	switch {
	case epoch == 0:
		// Missing or damaged epoch: unversioned state must never
		// overwrite versioned state.
		s.st.stalePushes.Add(1)
		s.met.stalePushes.Inc()
		perr = fmt.Errorf("control push without epoch: %w", wire.ErrOptionMissing)
	case perr != nil:
		s.st.errors.Add(1)
		s.met.errors.Inc()
	case s.InstallRoutes(epoch, entries):
		s.st.tablePushes.Add(1)
		s.met.tablePushes.Inc()
		f.emit(obs.KindRoutes, obs.Event{Peer: h.Src.String(),
			Detail: fmt.Sprintf("installed %d routes at epoch %d", len(entries), epoch)})
		s.logf("depot %s: installed route table epoch %d (%d entries)", s.cfg.Self, epoch, len(entries))
	default:
		s.st.stalePushes.Add(1)
		s.met.stalePushes.Inc()
		f.emit(obs.KindRoutes, obs.Event{Peer: h.Src.String(),
			Detail: fmt.Sprintf("ignored stale push epoch %d (installed %d)", epoch, s.RouteEpoch())})
	}
	ack := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeControl,
		Session: h.Session,
		Src:     s.cfg.Self,
		Dst:     h.Src,
		Options: []wire.Option{wire.TableEpochOption(s.RouteEpoch())},
	}
	if werr := wire.WriteHeader(conn, ack); werr != nil && perr == nil {
		perr = fmt.Errorf("control ack: %w", werr)
	}
	return perr
}

// refuseRouting reports whether err is a routing refusal (no route, hop
// limit) and, when it is, refuses the session so the initiator's typed
// retry/failover path takes over instead of seeing a bare hangup.
func (s *Server) refuseRouting(sess *lsl.Session, f *flow, err error) bool {
	if !errors.Is(err, ErrNoRoute) && !errors.Is(err, ErrHopLimit) {
		return false
	}
	s.st.refused.Add(1)
	s.met.refused.Inc()
	if errors.Is(err, ErrHopLimit) {
		s.st.hopLimited.Add(1)
		s.met.hopLimited.Inc()
	}
	f.emit(obs.KindRefused, obs.Event{Peer: sess.Header.Src.String(), Detail: err.Error()})
	s.logf("depot %s: refusing session %s: %v", s.cfg.Self, sess.Header.Session, err)
	_ = lsl.Refuse(sess.Conn, sess.Header)
	return true
}
