// Package depot implements the logistical storage depot: a user-level
// session-routing process that accepts LSL sessions, determines the
// next hop from the loose source route or its route table, forwards the
// payload through a bounded pipeline buffer, and delivers sessions
// addressed to itself to a local handler.
//
// The bounded buffer is the heart of the logistical effect's mechanics:
// a depot absorbs up to its pipeline's worth of bytes from a fast
// upstream sublink while the downstream sublink drains at its own pace;
// when the pipeline fills, back-pressure propagates upstream exactly as
// in Figure 5 of the paper. The depot reports that mechanism live
// through the obs layer: pipeline occupancy as a gauge, per-hop bytes
// and stall time from the pump, and per-session hop-indexed trace
// events.
package depot

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"github.com/netlogistics/lsl/internal/bufpool"
	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// DefaultPipelineBytes matches the paper's 32 MB depot pipeline
// (8 MB kernel send + 8 MB kernel receive + matching user buffers).
const DefaultPipelineBytes = 32 << 20

// DefaultQueueTimeout bounds an admission-queue wait when
// Config.QueueTimeout is zero: long enough to ride out a typical
// session draining, short enough that an initiator's retry policy —
// not the queue — owns multi-second recovery.
const DefaultQueueTimeout = 10 * time.Second

// chunkSize is the unit of the forwarding pipeline. It equals the
// pooled buffer size so every hot loop draws from one shared pool.
const chunkSize = bufpool.ChunkSize

// Handler consumes sessions addressed to this depot's host.
type Handler func(s *lsl.Session) error

// Config parameterizes a depot server.
type Config struct {
	// Self is this depot's own endpoint, used to recognize sessions
	// addressed to it.
	Self wire.Endpoint
	// Dial opens onward transport connections.
	Dial lsl.Dialer
	// Routes resolves a destination to the next-hop address when a
	// session carries no source route. It may be nil, in which case the
	// depot consults the controller-pushed route table (if any) and then
	// forwards directly to the destination.
	Routes func(dst wire.Endpoint) (next wire.Endpoint, ok bool)
	// AcceptControl permits TypeControl sessions: a controller may push
	// versioned route tables into this depot. When false (the default),
	// control sessions are refused.
	AcceptControl bool
	// TableDriven makes routing strict: a session with no source route,
	// no static Routes answer, and no installed-table entry for its
	// destination is refused with ErrNoRoute instead of being dialed
	// directly. This is the paper's controller-owned routing mode — a
	// depot never improvises a path the control plane didn't push.
	TableDriven bool
	// MaxHops, when positive, refuses any session whose OptHopIndex has
	// already reached this many depot traversals — loop protection for
	// table-driven forwarding (transiently inconsistent tables can
	// loop) and for malicious or buggy source routes alike.
	MaxHops int
	// Local handles sessions addressed to Self. Nil means count and
	// discard the payload.
	Local Handler
	// PipelineBytes bounds per-session buffering (0 selects
	// DefaultPipelineBytes).
	PipelineBytes int
	// StoreBytes bounds the asynchronous-session store (0 selects
	// DefaultStoreBytes).
	StoreBytes int64
	// SpoolDir, when non-empty, gives the store a durable disk tier: a
	// content-addressed spool directory that payloads spill to when the
	// in-memory budget overflows, and that a restarted depot re-indexes
	// so stored sessions survive a crash (torn writes are detected by
	// the digest in the file name and dropped).
	SpoolDir string
	// SpoolBytes bounds the spool directory (0 selects
	// DefaultSpoolBytes). Ignored without SpoolDir.
	SpoolBytes int64
	// IdleTimeout, when positive, aborts a session whose transport
	// makes no progress for this long (requires the net.Conn to
	// support read deadlines, which TCP and the emulated network both
	// do). It protects a depot's pipeline buffers from peers that hang
	// without closing.
	IdleTimeout time.Duration
	// MaxSessions, when positive, makes the depot refuse sessions
	// beyond this concurrency — the load-based session negotiation the
	// paper proposes for future work.
	MaxSessions int
	// QueueDepth, when positive alongside MaxSessions, admits up to this
	// many over-limit sessions into a bounded wait queue instead of
	// refusing them outright: transient bursts ride out a slot becoming
	// free, and only sustained overload (queue full, or QueueTimeout
	// exceeded) is refused. Zero keeps the legacy immediate refusal.
	QueueDepth int
	// QueueTimeout bounds how long a queued session waits for a slot
	// before being refused (0 selects DefaultQueueTimeout).
	QueueTimeout time.Duration
	// FairShare, when non-nil, makes every data-path pump acquire credit
	// from this weighted DRR scheduler before forwarding each chunk, so
	// concurrent sessions share the depot's downstream bandwidth in
	// proportion to the weight carried in their OptSessionWeight. One
	// scheduler models one contended trunk; sharing it across depots
	// models a shared sublink.
	FairShare *fairshare.Scheduler
	// ForwardRetry retries a failed onward dial with backoff before
	// giving up on a session. The zero policy dials exactly once.
	ForwardRetry retry.Policy
	// FailoverDirect, when set, makes the depot dial the session's
	// final destination directly after the next hop stays unreachable
	// through ForwardRetry — hop-level graceful degradation that trades
	// the rest of the chain for delivery.
	FailoverDirect bool
	// Faults, when non-nil, deterministically injects failures into the
	// data path (refuse-connect, drop-after-N-bytes, stall) so recovery
	// paths are testable. Production configs leave it nil.
	Faults *FaultInjector
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the depot's counters, the
	// pipeline-occupancy back-pressure gauge, and the sublink
	// throughput / chunk-latency / session-duration histograms. A
	// registry may be shared by several depots; its figures are then
	// aggregates, while Stats() stays per-server.
	Metrics *obs.Registry
	// Trace, when non-nil, receives hop-indexed session lifecycle
	// events (accept/connect/first-byte/last-byte/deliver/refused/
	// error) — the structured replacement for reading Logf output.
	Trace obs.Sink
	// Sessions, when non-nil, tracks in-flight sessions with live
	// per-hop byte and pipeline-occupancy progress, for the /sessions
	// debug endpoint.
	Sessions *obs.SessionTable
	// Cache, when non-nil, gives the depot a content-addressed chunk
	// cache: digest-stamped payloads it forwards populate it, cache
	// probes (TypeCacheProbe) advertise what it holds, serve directives
	// (TypeCacheServe) and the forwarding short-circuit answer repeat
	// transfers from it instead of pulling the bytes upstream again.
	// The cache may be shared between co-located servers; its metrics
	// ride whatever registry it was built with.
	Cache *cache.Cache
}

// Stats are the depot's cumulative counters.
type Stats struct {
	Accepted       int64
	Refused        int64
	Forwarded      int64
	Delivered      int64
	Generated      int64
	Stored         int64
	Fetched        int64
	FetchMisses    int64
	BytesForwarded int64
	BytesDelivered int64
	BytesStored    int64
	BytesFetched   int64
	Errors         int64
	ForwardRetries int64
	Failovers      int64
	TablePushes    int64
	StalePushes    int64
	TableHits      int64
	TableMisses    int64
	HopLimited     int64
	Queued         int64
	QueueTimeouts  int64
	ChecksumErrors int64
}

// stat holds the Stats fields as atomics, so hot-path accounting never
// serializes concurrent sessions.
type stat struct {
	accepted       atomic.Int64
	refused        atomic.Int64
	forwarded      atomic.Int64
	delivered      atomic.Int64
	generated      atomic.Int64
	stored         atomic.Int64
	fetched        atomic.Int64
	fetchMisses    atomic.Int64
	bytesForwarded atomic.Int64
	bytesDelivered atomic.Int64
	bytesStored    atomic.Int64
	bytesFetched   atomic.Int64
	errors         atomic.Int64
	forwardRetries atomic.Int64
	failovers      atomic.Int64
	tablePushes    atomic.Int64
	stalePushes    atomic.Int64
	tableHits      atomic.Int64
	tableMisses    atomic.Int64
	hopLimited     atomic.Int64
	queued         atomic.Int64
	queueTimeouts  atomic.Int64
	checksumErrors atomic.Int64
}

// metrics are the depot's shared-registry instruments, resolved once at
// construction. All fields are nil (no-op) when Config.Metrics is nil.
type metrics struct {
	accepted     *obs.Counter
	refused      *obs.Counter
	errors       *obs.Counter
	bytesFwd     *obs.Counter
	bytesDlv     *obs.Counter
	stallNanos   *obs.Counter
	fwdRetries   *obs.Counter
	failovers    *obs.Counter
	faults       *obs.Counter
	tablePushes  *obs.Counter
	stalePushes  *obs.Counter
	tableHits    *obs.Counter
	tableMisses  *obs.Counter
	hopLimited   *obs.Counter
	queued       *obs.Counter
	queueTOs     *obs.Counter
	checksumErrs *obs.Counter
	reindexDrops *obs.Counter
	tableEpoch   *obs.Gauge
	occupancy    *obs.Gauge
	active       *obs.Gauge
	stripes      *obs.Gauge
	paths        *obs.Gauge
	chunkWrite   *obs.Histogram
	throughput   *obs.Histogram
	sessionDur   *obs.Histogram
}

// Metric and gauge names published to Config.Metrics.
const (
	MetricSessionsAccepted  = "depot_sessions_accepted_total"
	MetricSessionsRefused   = "depot_sessions_refused_total"
	MetricSessionErrors     = "depot_session_errors_total"
	MetricBytesForwarded    = "depot_bytes_forwarded_total"
	MetricBytesDelivered    = "depot_bytes_delivered_total"
	MetricPumpStallNanos    = "depot_pump_stall_nanos_total"
	MetricPipelineOccupancy = "depot_pipeline_occupancy_bytes"
	MetricActiveSessions    = "depot_active_sessions"
	MetricActiveStripes     = "depot_active_stripes"
	MetricActivePaths       = "depot_active_paths"
	MetricChunkWriteSeconds = "depot_chunk_write_seconds"
	MetricSublinkMbps       = "depot_sublink_throughput_mbps"
	MetricSessionSeconds    = "depot_session_seconds"
	MetricForwardRetries    = "depot_forward_retries_total"
	MetricFailovers         = "depot_failovers_total"
	MetricFaultsInjected    = "depot_faults_injected_total"
	MetricTableEpoch        = "depot_table_epoch"
	MetricTablePushes       = "depot_table_pushes_total"
	MetricStalePushes       = "depot_table_pushes_stale_total"
	MetricTableHits         = "depot_table_hits_total"
	MetricTableMisses       = "depot_table_misses_total"
	MetricHopLimited        = "depot_hop_limit_refused_total"
	MetricAdmissionQueued   = "depot_admission_queued_total"
	MetricAdmissionTimeouts = "depot_admission_timeouts_total"
	MetricChecksumErrors    = "depot_checksum_errors_total"
	// MetricSpoolReindexDropped counts spool files crash recovery
	// deleted instead of re-indexing (interrupted .tmp writes, damaged
	// or torn .p payloads). Set once at startup; a non-zero value after
	// a restart means durable state was lost between runs.
	MetricSpoolReindexDropped = "depot_spool_reindex_dropped_total"
)

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		accepted:     r.Counter(MetricSessionsAccepted),
		refused:      r.Counter(MetricSessionsRefused),
		errors:       r.Counter(MetricSessionErrors),
		bytesFwd:     r.Counter(MetricBytesForwarded),
		bytesDlv:     r.Counter(MetricBytesDelivered),
		stallNanos:   r.Counter(MetricPumpStallNanos),
		fwdRetries:   r.Counter(MetricForwardRetries),
		failovers:    r.Counter(MetricFailovers),
		faults:       r.Counter(MetricFaultsInjected),
		tablePushes:  r.Counter(MetricTablePushes),
		stalePushes:  r.Counter(MetricStalePushes),
		tableHits:    r.Counter(MetricTableHits),
		tableMisses:  r.Counter(MetricTableMisses),
		hopLimited:   r.Counter(MetricHopLimited),
		queued:       r.Counter(MetricAdmissionQueued),
		queueTOs:     r.Counter(MetricAdmissionTimeouts),
		checksumErrs: r.Counter(MetricChecksumErrors),
		reindexDrops: r.Counter(MetricSpoolReindexDropped),
		tableEpoch:   r.Gauge(MetricTableEpoch),
		occupancy:    r.Gauge(MetricPipelineOccupancy),
		active:       r.Gauge(MetricActiveSessions),
		stripes:      r.Gauge(MetricActiveStripes),
		paths:        r.Gauge(MetricActivePaths),
		// 100 µs .. ~1.6 s write latencies.
		chunkWrite: r.Histogram(MetricChunkWriteSeconds, obs.ExpBuckets(1e-4, 2, 15)),
		// 1 .. ~16k Mbit/s sublink throughput.
		throughput: r.Histogram(MetricSublinkMbps, obs.ExpBuckets(1, 2, 15)),
		// 1 ms .. ~1000 s session durations.
		sessionDur: r.Histogram(MetricSessionSeconds, obs.ExpBuckets(1e-3, 2, 20)),
	}
}

// Server is a running depot.
type Server struct {
	cfg    Config
	active atomic.Int64
	// admit is the MaxSessions slot semaphore (nil when unlimited):
	// reserving a slot and counting it are one channel send, so
	// concurrent arrivals can never both pass a load check that only
	// one of them fits under.
	admit   chan struct{}
	waiting atomic.Int64 // sessions currently in the admission queue
	store   *sessionStore
	routes  atomic.Pointer[routeTable]
	wg      sync.WaitGroup

	st  stat
	met metrics

	closed atomic.Bool
}

// New validates the configuration and builds a depot server.
func New(cfg Config) (*Server, error) {
	if cfg.Dial == nil {
		return nil, errors.New("depot: Config.Dial is required")
	}
	if cfg.Self.IsZero() {
		return nil, errors.New("depot: Config.Self is required")
	}
	if cfg.PipelineBytes <= 0 {
		cfg.PipelineBytes = DefaultPipelineBytes
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	store, err := newSessionStore(cfg.StoreBytes, cfg.SpoolDir, cfg.SpoolBytes)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:   cfg,
		store: store,
		met:   newMetrics(cfg.Metrics),
	}
	if dropped := store.spoolReindexDropped(); dropped > 0 {
		srv.met.reindexDrops.Add(dropped)
		srv.logf("depot %s: spool re-index dropped %d unrecoverable file(s) from %s",
			cfg.Self, dropped, cfg.SpoolDir)
	}
	if cfg.MaxSessions > 0 {
		srv.admit = make(chan struct{}, cfg.MaxSessions)
	}
	return srv, nil
}

// Stats returns a snapshot of the counters. Each field is read
// atomically; fields may be mutually skewed by in-flight sessions.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:       s.st.accepted.Load(),
		Refused:        s.st.refused.Load(),
		Forwarded:      s.st.forwarded.Load(),
		Delivered:      s.st.delivered.Load(),
		Generated:      s.st.generated.Load(),
		Stored:         s.st.stored.Load(),
		Fetched:        s.st.fetched.Load(),
		FetchMisses:    s.st.fetchMisses.Load(),
		BytesForwarded: s.st.bytesForwarded.Load(),
		BytesDelivered: s.st.bytesDelivered.Load(),
		BytesStored:    s.st.bytesStored.Load(),
		BytesFetched:   s.st.bytesFetched.Load(),
		Errors:         s.st.errors.Load(),
		ForwardRetries: s.st.forwardRetries.Load(),
		Failovers:      s.st.failovers.Load(),
		TablePushes:    s.st.tablePushes.Load(),
		StalePushes:    s.st.stalePushes.Load(),
		TableHits:      s.st.tableHits.Load(),
		TableMisses:    s.st.tableMisses.Load(),
		HopLimited:     s.st.hopLimited.Load(),
		Queued:         s.st.queued.Load(),
		QueueTimeouts:  s.st.queueTimeouts.Load(),
		ChecksumErrors: s.st.checksumErrors.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// flow is the per-session observability context threaded through the
// data path: who the session is, which hop this depot is, and where to
// report progress. A nil *flow is valid everywhere (bare pumps in
// tests, internal copies).
type flow struct {
	srv     *Server
	id      string
	trace   string // hex end-to-end trace id ("" when the header carried none)
	hop     int
	stripe  int               // 0-based stripe index (0 when unstriped)
	stripes int               // header stripe count (1 when unstriped)
	pathIdx int               // 0-based disjoint-route index (0 when single-path)
	paths   int               // header route count (1 when single-path)
	entry   *obs.SessionEntry // may be nil
	fs      *fairshare.Flow   // chunk-credit handle; nil when unscheduled
	first   atomic.Bool       // first payload chunk seen
}

func (f *flow) emit(kind string, e obs.Event) {
	if f == nil || f.srv == nil {
		return
	}
	e.Kind = kind
	e.Session = f.id
	e.Trace = f.trace
	e.Hop = f.hop
	if f.stripes > 1 {
		e.Stripe = obs.StripeOf(f.stripe)
	}
	if f.paths > 1 {
		e.Path = obs.PathOf(f.pathIdx)
	}
	e.Node = f.srv.cfg.Self.String()
	obs.Emit(f.srv.cfg.Trace, e)
}

// track registers the session in the table; the returned cleanup
// removes it.
func (s *Server) track(f *flow, h *wire.Header, typ string, next wire.Endpoint) func() {
	if s.cfg.Sessions == nil {
		return func() {}
	}
	entry := &obs.SessionEntry{
		ID:      h.Session.String(),
		Trace:   f.trace,
		Type:    typ,
		Src:     h.Src.String(),
		Dst:     h.Dst.String(),
		Hop:     f.hop,
		Stripe:  f.stripe,
		Stripes: f.stripes,
		Path:    f.pathIdx,
		Paths:   f.paths,
		Started: time.Now(),
	}
	if !next.IsZero() {
		entry.Next = next.String()
	}
	s.cfg.Sessions.Register(entry)
	f.entry = entry
	return func() { s.cfg.Sessions.Remove(entry) }
}

// Serve accepts sessions from l until the listener fails or Close is
// called. Each session is handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return fmt.Errorf("depot: accept: %w", err)
		}
		if s.closed.Load() {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.Handle(conn)
		}()
	}
}

// Close marks the server closed; Serve returns after its listener is
// closed by the caller. In-flight sessions are not interrupted — use
// Shutdown to wait for them.
func (s *Server) Close() { s.closed.Store(true) }

// Shutdown closes the server and waits until every in-flight session
// completes or the timeout elapses. It reports whether the drain
// finished in time. The caller closes the listener.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Handle processes one incoming transport connection synchronously.
// Exported so tests and in-process wiring can drive a depot without a
// listener.
func (s *Server) Handle(conn net.Conn) {
	start := time.Now()
	if s.cfg.Faults.refusing() {
		// A dead depot process behind a live address: the connection is
		// torn down before any protocol exchange.
		s.met.faults.Inc()
		s.st.refused.Add(1)
		s.met.refused.Inc()
		conn.Close()
		return
	}
	if d := s.cfg.IdleTimeout; d > 0 {
		conn = &idleConn{Conn: conn, timeout: d}
	}
	h, err := wire.ReadHeader(conn)
	if err != nil {
		conn.Close()
		s.st.errors.Add(1)
		s.met.errors.Inc()
		s.logf("depot %s: bad header: %v", s.cfg.Self, err)
		return
	}
	f := &flow{srv: s, id: h.Session.String(), hop: h.HopIndex() + 1,
		stripe: h.StripeIndex(), stripes: h.StripeCount(),
		pathIdx: h.PathIndex(), paths: h.PathCount()}
	if tid, ok := h.TraceID(); ok {
		f.trace = tid.String()
	}
	if h.Type == wire.TypeControl {
		// Control pushes bypass the load gate: a depot refusing data
		// sessions under load must still be reachable by its controller,
		// or the tables that could shed the load never arrive.
		s.st.accepted.Add(1)
		s.met.accepted.Inc()
		f.emit(obs.KindAccept, obs.Event{Peer: h.Src.String()})
		if cerr := s.handleControl(conn, h, f); cerr != nil {
			s.st.errors.Add(1)
			s.met.errors.Inc()
			f.emit(obs.KindError, obs.Event{Detail: cerr.Error()})
			s.logf("depot %s: control session %s: %v", s.cfg.Self, h.Session, cerr)
		}
		return
	}
	if h.Type == wire.TypeCacheProbe {
		// Cache probes also bypass the load gate: they carry no payload,
		// and a loaded depot advertising its cache is how load gets
		// shed to begin with.
		s.st.accepted.Add(1)
		s.met.accepted.Inc()
		f.emit(obs.KindAccept, obs.Event{Peer: h.Src.String()})
		if perr := s.handleCacheProbe(conn, h, f); perr != nil {
			s.st.errors.Add(1)
			s.met.errors.Inc()
			f.emit(obs.KindError, obs.Event{Detail: perr.Error()})
			s.logf("depot %s: cache probe %s: %v", s.cfg.Self, h.Session, perr)
		}
		return
	}
	release, refusal := s.admitSession(f, h)
	if refusal != "" {
		s.st.refused.Add(1)
		s.met.refused.Inc()
		f.emit(obs.KindRefused, obs.Event{Peer: h.Src.String(), Detail: refusal})
		s.logf("depot %s: refusing session %s (%s)", s.cfg.Self, h.Session, refusal)
		_ = lsl.Refuse(conn, h)
		return
	}
	defer release()
	s.active.Add(1)
	s.met.active.Add(1)
	if f.stripes > 1 {
		// Each sublink chain of a striped session counts once, so the
		// gauge reads "stripe pumps in flight at this depot".
		s.met.stripes.Add(1)
	}
	if f.paths > 1 {
		// Likewise per route: the gauge reads "multipath route sessions
		// in flight at this depot".
		s.met.paths.Add(1)
	}
	defer func() {
		s.active.Add(-1)
		s.met.active.Add(-1)
		if f.stripes > 1 {
			s.met.stripes.Add(-1)
		}
		if f.paths > 1 {
			s.met.paths.Add(-1)
		}
		s.met.sessionDur.Observe(time.Since(start).Seconds())
	}()
	s.st.accepted.Add(1)
	s.met.accepted.Inc()
	f.emit(obs.KindAccept, obs.Event{Peer: h.Src.String()})

	// Under fair sharing, the session's pumps draw chunk credit at the
	// weight its initiator asked for. Join is nil-safe: without a
	// scheduler f.fs stays nil and the pump path costs nothing.
	f.fs = s.cfg.FairShare.Join(h.SessionWeight())
	defer f.fs.Leave()

	sess := &lsl.Session{Conn: s.cfg.Faults.wrap(conn, s.met.faults), Header: h}
	switch h.Type {
	case wire.TypeData:
		err = s.handleData(sess, f)
	case wire.TypeGenerate:
		err = s.handleGenerate(sess, f)
	case wire.TypeMulticast:
		err = s.handleMulticast(sess, f)
	case wire.TypeStore:
		err = s.handleStore(sess, f)
	case wire.TypeFetch:
		err = s.handleFetch(sess)
	case wire.TypeCacheServe:
		err = s.handleCacheServe(sess, f)
	default:
		err = fmt.Errorf("depot: unknown session type %d", h.Type)
		conn.Close()
	}
	if err != nil {
		s.st.errors.Add(1)
		s.met.errors.Inc()
		f.emit(obs.KindError, obs.Event{Detail: err.Error()})
		s.logf("depot %s: session %s: %v", s.cfg.Self, h.Session, err)
	}
}

// admitSession reserves a MaxSessions slot for the session, waiting in
// the bounded admission queue when one is configured. It returns a
// release function and an empty refusal reason on success; a non-empty
// refusal ("load" — no slot and no queue room — or "queue timeout")
// means the session must be refused. Reserving a slot is a single
// channel send, so concurrent arrivals can never both clear a limit
// that only has room for one of them.
func (s *Server) admitSession(f *flow, h *wire.Header) (release func(), refusal string) {
	if s.admit == nil {
		return func() {}, ""
	}
	release = func() { <-s.admit }
	select {
	case s.admit <- struct{}{}:
		return release, ""
	default:
	}
	if s.cfg.QueueDepth <= 0 {
		return nil, "load"
	}
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return nil, "load"
	}
	defer s.waiting.Add(-1)
	t0 := time.Now()
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.admit <- struct{}{}:
		wait := time.Since(t0)
		s.st.queued.Add(1)
		s.met.queued.Inc()
		f.emit(obs.KindQueued, obs.Event{Peer: h.Src.String(),
			Detail: fmt.Sprintf("admission wait %s", wait.Round(time.Millisecond))})
		return release, ""
	case <-timer.C:
		s.st.queueTimeouts.Add(1)
		s.met.queueTOs.Inc()
		return nil, "queue timeout"
	}
}

// dialOnward opens the next sublink, retrying transient dial failures
// under Config.ForwardRetry. Every extra attempt is counted and traced,
// so chain-level recovery is visible hop by hop.
func (s *Server) dialOnward(next wire.Endpoint, f *flow) (net.Conn, error) {
	var out net.Conn
	err := s.cfg.ForwardRetry.Do(context.Background(), func(attempt int) error {
		if attempt > 0 {
			s.st.forwardRetries.Add(1)
			s.met.fwdRetries.Inc()
			f.emit(obs.KindRetry, obs.Event{Peer: next.String(), Detail: fmt.Sprintf("dial attempt %d", attempt+1)})
		}
		conn, derr := s.cfg.Dial.Dial(next.String())
		if derr != nil {
			return derr
		}
		out = conn
		return nil
	})
	return out, err
}

// nextHop determines where a session goes next: the head of its source
// route, a static Routes answer, a controller-pushed table entry, or —
// outside TableDriven mode — directly to the destination. local=true
// means the session is addressed to this depot. Routing refusals
// (ErrNoRoute, ErrHopLimit) come back as typed errors the handlers
// convert into protocol-level refusals.
func (s *Server) nextHop(h *wire.Header) (next wire.Endpoint, rest []wire.Endpoint, local bool, err error) {
	if opt, found := h.Option(wire.OptSourceRoute); found {
		hops, perr := wire.ParseSourceRoute(opt)
		if perr != nil {
			return wire.Endpoint{}, nil, false, perr
		}
		if len(hops) > 0 {
			return s.checkTTL(h, hops[0], hops[1:])
		}
	}
	if h.Dst == s.cfg.Self {
		return wire.Endpoint{}, nil, true, nil
	}
	if s.cfg.Routes != nil {
		if hop, ok := s.cfg.Routes(h.Dst); ok {
			if hop == s.cfg.Self {
				return wire.Endpoint{}, nil, true, nil
			}
			return s.checkTTL(h, hop, nil)
		}
	}
	if s.cfg.TableDriven || s.routes.Load() != nil {
		if hop, ok := s.lookupRoute(h.Dst); ok {
			if hop == s.cfg.Self {
				return wire.Endpoint{}, nil, true, nil
			}
			return s.checkTTL(h, hop, nil)
		}
		if s.cfg.TableDriven {
			return wire.Endpoint{}, nil, false, fmt.Errorf("%w: %s", ErrNoRoute, h.Dst)
		}
	}
	return s.checkTTL(h, h.Dst, nil)
}

// checkTTL vets a forwarding decision against the hop limit: a session
// that has already traversed Config.MaxHops depots is refused instead
// of forwarded, bounding any loop a transiently inconsistent route
// table (or a pathological source route) could form.
func (s *Server) checkTTL(h *wire.Header, next wire.Endpoint, rest []wire.Endpoint) (wire.Endpoint, []wire.Endpoint, bool, error) {
	if s.cfg.MaxHops > 0 && h.HopIndex() >= s.cfg.MaxHops {
		return wire.Endpoint{}, nil, false, fmt.Errorf("%w: %d hops traversed, limit %d", ErrHopLimit, h.HopIndex(), s.cfg.MaxHops)
	}
	return next, rest, false, nil
}

// forwardHeader rebuilds the header for the next hop, replacing the
// source-route option with the remaining hops and stamping this node's
// hop index so the next depot knows its position in the chain.
func forwardHeader(h *wire.Header, rest []wire.Endpoint, hop int) *wire.Header {
	out := &wire.Header{
		Version: h.Version,
		Type:    h.Type,
		Session: h.Session,
		Src:     h.Src,
		Dst:     h.Dst,
	}
	for _, o := range h.Options {
		if o.Kind == wire.OptSourceRoute || o.Kind == wire.OptHopIndex {
			continue
		}
		out.AddOption(o)
	}
	if len(rest) > 0 {
		out.AddOption(wire.SourceRouteOption(rest))
	}
	out.AddOption(wire.HopIndexOption(uint16(hop)))
	return out
}

func (s *Server) handleData(sess *lsl.Session, f *flow) error {
	defer sess.Close()
	next, rest, local, err := s.nextHop(sess.Header)
	if err != nil {
		if s.refuseRouting(sess, f, err) {
			return nil
		}
		return err
	}
	if local {
		defer s.track(f, sess.Header, "data", wire.Endpoint{})()
		return s.deliver(sess, f)
	}
	if served, serr := s.cacheShortCircuit(sess, f, next, rest); served {
		return serr
	}
	defer s.track(f, sess.Header, "data", next)()
	out, err := s.dialOnward(next, f)
	if err != nil {
		// The next hop is gone for good. With FailoverDirect the rest
		// of the chain is abandoned and the payload goes straight to the
		// destination — degraded (one long sublink) but delivered.
		if !s.cfg.FailoverDirect || next == sess.Header.Dst {
			return fmt.Errorf("forward dial %s: %w", next, err)
		}
		s.st.failovers.Add(1)
		s.met.failovers.Inc()
		f.emit(obs.KindFailover, obs.Event{Peer: sess.Header.Dst.String(), Detail: "next hop " + next.String() + " unreachable"})
		s.logf("depot %s: next hop %s unreachable, failing over direct to %s", s.cfg.Self, next, sess.Header.Dst)
		next, rest = sess.Header.Dst, nil
		if out, err = s.dialOnward(next, f); err != nil {
			return fmt.Errorf("failover dial %s: %w", next, err)
		}
	}
	defer out.Close()
	f.emit(obs.KindConnect, obs.Event{Peer: next.String()})
	fh := forwardHeader(sess.Header, rest, f.hop)
	fh.Type = wire.TypeData
	if err := wire.WriteHeader(out, fh); err != nil {
		return err
	}
	src := s.checkedSource(sess)
	tap := s.cacheTap(sess.Header)
	if tap != nil {
		// On-forward cache population: the tap rides after the verifier,
		// so only CRC-proven payload ever enters the cache.
		src = io.TeeReader(src, tap)
	}
	_, err = s.pump(out, src, f)
	tap.commit(err == nil)
	s.st.forwarded.Add(1)
	return s.flagCorrupt(sess, f, err)
}

// deliver consumes a session addressed to this depot, counting the
// payload as it flows so partial deliveries and live progress are
// visible.
func (s *Server) deliver(sess *lsl.Session, f *flow) error {
	cc := &countedConn{Conn: sess.Conn, srv: s, f: f}
	inner := &lsl.Session{Conn: cc, Header: sess.Header}
	if off := sess.Header.ResumeOffset(); off > 0 {
		// A continuation session lands mid-object: record where it
		// resumes so the trace timeline shows the stitch point.
		f.emit(obs.KindResume, obs.Event{Bytes: off})
	}
	var err error
	if s.cfg.Local != nil {
		// The local handler owns integrity: a checksummed stream reaches
		// it framed, and any mismatch it detects comes back as a typed
		// error that flagCorrupt converts into a refusal.
		err = s.cfg.Local(inner)
	} else {
		_, err = io.Copy(io.Discard, s.checkedSource(inner))
		if err != nil && errors.Is(err, io.EOF) {
			err = nil
		}
	}
	s.st.delivered.Add(1)
	f.emit(obs.KindDeliver, obs.Event{Bytes: cc.n.Load()})
	return s.flagCorrupt(sess, f, err)
}

// countedConn counts payload bytes as the local handler reads them.
type countedConn struct {
	net.Conn
	srv *Server
	f   *flow
	n   atomic.Int64
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.n.Add(int64(n))
		c.srv.st.bytesDelivered.Add(int64(n))
		c.srv.met.bytesDlv.Add(int64(n))
		c.f.entry.AddBytes(int64(n))
	}
	return n, err
}

// handleGenerate synthesizes the requested bytes and pushes them toward
// the destination as a TypeData session, serving as the evaluation
// harness's traffic source.
func (s *Server) handleGenerate(sess *lsl.Session, f *flow) error {
	defer sess.Close()
	opt, found := sess.Header.Option(wire.OptGenerate)
	if !found {
		return fmt.Errorf("generate session %s: %w", sess.Header.Session, wire.ErrOptionMissing)
	}
	size, err := wire.ParseGenerate(opt)
	if err != nil {
		return err
	}
	next, rest, local, err := s.nextHop(sess.Header)
	if err != nil {
		if s.refuseRouting(sess, f, err) {
			return nil
		}
		return err
	}

	var dst io.WriteCloser
	if local {
		defer s.track(f, sess.Header, "generate", wire.Endpoint{})()
		// Generating to ourselves: deliver into the local handler via
		// an in-process pipe.
		pr, pw := io.Pipe()
		dst = pw
		inner := &lsl.Session{Conn: pipeConn{PipeReader: pr}, Header: sess.Header}
		done := make(chan error, 1)
		go func() { done <- s.deliver(inner, f) }()
		defer func() {
			pw.Close()
			<-done
		}()
	} else {
		defer s.track(f, sess.Header, "generate", next)()
		out, err := s.cfg.Dial.Dial(next.String())
		if err != nil {
			return fmt.Errorf("generate dial %s: %w", next, err)
		}
		defer out.Close()
		f.emit(obs.KindConnect, obs.Event{Peer: next.String()})
		fh := forwardHeader(sess.Header, rest, f.hop)
		fh.Type = wire.TypeData
		// Strip the generate option: downstream sees a plain stream.
		kept := fh.Options[:0]
		for _, o := range fh.Options {
			if o.Kind != wire.OptGenerate {
				kept = append(kept, o)
			}
		}
		fh.Options = kept
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		dst = out
	}

	// A checksummed generate session frames the synthesized stream so
	// every downstream hop verifies it like any other payload.
	n, err := writePattern(framedWriter(dst, sess.Header), int64(size), sess.Header.Session)
	s.st.generated.Add(1)
	s.st.bytesForwarded.Add(n)
	s.met.bytesFwd.Add(n)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	return nil
}

// writePattern emits size bytes of a deterministic pattern derived from
// the session id, so sinks can verify integrity end to end.
func writePattern(w io.Writer, size int64, id wire.SessionID) (int64, error) {
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	buf := *bp
	var written int64
	for written < size {
		n := int64(len(buf))
		if remaining := size - written; remaining < n {
			n = remaining
		}
		FillPattern(buf[:n], id, written)
		m, err := w.Write(buf[:n])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// FillPattern fills buf with the deterministic byte pattern of the
// session at the given stream offset.
func FillPattern(buf []byte, id wire.SessionID, offset int64) {
	for i := range buf {
		pos := offset + int64(i)
		buf[i] = id[pos%16] ^ byte(pos) ^ byte(pos>>8)
	}
}

// VerifyPattern checks that buf matches the session pattern at offset.
func VerifyPattern(buf []byte, id wire.SessionID, offset int64) error {
	for i := range buf {
		pos := offset + int64(i)
		want := id[pos%16] ^ byte(pos) ^ byte(pos>>8)
		if buf[i] != want {
			return fmt.Errorf("depot: pattern mismatch at offset %d", pos)
		}
	}
	return nil
}

// idleConn arms a fresh read deadline before every read, so a stalled
// peer eventually errors out instead of pinning the depot's buffers.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// pipeConn adapts an io.Pipe reader to the minimal net.Conn the local
// delivery path needs.
type pipeConn struct {
	*io.PipeReader
}

func (pipeConn) Write(p []byte) (int, error)      { return 0, errors.New("depot: read-only session") }
func (c pipeConn) Close() error                   { return c.PipeReader.Close() }
func (pipeConn) LocalAddr() net.Addr              { return pipeAddr{} }
func (pipeConn) RemoteAddr() net.Addr             { return pipeAddr{} }
func (pipeConn) SetDeadline(time.Time) error      { return nil }
func (pipeConn) SetReadDeadline(time.Time) error  { return nil }
func (pipeConn) SetWriteDeadline(time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
