// Package depot implements the logistical storage depot: a user-level
// session-routing process that accepts LSL sessions, determines the
// next hop from the loose source route or its route table, forwards the
// payload through a bounded pipeline buffer, and delivers sessions
// addressed to itself to a local handler.
//
// The bounded buffer is the heart of the logistical effect's mechanics:
// a depot absorbs up to its pipeline's worth of bytes from a fast
// upstream sublink while the downstream sublink drains at its own pace;
// when the pipeline fills, back-pressure propagates upstream exactly as
// in Figure 5 of the paper.
package depot

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// DefaultPipelineBytes matches the paper's 32 MB depot pipeline
// (8 MB kernel send + 8 MB kernel receive + matching user buffers).
const DefaultPipelineBytes = 32 << 20

// chunkSize is the unit of the forwarding pipeline.
const chunkSize = 32 << 10

// Handler consumes sessions addressed to this depot's host.
type Handler func(s *lsl.Session) error

// Config parameterizes a depot server.
type Config struct {
	// Self is this depot's own endpoint, used to recognize sessions
	// addressed to it.
	Self wire.Endpoint
	// Dial opens onward transport connections.
	Dial lsl.Dialer
	// Routes resolves a destination to the next-hop address when a
	// session carries no source route. It may be nil, in which case the
	// depot forwards directly to the destination.
	Routes func(dst wire.Endpoint) (next wire.Endpoint, ok bool)
	// Local handles sessions addressed to Self. Nil means count and
	// discard the payload.
	Local Handler
	// PipelineBytes bounds per-session buffering (0 selects
	// DefaultPipelineBytes).
	PipelineBytes int
	// StoreBytes bounds the asynchronous-session store (0 selects
	// DefaultStoreBytes).
	StoreBytes int64
	// IdleTimeout, when positive, aborts a session whose transport
	// makes no progress for this long (requires the net.Conn to
	// support read deadlines, which TCP and the emulated network both
	// do). It protects a depot's pipeline buffers from peers that hang
	// without closing.
	IdleTimeout time.Duration
	// MaxSessions, when positive, makes the depot refuse sessions
	// beyond this concurrency — the load-based session negotiation the
	// paper proposes for future work.
	MaxSessions int
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Stats are the depot's cumulative counters.
type Stats struct {
	Accepted       int64
	Refused        int64
	Forwarded      int64
	Delivered      int64
	Generated      int64
	Stored         int64
	Fetched        int64
	FetchMisses    int64
	BytesForwarded int64
	BytesDelivered int64
	BytesStored    int64
	BytesFetched   int64
	Errors         int64
}

// Server is a running depot.
type Server struct {
	cfg    Config
	active atomic.Int64
	store  *sessionStore
	wg     sync.WaitGroup

	mu    sync.Mutex
	stats Stats

	closed atomic.Bool
}

// New validates the configuration and builds a depot server.
func New(cfg Config) (*Server, error) {
	if cfg.Dial == nil {
		return nil, errors.New("depot: Config.Dial is required")
	}
	if cfg.Self.IsZero() {
		return nil, errors.New("depot: Config.Self is required")
	}
	if cfg.PipelineBytes <= 0 {
		cfg.PipelineBytes = DefaultPipelineBytes
	}
	return &Server{cfg: cfg, store: newSessionStore(cfg.StoreBytes)}, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Serve accepts sessions from l until the listener fails or Close is
// called. Each session is handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return fmt.Errorf("depot: accept: %w", err)
		}
		if s.closed.Load() {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.Handle(conn)
		}()
	}
}

// Close marks the server closed; Serve returns after its listener is
// closed by the caller. In-flight sessions are not interrupted — use
// Shutdown to wait for them.
func (s *Server) Close() { s.closed.Store(true) }

// Shutdown closes the server and waits until every in-flight session
// completes or the timeout elapses. It reports whether the drain
// finished in time. The caller closes the listener.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Handle processes one incoming transport connection synchronously.
// Exported so tests and in-process wiring can drive a depot without a
// listener.
func (s *Server) Handle(conn net.Conn) {
	if d := s.cfg.IdleTimeout; d > 0 {
		conn = &idleConn{Conn: conn, timeout: d}
	}
	h, err := wire.ReadHeader(conn)
	if err != nil {
		conn.Close()
		s.count(func(st *Stats) { st.Errors++ })
		s.logf("depot %s: bad header: %v", s.cfg.Self, err)
		return
	}
	if s.cfg.MaxSessions > 0 && s.active.Load() >= int64(s.cfg.MaxSessions) {
		s.count(func(st *Stats) { st.Refused++ })
		s.logf("depot %s: refusing session %s (load)", s.cfg.Self, h.Session)
		_ = lsl.Refuse(conn, h)
		return
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	s.count(func(st *Stats) { st.Accepted++ })

	sess := &lsl.Session{Conn: conn, Header: h}
	switch h.Type {
	case wire.TypeData:
		err = s.handleData(sess)
	case wire.TypeGenerate:
		err = s.handleGenerate(sess)
	case wire.TypeMulticast:
		err = s.handleMulticast(sess)
	case wire.TypeStore:
		err = s.handleStore(sess)
	case wire.TypeFetch:
		err = s.handleFetch(sess)
	default:
		err = fmt.Errorf("depot: unknown session type %d", h.Type)
		conn.Close()
	}
	if err != nil {
		s.count(func(st *Stats) { st.Errors++ })
		s.logf("depot %s: session %s: %v", s.cfg.Self, h.Session, err)
	}
}

// nextHop determines where a session goes next: the head of its source
// route, a route-table entry, or directly to the destination. ok=false
// means the session is addressed to this depot.
func (s *Server) nextHop(h *wire.Header) (next wire.Endpoint, rest []wire.Endpoint, local bool, err error) {
	if opt, found := h.Option(wire.OptSourceRoute); found {
		hops, perr := wire.ParseSourceRoute(opt)
		if perr != nil {
			return wire.Endpoint{}, nil, false, perr
		}
		if len(hops) > 0 {
			return hops[0], hops[1:], false, nil
		}
	}
	if h.Dst == s.cfg.Self {
		return wire.Endpoint{}, nil, true, nil
	}
	if s.cfg.Routes != nil {
		if hop, ok := s.cfg.Routes(h.Dst); ok {
			if hop == s.cfg.Self {
				return wire.Endpoint{}, nil, true, nil
			}
			return hop, nil, false, nil
		}
	}
	return h.Dst, nil, false, nil
}

// forwardHeader rebuilds the header for the next hop, replacing the
// source-route option with the remaining hops.
func forwardHeader(h *wire.Header, rest []wire.Endpoint) *wire.Header {
	out := &wire.Header{
		Version: h.Version,
		Type:    h.Type,
		Session: h.Session,
		Src:     h.Src,
		Dst:     h.Dst,
	}
	for _, o := range h.Options {
		if o.Kind == wire.OptSourceRoute {
			continue
		}
		out.AddOption(o)
	}
	if len(rest) > 0 {
		out.AddOption(wire.SourceRouteOption(rest))
	}
	return out
}

func (s *Server) handleData(sess *lsl.Session) error {
	defer sess.Close()
	next, rest, local, err := s.nextHop(sess.Header)
	if err != nil {
		return err
	}
	if local {
		return s.deliver(sess)
	}
	out, err := s.cfg.Dial.Dial(next.String())
	if err != nil {
		return fmt.Errorf("forward dial %s: %w", next, err)
	}
	defer out.Close()
	fh := forwardHeader(sess.Header, rest)
	fh.Type = wire.TypeData
	if err := wire.WriteHeader(out, fh); err != nil {
		return err
	}
	n, err := s.pump(out, sess)
	s.count(func(st *Stats) { st.Forwarded++; st.BytesForwarded += n })
	return err
}

func (s *Server) deliver(sess *lsl.Session) error {
	if s.cfg.Local != nil {
		err := s.cfg.Local(sess)
		s.count(func(st *Stats) { st.Delivered++ })
		return err
	}
	n, err := io.Copy(io.Discard, sess)
	s.count(func(st *Stats) { st.Delivered++; st.BytesDelivered += n })
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// handleGenerate synthesizes the requested bytes and pushes them toward
// the destination as a TypeData session, serving as the evaluation
// harness's traffic source.
func (s *Server) handleGenerate(sess *lsl.Session) error {
	defer sess.Close()
	opt, found := sess.Header.Option(wire.OptGenerate)
	if !found {
		return fmt.Errorf("generate session %s: %w", sess.Header.Session, wire.ErrOptionMissing)
	}
	size, err := wire.ParseGenerate(opt)
	if err != nil {
		return err
	}
	next, rest, local, err := s.nextHop(sess.Header)
	if err != nil {
		return err
	}

	var dst io.WriteCloser
	if local {
		// Generating to ourselves: deliver into the local handler via
		// an in-process pipe.
		pr, pw := io.Pipe()
		dst = pw
		inner := &lsl.Session{Conn: pipeConn{PipeReader: pr}, Header: sess.Header}
		done := make(chan error, 1)
		go func() { done <- s.deliver(inner) }()
		defer func() {
			pw.Close()
			<-done
		}()
	} else {
		out, err := s.cfg.Dial.Dial(next.String())
		if err != nil {
			return fmt.Errorf("generate dial %s: %w", next, err)
		}
		defer out.Close()
		fh := forwardHeader(sess.Header, rest)
		fh.Type = wire.TypeData
		// Strip the generate option: downstream sees a plain stream.
		kept := fh.Options[:0]
		for _, o := range fh.Options {
			if o.Kind != wire.OptGenerate {
				kept = append(kept, o)
			}
		}
		fh.Options = kept
		if err := wire.WriteHeader(out, fh); err != nil {
			return err
		}
		dst = out
	}

	n, err := writePattern(dst, int64(size), sess.Header.Session)
	s.count(func(st *Stats) { st.Generated++; st.BytesForwarded += n })
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	return nil
}

// writePattern emits size bytes of a deterministic pattern derived from
// the session id, so sinks can verify integrity end to end.
func writePattern(w io.Writer, size int64, id wire.SessionID) (int64, error) {
	buf := make([]byte, chunkSize)
	var written int64
	for written < size {
		n := int64(len(buf))
		if remaining := size - written; remaining < n {
			n = remaining
		}
		FillPattern(buf[:n], id, written)
		m, err := w.Write(buf[:n])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// FillPattern fills buf with the deterministic byte pattern of the
// session at the given stream offset.
func FillPattern(buf []byte, id wire.SessionID, offset int64) {
	for i := range buf {
		pos := offset + int64(i)
		buf[i] = id[pos%16] ^ byte(pos) ^ byte(pos>>8)
	}
}

// VerifyPattern checks that buf matches the session pattern at offset.
func VerifyPattern(buf []byte, id wire.SessionID, offset int64) error {
	for i := range buf {
		pos := offset + int64(i)
		want := id[pos%16] ^ byte(pos) ^ byte(pos>>8)
		if buf[i] != want {
			return fmt.Errorf("depot: pattern mismatch at offset %d", pos)
		}
	}
	return nil
}

// idleConn arms a fresh read deadline before every read, so a stalled
// peer eventually errors out instead of pinning the depot's buffers.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// pipeConn adapts an io.Pipe reader to the minimal net.Conn the local
// delivery path needs.
type pipeConn struct {
	*io.PipeReader
}

func (pipeConn) Write(p []byte) (int, error)      { return 0, errors.New("depot: read-only session") }
func (c pipeConn) Close() error                   { return c.PipeReader.Close() }
func (pipeConn) LocalAddr() net.Addr              { return pipeAddr{} }
func (pipeConn) RemoteAddr() net.Addr             { return pipeAddr{} }
func (pipeConn) SetDeadline(time.Time) error      { return nil }
func (pipeConn) SetReadDeadline(time.Time) error  { return nil }
func (pipeConn) SetWriteDeadline(time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
