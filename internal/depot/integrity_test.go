package depot

import (
	"bytes"
	"crypto/sha256"
	"io"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// TestChecksummedForwardCleanPassThrough sends a framed payload through
// a relay to a sink that strips the framing: the bytes must arrive
// intact and no hop may count a checksum error.
func TestChecksummedForwardCleanPassThrough(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{}) // relay: verifies and re-stamps
	h.addDepot(epC, Config{Local: func(s *lsl.Session) error {
		data, err := io.ReadAll(wire.NewFrameReader(s))
		h.mu.Lock()
		h.delivered[s.ID()] = data
		h.mu.Unlock()
		h.done <- s.ID()
		return err
	}})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB},
		wire.ChunkChecksumOption())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("checksummed chunk "), 8192)
	go func() {
		fw := wire.NewFrameWriter(sess)
		fw.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	if st := h.servers[epB].Stats(); st.ChecksumErrors != 0 {
		t.Fatalf("clean transfer counted %d checksum errors", st.ChecksumErrors)
	}
}

// TestChecksummedForwardDetectsCorruptingHop arms the fault injector on
// the relay's inbound path: the relay's per-chunk verifier — the first
// hop after the corruption — must catch it, count it, emit the corrupt
// refusal, and stop forwarding damaged bytes downstream.
func TestChecksummedForwardDetectsCorruptingHop(t *testing.T) {
	h := newHarness(t)
	f := NewFaultInjector()
	f.CorruptAfter(64 << 10)
	h.addDepot(epB, Config{Faults: f}) // corrupting hop
	h.addDepot(epC, Config{})          // sink depot

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB},
		wire.ChunkChecksumOption())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 512<<10)
	go func() {
		fw := wire.NewFrameWriter(sess)
		fw.Write(payload)
		sess.Close()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for h.servers[epB].Stats().ChecksumErrors < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("corruption never detected: %+v", h.servers[epB].Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
	// The sink depot saw only verified frames; it must not also flag the
	// corruption — localizing blame to the corrupting hop.
	if st := h.servers[epC].Stats(); st.ChecksumErrors != 0 {
		t.Fatalf("sink depot counted %d checksum errors", st.ChecksumErrors)
	}
}

// TestUncheckedSessionRidesThroughCorruption documents the baseline the
// tentpole fixes: without the checksum option the same fault delivers
// wrong bytes and nobody notices.
func TestUncheckedSessionRidesThroughCorruption(t *testing.T) {
	h := newHarness(t)
	f := NewFaultInjector()
	f.CorruptAfter(16 << 10)
	h.addDepot(epB, Config{Faults: f})
	h.addDepot(epC, Config{})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 64<<10)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	got := h.waitDelivery(sess.ID())
	if len(got) != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	if bytes.Equal(got, payload) {
		t.Fatal("fault injector corrupted nothing")
	}
	if st := h.servers[epB].Stats(); st.ChecksumErrors != 0 {
		t.Fatalf("unchecked session counted %d checksum errors", st.ChecksumErrors)
	}
}

// TestStoreUnframesChecksummedPayload stores through a checksummed
// session and fetches raw bytes back: the storing depot is the
// terminus, so the store must hold the payload unframed.
func TestStoreUnframesChecksummedPayload(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	payload := bytes.Repeat([]byte("stage me "), 4096)
	sess, err := lsl.OpenStore(h.dialerFrom("10.0.0.1"), epA, epB, nil,
		wire.ChunkChecksumOption())
	if err != nil {
		t.Fatal(err)
	}
	fw := wire.NewFrameWriter(sess)
	if _, err := fw.Write(payload); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Stored == 1 })

	fetched, err := lsl.Fetch(h.dialerFrom("10.0.0.4"), epD, epB, sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(fetched)
	fetched.Close()
	if !bytes.Equal(got, payload) {
		t.Fatalf("fetched %d bytes, want %d raw", len(got), len(payload))
	}
}

// TestPatternDigestMatchesStream checks the digest helper against a
// straight hash of the written pattern.
func TestPatternDigestMatchesStream(t *testing.T) {
	id := wire.SessionID{1, 2, 3}
	const size = 100_000
	d := PatternDigest(id, size)
	if d.Size != size {
		t.Fatalf("Size = %d", d.Size)
	}
	var buf bytes.Buffer
	if _, err := writePattern(&buf, size, id); err != nil {
		t.Fatal(err)
	}
	if sum := sha256.Sum256(buf.Bytes()); sum != d.Sum {
		t.Fatal("PatternDigest disagrees with a straight hash of the pattern stream")
	}
}
