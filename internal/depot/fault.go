package depot

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/netlogistics/lsl/internal/obs"
)

// ErrInjected is the root of every fault-injection error, so recovery
// code and tests can recognize deliberately induced failures. Its text
// contains "injected fault", which the retry package classifies as
// transient — injected faults model path events, not protocol bugs.
var ErrInjected = errors.New("depot: injected fault")

// FaultInjector deterministically perturbs a depot's data path so every
// recovery branch — sublink retry, resume-at-offset, depot failover —
// is testable without real process kills. The zero value injects
// nothing; arm a fault, run the traffic, and the injector fires at the
// configured point:
//
//   - RefuseConnect: every new transport connection is closed before
//     the session header is read, as a crashed depot process behind a
//     live address would. Persistent until disarmed.
//   - DropAfter(n): the session transport is torn down after n payload
//     bytes have entered this depot. One-shot: the fault disarms after
//     firing, modelling a depot that dies once mid-stream.
//   - StallAfter(n, d): after n payload bytes the depot stops reading
//     for d, modelling a wedged process. One-shot.
//   - CorruptAfter(n): the first chunk read past n payload bytes has a
//     byte flipped in place, modelling silent data corruption — the one
//     fault retries must NOT paper over. One-shot.
//
// All methods are safe for concurrent use with a running server.
type FaultInjector struct {
	refuse       atomic.Bool
	dropAfter    atomic.Int64 // payload-byte threshold; <0 disarmed
	stallAfter   atomic.Int64 // payload-byte threshold; <0 disarmed
	corruptAfter atomic.Int64 // payload-byte threshold; <0 disarmed
	stallNanos   atomic.Int64
	seen         atomic.Int64 // payload bytes since the last Clear
	injected     atomic.Int64
}

// NewFaultInjector returns a disarmed injector.
func NewFaultInjector() *FaultInjector {
	f := &FaultInjector{}
	f.Clear()
	return f
}

// Clear disarms every fault and resets the byte counter.
func (f *FaultInjector) Clear() {
	f.refuse.Store(false)
	f.dropAfter.Store(-1)
	f.stallAfter.Store(-1)
	f.corruptAfter.Store(-1)
	f.stallNanos.Store(0)
	f.seen.Store(0)
}

// RefuseConnect arms or disarms connection refusal.
func (f *FaultInjector) RefuseConnect(on bool) { f.refuse.Store(on) }

// DropAfter arms a one-shot transport teardown after n payload bytes
// (counted across sessions since the last Clear; n=0 drops the first
// chunk).
func (f *FaultInjector) DropAfter(n int64) {
	f.seen.Store(0)
	f.dropAfter.Store(n)
}

// StallAfter arms a one-shot read stall of duration d after n payload
// bytes.
func (f *FaultInjector) StallAfter(n int64, d time.Duration) {
	f.seen.Store(0)
	f.stallNanos.Store(int64(d))
	f.stallAfter.Store(n)
}

// CorruptAfter arms a one-shot single-byte corruption on the first
// chunk read past n payload bytes.
func (f *FaultInjector) CorruptAfter(n int64) {
	f.seen.Store(0)
	f.corruptAfter.Store(n)
}

// Injected reports how many faults have fired since construction.
func (f *FaultInjector) Injected() int64 { return f.injected.Load() }

// refusing reports (and counts) whether an incoming connection should
// be abruptly closed. Nil-safe.
func (f *FaultInjector) refusing() bool {
	if f == nil || !f.refuse.Load() {
		return false
	}
	f.injected.Add(1)
	return true
}

// wrap interposes the injector on a session transport, reporting fired
// faults to met (which may be nil). Nil-safe: a nil injector returns
// conn unchanged.
func (f *FaultInjector) wrap(conn net.Conn, met *obs.Counter) net.Conn {
	if f == nil {
		return conn
	}
	return &faultConn{Conn: conn, f: f, met: met}
}

// faultConn fires armed drop/stall faults as payload flows through
// Read — the direction every depot role (forward, deliver, store)
// consumes the session from.
type faultConn struct {
	net.Conn
	f   *FaultInjector
	met *obs.Counter
}

func (c *faultConn) Read(p []byte) (int, error) {
	f := c.f
	if d := f.dropAfter.Load(); d >= 0 && f.seen.Load() >= d {
		if f.dropAfter.CompareAndSwap(d, -1) {
			f.injected.Add(1)
			c.met.Inc()
			c.Conn.Close()
			return 0, fmt.Errorf("%w: drop after %d bytes", ErrInjected, d)
		}
	}
	if st := f.stallAfter.Load(); st >= 0 && f.seen.Load() >= st {
		if f.stallAfter.CompareAndSwap(st, -1) {
			f.injected.Add(1)
			c.met.Inc()
			time.Sleep(time.Duration(f.stallNanos.Load()))
		}
	}
	n, err := c.Conn.Read(p)
	if co := f.corruptAfter.Load(); co >= 0 && n > 0 && f.seen.Load()+int64(n) > co {
		if f.corruptAfter.CompareAndSwap(co, -1) {
			f.injected.Add(1)
			c.met.Inc()
			p[0] ^= 0xFF
		}
	}
	f.seen.Add(int64(n))
	return n, err
}
