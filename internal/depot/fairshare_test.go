package depot

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// TestAdmissionAtomic races 64 simultaneous dials against a
// MaxSessions:1 depot: the slot semaphore must never let two data
// sessions run concurrently, no matter how the arrivals interleave.
// (The previous load gate read the active count and then acted on it,
// so two arrivals could both pass a limit with room for one.)
func TestAdmissionAtomic(t *testing.T) {
	const dials = 64
	h := newHarness(t)
	var inFlight, peak, violations atomic.Int64
	h.addDepot(epB, Config{
		MaxSessions: 1,
		Local: func(s *lsl.Session) error {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			if cur > peak.Load() {
				peak.Store(cur)
			}
			if cur > 1 {
				violations.Add(1)
			}
			// Hold the slot long enough for concurrent arrivals to pile
			// into the gate while this session is active.
			time.Sleep(5 * time.Millisecond)
			io.Copy(io.Discard, s)
			return nil
		},
	})

	var wg sync.WaitGroup
	for i := 0; i < dials; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
			if err != nil {
				return
			}
			defer s.Close()
			s.Write([]byte("x"))
			s.Close()
			// Wait for refusal or teardown so the depot finishes with us.
			wire.ReadHeader(s)
		}()
	}
	wg.Wait()
	waitFor(t, func() bool {
		st := h.servers[epB].Stats()
		return st.Accepted+st.Refused >= dials
	})
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d sessions ran concurrently past MaxSessions=1 (peak %d)", v, peak.Load())
	}
	st := h.servers[epB].Stats()
	if st.Accepted+st.Refused != dials || st.Accepted < 1 {
		t.Fatalf("accepted %d + refused %d, want %d total with at least one accept",
			st.Accepted, st.Refused, dials)
	}
}

// TestAdmissionQueue: with a queue configured, an over-limit session
// waits for the slot instead of being refused, is admitted when the
// slot frees, and the wait is counted and traced; a session beyond the
// queue's depth is still refused immediately.
func TestAdmissionQueue(t *testing.T) {
	h := newHarness(t)
	var events []obs.Event
	var evmu sync.Mutex
	block := make(chan struct{})
	h.addDepot(epB, Config{
		MaxSessions: 1,
		QueueDepth:  1,
		Trace: obs.SinkFunc(func(e obs.Event) {
			evmu.Lock()
			events = append(events, e)
			evmu.Unlock()
		}),
		Local: func(s *lsl.Session) error {
			<-block
			io.Copy(io.Discard, s)
			return nil
		},
	})

	// First session occupies the only slot.
	s1, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Accepted == 1 })

	// Second session queues rather than being refused.
	s2, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitFor(t, func() bool { return h.servers[epB].waiting.Load() == 1 })

	// Third session overflows the depth-1 queue: refused immediately.
	s3, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	hd, err := wire.ReadHeader(s3)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Type != wire.TypeRefuse {
		t.Fatalf("overflow session response = %d, want refuse", hd.Type)
	}

	// Free the slot: the queued session must be admitted and served.
	close(block)
	s1.Close()
	s2.Write([]byte("queued payload"))
	s2.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Accepted == 2 })

	st := h.servers[epB].Stats()
	if st.Queued != 1 || st.QueueTimeouts != 0 || st.Refused != 1 {
		t.Fatalf("stats = %+v, want 1 queued admission, 0 timeouts, 1 refusal", st)
	}
	evmu.Lock()
	defer evmu.Unlock()
	var sawQueued bool
	for _, e := range events {
		if e.Kind == obs.KindQueued {
			sawQueued = true
		}
	}
	if !sawQueued {
		t.Fatal("no queued trace event emitted for the waiting session")
	}
}

// TestAdmissionQueueTimeout: a queued session whose slot never frees is
// refused once QueueTimeout elapses, and the timeout is counted.
func TestAdmissionQueueTimeout(t *testing.T) {
	h := newHarness(t)
	block := make(chan struct{})
	defer close(block)
	h.addDepot(epB, Config{
		MaxSessions:  1,
		QueueDepth:   4,
		QueueTimeout: 50 * time.Millisecond,
		Local: func(s *lsl.Session) error {
			<-block
			io.Copy(io.Discard, s)
			return nil
		},
	})

	s1, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Accepted == 1 })

	s2, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hd, err := wire.ReadHeader(s2)
	if err != nil {
		t.Fatal(err)
	}
	if hd.Type != wire.TypeRefuse {
		t.Fatalf("timed-out session response = %d, want refuse", hd.Type)
	}
	st := h.servers[epB].Stats()
	if st.QueueTimeouts != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want exactly one queue timeout", st)
	}
}

// TestFairShare is the acceptance test for the multi-tenant scheduler:
// two concurrent sessions with weights 2 and 1 forwarded through one
// depot whose downstream trunk the scheduler arbitrates must see
// throughput near a 2:1 split, and a scheduler with no trunk rate must
// not cost the pump measurable aggregate throughput.
func TestFairShare(t *testing.T) {
	const (
		chunk = 32 << 10
		// One DRR round is 3 chunks = ~3ms of trunk time at this rate,
		// comfortably above sleep-timer granularity.
		trunkRate = 32 << 20
		warmup    = 100 * time.Millisecond
		measure   = 400 * time.Millisecond
		tolerance = 0.15
	)
	h := newHarness(t)
	trunk := fairshare.New(fairshare.Config{Rate: trunkRate})
	h.addDepot(epB, Config{FairShare: trunk, PipelineBytes: 4 * chunk})

	// The sink attributes delivered bytes per session.
	var byID sync.Map // wire.SessionID -> *atomic.Int64
	h.addDepot(epC, Config{
		Local: func(s *lsl.Session) error {
			v, _ := byID.LoadOrStore(s.ID(), new(atomic.Int64))
			ctr := v.(*atomic.Int64)
			buf := make([]byte, chunk)
			for {
				n, err := s.Read(buf)
				ctr.Add(int64(n))
				if err != nil {
					return nil
				}
			}
		},
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	payload := make([]byte, chunk)
	ids := make([]wire.SessionID, 2)
	for i, w := range []uint16{2, 1} {
		s, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC,
			[]wire.Endpoint{epB}, wire.SessionWeightOption(w))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.Close()
			for !stop.Load() {
				if _, err := s.Write(payload); err != nil {
					return
				}
			}
		}()
	}
	count := func(i int) int64 {
		if v, ok := byID.Load(ids[i]); ok {
			return v.(*atomic.Int64).Load()
		}
		return 0
	}
	time.Sleep(warmup)
	w0, w1 := count(0), count(1)
	time.Sleep(measure)
	d0, d1 := count(0)-w0, count(1)-w1
	stop.Store(true)
	wg.Wait()

	if d1 <= 0 {
		t.Fatalf("light session moved no bytes in the measurement window (heavy %d)", d0)
	}
	ratio := float64(d0) / float64(d1)
	if ratio < 2*(1-tolerance) || ratio > 2*(1+tolerance) {
		t.Fatalf("2:1 weighted sessions measured %.2f:1 (bytes %d vs %d)", ratio, d0, d1)
	}

	// Aggregate criterion: with the sublink itself as the bottleneck
	// and no trunk rate, the scheduled pump must keep pace with the
	// unscheduled one — arbitration is not allowed to cost throughput.
	h.net.SetDefaultLink(emu.LinkProps{Latency: time.Millisecond, Rate: 64 << 20})
	h.addDepot(epD, Config{PipelineBytes: 4 * chunk}) // unscheduled control
	epE := wire.MustEndpoint("10.0.0.5:7411")
	h.addDepot(epE, Config{ // scheduled, but no trunk rate: pure arbitration
		FairShare:     fairshare.New(fairshare.Config{}),
		PipelineBytes: 4 * chunk,
	})
	transfer := func(via wire.Endpoint) time.Duration {
		const total = 8 << 20
		s, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{via})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for sent := 0; sent < total; sent += chunk {
			if _, err := s.Write(payload); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		waitFor(t, func() bool {
			v, ok := byID.Load(s.ID())
			return ok && v.(*atomic.Int64).Load() >= total
		})
		return time.Since(start)
	}
	unscheduled := transfer(epD)
	scheduled := transfer(epE)
	if limit := time.Duration(float64(unscheduled)*1.10) + 20*time.Millisecond; scheduled > limit {
		t.Fatalf("scheduled pump took %v, unscheduled %v: more than 10%% overhead", scheduled, unscheduled)
	}
}
