package depot

import (
	"crypto/sha256"
	"errors"
	"io"

	"github.com/netlogistics/lsl/internal/bufpool"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// checkedSource returns the reader a pump should move payload from:
// for a checksummed session the stream passes through a per-chunk
// CRC-32C verifier that re-stamps each frame before it is forwarded,
// so a corrupting hop is caught by its immediate successor. Unchecked
// sessions read straight through.
func (s *Server) checkedSource(sess *lsl.Session) io.Reader {
	if sess.Header.Checksummed() {
		return wire.NewVerifyingReader(sess)
	}
	return sess
}

// flagCorrupt inspects a session error for detected data corruption
// (chunk-checksum or content-digest mismatch). When it finds one it
// counts the event, emits a "corrupt" trace event pinned to this hop,
// and answers the initiator with a typed refusal so its retry policy
// classifies the failure as transient and re-sends the damaged range.
// The error is returned unchanged either way.
func (s *Server) flagCorrupt(sess *lsl.Session, f *flow, err error) error {
	if err == nil || (!errors.Is(err, wire.ErrChecksum) && !errors.Is(err, wire.ErrDigest)) {
		return err
	}
	s.st.checksumErrors.Add(1)
	s.met.checksumErrs.Inc()
	f.emit(obs.KindCorrupt, obs.Event{Peer: sess.Header.Src.String(), Detail: err.Error()})
	s.logf("depot %s: session %s: corrupt payload: %v", s.cfg.Self, sess.Header.Session, err)
	_ = lsl.Refuse(sess.Conn, sess.Header)
	return err
}

// framedWriter wraps dst in a chunk-checksum framer when the session
// announced framing — the depot-as-sender side (generated payloads)
// of what checkedSource verifies.
func framedWriter(dst io.Writer, h *wire.Header) io.Writer {
	if h.Checksummed() {
		return wire.NewFrameWriter(dst)
	}
	return dst
}

// PatternDigest computes the content digest of the deterministic
// session pattern — what a sender stamps into OptContentDigest for a
// pattern-filled transfer of the given size.
func PatternDigest(id wire.SessionID, size int64) wire.ContentDigest {
	h := sha256.New()
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	buf := *bp
	var off int64
	for off < size {
		n := int64(len(buf))
		if remaining := size - off; remaining < n {
			n = remaining
		}
		FillPattern(buf[:n], id, off)
		h.Write(buf[:n])
		off += n
	}
	d := wire.ContentDigest{Size: size}
	h.Sum(d.Sum[:0])
	return d
}
