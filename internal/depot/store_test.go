package depot

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestSessionStorePutGet(t *testing.T) {
	s := memStore(t, 1000)
	id := wire.SessionID{1}
	if err := s.put(id, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok := s.get(id)
	if !ok || string(data) != "hello" {
		t.Fatalf("get = %q, %v", data, ok)
	}
	if _, ok := s.get(wire.SessionID{2}); ok {
		t.Fatal("missing id found")
	}
	used, entries, evicted := s.usage()
	if used != 5 || entries != 1 || evicted != 0 {
		t.Fatalf("usage = %d, %d, %d", used, entries, evicted)
	}
}

func TestSessionStoreReplace(t *testing.T) {
	s := memStore(t, 1000)
	id := wire.SessionID{1}
	s.put(id, []byte("aaaa"))
	s.put(id, []byte("bb"))
	data, _ := s.get(id)
	if string(data) != "bb" {
		t.Fatalf("replace failed: %q", data)
	}
	used, entries, _ := s.usage()
	if used != 2 || entries != 1 {
		t.Fatalf("usage after replace = %d, %d", used, entries)
	}
}

func TestSessionStoreEviction(t *testing.T) {
	s := memStore(t, 10)
	a, b, c := wire.SessionID{1}, wire.SessionID{2}, wire.SessionID{3}
	s.put(a, []byte("aaaa"))
	s.put(b, []byte("bbbb"))
	s.put(c, []byte("cccc")) // must evict a
	if _, ok := s.get(a); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := s.get(b); !ok {
		t.Fatal("newer entry evicted")
	}
	_, _, evicted := s.usage()
	if evicted != 1 {
		t.Fatalf("evicted = %d", evicted)
	}
}

func TestSessionStoreTooLarge(t *testing.T) {
	s := memStore(t, 4)
	if err := s.put(wire.SessionID{1}, []byte("too big")); !errors.Is(err, errTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncStoreAndFetch(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{}) // relay
	h.addDepot(epC, Config{}) // last depot: stores

	// Producer stores through the relay.
	payload := bytes.Repeat([]byte("async grid data "), 2048)
	sess, err := lsl.OpenStore(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Write(payload); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	waitFor(t, func() bool { return h.servers[epC].Stats().Stored == 1 })

	if used, entries, _ := h.servers[epC].StoreUsage(); entries != 1 || used != int64(len(payload)) {
		t.Fatalf("store usage = %d bytes, %d entries", used, entries)
	}

	// A different receiver discovers the session id and fetches from
	// the last depot.
	fetched, err := lsl.Fetch(h.dialerFrom("10.0.0.4"), epD, epC, sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(fetched)
	if err != nil {
		t.Fatal(err)
	}
	fetched.Close()
	if !bytes.Equal(got, payload) {
		t.Fatalf("fetched %d bytes, want %d", len(got), len(payload))
	}
	st := h.servers[epC].Stats()
	if st.Fetched != 1 || st.BytesFetched != int64(len(payload)) {
		t.Fatalf("fetch stats = %+v", st)
	}
	// Fetching again still works (store is not consumed).
	again, err := lsl.Fetch(h.dialerFrom("10.0.0.4"), epD, epC, sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, again)
	again.Close()
	if n != int64(len(payload)) {
		t.Fatalf("second fetch got %d bytes", n)
	}
}

func TestFetchUnknownIDRefused(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	_, err := lsl.Fetch(h.dialerFrom("10.0.0.1"), epA, epB, wire.SessionID{9, 9, 9})
	if !errors.Is(err, lsl.ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if st := h.servers[epB].Stats(); st.FetchMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreDirectAtDepot(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{StoreBytes: 1 << 20})
	sess, err := lsl.OpenStore(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Write([]byte("small"))
	sess.Close()
	waitFor(t, func() bool { return h.servers[epB].Stats().Stored == 1 })
	got, err := lsl.Fetch(h.dialerFrom("10.0.0.1"), epA, epB, sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(got)
	got.Close()
	if string(data) != "small" {
		t.Fatalf("fetched %q", data)
	}
}

func TestFetchMissingOption(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{})
	conn, err := h.net.Dial("10.0.0.1", epB.String())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := wire.NewSessionID()
	hd := &wire.Header{Version: wire.Version1, Type: wire.TypeFetch, Session: id, Src: epA, Dst: epB}
	wire.WriteHeader(conn, hd)
	conn.Close()
	waitFor(t, func() bool { return srv.Stats().Errors == 1 })
}

func TestStoredSessionLookup(t *testing.T) {
	h := newHarness(t)
	srv := h.addDepot(epB, Config{})
	if _, ok := srv.StoredSession(wire.SessionID{1}); ok {
		t.Fatal("empty store reported a session")
	}
	sess, err := lsl.OpenStore(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Write([]byte("abcde"))
	sess.Close()
	waitFor(t, func() bool {
		n, ok := srv.StoredSession(sess.ID())
		return ok && n == 5
	})
}
