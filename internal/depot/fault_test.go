package depot

import (
	"bytes"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// TestForwardRetryRidesOutLateListener: the onward depot is not up when
// the session arrives; the relay's dial retry must bridge the gap.
func TestForwardRetryRidesOutLateListener(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{
		ForwardRetry: retry.Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond},
	})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("late sink "), 1024)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()

	// The sink comes up only after the relay's first dial has already
	// been refused.
	time.Sleep(10 * time.Millisecond)
	h.addDepot(epC, Config{})

	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	st := h.servers[epB].Stats()
	if st.ForwardRetries < 1 {
		t.Fatalf("ForwardRetries = %d, want >= 1", st.ForwardRetries)
	}
	if st.Failovers != 0 {
		t.Fatalf("Failovers = %d, want 0", st.Failovers)
	}
}

// TestFailoverDirectSkipsDeadHop: with no depot at the routed next hop,
// a failover-enabled relay must deliver by dialing the session's final
// destination directly.
func TestFailoverDirectSkipsDeadHop(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{FailoverDirect: true})
	h.addDepot(epD, Config{}) // destination; epC (the routed hop) is dead

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epD, []wire.Endpoint{epB, epC})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("around the dead hop "), 512)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	st := h.servers[epB].Stats()
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
}

// TestFaultInjectorRefuse: a refusing depot closes connections before
// the header and counts both the refusal and the injection.
func TestFaultInjectorRefuse(t *testing.T) {
	h := newHarness(t)
	f := NewFaultInjector()
	f.RefuseConnect(true)
	h.addDepot(epB, Config{Faults: f})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epB, nil)
	if err == nil {
		// The dial itself succeeds (the listener is alive); the refusal
		// lands as a failed session, observed on write/close.
		sess.Write([]byte("doomed"))
		sess.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.servers[epB].Stats().Refused < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("refusal never counted: %+v", h.servers[epB].Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if f.Injected() < 1 {
		t.Fatalf("Injected = %d, want >= 1", f.Injected())
	}
}

// TestFaultInjectorDropTearsSession: an armed drop must cut a relayed
// session partway, delivering only a prefix to the sink.
func TestFaultInjectorDropTearsSession(t *testing.T) {
	h := newHarness(t)
	f := NewFaultInjector()
	f.DropAfter(32 << 10)
	h.addDepot(epB, Config{Faults: f})
	h.addDepot(epC, Config{})

	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9}, 128<<10)
	go func() {
		sess.Write(payload)
		sess.Close()
	}()
	got := h.waitDelivery(sess.ID())
	if len(got) >= len(payload) {
		t.Fatalf("delivered %d bytes through an armed drop fault", len(got))
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("delivered prefix does not match the payload")
	}
}
