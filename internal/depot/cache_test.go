package depot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// testCache builds a memory-only cache for depot tests.
func testCache(t *testing.T, capacity int64) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{MemoryBytes: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// digestOf computes the content digest of a literal payload.
func digestOf(payload []byte) wire.ContentDigest {
	return wire.ContentDigest{Size: int64(len(payload)), Sum: sha256.Sum256(payload)}
}

// unframingLocal is a sink handler that strips CRC framing before
// recording the delivery, so tests compare raw payload bytes.
func (h *harness) unframingLocal() Handler {
	return func(s *lsl.Session) error {
		var buf bytes.Buffer
		_, err := buf.ReadFrom(wire.NewFrameReader(s))
		h.mu.Lock()
		h.delivered[s.ID()] = buf.Bytes()
		h.mu.Unlock()
		h.done <- s.ID()
		return err
	}
}

// sendDigested pushes a checksummed, digest-stamped payload through the
// route and waits for it to land at the sink.
func sendDigested(t *testing.T, h *harness, dst wire.Endpoint, route []wire.Endpoint, payload []byte) wire.SessionID {
	t.Helper()
	d := digestOf(payload)
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, dst, route,
		wire.ChunkChecksumOption(), wire.ContentDigestOption(d))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		fw := wire.NewFrameWriter(sess)
		fw.Write(payload)
		sess.Close()
	}()
	h.waitDelivery(sess.ID())
	return sess.ID()
}

// TestCacheProbeRefusedWithoutCache: a depot with no cache refuses
// probes, so initiators can tell "no cache" from "cache empty".
func TestCacheProbeRefusedWithoutCache(t *testing.T) {
	h := newHarness(t)
	h.addDepot(epB, Config{})
	_, err := lsl.CacheProbe(h.dialerFrom("10.0.0.1"), epA, epB, digestOf([]byte("x")))
	if !errors.Is(err, lsl.ErrRefused) {
		t.Fatalf("probe of cacheless depot: %v, want ErrRefused", err)
	}
}

// TestCacheForwardPopulatesAndAdvertises forwards a digest-stamped
// payload through a caching relay; afterwards a probe must advertise
// the full range and the inventory must list the digest.
func TestCacheForwardPopulatesAndAdvertises(t *testing.T) {
	h := newHarness(t)
	c := testCache(t, 1<<20)
	h.addDepot(epB, Config{Cache: c})
	h.addDepot(epC, Config{Local: h.unframingLocal()})
	payload := bytes.Repeat([]byte("cache me! "), 4096)
	sendDigested(t, h, epC, []wire.Endpoint{epB}, payload)

	d := digestOf(payload)
	ranges, err := lsl.CacheProbe(h.dialerFrom("10.0.0.1"), epA, epB, d)
	if err != nil {
		t.Fatal(err)
	}
	want := wire.ByteRange{Off: 0, Len: int64(len(payload))}
	if len(ranges) != 1 || ranges[0] != want {
		t.Fatalf("advertised ranges = %v, want [%v]", ranges, want)
	}
	inv, err := lsl.CacheInventory(h.dialerFrom("10.0.0.1"), epA, epB)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 1 || inv[0] != d {
		t.Fatalf("inventory = %v, want one entry for the forwarded object", inv)
	}
	// A probe for an unknown digest advertises nothing — not an error.
	other := digestOf([]byte("different"))
	if ranges, err := lsl.CacheProbe(h.dialerFrom("10.0.0.1"), epA, epB, other); err != nil || len(ranges) != 0 {
		t.Fatalf("probe of absent digest = %v, %v", ranges, err)
	}
}

// TestCacheServeDirective populates a relay's cache, then directs it to
// serve the object to the sink from cache: the sink must receive the
// exact payload without the origin sending a byte.
func TestCacheServeDirective(t *testing.T) {
	h := newHarness(t)
	c := testCache(t, 1<<20)
	h.addDepot(epB, Config{Cache: c})
	h.addDepot(epC, Config{Local: h.unframingLocal()})
	payload := bytes.Repeat([]byte("serve from depot "), 4096)
	sendDigested(t, h, epC, []wire.Endpoint{epB}, payload)

	d := digestOf(payload)
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := lsl.OpenCacheServe(h.dialerFrom("10.0.0.1"), id, epA, epC,
		[]wire.Endpoint{epB}, d, wire.ByteRange{Off: 0, Len: d.Size},
		wire.ChunkChecksumOption(), wire.ContentDigestOption(d))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := h.waitDelivery(id); !bytes.Equal(got, payload) {
		t.Fatalf("cache-served %d bytes, want %d", len(got), len(payload))
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("cache stats after serve = %+v, want a hit", st)
	}
}

// TestCacheServeSuffixRange directs the holder to serve only the tail
// of the object; the sink's resume offset must be pinned to the range.
func TestCacheServeSuffixRange(t *testing.T) {
	h := newHarness(t)
	c := testCache(t, 1<<20)
	h.addDepot(epB, Config{Cache: c})
	offc := make(chan int64, 1)
	h.addDepot(epC, Config{Local: func(s *lsl.Session) error {
		offc <- s.Header.ResumeOffset()
		var buf bytes.Buffer
		_, err := buf.ReadFrom(wire.NewFrameReader(s))
		h.mu.Lock()
		h.delivered[s.ID()] = buf.Bytes()
		h.mu.Unlock()
		h.done <- s.ID()
		return err
	}})
	payload := bytes.Repeat([]byte("tail service "), 4096)
	sendDigested(t, h, epC, []wire.Endpoint{epB}, payload)
	<-offc // first transfer's offset

	d := digestOf(payload)
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	r := wire.ByteRange{Off: d.Size / 2, Len: d.Size - d.Size/2}
	sess, err := lsl.OpenCacheServe(h.dialerFrom("10.0.0.1"), id, epA, epC,
		[]wire.Endpoint{epB}, d, r, wire.ChunkChecksumOption())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := h.waitDelivery(id); !bytes.Equal(got, payload[r.Off:]) {
		t.Fatalf("cache-served %d bytes, want %d", len(got), r.Len)
	}
	if gotOff := <-offc; gotOff != r.Off {
		t.Fatalf("sink resume offset = %d, want %d", gotOff, r.Off)
	}
}

// TestCacheServeMissRefused: a directive for a range the depot does not
// hold must come back as a protocol refusal, so the initiator falls
// back to the origin instead of hanging.
func TestCacheServeMissRefused(t *testing.T) {
	h := newHarness(t)
	c := testCache(t, 1<<20)
	h.addDepot(epB, Config{Cache: c})
	d := digestOf([]byte("never cached"))
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := lsl.OpenCacheServe(h.dialerFrom("10.0.0.1"), id, epA, epC,
		[]wire.Endpoint{epB}, d, wire.ByteRange{Off: 0, Len: d.Size})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	resp, err := wire.ReadHeader(sess)
	if err != nil {
		t.Fatalf("miss directive response: %v", err)
	}
	if resp.Type != wire.TypeRefuse {
		t.Fatalf("miss directive response type = %d, want TypeRefuse", resp.Type)
	}
}

// TestCacheShortCircuit sends the same digest-stamped object twice
// through a caching relay. The second send must be served from the
// relay's cache: the upstream sublink is terminated, a cache-hit trace
// event is emitted, and the sink still receives the exact bytes.
func TestCacheShortCircuit(t *testing.T) {
	h := newHarness(t)
	c := testCache(t, 1<<20)
	sink := &obs.MemorySink{}
	h.addDepot(epB, Config{Cache: c, Trace: sink})
	h.addDepot(epC, Config{Local: h.unframingLocal()})
	payload := bytes.Repeat([]byte("send twice "), 8192)
	sendDigested(t, h, epC, []wire.Endpoint{epB}, payload)

	// Second transfer of the same object: the relay holds it in full and
	// may terminate this sublink at any moment, so sender errors are
	// expected; the transfer must complete regardless.
	d := digestOf(payload)
	sess, err := lsl.Open(h.dialerFrom("10.0.0.1"), epA, epC, []wire.Endpoint{epB},
		wire.ChunkChecksumOption(), wire.ContentDigestOption(d))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		fw := wire.NewFrameWriter(sess)
		fw.Write(payload)
		sess.Close()
	}()
	if got := h.waitDelivery(sess.ID()); !bytes.Equal(got, payload) {
		t.Fatalf("short-circuited delivery: %d bytes, want %d", len(got), len(payload))
	}
	var hit bool
	for _, e := range sink.Events() {
		if e.Kind == obs.KindCacheHit && e.Session == sess.ID().String() {
			hit = true
		}
	}
	if !hit {
		t.Fatal("second transfer emitted no cache-hit event")
	}
	if st := c.Stats(); st.Hits == 0 || st.BytesServed == 0 {
		t.Fatalf("cache stats after short-circuit = %+v", st)
	}
}

// TestCacheTapUncheckedPartialDiscarded: an unchecked stream carries no
// per-chunk proof, so a session that dies partway must not populate the
// cache — but a clean completion may.
func TestCacheTapUncheckedPartialDiscarded(t *testing.T) {
	c := testCache(t, 1<<20)
	payload := []byte("half a payload")
	d := digestOf(payload)
	h := &wire.Header{Version: wire.Version1, Type: wire.TypeData}
	h.AddOption(wire.ContentDigestOption(d))
	srv := &Server{cfg: Config{Cache: c}}
	tap := srv.cacheTap(h)
	if tap == nil {
		t.Fatal("cacheable header got no tap")
	}
	tap.Write(payload[:4])
	tap.commit(false) // session failed: unverified bytes must not land
	if got := c.Ranges(d); got != nil {
		t.Fatalf("unchecked partial committed: %v", got)
	}
	tap.Write(payload[4:])
	tap.commit(true)
	want := wire.ByteRange{Off: 0, Len: d.Size}
	if got := c.Ranges(d); len(got) != 1 || got[0] != want {
		t.Fatalf("clean unchecked session not committed: %v", got)
	}
}

// TestCacheTapFramedPartialKept: a checksummed stream's complete frames
// are CRC-proven, so even a failed session contributes its prefix.
func TestCacheTapFramedPartialKept(t *testing.T) {
	c := testCache(t, 1<<20)
	payload := bytes.Repeat([]byte("z"), 3000)
	d := digestOf(payload)
	h := &wire.Header{Version: wire.Version1, Type: wire.TypeData}
	h.AddOption(wire.ContentDigestOption(d))
	h.AddOption(wire.ChunkChecksumOption())
	srv := &Server{cfg: Config{Cache: c}}
	tap := srv.cacheTap(h)
	var framed bytes.Buffer
	wire.NewFrameWriter(&framed).Write(payload[:2000])
	// One complete frame plus the torn start of the next.
	tap.Write(framed.Bytes())
	tap.Write([]byte{0, 0})
	tap.commit(false)
	want := wire.ByteRange{Off: 0, Len: 2000}
	if got := c.Ranges(d); len(got) != 1 || got[0] != want {
		t.Fatalf("framed prefix not committed: %v", got)
	}
}

// TestCacheTapOversizedObjectSkipped: an object that can never fit the
// cache gets no tap at all, so forwarding pays no buffering for it.
func TestCacheTapOversizedObjectSkipped(t *testing.T) {
	c := testCache(t, 1024)
	d := wire.ContentDigest{Size: 1 << 20}
	h := &wire.Header{Version: wire.Version1, Type: wire.TypeData}
	h.AddOption(wire.ContentDigestOption(d))
	srv := &Server{cfg: Config{Cache: c}}
	if tap := srv.cacheTap(h); tap != nil {
		t.Fatal("oversized object got a population tap")
	}
}

// TestSpoolReindexDropCounting (satellite): a restart over a spool
// directory holding a torn .tmp write and a damaged .p file must count
// both drops, expose them via the metric, and log one summary line.
func TestSpoolReindexDropCounting(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 4, 1<<20, dir)
	good := wire.SessionID{1}
	s.put(good, []byte("keep"))
	s.put(wire.SessionID{2}, []byte("warm")) // overflows: good spills to disk
	if _, spilled, _, _ := s.spoolUsage(); spilled != 1 {
		t.Fatalf("setup: spilled = %d, want 1", spilled)
	}
	// A torn write and a damaged payload alongside the good file.
	if err := os.WriteFile(filepath.Join(dir, "torn.p.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	bogus := sha256.Sum256([]byte("what the name claims"))
	damagedName := hex.EncodeToString(bogus[:]) + "." + wire.SessionID{9}.String() + ".p"
	if err := os.WriteFile(filepath.Join(dir, damagedName), []byte("not those bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Self: epB, Dial: lsl.DialerFunc(nil),
		SpoolDir: dir, StoreBytes: 4, SpoolBytes: 1 << 20,
		Metrics: reg,
		Logf:    func(format string, args ...any) { logged = append(logged, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.store.spoolReindexDropped(); got != 2 {
		t.Fatalf("reindex dropped = %d, want 2", got)
	}
	if got := reg.Counter(MetricSpoolReindexDropped).Value(); got != 2 {
		t.Fatalf("metric %s = %d, want 2", MetricSpoolReindexDropped, got)
	}
	if len(logged) != 1 {
		t.Fatalf("summary log lines = %d, want 1", len(logged))
	}
	// The good payload survived re-indexing.
	if data, ok := srv.store.get(good); !ok || string(data) != "keep" {
		t.Fatalf("good spooled payload lost: %q, %v", data, ok)
	}
}

// TestSpoolReindexUnderFullSpool (satellite): restarting with a spool
// budget smaller than what the directory holds must evict during
// re-index — the oldest payload goes, the budget holds, and the evicted
// file is deleted from disk, not just from the index.
func TestSpoolReindexUnderFullSpool(t *testing.T) {
	dir := t.TempDir()
	s := spoolStore(t, 8, 1<<20, dir)
	older, newer, third := wire.SessionID{1}, wire.SessionID{2}, wire.SessionID{3}
	s.put(older, []byte("old-old"))
	s.put(newer, []byte("new-new")) // spills older
	s.put(third, []byte("mem-mem")) // spills newer
	if diskBytes, spilled, _, _ := s.spoolUsage(); diskBytes != 14 || spilled != 2 {
		t.Fatalf("setup: disk bytes = %d, spilled = %d", diskBytes, spilled)
	}
	// Age the older file so recovery's oldest-first ordering is stable
	// regardless of filesystem timestamp granularity.
	for _, de := range mustReadDir(t, dir) {
		if _, id, ok := parseSpoolName(de.Name()); ok && id == older {
			past := time.Now().Add(-time.Hour)
			if err := os.Chtimes(filepath.Join(dir, de.Name()), past, past); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Restart with a spool budget that fits only one payload.
	s2 := spoolStore(t, 8, 10, dir)
	if _, ok := s2.get(newer); !ok {
		t.Fatal("re-index under budget lost the newest payload")
	}
	if _, ok := s2.get(older); ok {
		t.Fatal("re-index under budget kept the oldest payload over a newer one")
	}
	if diskBytes, _, recovered, _ := s2.spoolUsage(); diskBytes > 10 || recovered != 2 {
		t.Fatalf("after re-index: disk bytes = %d (budget 10), recovered = %d", diskBytes, recovered)
	}
	remaining := 0
	for _, de := range mustReadDir(t, dir) {
		if _, _, ok := parseSpoolName(de.Name()); ok {
			remaining++
		}
	}
	if remaining != 1 {
		t.Fatalf("spool files after re-index eviction = %d, want 1", remaining)
	}
}

// TestSpoolReindexDamagedBesideValidSameDigest (satellite): a damaged
// .p file whose name carries the same digest as a valid file (distinct
// session ids) must be dropped while the valid one is re-indexed.
func TestSpoolReindexDamagedBesideValidSameDigest(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("shared-digest-payload")
	sum := sha256.Sum256(payload)
	validName := hex.EncodeToString(sum[:]) + "." + wire.SessionID{1}.String() + ".p"
	damagedName := hex.EncodeToString(sum[:]) + "." + wire.SessionID{2}.String() + ".p"
	if err := os.WriteFile(filepath.Join(dir, validName), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, damagedName), []byte("corrupted body!!!"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := spoolStore(t, 64, 1<<20, dir)
	if got := s.spoolReindexDropped(); got != 1 {
		t.Fatalf("reindex dropped = %d, want 1", got)
	}
	if data, ok := s.get(wire.SessionID{1}); !ok || !bytes.Equal(data, payload) {
		t.Fatalf("valid same-digest payload lost: got %v", ok)
	}
	if _, ok := s.get(wire.SessionID{2}); ok {
		t.Fatal("damaged same-digest payload resurrected")
	}
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return des
}
