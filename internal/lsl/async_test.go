package lsl

import (
	"errors"
	"io"
	"net"
	"testing"

	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestOpenStoreHeader(t *testing.T) {
	dst := wire.MustEndpoint("10.0.0.2:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, sessions := testNet(t, dst.String())
	sess, err := OpenStore(dial, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := <-sessions
	if got.Header.Type != wire.TypeStore {
		t.Fatalf("type = %d, want TypeStore", got.Header.Type)
	}
}

// fetchServer answers one fetch request with the given behaviour.
func fetchServer(t *testing.T, addr string, respond func(conn net.Conn, req *wire.Header)) Dialer {
	t.Helper()
	n := emu.NewNetwork(0.001)
	ln, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h, err := wire.ReadHeader(conn)
			if err != nil {
				conn.Close()
				continue
			}
			respond(conn, h)
		}
	}()
	return DialerFunc(func(a string) (net.Conn, error) { return n.Dial("client", a) })
}

func TestFetchSuccess(t *testing.T) {
	depotEP := wire.MustEndpoint("10.0.0.9:7411")
	self := wire.MustEndpoint("10.0.0.1:7411")
	stored := wire.SessionID{7, 7, 7}
	payload := []byte("stored payload")

	dial := fetchServer(t, depotEP.String(), func(conn net.Conn, req *wire.Header) {
		defer conn.Close()
		opt, ok := req.Option(wire.OptFetchID)
		if !ok {
			return
		}
		id, err := wire.ParseFetchID(opt)
		if err != nil || id != stored {
			Refuse(conn, req)
			return
		}
		resp := &wire.Header{
			Version: wire.Version1, Type: wire.TypeData,
			Session: id, Src: depotEP, Dst: req.Src,
		}
		wire.WriteHeader(conn, resp)
		conn.Write(payload)
	})

	sess, err := Fetch(dial, self, depotEP, stored)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.ID() != stored {
		t.Fatal("fetched session id mismatch")
	}
	got, err := io.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestFetchRefused(t *testing.T) {
	depotEP := wire.MustEndpoint("10.0.0.9:7411")
	dial := fetchServer(t, depotEP.String(), func(conn net.Conn, req *wire.Header) {
		Refuse(conn, req)
	})
	_, err := Fetch(dial, wire.MustEndpoint("10.0.0.1:1"), depotEP, wire.SessionID{1})
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestFetchWrongResponse(t *testing.T) {
	depotEP := wire.MustEndpoint("10.0.0.9:7411")
	dial := fetchServer(t, depotEP.String(), func(conn net.Conn, req *wire.Header) {
		defer conn.Close()
		resp := &wire.Header{
			Version: wire.Version1, Type: wire.TypeData,
			Session: wire.SessionID{99}, // wrong id
			Src:     depotEP, Dst: req.Src,
		}
		wire.WriteHeader(conn, resp)
	})
	if _, err := Fetch(dial, wire.MustEndpoint("10.0.0.1:1"), depotEP, wire.SessionID{1}); err == nil {
		t.Fatal("mismatched fetch response accepted")
	}
}

func TestFetchTruncatedResponse(t *testing.T) {
	depotEP := wire.MustEndpoint("10.0.0.9:7411")
	dial := fetchServer(t, depotEP.String(), func(conn net.Conn, req *wire.Header) {
		conn.Close() // no response at all
	})
	if _, err := Fetch(dial, wire.MustEndpoint("10.0.0.1:1"), depotEP, wire.SessionID{1}); err == nil {
		t.Fatal("truncated fetch response accepted")
	}
}

func TestFetchDialError(t *testing.T) {
	dial := DialerFunc(func(string) (net.Conn, error) { return nil, errors.New("down") })
	if _, err := Fetch(dial, wire.MustEndpoint("10.0.0.1:1"), wire.MustEndpoint("10.0.0.9:1"), wire.SessionID{1}); err == nil {
		t.Fatal("dial failure not surfaced")
	}
}

func TestOpenMulticastDialError(t *testing.T) {
	dial := DialerFunc(func(string) (net.Conn, error) { return nil, errors.New("down") })
	tree := &wire.TreeNode{Addr: wire.MustEndpoint("10.0.0.9:1")}
	if _, err := OpenMulticast(dial, wire.MustEndpoint("10.0.0.1:1"), wire.MustEndpoint("10.0.0.1:1"), tree); err == nil {
		t.Fatal("dial failure not surfaced")
	}
}
