package lsl

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/wire"
)

// testNet builds an emulated net with a sink listener, returning a
// dialer for the client host and a channel of accepted sessions.
func testNet(t *testing.T, sinkAddr string) (Dialer, chan *Session) {
	t.Helper()
	n := emu.NewNetwork(0.001)
	ln, err := n.Listen(sinkAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	sessions := make(chan *Session, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s, err := Accept(conn)
			if err != nil {
				continue
			}
			sessions <- s
		}
	}()
	dial := DialerFunc(func(addr string) (net.Conn, error) { return n.Dial("client", addr) })
	return dial, sessions
}

func TestOpenDirectSession(t *testing.T) {
	dst := wire.MustEndpoint("10.0.0.2:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, sessions := testNet(t, dst.String())

	sess, err := Open(dial, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("grid data")
	go func() {
		sess.Write(payload)
		sess.Close()
	}()

	got := <-sessions
	if got.Header.Src != src || got.Header.Dst != dst {
		t.Fatalf("header endpoints: %+v", got.Header)
	}
	if got.Header.Type != wire.TypeData {
		t.Fatalf("type = %d", got.Header.Type)
	}
	if got.ID() != sess.ID() {
		t.Fatal("session ids differ across the wire")
	}
	if _, ok := got.Header.Option(wire.OptSourceRoute); ok {
		t.Fatal("direct session should carry no source route")
	}
	data, err := io.ReadAll(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatalf("payload = %q", data)
	}
}

func TestOpenWithRoute(t *testing.T) {
	// The first hop receives the connection; the remaining route (one
	// depot + final dst) rides in the header.
	firstHop := wire.MustEndpoint("10.0.0.9:7411")
	depot2 := wire.MustEndpoint("10.0.0.8:7411")
	dst := wire.MustEndpoint("10.0.0.2:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, sessions := testNet(t, firstHop.String())

	sess, err := Open(dial, src, dst, []wire.Endpoint{firstHop, depot2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	got := <-sessions
	opt, ok := got.Header.Option(wire.OptSourceRoute)
	if !ok {
		t.Fatal("source route missing")
	}
	hops, err := wire.ParseSourceRoute(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 2 || hops[0] != depot2 || hops[1] != dst {
		t.Fatalf("remaining route = %v", hops)
	}
	if got.Header.Dst != dst {
		t.Fatalf("dst = %v", got.Header.Dst)
	}
}

func TestOpenZeroDestination(t *testing.T) {
	dial, _ := testNet(t, "10.0.0.2:7411")
	if _, err := Open(dial, wire.MustEndpoint("10.0.0.1:1"), wire.Endpoint{}, nil); err == nil {
		t.Fatal("zero destination accepted")
	}
}

func TestOpenDialFailure(t *testing.T) {
	dial := DialerFunc(func(addr string) (net.Conn, error) {
		return nil, errors.New("refused")
	})
	_, err := Open(dial, wire.MustEndpoint("10.0.0.1:1"), wire.MustEndpoint("10.0.0.2:1"), nil)
	if err == nil {
		t.Fatal("dial failure not propagated")
	}
}

func TestOpenGenerate(t *testing.T) {
	dst := wire.MustEndpoint("10.0.0.2:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, sessions := testNet(t, dst.String())

	sess, err := OpenGenerate(dial, src, dst, nil, 12345)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := <-sessions
	if got.Header.Type != wire.TypeGenerate {
		t.Fatalf("type = %d", got.Header.Type)
	}
	opt, ok := got.Header.Option(wire.OptGenerate)
	if !ok {
		t.Fatal("generate option missing")
	}
	size, err := wire.ParseGenerate(opt)
	if err != nil || size != 12345 {
		t.Fatalf("size = %d, %v", size, err)
	}
}

func TestOpenMulticast(t *testing.T) {
	root := wire.MustEndpoint("10.0.0.3:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, sessions := testNet(t, root.String())

	tree := &wire.TreeNode{
		Addr: root,
		Children: []*wire.TreeNode{
			{Addr: wire.MustEndpoint("10.0.0.4:7411")},
			{Addr: wire.MustEndpoint("10.0.0.5:7411")},
		},
	}
	sess, err := OpenMulticast(dial, src, src, tree)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got := <-sessions
	if got.Header.Type != wire.TypeMulticast {
		t.Fatalf("type = %d", got.Header.Type)
	}
	opt, ok := got.Header.Option(wire.OptMulticastTree)
	if !ok {
		t.Fatal("tree option missing")
	}
	parsed, err := wire.ParseMulticastTree(opt)
	if err != nil || parsed.Size() != 3 {
		t.Fatalf("tree = %v, %v", parsed, err)
	}
}

func TestRefuse(t *testing.T) {
	n := emu.NewNetwork(0.001)
	ln, err := n.Listen("10.0.0.2:7411")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Server refuses every session.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		h, err := wire.ReadHeader(conn)
		if err != nil {
			return
		}
		Refuse(conn, h)
	}()

	dial := DialerFunc(func(addr string) (net.Conn, error) { return n.Dial("client", addr) })
	sess, err := Open(dial, wire.MustEndpoint("10.0.0.1:7411"), wire.MustEndpoint("10.0.0.2:7411"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Reading the response surfaces the refusal header.
	h, err := wire.ReadHeader(sess)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != wire.TypeRefuse {
		t.Fatalf("response type = %d, want refuse", h.Type)
	}
	if h.Session != sess.ID() {
		t.Fatal("refusal should echo the session id")
	}
}

func TestAcceptRefusedType(t *testing.T) {
	// Accept() treats an incoming TypeRefuse header as ErrRefused.
	n := emu.NewNetwork(0.001)
	ln, err := n.Listen("10.0.0.2:7411")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		_, err = Accept(conn)
		errCh <- err
	}()
	conn, err := n.Dial("client", "10.0.0.2:7411")
	if err != nil {
		t.Fatal(err)
	}
	h := &wire.Header{Version: wire.Version1, Type: wire.TypeRefuse,
		Src: wire.MustEndpoint("10.0.0.1:1"), Dst: wire.MustEndpoint("10.0.0.2:1")}
	if err := wire.WriteHeader(conn, h); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestAcceptGarbage(t *testing.T) {
	n := emu.NewNetwork(0.001)
	ln, err := n.Listen("10.0.0.2:7411")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		_, err = Accept(conn)
		errCh <- err
	}()
	conn, err := n.Dial("client", "10.0.0.2:7411")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(bytes.Repeat([]byte{0xAB}, 100))
	conn.Close()
	if err := <-errCh; err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestOpenStripe(t *testing.T) {
	dst := wire.MustEndpoint("10.0.0.2:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, sessions := testNet(t, dst.String())

	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	// Two stripes of one object share the id; the second begins at a
	// nonzero absolute offset carried as a resume option.
	cases := []struct {
		index  int
		offset int64
	}{
		{index: 0, offset: 0},
		{index: 1, offset: 4096},
	}
	for _, tc := range cases {
		sess, err := OpenStripe(dial, src, dst, nil, id, tc.index, 2, tc.offset)
		if err != nil {
			t.Fatal(err)
		}
		sess.Close()
		got := <-sessions
		if got.ID() != id {
			t.Fatalf("stripe %d: id %s, want shared %s", tc.index, got.ID(), id)
		}
		if c := got.Header.StripeCount(); c != 2 {
			t.Fatalf("stripe %d: count = %d", tc.index, c)
		}
		if k := got.Header.StripeIndex(); k != tc.index {
			t.Fatalf("stripe index = %d, want %d", k, tc.index)
		}
		if off := got.Header.ResumeOffset(); off != tc.offset {
			t.Fatalf("stripe %d: offset = %d, want %d", tc.index, off, tc.offset)
		}
	}
}

func TestOpenStripeValidation(t *testing.T) {
	dst := wire.MustEndpoint("10.0.0.2:7411")
	src := wire.MustEndpoint("10.0.0.1:7411")
	dial, _ := testNet(t, dst.String())
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name         string
		index, count int
		offset       int64
	}{
		{"zero-count", 0, 0, 0},
		{"negative-index", -1, 2, 0},
		{"index-beyond-count", 2, 2, 0},
		{"negative-offset", 0, 2, -1},
		{"count-overflows-wire", 0, 1 << 17, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := OpenStripe(dial, src, dst, nil, id, tc.index, tc.count, tc.offset); err == nil {
				t.Fatalf("OpenStripe accepted index=%d count=%d offset=%d", tc.index, tc.count, tc.offset)
			}
		})
	}
}
