package lsl

import (
	"fmt"
	"time"

	"github.com/netlogistics/lsl/internal/wire"
)

// CacheProbe asks the depot at depotAddr which byte ranges of the
// digest-named object its content-addressed cache holds. An empty
// slice means "none of it"; ErrRefused means the depot runs no cache.
// The probe is a single request/response exchange on its own
// connection, deliberately cheap: initiators fan it across a path's
// depots before deciding whether a transfer can be served from cache.
func CacheProbe(d Dialer, self, depotAddr wire.Endpoint, digest wire.ContentDigest) ([]wire.ByteRange, error) {
	resp, err := cacheExchange(d, self, depotAddr, []wire.Option{wire.CacheLookupOption(digest)})
	if err != nil {
		return nil, err
	}
	ranges, _ := resp.CacheAdvert()
	return ranges, nil
}

// CacheInventory asks the depot at depotAddr for its full cache
// inventory: the content digests it holds complete. ErrRefused means
// the depot runs no cache. Controllers poll this during probe rounds
// to build the mesh-wide digest→holders map cache-aware planning
// scores routes with.
func CacheInventory(d Dialer, self, depotAddr wire.Endpoint) ([]wire.ContentDigest, error) {
	resp, err := cacheExchange(d, self, depotAddr, nil)
	if err != nil {
		return nil, err
	}
	return resp.CacheLookups(), nil
}

// cacheExchange runs one TypeCacheProbe request/response round trip.
func cacheExchange(d Dialer, self, depotAddr wire.Endpoint, opts []wire.Option) (*wire.Header, error) {
	t0 := time.Now()
	conn, err := dialHop(d, depotAddr.String())
	if err != nil {
		return nil, fmt.Errorf("lsl: dial %s: %w", depotAddr, err)
	}
	defer conn.Close()
	req, err := start(conn, self, depotAddr, wire.TypeCacheProbe, opts)
	if err != nil {
		return nil, err
	}
	observeSetup(t0)
	resp, err := wire.ReadHeader(req)
	if err != nil {
		return nil, fmt.Errorf("lsl: cache probe response: %w", err)
	}
	if resp.Type == wire.TypeRefuse {
		metrics().Counter(MetricRefusalsSeen).Inc()
		return nil, ErrRefused
	}
	if resp.Type != wire.TypeCacheProbe {
		return nil, fmt.Errorf("lsl: unexpected cache probe response type %d", resp.Type)
	}
	return resp, nil
}

// OpenCacheServe sends a serve-from-cache directive: the first hop of
// route (the holding depot) is told to push the given range of the
// digest-named object toward dst from its own cache, as an ordinary
// data stream under the supplied session id. The caller holds the
// returned session open until the sink reports, then closes it; no
// payload crosses this connection. A holder that cannot satisfy the
// directive refuses, surfacing as ErrRefused on the first read.
func OpenCacheServe(d Dialer, id wire.SessionID, src, dst wire.Endpoint, route []wire.Endpoint, digest wire.ContentDigest, r wire.ByteRange, extra ...wire.Option) (*Session, error) {
	if len(route) == 0 {
		return nil, fmt.Errorf("lsl: cache serve needs a holding depot as its first hop")
	}
	opts := cloneOpts([]wire.Option{wire.CacheServeOption(digest, r)}, extra)
	return openWithID(d, id, src, dst, route, wire.TypeCacheServe, opts)
}
