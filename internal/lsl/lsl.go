// Package lsl implements the Logistical Session Layer over any
// net.Conn transport: session establishment with loose source routes,
// the initiator and sink sides of point-to-point data sessions,
// generate-data test requests, and multicast staging sessions.
//
// The session layer binds end-to-end communication to a chain of
// transport connections instead of a single one: the initiator opens a
// connection to the first hop (a depot or the final sink), writes the
// session header, and streams the payload; each depot pops itself off
// the source route and forwards (internal/depot). "Serial, rather than
// parallel, sockets" — Section 2.
package lsl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// Metric names reported by session setup when a registry is installed
// with SetMetrics.
const (
	MetricSessionsOpened   = "lsl_sessions_opened_total"
	MetricSessionsAccepted = "lsl_sessions_accepted_total"
	MetricRefusalsIssued   = "lsl_refusals_issued_total"
	MetricRefusalsSeen     = "lsl_refusals_seen_total"
	MetricDialErrors       = "lsl_dial_errors_total"
	MetricSetupSeconds     = "lsl_session_setup_seconds"
)

// metricsReg is the process-wide registry session setup reports into.
// It is package-level (rather than threaded through every Open call)
// because session establishment has no configuration object; a nil
// registry makes every report a no-op.
var metricsReg atomic.Pointer[obs.Registry]

// SetMetrics installs the registry that session setup (Open, Accept,
// Refuse, Fetch and friends) reports into. Passing nil disables
// reporting. Safe for concurrent use.
func SetMetrics(r *obs.Registry) { metricsReg.Store(r) }

func metrics() *obs.Registry { return metricsReg.Load() }

// setupBuckets spans 100 µs to ~3 s of dial+header latency.
var setupBuckets = obs.ExpBuckets(1e-4, 2, 15)

// Dialer abstracts transport connection establishment so sessions run
// identically over the emulated network, real TCP, or test doubles.
type Dialer interface {
	Dial(address string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(address string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(address string) (net.Conn, error) { return f(address) }

// Session is an established LSL session: a byte stream plus the header
// that routed it.
type Session struct {
	net.Conn
	Header *wire.Header
}

// ID returns the session identifier.
func (s *Session) ID() wire.SessionID { return s.Header.Session }

// Open establishes a data session from src to dst through the given
// loose source route of depot endpoints (empty route = direct). It
// dials the first hop, writes the session header carrying the remaining
// route, and returns the session ready for payload writes. Closing the
// session propagates end-of-stream down the chain.
//
// Extra options (here and on the whole Open family) are appended to the
// header verbatim — the hook initiators thread end-to-end metadata such
// as wire.TraceIDOption through without the session layer knowing it.
func Open(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, extra ...wire.Option) (*Session, error) {
	return open(d, src, dst, route, wire.TypeData, cloneOpts(nil, extra))
}

// cloneOpts appends extra to a fresh copy of opts, so the variadic
// slice a caller may reuse is never aliased into a header.
func cloneOpts(opts, extra []wire.Option) []wire.Option {
	if len(extra) == 0 {
		return opts
	}
	out := make([]wire.Option, 0, len(opts)+len(extra))
	out = append(out, opts...)
	return append(out, extra...)
}

// OpenAt is Open for a resumed transfer: the session header carries a
// resume-offset option announcing that the payload stream begins at the
// given absolute byte offset. Depots forward the option untouched; the
// sink appends from that offset instead of restarting. An offset of 0
// is identical to Open.
func OpenAt(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, offset int64, extra ...wire.Option) (*Session, error) {
	if offset < 0 {
		return nil, fmt.Errorf("lsl: negative resume offset %d", offset)
	}
	var opts []wire.Option
	if offset > 0 {
		opts = []wire.Option{wire.ResumeOffsetOption(uint64(offset))}
	}
	return open(d, src, dst, route, wire.TypeData, cloneOpts(opts, extra))
}

// OpenAtID is OpenAt with a caller-chosen session identifier, so every
// attempt of a reliable transfer — the original and each resume after
// a fault — presents the same id to the sink. That shared identity is
// what lets receiver-side state that must span attempts (the running
// end-to-end content digest) follow one object across its retries.
func OpenAtID(d Dialer, id wire.SessionID, src, dst wire.Endpoint, route []wire.Endpoint, offset int64, extra ...wire.Option) (*Session, error) {
	if offset < 0 {
		return nil, fmt.Errorf("lsl: negative resume offset %d", offset)
	}
	var opts []wire.Option
	if offset > 0 {
		opts = []wire.Option{wire.ResumeOffsetOption(uint64(offset))}
	}
	return openWithID(d, id, src, dst, route, wire.TypeData, cloneOpts(opts, extra))
}

// OpenStripe opens one stripe of a striped transfer: stripe index of
// count parallel sublink chains that together move a single object
// under the shared session identifier id. The stripe's payload is the
// contiguous byte range beginning at absolute object offset — carried
// as a resume-offset option, so depots and the sink handle a stripe
// with exactly the machinery of a resumed transfer and reassemble by
// absolute offset. A failed stripe is reopened with the same id and
// index and a deeper offset; its siblings are untouched.
func OpenStripe(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, id wire.SessionID, index, count int, offset int64, extra ...wire.Option) (*Session, error) {
	if count < 1 || index < 0 || index >= count {
		return nil, fmt.Errorf("lsl: stripe %d of %d out of range", index, count)
	}
	if count > int(^uint16(0)) {
		return nil, fmt.Errorf("lsl: stripe count %d exceeds wire limit", count)
	}
	if offset < 0 {
		return nil, fmt.Errorf("lsl: negative stripe offset %d", offset)
	}
	opts := []wire.Option{
		wire.StripeCountOption(uint16(count)),
		wire.StripeIndexOption(uint16(index)),
	}
	if offset > 0 {
		opts = append(opts, wire.ResumeOffsetOption(uint64(offset)))
	}
	return openWithID(d, id, src, dst, route, wire.TypeData, cloneOpts(opts, extra))
}

// OpenPath opens one pinned-route session of a multipath transfer:
// route index of count edge-disjoint depot routes that together move a
// single object under the shared session identifier id, grouped by the
// path-set identifier set. The session's payload is a contiguous byte
// range beginning at absolute object offset — carried as a
// resume-offset option, exactly as a stripe's is, so depots and the
// sink reassemble by absolute offset with the standard machinery. The
// explicit route pins the session to its disjoint path: depots forward
// along the carried loose source route (and the path options ride
// along untouched) instead of consulting their own tables. A failed
// range is reopened with the same set and index at a deeper offset —
// or by a different path worker stealing the range, in which case only
// the index differs.
func OpenPath(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, id, set wire.SessionID, index, count int, offset int64, extra ...wire.Option) (*Session, error) {
	if count < 1 || index < 0 || index >= count {
		return nil, fmt.Errorf("lsl: path %d of %d out of range", index, count)
	}
	if count > int(^uint16(0)) {
		return nil, fmt.Errorf("lsl: path count %d exceeds wire limit", count)
	}
	if offset < 0 {
		return nil, fmt.Errorf("lsl: negative path offset %d", offset)
	}
	opts := []wire.Option{
		wire.PathSetIDOption(set),
		wire.PathIndexOption(uint16(index), uint16(count)),
	}
	if offset > 0 {
		opts = append(opts, wire.ResumeOffsetOption(uint64(offset)))
	}
	return openWithID(d, id, src, dst, route, wire.TypeData, cloneOpts(opts, extra))
}

// TimeoutDialer bounds each Dial through d to the given timeout,
// giving per-hop connect timeouts to transports (like the emulated
// network) whose dials cannot otherwise be interrupted. On timeout the
// abandoned connection, if it eventually materializes, is closed.
func TimeoutDialer(d Dialer, timeout time.Duration) Dialer {
	if timeout <= 0 {
		return d
	}
	return DialerFunc(func(address string) (net.Conn, error) {
		type result struct {
			conn net.Conn
			err  error
		}
		ch := make(chan result, 1)
		go func() {
			conn, err := d.Dial(address)
			ch <- result{conn, err}
		}()
		select {
		case r := <-ch:
			return r.conn, r.err
		case <-time.After(timeout):
			go func() {
				if r := <-ch; r.conn != nil {
					r.conn.Close()
				}
			}()
			return nil, fmt.Errorf("lsl: dial %s: %w", address, os.ErrDeadlineExceeded)
		}
	})
}

// OpenGenerate asks the first hop (a depot) to synthesize size bytes of
// test data and forward them toward dst along the remaining route —
// the paper's "mechanism that requests a depot to generate some amount
// of arbitrary data". The returned session carries no payload from the
// initiator; it reads the depot's completion close.
func OpenGenerate(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, size uint64, extra ...wire.Option) (*Session, error) {
	gen := wire.GenerateOption(size)
	return open(d, src, dst, route, wire.TypeGenerate, cloneOpts([]wire.Option{gen}, extra))
}

// OpenChecked is Open followed by a short listen for a refusal: the
// depot's load-based session negotiation is optimistic (no news is good
// news), so after writing the header the initiator waits up to the
// given grace period for a TypeRefuse response before streaming.
// ErrRefused is returned when the depot declined; a quiet wire means
// the session is accepted.
func OpenChecked(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, grace time.Duration, extra ...wire.Option) (*Session, error) {
	sess, err := Open(d, src, dst, route, extra...)
	if err != nil {
		return nil, err
	}
	if grace <= 0 {
		return sess, nil
	}
	if err := sess.SetReadDeadline(time.Now().Add(grace)); err != nil {
		// Transport without deadlines: skip the check.
		return sess, nil //nolint:nilerr // optimistic acceptance
	}
	resp, rerr := wire.ReadHeader(sess)
	_ = sess.SetReadDeadline(time.Time{})
	if rerr == nil && resp.Type == wire.TypeRefuse {
		sess.Close()
		metrics().Counter(MetricRefusalsSeen).Inc()
		return nil, ErrRefused
	}
	// Timeout (or any read failure) means nobody refused us.
	return sess, nil
}

// OpenStore establishes an asynchronous session: the payload travels
// the route but the final depot (dst) holds it instead of delivering,
// keyed by the returned session's id. A receiver that learns the id
// retrieves it with Fetch — the paper's asynchronous mode.
func OpenStore(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, extra ...wire.Option) (*Session, error) {
	return open(d, src, dst, route, wire.TypeStore, cloneOpts(nil, extra))
}

// Fetch retrieves the payload stored under id at the given depot. It
// returns a session positioned at the start of the payload; the caller
// reads to EOF and closes. ErrRefused means the depot holds no such
// session.
func Fetch(d Dialer, self, depotAddr wire.Endpoint, id wire.SessionID) (*Session, error) {
	t0 := time.Now()
	conn, err := dialHop(d, depotAddr.String())
	if err != nil {
		return nil, fmt.Errorf("lsl: dial %s: %w", depotAddr, err)
	}
	req, err := start(conn, self, depotAddr, wire.TypeFetch, []wire.Option{wire.FetchIDOption(id)})
	if err != nil {
		return nil, err
	}
	observeSetup(t0)
	resp, err := wire.ReadHeader(req)
	if err != nil {
		req.Close()
		return nil, fmt.Errorf("lsl: fetch response: %w", err)
	}
	if resp.Type == wire.TypeRefuse {
		req.Close()
		metrics().Counter(MetricRefusalsSeen).Inc()
		return nil, ErrRefused
	}
	if resp.Type != wire.TypeData || resp.Session != id {
		req.Close()
		return nil, fmt.Errorf("lsl: unexpected fetch response type %d session %s", resp.Type, resp.Session)
	}
	return &Session{Conn: req.Conn, Header: resp}, nil
}

// OpenMulticast establishes a staging session whose payload is fanned
// out to every leaf of the tree. The tree's root must be the first hop
// to dial; dst conventionally names the initiator's primary sink and is
// informational for multicast sessions.
func OpenMulticast(d Dialer, src, dst wire.Endpoint, tree *wire.TreeNode, extra ...wire.Option) (*Session, error) {
	opt, err := wire.MulticastTreeOption(tree)
	if err != nil {
		return nil, fmt.Errorf("lsl: %w", err)
	}
	t0 := time.Now()
	conn, err := dialHop(d, tree.Addr.String())
	if err != nil {
		return nil, fmt.Errorf("lsl: dial %s: %w", tree.Addr, err)
	}
	sess, err := start(conn, src, dst, wire.TypeMulticast, cloneOpts([]wire.Option{opt}, extra))
	if err == nil {
		observeSetup(t0)
	}
	return sess, err
}

// dialHop dials through d, counting failures.
func dialHop(d Dialer, addr string) (net.Conn, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		metrics().Counter(MetricDialErrors).Inc()
	}
	return conn, err
}

// observeSetup records one successful session establishment.
func observeSetup(t0 time.Time) {
	r := metrics()
	r.Counter(MetricSessionsOpened).Inc()
	r.Histogram(MetricSetupSeconds, setupBuckets).Observe(time.Since(t0).Seconds())
}

func open(d Dialer, src, dst wire.Endpoint, route []wire.Endpoint, typ uint16, opts []wire.Option) (*Session, error) {
	id, err := wire.NewSessionID()
	if err != nil {
		return nil, err
	}
	return openWithID(d, id, src, dst, route, typ, opts)
}

// openWithID is open with a caller-chosen session identifier, so the
// stripes of one transfer can share an id.
func openWithID(d Dialer, id wire.SessionID, src, dst wire.Endpoint, route []wire.Endpoint, typ uint16, opts []wire.Option) (*Session, error) {
	if dst.IsZero() {
		return nil, errors.New("lsl: zero destination endpoint")
	}
	t0 := time.Now()
	hops := append(append([]wire.Endpoint(nil), route...), dst)
	first := hops[0]
	rest := hops[1:]
	conn, err := dialHop(d, first.String())
	if err != nil {
		return nil, fmt.Errorf("lsl: dial %s: %w", first, err)
	}
	if len(rest) > 0 {
		opts = append(opts, wire.SourceRouteOption(rest))
	}
	sess, err := startWithID(conn, id, src, dst, typ, opts)
	if err == nil {
		observeSetup(t0)
	}
	return sess, err
}

// Wrap opens a plain data session on an already-dialed transport
// connection with no source route: the header names only src and dst,
// leaving every forwarding decision to depot route tables (the paper's
// hop-by-hop mode).
func Wrap(conn net.Conn, src, dst wire.Endpoint, extra ...wire.Option) (*Session, error) {
	if dst.IsZero() {
		conn.Close()
		return nil, errors.New("lsl: zero destination endpoint")
	}
	return start(conn, src, dst, wire.TypeData, cloneOpts(nil, extra))
}

func start(conn net.Conn, src, dst wire.Endpoint, typ uint16, opts []wire.Option) (*Session, error) {
	id, err := wire.NewSessionID()
	if err != nil {
		conn.Close()
		return nil, err
	}
	return startWithID(conn, id, src, dst, typ, opts)
}

// startWithID writes the session header for an already-chosen id on an
// already-dialed transport.
func startWithID(conn net.Conn, id wire.SessionID, src, dst wire.Endpoint, typ uint16, opts []wire.Option) (*Session, error) {
	h := &wire.Header{
		Version: wire.Version1,
		Type:    typ,
		Session: id,
		Src:     src,
		Dst:     dst,
		Options: opts,
	}
	if err := wire.WriteHeader(conn, h); err != nil {
		conn.Close()
		return nil, err
	}
	return &Session{Conn: conn, Header: h}, nil
}

// Accept reads the session header from a just-accepted transport
// connection, returning the session positioned at the start of the
// payload. Sinks and depots both begin with this.
func Accept(conn net.Conn) (*Session, error) {
	h, err := wire.ReadHeader(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if h.Type == wire.TypeRefuse {
		conn.Close()
		metrics().Counter(MetricRefusalsSeen).Inc()
		return nil, ErrRefused
	}
	metrics().Counter(MetricSessionsAccepted).Inc()
	return &Session{Conn: conn, Header: h}, nil
}

// ErrRefused indicates the remote depot declined the session.
var ErrRefused = errors.New("lsl: session refused by depot")

// Refuse writes a refusal header mirroring the request and closes the
// connection — the "session negotiation that allows a potential depot
// to refuse a new connection based on host load" the paper proposes.
func Refuse(conn net.Conn, req *wire.Header) error {
	defer conn.Close()
	metrics().Counter(MetricRefusalsIssued).Inc()
	h := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeRefuse,
		Session: req.Session,
		Src:     req.Src,
		Dst:     req.Dst,
	}
	return wire.WriteHeader(conn, h)
}
