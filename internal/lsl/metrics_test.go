package lsl

import (
	"errors"
	"io"
	"net"
	"testing"

	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestSetupMetricsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	src := wire.MustEndpoint("10.9.0.1:7411")
	dst := wire.MustEndpoint("10.9.0.2:7411")

	// A successful open over an in-memory pipe.
	server, client := net.Pipe()
	go io.Copy(io.Discard, server) //nolint:errcheck // header drain
	sess, err := Open(DialerFunc(func(string) (net.Conn, error) { return client, nil }), src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	server.Close()

	// A failed dial.
	_, err = Open(DialerFunc(func(string) (net.Conn, error) {
		return nil, errors.New("network down")
	}), src, dst, nil)
	if err == nil {
		t.Fatal("open through a dead dialer succeeded")
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricSessionsOpened]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSessionsOpened, got)
	}
	if got := snap.Counters[MetricDialErrors]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricDialErrors, got)
	}
	if hs := snap.Histograms[MetricSetupSeconds]; hs.Count != 1 {
		t.Fatalf("%s count = %d, want 1", MetricSetupSeconds, hs.Count)
	}
}

func TestAcceptAndRefuseCounted(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	src := wire.MustEndpoint("10.9.0.1:7411")
	dst := wire.MustEndpoint("10.9.0.2:7411")

	// Accept counts the session it admits.
	client, server := net.Pipe()
	go func() {
		h := &wire.Header{Version: wire.Version1, Type: wire.TypeData, Src: src, Dst: dst}
		wire.WriteHeader(client, h) //nolint:errcheck // test writer
	}()
	sess, err := Accept(server)
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	client.Close()

	// Refuse counts the refusal it issues.
	c2, s2 := net.Pipe()
	go io.Copy(io.Discard, c2) //nolint:errcheck // refusal drain
	req := &wire.Header{Version: wire.Version1, Type: wire.TypeData, Src: src, Dst: dst}
	if err := Refuse(s2, req); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	snap := reg.Snapshot()
	if got := snap.Counters[MetricSessionsAccepted]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSessionsAccepted, got)
	}
	if got := snap.Counters[MetricRefusalsIssued]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricRefusalsIssued, got)
	}
}
