// Package simtime provides the simulated-time primitives shared by the
// discrete-event network simulator and the TCP models.
//
// Simulated time is a float64 count of seconds since the start of a
// simulation run. A float64 second keeps the arithmetic in the TCP fluid
// model simple (rates are bytes per second, RTTs are fractional seconds)
// while retaining sub-microsecond resolution over any realistic run length.
package simtime

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant in simulated time, in seconds from the simulation
// epoch. The zero value is the epoch itself.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Common durations, expressed in seconds.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Never is a sentinel instant later than any reachable simulation time.
const Never = Time(math.MaxFloat64)

// Milliseconds returns a Duration of ms milliseconds.
func Milliseconds(ms float64) Duration { return Duration(ms) * Millisecond }

// Seconds returns a Duration of s seconds.
func Seconds(s float64) Duration { return Duration(s) }

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Seconds()) }

// Std converts the simulated Duration to a time.Duration, saturating at
// the bounds of int64 nanoseconds.
func (d Duration) Std() time.Duration {
	ns := float64(d) * 1e9
	switch {
	case ns >= math.MaxInt64:
		return time.Duration(math.MaxInt64)
	case ns <= math.MinInt64:
		return time.Duration(math.MinInt64)
	}
	return time.Duration(ns)
}

// Seconds reports the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Add advances t by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds reports the instant as seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the instant with millisecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("t=%.6fs", float64(t))
}

// String formats the duration with adaptive units.
func (d Duration) String() string {
	s := float64(d)
	abs := math.Abs(s)
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.4fs", s)
	case abs >= 1e-3:
		return fmt.Sprintf("%.4fms", s*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.4fµs", s*1e6)
	case abs == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.4fns", s*1e9)
	}
}
