package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDurationConstants(t *testing.T) {
	if Second != 1 {
		t.Fatalf("Second = %v, want 1", Second)
	}
	if Millisecond*1000 != Second {
		t.Fatalf("1000ms = %v, want 1s", Millisecond*1000)
	}
	if Minute != 60*Second {
		t.Fatalf("Minute = %v", Minute)
	}
	if Hour != 60*Minute {
		t.Fatalf("Hour = %v", Hour)
	}
}

func TestMilliseconds(t *testing.T) {
	if got := Milliseconds(250); got != 0.25 {
		t.Fatalf("Milliseconds(250) = %v, want 0.25", got)
	}
	if got := Seconds(3.5); got != 3.5 {
		t.Fatalf("Seconds(3.5) = %v", got)
	}
}

func TestStdRoundTrip(t *testing.T) {
	cases := []time.Duration{
		0,
		time.Nanosecond,
		time.Millisecond,
		42 * time.Second,
		-3 * time.Second,
	}
	for _, d := range cases {
		got := FromStd(d).Std()
		if got != d {
			t.Errorf("FromStd(%v).Std() = %v", d, got)
		}
	}
}

func TestStdSaturates(t *testing.T) {
	huge := Duration(1e300)
	if got := huge.Std(); got != time.Duration(math.MaxInt64) {
		t.Fatalf("huge.Std() = %v, want MaxInt64", got)
	}
	if got := (-huge).Std(); got != time.Duration(math.MinInt64) {
		t.Fatalf("-huge.Std() = %v, want MinInt64", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(10)
	t1 := t0.Add(2.5)
	if t1 != 12.5 {
		t.Fatalf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != 2.5 {
		t.Fatalf("Sub: got %v", d)
	}
	if !t0.Before(t1) || t0.After(t1) {
		t.Fatalf("ordering broken: %v vs %v", t0, t1)
	}
	if t1.Seconds() != 12.5 {
		t.Fatalf("Seconds: got %v", t1.Seconds())
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(base float64, delta float64) bool {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(delta) || math.IsInf(delta, 0) {
			return true
		}
		// Keep magnitudes sane so float cancellation stays exact enough.
		base = math.Mod(base, 1e9)
		delta = math.Mod(delta, 1e6)
		t0 := Time(base)
		t1 := t0.Add(Duration(delta))
		return math.Abs(float64(t1.Sub(t0))-delta) <= 1e-6*math.Abs(delta)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNever(t *testing.T) {
	if !Time(1e18).Before(Never) {
		t.Fatal("Never should exceed any reachable time")
	}
	if Never.String() != "never" {
		t.Fatalf("Never.String() = %q", Never.String())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{Seconds(1.5), "1.5000s"},
		{Milliseconds(2), "2.0000ms"},
		{Microsecond * 3, "3.0000µs"},
		{0, "0s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1.25).String(); got != "t=1.250000s" {
		t.Fatalf("String() = %q", got)
	}
}
