// Package stats provides the small statistical toolkit used by the
// experiment harness: percentiles, quartile/box summaries, means, and
// speedup aggregation in the style of the paper's Figures 9-11.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive inputs yield NaN, as does an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
// It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// JainIndex returns Jain's fairness index of the shares xs:
// (Σx)² / (n·Σx²). It is 1 when every share is equal and falls toward
// 1/n as the allocation concentrates on one flow, so it summarizes how
// fairly a depot split its trunk regardless of the absolute rates.
// Empty or all-zero inputs yield NaN; negative shares are invalid and
// also yield NaN.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			return math.NaN()
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Box is a five-number summary plus the mean and count, matching the
// box-and-whisker presentation of the paper's Figure 11.
type Box struct {
	N      int
	Min    float64
	Q1     float64 // 25th percentile
	Median float64
	Q3     float64 // 75th percentile
	Max    float64
	Mean   float64
}

// Summarize computes the Box summary of xs.
func Summarize(xs []float64) (Box, error) {
	if len(xs) == 0 {
		return Box{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Box{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
	}, nil
}

// String renders the box summary on one line.
func (b Box) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// CrossoverPercentile returns the smallest integer percentile p in
// [0,100] such that Percentile(xs, p) > threshold, mirroring the paper's
// "percentile where the speedup becomes greater than 1" table. It
// returns 100, false when no percentile exceeds the threshold and 0,
// true when even the minimum does.
func CrossoverPercentile(xs []float64, threshold float64) (int, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if sorted[len(sorted)-1] <= threshold {
		return 100, false
	}
	// Binary search over integer percentiles: percentileSorted is
	// monotone non-decreasing in p.
	lo, hi := 0, 100
	for lo < hi {
		mid := (lo + hi) / 2
		if percentileSorted(sorted, float64(mid)) > threshold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}
