package stats

import (
	"fmt"
	"sort"
)

// CaseKey identifies one (source, destination, size) test case in the
// paper's Section 4.2 aggregate evaluation.
type CaseKey struct {
	Source string
	Dest   string
	Size   int64 // bytes
}

// caseAccum accumulates direct and scheduled bandwidth observations for
// one case.
type caseAccum struct {
	directSum    float64
	directN      int
	scheduledSum float64
	scheduledN   int
}

// SpeedupAggregator groups bandwidth measurements by case and computes
// the paper's speedup metric:
//
//	speedup(case) = mean scheduled bandwidth / mean direct bandwidth
//
// Only cases with at least one measurement of each kind contribute.
type SpeedupAggregator struct {
	cases map[CaseKey]*caseAccum
}

// NewSpeedupAggregator returns an empty aggregator.
func NewSpeedupAggregator() *SpeedupAggregator {
	return &SpeedupAggregator{cases: make(map[CaseKey]*caseAccum)}
}

// AddDirect records a direct-transfer bandwidth observation (bytes/sec).
func (a *SpeedupAggregator) AddDirect(k CaseKey, bw float64) {
	c := a.accum(k)
	c.directSum += bw
	c.directN++
}

// AddScheduled records a scheduled (LSL) bandwidth observation.
func (a *SpeedupAggregator) AddScheduled(k CaseKey, bw float64) {
	c := a.accum(k)
	c.scheduledSum += bw
	c.scheduledN++
}

func (a *SpeedupAggregator) accum(k CaseKey) *caseAccum {
	c := a.cases[k]
	if c == nil {
		c = &caseAccum{}
		a.cases[k] = c
	}
	return c
}

// Measurements reports the total number of recorded observations.
func (a *SpeedupAggregator) Measurements() int {
	var n int
	for _, c := range a.cases {
		n += c.directN + c.scheduledN
	}
	return n
}

// Cases reports the number of distinct case keys seen.
func (a *SpeedupAggregator) Cases() int { return len(a.cases) }

// Speedups returns the per-case speedups for every complete case
// (cases missing either kind of measurement are skipped), keyed by size.
func (a *SpeedupAggregator) Speedups() map[int64][]float64 {
	out := make(map[int64][]float64)
	for k, c := range a.cases {
		if c.directN == 0 || c.scheduledN == 0 {
			continue
		}
		direct := c.directSum / float64(c.directN)
		sched := c.scheduledSum / float64(c.scheduledN)
		if direct <= 0 {
			continue
		}
		out[k.Size] = append(out[k.Size], sched/direct)
	}
	return out
}

// SizeRow is the per-transfer-size summary row printed by the Figure
// 9/10 harnesses.
type SizeRow struct {
	Size    int64
	Cases   int
	Mean    float64
	Box     Box
	PctOver int  // percentile at which speedup exceeds 1 (paper's table)
	PctOK   bool // false when no percentile exceeds 1
}

// BySize computes one summary row per transfer size, sorted by size.
func (a *SpeedupAggregator) BySize() []SizeRow {
	groups := a.Speedups()
	sizes := make([]int64, 0, len(groups))
	for s := range groups {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	rows := make([]SizeRow, 0, len(sizes))
	for _, s := range sizes {
		xs := groups[s]
		box, err := Summarize(xs)
		if err != nil {
			continue
		}
		pct, ok := CrossoverPercentile(xs, 1.0)
		rows = append(rows, SizeRow{
			Size:    s,
			Cases:   len(xs),
			Mean:    Mean(xs),
			Box:     box,
			PctOver: pct,
			PctOK:   ok,
		})
	}
	return rows
}

// FormatSize renders a byte count as the paper's "1M".."128M" labels
// when it is a whole number of MiB, otherwise as a byte count.
func FormatSize(size int64) string {
	const mb = 1 << 20
	if size%mb == 0 {
		return fmt.Sprintf("%dM", size/mb)
	}
	return fmt.Sprintf("%dB", size)
}
