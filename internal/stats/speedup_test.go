package stats

import (
	"math/rand"
	"testing"
)

func TestSpeedupAggregatorBasics(t *testing.T) {
	agg := NewSpeedupAggregator()
	key := CaseKey{Source: "a", Dest: "b", Size: 1 << 20}
	agg.AddDirect(key, 100)
	agg.AddDirect(key, 200)
	agg.AddScheduled(key, 300)

	if agg.Measurements() != 3 {
		t.Fatalf("Measurements = %d", agg.Measurements())
	}
	if agg.Cases() != 1 {
		t.Fatalf("Cases = %d", agg.Cases())
	}
	groups := agg.Speedups()
	xs := groups[1<<20]
	if len(xs) != 1 {
		t.Fatalf("speedups = %v", xs)
	}
	// mean scheduled (300) / mean direct (150) = 2.
	if !almost(xs[0], 2) {
		t.Fatalf("speedup = %v, want 2", xs[0])
	}
}

func TestSpeedupSkipsIncompleteCases(t *testing.T) {
	agg := NewSpeedupAggregator()
	agg.AddDirect(CaseKey{Source: "a", Dest: "b", Size: 1}, 5)
	agg.AddScheduled(CaseKey{Source: "c", Dest: "d", Size: 1}, 5)
	if got := agg.Speedups(); len(got[1]) != 0 {
		t.Fatalf("incomplete cases leaked: %v", got)
	}
}

func TestSpeedupZeroDirectSkipped(t *testing.T) {
	agg := NewSpeedupAggregator()
	k := CaseKey{Source: "a", Dest: "b", Size: 1}
	agg.AddDirect(k, 0)
	agg.AddScheduled(k, 10)
	if got := agg.Speedups(); len(got[1]) != 0 {
		t.Fatalf("zero-direct case leaked: %v", got)
	}
}

func TestBySizeSorted(t *testing.T) {
	agg := NewSpeedupAggregator()
	for _, size := range []int64{4 << 20, 1 << 20, 2 << 20} {
		k := CaseKey{Source: "a", Dest: "b", Size: size}
		agg.AddDirect(k, 100)
		agg.AddScheduled(k, 150)
	}
	rows := agg.BySize()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Size >= rows[i].Size {
			t.Fatalf("rows not sorted by size: %v then %v", rows[i-1].Size, rows[i].Size)
		}
	}
	for _, r := range rows {
		if !almost(r.Mean, 1.5) {
			t.Fatalf("row mean = %v, want 1.5", r.Mean)
		}
		if r.Cases != 1 {
			t.Fatalf("row cases = %d", r.Cases)
		}
	}
}

func TestBySizeCrossover(t *testing.T) {
	agg := NewSpeedupAggregator()
	rng := rand.New(rand.NewSource(3))
	// 40% winners: crossover percentile should land near 60.
	for i := 0; i < 200; i++ {
		k := CaseKey{Source: "s", Dest: string(rune('a' + i)), Size: 8 << 20}
		agg.AddDirect(k, 100)
		if i < 120 {
			agg.AddScheduled(k, 50+rng.Float64()*40) // speedup < 1
		} else {
			agg.AddScheduled(k, 110+rng.Float64()*100) // speedup > 1
		}
	}
	rows := agg.BySize()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if !r.PctOK {
		t.Fatal("expected crossover")
	}
	if r.PctOver < 55 || r.PctOver > 65 {
		t.Fatalf("crossover percentile = %d, want near 60", r.PctOver)
	}
}

func TestFormatSize(t *testing.T) {
	if got := FormatSize(1 << 20); got != "1M" {
		t.Fatalf("FormatSize(1M) = %q", got)
	}
	if got := FormatSize(128 << 20); got != "128M" {
		t.Fatalf("FormatSize(128M) = %q", got)
	}
	if got := FormatSize(1000); got != "1000B" {
		t.Fatalf("FormatSize(1000) = %q", got)
	}
}
