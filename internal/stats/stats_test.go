package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Fatalf("GeoMean = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with non-positive input should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("GeoMean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7.0) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of one sample should be NaN")
	}
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{100, 40},
		{50, 25},
		{25, 17.5},
		{-5, 10},
		{150, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); !almost(got, 3) {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5) {
		t.Fatalf("even median = %v", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	box, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if box.N != 5 || box.Min != 1 || box.Max != 5 {
		t.Fatalf("box = %+v", box)
	}
	if !almost(box.Median, 3) || !almost(box.Q1, 2) || !almost(box.Q3, 4) {
		t.Fatalf("quartiles: %+v", box)
	}
	if !almost(box.Mean, 3) {
		t.Fatalf("mean: %v", box.Mean)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("empty summary error = %v", err)
	}
}

func TestBoxString(t *testing.T) {
	box, _ := Summarize([]float64{1, 2, 3})
	if box.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBoxOrderingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		box, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !(box.Min <= box.Q1 && box.Q1 <= box.Median &&
			box.Median <= box.Q3 && box.Q3 <= box.Max) {
			t.Fatalf("ordering violated: %+v", box)
		}
		if box.Mean < box.Min || box.Mean > box.Max {
			t.Fatalf("mean outside range: %+v", box)
		}
	}
}

func TestCrossoverPercentile(t *testing.T) {
	// Half below 1, half above: crossover near the 50th percentile.
	xs := []float64{0.5, 0.6, 0.7, 0.8, 1.2, 1.3, 1.4, 1.5}
	p, ok := CrossoverPercentile(xs, 1.0)
	if !ok {
		t.Fatal("expected a crossover")
	}
	if p < 40 || p > 60 {
		t.Fatalf("crossover percentile = %d, want near 50", p)
	}
}

func TestCrossoverPercentileEdges(t *testing.T) {
	if p, ok := CrossoverPercentile([]float64{2, 3}, 1); !ok || p != 0 {
		t.Fatalf("all-above: p=%d ok=%v", p, ok)
	}
	if p, ok := CrossoverPercentile([]float64{0.1, 0.2}, 1); ok || p != 100 {
		t.Fatalf("all-below: p=%d ok=%v", p, ok)
	}
	if _, ok := CrossoverPercentile(nil, 1); ok {
		t.Fatal("empty should report no crossover")
	}
}

func TestCrossoverPercentileConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.Float64() * 2
		}
		p, ok := CrossoverPercentile(xs, 1.0)
		if !ok {
			continue
		}
		if Percentile(xs, float64(p)) <= 1.0 {
			t.Fatalf("P%d = %v, expected > 1", p, Percentile(xs, float64(p)))
		}
		if p > 0 && Percentile(xs, float64(p-1)) > 1.0 {
			t.Fatalf("P%d = %v already > 1, p not minimal", p-1, Percentile(xs, float64(p-1)))
		}
	}
}

func TestPercentileAgainstSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// With 101 points, integer percentiles land exactly on ranks.
	for p := 0; p <= 100; p++ {
		if got := Percentile(xs, float64(p)); !almost(got, sorted[p]) {
			t.Fatalf("P%d = %v, want %v", p, got, sorted[p])
		}
	}
}

// TestJainIndex checks the fairness index at its anchor points: equal
// shares score 1, a single hog among n flows scores 1/n, and weighted
// shares land in between.
func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares = %v, want 1", got)
	}
	if got := JainIndex([]float64{12, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog of 4 = %v, want 0.25", got)
	}
	// 2:1 split of two flows: (3)²/(2·5) = 0.9.
	if got := JainIndex([]float64{2, 1}); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("2:1 split = %v, want 0.9", got)
	}
	for _, bad := range [][]float64{nil, {}, {0, 0}, {1, -1}} {
		if got := JainIndex(bad); !math.IsNaN(got) {
			t.Fatalf("JainIndex(%v) = %v, want NaN", bad, got)
		}
	}
}
