// Package tcpmodel provides closed-form models of TCP Reno throughput.
//
// The paper's "logistical effect" rests on two RTT dependences of TCP:
//
//  1. Slow start is ACK-clocked, so the ramp to a usable window costs a
//     number of round trips that scales with log2(window/initial window).
//     A shorter-RTT connection pays less wall-clock time for the same
//     number of rounds.
//  2. The loss-limited steady state follows the Mathis relation
//     BW ≈ (MSS/RTT) · sqrt(3/2) / sqrt(p), again inversely
//     proportional to RTT.
//
// These analytic forms are used to cross-check the event-driven
// simulation in internal/tcpsim and to seed scheduler cost estimates.
package tcpmodel

import (
	"fmt"
	"math"

	"github.com/netlogistics/lsl/internal/simtime"
)

// Params describes one TCP connection for the analytic models.
type Params struct {
	RTT         simtime.Duration // round-trip time
	Capacity    float64          // path bottleneck rate, bytes/sec
	LossRate    float64          // per-packet loss probability
	MSS         int64            // maximum segment size, bytes
	WindowLimit int64            // min(send buffer, receive buffer), bytes
	InitCwnd    int64            // initial congestion window, bytes
}

// Default protocol constants, matching the Linux 2.4 systems of the
// paper's testbed.
const (
	DefaultMSS      int64 = 1448 // 1500 MTU - IP/TCP headers w/ timestamps
	DefaultInitCwnd int64 = 2 * 1448
	DefaultWindow   int64 = 8 << 20 // the paper's 8 MB socket buffers
)

// Normalize fills zero fields with defaults and clamps nonsense values.
func (p Params) Normalize() Params {
	if p.MSS <= 0 {
		p.MSS = DefaultMSS
	}
	if p.InitCwnd <= 0 {
		p.InitCwnd = 2 * p.MSS
	}
	if p.WindowLimit <= 0 {
		p.WindowLimit = DefaultWindow
	}
	if p.RTT <= 0 {
		p.RTT = simtime.Milliseconds(1)
	}
	if p.Capacity <= 0 {
		p.Capacity = math.MaxFloat64
	}
	if p.LossRate < 0 {
		p.LossRate = 0
	}
	if p.LossRate > 1 {
		p.LossRate = 1
	}
	return p
}

// BDP returns the bandwidth-delay product of the path in bytes.
func (p Params) BDP() float64 {
	p = p.Normalize()
	if p.Capacity == math.MaxFloat64 {
		return math.MaxFloat64
	}
	return p.Capacity * p.RTT.Seconds()
}

// MathisBW returns the loss-limited steady-state throughput in
// bytes/sec: (MSS/RTT)·sqrt(3/2)/sqrt(p). It returns +Inf for a
// loss-free path.
func MathisBW(p Params) float64 {
	p = p.Normalize()
	if p.LossRate == 0 {
		return math.Inf(1)
	}
	return float64(p.MSS) / p.RTT.Seconds() * math.Sqrt(1.5/p.LossRate)
}

// WindowBW returns the flow-control-limited throughput in bytes/sec:
// WindowLimit/RTT.
func WindowBW(p Params) float64 {
	p = p.Normalize()
	return float64(p.WindowLimit) / p.RTT.Seconds()
}

// SteadyBW returns the steady-state throughput estimate: the minimum of
// the capacity, window, and Mathis limits.
func SteadyBW(p Params) float64 {
	p = p.Normalize()
	bw := p.Capacity
	if w := WindowBW(p); w < bw {
		bw = w
	}
	if m := MathisBW(p); m < bw {
		bw = m
	}
	return bw
}

// EquilibriumWindow returns the window, in bytes, that the steady-state
// throughput corresponds to (SteadyBW·RTT), clamped to at least one MSS.
func EquilibriumWindow(p Params) int64 {
	p = p.Normalize()
	w := int64(SteadyBW(p) * p.RTT.Seconds())
	if w < p.MSS {
		w = p.MSS
	}
	return w
}

// SlowStartRounds returns the number of round trips slow start needs to
// move size bytes, assuming the congestion window doubles each round
// starting from InitCwnd and is capped at cap bytes (after which the
// remainder is sent at one cap per round). It also returns the bytes
// carried during the doubling phase.
func SlowStartRounds(size int64, initCwnd, capWindow int64) (rounds int, rampBytes int64) {
	if size <= 0 {
		return 0, 0
	}
	if initCwnd <= 0 {
		initCwnd = DefaultInitCwnd
	}
	if capWindow < initCwnd {
		capWindow = initCwnd
	}
	w := initCwnd
	var sent int64
	for sent < size {
		rounds++
		w2 := w
		if remaining := size - sent; w2 > remaining {
			w2 = remaining
		}
		sent += w2
		if w < capWindow {
			rampBytes = sent
			w *= 2
			if w > capWindow {
				w = capWindow
			}
		} else {
			// Post-ramp rounds move capWindow bytes each; short-circuit.
			remaining := size - sent
			extra := remaining / capWindow
			rounds += int(extra)
			sent += extra * capWindow
			if sent < size {
				rounds++
				sent = size
			}
			return rounds, rampBytes
		}
	}
	return rounds, rampBytes
}

// TransferTime estimates the wall-clock time to move size bytes over a
// fresh connection: one RTT of connection establishment plus the
// slow-start/steady-state phases. The estimate ignores loss-recovery
// stalls and so is a lower bound for lossy paths below the Mathis rate.
func TransferTime(p Params, size int64) simtime.Duration {
	p = p.Normalize()
	if size <= 0 {
		return 0
	}
	capWindow := EquilibriumWindow(p)
	if w := p.WindowLimit; capWindow > w {
		capWindow = w
	}
	rounds, _ := SlowStartRounds(size, p.InitCwnd, capWindow)
	t := p.RTT // handshake
	t += simtime.Duration(float64(rounds)) * p.RTT
	// Serialization floor: the bytes cannot move faster than capacity.
	if min := simtime.Seconds(float64(size) / p.Capacity); t < min+p.RTT {
		t = min + p.RTT
	}
	return t
}

// ObservedBW converts a transfer of size bytes over elapsed time to the
// paper's observed-bandwidth metric in bytes/sec.
func ObservedBW(size int64, elapsed simtime.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(size) / elapsed.Seconds()
}

// String renders the parameter set compactly for logs and errors.
func (p Params) String() string {
	return fmt.Sprintf("tcp{rtt=%s cap=%.3gMB/s loss=%.2g mss=%d win=%d}",
		p.RTT, p.Capacity/1e6, p.LossRate, p.MSS, p.WindowLimit)
}
