package tcpmodel

import (
	"math"

	"github.com/netlogistics/lsl/internal/simtime"
)

// PadhyeBW returns the steady-state TCP Reno throughput of the PFTK
// model (Padhye, Firoiu, Towsley, Kurose, SIGCOMM '98), which extends
// the Mathis relation with retransmission-timeout effects:
//
//	B(p) = MSS / ( RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1+32p²) )
//
// where b is the number of segments acknowledged per ACK (2 with
// delayed ACKs) and T0 the base retransmission timeout. At small loss
// it converges to the Mathis bound; at heavy loss the timeout term
// dominates and throughput collapses much faster — which is what the
// round-based simulator exhibits and the Mathis bound misses.
//
// rto <= 0 selects the conventional 4·RTT floor of 200 ms. The result
// is additionally capped at the window and capacity limits, like
// SteadyBW. A loss-free path returns the window/capacity limit.
func PadhyeBW(p Params, rto simtime.Duration) float64 {
	p = p.Normalize()
	capped := p.Capacity
	if w := WindowBW(p); w < capped {
		capped = w
	}
	if p.LossRate == 0 {
		return capped
	}
	if rto <= 0 {
		rto = 4 * p.RTT
		if min := simtime.Milliseconds(200); rto < min {
			rto = min
		}
	}
	const b = 2.0 // delayed ACKs
	loss := p.LossRate
	rtt := p.RTT.Seconds()
	t0 := rto.Seconds()

	sqrtTerm := rtt * math.Sqrt(2*b*loss/3)
	toProb := math.Min(1, 3*math.Sqrt(3*b*loss/8))
	toTerm := t0 * toProb * loss * (1 + 32*loss*loss)
	bw := float64(p.MSS) / (sqrtTerm + toTerm)
	if bw > capped {
		return capped
	}
	return bw
}

// SteadyBWPadhye is SteadyBW with the PFTK model in place of Mathis.
func SteadyBWPadhye(p Params) float64 { return PadhyeBW(p, 0) }
