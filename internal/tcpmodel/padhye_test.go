package tcpmodel

import (
	"math"
	"testing"

	"github.com/netlogistics/lsl/internal/simtime"
)

func padhyeParams(loss float64) Params {
	return Params{
		RTT:         simtime.Milliseconds(80),
		Capacity:    1e9,
		LossRate:    loss,
		WindowLimit: 64 << 20,
	}
}

func TestPadhyeBelowMathis(t *testing.T) {
	// The timeout term only subtracts throughput: Padhye ≤ Mathis
	// everywhere (up to the delayed-ACK factor — compare against the
	// b=2 Mathis form MSS/RTT·sqrt(3/(2·b·p))).
	for _, loss := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1} {
		p := padhyeParams(loss)
		mathisB2 := float64(p.Normalize().MSS) / p.Normalize().RTT.Seconds() *
			math.Sqrt(3/(2*2*loss))
		if got := PadhyeBW(p, 0); got > mathisB2*1.001 {
			t.Fatalf("loss %v: Padhye %v exceeds Mathis(b=2) %v", loss, got, mathisB2)
		}
	}
}

func TestPadhyeConvergesToMathisAtLowLoss(t *testing.T) {
	p := padhyeParams(1e-7)
	padhye := PadhyeBW(p, 0)
	mathisB2 := float64(p.Normalize().MSS) / p.Normalize().RTT.Seconds() *
		math.Sqrt(3/(2*2*1e-7))
	ratio := padhye / mathisB2
	if ratio < 0.95 || ratio > 1.0001 {
		t.Fatalf("low-loss ratio = %v, want ≈1", ratio)
	}
}

func TestPadhyeTimeoutsDominateAtHighLoss(t *testing.T) {
	// At 10% loss the timeout term must cost at least half the Mathis
	// prediction.
	p := padhyeParams(0.1)
	padhye := PadhyeBW(p, 0)
	mathisB2 := float64(p.Normalize().MSS) / p.Normalize().RTT.Seconds() *
		math.Sqrt(3/(2*2*0.1))
	if padhye > mathisB2/2 {
		t.Fatalf("high-loss Padhye %v vs Mathis %v: timeouts should dominate", padhye, mathisB2)
	}
}

func TestPadhyeMonotoneInLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, loss := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5} {
		got := PadhyeBW(padhyeParams(loss), 0)
		if got >= prev {
			t.Fatalf("throughput not decreasing in loss at %v: %v >= %v", loss, got, prev)
		}
		prev = got
	}
}

func TestPadhyeLossFree(t *testing.T) {
	p := Params{RTT: simtime.Milliseconds(50), Capacity: 5e6, WindowLimit: 64 << 20}
	if got := PadhyeBW(p, 0); got != 5e6 {
		t.Fatalf("loss-free Padhye = %v, want capacity", got)
	}
}

func TestPadhyeRTOSensitivity(t *testing.T) {
	p := padhyeParams(0.02)
	fast := PadhyeBW(p, simtime.Milliseconds(200))
	slow := PadhyeBW(p, simtime.Seconds(3))
	if slow >= fast {
		t.Fatalf("longer RTO should hurt: fast=%v slow=%v", fast, slow)
	}
}

func TestPadhyeRespectsWindowCap(t *testing.T) {
	p := Params{
		RTT:         simtime.Milliseconds(100),
		Capacity:    1e9,
		LossRate:    1e-9,
		WindowLimit: 64 << 10,
	}
	want := WindowBW(p)
	if got := PadhyeBW(p, 0); math.Abs(got-want) > 1 {
		t.Fatalf("window cap ignored: %v vs %v", got, want)
	}
}

func TestSteadyBWPadhye(t *testing.T) {
	p := padhyeParams(1e-3)
	if SteadyBWPadhye(p) != PadhyeBW(p, 0) {
		t.Fatal("SteadyBWPadhye should match PadhyeBW with default RTO")
	}
}
