package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netlogistics/lsl/internal/simtime"
)

func TestNormalizeDefaults(t *testing.T) {
	p := Params{}.Normalize()
	if p.MSS != DefaultMSS {
		t.Fatalf("MSS = %d", p.MSS)
	}
	if p.InitCwnd != 2*DefaultMSS {
		t.Fatalf("InitCwnd = %d", p.InitCwnd)
	}
	if p.WindowLimit != DefaultWindow {
		t.Fatalf("WindowLimit = %d", p.WindowLimit)
	}
	if p.RTT <= 0 || p.Capacity <= 0 {
		t.Fatalf("normalize left invalid fields: %+v", p)
	}
}

func TestNormalizeClampsLoss(t *testing.T) {
	if p := (Params{LossRate: -1}).Normalize(); p.LossRate != 0 {
		t.Fatalf("negative loss -> %v", p.LossRate)
	}
	if p := (Params{LossRate: 2}).Normalize(); p.LossRate != 1 {
		t.Fatalf("loss > 1 -> %v", p.LossRate)
	}
}

func TestMathisInverseRTT(t *testing.T) {
	base := Params{RTT: simtime.Milliseconds(40), LossRate: 1e-5}
	double := base
	double.RTT = simtime.Milliseconds(80)
	b1, b2 := MathisBW(base), MathisBW(double)
	if math.Abs(b1/b2-2) > 1e-9 {
		t.Fatalf("Mathis should halve when RTT doubles: %v vs %v", b1, b2)
	}
}

func TestMathisInverseSqrtLoss(t *testing.T) {
	base := Params{RTT: simtime.Milliseconds(40), LossRate: 1e-5}
	worse := base
	worse.LossRate = 4e-5
	b1, b2 := MathisBW(base), MathisBW(worse)
	if math.Abs(b1/b2-2) > 1e-9 {
		t.Fatalf("Mathis should halve when loss quadruples: %v vs %v", b1, b2)
	}
}

func TestMathisLossFree(t *testing.T) {
	if !math.IsInf(MathisBW(Params{RTT: simtime.Milliseconds(10)}), 1) {
		t.Fatal("loss-free Mathis should be +Inf")
	}
}

func TestWindowBW(t *testing.T) {
	p := Params{RTT: simtime.Milliseconds(100), WindowLimit: 64 << 10}
	want := float64(64<<10) / 0.1
	if got := WindowBW(p); math.Abs(got-want) > 1 {
		t.Fatalf("WindowBW = %v, want %v", got, want)
	}
}

func TestSteadyBWIsMinOfLimits(t *testing.T) {
	p := Params{
		RTT:         simtime.Milliseconds(100),
		Capacity:    1e6,
		LossRate:    1e-9, // Mathis huge
		WindowLimit: 1 << 30,
	}
	if got := SteadyBW(p); got != 1e6 {
		t.Fatalf("capacity-limited: %v", got)
	}
	p.WindowLimit = 50 << 10 // window bw = 512 KB/s < capacity
	if got := SteadyBW(p); math.Abs(got-float64(50<<10)/0.1) > 1 {
		t.Fatalf("window-limited: %v", got)
	}
	p.WindowLimit = 1 << 30
	p.LossRate = 1e-2 // Mathis small
	if got, want := SteadyBW(p), MathisBW(p); got != want {
		t.Fatalf("loss-limited: %v vs %v", got, want)
	}
}

func TestSteadyBWNeverExceedsLimits(t *testing.T) {
	f := func(rttMS, capMBps, loss float64, window int64) bool {
		p := Params{
			RTT:         simtime.Milliseconds(1 + math.Abs(math.Mod(rttMS, 500))),
			Capacity:    1e5 + math.Abs(math.Mod(capMBps, 100))*1e6,
			LossRate:    math.Abs(math.Mod(loss, 0.01)),
			WindowLimit: 1024 + window%(64<<20),
		}
		if p.WindowLimit < 1024 {
			p.WindowLimit = 1024
		}
		bw := SteadyBW(p)
		if bw > p.Normalize().Capacity+1e-6 {
			return false
		}
		if bw > WindowBW(p)+1e-6 {
			return false
		}
		m := MathisBW(p)
		return math.IsInf(m, 1) || bw <= m+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEquilibriumWindowFloor(t *testing.T) {
	p := Params{RTT: simtime.Milliseconds(1), LossRate: 0.5, MSS: 1448}
	if got := EquilibriumWindow(p); got < 1448 {
		t.Fatalf("window below one MSS: %d", got)
	}
}

func TestSlowStartRoundsDoubling(t *testing.T) {
	// 2 MSS initial, cap far away: rounds carry 2,4,8,... MSS.
	mss := int64(1000)
	rounds, _ := SlowStartRounds(14*mss, 2*mss, 1<<30)
	// 2+4+8 = 14 MSS in 3 rounds.
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

func TestSlowStartRoundsCapped(t *testing.T) {
	mss := int64(1000)
	// Cap at 4 MSS: rounds carry 2,4,4,4,... so 30 MSS needs 1+7=8 rounds.
	rounds, _ := SlowStartRounds(30*mss, 2*mss, 4*mss)
	if rounds != 8 {
		t.Fatalf("rounds = %d, want 8", rounds)
	}
}

func TestSlowStartRoundsEdge(t *testing.T) {
	if r, _ := SlowStartRounds(0, 1000, 1000); r != 0 {
		t.Fatalf("zero size rounds = %d", r)
	}
	if r, _ := SlowStartRounds(1, 1000, 1000); r != 1 {
		t.Fatalf("one byte rounds = %d", r)
	}
}

func TestSlowStartMonotoneInSize(t *testing.T) {
	prev := 0
	for size := int64(1000); size <= 64_000_000; size *= 4 {
		r, _ := SlowStartRounds(size, 2896, 8<<20)
		if r < prev {
			t.Fatalf("rounds decreased: size=%d rounds=%d prev=%d", size, r, prev)
		}
		prev = r
	}
}

func TestTransferTimeShorterRTTFaster(t *testing.T) {
	long := Params{RTT: simtime.Milliseconds(100), Capacity: 1e9, WindowLimit: 64 << 10}
	short := long
	short.RTT = simtime.Milliseconds(20)
	size := int64(16 << 20)
	if TransferTime(short, size) >= TransferTime(long, size) {
		t.Fatal("shorter RTT should transfer faster")
	}
}

func TestTransferTimeSerializationFloor(t *testing.T) {
	p := Params{RTT: simtime.Milliseconds(1), Capacity: 1e6, WindowLimit: 1 << 30}
	size := int64(10 << 20)
	min := simtime.Seconds(float64(size) / 1e6)
	if got := TransferTime(p, size); got < min {
		t.Fatalf("TransferTime %v below serialization floor %v", got, min)
	}
}

func TestObservedBW(t *testing.T) {
	if got := ObservedBW(1<<20, simtime.Seconds(2)); got != float64(1<<20)/2 {
		t.Fatalf("ObservedBW = %v", got)
	}
	if got := ObservedBW(1, 0); got != 0 {
		t.Fatalf("zero elapsed should give 0, got %v", got)
	}
}

func TestBDP(t *testing.T) {
	p := Params{RTT: simtime.Milliseconds(100), Capacity: 1e6}
	if got := p.BDP(); math.Abs(got-1e5) > 1 {
		t.Fatalf("BDP = %v, want 1e5", got)
	}
}

func TestParamsString(t *testing.T) {
	if s := (Params{}).Normalize().String(); s == "" {
		t.Fatal("empty String()")
	}
}
