package cache

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// object builds a deterministic test object and its digest.
func object(t *testing.T, seed int64, size int) ([]byte, wire.ContentDigest) {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	return data, wire.ContentDigest{Size: int64(size), Sum: sha256.Sum256(data)}
}

func readRange(t *testing.T, c *Cache, key wire.ContentDigest, r wire.ByteRange) []byte {
	t.Helper()
	rc, err := c.Open(key, r)
	if err != nil {
		t.Fatalf("Open(%+v): %v", r, err)
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read %+v: %v", r, err)
	}
	return got
}

func TestPutOpenRoundTrip(t *testing.T) {
	c, err := New(Config{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data, key := object(t, 1, 200_000)
	if err := c.Put(key, 0, data); err != nil {
		t.Fatal(err)
	}
	if got := readRange(t, c, key, wire.ByteRange{Off: 0, Len: key.Size}); !bytes.Equal(got, data) {
		t.Fatal("full read mismatch")
	}
	mid := wire.ByteRange{Off: 70_000, Len: 80_000}
	if got := readRange(t, c, key, mid); !bytes.Equal(got, data[70_000:150_000]) {
		t.Fatal("mid-range read mismatch")
	}
	if ks := c.Keys(); len(ks) != 1 || ks[0] != key {
		t.Fatalf("Keys() = %+v, want the completed object", ks)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 0 || st.Complete != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangesAccreteAndCoalesce(t *testing.T) {
	c, err := New(Config{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data, key := object(t, 2, 100_000)
	// Out-of-order, overlapping population: [40k,70k), [0,50k), [70k,100k).
	for _, r := range []wire.ByteRange{{Off: 40_000, Len: 30_000}, {Off: 0, Len: 50_000}, {Off: 70_000, Len: 30_000}} {
		if err := c.Put(key, r.Off, data[r.Off:r.End()]); err != nil {
			t.Fatal(err)
		}
	}
	rs := c.Ranges(key)
	if len(rs) != 1 || rs[0] != (wire.ByteRange{Off: 0, Len: 100_000}) {
		t.Fatalf("Ranges() = %+v, want one full range", rs)
	}
	if !c.Holds(key, wire.ByteRange{Off: 10, Len: 99_000}) {
		t.Fatal("Holds() = false for covered range")
	}
	if got := readRange(t, c, key, wire.ByteRange{Off: 0, Len: key.Size}); !bytes.Equal(got, data) {
		t.Fatal("stitched read mismatch")
	}
}

func TestMissesAndPartialCoverage(t *testing.T) {
	c, err := New(Config{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data, key := object(t, 3, 100_000)
	if err := c.Put(key, 0, data[:40_000]); err != nil {
		t.Fatal(err)
	}
	if c.Holds(key, wire.ByteRange{Off: 0, Len: 50_000}) {
		t.Fatal("Holds() = true across a gap")
	}
	if _, err := c.Open(key, wire.ByteRange{Off: 30_000, Len: 20_000}); !errors.Is(err, ErrMiss) {
		t.Fatalf("Open across gap: %v, want ErrMiss", err)
	}
	if ks := c.Keys(); len(ks) != 0 {
		t.Fatalf("partial object advertised in inventory: %+v", ks)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCompletionVerifiesWholeObject(t *testing.T) {
	c, err := New(Config{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data, key := object(t, 4, 50_000)
	// Lie about the bytes: same digest key, wrong content.
	bogus := append([]byte(nil), data...)
	bogus[123] ^= 0xFF
	if err := c.Put(key, 0, bogus); err != nil {
		t.Fatal(err)
	}
	if ks := c.Keys(); len(ks) != 0 {
		t.Fatal("object whose bytes do not hash to its key survived completion")
	}
	if rs := c.Ranges(key); rs != nil {
		t.Fatalf("mismatched entry still advertises %+v", rs)
	}
}

func TestTamperSurfacesAsChecksumMidRead(t *testing.T) {
	c, err := New(Config{MemoryBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data, key := object(t, 5, 300_000)
	if err := c.Put(key, 0, data); err != nil {
		t.Fatal(err)
	}
	// Damage a frame past the first: the read must yield a verified
	// prefix, then fail with wire.ErrChecksum.
	if !c.Tamper(key, 200_000) {
		t.Fatal("Tamper found no span")
	}
	rc, err := c.Open(key, wire.ByteRange{Off: 0, Len: key.Size})
	if err != nil {
		t.Fatalf("Open after tamper: %v", err)
	}
	defer rc.Close()
	got, rerr := io.ReadAll(rc)
	if !errors.Is(rerr, wire.ErrChecksum) {
		t.Fatalf("read err = %v, want ErrChecksum", rerr)
	}
	if len(got) == 0 || len(got) >= 300_000 {
		t.Fatalf("verified prefix = %d bytes, want partial", len(got))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("verified prefix does not match the original bytes")
	}
	// The damaged span is gone: probes tell the truth now.
	if c.Holds(key, wire.ByteRange{Off: 0, Len: key.Size}) {
		t.Fatal("cache still claims the damaged range")
	}
}

func TestLRUSpillAndEvict(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Memory fits ~2 of the 64 KiB objects (framed), disk ~4.
	c, err := New(Config{MemoryBytes: 150 << 10, Dir: dir, DiskBytes: 300 << 10, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	type obj struct {
		data []byte
		key  wire.ContentDigest
	}
	var objs []obj
	for i := int64(0); i < 8; i++ {
		data, key := object(t, 100+i, 64<<10)
		objs = append(objs, obj{data, key})
		if err := c.Put(key, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.MemBytes > 150<<10 || st.DiskBytes > 300<<10 {
		t.Fatalf("budgets exceeded: %+v", st)
	}
	if reg.Counter(MetricEvictions).Value() == 0 {
		t.Fatal("no evictions counted despite overflow")
	}
	if g := reg.Gauge(MetricOccupancy).Value(); g != st.MemBytes+st.DiskBytes {
		t.Fatalf("occupancy gauge %d != %d", g, st.MemBytes+st.DiskBytes)
	}
	// The hottest objects must still be readable — the most recent Put
	// always is — and reads must verify, wherever the span lives.
	last := objs[len(objs)-1]
	if got := readRange(t, c, last.key, wire.ByteRange{Off: 0, Len: last.key.Size}); !bytes.Equal(got, last.data) {
		t.Fatal("hottest object unreadable or wrong after rebalancing")
	}
	// Some spans must have spilled to disk and remain readable there.
	spilled := 0
	for _, o := range objs {
		if c.Holds(o.key, wire.ByteRange{Off: 0, Len: o.key.Size}) {
			got := readRange(t, c, o.key, wire.ByteRange{Off: 0, Len: o.key.Size})
			if !bytes.Equal(got, o.data) {
				t.Fatalf("held object %x reads wrong bytes", o.key.Sum[:4])
			}
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("everything evicted; disk tier never used")
	}
}

func TestMemoryOnlyEvictsWithoutDir(t *testing.T) {
	c, err := New(Config{MemoryBytes: 100 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		data, key := object(t, 200+i, 48<<10)
		if err := c.Put(key, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.MemBytes > 100<<10 {
		t.Fatalf("memory budget exceeded: %+v", st)
	}
	if st.DiskBytes != 0 {
		t.Fatal("disk bytes without a disk tier")
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions in memory-only overflow")
	}
}

func TestRecoverFromDisk(t *testing.T) {
	dir := t.TempDir()
	var keys []wire.ContentDigest
	var datas [][]byte
	{
		c, err := New(Config{MemoryBytes: 64 << 10, Dir: dir, DiskBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		// Small memory tier forces spills; everything should survive on
		// disk within budget.
		for i := int64(0); i < 4; i++ {
			data, key := object(t, 300+i, 56<<10)
			keys = append(keys, key)
			datas = append(datas, data)
			if err := c.Put(key, 0, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A fresh cache over the same directory re-indexes the spilled spans.
	c, err := New(Config{MemoryBytes: 64 << 10, Dir: dir, DiskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Recovered == 0 {
		t.Fatalf("nothing recovered: %+v", st)
	}
	found := 0
	for i, key := range keys {
		if c.Holds(key, wire.ByteRange{Off: 0, Len: key.Size}) {
			if got := readRange(t, c, key, wire.ByteRange{Off: 0, Len: key.Size}); !bytes.Equal(got, datas[i]) {
				t.Fatalf("recovered object %d reads wrong bytes", i)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("no object survived restart")
	}
	// Recovered full objects are re-proven and advertised.
	if len(c.Keys()) != found {
		t.Fatalf("inventory %d != readable objects %d", len(c.Keys()), found)
	}
}

func TestRecoverDropsDamagedAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	data, key := object(t, 400, 56<<10)
	{
		c, err := New(Config{MemoryBytes: 8 << 10, Dir: dir, DiskBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(key, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	des, err := os.ReadDir(dir)
	if err != nil || len(des) == 0 {
		t.Fatalf("no spilled files (%v)", err)
	}
	// Damage one spilled file in place, and drop garbage alongside.
	victim := filepath.Join(dir, des[0].Name())
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "not-a-span.c"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Replace(des[0].Name(), spanExt, spanExt+".tmp123", 1)), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := New(Config{MemoryBytes: 8 << 10, Dir: dir, DiskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Dropped < 2 {
		t.Fatalf("Dropped = %d, want >= 2 (damaged + misnamed)", st.Dropped)
	}
	if c.Holds(key, wire.ByteRange{Off: 0, Len: key.Size}) {
		t.Fatal("cache claims a range whose backing file was damaged")
	}
	left, _ := os.ReadDir(dir)
	for _, de := range left {
		if strings.Contains(de.Name(), ".tmp") {
			t.Fatalf("tmp leftover survived re-index: %s", de.Name())
		}
	}
}

func TestSpanNameRoundTrip(t *testing.T) {
	_, key := object(t, 500, 12345)
	name := spanFileName(key, 100, 999)
	got, off, length, ok := parseSpanName(name)
	if !ok || got != key || off != 100 || length != 999 {
		t.Fatalf("parseSpanName(%q) = %+v %d %d %v", name, got, off, length, ok)
	}
	for _, bad := range []string{
		"", "x.c", name + "x", strings.Replace(name, "-", "_", 1),
		spanFileName(key, 12345, 1), // off+len > size
	} {
		if _, _, _, ok := parseSpanName(bad); ok && bad != name {
			t.Errorf("parseSpanName(%q) accepted", bad)
		}
	}
}

func TestPutRejectsOutOfBounds(t *testing.T) {
	c, err := New(Config{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, key := object(t, 600, 1000)
	if err := c.Put(key, 900, make([]byte, 200)); err == nil {
		t.Fatal("out-of-bounds put accepted")
	}
	if err := c.Put(key, -1, make([]byte, 1)); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := c.Put(key, 0, nil); err != nil {
		t.Fatalf("empty put: %v", err)
	}
}

func TestConcurrentPutOpen(t *testing.T) {
	c, err := New(Config{MemoryBytes: 4 << 20, Dir: t.TempDir(), DiskBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := int64(0); g < 8; g++ {
		go func(g int64) {
			data, key := object(t, 700+g%3, 128<<10) // 3 distinct objects, contended
			for i := 0; i < 20; i++ {
				if err := c.Put(key, 0, data); err != nil {
					done <- err
					return
				}
				rc, err := c.Open(key, wire.ByteRange{Off: 0, Len: key.Size})
				if err != nil {
					continue
				}
				got, rerr := io.ReadAll(rc)
				rc.Close()
				if rerr == nil && !bytes.Equal(got, data) {
					done <- errors.New("concurrent read returned wrong bytes")
					return
				}
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
