// Package cache implements the depot-resident content-addressed chunk
// cache (DESIGN.md §15): byte ranges of previously forwarded objects,
// keyed by their end-to-end content digest, so a repeat transfer can be
// served from the nearest depot holding the bytes instead of from the
// origin.
//
// Entries are immutable by construction — the key commits to both the
// object's size and its SHA-256, so a digest can only ever name one
// byte string and there is no invalidation protocol. Ranges accrete
// monotonically as sessions are forwarded; once an entry reaches full
// coverage the cache re-hashes it end to end and drops it on mismatch,
// after which the entry is advertised in the depot's digest inventory.
//
// Storage is two-tiered with a single recency order spanning both
// tiers, mirroring the depot spool LRU: spans live in memory until the
// memory budget overflows, then the coldest spans spill to
// content-addressed files in the cache directory; when the disk budget
// overflows the coldest disk span is evicted outright. Every span is
// stored CRC-framed (the wire chunk framing), in memory and on disk
// alike, and every read streams back through the verifying frame
// reader — a flipped bit in cached state surfaces as wire.ErrChecksum
// at serve time, the span is dropped, and the transfer falls back to
// the origin.
package cache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// ErrMiss reports that the cache does not (fully) hold the requested
// range. Serve paths treat it as "go to the origin".
var ErrMiss = errors.New("cache: range not held")

// errTooLarge reports a span that cannot fit either tier's budget.
var errTooLarge = errors.New("cache: span exceeds cache budget")

// Metric names registered by the cache. They carry the depot_ prefix
// because the cache is depot-resident state: one cache per depot, and
// operators alert on them next to the other depot_ series.
const (
	// MetricHits counts serve attempts satisfied from cached state.
	MetricHits = "depot_cache_hits_total"
	// MetricMisses counts serve attempts the cache could not satisfy:
	// range not held, or held bytes that failed their integrity check.
	MetricMisses = "depot_cache_misses_total"
	// MetricEvictions counts spans evicted to stay inside the budgets
	// (integrity drops included).
	MetricEvictions = "depot_cache_evictions_total"
	// MetricBytes counts payload bytes served out of the cache.
	MetricBytes = "depot_cache_bytes_total"
	// MetricOccupancy gauges the bytes currently held across both tiers
	// (framed size, the unit the budgets are expressed in).
	MetricOccupancy = "depot_cache_occupancy_bytes"
)

// Config parameterizes a cache.
type Config struct {
	// MemoryBytes is the memory-tier budget in framed bytes. Required.
	MemoryBytes int64
	// Dir, when set, enables the disk tier: spans displaced from memory
	// spill to CRC-framed files here and are re-indexed on restart.
	Dir string
	// DiskBytes bounds the disk tier. Defaults to 4x MemoryBytes when a
	// Dir is configured.
	DiskBytes int64
	// Metrics receives the depot_cache_* series. Optional.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of cache state and traffic.
type Stats struct {
	Objects     int   // distinct digests with at least one span
	Complete    int   // digests held in full (inventory size)
	MemBytes    int64 // framed bytes resident in memory
	DiskBytes   int64 // framed bytes resident on disk
	Hits        int64
	Misses      int64
	Evictions   int64
	BytesServed int64
	Recovered   int // spans re-indexed from disk at startup
	Dropped     int // damaged files dropped during re-index
}

// span is one cached byte range of one object, stored CRC-framed in
// exactly one tier.
type span struct {
	key    wire.ContentDigest
	off    int64
	length int64  // payload bytes
	framed int64  // stored bytes (payload + frame headers)
	frames []byte // memory tier; nil when spilled
	path   string // disk tier; empty while in memory
	el     *list.Element
}

func (s *span) end() int64 { return s.off + s.length }

// entry is every span held for one digest, sorted by offset and
// non-overlapping.
type entry struct {
	spans    []*span
	complete bool // full coverage, whole-object hash verified
}

// Cache is a content-addressed range cache. All methods are safe for
// concurrent use.
type Cache struct {
	memCap  int64
	diskCap int64
	dir     string

	hits, misses, evictions, bytesServed *obs.Counter
	occupancy                            *obs.Gauge

	mu        sync.Mutex
	entries   map[wire.ContentDigest]*entry
	lru       *list.List // of *span; front = most recent
	memUsed   int64
	diskUsed  int64
	stats     Stats
	tampered  int // spans deliberately damaged by Tamper (tests)
	recovered int
	dropped   int
}

// New builds a cache and, when a directory is configured, re-indexes
// whatever spilled spans a previous process left there, dropping
// damaged files. The returned cache is immediately usable.
func New(cfg Config) (*Cache, error) {
	if cfg.MemoryBytes <= 0 {
		return nil, errors.New("cache: MemoryBytes must be positive")
	}
	diskCap := cfg.DiskBytes
	if cfg.Dir != "" && diskCap <= 0 {
		diskCap = 4 * cfg.MemoryBytes
	}
	c := &Cache{
		memCap:  cfg.MemoryBytes,
		diskCap: diskCap,
		dir:     cfg.Dir,
		entries: make(map[wire.ContentDigest]*entry),
		lru:     list.New(),
	}
	if cfg.Metrics != nil {
		c.hits = cfg.Metrics.Counter(MetricHits)
		c.misses = cfg.Metrics.Counter(MetricMisses)
		c.evictions = cfg.Metrics.Counter(MetricEvictions)
		c.bytesServed = cfg.Metrics.Counter(MetricBytes)
		c.occupancy = cfg.Metrics.Gauge(MetricOccupancy)
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		if err := c.recover(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func addCounter(c *obs.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// setOccupancy must be called with mu held after any size change.
func (c *Cache) setOccupancy() {
	if c.occupancy != nil {
		c.occupancy.Set(c.memUsed + c.diskUsed)
	}
}

// Put stores data as the object's bytes at [off, off+len(data)).
// Already-held portions are skipped (entries are immutable, so the
// bytes cannot differ unless something upstream is broken — and full
// coverage re-verifies the whole object against the digest). The new
// span becomes the most recently used and the budgets are rebalanced:
// memory overflow spills the coldest spans to disk, disk overflow
// evicts. A span too large for every configured tier is rejected.
func (c *Cache) Put(key wire.ContentDigest, off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if off < 0 || off+int64(len(data)) > key.Size {
		return fmt.Errorf("cache: put [%d,%d) outside object of %d bytes", off, off+int64(len(data)), key.Size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &entry{}
		c.entries[key] = e
	}
	for _, gap := range uncovered(e.spans, off, off+int64(len(data))) {
		sub := data[gap.Off-off : gap.End()-off]
		framed := frameBytes(sub)
		if int64(len(framed)) > c.memCap && (c.dir == "" || int64(len(framed)) > c.diskCap) {
			return errTooLarge
		}
		sp := &span{key: key, off: gap.Off, length: gap.Len, framed: int64(len(framed)), frames: framed}
		sp.el = c.lru.PushFront(sp)
		c.memUsed += sp.framed
		e.spans = insertSpan(e.spans, sp)
	}
	c.rebalance()
	c.setOccupancy()
	if !e.complete && coversAll(e.spans, key.Size) {
		c.verifyComplete(key, e)
	}
	return nil
}

// frameBytes CRC-frames payload into a fresh buffer.
func frameBytes(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(payload) + FrameOverhead(len(payload)))
	fw := wire.NewFrameWriter(&buf)
	_, _ = fw.Write(payload) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

// FrameOverhead returns the framing bytes added to a payload of n
// bytes — useful for sizing cache budgets against object sizes.
func FrameOverhead(n int) int {
	frames := (n + wire.MaxFramePayload - 1) / wire.MaxFramePayload
	if frames == 0 {
		frames = 1
	}
	return frames * wire.FrameHeaderLen
}

// uncovered returns the sub-ranges of [lo, hi) not covered by spans.
func uncovered(spans []*span, lo, hi int64) []wire.ByteRange {
	var out []wire.ByteRange
	at := lo
	for _, sp := range spans {
		if sp.end() <= at {
			continue
		}
		if sp.off >= hi {
			break
		}
		if sp.off > at {
			out = append(out, wire.ByteRange{Off: at, Len: sp.off - at})
		}
		if sp.end() > at {
			at = sp.end()
		}
		if at >= hi {
			return out
		}
	}
	if at < hi {
		out = append(out, wire.ByteRange{Off: at, Len: hi - at})
	}
	return out
}

// insertSpan inserts sp keeping the slice sorted by offset.
func insertSpan(spans []*span, sp *span) []*span {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].off > sp.off })
	spans = append(spans, nil)
	copy(spans[i+1:], spans[i:])
	spans[i] = sp
	return spans
}

// coversAll reports whether spans contiguously cover [0, size).
func coversAll(spans []*span, size int64) bool {
	return coverFrom(spans, 0) >= size
}

// coverFrom returns the furthest offset reachable contiguously from
// `from` through the sorted spans (at least `from` itself).
func coverFrom(spans []*span, from int64) int64 {
	at := from
	for _, sp := range spans {
		if sp.off > at {
			break
		}
		if sp.end() > at {
			at = sp.end()
		}
	}
	return at
}

// verifyComplete re-hashes a fully covered entry against its digest,
// marking it advertisable on success and dropping it wholesale on
// mismatch. Called with mu held.
func (c *Cache) verifyComplete(key wire.ContentDigest, e *entry) {
	h := sha256.New()
	at := int64(0)
	for _, sp := range e.spans {
		payload, err := c.spanPayload(sp)
		if err != nil {
			c.dropEntryLocked(key)
			return
		}
		// Overlap is impossible by construction; adjacency means the
		// payload starts exactly at `at`.
		if sp.off != at {
			c.dropEntryLocked(key)
			return
		}
		h.Write(payload)
		at = sp.end()
	}
	var sum [wire.DigestLen]byte
	h.Sum(sum[:0])
	if sum != key.Sum {
		c.dropEntryLocked(key)
		return
	}
	e.complete = true
}

// spanPayload reads and CRC-verifies one span's payload. Called with
// mu held.
func (c *Cache) spanPayload(sp *span) ([]byte, error) {
	var src io.Reader
	var closer io.Closer
	if sp.frames != nil {
		src = bytes.NewReader(sp.frames)
	} else {
		f, err := os.Open(sp.path)
		if err != nil {
			return nil, err
		}
		src = f
		closer = f
	}
	payload, err := io.ReadAll(wire.NewFrameReader(src))
	if closer != nil {
		closer.Close()
	}
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) != sp.length {
		return nil, fmt.Errorf("%w: span payload %d != %d", wire.ErrChecksum, len(payload), sp.length)
	}
	return payload, nil
}

// rebalance restores the tier budgets: memory overflow spills the
// coldest memory spans to disk (or evicts them when no directory is
// configured), disk overflow evicts the coldest disk spans. Called
// with mu held.
func (c *Cache) rebalance() {
	for c.memUsed > c.memCap {
		sp := c.coldest(true)
		if sp == nil {
			break
		}
		if c.dir == "" || !c.spill(sp) {
			c.evict(sp)
		}
	}
	for c.dir != "" && c.diskUsed > c.diskCap {
		sp := c.coldest(false)
		if sp == nil {
			break
		}
		c.evict(sp)
	}
}

// coldest returns the least recently used span in the requested tier.
func (c *Cache) coldest(memory bool) *span {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		sp := el.Value.(*span)
		if (sp.frames != nil) == memory {
			return sp
		}
	}
	return nil
}

// spill moves a memory span to the disk tier (tmp+rename, so restart
// re-indexing never sees a torn file as current). Reports success;
// failure leaves the span in memory and the caller evicts instead.
func (c *Cache) spill(sp *span) bool {
	name := spanFileName(sp.key, sp.off, sp.length)
	path := filepath.Join(c.dir, name)
	tmp, err := os.CreateTemp(c.dir, name+".tmp")
	if err != nil {
		return false
	}
	_, werr := tmp.Write(sp.frames)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false
	}
	c.memUsed -= sp.framed
	c.diskUsed += sp.framed
	sp.frames = nil
	sp.path = path
	return true
}

// evict removes a span entirely. Called with mu held.
func (c *Cache) evict(sp *span) {
	c.removeSpan(sp)
	c.stats.Evictions++
	addCounter(c.evictions, 1)
}

// removeSpan detaches a span from its entry, the recency list, and its
// tier, without counting an eviction. Called with mu held.
func (c *Cache) removeSpan(sp *span) {
	e := c.entries[sp.key]
	if e != nil {
		for i, s := range e.spans {
			if s == sp {
				e.spans = append(e.spans[:i], e.spans[i+1:]...)
				break
			}
		}
		e.complete = false
		if len(e.spans) == 0 {
			delete(c.entries, sp.key)
		}
	}
	if sp.el != nil {
		c.lru.Remove(sp.el)
		sp.el = nil
	}
	if sp.frames != nil {
		c.memUsed -= sp.framed
		sp.frames = nil
	} else if sp.path != "" {
		c.diskUsed -= sp.framed
		os.Remove(sp.path)
		sp.path = ""
	}
}

// dropEntryLocked evicts every span of one digest. Called with mu held.
func (c *Cache) dropEntryLocked(key wire.ContentDigest) {
	e := c.entries[key]
	if e == nil {
		return
	}
	for len(e.spans) > 0 {
		c.evict(e.spans[0])
	}
	c.setOccupancy()
}

// Drop evicts everything held for one digest.
func (c *Cache) Drop(key wire.ContentDigest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropEntryLocked(key)
}

// Ranges returns the held byte ranges for a digest, coalesced and
// sorted — the body of a cache-hit advertisement. A nil return is a
// miss. Probing does not disturb recency and is not counted as a hit
// or miss; only serve attempts are.
func (c *Cache) Ranges(key wire.ContentDigest) []wire.ByteRange {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil
	}
	var out []wire.ByteRange
	for _, sp := range e.spans {
		if n := len(out); n > 0 && out[n-1].End() >= sp.off {
			if sp.end() > out[n-1].End() {
				out[n-1].Len = sp.end() - out[n-1].Off
			}
			continue
		}
		out = append(out, wire.ByteRange{Off: sp.off, Len: sp.length})
	}
	return out
}

// Holds reports whether the cache contiguously holds r. A false return
// counts as a cache miss: callers ask on the serve path, deciding
// between local serve and origin forward.
func (c *Cache) Holds(key wire.ContentDigest, r wire.ByteRange) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e != nil && r.Len > 0 && coverFrom(e.spans, r.Off) >= r.End() {
		return true
	}
	c.stats.Misses++
	addCounter(c.misses, 1)
	return false
}

// Fits reports whether a range of n payload bytes could ever reside in
// this cache: within the memory budget, or within the disk budget when
// a spill directory is configured. Population paths ask before
// buffering a session's payload, so a cache too small for the object
// costs nothing.
func (c *Cache) Fits(n int64) bool {
	if n <= 0 {
		return false
	}
	frames := (n + int64(wire.MaxFramePayload) - 1) / int64(wire.MaxFramePayload)
	framed := n + frames*int64(wire.FrameHeaderLen)
	return framed <= c.memCap || (c.dir != "" && framed <= c.diskCap)
}

// Keys returns the digests held in full — the depot's advertisable
// inventory — in deterministic (sum) order.
func (c *Cache) Keys() []wire.ContentDigest {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []wire.ContentDigest
	for key, e := range c.entries {
		if e.complete {
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Sum[:], out[j].Sum[:]) < 0 })
	return out
}

// Stats returns a snapshot of cache state and lifetime traffic.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Objects = len(c.entries)
	for _, e := range c.entries {
		if e.complete {
			s.Complete++
		}
	}
	s.MemBytes = c.memUsed
	s.DiskBytes = c.diskUsed
	s.Recovered = c.recovered
	s.Dropped = c.dropped
	return s
}
