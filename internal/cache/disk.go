package cache

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/netlogistics/lsl/internal/wire"
)

// spanExt suffixes spilled-span files; everything else in the cache
// directory is either a tmp leftover or not ours.
const spanExt = ".c"

// spanFileName is the content-addressed name of a spilled span:
// <sha256><object size><span offset><span length>, hex, dash-joined.
// The name alone rebuilds the index entry; the CRC framing inside the
// file proves the bytes.
func spanFileName(key wire.ContentDigest, off, length int64) string {
	return fmt.Sprintf("%064x-%016x-%016x-%016x%s", key.Sum, uint64(key.Size), uint64(off), uint64(length), spanExt)
}

// parseSpanName inverts spanFileName.
func parseSpanName(name string) (key wire.ContentDigest, off, length int64, ok bool) {
	base, found := strings.CutSuffix(name, spanExt)
	if !found {
		return key, 0, 0, false
	}
	parts := strings.Split(base, "-")
	if len(parts) != 4 || len(parts[0]) != 2*wire.DigestLen {
		return key, 0, 0, false
	}
	for i := 0; i < wire.DigestLen; i++ {
		b, err := strconv.ParseUint(parts[0][2*i:2*i+2], 16, 8)
		if err != nil {
			return key, 0, 0, false
		}
		key.Sum[i] = byte(b)
	}
	nums := make([]int64, 3)
	for i, p := range parts[1:] {
		v, err := strconv.ParseUint(p, 16, 63)
		if err != nil {
			return key, 0, 0, false
		}
		nums[i] = int64(v)
	}
	key.Size = nums[0]
	if nums[2] <= 0 || nums[1] < 0 || nums[1]+nums[2] > key.Size {
		return key, 0, 0, false
	}
	return key, nums[1], nums[2], true
}

// recover re-indexes spilled spans left by a previous process. Every
// candidate file is streamed through the CRC frame verifier before it
// re-enters the index; torn, damaged, misnamed or overlapping files
// are removed and counted rather than trusted. Tmp leftovers from
// interrupted spills are swept. Called once from New, before the cache
// is shared.
func (c *Cache) recover() error {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("cache: re-index %s: %w", c.dir, err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(c.dir, de.Name())
		if !strings.HasSuffix(de.Name(), spanExt) {
			// Interrupted spill leftovers; never current state.
			if strings.Contains(de.Name(), spanExt+".tmp") {
				os.Remove(path)
			}
			continue
		}
		key, off, length, ok := parseSpanName(de.Name())
		if !ok {
			os.Remove(path)
			c.dropped++
			continue
		}
		framed, payload, verr := verifySpanFile(path)
		if verr != nil || payload != length {
			os.Remove(path)
			c.dropped++
			continue
		}
		e := c.entries[key]
		if e == nil {
			e = &entry{}
			c.entries[key] = e
		}
		if gaps := uncovered(e.spans, off, off+length); len(gaps) != 1 || gaps[0] != (wire.ByteRange{Off: off, Len: length}) {
			// Overlaps something already indexed — drop the duplicate.
			os.Remove(path)
			c.dropped++
			continue
		}
		sp := &span{key: key, off: off, length: length, framed: framed, path: path}
		sp.el = c.lru.PushBack(sp)
		c.diskUsed += framed
		e.spans = insertSpan(e.spans, sp)
		c.recovered++
	}
	// Re-verify full objects end to end so the inventory only ever
	// advertises digests this process has proven.
	for key, e := range c.entries {
		if coversAll(e.spans, key.Size) {
			c.verifyComplete(key, e)
		}
	}
	// A shrunken budget takes effect immediately: recovery itself can
	// overflow the disk tier, evicting in (arbitrary) recovered order.
	c.rebalance()
	c.setOccupancy()
	return nil
}

// verifySpanFile streams one spilled file through the CRC verifier,
// returning its framed size and payload length.
func verifySpanFile(path string) (framed, payload int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	n, err := io.Copy(io.Discard, wire.NewFrameReader(f))
	if err != nil {
		return 0, 0, err
	}
	return fi.Size(), n, nil
}
