package cache

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"github.com/netlogistics/lsl/internal/wire"
)

// Open returns a reader over the payload bytes of r, counted as one
// serve attempt: a hit if the range is contiguously held, otherwise
// ErrMiss. The read is lazy and every byte streams back through the
// CRC frame verifier, so corruption of cached state surfaces as
// wire.ErrChecksum partway through the read; the damaged span is
// dropped so subsequent probes see the truth, and the caller falls
// back to the origin for the remainder.
func (c *Cache) Open(key wire.ContentDigest, r wire.ByteRange) (io.ReadCloser, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil || r.Len <= 0 || coverFrom(e.spans, r.Off) < r.End() {
		c.stats.Misses++
		addCounter(c.misses, 1)
		c.mu.Unlock()
		return nil, ErrMiss
	}
	var parts []spanPart
	for _, sp := range e.spans {
		if sp.end() <= r.Off || sp.off >= r.End() {
			continue
		}
		skip := int64(0)
		if r.Off > sp.off {
			skip = r.Off - sp.off
		}
		take := sp.end()
		if r.End() < take {
			take = r.End()
		}
		parts = append(parts, spanPart{
			sp:     sp,
			frames: sp.frames,
			path:   sp.path,
			skip:   skip,
			take:   take - (sp.off + skip),
		})
		c.lru.MoveToFront(sp.el)
	}
	c.stats.Hits++
	addCounter(c.hits, 1)
	c.mu.Unlock()
	return &rangeReader{c: c, key: key, parts: parts}, nil
}

// spanPart is one span's contribution to an open range read, with the
// backing storage captured at Open time: memory frames stay readable
// even if the span is evicted mid-read, while a concurrently evicted
// disk span surfaces as a read error and the caller falls back.
type spanPart struct {
	sp     *span
	frames []byte
	path   string
	skip   int64 // payload bytes to discard at the front
	take   int64 // payload bytes to yield
}

// rangeReader streams a cached range span by span through the CRC
// frame verifier.
type rangeReader struct {
	c       *Cache
	key     wire.ContentDigest
	parts   []spanPart
	cur     io.Reader
	curC    io.Closer
	curPart spanPart
	rem     int64 // bytes left in the current part
}

// Read implements io.Reader.
func (rr *rangeReader) Read(p []byte) (int, error) {
	for rr.rem == 0 {
		if rr.curC != nil {
			rr.curC.Close()
			rr.curC = nil
		}
		if len(rr.parts) == 0 {
			return 0, io.EOF
		}
		part := rr.parts[0]
		rr.parts = rr.parts[1:]
		if err := rr.start(part); err != nil {
			rr.fail(part)
			return 0, err
		}
		rr.curPart = part
		rr.rem = part.take
	}
	if int64(len(p)) > rr.rem {
		p = p[:rr.rem]
	}
	n, err := rr.cur.Read(p)
	rr.rem -= int64(n)
	if n > 0 {
		rr.c.mu.Lock()
		rr.c.stats.BytesServed += int64(n)
		rr.c.mu.Unlock()
		addCounter(rr.c.bytesServed, int64(n))
	}
	if err != nil {
		if err == io.EOF && rr.rem == 0 {
			// Clean span boundary; the next Read advances to the next part.
			return n, nil
		}
		// A short or corrupt span: drop it so the cache stops advertising
		// bytes it cannot prove.
		rr.fail(rr.curPart)
		if err == io.EOF {
			err = fmt.Errorf("%w: cached span shorter than indexed", wire.ErrChecksum)
		}
		return n, err
	}
	return n, nil
}

// start positions a frame reader at the part's first payload byte.
func (rr *rangeReader) start(part spanPart) error {
	var src io.Reader
	switch {
	case part.frames != nil:
		src = bytes.NewReader(part.frames)
	case part.path != "":
		f, err := os.Open(part.path)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMiss, err)
		}
		rr.curC = f
		src = f
	default:
		return ErrMiss
	}
	fr := wire.NewFrameReader(src)
	if part.skip > 0 {
		if _, err := io.CopyN(io.Discard, fr, part.skip); err != nil {
			return err
		}
	}
	rr.cur = fr
	return nil
}

// fail records a failed serve: the offending span (when known) is
// dropped and the attempt is re-counted as a miss, so hit/miss totals
// reflect what was actually served.
func (rr *rangeReader) fail(part spanPart) {
	rr.c.mu.Lock()
	if part.sp != nil && part.sp.el != nil {
		rr.c.evict(part.sp)
		rr.c.setOccupancy()
	}
	rr.c.stats.Misses++
	rr.c.mu.Unlock()
	addCounter(rr.c.misses, 1)
}

// Close releases any open disk handle.
func (rr *rangeReader) Close() error {
	if rr.curC != nil {
		rr.curC.Close()
		rr.curC = nil
	}
	rr.parts = nil
	rr.rem = 0
	return nil
}

// Tamper flips one payload byte of the cached frame covering off,
// damaging the stored state the way a decaying disk or memory would.
// The next read of that span fails its CRC check. Returns false when
// no cached span covers off. Test and fault-injection hook.
func (c *Cache) Tamper(key wire.ContentDigest, off int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return false
	}
	for _, sp := range e.spans {
		if off < sp.off || off >= sp.end() {
			continue
		}
		rel := off - sp.off
		frame := rel / wire.MaxFramePayload
		pos := frame*(wire.FrameHeaderLen+wire.MaxFramePayload) + wire.FrameHeaderLen + rel%wire.MaxFramePayload
		if sp.frames != nil {
			if pos >= int64(len(sp.frames)) {
				return false
			}
			sp.frames[pos] ^= 0xFF
			c.tampered++
			return true
		}
		data, err := os.ReadFile(sp.path)
		if err != nil || pos >= int64(len(data)) {
			return false
		}
		data[pos] ^= 0xFF
		if err := os.WriteFile(sp.path, data, 0o644); err != nil {
			return false
		}
		c.tampered++
		return true
	}
	return false
}
