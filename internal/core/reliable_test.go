package core

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/topo"
)

// chainTopology is a recovery testbed: the minimax route src→dst runs
// through TWO depots (relay-a then relay-b, 100 Mbit/s per segment), a
// spare depot offers the best surviving route when one of them dies
// (50 Mbit/s per segment), and the direct path is a 2 Mbit/s trickle.
// Every other pair is 4 Mbit/s so no alternative relay placement can
// compete.
func chainTopology(t *testing.T) *topo.Topology {
	t.Helper()
	const (
		mbit = 1e6 / 8
		buf  = int64(8 << 20)
	)
	hosts := []topo.Host{
		{Name: "src", Site: "src", SndBuf: buf, RcvBuf: buf},
		{Name: "relay-a", Site: "a", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "relay-b", Site: "b", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "spare", Site: "c", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "dst", Site: "dst", SndBuf: buf, RcvBuf: buf},
	}
	tp, err := topo.New("chain", hosts)
	if err != nil {
		t.Fatal(err)
	}
	ms := simtime.Milliseconds
	set := func(a, b string, capMbit float64) {
		tp.SetLink(tp.MustHost(a), tp.MustHost(b), topo.Link{RTT: ms(10), Capacity: capMbit * mbit})
	}
	set("src", "relay-a", 100)
	set("relay-a", "relay-b", 100)
	set("relay-b", "dst", 100)
	set("src", "spare", 50)
	set("spare", "dst", 50)
	set("src", "dst", 2)
	set("src", "relay-b", 4)
	set("relay-a", "dst", 4)
	set("relay-a", "spare", 4)
	set("relay-b", "spare", 4)
	return tp
}

type sinkFunc func(obs.Event)

func (f sinkFunc) Emit(e obs.Event) { f(e) }

func chainSystem(t *testing.T, reg *obs.Registry, extra obs.Sink) (*System, *obs.MemorySink) {
	t.Helper()
	mem := &obs.MemorySink{}
	sinks := obs.MultiSink{mem}
	if extra != nil {
		sinks = append(sinks, extra)
	}
	sys, err := NewSystem(chainTopology(t), Config{
		TimeScale: 0.0005,
		Seed:      1,
		Metrics:   reg,
		Trace:     sinks,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys, mem
}

func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2}
}

func assertPath(t *testing.T, got []string, want ...string) {
	t.Helper()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("path = %v, want %v", got, want)
	}
}

// TestReliableSurvivesDepotKillMidStream is the acceptance scenario: a
// transfer over a two-depot chain has a depot drop it mid-stream and
// then die outright; the transfer must finish anyway — resuming from
// the sink's acked offset over the rerouted (spare-depot) path — and
// the recovery must be visible as counters in the /metrics output.
func TestReliableSurvivesDepotKillMidStream(t *testing.T) {
	reg := obs.NewRegistry()
	var (
		sys      *System
		killOnce sync.Once
		killErr  error
	)
	// The first retry event marks the boundary between attempts: the
	// interrupted first attempt has fully wound down, the next has not
	// dialed yet. Killing the depot there is exactly "mid-transfer".
	sys, mem := chainSystem(t, reg, sinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindRetry && e.Hop == 0 {
			killOnce.Do(func() { killErr = sys.KillDepot("relay-b") })
		}
	}))

	planned, err := sys.PlannedPath("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	assertPath(t, planned, "src", "relay-a", "relay-b", "dst")

	f, err := sys.Fault("relay-b")
	if err != nil {
		t.Fatal(err)
	}
	f.DropAfter(96 << 10)

	const size = 256 << 10
	res, err := sys.TransferReliable("src", "dst", size, RecoveryPolicy{
		Retry: fastPolicy(6), Failover: true, FailoverAfter: 1, AttemptTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if killErr != nil {
		t.Fatalf("KillDepot: %v", killErr)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	assertPath(t, res.Path, "src", "spare", "dst")

	if v := reg.Counter(MetricRetryAttempts).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricRetryAttempts, v)
	}
	if v := reg.Counter(MetricFailovers).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricFailovers, v)
	}
	if f.Injected() < 1 {
		t.Fatal("fault injector never fired")
	}

	var sawRetry, sawFailover bool
	for _, e := range mem.Events() {
		switch e.Kind {
		case obs.KindRetry:
			sawRetry = true
		case obs.KindFailover:
			sawFailover = true
			if !strings.Contains(e.Detail, "relay-b") {
				t.Fatalf("failover event does not name the dead depot: %+v", e)
			}
		}
	}
	if !sawRetry || !sawFailover {
		t.Fatalf("trace missing recovery events: retry=%v failover=%v", sawRetry, sawFailover)
	}

	// The recovery counters must surface on the debug endpoint.
	srv := httptest.NewServer(obs.Handler(reg, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, name := range []string{MetricRetryAttempts, MetricFailovers, "depot_faults_injected_total"} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics output missing %s:\n%s", name, body)
		}
	}
}

// TestReliableResumesAtAckedOffset exercises retry WITHOUT failover:
// the one-shot drop fault tears the chain mid-stream, and the retried
// session must resume on the same path from the sink's acked offset —
// observable as a positive resumed-bytes counter.
func TestReliableResumesAtAckedOffset(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	f, err := sys.Fault("relay-b")
	if err != nil {
		t.Fatal(err)
	}
	f.DropAfter(128 << 10)

	const size = 256 << 10
	res, err := sys.TransferReliable("src", "dst", size, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	// No failover configured: delivery stays on the planned chain.
	assertPath(t, res.Path, "src", "relay-a", "relay-b", "dst")
	if v := reg.Counter(MetricRetryAttempts).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricRetryAttempts, v)
	}
	if v := reg.Counter(MetricResumedBytes).Value(); v <= 0 {
		t.Fatalf("%s = %d, want > 0 (continuation restarted from scratch)", MetricResumedBytes, v)
	}
	if v := reg.Counter(MetricFailovers).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0", MetricFailovers, v)
	}
}

// TestReliableFailoverMatchesPathAvoiding pins the reroute to the
// scheduler: the path recovery picks for a cold-dead depot must be
// exactly the minimax path on the surviving topology.
func TestReliableFailoverMatchesPathAvoiding(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	if err := sys.KillDepot("relay-b"); err != nil {
		t.Fatal(err)
	}
	si, _ := sys.Topo.HostIndex("src")
	di, _ := sys.Topo.HostIndex("dst")
	bi, _ := sys.Topo.HostIndex("relay-b")
	want, err := sys.Planner.PathAvoiding(si, di, map[int]bool{bi: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("PathAvoiding = %v, want a usable route", want)
	}

	const size = 128 << 10
	res, err := sys.TransferReliable("src", "dst", size, RecoveryPolicy{
		Retry: fastPolicy(6), Failover: true, FailoverAfter: 1, AttemptTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertPath(t, res.Path, sys.hostNames(want)...)
	for _, name := range res.Path[1 : len(res.Path)-1] {
		i, _ := sys.Topo.HostIndex(name)
		if !sys.Topo.Hosts[i].Depot {
			t.Fatalf("failover relay %s is not a depot", name)
		}
	}
	if v := reg.Counter(MetricFailovers).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricFailovers, v)
	}
}

// TestReliableExhaustedRetriesClassified: when every attempt dies and
// failover is off, the caller gets an error that is explicitly an
// exhaustion of the retry budget, not a mystery failure — and not a
// fatal classification, since the cause was transient.
func TestReliableExhaustedRetriesClassified(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	f, err := sys.Fault("relay-a")
	if err != nil {
		t.Fatal(err)
	}
	f.RefuseConnect(true)

	_, err = sys.TransferReliable("src", "dst", 64<<10, RecoveryPolicy{
		Retry: fastPolicy(3), AttemptTimeout: 600 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("transfer through a refusing depot succeeded")
	}
	if !errors.Is(err, retry.ErrExhausted) {
		t.Fatalf("err = %v, want errors.Is(err, retry.ErrExhausted)", err)
	}
	if v := reg.Counter(MetricRecoveryFatal).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0 — a refused connect is transient", MetricRecoveryFatal, v)
	}
	if v := reg.Counter(MetricRetryAttempts).Value(); v != 2 {
		t.Fatalf("%s = %d, want 2 (3 attempts)", MetricRetryAttempts, v)
	}
}

// TestReliableCorruptionIsFatal: a silently corrupted payload (pattern
// mismatch at the sink) must abort on the first attempt — retrying a
// deterministic verification failure would only repeat it — and must be
// counted as a fatal recovery outcome, not an exhausted retry budget.
func TestReliableCorruptionIsFatal(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	f, err := sys.Fault("relay-a")
	if err != nil {
		t.Fatal(err)
	}
	f.CorruptAfter(16 << 10)

	_, err = sys.TransferReliable("src", "dst", 64<<10, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 3 * time.Second,
	})
	if err == nil {
		t.Fatal("corrupted transfer reported success")
	}
	if errors.Is(err, retry.ErrExhausted) {
		t.Fatalf("err = %v: corruption burned the retry budget instead of aborting", err)
	}
	if !strings.Contains(err.Error(), "pattern mismatch") {
		t.Fatalf("err = %v, want the sink's pattern mismatch", err)
	}
	if v := reg.Counter(MetricRecoveryFatal).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricRecoveryFatal, v)
	}
	if v := reg.Counter(MetricRetryAttempts).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0 (fatal errors must not retry)", MetricRetryAttempts, v)
	}
}
