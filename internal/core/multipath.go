package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// Multipath metric names reported into Config.Metrics.
const (
	// MetricMultipathTransfers counts completed multipath transfers.
	MetricMultipathTransfers = "core_multipath_transfers_total"
	// MetricMultipathRangesStolen counts chunk ranges an idle route
	// stole from a slower sibling rather than letting it hold the tail.
	MetricMultipathRangesStolen = "core_multipath_ranges_stolen_total"
	// MetricMultipathDuplicateAcks counts double completions — a stolen
	// range delivered by both its owner and the thief; first ack wins,
	// the duplicate is harmless and counted here.
	MetricMultipathDuplicateAcks = "core_multipath_duplicate_acks_total"
	// MetricMultipathPathFailures counts route workers that died with
	// their ranges drained to the surviving routes.
	MetricMultipathPathFailures = "core_multipath_path_failures_total"
	// MetricMultipathDigestVerified counts multipath transfers whose
	// end-to-end SHA-256, stitched across every route at the sink,
	// matched the sender's digest.
	MetricMultipathDigestVerified = "core_multipath_digest_verified_total"
)

// Multipath chunking: each route gets several ranges so the work queue
// can rebalance, but a range never shrinks below multipathMinRange —
// tinier ranges spend more time in session setup than in transfer.
const (
	multipathRangesPerPath = 4
	multipathMinRange      = 64 << 10
	// multipathMaxClaims bounds how many routes race one range: the
	// owner plus at most one thief. More would burn capacity re-sending
	// the same bytes on every route.
	multipathMaxClaims = 2
)

// MultipathResult reports one completed multipath transfer.
type MultipathResult struct {
	TransferResult
	// Routes holds the final depot route of each path worker, by path
	// index (a route that failed over mid-transfer shows its last
	// shape).
	Routes [][]string
	// Stolen counts ranges re-dispatched to an idle route.
	Stolen int
	// DuplicateAcks counts double completions resolved first-ack-wins.
	DuplicateAcks int
}

// mpRange is one chunk range of a multipath transfer's shared work
// queue. done closes on the first full ack (first-ack-wins); the
// bookkeeping fields are guarded by the owning queue's mutex.
type mpRange struct {
	idx  int
	rng  stripeRange
	done chan struct{}

	acked    int64 // deepest absolute offset a sink report covered
	claims   int   // route workers currently sending this range
	finished bool
	lastErr  error // most recent sink error, for classification
}

// mpQueue is the shared chunk-range work queue: pending ranges are
// claimed in object order, and once the queue drains an idle route
// steals the in-flight range with the most bytes left — a slow or
// stalled route never holds the tail. Claims are capped so at most
// multipathMaxClaims routes race one range.
type mpQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	ranges    []*mpRange
	pending   []int
	remaining int
	stolen    int
	dups      int
}

func newMPQueue(ranges []stripeRange) *mpQueue {
	q := &mpQueue{remaining: len(ranges)}
	q.cond = sync.NewCond(&q.mu)
	for i, r := range ranges {
		q.ranges = append(q.ranges, &mpRange{idx: i, rng: r, acked: r.start, done: make(chan struct{})})
		q.pending = append(q.pending, i)
	}
	return q
}

// claim returns the next range for a worker to drive: a pending range
// in object order when one exists, otherwise the in-flight range with
// the most bytes left (a steal). It blocks while every unfinished
// range is already fully claimed and returns nil once the whole object
// is delivered.
func (q *mpQueue) claim() *mpRange {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.remaining == 0 {
			return nil
		}
		if len(q.pending) > 0 {
			r := q.ranges[q.pending[0]]
			q.pending = q.pending[1:]
			r.claims++
			return r
		}
		var best *mpRange
		for _, r := range q.ranges {
			if r.finished || r.claims == 0 || r.claims >= multipathMaxClaims {
				continue
			}
			if best == nil || r.rng.end-r.acked > best.rng.end-best.acked {
				best = r
			}
		}
		if best != nil {
			best.claims++
			q.stolen++
			return best
		}
		q.cond.Wait()
	}
}

// release returns a worker's claim on r. An unfinished range with no
// claimants left goes back on the pending queue so a surviving route
// picks it up — how a dead route's work drains to its siblings.
func (q *mpQueue) release(r *mpRange) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r.claims--
	if !r.finished && r.claims == 0 {
		q.pending = append(q.pending, r.idx)
	}
	q.cond.Broadcast()
}

// report folds one sink delivery report into the queue: the covered
// range's ack frontier advances, and a clean report reaching the range
// end completes it — exactly once; a later duplicate from a stolen
// sibling session is counted and dropped.
func (q *mpQueue) report(res deliverResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var r *mpRange
	for _, c := range q.ranges {
		if res.offset >= c.rng.start && res.offset < c.rng.end {
			r = c
			break
		}
	}
	if r == nil {
		return
	}
	if end := res.offset + res.bytes; end > r.acked {
		r.acked = end
		if r.acked > r.rng.end {
			r.acked = r.rng.end
		}
	}
	if res.err != nil {
		r.lastErr = res.err
	} else if res.offset+res.bytes >= r.rng.end {
		if r.finished {
			q.dups++
		} else {
			r.finished = true
			q.remaining--
			close(r.done)
		}
	}
	q.cond.Broadcast()
}

// ackedOf returns r's current ack frontier.
func (q *mpQueue) ackedOf(r *mpRange) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return r.acked
}

// errOf returns the most recent sink error reported against r.
func (q *mpQueue) errOf(r *mpRange) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return r.lastErr
}

// finished reports whether r has been fully delivered.
func (q *mpQueue) finished(r *mpRange) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return r.finished
}

// left reports how many ranges are not yet delivered.
func (q *mpQueue) left() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remaining
}

// multipathRanges splits size bytes into the chunk ranges k routes
// work-steal over: multipathRangesPerPath per route, shrunk so no
// range falls below multipathMinRange (and never fewer ranges than
// routes, unless the object is smaller than the route count).
func multipathRanges(size int64, k int) []stripeRange {
	n := k * multipathRangesPerPath
	if int64(n)*multipathMinRange > size {
		n = int(size / multipathMinRange)
	}
	if n < k {
		n = k
	}
	if int64(n) > size {
		n = int(size)
	}
	return stripeRanges(size, n)
}

// TransferMultipath moves size bytes from srcHost to dstHost as one
// logical transfer fanned across up to k edge-disjoint depot routes.
// The planner extracts the routes (best minimax bottleneck first,
// fewer when the graph runs out of disjoint routes); each route runs a
// pinned-route worker that pulls contiguous chunk ranges from a shared
// work queue, so a route self-clocks to its observed throughput — a
// fast route simply pulls more ranges, and once the queue drains an
// idle route steals the largest in-flight remainder so a slow or
// killed route never holds the tail. Double completion from a stolen
// range is resolved first-ack-wins at the sink dispatcher.
//
// Every session shares the transfer's session id (sinks reassemble by
// absolute offset, as with stripes), trace id, and — under
// Config.Integrity — the whole-object content digest, stitched across
// routes by the out-of-order digest tracker. Each session additionally
// carries the path-set id and its (index, count) route coordinate;
// depots forward both untouched.
//
// Recovery composes per route: a torn range retries under pol with
// resume-at-acked-offset, a starved route fails over around its dead
// relays exactly as in TransferReliable, and a route that exhausts its
// attempts dies alone — its claimed ranges drain back to the queue for
// the surviving routes. The transfer fails only on a fatal error or
// when every route dies with ranges still undelivered.
//
// k <= 1 (or a planner that finds a single route) degrades to the
// single-path TransferReliable machinery.
func (s *System) TransferMultipath(srcHost, dstHost string, size int64, k int, pol RecoveryPolicy) (MultipathResult, error) {
	if size <= 0 {
		return MultipathResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	if k < 1 {
		return MultipathResult{}, fmt.Errorf("core: path count %d must be positive", k)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return MultipathResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return MultipathResult{}, err
	}
	pol = pol.withDefaults()
	paths, err := s.Planner.DisjointPaths(si, di, k)
	if err != nil {
		return MultipathResult{}, err
	}
	if len(paths) == 0 {
		paths = [][]int{{si, di}}
	}
	if len(paths) == 1 || size < 2 {
		res, err := s.TransferReliable(srcHost, dstHost, size, pol)
		if err != nil {
			return MultipathResult{}, err
		}
		return MultipathResult{TransferResult: res, Routes: [][]string{res.Path}}, nil
	}

	id, err := wire.NewSessionID()
	if err != nil {
		return MultipathResult{}, err
	}
	set, err := wire.NewSessionID()
	if err != nil {
		return MultipathResult{}, err
	}
	tid := mintTrace()
	ranges := multipathRanges(size, len(paths))
	q := newMPQueue(ranges)

	// One waiter channel serves every route session (they share the
	// id); the dispatcher folds each sink report into the queue by the
	// absolute offset the delivered range began at. Buffers are sized
	// so sinks never block: at most one report per claimed attempt,
	// and a range has at most multipathMaxClaims claimants.
	ch := s.registerWaiterN(id, len(ranges)*pol.Retry.MaxAttempts*multipathMaxClaims)
	defer s.dropWaiter(id)
	if s.cfg.Integrity {
		defer s.digests.drop(id)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case r := <-ch:
				q.report(r)
			case <-stop:
				return
			}
		}
	}()

	// Every range session carries the same whole-object digest — the
	// sink stitches the routes back into one SHA-256. Computing it
	// means regenerating and hashing the full pattern, so do it once
	// here instead of once per range session.
	var integ []wire.Option
	if s.cfg.Integrity {
		integ = integrityOptions(id, size)
	}

	start := time.Now()
	count := len(paths)
	workers := make([]*stripePath, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for w := range paths {
		workers[w] = &stripePath{path: paths[w]}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = s.mpWorker(q, workers[w], w, count, si, di, id, set, tid, integ, pol)
		}(w)
	}
	wg.Wait()

	out := MultipathResult{Routes: make([][]string, count)}
	for w := range workers {
		out.Routes[w] = s.hostNames(workers[w].current())
	}
	r := s.cfg.Metrics
	q.mu.Lock()
	out.Stolen, out.DuplicateAcks = q.stolen, q.dups
	q.mu.Unlock()
	r.Counter(MetricMultipathRangesStolen).Add(int64(out.Stolen))
	r.Counter(MetricMultipathDuplicateAcks).Add(int64(out.DuplicateAcks))

	for w, werr := range errs {
		if werr != nil && retry.IsFatal(werr) {
			err := fmt.Errorf("core: path %d/%d: %w", w, count, werr)
			s.observeTransfer(TransferResult{}, err)
			return MultipathResult{}, err
		}
	}
	if left := q.left(); left > 0 {
		err := fmt.Errorf("core: %d of %d ranges undelivered after every route died: %w",
			left, len(ranges), firstErr(errs))
		s.observeTransfer(TransferResult{}, err)
		return MultipathResult{}, err
	}
	out.TransferResult = s.result(size, time.Since(start), paths[0])
	out.Path = s.hostNames(workers[0].current())
	s.observeTransfer(out.TransferResult, nil)
	r.Counter(MetricMultipathTransfers).Inc()
	return out, nil
}

// firstErr returns the first non-nil error, or nil.
func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// mpWorker drives one pinned route: it claims chunk ranges off the
// shared queue until the object is delivered, and dies alone — with
// its claim released back to the queue — when a range exhausts its
// attempts on this route.
func (s *System) mpWorker(q *mpQueue, route *stripePath, w, count, si, di int, id, set wire.SessionID, tid wire.TraceID, integ []wire.Option, pol RecoveryPolicy) error {
	for {
		r := q.claim()
		if r == nil {
			return nil
		}
		err := s.mpRangeWorker(q, r, route, w, count, si, di, id, set, tid, integ, pol)
		q.release(r)
		if err != nil {
			s.cfg.Metrics.Counter(MetricMultipathPathFailures).Inc()
			s.emitRecovery(id.String(), tid, si, obs.KindFailover, obs.Event{
				Path:   obs.PathOf(w),
				Detail: fmt.Sprintf("route %d abandoned: %v", w, err),
			})
			return err
		}
	}
}

// mpRangeWorker drives one claimed range to completion on one route:
// sessions resume at the range's deepest acked offset, retrying under
// pol (and failing the route over around dead relays when starved),
// and it returns nil once the sink has acked the whole range — whether
// this route delivered the tail or a stealing sibling did.
func (s *System) mpRangeWorker(q *mpQueue, r *mpRange, route *stripePath, w, count, si, di int, id, set wire.SessionID, tid wire.TraceID, integ []wire.Option, pol RecoveryPolicy) error {
	reg := s.cfg.Metrics
	var lastErr error
	noProgress := 0
	for attempt := 0; attempt < pol.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			reg.Counter(MetricStripeRetries).Inc()
			s.emitRecovery(id.String(), tid, si, obs.KindRetry, obs.Event{
				Path:   obs.PathOf(w),
				Bytes:  q.ackedOf(r),
				Detail: fmt.Sprintf("%s: %v", retry.Classify(lastErr), lastErr),
			})
			if err := pol.Retry.Sleep(context.Background(), attempt-1); err != nil {
				break
			}
			if acked := q.ackedOf(r); acked > r.rng.start {
				// Bytes the continuation session does not re-send.
				reg.Counter(MetricResumedBytes).Add(acked - r.rng.start)
			}
		}
		path, gen := route.get()
		got, aerr := s.mpAttempt(q, r, path, w, count, id, set, tid, integ, pol.AttemptTimeout)
		if aerr == nil {
			return nil
		}
		if sinkErr := q.errOf(r); sinkErr != nil && retry.IsFatal(sinkErr) {
			reg.Counter(MetricRecoveryFatal).Inc()
			return fmt.Errorf("core: fatal: %w", sinkErr)
		}
		lastErr = aerr
		if retry.IsFatal(aerr) {
			reg.Counter(MetricRecoveryFatal).Inc()
			return fmt.Errorf("core: fatal: %w", aerr)
		}
		if got > 0 {
			noProgress = 0
		} else {
			noProgress++
		}
		if pol.Failover && noProgress >= pol.FailoverAfter && len(path) > 2 {
			route.failover(gen, func(cur []int) []int {
				return s.failoverPath(si, di, cur, id.String(), tid)
			})
			noProgress = 0
		}
	}
	return fmt.Errorf("core: %w after %d attempts: %w", retry.ErrExhausted, pol.Retry.MaxAttempts, lastErr)
}

// mpAttempt runs one pinned-route session along path, streaming the
// pattern for absolute offsets [acked, range end) and waiting for the
// range to finish — by this session's own full ack or a stealing
// sibling's (the range's done channel closes either way, first ack
// wins). It returns how many new bytes the queue's ack frontier
// advanced and nil exactly when the range is finished.
func (s *System) mpAttempt(q *mpQueue, r *mpRange, path []int, w, count int, id, set wire.SessionID, tid wire.TraceID, integ []wire.Option, timeout time.Duration) (int64, error) {
	before := q.ackedOf(r)
	src, dst := path[0], path[len(path)-1]
	route := make([]wire.Endpoint, 0, len(path)-2)
	for _, h := range path[1 : len(path)-1] {
		route = append(route, s.endpoints[h])
	}
	dial := lsl.TimeoutDialer(s.dialerFor(src), timeout)
	// Unlike stripes, multipath ranges keep the whole-object digest:
	// the sink's out-of-order tracker stitches the routes' contiguous
	// ranges into one end-to-end SHA-256. The options are precomputed
	// per transfer — the digest is the same for every range session.
	opts := append(traceOpt(tid), integ...)
	sess, err := lsl.OpenPath(dial, s.endpoints[src], s.endpoints[dst], route, id, set, w, count, before, opts...)
	if err != nil {
		return 0, err
	}
	first := dst
	if len(path) > 2 {
		first = path[1]
	}
	s.emitHop0(sess.ID(), tid, src, obs.KindConnect, obs.Event{Peer: s.endpoints[first].String(), Bytes: before, Path: obs.PathOf(w)})

	deadline := time.Now().Add(timeout)
	_ = sess.SetWriteDeadline(deadline)
	s.emitHop0(sess.ID(), tid, src, obs.KindFirstByte, obs.Event{Path: obs.PathOf(w)})
	werr := writeSessionPatternFrom(sess, before, r.rng.end)
	sess.Close()
	if werr == nil {
		s.emitHop0(sess.ID(), tid, src, obs.KindLastByte, obs.Event{Bytes: r.rng.end - before, Path: obs.PathOf(w)})
	}

	// Wait for the range to finish, mirroring stripeAttempt's settle:
	// a clean write waits out the deadline, a torn one only a short
	// drain window for in-flight bytes.
	settle := time.Until(deadline)
	if werr != nil || settle < drainWindow {
		settle = drainWindow
	}
	select {
	case <-r.done:
		return q.ackedOf(r) - before, nil
	case <-time.After(settle):
		got := q.ackedOf(r) - before
		if q.finished(r) {
			return got, nil
		}
		if sinkErr := q.errOf(r); sinkErr != nil {
			return got, fmt.Errorf("core: sink: %w", sinkErr)
		}
		if werr != nil {
			return got, fmt.Errorf("core: send: %w", werr)
		}
		return got, retry.AsTransient(fmt.Errorf("core: range %d not finished within %v", r.idx, settle))
	}
}
