package core

import (
	"crypto/sha256"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestMultipathRangesSizing(t *testing.T) {
	cases := []struct {
		size int64
		k    int
		want int
	}{
		// Plenty of room: rangesPerPath per route.
		{size: 8 << 20, k: 2, want: 2 * multipathRangesPerPath},
		{size: 8 << 20, k: 3, want: 3 * multipathRangesPerPath},
		// Small object: ranges shrink toward multipathMinRange...
		{size: 256 << 10, k: 2, want: 4},
		// ...but never fewer ranges than routes,
		{size: 100 << 10, k: 3, want: 3},
		// and never more ranges than bytes.
		{size: 2, k: 3, want: 2},
	}
	for _, tc := range cases {
		ranges := multipathRanges(tc.size, tc.k)
		if len(ranges) != tc.want {
			t.Fatalf("multipathRanges(%d, %d): %d ranges, want %d", tc.size, tc.k, len(ranges), tc.want)
		}
		var off int64
		for i, r := range ranges {
			if r.start != off || r.end <= r.start {
				t.Fatalf("range %d = %+v, want contiguous from %d", i, r, off)
			}
			off = r.end
		}
		if off != tc.size {
			t.Fatalf("ranges cover %d of %d bytes", off, tc.size)
		}
	}
}

func TestMPQueueClaimOrderAndSteal(t *testing.T) {
	q := newMPQueue(stripeRanges(400, 4))

	// Pending ranges come out in object order.
	a, b := q.claim(), q.claim()
	if a.idx != 0 || b.idx != 1 {
		t.Fatalf("claim order = %d, %d, want 0, 1", a.idx, b.idx)
	}
	c, d := q.claim(), q.claim()
	if c.idx != 2 || d.idx != 3 {
		t.Fatalf("claim order = %d, %d, want 2, 3", c.idx, d.idx)
	}

	// Advance two ranges unevenly, finish the other two: the next
	// claim is a steal and must pick the range with most bytes left.
	q.report(deliverResult{offset: a.rng.start, bytes: 80})                      // a: 20 left
	q.report(deliverResult{offset: b.rng.start, bytes: 10})                      // b: 90 left
	q.report(deliverResult{offset: c.rng.start, bytes: c.rng.end - c.rng.start}) // finished
	q.report(deliverResult{offset: d.rng.start, bytes: d.rng.end - d.rng.start}) // finished
	stolen := q.claim()
	if stolen != b {
		t.Fatalf("stole range %d, want %d (most bytes left)", stolen.idx, b.idx)
	}
	if q.stolen != 1 {
		t.Fatalf("stolen counter = %d, want 1", q.stolen)
	}
	// b now has multipathMaxClaims claimants; only a is stealable.
	if next := q.claim(); next != a {
		t.Fatalf("second steal got range %d, want %d", next.idx, a.idx)
	}

	// First full ack wins; the duplicate is counted, not double-closed.
	q.report(deliverResult{offset: b.rng.start, bytes: b.rng.end - b.rng.start})
	select {
	case <-b.done:
	default:
		t.Fatal("done channel not closed after full ack")
	}
	q.report(deliverResult{offset: b.rng.start, bytes: b.rng.end - b.rng.start})
	if q.dups != 1 {
		t.Fatalf("duplicate acks = %d, want 1", q.dups)
	}

	// Finish the last range; claim must then report the queue drained.
	q.report(deliverResult{offset: a.rng.start, bytes: a.rng.end - a.rng.start})
	if got := q.claim(); got != nil {
		t.Fatalf("claim on drained queue = %+v, want nil", got)
	}
	if q.left() != 0 {
		t.Fatalf("left = %d, want 0", q.left())
	}
}

func TestMPQueueReleaseRequeuesUnfinished(t *testing.T) {
	q := newMPQueue(stripeRanges(200, 2))
	a := q.claim()
	b := q.claim()

	// A sink error is recorded against the range but does not finish it.
	sinkErr := errors.New("torn")
	q.report(deliverResult{offset: a.rng.start, bytes: 30, err: sinkErr})
	if got := q.errOf(a); !errors.Is(got, sinkErr) {
		t.Fatalf("errOf = %v, want %v", got, sinkErr)
	}
	if q.ackedOf(a) != a.rng.start+30 {
		t.Fatalf("acked = %d, want %d", q.ackedOf(a), a.rng.start+30)
	}

	// Releasing the only claim on an unfinished range re-queues it: the
	// next claim is NOT a steal — it resumes the orphaned range.
	q.release(a)
	q.report(deliverResult{offset: b.rng.start, bytes: b.rng.end - b.rng.start})
	got := q.claim()
	if got != a {
		t.Fatalf("claim after release = %d, want re-queued %d", got.idx, a.idx)
	}
	if q.stolen != 0 {
		t.Fatalf("stolen = %d, want 0 (re-queue is not a steal)", q.stolen)
	}
}

func TestDigestAbsorbOutOfOrder(t *testing.T) {
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var want wire.ContentDigest
	want.Size = int64(len(payload))
	sum := sha256.Sum256(payload)
	want.Sum = sum

	// Segments delivered out of object order, with an overlap (a stolen
	// range delivered twice), must still stitch to the sender's digest.
	tr := &digestTracker{}
	tr.absorbOutOfOrder(id, 600, payload[600:])
	tr.absorbOutOfOrder(id, 250, payload[250:600])
	tr.absorbOutOfOrder(id, 0, payload[:250])
	tr.absorbOutOfOrder(id, 250, payload[250:600]) // duplicate: skipped
	done, derr := tr.finalize(id, want)
	if !done || derr != nil {
		t.Fatalf("finalize = (%v, %v), want (true, nil)", done, derr)
	}

	// An out-of-order mismatch is a true mismatch, not a false pass.
	tr = &digestTracker{}
	bad := append([]byte(nil), payload...)
	bad[700] ^= 1
	tr.absorbOutOfOrder(id, 500, bad[500:])
	tr.absorbOutOfOrder(id, 0, bad[:500])
	done, derr = tr.finalize(id, want)
	if !done || !errors.Is(derr, wire.ErrDigest) {
		t.Fatalf("finalize on corrupt bytes = (%v, %v), want mismatch", done, derr)
	}

	// Outrunning the pending cap degrades to unchecked (broken), never
	// a false mismatch.
	tr = &digestTracker{}
	huge := make([]byte, 1<<20)
	for off := int64(1); off <= maxDigestPending+1; off += int64(len(huge)) {
		tr.absorbOutOfOrder(id, off, huge)
	}
	tr.mu.Lock()
	broken := tr.m[id].broken
	pending := tr.m[id].pending
	tr.mu.Unlock()
	if !broken || pending != nil {
		t.Fatalf("cap breach: broken=%v pending=%d segments, want broken with buffer dropped", broken, len(pending))
	}
	done, derr = tr.finalize(id, want)
	if done || derr != nil {
		t.Fatalf("finalize on broken state = (%v, %v), want (false, nil)", done, derr)
	}
}

// TestMultipathTransferDelivers fans one transfer across the two
// disjoint chainTopology routes and asserts byte-exact delivery, both
// routes actually carrying traffic (per-path hop-0 trace events), and
// the end-to-end digest stitched across the routes at the sink.
func TestMultipathTransferDelivers(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := integritySystem(t, reg)

	const size, k = 256 << 10, 2
	res, err := sys.TransferMultipath("src", "dst", size, k, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if res.Bandwidth <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Routes) != k {
		t.Fatalf("routes = %v, want %d disjoint routes", res.Routes, k)
	}
	assertPath(t, res.Routes[0], "src", "relay-a", "relay-b", "dst")
	assertPath(t, res.Routes[1], "src", "spare", "dst")

	hop0 := map[int]bool{}
	for _, e := range mem.Events() {
		if p, multi := e.PathIndex(); multi && e.Hop == 0 && e.Kind == obs.KindConnect {
			hop0[p] = true
		}
	}
	for w := 0; w < k; w++ {
		if !hop0[w] {
			t.Fatalf("no hop-0 connect event for path %d (saw %v)", w, hop0)
		}
	}

	if v := reg.Counter(MetricMultipathTransfers).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricMultipathTransfers, v)
	}
	if v := reg.Counter(MetricMultipathDigestVerified).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricMultipathDigestVerified, v)
	}
	if v := reg.Counter(MetricDigestMismatches).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0", MetricDigestMismatches, v)
	}
	sys.digests.mu.Lock()
	leaked := len(sys.digests.m)
	sys.digests.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d digest states leaked after completion", leaked)
	}
}

// TestMultipathDegradesToSinglePath: k=1 must take the ordinary
// reliable-transfer machinery, and the result still reports one route.
func TestMultipathDegradesToSinglePath(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	const size = 128 << 10
	res, err := sys.TransferMultipath("src", "dst", size, 1, RecoveryPolicy{
		Retry: fastPolicy(3), AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if len(res.Routes) != 1 {
		t.Fatalf("routes = %v, want exactly one", res.Routes)
	}
	assertPath(t, res.Routes[0], "src", "relay-a", "relay-b", "dst")
	if v := reg.Counter(MetricMultipathTransfers).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0 for the single-path degenerate case", MetricMultipathTransfers, v)
	}

	if _, err := sys.TransferMultipath("src", "dst", 0, 2, RecoveryPolicy{}); err == nil {
		t.Fatal("zero-size transfer did not error")
	}
	if _, err := sys.TransferMultipath("src", "dst", size, 0, RecoveryPolicy{}); err == nil {
		t.Fatal("zero path count did not error")
	}
	if _, err := sys.TransferMultipath("nowhere", "dst", size, 2, RecoveryPolicy{}); err == nil {
		t.Fatal("unknown source host did not error")
	}
}

// TestMultipathSurvivesDepotKillMidTransfer is the multipath acceptance
// scenario: mid-transfer, the depot relay-b — on the best disjoint
// route — drops the stream and is then killed outright. The transfer
// must complete through the surviving routes (the dead route's claimed
// ranges drain back to the queue, or its worker reroutes around the
// corpse), byte-exact and with the stitched end-to-end digest intact.
func TestMultipathSurvivesDepotKillMidTransfer(t *testing.T) {
	reg := obs.NewRegistry()
	var (
		sys      *System
		killOnce sync.Once
		killErr  error
		killed   atomic.Bool
	)
	mem := &obs.MemorySink{}
	sinks := obs.MultiSink{mem, sinkFunc(func(e obs.Event) {
		// Route 0's first completed range proves relay-b carried real
		// traffic; killing it there is exactly "mid-transfer" — the
		// route's remaining ranges must reroute or drain to survivors.
		if p, multi := e.PathIndex(); multi && p == 0 && e.Hop == 0 && e.Kind == obs.KindLastByte {
			killOnce.Do(func() {
				killErr = sys.KillDepot("relay-b")
				killed.Store(true)
			})
		}
	})}
	sys, err := NewSystem(chainTopology(t), Config{
		TimeScale: 0.0005,
		Seed:      1,
		Metrics:   reg,
		Trace:     sinks,
		Integrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	const size, k = 256 << 10, 2
	res, err := sys.TransferMultipath("src", "dst", size, k, RecoveryPolicy{
		Retry: fastPolicy(6), Failover: true, FailoverAfter: 1, AttemptTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if killErr != nil {
		t.Fatalf("KillDepot: %v", killErr)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if !killed.Load() {
		t.Fatal("relay-b was never killed — the kill trigger did not fire")
	}
	if v := reg.Counter(MetricMultipathDigestVerified).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1 (digest must survive recovery)", MetricMultipathDigestVerified, v)
	}
	// Recovery must be visible in SOME layer's telemetry. The exact
	// shape depends on where the kill landed: the initiator retries or
	// fails the route over (hop-0 retry/failover events), a forwarding
	// depot reroutes around the corpse itself (depot failovers), a
	// surviving route steals the dead route's tail, or the route dies
	// outright and its ranges drain back to the queue.
	var sawRetry, sawFailover bool
	for _, e := range mem.Events() {
		switch e.Kind {
		case obs.KindRetry:
			sawRetry = true
		case obs.KindFailover:
			sawFailover = true
		}
	}
	died := reg.Counter(MetricMultipathPathFailures).Value()
	depotReroutes := reg.Counter(depot.MetricFailovers).Value()
	if !sawRetry && !sawFailover && depotReroutes == 0 && res.Stolen == 0 && died == 0 {
		t.Fatalf("no visible recovery after the kill: retry=%v failover=%v depot failovers=%d stolen=%d path failures=%d",
			sawRetry, sawFailover, depotReroutes, res.Stolen, died)
	}
}

// TestMultipathPathOptionsOnWire asserts the sessions of a multipath
// transfer actually carry the path-set coordinate end to end: every
// depot-observed session of the transfer reports a path index below
// the route count, and the depot's session table exposes it.
func TestMultipathPathOptionsOnWire(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := integritySystem(t, reg)

	const size, k = 192 << 10, 2
	if _, err := sys.TransferMultipath("src", "dst", size, k, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 5 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	depotPaths := map[int]bool{}
	for _, e := range mem.Events() {
		if p, multi := e.PathIndex(); multi && e.Hop > 0 {
			if p < 0 || p >= k {
				t.Fatalf("depot event carries path %d outside [0,%d): %+v", p, k, e)
			}
			depotPaths[p] = true
		}
	}
	if len(depotPaths) != k {
		t.Fatalf("depot events saw paths %v, want all %d routes", depotPaths, k)
	}
	// The per-route gauge drains to zero once the depots' handlers wind
	// down — which can lag the initiator's completion by a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v := reg.Gauge(depot.MetricActivePaths).Value(); v == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d after completion, want 0",
				depot.MetricActivePaths, reg.Gauge(depot.MetricActivePaths).Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
