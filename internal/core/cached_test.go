package core

import (
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// cachedSystem is chainSystem with a depot cache on every host.
func cachedSystem(t *testing.T, reg *obs.Registry) (*System, *obs.MemorySink) {
	t.Helper()
	mem := &obs.MemorySink{}
	sys, err := NewSystem(chainTopology(t), Config{
		TimeScale:  0.0005,
		Seed:       1,
		Metrics:    reg,
		Trace:      mem,
		CacheBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys, mem
}

func cachedPolicy() RecoveryPolicy {
	return RecoveryPolicy{Retry: fastPolicy(4), AttemptTimeout: 3 * time.Second}
}

// TestCachedColdThenWarm is the subsystem's core scenario: the first
// transfer of an object runs entirely from the origin and populates
// every relay cache it traverses; the repeat transfer of the same
// object is served out of the cache nearest the destination with zero
// origin bytes.
func TestCachedColdThenWarm(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := cachedSystem(t, reg)

	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	const size = 256 << 10

	cold, err := sys.TransferCached("src", "dst", id, size, cachedPolicy())
	if err != nil {
		t.Fatalf("cold transfer: %v", err)
	}
	if cold.Bytes != size || cold.OriginBytes != size || cold.CachedBytes != 0 {
		t.Fatalf("cold = bytes %d origin %d cached %d, want all-origin %d",
			cold.Bytes, cold.OriginBytes, cold.CachedBytes, int64(size))
	}
	if cold.Holder != "" {
		t.Fatalf("cold run found holder %q before anything was cached", cold.Holder)
	}
	assertPath(t, cold.Path, "src", "relay-a", "relay-b", "dst")

	// The cold run's forwarded traffic must have populated both relays.
	digest := depot.PatternDigest(id, size)
	for _, host := range []string{"relay-a", "relay-b"} {
		c := sys.DepotCache(host)
		if c == nil {
			t.Fatalf("DepotCache(%s) = nil", host)
		}
		if !c.Holds(digest, wire.ByteRange{Off: 0, Len: size}) {
			t.Fatalf("%s cache does not hold the object after the cold run", host)
		}
	}

	warm, err := sys.TransferCached("src", "dst", id, size, cachedPolicy())
	if err != nil {
		t.Fatalf("warm transfer: %v", err)
	}
	if warm.Bytes != size {
		t.Fatalf("warm bytes = %d, want %d", warm.Bytes, size)
	}
	if warm.OriginBytes != 0 {
		t.Fatalf("warm origin bytes = %d, want 0 (full cache hit)", warm.OriginBytes)
	}
	if warm.CachedBytes != size {
		t.Fatalf("warm cached bytes = %d, want %d", warm.CachedBytes, size)
	}
	// Both relays hold the whole object; the tie must go to the one
	// nearer the destination.
	if warm.Holder != "relay-b" {
		t.Fatalf("warm holder = %q, want relay-b", warm.Holder)
	}
	if v := reg.Counter(MetricCacheServedBytes).Value(); v != size {
		t.Fatalf("%s = %d, want %d", MetricCacheServedBytes, v, int64(size))
	}
	if v := reg.Counter(MetricCacheFallbacks).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0", MetricCacheFallbacks, v)
	}

	var sawHit bool
	for _, e := range mem.Events() {
		if e.Kind == obs.KindCacheHit {
			sawHit = true
		}
	}
	if !sawHit {
		t.Fatal("trace has no cache-hit event from the warm run")
	}
}

// TestCachedPartialSuffixSplice: when a relay caches only a suffix of
// the object, the transfer must splice — origin sends exactly the cold
// prefix, the holder serves the cached suffix — and the sink's
// end-to-end digest must still verify across the seam.
func TestCachedPartialSuffixSplice(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := cachedSystem(t, reg)

	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	const (
		size = 256 << 10
		half = size / 2
	)
	digest := depot.PatternDigest(id, size)
	suffix := make([]byte, size-half)
	depot.FillPattern(suffix, id, half)
	if err := sys.DepotCache("relay-b").Put(digest, half, suffix); err != nil {
		t.Fatal(err)
	}

	res, err := sys.TransferCached("src", "dst", id, size, cachedPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if res.Holder != "relay-b" {
		t.Fatalf("holder = %q, want relay-b", res.Holder)
	}
	if res.OriginBytes != half {
		t.Fatalf("origin bytes = %d, want the %d-byte cold prefix", res.OriginBytes, int64(half))
	}
	if res.CachedBytes != size-half {
		t.Fatalf("cached bytes = %d, want the %d-byte suffix", res.CachedBytes, int64(size-half))
	}
	if v := reg.Counter(MetricDigestMismatches).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0", MetricDigestMismatches, v)
	}
}

// TestCachedTamperFallsBackToOrigin: a tampered cache span fails its
// CRC when the holder reads it back, so the serve dies; the transfer
// must complete anyway from the origin, and the sink's whole-object
// digest must verify — corruption in a cache costs throughput, never
// correctness.
func TestCachedTamperFallsBackToOrigin(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := cachedSystem(t, reg)

	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	const size = 256 << 10
	if _, err := sys.TransferCached("src", "dst", id, size, cachedPolicy()); err != nil {
		t.Fatalf("cold transfer: %v", err)
	}

	digest := depot.PatternDigest(id, size)
	// Both relays cached the object on the cold run; tamper both so the
	// warm run cannot be rescued by the second cache.
	for _, host := range []string{"relay-a", "relay-b"} {
		if !sys.DepotCache(host).Tamper(digest, 0) {
			t.Fatalf("Tamper found nothing to corrupt on %s", host)
		}
	}

	warm, err := sys.TransferCached("src", "dst", id, size, cachedPolicy())
	if err != nil {
		t.Fatalf("warm transfer after tamper: %v", err)
	}
	if warm.Bytes != size {
		t.Fatalf("bytes = %d, want %d", warm.Bytes, size)
	}
	if warm.OriginBytes == 0 {
		t.Fatal("tampered caches served the object without any origin fallback")
	}
	if v := reg.Counter(MetricCacheFallbacks).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricCacheFallbacks, v)
	}
	// The delivered object verified end to end despite the detour.
	if v := reg.Counter(MetricDigestMismatches).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0", MetricDigestMismatches, v)
	}
}

// TestCachedWithoutCachesDegradesToOrigin: on a system with no caches
// configured, TransferCached is just a reliable origin transfer — the
// probes are refused and ignored.
func TestCachedWithoutCachesDegradesToOrigin(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	const size = 128 << 10
	res, err := sys.TransferCached("src", "dst", id, size, cachedPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size || res.OriginBytes != size || res.CachedBytes != 0 {
		t.Fatalf("result = bytes %d origin %d cached %d, want all-origin %d",
			res.Bytes, res.OriginBytes, res.CachedBytes, int64(size))
	}
	if res.Holder != "" {
		t.Fatalf("holder = %q on a cacheless system", res.Holder)
	}
	if sys.DepotCache("relay-a") != nil {
		t.Fatal("DepotCache returned a cache on a cacheless system")
	}
}

func TestSuffixStart(t *testing.T) {
	cases := []struct {
		name   string
		ranges []wire.ByteRange
		size   int64
		want   int64
	}{
		{"empty", nil, 100, 100},
		{"full", []wire.ByteRange{{Off: 0, Len: 100}}, 100, 0},
		{"suffix", []wire.ByteRange{{Off: 40, Len: 60}}, 100, 40},
		{"prefix only", []wire.ByteRange{{Off: 0, Len: 60}}, 100, 100},
		{"hole before suffix", []wire.ByteRange{{Off: 0, Len: 10}, {Off: 50, Len: 50}}, 100, 50},
		{"interior", []wire.ByteRange{{Off: 10, Len: 50}}, 100, 100},
	}
	for _, tc := range cases {
		if got := suffixStart(tc.ranges, tc.size); got != tc.want {
			t.Errorf("%s: suffixStart = %d, want %d", tc.name, got, tc.want)
		}
	}
}
