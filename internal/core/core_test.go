package core

import (
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/topo"
)

// smallSystem builds a fast in-process deployment for tests.
func smallSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(topo.TwoPath(), Config{TimeScale: 0.0005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestSystemConstruction(t *testing.T) {
	sys := smallSystem(t)
	if sys.Topo.N() != 5 {
		t.Fatalf("hosts = %d", sys.Topo.N())
	}
	if sys.Planner.Replans() != 1 {
		t.Fatalf("replans = %d", sys.Planner.Replans())
	}
	// Endpoints are unique.
	seen := map[string]bool{}
	for i := 0; i < sys.Topo.N(); i++ {
		e := sys.Endpoint(i).String()
		if seen[e] {
			t.Fatalf("duplicate endpoint %s", e)
		}
		seen[e] = true
	}
}

func TestDirectTransferDelivers(t *testing.T) {
	sys := smallSystem(t)
	res, err := sys.DirectTransfer(topo.UCSB, topo.UIUC, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 256<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.Bandwidth <= 0 || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Path) != 2 {
		t.Fatalf("path = %v", res.Path)
	}
}

// TestTransferWeighted: a deployment with fair sharing enabled on
// every depot still delivers a weighted transfer end to end — the
// weight option rides the header through forwarding depots and the
// work-conserving schedulers cost a sole session nothing.
func TestTransferWeighted(t *testing.T) {
	sys, err := NewSystem(topo.TwoPath(), Config{
		TimeScale: 0.0005,
		Seed:      1,
		FairShare: &fairshare.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	res, err := sys.TransferWeighted(topo.UCSB, topo.UIUC, 256<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 256<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.Bandwidth <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestScheduledTransferUsesPlannedPath(t *testing.T) {
	sys := smallSystem(t)
	planned, err := sys.PlannedPath(topo.UCSB, topo.UIUC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Transfer(topo.UCSB, topo.UIUC, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Path, ",") != strings.Join(planned, ",") {
		t.Fatalf("transfer path %v != planned %v", res.Path, planned)
	}
	if len(planned) > 2 {
		// Relay hosts must be depots.
		for _, name := range planned[1 : len(planned)-1] {
			i, _ := sys.Topo.HostIndex(name)
			if !sys.Topo.Hosts[i].Depot {
				t.Fatalf("relay %s is not a depot", name)
			}
		}
	}
}

func TestTransferValidation(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.Transfer("nope", topo.UIUC, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := sys.Transfer(topo.UCSB, "nope", 1); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if _, err := sys.Transfer(topo.UCSB, topo.UIUC, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := sys.Transfer(topo.UCSB, topo.UIUC, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestMulticastDeliversToAllLeaves(t *testing.T) {
	sys := smallSystem(t)
	res, err := sys.Multicast(topo.UCSB, []string{topo.UIUC, topo.UF}, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaves) != 2 {
		t.Fatalf("leaves = %v", res.Leaves)
	}
	if res.Bytes != 2*64<<10 {
		t.Fatalf("delivered bytes = %d, want both leaves' copies", res.Bytes)
	}
	wantLeaves := map[string]bool{topo.UIUC: true, topo.UF: true}
	for _, l := range res.Leaves {
		if !wantLeaves[l] {
			t.Fatalf("unexpected leaf %s", l)
		}
	}
	if res.Tree == nil || res.Tree.Size() < 3 {
		t.Fatalf("tree = %+v", res.Tree)
	}
}

func TestMulticastValidation(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.Multicast(topo.UCSB, nil, 1); err == nil {
		t.Fatal("empty destination list accepted")
	}
	if _, err := sys.Multicast("nope", []string{topo.UIUC}, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestSeveralSequentialTransfers(t *testing.T) {
	sys := smallSystem(t)
	for i := 0; i < 4; i++ {
		if _, err := sys.Transfer(topo.UCSB, topo.UF, 64<<10); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	sys, err := NewSystem(topo.TwoPath(), Config{TimeScale: 0.0005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close()
}

// miniWindowTopo is a three-host line: 64 KB windows, 160 ms end-to-end
// RTT, a well-provisioned depot in the middle at 80 ms from each end.
// The long RTTs keep the emulated physics far above goroutine-scheduling
// noise, so the speedup assertion is stable under load.
func miniWindowTopo() *topo.Topology {
	tp, err := topo.New("mini", []topo.Host{
		{Name: "src.edu", Site: "src", SndBuf: 64 << 10, RcvBuf: 64 << 10},
		{Name: "mid.pop", Site: "mid", SndBuf: 8 << 20, RcvBuf: 8 << 20,
			Depot: true, ForwardRate: 100e6, PipelineBytes: 8 << 20},
		{Name: "dst.edu", Site: "dst", SndBuf: 64 << 10, RcvBuf: 64 << 10},
	})
	if err != nil {
		panic(err)
	}
	src, mid, dst := tp.MustHost("src.edu"), tp.MustHost("mid.pop"), tp.MustHost("dst.edu")
	tp.SetLink(src, mid, topo.Link{RTT: 0.080, Capacity: 100e6, Loss: 1e-6})
	tp.SetLink(mid, dst, topo.Link{RTT: 0.080, Capacity: 100e6, Loss: 1e-6})
	tp.SetLink(src, dst, topo.Link{RTT: 0.160, Capacity: 100e6, Loss: 2e-6})
	tp.MeasureNoise = 0.02
	return tp
}

func TestWindowLimitedLogisticalEffectOnWire(t *testing.T) {
	// On a topology with tiny socket buffers and a mid-path depot, the
	// real wire stack should show the logistical effect: the relayed
	// path beats the direct one. Uses generous latency so emulation
	// overhead is negligible.
	tp := miniWindowTopo()
	sys, err := NewSystem(tp, Config{TimeScale: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const size = 256 << 10
	direct, err := sys.DirectTransfer("src.edu", "dst.edu", size)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := sys.PlannedPath("src.edu", "dst.edu")
	if err != nil {
		t.Fatal(err)
	}
	if len(planned) < 3 {
		t.Fatalf("planner chose direct (%v); topology should force a relay", planned)
	}
	relayed, err := sys.Transfer("src.edu", "dst.edu", size)
	if err != nil {
		t.Fatal(err)
	}
	speedup := relayed.Bandwidth / direct.Bandwidth
	if speedup < 1.2 {
		t.Fatalf("wire-level logistical speedup = %.2f, want > 1.2 (direct %v, relayed %v)",
			speedup, direct.Elapsed, relayed.Elapsed)
	}
}

func TestFeedObservationsAndReplan(t *testing.T) {
	sys, err := NewSystem(topo.TwoPath(), Config{
		TimeScale:        0.0005,
		Seed:             1,
		FeedObservations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	before := sys.Planner.Monitor.Updates()
	if _, err := sys.DirectTransfer(topo.UCSB, topo.UIUC, 64<<10); err != nil {
		t.Fatal(err)
	}
	if got := sys.Planner.Monitor.Updates(); got != before+1 {
		t.Fatalf("observations = %d, want %d", got, before+1)
	}
	// Relayed transfers do not pollute the end-to-end series.
	planned, err := sys.PlannedPath(topo.UCSB, topo.UIUC)
	if err != nil {
		t.Fatal(err)
	}
	if len(planned) > 2 {
		mid := sys.Planner.Monitor.Updates()
		if _, err := sys.Transfer(topo.UCSB, topo.UIUC, 64<<10); err != nil {
			t.Fatal(err)
		}
		if got := sys.Planner.Monitor.Updates(); got != mid {
			t.Fatalf("relayed transfer recorded an observation: %d -> %d", mid, got)
		}
	}

	replans := sys.Planner.Replans()
	if err := sys.Replan(); err != nil {
		t.Fatal(err)
	}
	if sys.Planner.Replans() != replans+1 {
		t.Fatal("Replan did not rebuild the plan")
	}
}

func TestTransferHopByHop(t *testing.T) {
	sys := smallSystem(t)
	res, err := sys.TransferHopByHop(topo.UCSB, topo.UIUC, 96<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 96<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	// The planned path for this pair is relayed; the bytes arrived, so
	// the depots' route tables carried the session end to end without a
	// source route.
	if len(res.Path) < 2 {
		t.Fatalf("path = %v", res.Path)
	}
	if _, err := sys.TransferHopByHop("nope", topo.UIUC, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := sys.TransferHopByHop(topo.UCSB, topo.UIUC, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestConcurrentTransfers(t *testing.T) {
	sys := smallSystem(t)
	pairs := [][2]string{
		{topo.UCSB, topo.UIUC},
		{topo.UCSB, topo.UF},
		{topo.UIUC, topo.UF},
		{topo.UF, topo.UCSB},
		{topo.Denver, topo.Houston},
		{topo.UIUC, topo.UCSB},
	}
	errs := make(chan error, len(pairs))
	for _, p := range pairs {
		p := p
		go func() {
			_, err := sys.Transfer(p[0], p[1], 48<<10)
			errs <- err
		}()
	}
	for range pairs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
