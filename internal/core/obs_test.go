package core

import (
	"testing"

	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/topo"
)

// TestSystemTelemetryThreading builds a system with the full
// observability configuration and checks one transfer shows up
// everywhere: transfer metrics, depot counters aggregated across
// hosts, and an ordered hop-0 + per-hop trace.
func TestSystemTelemetryThreading(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &obs.MemorySink{}
	sys, err := NewSystem(topo.TwoPath(), Config{
		TimeScale: 0.0005,
		Seed:      1,
		Metrics:   reg,
		Trace:     sink,
		Sessions:  obs.NewSessionTable(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	const size = 256 << 10
	res, err := sys.Transfer(topo.UCSB, topo.UIUC, size)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricTransfers]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricTransfers, got)
	}
	if got := snap.Counters[MetricTransferBytes]; got != size {
		t.Fatalf("%s = %d, want %d", MetricTransferBytes, got, size)
	}
	if hs := snap.Histograms[MetricTransferSeconds]; hs.Count != 1 {
		t.Fatalf("%s count = %d", MetricTransferSeconds, hs.Count)
	}
	// The delivering depot reported into the same registry.
	if got := snap.Counters["depot_bytes_delivered_total"]; got != size {
		t.Fatalf("depot_bytes_delivered_total = %d, want %d", got, size)
	}

	// The trace carries the initiator's hop-0 lifecycle, in order, and
	// a deliver event from the final depot at the last hop.
	var kinds0 []string
	deliverHop := -1
	for _, e := range sink.Events() {
		if e.Hop == 0 {
			kinds0 = append(kinds0, e.Kind)
		}
		if e.Kind == obs.KindDeliver {
			deliverHop = e.Hop
		}
	}
	want := []string{obs.KindConnect, obs.KindFirstByte, obs.KindLastByte}
	if len(kinds0) != len(want) {
		t.Fatalf("hop-0 events = %v, want %v", kinds0, want)
	}
	for i := range want {
		if kinds0[i] != want[i] {
			t.Fatalf("hop-0 events = %v, want %v", kinds0, want)
		}
	}
	wantHops := len(res.Path) - 1
	if deliverHop != wantHops {
		t.Fatalf("deliver at hop %d, want %d (path %v)", deliverHop, wantHops, res.Path)
	}
}
