package core

import (
	"sync"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/obs"
)

// oneTrace asserts every trace-stamped event shares a single trace id
// and returns it.
func oneTrace(t *testing.T, events []obs.Event) string {
	t.Helper()
	ids := map[string]bool{}
	for _, e := range events {
		if e.Trace != "" {
			ids[e.Trace] = true
		}
	}
	if len(ids) != 1 {
		t.Fatalf("want exactly one trace id, got %d: %v", len(ids), ids)
	}
	for id := range ids {
		return id
	}
	return ""
}

// TestTraceIDSpansRetryAndFailover: the wire-propagated trace id is the
// correlation key that survives what session ids do not. A reliable
// transfer whose depot dies mid-stream retries, fails over to the spare
// route, and resumes — at least two sessions, two paths — yet every
// event of the whole story must carry the one id minted at hop 0.
func TestTraceIDSpansRetryAndFailover(t *testing.T) {
	reg := obs.NewRegistry()
	var (
		sys      *System
		killOnce sync.Once
	)
	sys, mem := chainSystem(t, reg, sinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindRetry && e.Hop == 0 {
			killOnce.Do(func() { _ = sys.KillDepot("relay-b") })
		}
	}))

	f, err := sys.Fault("relay-b")
	if err != nil {
		t.Fatal(err)
	}
	f.DropAfter(96 << 10)

	const size = 256 << 10
	res, err := sys.TransferReliable("src", "dst", size, RecoveryPolicy{
		Retry: fastPolicy(6), Failover: true, FailoverAfter: 1, AttemptTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	assertPath(t, res.Path, "src", "spare", "dst")

	events := mem.Events()
	tid := oneTrace(t, events)

	// Events of interest must all be stamped: the first attempt's chain,
	// the recovery markers, and the rerouted continuation's depot hops.
	sessions := map[string]bool{}
	var sawRetry, sawFailover, sawResume, sawDepotHop bool
	for _, e := range events {
		switch e.Kind {
		case obs.KindRetry:
			sawRetry = true
		case obs.KindFailover:
			sawFailover = true
		case obs.KindResume:
			sawResume = true
		}
		if e.Kind == obs.KindSample {
			continue
		}
		if e.Trace != tid {
			t.Fatalf("event missing the trace id: %+v", e)
		}
		if e.Session != "" {
			sessions[e.Session] = true
		}
		if e.Hop > 0 {
			sawDepotHop = true
		}
	}
	if !sawRetry || !sawFailover || !sawResume {
		t.Fatalf("recovery events incomplete: retry=%v failover=%v resume=%v",
			sawRetry, sawFailover, sawResume)
	}
	if !sawDepotHop {
		t.Fatal("no depot-side event carried the trace: wire propagation broken")
	}
	if len(sessions) < 2 {
		t.Fatalf("expected the continuation to be a new session, saw %v", sessions)
	}
}

// TestTraceStripedKillAssemblesOneTimeline is the tracing acceptance
// scenario: a striped multi-hop transfer has a depot killed mid-stream,
// so one generation fails over to the spare route and the dead
// stripes resume. Fed through the collector, the wreckage must
// assemble into ONE trace whose timeline has causally ordered spans
// for every hop of every stripe, including the rerouted continuation.
func TestTraceStripedKillAssemblesOneTimeline(t *testing.T) {
	reg := obs.NewRegistry()
	var (
		sys      *System
		killOnce sync.Once
	)
	sys, mem := chainSystem(t, reg, sinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindRetry && e.Hop == 0 {
			killOnce.Do(func() { _ = sys.KillDepot("relay-b") })
		}
	}))

	f, err := sys.Fault("relay-b")
	if err != nil {
		t.Fatal(err)
	}
	f.DropAfter(96 << 10)

	const size, stripes = 256 << 10, 4
	res, err := sys.TransferStriped("src", "dst", size, stripes, RecoveryPolicy{
		Retry: fastPolicy(6), Failover: true, FailoverAfter: 1, AttemptTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	assertPath(t, res.Path, "src", "spare", "dst")

	events := mem.Events()
	tid := oneTrace(t, events)

	// Every stripe's initiator leg must be stamped, and so must the
	// depot hops the wire carried the id to — including the spare.
	spareIdx, _ := sys.Topo.HostIndex("spare")
	spareEP := sys.Endpoint(spareIdx).String()
	hop0 := map[int]bool{}
	var sawSpare bool
	for _, e := range events {
		if e.Trace != tid && e.Kind != obs.KindSample {
			t.Fatalf("event missing the trace id: %+v", e)
		}
		if k, ok := e.StripeIndex(); ok && e.Hop == 0 && e.Kind == obs.KindConnect {
			hop0[k] = true
		}
		if e.Hop > 0 && e.Node == spareEP {
			sawSpare = true
		}
	}
	for k := 0; k < stripes; k++ {
		if !hop0[k] {
			t.Fatalf("stripe %d's hop-0 connect is not trace-stamped: %v", k, hop0)
		}
	}
	if !sawSpare {
		t.Fatal("rerouted continuation never reported from the spare depot")
	}

	// Collector assembly: one timeline, causally ordered, with spans for
	// every stripe.
	col := obs.NewCollector(0)
	defer col.Close()
	for _, e := range events {
		col.Emit(e)
	}
	col.Sync()
	sums := col.Summaries()
	if len(sums) != 1 {
		t.Fatalf("collector assembled %d traces, want 1: %+v", len(sums), sums)
	}
	tl, ok := col.Timeline(tid)
	if !ok {
		t.Fatalf("trace %s not assembled", tid)
	}
	// Striping resumes under the SAME session id (a stripe's retry is a
	// continuation, not a new session) — exactly why the trace id, not
	// the session id, is the correlation key the collector needs.
	if tl.Summary.Stripes != stripes || tl.Summary.Retries < 1 || tl.Summary.Failovers < 1 {
		t.Fatalf("summary = %+v", tl.Summary)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Time.Before(tl.Events[i-1].Time) {
			t.Fatalf("timeline not time-ordered at %d", i)
		}
	}
	stripesSeen := map[int]bool{}
	for _, sp := range tl.Spans {
		if k, ok := stripeOf(sp.Stripe); ok {
			stripesSeen[k] = true
		}
		// Within a span the lifecycle must be causal.
		if !sp.Connect.IsZero() && !sp.First.IsZero() && sp.First.Before(sp.Connect) {
			t.Fatalf("span first-byte precedes connect: %+v", sp)
		}
		if !sp.First.IsZero() && !sp.Last.IsZero() && sp.Last.Before(sp.First) {
			t.Fatalf("span last-byte precedes first-byte: %+v", sp)
		}
	}
	if len(stripesSeen) != stripes {
		t.Fatalf("spans cover %d stripes, want %d", len(stripesSeen), stripes)
	}
}

// stripeOf unpacks a HopSpan stripe pointer.
func stripeOf(p *int) (int, bool) {
	if p == nil {
		return 0, false
	}
	return *p, true
}

// TestTraceIDsAreDistinctAcrossTransfers: each logical transfer mints
// its own id, so concurrent transfers never collapse into one timeline
// in the collector.
func TestTraceIDsAreDistinctAcrossTransfers(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := chainSystem(t, reg, nil)

	for i := 0; i < 3; i++ {
		if _, err := sys.Transfer("src", "dst", 32<<10); err != nil {
			t.Fatal(err)
		}
	}
	ids := map[string]bool{}
	for _, e := range mem.Events() {
		if e.Trace != "" {
			ids[e.Trace] = true
		}
	}
	if len(ids) != 3 {
		t.Fatalf("3 transfers minted %d trace ids: %v", len(ids), ids)
	}
}
