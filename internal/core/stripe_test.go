package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
)

func TestStripeRangesPartition(t *testing.T) {
	cases := []struct {
		size int64
		n    int
	}{
		{size: 10, n: 1},
		{size: 10, n: 3},
		{size: 1 << 20, n: 4},
		{size: 7, n: 7},
	}
	for _, tc := range cases {
		ranges := stripeRanges(tc.size, tc.n)
		if len(ranges) != tc.n {
			t.Fatalf("stripeRanges(%d, %d): %d ranges", tc.size, tc.n, len(ranges))
		}
		var off int64
		for k, r := range ranges {
			if r.start != off {
				t.Fatalf("stripe %d starts at %d, want %d (gap or overlap)", k, r.start, off)
			}
			if r.end <= r.start {
				t.Fatalf("stripe %d is empty: %+v", k, r)
			}
			if got := stripeFor(ranges, r.start); got != k {
				t.Fatalf("stripeFor(%d) = %d, want %d", r.start, got, k)
			}
			if got := stripeFor(ranges, r.end-1); got != k {
				t.Fatalf("stripeFor(%d) = %d, want %d", r.end-1, got, k)
			}
			off = r.end
		}
		if off != tc.size {
			t.Fatalf("ranges cover %d of %d bytes", off, tc.size)
		}
	}
	if got := stripeFor(stripeRanges(10, 2), 10); got != -1 {
		t.Fatalf("stripeFor(out of range) = %d, want -1", got)
	}
}

// TestStripedTransferDelivers moves an object over four parallel
// sublink chains sharing one session id and asserts byte-exact
// reassembly plus per-stripe observability: every stripe must appear in
// the initiator's hop-0 trace and in the depots' hop events.
func TestStripedTransferDelivers(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := chainSystem(t, reg, nil)

	const size, stripes = 256 << 10, 4
	res, err := sys.TransferStriped("src", "dst", size, stripes, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if res.Bandwidth <= 0 {
		t.Fatalf("result = %+v", res)
	}
	assertPath(t, res.Path, "src", "relay-a", "relay-b", "dst")

	hop0 := map[int]bool{}
	depotStriped := false
	for _, e := range mem.Events() {
		k, striped := e.StripeIndex()
		if e.Kind == obs.KindConnect && e.Hop == 0 && striped {
			hop0[k] = true
		}
		if e.Hop > 0 && striped && k > 0 {
			depotStriped = true
		}
	}
	for k := 0; k < stripes; k++ {
		if !hop0[k] {
			t.Fatalf("no hop-0 connect event for stripe %d (saw %v)", k, hop0)
		}
	}
	if !depotStriped {
		t.Fatal("depot events never carried a stripe index")
	}
	if v := reg.Counter(MetricStripedTransfers).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricStripedTransfers, v)
	}
	if v := reg.Gauge(depot.MetricActiveStripes).Value(); v != 0 {
		t.Fatalf("%s = %d after completion, want 0", depot.MetricActiveStripes, v)
	}
}

// TestStripedKillOneStripeMidTransfer is the striping recovery
// acceptance test: a one-shot depot fault tears down exactly one
// stripe's transport mid-transfer. The killed stripe must retry and
// resume while its siblings stream on undisturbed — visible as exactly
// one stripe with more than one connect attempt — and the reassembled
// object must still be byte-exact.
func TestStripedKillOneStripeMidTransfer(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := chainSystem(t, reg, nil)

	f, err := sys.Fault("relay-b")
	if err != nil {
		t.Fatal(err)
	}
	f.DropAfter(96 << 10)

	const size, stripes = 256 << 10, 4
	res, err := sys.TransferStriped("src", "dst", size, stripes, RecoveryPolicy{
		Retry: fastPolicy(5), AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if f.Injected() != 1 {
		t.Fatalf("injected faults = %d, want exactly 1", f.Injected())
	}

	connects := map[int]int{}
	var sawStripeRetry bool
	for _, e := range mem.Events() {
		if e.Hop != 0 {
			continue
		}
		switch e.Kind {
		case obs.KindConnect:
			if k, ok := e.StripeIndex(); ok {
				connects[k]++
			}
		case obs.KindRetry:
			sawStripeRetry = true
		}
	}
	if !sawStripeRetry {
		t.Fatal("no hop-0 retry event for the killed stripe")
	}
	var retried int
	for k := 0; k < stripes; k++ {
		switch n := connects[k]; {
		case n < 1:
			t.Fatalf("stripe %d never connected: %v", k, connects)
		case n > 1:
			retried++
		}
	}
	if retried != 1 {
		t.Fatalf("%d stripes reconnected, want exactly 1 (siblings must not restart): %v", retried, connects)
	}
	if v := reg.Counter(MetricStripeRetries).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricStripeRetries, v)
	}
	if v := reg.Counter(MetricResumedBytes).Value(); v <= 0 {
		t.Fatalf("%s = %d, want > 0 (killed stripe restarted from scratch)", MetricResumedBytes, v)
	}
}

// TestStripedDegradesGracefully covers the edges: a stripe count larger
// than the object shrinks to one stripe per byte, and one stripe is
// exactly a reliable transfer.
func TestStripedDegradesGracefully(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	res, err := sys.TransferStriped("src", "dst", 3, 8, RecoveryPolicy{
		Retry: fastPolicy(3), AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 3 {
		t.Fatalf("bytes = %d, want 3", res.Bytes)
	}

	res, err = sys.TransferStriped("src", "dst", 64<<10, 1, RecoveryPolicy{
		Retry: fastPolicy(3), AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 64<<10 {
		t.Fatalf("bytes = %d, want %d", res.Bytes, 64<<10)
	}

	if _, err := sys.TransferStriped("src", "dst", 0, 4, DefaultRecovery()); err == nil {
		t.Fatal("zero-size transfer accepted")
	}
	if _, err := sys.TransferStriped("src", "dst", 1<<10, 0, DefaultRecovery()); err == nil {
		t.Fatal("zero stripe count accepted")
	}
}

// TestStripedCorruptionIsFatal: silent corruption on one stripe must
// abort the whole striped transfer without burning the retry budget,
// exactly like the unstriped reliable path.
func TestStripedCorruptionIsFatal(t *testing.T) {
	reg := obs.NewRegistry()
	sys, _ := chainSystem(t, reg, nil)

	f, err := sys.Fault("relay-a")
	if err != nil {
		t.Fatal(err)
	}
	f.CorruptAfter(32 << 10)

	_, err = sys.TransferStriped("src", "dst", 128<<10, 4, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("corrupted striped transfer reported success")
	}
	if errors.Is(err, retry.ErrExhausted) {
		t.Fatalf("err = %v: corruption burned the retry budget instead of aborting", err)
	}
	if !strings.Contains(err.Error(), "pattern mismatch") {
		t.Fatalf("err = %v, want the sink's pattern mismatch", err)
	}
	if v := reg.Counter(MetricRecoveryFatal).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricRecoveryFatal, v)
	}
}
