package core

import (
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/ctl"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/topo"
)

// controlTopo is a diamond: two well-provisioned relay paths (the
// primary through relay-a slightly better than the backup through
// relay-b, well outside ε) over a weak direct link — so the minimax
// plan prefers relay-a until its leg degrades, then must move to
// relay-b.
func controlTopo() *topo.Topology {
	tp, err := topo.New("control-diamond", []topo.Host{
		{Name: "src.edu", Site: "src", SndBuf: 8 << 20, RcvBuf: 8 << 20},
		{Name: "relay-a", Site: "a", SndBuf: 8 << 20, RcvBuf: 8 << 20,
			Depot: true, ForwardRate: 200e6},
		{Name: "relay-b", Site: "b", SndBuf: 8 << 20, RcvBuf: 8 << 20,
			Depot: true, ForwardRate: 200e6},
		{Name: "dst.edu", Site: "dst", SndBuf: 8 << 20, RcvBuf: 8 << 20},
	})
	if err != nil {
		panic(err)
	}
	src, a, b, dst := tp.MustHost("src.edu"), tp.MustHost("relay-a"), tp.MustHost("relay-b"), tp.MustHost("dst.edu")
	tp.SetLink(src, a, topo.Link{RTT: 0.020, Capacity: 100e6, Loss: 1e-6})
	tp.SetLink(a, dst, topo.Link{RTT: 0.020, Capacity: 100e6, Loss: 1e-6})
	tp.SetLink(src, b, topo.Link{RTT: 0.020, Capacity: 80e6, Loss: 1e-6})
	tp.SetLink(b, dst, topo.Link{RTT: 0.020, Capacity: 80e6, Loss: 1e-6})
	tp.SetLink(src, dst, topo.Link{RTT: 0.040, Capacity: 10e6, Loss: 1e-6})
	tp.SetLink(a, b, topo.Link{RTT: 0.020, Capacity: 50e6, Loss: 1e-6})
	tp.MeasureNoise = 0.01
	return tp
}

// tracePath reconstructs the hops a session actually traversed from its
// depot Connect events: the source endpoint, then each hop's dialed
// peer in hop order.
func tracePath(sink *obs.MemorySink, srcEP, id string) []string {
	byHop := map[int]string{}
	maxHop := 0
	for _, e := range sink.Session(id) {
		if e.Kind != obs.KindConnect || e.Hop < 1 {
			continue
		}
		byHop[e.Hop] = e.Peer
		if e.Hop > maxHop {
			maxHop = e.Hop
		}
	}
	path := []string{srcEP}
	for h := 1; h <= maxHop; h++ {
		if p, ok := byHop[h]; ok {
			path = append(path, p)
		}
	}
	return path
}

// plannedEndpoints maps the planner's current path to endpoint strings.
func plannedEndpoints(t *testing.T, sys *System, src, dst string) []string {
	t.Helper()
	names, err := sys.PlannedPath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(names))
	for k, n := range names {
		i, ok := sys.Topo.HostIndex(n)
		if !ok {
			t.Fatalf("planned host %q not in topology", n)
		}
		out[k] = sys.Endpoint(i).String()
	}
	return out
}

// TestControlPlaneReroutesAroundDegradation is the control plane's
// acceptance test: sessions carry no source route and are forwarded
// purely by controller-pushed tables; a mid-workload link degradation
// makes the controller repush, and the next transfer verifiably follows
// the recomputed minimax path.
func TestControlPlaneReroutesAroundDegradation(t *testing.T) {
	tp := controlTopo()
	reg := obs.NewRegistry()
	sink := &obs.MemorySink{}
	sys, err := NewSystem(tp, Config{
		TimeScale:    0.0005,
		Seed:         7,
		ControlPlane: true,
		Metrics:      reg,
		Trace:        sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// The initial control round already ran: every depot holds an
	// epoch-1 table.
	if got := sys.Control().Epoch(); got != 1 {
		t.Fatalf("epoch after construction = %d, want 1", got)
	}

	planned := plannedEndpoints(t, sys, "src.edu", "dst.edu")
	if len(planned) != 3 || planned[1] != sys.Endpoint(tp.MustHost("relay-a")).String() {
		t.Fatalf("initial planned path %v, want src → relay-a → dst", planned)
	}

	const size = 128 << 10
	res, err := sys.TransferTableDriven("src.edu", "dst.edu", size)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	// The session's trace must show it actually took the planned path —
	// no source route was present to force it.
	evs := sink.Events()
	var firstID string
	for _, e := range evs {
		if e.Kind == obs.KindDeliver {
			firstID = e.Session
		}
	}
	if firstID == "" {
		t.Fatal("no delivery event traced")
	}
	srcEP := sys.Endpoint(tp.MustHost("src.edu")).String()
	actual := tracePath(sink, srcEP, firstID)
	if strings.Join(actual, ",") != strings.Join(planned, ",") {
		t.Fatalf("traced path %v != planned %v", actual, planned)
	}

	// Steady state: within-ε probe jitter must not cause pushes.
	for i := 0; i < 3; i++ {
		rep, err := sys.ControlRound()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pushed != 0 {
			t.Fatalf("steady round %d pushed %d tables (changed %v)", i, rep.Pushed, rep.Changed)
		}
	}
	if got := sys.Control().Epoch(); got != 1 {
		t.Fatalf("epoch after steady rounds = %d, want 1 (hysteresis)", got)
	}

	// Mid-workload degradation: relay-a's exit leg collapses under the
	// direct path. The probes see it, the forecasts track it, and the
	// controller must repush tables that route via relay-b.
	tp.SetLink(tp.MustHost("relay-a"), tp.MustHost("dst.edu"), topo.Link{RTT: 0.020, Capacity: 1e6, Loss: 1e-6})
	var rep ctl.RoundReport
	moved := false
	for i := 0; i < 20 && !moved; i++ {
		rep, err = sys.ControlRound()
		if err != nil {
			t.Fatal(err)
		}
		now := plannedEndpoints(t, sys, "src.edu", "dst.edu")
		moved = len(now) == 3 && now[1] == sys.Endpoint(tp.MustHost("relay-b")).String()
	}
	if !moved {
		t.Fatalf("planner never moved src→dst onto relay-b after degradation")
	}
	if rep.Pushed == 0 || rep.Epoch < 2 {
		t.Fatalf("repush round = %+v, want pushes under a fresh epoch", rep)
	}

	// The next transfer — still no source route — must follow the
	// recomputed minimax path via relay-b, asserted against
	// schedule.Planner.Path by way of PlannedPath.
	planned = plannedEndpoints(t, sys, "src.edu", "dst.edu")
	res2, err := sys.TransferTableDriven("src.edu", "dst.edu", size)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Bytes != size {
		t.Fatalf("bytes = %d", res2.Bytes)
	}
	var secondID string
	for _, e := range sink.Events() {
		if e.Kind == obs.KindDeliver && e.Session != firstID {
			secondID = e.Session
		}
	}
	if secondID == "" {
		t.Fatal("no second delivery traced")
	}
	actual2 := tracePath(sink, srcEP, secondID)
	if strings.Join(actual2, ",") != strings.Join(planned, ",") {
		t.Fatalf("post-degradation traced path %v != planned %v", actual2, planned)
	}
	if actual2[1] != sys.Endpoint(tp.MustHost("relay-b")).String() {
		t.Fatalf("post-degradation path %v does not relay via relay-b", actual2)
	}

	// The /metrics surface must expose the control plane: table epoch,
	// pushes, hits and route changes all moved.
	if v := reg.Gauge(depot.MetricTableEpoch).Value(); v < 2 {
		t.Fatalf("%s = %d, want >= 2", depot.MetricTableEpoch, v)
	}
	if v := reg.Counter(depot.MetricTablePushes).Value(); v == 0 {
		t.Fatalf("%s = 0", depot.MetricTablePushes)
	}
	if v := reg.Counter(depot.MetricTableHits).Value(); v == 0 {
		t.Fatalf("%s = 0", depot.MetricTableHits)
	}
	if v := reg.Counter(ctl.MetricRouteChanges).Value(); v == 0 {
		t.Fatalf("%s = 0", ctl.MetricRouteChanges)
	}
	if v := reg.Gauge(ctl.MetricEpoch).Value(); v < 2 {
		t.Fatalf("%s = %d, want >= 2", ctl.MetricEpoch, v)
	}
}

// TestControlPlaneGuards covers the mode checks of the control-plane
// façade on a system built without one.
func TestControlPlaneGuards(t *testing.T) {
	sys := smallSystem(t)
	if sys.Control() != nil {
		t.Fatal("non-control system has a controller")
	}
	if _, err := sys.ControlRound(); err == nil {
		t.Fatal("ControlRound succeeded without a control plane")
	}
	if _, err := sys.TransferTableDriven(topo.UCSB, topo.UIUC, 1024); err == nil {
		t.Fatal("TransferTableDriven succeeded without a control plane")
	}
}
