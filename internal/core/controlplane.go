package core

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/netlogistics/lsl/internal/ctl"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// controlAddr is the in-process controller's endpoint: a host of its
// own on the emulated network, outside the 10.0–10.1 depot address
// plan, so control traffic rides the (unshaped) default link and never
// competes with the data path it measures.
var controlAddr = wire.MustEndpoint("10.254.0.1:7500")

// startControl builds the in-process controller of a ControlPlane
// system, registers every host, and runs the first round so depots hold
// epoch-1 tables before any transfer is attempted.
func (s *System) startControl() error {
	// Probes read the topology's modelled bandwidth through a dedicated
	// rng stream, so control-plane measurement noise is deterministic
	// and independent of the data path's randomness.
	probeRNG := rand.New(rand.NewSource(s.cfg.Seed + 1))
	c, err := ctl.New(ctl.Config{
		Planner: s.Planner,
		Self:    controlAddr,
		Dial: lsl.DialerFunc(func(address string) (net.Conn, error) {
			return s.Net.Dial("10.254.0.1", address)
		}),
		Probe: func(src, dst string) (float64, error) {
			si, oks := s.Topo.HostIndex(src)
			di, okd := s.Topo.HostIndex(dst)
			if !oks || !okd {
				return 0, fmt.Errorf("core: unknown probe pair %s -> %s", src, dst)
			}
			return s.Topo.MeasuredBW(si, di, probeRNG), nil
		},
		PushTimeout: 10 * time.Second,
		Metrics:     s.cfg.Metrics,
		Trace:       s.cfg.Trace,
	})
	if err != nil {
		return fmt.Errorf("core: controller: %w", err)
	}
	// Every host registers with push enabled: non-depot hosts cannot
	// relay (the planner gives them infinite transit), but their own
	// server still forwards the first hop of locally originated
	// sessions, so they need their tree's table too.
	for i := 0; i < s.Topo.N(); i++ {
		if err := c.Register(s.Topo.Hosts[i].Name, s.endpoints[i], true); err != nil {
			return fmt.Errorf("core: controller: %w", err)
		}
	}
	s.control = c
	if _, err := c.Round(context.Background()); err != nil {
		return fmt.Errorf("core: initial control round: %w", err)
	}
	return nil
}

// Control returns the in-process controller of a ControlPlane system
// (nil otherwise).
func (s *System) Control() *ctl.Controller { return s.control }

// ControlRound advances the control plane one probe → replan → push
// cycle — the deterministic stand-in for the daemon's timer loop.
func (s *System) ControlRound() (ctl.RoundReport, error) {
	if s.control == nil {
		return ctl.RoundReport{}, fmt.Errorf("core: system has no control plane (Config.ControlPlane)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), transferTimeout)
	defer cancel()
	return s.control.Round(ctx)
}

// TransferTableDriven moves size bytes with routing owned entirely by
// the control plane: the initiator dials its own host's depot with no
// source route, and every hop — including the first — is a route-table
// lookup against controller-pushed state. The result's Path is the
// planner's current expectation; the trace (Config.Trace) records the
// hops the session actually took.
func (s *System) TransferTableDriven(srcHost, dstHost string, size int64) (TransferResult, error) {
	if s.control == nil {
		return TransferResult{}, fmt.Errorf("core: system has no control plane (Config.ControlPlane)")
	}
	if size <= 0 {
		return TransferResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return TransferResult{}, err
	}

	start := time.Now()
	conn, err := s.dialerFor(si).Dial(s.endpoints[si].String())
	if err != nil {
		return TransferResult{}, err
	}
	tid := mintTrace()
	sess, err := lsl.Wrap(conn, s.endpoints[si], s.endpoints[di], traceOpt(tid)...)
	if err != nil {
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, err
	}
	s.emitHop0(sess.ID(), tid, si, obs.KindConnect, obs.Event{Peer: s.endpoints[si].String()})
	ch := s.registerWaiter(sess.ID())
	defer s.dropWaiter(sess.ID())

	s.emitHop0(sess.ID(), tid, si, obs.KindFirstByte, obs.Event{})
	if err := writeSessionPattern(sess, size); err != nil {
		sess.Close()
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, fmt.Errorf("core: table-driven send: %w", err)
	}
	sess.Close()
	s.emitHop0(sess.ID(), tid, si, obs.KindLastByte, obs.Event{Bytes: size})

	select {
	case res := <-ch:
		elapsed := time.Since(start)
		if res.err != nil {
			s.observeTransfer(TransferResult{}, res.err)
			return TransferResult{}, fmt.Errorf("core: sink: %w", res.err)
		}
		if res.bytes != size {
			err := fmt.Errorf("core: sink received %d of %d bytes", res.bytes, size)
			s.observeTransfer(TransferResult{}, err)
			return TransferResult{}, err
		}
		out := s.result(size, elapsed, path)
		s.observeTransfer(out, nil)
		return out, nil
	case <-time.After(transferTimeout):
		err := fmt.Errorf("core: table-driven transfer timed out after %v", transferTimeout)
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, err
	}
}
