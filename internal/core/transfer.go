package core

import (
	"fmt"
	"net"
	"time"

	"github.com/netlogistics/lsl/internal/bufpool"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/wire"
)

// Metric names reported by the transfer façade into Config.Metrics.
const (
	MetricTransfers       = "core_transfers_total"
	MetricTransferErrors  = "core_transfer_errors_total"
	MetricTransferBytes   = "core_transfer_bytes_total"
	MetricTransferSeconds = "core_transfer_seconds"
	MetricTransferMbps    = "core_transfer_mbps"
)

// observeTransfer records a completed (or failed) transfer in the
// system's registry. Durations and rates are in emulated time, like
// TransferResult itself.
func (s *System) observeTransfer(res TransferResult, err error) {
	r := s.cfg.Metrics
	if err != nil {
		r.Counter(MetricTransferErrors).Inc()
		return
	}
	r.Counter(MetricTransfers).Inc()
	r.Counter(MetricTransferBytes).Add(res.Bytes)
	// 1 ms .. ~1000 s emulated transfer durations.
	r.Histogram(MetricTransferSeconds, obs.ExpBuckets(1e-3, 2, 20)).Observe(res.Elapsed.Seconds())
	// 1 .. ~16k Mbit/s end-to-end rates.
	r.Histogram(MetricTransferMbps, obs.ExpBuckets(1, 2, 15)).Observe(res.Bandwidth * 8 / 1e6)
}

// emitHop0 reports an initiator-side (hop 0) trace event. tid is the
// end-to-end trace identifier the logical transfer minted; a zero id
// (tracing unavailable) leaves the event uncorrelated.
func (s *System) emitHop0(id wire.SessionID, tid wire.TraceID, src int, kind string, e obs.Event) {
	e.Kind = kind
	e.Session = id.String()
	if !tid.IsZero() {
		e.Trace = tid.String()
	}
	e.Hop = 0
	e.Node = s.endpoints[src].String()
	obs.Emit(s.cfg.Trace, e)
}

// mintTrace draws the end-to-end trace identifier of one logical
// transfer. Tracing is best-effort: an entropy failure yields the zero
// id (no correlation key) rather than failing the transfer.
func mintTrace() wire.TraceID {
	tid, err := wire.NewTraceID()
	if err != nil {
		return wire.TraceID{}
	}
	return tid
}

// traceOpt renders tid as the extra header options an initiator passes
// to the lsl Open family: empty for a zero id, so untraced transfers
// put nothing on the wire.
func traceOpt(tid wire.TraceID) []wire.Option {
	if tid.IsZero() {
		return nil
	}
	return []wire.Option{wire.TraceIDOption(tid)}
}

func graphNode(i int) graph.NodeID { return graph.NodeID(i) }

// TransferResult reports one completed transfer.
type TransferResult struct {
	Bytes int64
	// Elapsed is in emulated time (wall time divided by the time
	// scale).
	Elapsed time.Duration
	// Bandwidth is bytes per emulated second.
	Bandwidth float64
	// Path is the hostname sequence the session traversed (endpoints
	// included).
	Path []string
}

// dialerFor returns the Dialer that originates connections from host i.
func (s *System) dialerFor(i int) lsl.Dialer {
	return lsl.DialerFunc(func(address string) (net.Conn, error) {
		return s.Net.Dial(s.hostAddr(i), address)
	})
}

// resolve maps a host name to its index.
func (s *System) resolve(host string) (int, error) {
	i, ok := s.Topo.HostIndex(host)
	if !ok {
		return 0, fmt.Errorf("core: unknown host %q", host)
	}
	return i, nil
}

// Transfer moves size bytes from srcHost to dstHost over the planner's
// chosen path (which may be direct), waiting until the sink has
// received and verified every byte.
func (s *System) Transfer(srcHost, dstHost string, size int64) (TransferResult, error) {
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return TransferResult{}, err
	}
	if path == nil {
		return TransferResult{}, fmt.Errorf("core: no route %s → %s", srcHost, dstHost)
	}
	return s.transferAlong(path, size)
}

// TransferWeighted is Transfer with an explicit fair-share weight: the
// session carries wire.OptSessionWeight, so every scheduled depot on
// the path grants it weight× the per-round credit of a weight-1
// session. On an unscheduled deployment the option rides along inert.
func (s *System) TransferWeighted(srcHost, dstHost string, size int64, weight uint16) (TransferResult, error) {
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return TransferResult{}, err
	}
	if path == nil {
		return TransferResult{}, fmt.Errorf("core: no route %s → %s", srcHost, dstHost)
	}
	return s.transferAlong(path, size, wire.SessionWeightOption(weight))
}

// DirectTransfer bypasses the scheduler and moves the bytes over the
// single end-to-end connection, the baseline of every comparison.
func (s *System) DirectTransfer(srcHost, dstHost string, size int64) (TransferResult, error) {
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	return s.transferAlong([]int{si, di}, size)
}

// PlannedPath reports the host names on the planner's current route.
func (s *System) PlannedPath(srcHost, dstHost string) ([]string, error) {
	si, err := s.resolve(srcHost)
	if err != nil {
		return nil, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return nil, err
	}
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return nil, err
	}
	return s.hostNames(path), nil
}

func (s *System) hostNames(path []int) []string {
	names := make([]string, len(path))
	for k, h := range path {
		names[k] = s.Topo.Hosts[h].Name
	}
	return names
}

// transferAlong runs one transfer over an explicit host-index path.
// extra options (trace ids are added here; weights arrive from the
// caller) ride the session header end to end.
func (s *System) transferAlong(path []int, size int64, extra ...wire.Option) (TransferResult, error) {
	if size <= 0 {
		return TransferResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	if len(path) < 2 {
		return TransferResult{}, fmt.Errorf("core: path needs at least 2 hosts")
	}
	src, dst := path[0], path[len(path)-1]
	route := make([]wire.Endpoint, 0, len(path)-2)
	for _, h := range path[1 : len(path)-1] {
		route = append(route, s.endpoints[h])
	}

	start := time.Now()
	tid := mintTrace()
	opts := append(traceOpt(tid), extra...)
	var (
		sess *lsl.Session
		err  error
	)
	if s.cfg.Integrity {
		// The content digest is keyed by the session id (the payload is
		// the id-seeded pattern), so integrity transfers mint the id
		// before opening instead of letting Open draw one.
		id, ierr := wire.NewSessionID()
		if ierr != nil {
			s.observeTransfer(TransferResult{}, ierr)
			return TransferResult{}, ierr
		}
		defer s.digests.drop(id)
		opts = append(opts, integrityOptions(id, size)...)
		sess, err = lsl.OpenAtID(s.dialerFor(src), id, s.endpoints[src], s.endpoints[dst], route, 0, opts...)
	} else {
		sess, err = lsl.Open(s.dialerFor(src), s.endpoints[src], s.endpoints[dst], route, opts...)
	}
	if err != nil {
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, err
	}
	first := dst
	if len(path) > 2 {
		first = path[1]
	}
	s.emitHop0(sess.ID(), tid, src, obs.KindConnect, obs.Event{Peer: s.endpoints[first].String()})
	ch := s.registerWaiter(sess.ID())
	defer s.dropWaiter(sess.ID())

	s.emitHop0(sess.ID(), tid, src, obs.KindFirstByte, obs.Event{})
	werr := writeSessionPattern(sess, size)
	sess.Close()
	if werr != nil {
		s.observeTransfer(TransferResult{}, werr)
		return TransferResult{}, fmt.Errorf("core: send: %w", werr)
	}
	s.emitHop0(sess.ID(), tid, src, obs.KindLastByte, obs.Event{Bytes: size})

	select {
	case res := <-ch:
		elapsed := time.Since(start)
		if res.err != nil {
			s.observeTransfer(TransferResult{}, res.err)
			return TransferResult{}, fmt.Errorf("core: sink: %w", res.err)
		}
		if res.bytes != size {
			err := fmt.Errorf("core: sink received %d of %d bytes", res.bytes, size)
			s.observeTransfer(TransferResult{}, err)
			return TransferResult{}, err
		}
		out := s.result(size, elapsed, path)
		s.observeTransfer(out, nil)
		if s.cfg.FeedObservations && len(path) == 2 {
			// A direct transfer doubles as an end-to-end measurement.
			_ = s.Planner.Observe(s.Topo.Hosts[src].Name, s.Topo.Hosts[dst].Name, out.Bandwidth)
		}
		return out, nil
	case <-time.After(transferTimeout):
		err := fmt.Errorf("core: transfer timed out after %v", transferTimeout)
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, err
	}
}

// Replan rebuilds the scheduling trees from the monitor's current
// forecasts, picking up any observations fed back since the last plan.
// Deployments call this on the paper's five-minute cadence.
func (s *System) Replan() error { return s.Planner.Replan() }

// TransferHopByHop moves size bytes using the paper's second routing
// mode: no loose source route — the initiator dials only the first hop
// of its own tree, and each depot forwards by its route table
// ("destination/next hop tuples ... consumed by the logistical depot").
// The reported path is the initiator's planned path; the depots'
// per-node trees may in principle route differently.
func (s *System) TransferHopByHop(srcHost, dstHost string, size int64) (TransferResult, error) {
	if size <= 0 {
		return TransferResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return TransferResult{}, err
	}
	if path == nil {
		return TransferResult{}, fmt.Errorf("core: no route %s → %s", srcHost, dstHost)
	}
	first := di
	if len(path) > 2 {
		first = path[1]
	}

	start := time.Now()
	// Dial the first hop with the final destination in the header and
	// NO source route: forwarding decisions belong to the depots.
	conn, err := s.dialerFor(si).Dial(s.endpoints[first].String())
	if err != nil {
		return TransferResult{}, err
	}
	tid := mintTrace()
	opts := traceOpt(tid)
	if s.cfg.Integrity {
		// Hop-by-hop sessions get per-hop chunk protection; the
		// end-to-end digest needs the session id before dialing, which
		// Wrap mints internally, so it stays off this path.
		opts = append(opts, wire.ChunkChecksumOption())
	}
	sess, err := lsl.Wrap(conn, s.endpoints[si], s.endpoints[di], opts...)
	if err != nil {
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, err
	}
	s.emitHop0(sess.ID(), tid, si, obs.KindConnect, obs.Event{Peer: s.endpoints[first].String()})
	ch := s.registerWaiter(sess.ID())
	defer s.dropWaiter(sess.ID())

	s.emitHop0(sess.ID(), tid, si, obs.KindFirstByte, obs.Event{})
	if err := writeSessionPattern(sess, size); err != nil {
		sess.Close()
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, fmt.Errorf("core: hop-by-hop send: %w", err)
	}
	sess.Close()
	s.emitHop0(sess.ID(), tid, si, obs.KindLastByte, obs.Event{Bytes: size})

	select {
	case res := <-ch:
		elapsed := time.Since(start)
		if res.err != nil {
			s.observeTransfer(TransferResult{}, res.err)
			return TransferResult{}, fmt.Errorf("core: sink: %w", res.err)
		}
		if res.bytes != size {
			err := fmt.Errorf("core: sink received %d of %d bytes", res.bytes, size)
			s.observeTransfer(TransferResult{}, err)
			return TransferResult{}, err
		}
		out := s.result(size, elapsed, path)
		s.observeTransfer(out, nil)
		return out, nil
	case <-time.After(transferTimeout):
		err := fmt.Errorf("core: hop-by-hop transfer timed out after %v", transferTimeout)
		s.observeTransfer(TransferResult{}, err)
		return TransferResult{}, err
	}
}

// transferTimeout bounds a single emulated transfer in wall time.
const transferTimeout = 2 * time.Minute

func (s *System) result(size int64, elapsed time.Duration, path []int) TransferResult {
	emulated := time.Duration(float64(elapsed) / s.cfg.TimeScale)
	bw := 0.0
	if emulated > 0 {
		bw = float64(size) / emulated.Seconds()
	}
	return TransferResult{
		Bytes:     size,
		Elapsed:   emulated,
		Bandwidth: bw,
		Path:      s.hostNames(path),
	}
}

// writeSessionPattern streams the session's deterministic pattern —
// through the chunk framer when the session is checksummed. The copy
// buffer is pooled with the depot pumps and sink loops.
func writeSessionPattern(sess *lsl.Session, size int64) error {
	w := sessionWriter(sess)
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	buf := *bp
	var written int64
	for written < size {
		n := int64(len(buf))
		if remaining := size - written; remaining < n {
			n = remaining
		}
		depot.FillPattern(buf[:n], sess.ID(), written)
		m, err := w.Write(buf[:n])
		written += int64(m)
		if err != nil {
			return err
		}
	}
	return nil
}

// MulticastResult reports a staging operation.
type MulticastResult struct {
	Bytes     int64
	Leaves    []string
	Elapsed   time.Duration // emulated
	Bandwidth float64       // aggregate delivered bytes per emulated second
	Tree      *wire.TreeNode
}

// Multicast stages size bytes from srcHost to every destination host,
// fanning out through the depots on the union of the planner's paths —
// the synchronous application-layer multicast staging option of
// Section 2.
func (s *System) Multicast(srcHost string, dstHosts []string, size int64) (MulticastResult, error) {
	if len(dstHosts) == 0 {
		return MulticastResult{}, fmt.Errorf("core: multicast needs at least one destination")
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return MulticastResult{}, err
	}
	// Merge the planned unicast paths into one staging tree rooted at
	// the source host's own depot.
	root := &wire.TreeNode{Addr: s.endpoints[si]}
	nodes := map[int]*wire.TreeNode{si: root}
	for _, dh := range dstHosts {
		di, err := s.resolve(dh)
		if err != nil {
			return MulticastResult{}, err
		}
		path, err := s.Planner.Path(si, di)
		if err != nil {
			return MulticastResult{}, err
		}
		if path == nil {
			return MulticastResult{}, fmt.Errorf("core: no route %s → %s", srcHost, dh)
		}
		parent := root
		for _, h := range path[1:] {
			node, ok := nodes[h]
			if !ok {
				node = &wire.TreeNode{Addr: s.endpoints[h]}
				nodes[h] = node
				parent.Children = append(parent.Children, node)
			}
			parent = node
		}
	}

	start := time.Now()
	tid := mintTrace()
	mopts := traceOpt(tid)
	if s.cfg.Integrity {
		// Every duplication point of the staging tree verifies and
		// re-stamps the chunk framing; like hop-by-hop, the digest stays
		// off because OpenMulticast mints the session id itself.
		mopts = append(mopts, wire.ChunkChecksumOption())
	}
	sess, err := lsl.OpenMulticast(s.dialerFor(si), s.endpoints[si], s.endpoints[si], root, mopts...)
	if err != nil {
		s.observeTransfer(TransferResult{}, err)
		return MulticastResult{}, err
	}
	s.emitHop0(sess.ID(), tid, si, obs.KindConnect, obs.Event{Peer: root.Addr.String()})
	ch := s.registerWaiter(sess.ID())
	defer s.dropWaiter(sess.ID())

	s.emitHop0(sess.ID(), tid, si, obs.KindFirstByte, obs.Event{})
	if err := writeSessionPattern(sess, size); err != nil {
		sess.Close()
		s.observeTransfer(TransferResult{}, err)
		return MulticastResult{}, fmt.Errorf("core: multicast send: %w", err)
	}
	sess.Close()
	s.emitHop0(sess.ID(), tid, si, obs.KindLastByte, obs.Event{Bytes: size})

	leaves := root.Leaves()
	var delivered int64
	for range leaves {
		select {
		case res := <-ch:
			if res.err != nil {
				s.observeTransfer(TransferResult{}, res.err)
				return MulticastResult{}, fmt.Errorf("core: multicast sink: %w", res.err)
			}
			delivered += res.bytes
		case <-time.After(transferTimeout):
			err := fmt.Errorf("core: multicast timed out after %v", transferTimeout)
			s.observeTransfer(TransferResult{}, err)
			return MulticastResult{}, err
		}
	}
	elapsed := time.Duration(float64(time.Since(start)) / s.cfg.TimeScale)
	bw := 0.0
	if elapsed > 0 {
		bw = float64(delivered) / elapsed.Seconds()
	}
	s.observeTransfer(TransferResult{Bytes: delivered, Elapsed: elapsed, Bandwidth: bw}, nil)
	leafNames := make([]string, len(leaves))
	for k, l := range leaves {
		leafNames[k] = s.Topo.Hosts[s.byAddr[l]].Name
	}
	return MulticastResult{
		Bytes:     delivered,
		Leaves:    leafNames,
		Elapsed:   elapsed,
		Bandwidth: bw,
		Tree:      root,
	}, nil
}
