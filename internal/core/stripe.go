package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// Striping metric names reported into Config.Metrics.
const (
	// MetricStripedTransfers counts completed striped transfers.
	MetricStripedTransfers = "core_striped_transfers_total"
	// MetricStripeRetries counts per-stripe retry attempts beyond the
	// first, across all striped transfers.
	MetricStripeRetries = "core_stripe_retries_total"
)

// stripeRange is one stripe's contiguous byte range [start, end) of the
// transferred object.
type stripeRange struct {
	start, end int64
}

// stripeRanges splits size bytes into n contiguous ranges whose lengths
// differ by at most one byte: the first size%n stripes carry the extra
// byte. n must satisfy 1 <= n <= size.
func stripeRanges(size int64, n int) []stripeRange {
	base := size / int64(n)
	rem := size % int64(n)
	out := make([]stripeRange, n)
	var off int64
	for k := range out {
		length := base
		if int64(k) < rem {
			length++
		}
		out[k] = stripeRange{start: off, end: off + length}
		off += length
	}
	return out
}

// stripeFor locates the stripe whose range contains the absolute
// offset, or -1 when none does.
func stripeFor(ranges []stripeRange, offset int64) int {
	for k, r := range ranges {
		if offset >= r.start && offset < r.end {
			return k
		}
	}
	return -1
}

// TransferStriped moves size bytes from srcHost to dstHost over the
// planner's chosen path using the given number of parallel sublink
// chains ("stripes"). All stripes share one session identifier and one
// depot path; each stripe is an ordinary resumable data session
// carrying a contiguous byte range of the object, announced through the
// resume-offset option, so every depot pumps it with the standard flow
// machinery and the sink reassembles by absolute offset.
//
// Recovery composes per stripe: a stripe whose chain tears is retried
// under pol with the usual resume-at-acked-offset continuation while
// its siblings keep streaming — a single sublink failure costs one
// stripe's retry, not the transfer. When pol.Failover is set and a
// stripe makes no progress for FailoverAfter consecutive attempts, the
// shared depot path is rerouted around the dead relays exactly as in
// TransferReliable; the reroute is decided once and every sibling's
// next attempt follows the new path. Fatal errors (protocol
// violations, pattern mismatches) abort the whole transfer.
//
// stripes <= 1 (or a size smaller than the stripe count) degrades
// gracefully: the transfer runs with as many stripes as there are
// bytes, and a single stripe is exactly TransferReliable.
func (s *System) TransferStriped(srcHost, dstHost string, size int64, stripes int, pol RecoveryPolicy) (TransferResult, error) {
	if size <= 0 {
		return TransferResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	if stripes < 1 {
		return TransferResult{}, fmt.Errorf("core: stripe count %d must be positive", stripes)
	}
	if int64(stripes) > size {
		stripes = int(size)
	}
	if stripes == 1 {
		return s.TransferReliable(srcHost, dstHost, size, pol)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	pol = pol.withDefaults()
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return TransferResult{}, err
	}
	if path == nil {
		path = []int{si, di}
	}

	id, err := wire.NewSessionID()
	if err != nil {
		return TransferResult{}, err
	}
	// One trace id spans every stripe, retry continuation, and failover
	// reroute of this logical transfer.
	tid := mintTrace()
	ranges := stripeRanges(size, stripes)

	// One waiter channel serves every stripe session (they share the
	// id); a dispatcher routes each sink report to its stripe by the
	// absolute offset the delivered range began at. Buffers are sized
	// so sinks never block: at most one report per stripe attempt.
	ch := s.registerWaiterN(id, stripes*pol.Retry.MaxAttempts)
	defer s.dropWaiter(id)
	perStripe := make([]chan deliverResult, stripes)
	for k := range perStripe {
		perStripe[k] = make(chan deliverResult, pol.Retry.MaxAttempts)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case r := <-ch:
				if k := stripeFor(ranges, r.offset); k >= 0 {
					perStripe[k] <- r
				}
			case <-stop:
				return
			}
		}
	}()

	start := time.Now()
	sp := &stripePath{path: path}
	errs := make([]error, stripes)
	var wg sync.WaitGroup
	for k := range ranges {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = s.stripeWorker(sp, si, di, id, tid, k, stripes, ranges[k], pol, perStripe[k])
		}(k)
	}
	wg.Wait()
	path = sp.current()

	for k, werr := range errs {
		if werr != nil {
			err := fmt.Errorf("core: stripe %d/%d: %w", k, stripes, werr)
			s.observeTransfer(TransferResult{}, err)
			return TransferResult{}, err
		}
	}
	out := s.result(size, time.Since(start), path)
	s.observeTransfer(out, nil)
	s.cfg.Metrics.Counter(MetricStripedTransfers).Inc()
	return out, nil
}

// stripePath is the depot path a striped transfer's workers share. A
// failover reroute decided by one stripe advances the generation and
// every sibling's next attempt follows the new path; the generation
// guard in failover makes concurrent triggers from several starved
// stripes cost a single probe-and-replan.
type stripePath struct {
	mu   sync.Mutex
	path []int
	gen  int
}

// get returns the current path and its generation.
func (p *stripePath) get() ([]int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.path, p.gen
}

// current returns the path the transfer ended on.
func (p *stripePath) current() []int {
	path, _ := p.get()
	return path
}

// failover reroutes via fn unless a sibling already rerouted past gen.
func (p *stripePath) failover(gen int, fn func(cur []int) []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if gen != p.gen {
		return // a sibling already rerouted this generation
	}
	p.path = fn(p.path)
	p.gen++
}

// stripeWorker drives one stripe to completion: it opens stripe
// sessions resuming at the deepest acked offset, retrying under pol
// (and triggering a shared-path failover when starved), and returns
// nil once the sink has verified the stripe's whole range.
func (s *System) stripeWorker(sp *stripePath, si, di int, id wire.SessionID, tid wire.TraceID, k, count int, rng stripeRange, pol RecoveryPolicy, results <-chan deliverResult) error {
	r := s.cfg.Metrics
	acked := rng.start // absolute offset the sink has verified up to
	var lastErr error
	noProgress := 0
	for attempt := 0; attempt < pol.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.Counter(MetricStripeRetries).Inc()
			s.emitRecovery(id.String(), tid, si, obs.KindRetry, obs.Event{
				Stripe: obs.StripeOf(k),
				Bytes:  acked,
				Detail: fmt.Sprintf("%s: %v", retry.Classify(lastErr), lastErr),
			})
			if err := pol.Retry.Sleep(context.Background(), attempt-1); err != nil {
				break
			}
			if acked > rng.start {
				// Bytes the continuation session does not re-send.
				r.Counter(MetricResumedBytes).Add(acked - rng.start)
			}
		}
		path, gen := sp.get()
		got, aerr := s.stripeAttempt(path, id, tid, k, count, acked, rng.end, pol.AttemptTimeout, results)
		acked += got
		if aerr == nil && acked == rng.end {
			return nil
		}
		if aerr == nil {
			aerr = retry.AsTransient(fmt.Errorf("core: sink acked %d of %d stripe bytes", acked-rng.start, rng.end-rng.start))
		}
		lastErr = aerr
		if retry.IsFatal(aerr) {
			r.Counter(MetricRecoveryFatal).Inc()
			return fmt.Errorf("core: fatal: %w", aerr)
		}
		if got > 0 {
			noProgress = 0
		} else {
			noProgress++
		}
		if pol.Failover && noProgress >= pol.FailoverAfter && len(path) > 2 {
			sp.failover(gen, func(cur []int) []int {
				return s.failoverPath(si, di, cur, id.String(), tid)
			})
			noProgress = 0
		}
	}
	return fmt.Errorf("core: %w after %d attempts: %w", retry.ErrExhausted, pol.Retry.MaxAttempts, lastErr)
}

// stripeAttempt runs one stripe session along path, streaming the
// pattern for absolute offsets [from, end) and returning how many new
// bytes the sink acked past from. Reports are read from the stripe's
// routed channel; a late report from an earlier torn attempt only ever
// increases the acked prefix (its range starts no deeper than from), so
// progress is the maximum of offset+bytes over the reports seen.
func (s *System) stripeAttempt(path []int, id wire.SessionID, tid wire.TraceID, k, count int, from, end int64, timeout time.Duration, results <-chan deliverResult) (int64, error) {
	src, dst := path[0], path[len(path)-1]
	route := make([]wire.Endpoint, 0, len(path)-2)
	for _, h := range path[1 : len(path)-1] {
		route = append(route, s.endpoints[h])
	}
	dial := lsl.TimeoutDialer(s.dialerFor(src), timeout)
	opts := traceOpt(tid)
	if s.cfg.Integrity {
		// Stripes carry per-chunk checksums but no content digest: the
		// sibling ranges interleave at the sink, so only the per-hop
		// verifiers guard them.
		opts = append(opts, wire.ChunkChecksumOption())
	}
	sess, err := lsl.OpenStripe(dial, s.endpoints[src], s.endpoints[dst], route, id, k, count, from, opts...)
	if err != nil {
		return 0, err
	}
	first := dst
	if len(path) > 2 {
		first = path[1]
	}
	s.emitHop0(sess.ID(), tid, src, obs.KindConnect, obs.Event{Peer: s.endpoints[first].String(), Bytes: from, Stripe: obs.StripeOf(k)})

	deadline := time.Now().Add(timeout)
	_ = sess.SetWriteDeadline(deadline)
	s.emitHop0(sess.ID(), tid, src, obs.KindFirstByte, obs.Event{Stripe: obs.StripeOf(k)})
	werr := writeSessionPatternFrom(sess, from, end)
	sess.Close()
	if werr == nil {
		s.emitHop0(sess.ID(), tid, src, obs.KindLastByte, obs.Event{Bytes: end - from, Stripe: obs.StripeOf(k)})
	}

	// Wait for the sink's report, mirroring attemptResumable: a clean
	// write waits out the deadline for the delivery report, a torn one
	// only a short drain window for in-flight bytes.
	settle := time.Until(deadline)
	if werr != nil || settle < drainWindow {
		settle = drainWindow
	}
	progress := func(res deliverResult) int64 {
		if got := res.offset + res.bytes - from; got > 0 {
			return got
		}
		return 0
	}
	select {
	case res := <-results:
		if res.err != nil {
			return progress(res), fmt.Errorf("core: sink: %w", res.err)
		}
		if werr != nil && res.offset+res.bytes < end {
			return progress(res), fmt.Errorf("core: send: %w", werr)
		}
		return progress(res), nil
	case <-time.After(settle):
		if werr != nil {
			return 0, fmt.Errorf("core: send: %w", werr)
		}
		return 0, retry.AsTransient(fmt.Errorf("core: no sink report within %v", settle))
	}
}
