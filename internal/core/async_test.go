package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestAsyncStoreAndFetch(t *testing.T) {
	sys := smallSystem(t)
	const size = 96 << 10

	// Producer stages the data at the Denver depot; the consumer is
	// not yet online.
	stored, err := sys.StoreAt(topo.UCSB, topo.Denver, size)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Bytes != size {
		t.Fatalf("stored %d bytes", stored.Bytes)
	}
	if stored.Path[0] != topo.UCSB || stored.Path[len(stored.Path)-1] != topo.Denver {
		t.Fatalf("path = %v", stored.Path)
	}

	// Later, a consumer at UIUC discovers the session id and fetches.
	got, err := sys.FetchFrom(topo.UIUC, topo.Denver, stored.Session)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bytes != size {
		t.Fatalf("fetched %d of %d bytes", got.Bytes, size)
	}
	if got.Bandwidth <= 0 {
		t.Fatalf("bandwidth = %v", got.Bandwidth)
	}

	// A second consumer can fetch the same session.
	again, err := sys.FetchFrom(topo.UF, topo.Denver, stored.Session)
	if err != nil {
		t.Fatal(err)
	}
	if again.Bytes != size {
		t.Fatalf("second fetch got %d bytes", again.Bytes)
	}
}

func TestAsyncFetchUnknownSession(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.FetchFrom(topo.UIUC, topo.Denver, wire.SessionID{1, 2, 3}); err == nil {
		t.Fatal("unknown session fetch succeeded")
	}
}

func TestAsyncStoreValidation(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.StoreAt(topo.UCSB, topo.UIUC, 1024); err == nil ||
		!strings.Contains(err.Error(), "no depot") {
		t.Fatalf("store at non-depot: %v", err)
	}
	if _, err := sys.StoreAt(topo.UCSB, topo.Denver, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := sys.StoreAt("nope", topo.Denver, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := sys.FetchFrom("nope", topo.Denver, wire.SessionID{}); err == nil {
		t.Fatal("unknown dest accepted")
	}
}

func TestAsyncStoreHonorsContext(t *testing.T) {
	sys := smallSystem(t)

	// A canceled context must abort the store-confirmation wait with
	// the context's error instead of spinning to the package timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.StoreAtContext(ctx, topo.UCSB, topo.Denver, 64<<10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// A generous deadline leaves the normal path untouched.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	stored, err := sys.StoreAtContext(ctx2, topo.UCSB, topo.Denver, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Bytes != 64<<10 {
		t.Fatalf("stored %d bytes", stored.Bytes)
	}
}
