package core

import (
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

func TestAsyncStoreAndFetch(t *testing.T) {
	sys := smallSystem(t)
	const size = 96 << 10

	// Producer stages the data at the Denver depot; the consumer is
	// not yet online.
	stored, err := sys.StoreAt(topo.UCSB, topo.Denver, size)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Bytes != size {
		t.Fatalf("stored %d bytes", stored.Bytes)
	}
	if stored.Path[0] != topo.UCSB || stored.Path[len(stored.Path)-1] != topo.Denver {
		t.Fatalf("path = %v", stored.Path)
	}

	// Later, a consumer at UIUC discovers the session id and fetches.
	got, err := sys.FetchFrom(topo.UIUC, topo.Denver, stored.Session)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bytes != size {
		t.Fatalf("fetched %d of %d bytes", got.Bytes, size)
	}
	if got.Bandwidth <= 0 {
		t.Fatalf("bandwidth = %v", got.Bandwidth)
	}

	// A second consumer can fetch the same session.
	again, err := sys.FetchFrom(topo.UF, topo.Denver, stored.Session)
	if err != nil {
		t.Fatal(err)
	}
	if again.Bytes != size {
		t.Fatalf("second fetch got %d bytes", again.Bytes)
	}
}

func TestAsyncFetchUnknownSession(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.FetchFrom(topo.UIUC, topo.Denver, wire.SessionID{1, 2, 3}); err == nil {
		t.Fatal("unknown session fetch succeeded")
	}
}

func TestAsyncStoreValidation(t *testing.T) {
	sys := smallSystem(t)
	if _, err := sys.StoreAt(topo.UCSB, topo.UIUC, 1024); err == nil ||
		!strings.Contains(err.Error(), "no depot") {
		t.Fatalf("store at non-depot: %v", err)
	}
	if _, err := sys.StoreAt(topo.UCSB, topo.Denver, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := sys.StoreAt("nope", topo.Denver, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := sys.FetchFrom("nope", topo.Denver, wire.SessionID{}); err == nil {
		t.Fatal("unknown dest accepted")
	}
}
