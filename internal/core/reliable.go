package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/netlogistics/lsl/internal/bufpool"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// Recovery metric names reported into Config.Metrics by TransferReliable.
const (
	MetricRetryAttempts = "core_retry_attempts_total"
	MetricFailovers     = "core_failovers_total"
	MetricResumedBytes  = "core_resumed_bytes_total"
	MetricRecoveryFatal = "core_recovery_fatal_total"
)

// RecoveryPolicy parameterizes TransferReliable: how often to retry a
// failing chain, when to give up on its depots and reroute, and how
// long one attempt may take.
type RecoveryPolicy struct {
	// Retry is the attempt schedule across the whole transfer. A zero
	// policy (MaxAttempts 0) selects retry.DefaultPolicy — a reliable
	// transfer that never retries is a contradiction.
	Retry retry.Policy
	// Failover enables rerouting: after FailoverAfter consecutive
	// attempts with no delivered progress, the current path's depots
	// are probed, the unreachable (or, failing that, all current)
	// relays are excluded, and the minimax path is recomputed on the
	// surviving topology. With no surviving relay route the transfer
	// degrades to direct source→destination TCP.
	Failover bool
	// FailoverAfter is the consecutive zero-progress failure count that
	// triggers a reroute (default 2).
	FailoverAfter int
	// AttemptTimeout bounds one attempt's connect, writes, and the wait
	// for the sink's report (default 15 s of wall time).
	AttemptTimeout time.Duration
}

// DefaultRecovery is the standard policy: 4 attempts with backoff,
// failover after 2 dead attempts, 15 s per attempt.
func DefaultRecovery() RecoveryPolicy {
	return RecoveryPolicy{Retry: retry.DefaultPolicy(), Failover: true}
}

func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	if p.Retry.MaxAttempts < 1 {
		p.Retry = retry.DefaultPolicy()
	}
	if p.FailoverAfter < 1 {
		p.FailoverAfter = 2
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 15 * time.Second
	}
	return p
}

// TransferReliable moves size bytes from srcHost to dstHost like
// Transfer, but survives the failure modes a chain of sublinks
// multiplies: a torn or stalled sublink is retried with backoff and the
// continuation session resumes at the sink's acked byte offset rather
// than restarting, and a depot that stays dead is routed around by
// recomputing the minimax path on the surviving topology — falling back
// to a direct source→destination connection when no relay route
// survives. Transient and fatal errors are told apart with
// retry.Classify: a protocol violation or verification mismatch aborts
// immediately, while path events burn attempts until the policy is
// exhausted (the returned error then wraps retry.ErrExhausted).
func (s *System) TransferReliable(srcHost, dstHost string, size int64, pol RecoveryPolicy) (TransferResult, error) {
	if size <= 0 {
		return TransferResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return TransferResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	pol = pol.withDefaults()
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return TransferResult{}, err
	}
	if path == nil {
		// No forecast route: the recovery layer's job is delivery, so
		// degrade to direct rather than refuse.
		path = []int{si, di}
	}

	r := s.cfg.Metrics
	start := time.Now()
	// One trace id spans every attempt, resume continuation, and
	// failover reroute of this logical transfer.
	tid := mintTrace()
	// Under Integrity one session id spans them too: the sink keys its
	// cross-attempt state (the running end-to-end digest) by session
	// identity, so every continuation must present the same id. Without
	// a digest each attempt keeps its own id — the trace id alone is
	// the correlation key.
	var (
		shared    wire.SessionID
		integrity []wire.Option
	)
	if s.cfg.Integrity {
		id, err := wire.NewSessionID()
		if err != nil {
			return TransferResult{}, err
		}
		shared = id
		integrity = integrityOptions(id, size)
		defer s.digests.drop(id)
	}
	var (
		acked      int64 // bytes the sink has verified and acked
		lastErr    error
		lastID     string
		noProgress int
	)
	for attempt := 0; attempt < pol.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.Counter(MetricRetryAttempts).Inc()
			s.emitRecovery(lastID, tid, si, obs.KindRetry, obs.Event{
				Bytes:  acked,
				Detail: fmt.Sprintf("%s: %v", retry.Classify(lastErr), lastErr),
			})
			if err := pol.Retry.Sleep(context.Background(), attempt-1); err != nil {
				break
			}
		}
		if acked > 0 {
			// Bytes the continuation session does not re-send.
			r.Counter(MetricResumedBytes).Add(acked)
		}
		got, id, aerr := s.attemptResumable(path, shared, size, acked, pol.AttemptTimeout, tid, integrity)
		acked += got
		lastID = id
		if aerr == nil && acked == size {
			out := s.result(size, time.Since(start), path)
			s.observeTransfer(out, nil)
			return out, nil
		}
		if aerr == nil {
			// The chain tore after every write was buffered: no send
			// error, a clean partial delivery. Retryable by definition.
			aerr = retry.AsTransient(fmt.Errorf("core: sink acked %d of %d bytes", acked, size))
		}
		lastErr = aerr
		if retry.IsFatal(aerr) {
			r.Counter(MetricRecoveryFatal).Inc()
			s.observeTransfer(TransferResult{}, aerr)
			return TransferResult{}, fmt.Errorf("core: fatal: %w", aerr)
		}
		if errors.Is(aerr, wire.ErrDigest) {
			// The whole-object digest failed: some delivered byte is
			// suspect even though every chunk checksum passed, so the
			// acked prefix can no longer be trusted. Start the object
			// over (the sink's digest state is already gone).
			acked = 0
		}
		if got > 0 {
			noProgress = 0
		} else {
			noProgress++
		}
		if pol.Failover && noProgress >= pol.FailoverAfter && len(path) > 2 {
			path = s.failoverPath(si, di, path, lastID, tid)
			noProgress = 0
		}
	}
	err = fmt.Errorf("core: %w after %d attempts: %w", retry.ErrExhausted, pol.Retry.MaxAttempts, lastErr)
	s.observeTransfer(TransferResult{}, err)
	return TransferResult{}, err
}

// drainWindow is how long a torn attempt waits for the sink's report of
// in-flight bytes that may still land after the send side failed.
const drainWindow = 500 * time.Millisecond

// attemptResumable runs one session along path, streaming the pattern
// from absolute byte offset and returning the bytes the sink reported
// for this session (its ack), the session id, and the attempt's error.
// A non-zero shared id pins the session's identity (integrity-enabled
// transfers reuse one id across attempts); the zero id lets each
// attempt mint its own. Partial progress and an error frequently
// coexist: a chain that dies mid-stream still delivered its prefix.
func (s *System) attemptResumable(path []int, shared wire.SessionID, size, offset int64, timeout time.Duration, tid wire.TraceID, extra []wire.Option) (int64, string, error) {
	src, dst := path[0], path[len(path)-1]
	route := make([]wire.Endpoint, 0, len(path)-2)
	for _, h := range path[1 : len(path)-1] {
		route = append(route, s.endpoints[h])
	}
	// Per-hop connect timeout on the first sublink; depots bound their
	// own onward dials.
	dial := lsl.TimeoutDialer(s.dialerFor(src), timeout)
	opts := append(traceOpt(tid), extra...)
	var (
		sess *lsl.Session
		err  error
	)
	if shared != (wire.SessionID{}) {
		sess, err = lsl.OpenAtID(dial, shared, s.endpoints[src], s.endpoints[dst], route, offset, opts...)
	} else {
		sess, err = lsl.OpenAt(dial, s.endpoints[src], s.endpoints[dst], route, offset, opts...)
	}
	if err != nil {
		return 0, "", err
	}
	id := sess.ID().String()
	first := dst
	if len(path) > 2 {
		first = path[1]
	}
	s.emitHop0(sess.ID(), tid, src, obs.KindConnect, obs.Event{Peer: s.endpoints[first].String(), Bytes: offset})
	ch := s.registerWaiter(sess.ID())
	defer s.dropWaiter(sess.ID())

	// A stalled chain must not pin the sender forever: every write this
	// attempt makes races the same deadline.
	deadline := time.Now().Add(timeout)
	_ = sess.SetWriteDeadline(deadline)
	s.emitHop0(sess.ID(), tid, src, obs.KindFirstByte, obs.Event{})
	werr := writeSessionPatternFrom(sess, offset, size)
	sess.Close()
	if werr == nil {
		s.emitHop0(sess.ID(), tid, src, obs.KindLastByte, obs.Event{Bytes: size - offset})
	}

	// Wait for the sink's report of what actually landed. A cleanly
	// written attempt waits out the deadline for the delivery report —
	// that report IS the success signal. A torn attempt waits only a
	// short drain window: the chain is already down, and only bytes in
	// flight can still reach the sink (they count as acked progress the
	// retry does not re-send).
	settle := time.Until(deadline)
	if werr != nil || settle < drainWindow {
		settle = drainWindow
	}
	// Attempts share one session id, so a late report from an earlier
	// torn attempt can land here. Progress is therefore measured
	// against this attempt's resume offset: a stale report (whose range
	// starts no deeper than offset) can only under-report, never
	// advance the ack past what the sink verified.
	progress := func(res deliverResult) int64 {
		if got := res.offset + res.bytes - offset; got > 0 {
			return got
		}
		return 0
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return progress(res), id, fmt.Errorf("core: sink: %w", res.err)
		}
		if werr != nil && res.offset+res.bytes < size {
			return progress(res), id, fmt.Errorf("core: send: %w", werr)
		}
		return progress(res), id, nil
	case <-time.After(settle):
		if werr != nil {
			return 0, id, fmt.Errorf("core: send: %w", werr)
		}
		return 0, id, retry.AsTransient(fmt.Errorf("core: no sink report within %v", settle))
	}
}

// failoverPath consults the scheduler for a route around the current
// path's failed depots. Dead relays are detected with a transport
// probe (a killed depot's listener refuses); when every probe succeeds
// the fault is byzantine — alive but corrupting or stalling — and all
// current relays are condemned together. The avoided set accumulates
// in the planner query only for this call chain: each failover starts
// from the current path, so a depot exonerated by a replan can return.
func (s *System) failoverPath(si, di int, cur []int, sessID string, tid wire.TraceID) []int {
	avoid := make(map[int]bool)
	var dead []int
	for _, h := range cur[1 : len(cur)-1] {
		if !s.probeHost(si, h) {
			dead = append(dead, h)
		}
	}
	if len(dead) == 0 {
		dead = append(dead, cur[1:len(cur)-1]...)
	}
	for _, h := range dead {
		avoid[h] = true
	}
	next, err := s.Planner.PathAvoiding(si, di, avoid)
	if err != nil || len(next) < 2 {
		next = []int{si, di}
	}
	names := make([]string, 0, len(dead))
	for _, h := range dead {
		names = append(names, s.Topo.Hosts[h].Name)
	}
	sort.Strings(names)
	s.cfg.Metrics.Counter(MetricFailovers).Inc()
	firstHop := next[len(next)-1]
	if len(next) > 2 {
		firstHop = next[1]
	}
	s.emitRecovery(sessID, tid, si, obs.KindFailover, obs.Event{
		Peer:   s.endpoints[firstHop].String(),
		Detail: "avoiding " + strings.Join(names, ","),
	})
	return next
}

// probeHost reports whether host h accepts transport connections from
// host from.
func (s *System) probeHost(from, h int) bool {
	conn, err := s.Net.Dial(s.hostAddr(from), s.endpoints[h].String())
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// emitRecovery reports a recovery decision as a hop-0 trace event.
// Unlike emitHop0 it tolerates an empty session id (a retry after a
// failed dial has no session yet) — the trace id still correlates the
// event with the logical transfer it belongs to.
func (s *System) emitRecovery(sessID string, tid wire.TraceID, src int, kind string, e obs.Event) {
	e.Kind = kind
	e.Session = sessID
	if !tid.IsZero() {
		e.Trace = tid.String()
	}
	e.Hop = 0
	e.Node = s.endpoints[src].String()
	obs.Emit(s.cfg.Trace, e)
}

// writeSessionPatternFrom streams the session's deterministic pattern
// for absolute object offsets [from, size) — through the chunk framer
// when the session is checksummed. The copy buffer is pooled with the
// depot pumps and sink loops.
func writeSessionPatternFrom(sess *lsl.Session, from, size int64) error {
	w := sessionWriter(sess)
	bp := bufpool.Get()
	defer bufpool.Put(bp)
	buf := *bp
	written := from
	for written < size {
		n := int64(len(buf))
		if remaining := size - written; remaining < n {
			n = remaining
		}
		depot.FillPattern(buf[:n], sess.ID(), written)
		m, err := w.Write(buf[:n])
		written += int64(m)
		if err != nil {
			return err
		}
	}
	return nil
}
