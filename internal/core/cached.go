package core

import (
	"context"
	"fmt"
	"time"

	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// Cache-offload metric names reported into Config.Metrics by
// TransferCached.
const (
	// MetricCacheServedBytes counts payload bytes delivered out of depot
	// caches instead of re-sent by the origin.
	MetricCacheServedBytes = "core_cache_served_bytes_total"
	// MetricCacheFallbacks counts cached transfers that had to fall back
	// to an origin send after a serve directive failed partway.
	MetricCacheFallbacks = "core_cache_fallbacks_total"
)

// CachedResult extends TransferResult with the cache-offload split: how
// many payload bytes the origin actually sent versus how many a depot
// cache served, and which depot served them.
type CachedResult struct {
	TransferResult
	// OriginBytes is the payload the origin sent (cold prefix plus any
	// fallback re-sends). Zero on a full cache hit.
	OriginBytes int64
	// CachedBytes is the payload a depot cache served.
	CachedBytes int64
	// Holder names the serving depot's host; empty when the transfer ran
	// entirely from the origin.
	Holder string
}

// TransferCached moves one content-addressed object from srcHost to
// dstHost, serving as much of it as possible from depot caches along
// the planned path. The object is identified by id: its payload is the
// deterministic session pattern of id over size bytes, so its content
// digest — the cache key every depot tracks — is computable up front
// and stable across repeat transfers.
//
// The transfer runs in phases. The path's relay depots are probed for
// the digest; the holder covering the longest suffix of the object
// wins. Any cold prefix the cache cannot supply is sent by the origin
// first (the sink's end-to-end digest is order-sensitive), then the
// holder is directed to serve the remainder out of its cache. A serve
// that dies partway — a tampered cache span fails its CRC on read, for
// instance — falls back to an origin re-send resuming at the sink's
// acked offset, so cache corruption costs throughput, never
// correctness: the sink's whole-object digest check stands regardless
// of who supplied which range.
//
// A transfer with no holder is an ordinary reliable send that, as a
// side effect, populates the caches of every depot it traverses —
// that is what makes the next TransferCached of the same object warm.
func (s *System) TransferCached(srcHost, dstHost string, id wire.SessionID, size int64, pol RecoveryPolicy) (CachedResult, error) {
	if size <= 0 {
		return CachedResult{}, fmt.Errorf("core: transfer size %d must be positive", size)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return CachedResult{}, err
	}
	di, err := s.resolve(dstHost)
	if err != nil {
		return CachedResult{}, err
	}
	pol = pol.withDefaults()
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return CachedResult{}, err
	}
	if path == nil {
		path = []int{si, di}
	}

	digest := depot.PatternDigest(id, size)
	// Cached transfers always travel with integrity stamps: the chunk
	// framing is what lets depots trust (and cache) forwarded bytes, and
	// the content digest is the cache key itself.
	integrity := integrityOptions(id, size)
	defer s.digests.drop(id)
	tid := mintTrace()
	start := time.Now()

	holder, coldEnd := s.bestHolder(si, path, digest)
	out := CachedResult{}
	if holder > 0 {
		out.Holder = s.Topo.Hosts[path[holder]].Name
	}

	var acked int64
	// Phase A: origin-send the cold prefix the cache cannot supply. The
	// sink digests bytes strictly in order, so the prefix must be acked
	// before any cache serve begins.
	if coldEnd > 0 {
		got, aerr := s.sendRange(path, id, 0, coldEnd, pol, tid, integrity)
		acked += got
		out.OriginBytes += got
		if aerr != nil && acked < coldEnd {
			s.observeTransfer(TransferResult{}, aerr)
			return out, aerr
		}
	}

	// Phase B: direct the holder to serve the remainder from its cache.
	if holder > 0 && acked < size {
		r := wire.ByteRange{Off: acked, Len: size - acked}
		got := s.serveFromCache(si, path, holder, id, digest, r, pol.AttemptTimeout, tid, integrity)
		acked += got
		out.CachedBytes += got
		s.cfg.Metrics.Counter(MetricCacheServedBytes).Add(got)
		if acked < size {
			// The serve came up short (refused, or a cached span failed
			// its CRC mid-read). Phase C re-sends the rest from the
			// origin.
			s.cfg.Metrics.Counter(MetricCacheFallbacks).Inc()
		}
	}

	// Phase C: whatever is still missing comes from the origin under the
	// normal retry schedule. A depot that still holds a good copy may
	// short-circuit this send from its own cache — that is offload too,
	// but it is counted as origin traffic here because the origin paid
	// to stream the bytes into the network again.
	if acked < size {
		got, aerr := s.sendRange(path, id, acked, size, pol, tid, integrity)
		acked += got
		out.OriginBytes += got
		if aerr != nil && acked < size {
			err := fmt.Errorf("core: cached transfer delivered %d of %d bytes: %w", acked, size, aerr)
			s.observeTransfer(TransferResult{}, err)
			return out, err
		}
	}
	out.TransferResult = s.result(size, time.Since(start), path)
	s.observeTransfer(out.TransferResult, nil)
	return out, nil
}

// bestHolder probes the path's relay depots for the digest and returns
// the path index of the depot whose cache covers the longest suffix of
// the object, plus the first byte that suffix starts at (the cold
// prefix boundary). A zero holder index means no usable holder; a
// coldEnd of 0 means a full-object hit.
func (s *System) bestHolder(si int, path []int, digest wire.ContentDigest) (holder int, coldEnd int64) {
	coldEnd = digest.Size
	dial := s.dialerFor(si)
	for i := 1; i < len(path)-1; i++ {
		ranges, err := lsl.CacheProbe(dial, s.endpoints[si], s.endpoints[path[i]], digest)
		if err != nil {
			continue // no cache there, or unreachable: not a holder
		}
		c := suffixStart(ranges, digest.Size)
		// Prefer the longest suffix; on ties the later depot wins — it
		// is nearer the destination, so more hops are offloaded.
		if c < digest.Size && c <= coldEnd {
			holder, coldEnd = i, c
		}
	}
	if holder == 0 {
		coldEnd = digest.Size
	}
	return holder, coldEnd
}

// suffixStart returns the first byte of the contiguous cached suffix
// ending exactly at size, or size when the cache holds no such suffix.
// Advertised ranges are canonical (sorted, coalesced, non-overlapping),
// so only the last range can carry the suffix.
func suffixStart(ranges []wire.ByteRange, size int64) int64 {
	if n := len(ranges); n > 0 && ranges[n-1].End() == size {
		return ranges[n-1].Off
	}
	return size
}

// sendRange streams the object's [from, to) range from the origin under
// the retry schedule, returning the bytes the sink verified. The range
// end is private to the sender — the wire header carries only the
// resume offset — so partial sends and retries compose exactly as in
// TransferReliable.
func (s *System) sendRange(path []int, id wire.SessionID, from, to int64, pol RecoveryPolicy, tid wire.TraceID, extra []wire.Option) (int64, error) {
	var (
		acked   = from
		lastErr error
	)
	for attempt := 0; attempt < pol.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.cfg.Metrics.Counter(MetricRetryAttempts).Inc()
			if err := pol.Retry.Sleep(context.Background(), attempt-1); err != nil {
				break
			}
		}
		got, aerr := s.attemptRange(path, id, acked, to, pol.AttemptTimeout, tid, extra)
		acked += got
		if aerr == nil && acked >= to {
			return acked - from, nil
		}
		if aerr == nil {
			aerr = retry.AsTransient(fmt.Errorf("core: sink acked %d of %d bytes", acked, to))
		}
		if retry.IsFatal(aerr) {
			return acked - from, fmt.Errorf("core: fatal: %w", aerr)
		}
		lastErr = aerr
	}
	if acked < to {
		return acked - from, fmt.Errorf("core: %w: %w", retry.ErrExhausted, lastErr)
	}
	return acked - from, nil
}

// attemptRange is one origin session delivering [offset, to): the
// cached-transfer analogue of attemptResumable with a private range
// end.
func (s *System) attemptRange(path []int, id wire.SessionID, offset, to int64, timeout time.Duration, tid wire.TraceID, extra []wire.Option) (int64, error) {
	src, dst := path[0], path[len(path)-1]
	route := make([]wire.Endpoint, 0, len(path)-2)
	for _, h := range path[1 : len(path)-1] {
		route = append(route, s.endpoints[h])
	}
	dial := lsl.TimeoutDialer(s.dialerFor(src), timeout)
	opts := append(traceOpt(tid), extra...)
	sess, err := lsl.OpenAtID(dial, id, s.endpoints[src], s.endpoints[dst], route, offset, opts...)
	if err != nil {
		return 0, err
	}
	first := dst
	if len(path) > 2 {
		first = path[1]
	}
	s.emitHop0(sess.ID(), tid, src, obs.KindConnect, obs.Event{Peer: s.endpoints[first].String(), Bytes: offset})
	ch := s.registerWaiter(sess.ID())
	defer s.dropWaiter(sess.ID())
	deadline := time.Now().Add(timeout)
	_ = sess.SetWriteDeadline(deadline)
	werr := writeSessionPatternFrom(sess, offset, to)
	sess.Close()

	settle := time.Until(deadline)
	if werr != nil || settle < drainWindow {
		settle = drainWindow
	}
	progress := func(res deliverResult) int64 {
		if got := res.offset + res.bytes - offset; got > 0 {
			return got
		}
		return 0
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return progress(res), fmt.Errorf("core: sink: %w", res.err)
		}
		if werr != nil && res.offset+res.bytes < to {
			return progress(res), fmt.Errorf("core: send: %w", werr)
		}
		return progress(res), nil
	case <-time.After(settle):
		if werr != nil {
			return 0, fmt.Errorf("core: send: %w", werr)
		}
		return 0, retry.AsTransient(fmt.Errorf("core: no sink report within %v", settle))
	}
}

// serveFromCache sends the serve directive to the holding depot and
// waits for the sink's report, returning the bytes the cache actually
// delivered. Failures are soft: a refusal, a partial serve, or silence
// all just leave bytes for the origin fallback to send.
func (s *System) serveFromCache(si int, path []int, holder int, id wire.SessionID, digest wire.ContentDigest, r wire.ByteRange, timeout time.Duration, tid wire.TraceID, extra []wire.Option) int64 {
	// The directive's route runs from the holder along the rest of the
	// planned path; the holder pushes cached bytes down exactly the hops
	// the origin stream would have taken from there.
	route := make([]wire.Endpoint, 0, len(path)-holder-1)
	for _, h := range path[holder : len(path)-1] {
		route = append(route, s.endpoints[h])
	}
	dst := path[len(path)-1]
	dial := lsl.TimeoutDialer(s.dialerFor(si), timeout)
	opts := append(traceOpt(tid), extra...)
	sess, err := lsl.OpenCacheServe(dial, id, s.endpoints[si], s.endpoints[dst], route, digest, r, opts...)
	if err != nil {
		return 0
	}
	defer sess.Close()
	ch := s.registerWaiter(id)
	defer s.dropWaiter(id)
	s.emitHop0(id, tid, si, obs.KindConnect, obs.Event{
		Peer:   s.endpoints[path[holder]].String(),
		Detail: fmt.Sprintf("cache serve [%d,%d)", r.Off, r.End()),
	})

	// A holder that cannot satisfy the directive answers with a refusal
	// on this connection; a successful serve sends nothing back.
	refused := make(chan struct{}, 1)
	go func() {
		if h, rerr := wire.ReadHeader(sess); rerr == nil && h.Type == wire.TypeRefuse {
			refused <- struct{}{}
		}
	}()

	progress := func(res deliverResult) int64 {
		if got := res.offset + res.bytes - r.Off; got > 0 {
			return got
		}
		return 0
	}
	select {
	case res := <-ch:
		return progress(res)
	case <-refused:
		return 0
	case <-time.After(timeout):
		return 0
	}
}

// DepotCache returns the named host's depot cache, or nil when the
// system runs without caches. Experiments use it to inspect — and
// tamper with — cached state deterministically.
func (s *System) DepotCache(host string) *cache.Cache {
	i, err := s.resolve(host)
	if err != nil || i >= len(s.caches) {
		return nil
	}
	return s.caches[i]
}
