// Package core is the top-level façade of the library: it assembles a
// complete in-process LSL deployment — an emulated wide-area network
// built from a performance topology, a depot server on every host, an
// NWS-fed Minimax-Path planner — and exposes the operations a Grid
// application performs: scheduled transfers, direct transfers, and
// multicast staging.
//
// A System is the "middleware bundle" the paper argues Grid
// environments need: applications name hosts, the planner chooses the
// forwarding path, and the session layer moves the bytes through
// depots.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/netlogistics/lsl/internal/bufpool"
	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/ctl"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

// Config parameterizes System construction.
type Config struct {
	// TimeScale compresses emulated time: 0.01 runs a 40 ms link with
	// 0.4 ms of real latency (and scales rates to match). Defaults to
	// 0.01.
	TimeScale float64
	// Epsilon is the scheduler's edge-equivalence (negative selects
	// schedule.DefaultEpsilon).
	Epsilon float64
	// PrimeSamples seeds the NWS monitor before the first plan
	// (default 8).
	PrimeSamples int
	// Seed drives every random choice.
	Seed int64
	// BasePort is the depot listening port (default 7411).
	BasePort uint16
	// FeedObservations feeds the measured bandwidth of each completed
	// direct transfer back into the NWS monitor, so subsequent Replan
	// calls schedule from live data instead of only the priming
	// measurements — the paper's continuous-measurement operating mode.
	FeedObservations bool
	// ControlPlane runs the deployment in controller-owned routing mode:
	// every depot is table-driven (no live planner access, no direct
	// fallback for unrouted destinations) and an in-process ctl
	// controller probes the mesh, replans and pushes epoch-stamped route
	// tables. ControlRound advances it deterministically.
	ControlPlane bool
	// MaxHops bounds depot forwarding chains (0 selects
	// DefaultMaxHops under ControlPlane, unlimited otherwise).
	MaxHops int
	// Metrics, when non-nil, is shared by every depot in the system and
	// by the transfer façade: depot counters and back-pressure gauges
	// aggregate across hosts, and core_transfer_* metrics record each
	// completed transfer.
	Metrics *obs.Registry
	// Trace, when non-nil, receives hop-indexed session lifecycle
	// events from every depot plus the initiator's hop-0 events — an
	// ordered per-hop trace of each transfer.
	Trace obs.Sink
	// Sessions, when non-nil, tracks in-flight sessions across every
	// depot for live inspection.
	Sessions *obs.SessionTable
	// FairShare, when non-nil, attaches a weighted fair-share chunk
	// scheduler to every depot in the system. Each depot gets its own
	// scheduler (its downstream trunk is an independent resource), so
	// concurrent sessions through one depot split that depot's
	// forwarding capacity by their carried weights. A zero Rate keeps
	// every scheduler work-conserving: arbitration without shaping.
	FairShare *fairshare.Config
	// MaxSessions caps concurrent sessions per depot (0 = unlimited),
	// and QueueDepth/QueueTimeout configure each depot's bounded
	// admission queue, exactly as in depot.Config.
	MaxSessions  int
	QueueDepth   int
	QueueTimeout time.Duration
	// CacheBytes, when positive, attaches a content-addressed chunk
	// cache of that many memory bytes to every depot in the system.
	// Depots populate their caches from integrity-stamped forwarded
	// traffic and serve repeat transfers of the same object locally;
	// TransferCached is the façade operation that exploits them.
	CacheBytes int64
	// Integrity runs every transfer with end-to-end data integrity:
	// payloads travel as CRC-32C-framed chunks that every depot hop
	// verifies and re-stamps (so the corrupting hop is identified), and
	// unstriped transfers additionally carry a whole-object SHA-256
	// digest the sink checks on completion. Detected corruption is a
	// transient error — the reliable transfer paths re-send the damaged
	// range through the resume continuation instead of aborting.
	Integrity bool
}

func (c Config) withDefaults() Config {
	if c.TimeScale <= 0 {
		c.TimeScale = 0.01
	}
	if c.Epsilon < 0 {
		c.Epsilon = schedule.DefaultEpsilon
	}
	if c.PrimeSamples <= 0 {
		c.PrimeSamples = 8
	}
	if c.BasePort == 0 {
		c.BasePort = 7411
	}
	if c.ControlPlane && c.MaxHops == 0 {
		c.MaxHops = DefaultMaxHops
	}
	return c
}

// DefaultMaxHops is the forwarding TTL of control-plane deployments:
// far above any sane relay chain, low enough that a transient routing
// loop burns out quickly.
const DefaultMaxHops = 16

// System is a running in-process LSL deployment.
type System struct {
	Topo    *topo.Topology
	Net     *emu.Network
	Planner *schedule.Planner

	cfg       Config
	endpoints []wire.Endpoint // host index → endpoint
	byAddr    map[wire.Endpoint]int
	depots    []*depot.Server
	caches    []*cache.Cache // host index → depot cache (nil without CacheBytes)
	faults    []*depot.FaultInjector
	listeners []net.Listener
	rng       *rand.Rand
	control   *ctl.Controller

	mu      sync.Mutex
	waiters map[wire.SessionID]chan deliverResult
	digests digestTracker

	closeOnce sync.Once
}

type deliverResult struct {
	bytes  int64
	offset int64 // absolute object offset the delivered range began at
	err    error
}

// NewSystem builds the deployment: an emulated link per host pair, a
// depot server per host, and a primed, planned scheduler.
func NewSystem(t *topo.Topology, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	planner, err := schedule.NewPlanner(t, cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &System{
		Topo:      t,
		Net:       emu.NewNetwork(cfg.TimeScale),
		Planner:   planner,
		cfg:       cfg,
		endpoints: make([]wire.Endpoint, t.N()),
		byAddr:    make(map[wire.Endpoint]int, t.N()),
		depots:    make([]*depot.Server, t.N()),
		caches:    make([]*cache.Cache, t.N()),
		faults:    make([]*depot.FaultInjector, t.N()),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		waiters:   make(map[wire.SessionID]chan deliverResult),
	}

	// Address plan: host i gets 10.(i/200).(i%200+1).1.
	for i := 0; i < t.N(); i++ {
		e := wire.Endpoint{
			IP:   [4]byte{10, byte(i / 200), byte(i%200 + 1), 1},
			Port: cfg.BasePort,
		}
		s.endpoints[i] = e
		s.byAddr[e] = i
	}

	// Emulated links: one-way latency is half the path RTT; rates are
	// scaled so emulated bandwidth is preserved under time compression.
	for i := 0; i < t.N(); i++ {
		for j := i + 1; j < t.N(); j++ {
			l := t.Link(i, j)
			if !l.Valid() {
				continue
			}
			window := t.Hosts[i].SndBuf
			if r := t.Hosts[j].RcvBuf; r < window {
				window = r
			}
			s.Net.SetLink(s.hostAddr(i), s.hostAddr(j), emu.LinkProps{
				Latency: time.Duration(float64(l.RTT.Std()) / 2),
				Rate:    l.Capacity / cfg.TimeScale,
				Window:  int(window),
			})
		}
	}

	// One depot per host. Non-depot hosts still run a server so they
	// can terminate sessions, but the planner never routes through
	// them.
	for i := 0; i < t.N(); i++ {
		i := i
		s.faults[i] = depot.NewFaultInjector()
		dcfg := depot.Config{
			Self: s.endpoints[i],
			Dial: lsl.DialerFunc(func(address string) (net.Conn, error) {
				return s.Net.Dial(s.hostAddr(i), address)
			}),
			Routes:        s.routeLookup(i),
			Local:         s.localHandler(),
			PipelineBytes: int(pipelineOf(t.Hosts[i])),
			MaxHops:       cfg.MaxHops,
			Metrics:       cfg.Metrics,
			Trace:         cfg.Trace,
			Sessions:      cfg.Sessions,
			Faults:        s.faults[i],
			MaxSessions:   cfg.MaxSessions,
			QueueDepth:    cfg.QueueDepth,
			QueueTimeout:  cfg.QueueTimeout,
		}
		if cfg.FairShare != nil {
			dcfg.FairShare = fairshare.New(*cfg.FairShare)
		}
		if cfg.CacheBytes > 0 {
			c, err := cache.New(cache.Config{MemoryBytes: cfg.CacheBytes, Metrics: cfg.Metrics})
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("core: cache %s: %w", t.Hosts[i].Name, err)
			}
			s.caches[i] = c
			dcfg.Cache = c
		}
		if cfg.ControlPlane {
			// Controller-owned routing: no live planner access, no direct
			// fallback — the depot knows only what the controller pushed.
			dcfg.Routes = nil
			dcfg.TableDriven = true
			dcfg.AcceptControl = true
		}
		d, err := depot.New(dcfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: depot %s: %w", t.Hosts[i].Name, err)
		}
		s.depots[i] = d
		ln, err := s.Net.Listen(s.endpoints[i].String())
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("core: listen %s: %w", t.Hosts[i].Name, err)
		}
		s.listeners = append(s.listeners, ln)
		go d.Serve(ln) //nolint:errcheck // serve exits when the listener closes
	}

	if err := planner.Prime(s.rng, cfg.PrimeSamples); err != nil {
		s.Close()
		return nil, err
	}
	if err := planner.Replan(); err != nil {
		s.Close()
		return nil, err
	}
	if cfg.ControlPlane {
		if err := s.startControl(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func pipelineOf(h topo.Host) int64 {
	if h.PipelineBytes > 0 {
		return h.PipelineBytes
	}
	return depot.DefaultPipelineBytes
}

// hostAddr is the emulated-network host identity of host index i (its
// IPv4 address as text).
func (s *System) hostAddr(i int) string {
	e := s.endpoints[i]
	return fmt.Sprintf("%d.%d.%d.%d", e.IP[0], e.IP[1], e.IP[2], e.IP[3])
}

// Endpoint returns host i's LSL endpoint.
func (s *System) Endpoint(i int) wire.Endpoint { return s.endpoints[i] }

// Fault returns the named host's depot fault injector, the handle
// chaos tests use to break the data path deterministically.
func (s *System) Fault(host string) (*depot.FaultInjector, error) {
	i, err := s.resolve(host)
	if err != nil {
		return nil, err
	}
	return s.faults[i], nil
}

// KillDepot abruptly stops the named host's depot — server and
// listener — so in-flight sessions through it die and new connections
// are refused, exactly as a crashed depot machine behaves. There is no
// resurrection; the planner's forecasts still advertise the host until
// recovery reroutes around it.
func (s *System) KillDepot(host string) error {
	i, err := s.resolve(host)
	if err != nil {
		return err
	}
	s.depots[i].Close()
	if i < len(s.listeners) && s.listeners[i] != nil {
		s.listeners[i].Close()
	}
	return nil
}

// routeLookup builds a depot's route-table function from the planner's
// tree rooted at that host, resolved lazily so replans take effect.
func (s *System) routeLookup(host int) func(wire.Endpoint) (wire.Endpoint, bool) {
	return func(dst wire.Endpoint) (wire.Endpoint, bool) {
		di, ok := s.byAddr[dst]
		if !ok {
			return wire.Endpoint{}, false
		}
		tree, err := s.Planner.Tree(host)
		if err != nil {
			return wire.Endpoint{}, false
		}
		next := tree.NextHop(graphNode(di))
		if next < 0 {
			return wire.Endpoint{}, false
		}
		return s.endpoints[int(next)], true
	}
}

// localHandler verifies delivered payloads against the session pattern
// and completes any registered waiter. A resumed (or striped) session's
// pattern is verified from its carried offset, so a continuation
// appends to the interrupted transfer instead of restarting it — and a
// stripe lands in its own byte range of the shared object. The read
// buffer is pooled: sinks of striped transfers run one of these loops
// per stripe.
//
// The sink is also the last verify point of an integrity-enabled
// session: chunk framing is stripped here (a chunk damaged on the final
// hop fails the delivery instead of landing silently), and when the
// header carries the sender's content digest the verified bytes feed a
// running SHA-256 that must match on completion. Striped sessions skip
// the digest — their ranges interleave across sibling sessions — and
// stay protected by the per-chunk checksums alone. Multipath sessions
// keep it: their ranges also land out of order, but each range is
// contiguous, so the tracker buffers ahead-of-frontier segments and
// stitches the one end-to-end SHA-256 across every route.
func (s *System) localHandler() depot.Handler {
	return func(sess *lsl.Session) error {
		var (
			total int64
			verr  error
		)
		base := sess.Header.ResumeOffset()
		var src io.Reader = sess
		if sess.Header.Checksummed() {
			src = wire.NewFrameReader(sess)
		}
		want, haveDigest := sess.Header.ContentDigest()
		multi := sess.Header.PathCount() > 1
		haveDigest = haveDigest && sess.Header.StripeCount() <= 1
		bp := bufpool.Get()
		defer bufpool.Put(bp)
		buf := *bp
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if verr == nil {
					verr = depot.VerifyPattern(buf[:n], sess.ID(), base+total)
					if verr == nil && haveDigest {
						if multi {
							s.digests.absorbOutOfOrder(sess.ID(), base+total, buf[:n])
						} else {
							s.digests.absorb(sess.ID(), base+total, buf[:n])
						}
					}
				}
				total += int64(n)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				verr = err
				break
			}
		}
		if verr == nil && haveDigest {
			done, derr := s.digests.finalize(sess.ID(), want)
			if done && derr == nil && multi {
				s.cfg.Metrics.Counter(MetricMultipathDigestVerified).Inc()
			}
			if done && derr != nil {
				verr = derr
				s.cfg.Metrics.Counter(MetricDigestMismatches).Inc()
				e := obs.Event{
					Kind:    obs.KindCorrupt,
					Session: sess.ID().String(),
					Node:    sess.Header.Dst.String(),
					Bytes:   total,
					Detail:  derr.Error(),
				}
				if tid, ok := sess.Header.TraceID(); ok {
					e.Trace = tid.String()
				}
				obs.Emit(s.cfg.Trace, e)
			}
		}
		s.complete(sess.ID(), deliverResult{bytes: total, offset: base, err: verr})
		return verr
	}
}

func (s *System) registerWaiter(id wire.SessionID) chan deliverResult {
	return s.registerWaiterN(id, 8)
}

// registerWaiterN registers a waiter channel with room for n reports —
// striped transfers receive one report per stripe attempt under a
// single session id, so the channel must never block the sinks.
func (s *System) registerWaiterN(id wire.SessionID, n int) chan deliverResult {
	ch := make(chan deliverResult, n)
	s.mu.Lock()
	s.waiters[id] = ch
	s.mu.Unlock()
	return ch
}

func (s *System) complete(id wire.SessionID, r deliverResult) {
	s.mu.Lock()
	ch := s.waiters[id]
	s.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

func (s *System) dropWaiter(id wire.SessionID) {
	s.mu.Lock()
	delete(s.waiters, id)
	s.mu.Unlock()
}

// Close shuts down every listener.
func (s *System) Close() {
	s.closeOnce.Do(func() {
		for _, d := range s.depots {
			if d != nil {
				d.Close()
			}
		}
		for _, ln := range s.listeners {
			ln.Close()
		}
	})
}
