package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// StoreResult reports an asynchronous staging operation.
type StoreResult struct {
	Session wire.SessionID
	Bytes   int64
	Elapsed time.Duration // emulated
	Path    []string
}

// StoreAt stages size bytes from srcHost into the depot on depotHost
// asynchronously: the payload travels the planner's route and is held
// at the depot under the returned session id until a receiver fetches
// it — the paper's asynchronous session mode, where sender and receiver
// need not exist at the same time. It is StoreAtContext bounded by the
// package transfer timeout.
func (s *System) StoreAt(srcHost, depotHost string, size int64) (StoreResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), transferTimeout)
	defer cancel()
	return s.StoreAtContext(ctx, srcHost, depotHost, size)
}

// StoreAtContext is StoreAt under the caller's context: cancellation or
// deadline expiry aborts the wait for the depot's store confirmation.
func (s *System) StoreAtContext(ctx context.Context, srcHost, depotHost string, size int64) (StoreResult, error) {
	if size <= 0 {
		return StoreResult{}, fmt.Errorf("core: store size %d must be positive", size)
	}
	si, err := s.resolve(srcHost)
	if err != nil {
		return StoreResult{}, err
	}
	di, err := s.resolve(depotHost)
	if err != nil {
		return StoreResult{}, err
	}
	if !s.Topo.Hosts[di].Depot {
		return StoreResult{}, fmt.Errorf("core: host %s runs no depot", depotHost)
	}
	path, err := s.Planner.Path(si, di)
	if err != nil {
		return StoreResult{}, err
	}
	if path == nil {
		return StoreResult{}, fmt.Errorf("core: no route %s → %s", srcHost, depotHost)
	}
	route := make([]wire.Endpoint, 0, len(path)-2)
	for _, h := range path[1 : len(path)-1] {
		route = append(route, s.endpoints[h])
	}

	start := time.Now()
	// Stores are traced like transfers: the depot-side events of the
	// staging leg share one correlation key.
	sess, err := lsl.OpenStore(s.dialerFor(si), s.endpoints[si], s.endpoints[di], route, traceOpt(mintTrace())...)
	if err != nil {
		return StoreResult{}, err
	}
	if err := writeSessionPattern(sess, size); err != nil {
		sess.Close()
		return StoreResult{}, fmt.Errorf("core: store send: %w", err)
	}
	sess.Close()

	// The store is confirmed when the depot holds the whole session.
	// The depot exposes no completion signal, so poll on a ticker — but
	// under the context, not a hand-rolled wall-clock deadline.
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		if n, ok := s.depots[di].StoredSession(sess.ID()); ok && n >= size {
			break
		}
		select {
		case <-ctx.Done():
			return StoreResult{}, fmt.Errorf("core: store at %s: %w", depotHost, ctx.Err())
		case <-tick.C:
		}
	}
	elapsed := time.Duration(float64(time.Since(start)) / s.cfg.TimeScale)
	return StoreResult{
		Session: sess.ID(),
		Bytes:   size,
		Elapsed: elapsed,
		Path:    s.hostNames(path),
	}, nil
}

// FetchFrom retrieves a stored session from depotHost to dstHost,
// verifying the payload pattern end to end.
func (s *System) FetchFrom(dstHost, depotHost string, id wire.SessionID) (TransferResult, error) {
	di, err := s.resolve(dstHost)
	if err != nil {
		return TransferResult{}, err
	}
	pi, err := s.resolve(depotHost)
	if err != nil {
		return TransferResult{}, err
	}

	start := time.Now()
	sess, err := lsl.Fetch(s.dialerFor(di), s.endpoints[di], s.endpoints[pi], id)
	if err != nil {
		return TransferResult{}, fmt.Errorf("core: fetch: %w", err)
	}
	defer sess.Close()

	var total int64
	buf := make([]byte, 32<<10)
	for {
		n, rerr := sess.Read(buf)
		if n > 0 {
			if verr := depot.VerifyPattern(buf[:n], id, total); verr != nil {
				return TransferResult{}, fmt.Errorf("core: fetch verification: %w", verr)
			}
			total += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return TransferResult{}, fmt.Errorf("core: fetch read: %w", rerr)
		}
	}
	elapsed := time.Duration(float64(time.Since(start)) / s.cfg.TimeScale)
	bw := 0.0
	if elapsed > 0 {
		bw = float64(total) / elapsed.Seconds()
	}
	return TransferResult{
		Bytes:     total,
		Elapsed:   elapsed,
		Bandwidth: bw,
		Path:      []string{depotHost, dstHost},
	}, nil
}
