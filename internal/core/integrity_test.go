package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

// integritySystem is chainSystem with end-to-end integrity enabled.
func integritySystem(t *testing.T, reg *obs.Registry) (*System, *obs.MemorySink) {
	t.Helper()
	mem := &obs.MemorySink{}
	sys, err := NewSystem(chainTopology(t), Config{
		TimeScale: 0.0005,
		Seed:      1,
		Metrics:   reg,
		Trace:     mem,
		Integrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys, mem
}

// TestIntegrityCleanTransferVerifies: with integrity on, an unmolested
// transfer completes, counts no mismatches, and leaves no digest state
// behind at the sink.
func TestIntegrityCleanTransferVerifies(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := integritySystem(t, reg)

	const size = 128 << 10
	res, err := sys.Transfer("src", "dst", size)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if v := reg.Counter(MetricDigestMismatches).Value(); v != 0 {
		t.Fatalf("%s = %d on a clean transfer", MetricDigestMismatches, v)
	}
	if v := reg.Counter(depot.MetricChecksumErrors).Value(); v != 0 {
		t.Fatalf("%s = %d on a clean transfer", depot.MetricChecksumErrors, v)
	}
	for _, e := range mem.Events() {
		if e.Kind == obs.KindCorrupt {
			t.Fatalf("clean transfer emitted a corrupt event: %+v", e)
		}
	}
	sys.digests.mu.Lock()
	leaked := len(sys.digests.m)
	sys.digests.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d digest states leaked after completion", leaked)
	}
}

// TestIntegrityRecoversFromRelayCorruption is the tentpole acceptance
// scenario: a relay corrupts a byte mid-stream. The corrupting hop's
// chunk verifier must catch it (not the sink's pattern check), the
// failure must classify as transient, and the reliable transfer must
// re-send the damaged range via the resume path and finish with the
// correct bytes — the exact fault that is FATAL without integrity
// (TestReliableCorruptionIsFatal).
func TestIntegrityRecoversFromRelayCorruption(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := integritySystem(t, reg)

	f, err := sys.Fault("relay-a")
	if err != nil {
		t.Fatal(err)
	}
	f.CorruptAfter(16 << 10)

	const size = 64 << 10
	res, err := sys.TransferReliable("src", "dst", size, RecoveryPolicy{
		Retry: fastPolicy(4), AttemptTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatalf("corruption was not recovered: %v", err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
	if v := reg.Counter(depot.MetricChecksumErrors).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", depot.MetricChecksumErrors, v)
	}
	if v := reg.Counter(MetricRetryAttempts).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1 — corruption must burn a retry, not abort", MetricRetryAttempts, v)
	}
	if v := reg.Counter(MetricRecoveryFatal).Value(); v != 0 {
		t.Fatalf("%s = %d, want 0 — detected corruption is transient", MetricRecoveryFatal, v)
	}

	// The corrupt event must blame the corrupting relay, and the retry
	// must appear in the same trace so the collector can assemble the
	// whole detect-and-recover story.
	relayA, _ := sys.Topo.HostIndex("relay-a")
	relayEP := sys.Endpoint(relayA).String()
	var sawCorrupt, sawRetry bool
	for _, e := range mem.Events() {
		switch e.Kind {
		case obs.KindCorrupt:
			if e.Node != relayEP {
				t.Fatalf("corrupt event blames %s, want the corrupting relay %s", e.Node, relayEP)
			}
			sawCorrupt = true
		case obs.KindRetry:
			sawRetry = true
		}
	}
	if !sawCorrupt || !sawRetry {
		t.Fatalf("trace incomplete: corrupt=%v retry=%v", sawCorrupt, sawRetry)
	}
}

// TestIntegrityStripedCorruptionRetransmitsOneStripe corrupts a single
// byte of a striped transfer: exactly one stripe's chain sees the
// damage and retransmits its range while the siblings stream on, and
// the transfer still completes in full.
func TestIntegrityStripedCorruptionRetransmitsOneStripe(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := integritySystem(t, reg)

	f, err := sys.Fault("relay-a")
	if err != nil {
		t.Fatal(err)
	}
	f.CorruptAfter(32 << 10)

	const size, stripes = 256 << 10, 4
	res, err := sys.TransferStriped("src", "dst", size, stripes, RecoveryPolicy{
		Retry: fastPolicy(6), AttemptTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatalf("striped transfer did not recover: %v", err)
	}
	if res.Bytes != size {
		t.Fatalf("bytes = %d, want %d", res.Bytes, size)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
	if v := reg.Counter(depot.MetricChecksumErrors).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", depot.MetricChecksumErrors, v)
	}
	if v := reg.Counter(MetricStripeRetries).Value(); v < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricStripeRetries, v)
	}
	// The single injected fault hits one stripe's chain: the retries it
	// forces must be confined to a single stripe index.
	retried := map[int]bool{}
	for _, e := range mem.Events() {
		if e.Kind == obs.KindRetry {
			if k, ok := e.StripeIndex(); ok {
				retried[k] = true
			}
		}
	}
	if len(retried) != 1 {
		t.Fatalf("retries touched stripes %v, want exactly one stripe", retried)
	}
}

// TestIntegrityDigestMismatchSurfacesAtSink drives the last line of
// defense directly: a session whose advertised digest cannot match (the
// chunks themselves are clean) must fail the delivery with
// wire.ErrDigest — a transient classification — count the mismatch, and
// emit a corrupt trace event.
func TestIntegrityDigestMismatchSurfacesAtSink(t *testing.T) {
	reg := obs.NewRegistry()
	sys, mem := integritySystem(t, reg)

	si, _ := sys.Topo.HostIndex("src")
	di, _ := sys.Topo.HostIndex("dst")
	const size = 32 << 10
	id, err := wire.NewSessionID()
	if err != nil {
		t.Fatal(err)
	}
	want := depot.PatternDigest(id, size)
	want.Sum[0] ^= 0xff // a digest no delivery can satisfy

	sess, err := lsl.OpenAtID(sys.dialerFor(si), id, sys.Endpoint(si), sys.Endpoint(di), nil, 0,
		wire.ChunkChecksumOption(), wire.ContentDigestOption(want))
	if err != nil {
		t.Fatal(err)
	}
	ch := sys.registerWaiter(sess.ID())
	defer sys.dropWaiter(sess.ID())
	if err := writeSessionPattern(sess, size); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	select {
	case res := <-ch:
		if !errors.Is(res.err, wire.ErrDigest) {
			t.Fatalf("sink err = %v, want wire.ErrDigest", res.err)
		}
		if retry.Classify(res.err) != retry.Transient {
			t.Fatalf("digest mismatch classified %v, want Transient", retry.Classify(res.err))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no sink report")
	}
	if v := reg.Counter(MetricDigestMismatches).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricDigestMismatches, v)
	}
	var sawCorrupt bool
	for _, e := range mem.Events() {
		if e.Kind == obs.KindCorrupt {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("digest mismatch emitted no corrupt event")
	}
}

// TestDigestTrackerStitchesAttempts exercises the overlap and gap
// semantics the resume path relies on.
func TestDigestTrackerStitchesAttempts(t *testing.T) {
	payload := bytes.Repeat([]byte("stitch me across attempts "), 100)
	want := wire.ContentDigest{Size: int64(len(payload)), Sum: sha256.Sum256(payload)}
	id := wire.SessionID{1}

	t.Run("overlap skipped", func(t *testing.T) {
		var tr digestTracker
		// Attempt 1 delivers a prefix; the continuation re-sends a
		// chunk straddling the boundary.
		tr.absorb(id, 0, payload[:1000])
		tr.absorb(id, 600, payload[600:])
		done, err := tr.finalize(id, want)
		if !done || err != nil {
			t.Fatalf("done=%v err=%v, want a clean match", done, err)
		}
	})
	t.Run("mismatch detected", func(t *testing.T) {
		var tr digestTracker
		mangled := append([]byte(nil), payload...)
		mangled[42] ^= 1
		tr.absorb(id, 0, mangled)
		done, err := tr.finalize(id, want)
		if !done || !errors.Is(err, wire.ErrDigest) {
			t.Fatalf("done=%v err=%v, want wire.ErrDigest", done, err)
		}
	})
	t.Run("partial awaits continuation", func(t *testing.T) {
		var tr digestTracker
		tr.absorb(id, 0, payload[:100])
		if done, err := tr.finalize(id, want); done || err != nil {
			t.Fatalf("done=%v err=%v on a partial delivery", done, err)
		}
		// The state must survive for the continuation.
		tr.absorb(id, 100, payload[100:])
		if done, err := tr.finalize(id, want); !done || err != nil {
			t.Fatalf("done=%v err=%v after the continuation", done, err)
		}
	})
	t.Run("gap degrades to unchecked", func(t *testing.T) {
		var tr digestTracker
		tr.absorb(id, 0, payload[:100])
		tr.absorb(id, 200, payload[200:]) // hole at [100, 200)
		if done, err := tr.finalize(id, want); done || err != nil {
			t.Fatalf("done=%v err=%v, want a poisoned state to stay silent", done, err)
		}
	})
}
