package core

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"sync"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// MetricDigestMismatches counts deliveries whose end-to-end SHA-256
// digest disagreed with the digest the sender minted — corruption that
// slipped past every per-hop chunk checksum, caught at the last line of
// defense.
const MetricDigestMismatches = "core_digest_mismatches_total"

// integrityOptions are the header options an integrity-enabled transfer
// carries: per-chunk CRC-32C framing verified at every depot hop, and a
// whole-object SHA-256 digest the sink checks on completion. The digest
// is computable before the first byte moves because the payload is the
// deterministic session pattern keyed by id.
func integrityOptions(id wire.SessionID, size int64) []wire.Option {
	return []wire.Option{
		wire.ChunkChecksumOption(),
		wire.ContentDigestOption(depot.PatternDigest(id, size)),
	}
}

// sessionWriter returns the writer a sender streams payload through:
// checksummed sessions wrap their writes in CRC-framed chunks so every
// depot hop can verify them, unchecked sessions write raw bytes.
func sessionWriter(sess *lsl.Session) io.Writer {
	if sess.Header.Checksummed() {
		return wire.NewFrameWriter(sess)
	}
	return sess
}

// digestState is one session's running end-to-end digest at the sink.
// next is the absolute object offset digested so far; broken marks a
// state poisoned by a delivery gap — a digest with a hole can never
// match, so the session degrades to unchecked rather than reporting a
// false mismatch.
type digestState struct {
	h      hash.Hash
	next   int64
	broken bool
	// pending buffers segments delivered ahead of the frontier, keyed
	// by absolute offset — only populated for multipath sessions,
	// whose ranges complete out of order. pendingBytes bounds the
	// buffering (see maxDigestPending).
	pending      map[int64][]byte
	pendingBytes int64
}

// maxDigestPending caps the bytes a multipath digest may buffer ahead
// of its frontier. A transfer that outruns the cap degrades to
// unchecked (per-chunk checksums still guard it) rather than growing
// without bound or reporting a false mismatch.
const maxDigestPending = 64 << 20

// digestTracker holds the receiver-side digest state that must span the
// attempts of one logical transfer: the original session and each
// resume continuation after a fault present the same session id, and
// the tracker stitches their verified byte ranges into one running
// hash.
type digestTracker struct {
	mu sync.Mutex
	m  map[wire.SessionID]*digestState
}

// absorb folds p — delivered, pattern-verified bytes at absolute object
// offset off — into the running digest of session id. Overlap with
// bytes an earlier attempt already digested is skipped (a continuation
// may re-send a suffix the sink partly saw in flight); a gap poisons
// the state.
func (t *digestTracker) absorb(id wire.SessionID, off int64, p []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[wire.SessionID]*digestState)
	}
	st, ok := t.m[id]
	if !ok {
		st = &digestState{h: sha256.New()}
		t.m[id] = st
	}
	if st.broken {
		return
	}
	if off > st.next {
		st.broken = true
		return
	}
	if skip := st.next - off; skip > 0 {
		if skip >= int64(len(p)) {
			return
		}
		p = p[skip:]
	}
	st.h.Write(p)
	st.next += int64(len(p))
}

// absorbOutOfOrder is absorb for multipath sessions, whose disjoint
// routes deliver ranges in no particular order: a segment beyond the
// frontier is buffered instead of poisoning the state, and every time
// the frontier advances the buffered segments that now touch it are
// drained into the running hash. Overlap — a stolen range delivered by
// two routes, or a resume continuation re-sending a verified suffix —
// is skipped, so first-ack-wins double completion cannot corrupt the
// digest.
func (t *digestTracker) absorbOutOfOrder(id wire.SessionID, off int64, p []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[wire.SessionID]*digestState)
	}
	st, ok := t.m[id]
	if !ok {
		st = &digestState{h: sha256.New()}
		t.m[id] = st
	}
	if st.broken {
		return
	}
	if off > st.next {
		if st.pendingBytes+int64(len(p)) > maxDigestPending {
			st.broken = true
			st.pending = nil
			return
		}
		if st.pending == nil {
			st.pending = make(map[int64][]byte)
		}
		// Keep the longer segment on a duplicate offset (steal overlap).
		if prev, dup := st.pending[off]; !dup || len(p) > len(prev) {
			st.pendingBytes += int64(len(p) - len(prev))
			st.pending[off] = append([]byte(nil), p...)
		}
		return
	}
	st.write(p, off)
	st.drain()
}

// write folds the suffix of p past the frontier into the hash; off is
// p's absolute offset, at or below the frontier.
func (st *digestState) write(p []byte, off int64) {
	if skip := st.next - off; skip > 0 {
		if skip >= int64(len(p)) {
			return
		}
		p = p[skip:]
	}
	st.h.Write(p)
	st.next += int64(len(p))
}

// drain consumes buffered segments that now touch the frontier,
// repeating until only segments strictly beyond it remain.
func (st *digestState) drain() {
	for {
		advanced := false
		for off, seg := range st.pending {
			if off > st.next {
				continue
			}
			delete(st.pending, off)
			st.pendingBytes -= int64(len(seg))
			if end := off + int64(len(seg)); end > st.next {
				st.write(seg, off)
				advanced = true
			}
		}
		if !advanced {
			return
		}
	}
}

// finalize checks a completed object against the sender's digest. done
// is false while the running digest does not yet cover the whole object
// — a partial delivery whose resume continuation will pick the state
// back up — or when the state was poisoned; err is non-nil only on a
// true end-to-end mismatch. A finalized or poisoned state is removed.
func (t *digestTracker) finalize(id wire.SessionID, want wire.ContentDigest) (done bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.m[id]
	if !ok {
		return false, nil
	}
	if st.broken {
		delete(t.m, id)
		return false, nil
	}
	if st.next != want.Size {
		return false, nil
	}
	delete(t.m, id)
	var sum [sha256.Size]byte
	st.h.Sum(sum[:0])
	if sum != want.Sum {
		return true, fmt.Errorf("%w: object sha256 differs from sender digest over %d bytes", wire.ErrDigest, want.Size)
	}
	return true, nil
}

// drop discards any running digest state for id. Transfer initiators
// call it on exit so an abandoned transfer does not leak sink state.
func (t *digestTracker) drop(id wire.SessionID) {
	t.mu.Lock()
	delete(t.m, id)
	t.mu.Unlock()
}
