package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// PushConfig configures a PushSink.
type PushConfig struct {
	// URL is the collector ingest endpoint (e.g.
	// http://ctl-host:7500/traces/ingest). Required.
	URL string
	// BatchSize is the number of events per POST (DefaultPushBatch when
	// <= 0). A batch is also flushed when FlushInterval elapses with
	// events pending, so a trickle of events still arrives promptly.
	BatchSize int
	// FlushInterval bounds how long a partial batch waits
	// (DefaultPushFlush when <= 0).
	FlushInterval time.Duration
	// Queue is the sink's buffered-event capacity (DefaultPushQueue when
	// <= 0). Emit drops and counts when it is full: a dead collector
	// must never stall the depot data path.
	Queue int
	// Client is the HTTP client to POST with (http.DefaultClient when
	// nil).
	Client *http.Client
}

// Defaults for PushConfig's tunables.
const (
	DefaultPushBatch = 64
	DefaultPushFlush = time.Second
	DefaultPushQueue = 1024
)

// PushSink ships trace events to a remote Collector as batched
// newline-delimited JSON POSTs — the depot-side half of distributed
// tracing. Emit enqueues without blocking (full queue → drop and
// count); a background worker batches and POSTs. Failed POSTs drop the
// batch and count each event: the collector is best-effort by design,
// and the local JSONSink (when configured) remains the lossless record.
type PushSink struct {
	cfg   PushConfig
	ch    chan Event
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	drops atomic.Int64
	dropC atomic.Pointer[Counter]
}

// NewPushSink starts a push sink for the given config.
func NewPushSink(cfg PushConfig) *PushSink {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultPushBatch
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultPushFlush
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultPushQueue
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	s := &PushSink{
		cfg:  cfg,
		ch:   make(chan Event, cfg.Queue),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.run()
	return s
}

// CountDrops mirrors dropped events into ctr (typically
// Registry.Counter(MetricTraceDrops)) and returns the sink for
// chaining.
func (s *PushSink) CountDrops(ctr *Counter) *PushSink {
	s.dropC.Store(ctr)
	return s
}

// Drops returns the number of events lost to queue overflow or failed
// POSTs.
func (s *PushSink) Drops() int64 { return s.drops.Load() }

// Emit implements Sink: enqueue without blocking, drop and count on a
// full queue.
func (s *PushSink) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	select {
	case s.ch <- e:
	default:
		s.drop(1)
	}
}

// Close flushes pending events and stops the worker. Emit after Close
// drops silently.
func (s *PushSink) Close() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

func (s *PushSink) drop(n int64) {
	s.drops.Add(n)
	s.dropC.Load().Add(n)
}

func (s *PushSink) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]Event, 0, s.cfg.BatchSize)
	flush := func() {
		if len(batch) > 0 {
			s.post(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case e := <-s.ch:
			batch = append(batch, e)
			if len(batch) >= s.cfg.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-s.done:
			// Drain what is already queued, then ship the final batch.
			for {
				select {
				case e := <-s.ch:
					batch = append(batch, e)
					if len(batch) >= s.cfg.BatchSize {
						flush()
					}
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}

// post ships one batch as NDJSON. Errors drop the batch, counted.
func (s *PushSink) post(batch []Event) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range batch {
		if err := enc.Encode(e); err != nil {
			s.drop(int64(len(batch)))
			return
		}
	}
	resp, err := s.cfg.Client.Post(s.cfg.URL, "application/x-ndjson", &buf)
	if err != nil {
		s.drop(int64(len(batch)))
		return
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		s.drop(int64(len(batch)))
	}
}
