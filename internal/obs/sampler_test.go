package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestByteSamplerMonotoneSeries(t *testing.T) {
	s := NewByteSampler("uplink", 2*time.Millisecond)
	for i := 0; i < 10; i++ {
		s.Add(1000)
		time.Sleep(3 * time.Millisecond)
	}
	series := s.Stop()
	if s.Total() != 10000 {
		t.Fatalf("total = %d", s.Total())
	}
	if series.Len() < 3 {
		t.Fatalf("only %d samples", series.Len())
	}
	prev := int64(-1)
	for _, p := range series.Points {
		if p.Acked < prev {
			t.Fatalf("series not monotone: %+v", series.Points)
		}
		prev = p.Acked
	}
	if f := series.Final(); f.Acked != 10000 {
		t.Fatalf("final sample = %+v", f)
	}
	// Stop is idempotent.
	if again := s.Stop(); again.Final().Acked != 10000 {
		t.Fatal("second Stop changed the series")
	}
}

func TestSamplerWriterReaderWrappers(t *testing.T) {
	s := NewByteSampler("wrap", time.Millisecond)
	var buf bytes.Buffer
	w := s.Writer(&buf)
	if _, err := w.Write(make([]byte, 123)); err != nil {
		t.Fatal(err)
	}
	r := s.Reader(bytes.NewReader(make([]byte, 77)))
	tmp := make([]byte, 128)
	n, _ := r.Read(tmp)
	s.Stop()
	if got := s.Total(); got != 123+int64(n) {
		t.Fatalf("total = %d, want %d", got, 123+n)
	}
}

func TestSeriesEvents(t *testing.T) {
	s := NewByteSampler("ev", time.Millisecond)
	s.Add(512)
	series := s.Stop()
	base := time.Now()
	events := SeriesEvents(series, base, "deadbeef", 0, "10.0.0.1:7411")
	if len(events) != series.Len() {
		t.Fatalf("%d events for %d points", len(events), series.Len())
	}
	last := events[len(events)-1]
	if last.Kind != KindSample || last.Bytes != 512 || last.Session != "deadbeef" {
		t.Fatalf("last event = %+v", last)
	}
}
