// Package obs is the observability layer of the LSL stack: a lock-free
// metrics registry (counters, gauges, fixed-bucket histograms),
// structured per-session trace events with pluggable sinks, a live
// byte-progress sampler that produces trace.Series-compatible output
// for Figure 4/5-style sequence plots on real transfers, an in-flight
// session table, and an HTTP debug handler that exposes all of it.
//
// The paper's evidence is observational — tcpdump sequence traces whose
// slope knees reveal depot back-pressure — so the depot data path
// reports here rather than being a black box. Everything on the hot
// path is a single atomic operation; registration (name lookup) is the
// only synchronized step and is expected to happen once per metric, at
// setup time.
//
// All types are nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, or a nil Sink are no-ops, so instrumented code needs no
// "is observability configured?" branches.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value; Add makes it usable as an
// occupancy gauge (enqueue +n, dequeue -n).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge reading (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper
// bounds in ascending order; an implicit +Inf bucket catches the
// overflow. Observations are two atomic adds and a CAS loop for the
// float sum — no locks.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one histogram bucket in a snapshot: the count of samples at
// or below UpperBound (non-cumulative per-bucket count).
type Bucket struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

// bucketJSON carries the upper bound as a string so the +Inf overflow
// bucket survives JSON, which has no infinity literal.
type bucketJSON struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketJSON{Le: le, Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var j bucketJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(j.Le, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = j.Count
	return nil
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return out
}

// Registry holds named metrics. Lookup is a sync.Map load (lock-free
// after first registration); callers are expected to resolve metrics
// once and hold the pointers on their hot paths anyway.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter with the given name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, new(Counter))
	return v.(*Counter)
}

// Gauge returns the gauge with the given name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return v.(*Gauge)
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds on first use (later calls reuse the
// original bounds). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram(bounds))
	return v.(*Histogram)
}

// ExpBuckets returns n upper bounds starting at start and growing by
// factor — the usual shape for latency and throughput histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Snapshot is a consistent-enough point-in-time view of a registry:
// each metric is read atomically (cross-metric skew is possible while
// traffic is in flight, which is the point of scraping live).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).snapshot()
		return true
	})
	return s
}

// WriteText renders the snapshot in a flat, expvar-style text format,
// one metric per line, sorted by name:
//
//	depot_sessions_accepted_total 12
//	depot_pipeline_occupancy_bytes 458752
//	depot_chunk_write_seconds_bucket{le="0.001"} 80
//	depot_chunk_write_seconds_count 95
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %g\n", name, h.Count, name, h.Sum); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
