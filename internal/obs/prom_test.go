package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("depot_sessions_total").Add(7)
	reg.Gauge("depot_occupancy_bytes").Set(-3)
	h := reg.Histogram("chunk_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE depot_sessions_total counter",
		"depot_sessions_total 7",
		"# TYPE depot_occupancy_bytes gauge",
		"depot_occupancy_bytes -3",
		"# TYPE chunk_seconds histogram",
		`chunk_seconds_bucket{le="+Inf"} 3`,
		"chunk_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// Buckets must be cumulative and monotonically non-decreasing, with
	// +Inf equal to the total count.
	var last int64 = -1
	var infCount int64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "chunk_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("buckets not cumulative: %q after %d", line, last)
		}
		last = n
		if strings.Contains(line, "+Inf") {
			infCount = n
		}
	}
	if infCount != 3 {
		t.Fatalf("+Inf bucket = %d, want total 3", infCount)
	}

	// Every non-comment line must be `name{labels} value` with a valid
	// Prometheus metric name — the grammar a scraper enforces.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unclosed label set in %q", line)
			}
			name = name[:i]
		}
		if promName(name) != name {
			t.Fatalf("invalid metric name %q", name)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"depot_bytes_total": "depot_bytes_total",
		"weird-name.1":      "weird_name_1",
		"1starts_digit":     "_starts_digit",
		"":                  "_",
		"ns:metric":         "ns:metric",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
