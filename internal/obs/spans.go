package obs

import (
	"sort"
	"time"
)

// HopSpan is the per-sublink breakdown of one hop of one (possibly
// striped) session: the accept→connect→first-byte→last-byte lifecycle
// of a single depot-to-depot sublink, distilled from that sublink's
// raw events. It is the unit the Figure 4/5 timeline renders — one row
// per span, with the store-and-forward vs cut-through question answered
// by how much the span overlaps its upstream hop.
type HopSpan struct {
	// Session is the wire session the sublink belonged to. A retried or
	// rerouted transfer has spans from several sessions under one trace.
	Session string `json:"session"`
	// Hop is the sublink's position in the chain (0 = initiator's leg).
	Hop int `json:"hop"`
	// Stripe is the stripe index for striped sessions, nil otherwise
	// (same convention as Event.Stripe).
	Stripe *int `json:"stripe,omitempty"`
	// Path is the disjoint-route index for multipath sessions, nil
	// otherwise (same convention as Event.Path).
	Path *int `json:"path,omitempty"`
	// Node is the endpoint that reported the span (the accepting depot,
	// or the initiator for hop 0).
	Node string `json:"node,omitempty"`
	// Peer is the remote endpoint of the onward sublink.
	Peer string `json:"peer,omitempty"`

	// Accept, Connect, First and Last are the lifecycle instants; a zero
	// time means the event was never observed (e.g. the sublink died
	// before its first byte). Deliver is set on the final hop only.
	Accept  time.Time `json:"accept,omitempty"`
	Connect time.Time `json:"connect,omitempty"`
	First   time.Time `json:"first,omitempty"`
	Last    time.Time `json:"last,omitempty"`
	Deliver time.Time `json:"deliver,omitempty"`

	// Bytes is the payload total the sublink reported at last-byte (or
	// deliver, whichever is larger).
	Bytes int64 `json:"bytes,omitempty"`
	// Retries is the connection attempts beyond the first, summed from
	// the sublink's events.
	Retries int `json:"retries,omitempty"`
	// Errors counts error/refused events attributed to the sublink.
	Errors int `json:"errors,omitempty"`

	// Overlap is the fraction of this span's streaming window
	// [First,Last] spent concurrently with its upstream hop's window —
	// 1.0 is perfect cut-through pipelining, 0.0 is pure
	// store-and-forward (the upstream hop finished before this one
	// started). Hop-0 spans and spans with unmeasurable windows report 0.
	Overlap float64 `json:"overlap,omitempty"`
}

// Streaming returns the span's [First,Last] streaming window duration,
// or 0 when either endpoint is missing.
func (s HopSpan) Streaming() time.Duration {
	if s.First.IsZero() || s.Last.IsZero() || s.Last.Before(s.First) {
		return 0
	}
	return s.Last.Sub(s.First)
}

// spanKey names one sublink: one hop of one stripe (or disjoint route)
// of one session, as reported by one node.
type spanKey struct {
	session string
	hop     int
	stripe  int // -1 for unstriped
	path    int // -1 for single-path
	node    string
}

// Spans distills per-sublink HopSpans from a trace's raw events. The
// result is ordered by session, stripe, then hop, so a chain reads
// top-to-bottom and a striped transfer groups its stripes. Events that
// carry no lifecycle information (samples, routes) are ignored.
func Spans(events []Event) []HopSpan {
	acc := map[spanKey]*HopSpan{}
	var order []spanKey
	get := func(e Event) *HopSpan {
		k := spanKey{session: e.Session, hop: e.Hop, stripe: -1, path: -1, node: e.Node}
		if idx, ok := e.StripeIndex(); ok {
			k.stripe = idx
		}
		if idx, ok := e.PathIndex(); ok {
			k.path = idx
		}
		if sp := acc[k]; sp != nil {
			return sp
		}
		sp := &HopSpan{Session: e.Session, Hop: e.Hop, Stripe: e.Stripe, Path: e.Path, Node: e.Node}
		acc[k] = sp
		order = append(order, k)
		return sp
	}
	for _, e := range events {
		switch e.Kind {
		case KindAccept:
			sp := get(e)
			if sp.Accept.IsZero() || e.Time.Before(sp.Accept) {
				sp.Accept = e.Time
			}
			if sp.Peer == "" {
				sp.Peer = e.Peer
			}
		case KindConnect:
			sp := get(e)
			if sp.Connect.IsZero() || e.Time.Before(sp.Connect) {
				sp.Connect = e.Time
			}
			sp.Peer = e.Peer
			sp.Retries += e.Retries
		case KindFirstByte:
			sp := get(e)
			if sp.First.IsZero() || e.Time.Before(sp.First) {
				sp.First = e.Time
			}
		case KindLastByte:
			sp := get(e)
			if e.Time.After(sp.Last) {
				sp.Last = e.Time
			}
			if e.Bytes > sp.Bytes {
				sp.Bytes = e.Bytes
			}
		case KindDeliver:
			sp := get(e)
			if e.Time.After(sp.Deliver) {
				sp.Deliver = e.Time
			}
			if e.Bytes > sp.Bytes {
				sp.Bytes = e.Bytes
			}
		case KindRetry:
			sp := get(e)
			sp.Retries++
		case KindError, KindRefused:
			sp := get(e)
			sp.Errors++
		}
	}

	out := make([]HopSpan, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		ap, bp := stripeOrd(a.Path), stripeOrd(b.Path)
		if ap != bp {
			return ap < bp
		}
		ai, bi := stripeOrd(a.Stripe), stripeOrd(b.Stripe)
		if ai != bi {
			return ai < bi
		}
		return a.Hop < b.Hop
	})

	// Pipelining ratio: each hop against the same session/stripe's
	// previous hop. Overlap of the two streaming windows divided by this
	// hop's window — 1.0 means cut-through, 0.0 store-and-forward.
	prev := map[spanKey]*HopSpan{}
	for i := range out {
		sp := &out[i]
		k := spanKey{session: sp.Session, hop: sp.Hop, stripe: stripeOrd(sp.Stripe), path: stripeOrd(sp.Path)}
		up := prev[spanKey{session: k.session, hop: k.hop - 1, stripe: k.stripe, path: k.path}]
		if up == nil && k.stripe >= 0 {
			// Hop 0 (the initiator leg) reports unstriped peers in some
			// paths; fall back to the unstriped upstream.
			up = prev[spanKey{session: k.session, hop: k.hop - 1, stripe: -1, path: k.path}]
		}
		if up != nil {
			sp.Overlap = overlapRatio(up.First, up.Last, sp.First, sp.Last)
		}
		prev[k] = sp
	}
	return out
}

// stripeOrd maps a Stripe (or Path) field to a sortable ordinal: -1
// for absent, the index otherwise.
func stripeOrd(p *int) int {
	if p == nil {
		return -1
	}
	return *p
}

// overlapRatio returns the overlap of [aF,aL] and [bF,bL] as a fraction
// of the second window, clamped to [0,1]; 0 when either window is
// unmeasurable.
func overlapRatio(aF, aL, bF, bL time.Time) float64 {
	if aF.IsZero() || aL.IsZero() || bF.IsZero() || bL.IsZero() {
		return 0
	}
	dur := bL.Sub(bF)
	if dur <= 0 {
		return 0
	}
	lo := bF
	if aF.After(lo) {
		lo = aF
	}
	hi := bL
	if aL.Before(hi) {
		hi = aL
	}
	if !hi.After(lo) {
		return 0
	}
	r := float64(hi.Sub(lo)) / float64(dur)
	if r > 1 {
		r = 1
	}
	return r
}
