package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// MetricTraceDrops is the registry counter name for trace events lost
// to sink failures or overflow (JSONSink encode errors, Collector and
// PushSink queue overflow). Tracing never stalls the data path; this
// counter is how that lossiness stays visible.
const MetricTraceDrops = "trace_drops_total"

// Event kinds emitted along the data path. Per hop, a forwarding depot
// emits Accept (header parsed) → Connect (onward transport dialed) →
// FirstByte (first payload chunk moved) → LastByte (payload finished,
// Bytes carries the hop total). The delivering depot emits Accept →
// Deliver. The initiator reports as hop 0.
const (
	KindAccept    = "accept"
	KindConnect   = "connect"
	KindFirstByte = "first-byte"
	KindLastByte  = "last-byte"
	KindDeliver   = "deliver"
	KindRefused   = "refused"
	KindError     = "error"
	KindSample    = "sample" // periodic cumulative byte progress

	// Recovery events. A retried attempt emits Retry (Detail carries
	// the classified cause, Bytes the acked offset it resumes from); a
	// reroute around a failed depot emits Failover (Detail names the
	// avoided depots, Peer the new first hop); a continuation session
	// that skips already-delivered bytes emits Resume at the sink.
	KindRetry    = "retry"
	KindFailover = "failover"
	KindResume   = "resume"
	// KindRoutes marks control-plane route-table activity: a depot
	// installing (or ignoring as stale) a pushed table, or a controller
	// deciding a host's routes changed. Detail carries the epoch and
	// entry count.
	KindRoutes = "routes"
	// KindQueued marks a session admitted after waiting in a depot's
	// bounded admission queue; Detail carries the wait duration, so a
	// timeline shows queue time separately from transfer time.
	KindQueued = "queued"
	// KindCorrupt marks a chunk-checksum or content-digest failure at
	// this node: the payload that arrived did not match its integrity
	// stamp, so the corruption happened on the inbound hop. Detail
	// carries the verifier's description of the damaged frame.
	KindCorrupt = "corrupt"
	// KindCacheHit marks a depot serving payload from its
	// content-addressed cache instead of pulling it from upstream. Node
	// names the serving depot, Bytes carries the range length served,
	// and Detail the byte range and whether the upstream sublink was
	// short-circuited.
	KindCacheHit = "cache-hit"
)

// Event is one structured, per-session trace record — the JSON-lines
// replacement for ad-hoc log calls, and the real-transfer analogue of
// one tcpdump observation in the paper's Figures 4–5 methodology.
type Event struct {
	// Time is the wall-clock instant of the event.
	Time time.Time `json:"t"`
	// Session is the hex session identifier.
	Session string `json:"session"`
	// Trace is the hex end-to-end trace identifier minted by the
	// transfer's initiator and carried in the wire header's OptTraceID.
	// Unlike Session it survives retries, resumes, failover reroutes,
	// and striping: every event of one logical transfer shares it, so it
	// is the correlation key the trace collector assembles timelines by.
	// Empty when the session carried no trace id.
	Trace string `json:"trace,omitempty"`
	// Hop is the position in the depot chain: 0 is the initiator, 1 the
	// first depot, and so on.
	Hop int `json:"hop"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Node is the endpoint of the reporting process.
	Node string `json:"node,omitempty"`
	// Peer is the remote endpoint of the sublink the event concerns
	// (the next hop for Connect, the source for Accept).
	Peer string `json:"peer,omitempty"`
	// Bytes carries cumulative payload bytes where meaningful
	// (LastByte, Deliver, Sample).
	Bytes int64 `json:"bytes,omitempty"`
	// Stripe is the 0-based stripe index for events of a striped
	// session's sublink chains; unstriped sessions leave it nil, so
	// stripe 0 of a striped session remains distinguishable from an
	// unstriped one. Together with Session and Hop it uniquely names
	// one sublink of one stripe. Use StripeOf to build it and
	// StripeIndex to read it.
	Stripe *int `json:"stripe,omitempty"`
	// Path is the 0-based disjoint-route index for events of a
	// multipath transfer's pinned-route sessions; single-path sessions
	// leave it nil, so route 0 of a multipath set remains
	// distinguishable from an ordinary session. Use PathOf to build it
	// and PathIndex to read it.
	Path *int `json:"path,omitempty"`
	// Retries counts connection attempts before success, when the
	// emitter retries.
	Retries int `json:"retries,omitempty"`
	// Detail carries an error message or free-form annotation.
	Detail string `json:"detail,omitempty"`
}

// StripeOf returns a Stripe field value naming the given 0-based
// stripe index. The pointer distinguishes "stripe 0 of a striped
// session" from "not striped" (a nil field).
func StripeOf(k int) *int { return &k }

// StripeIndex returns the event's stripe index and whether the event
// belongs to a striped session at all.
func (e Event) StripeIndex() (int, bool) {
	if e.Stripe == nil {
		return 0, false
	}
	return *e.Stripe, true
}

// PathOf returns a Path field value naming the given 0-based disjoint
// route index. The pointer distinguishes "route 0 of a multipath set"
// from "not multipath" (a nil field).
func PathOf(k int) *int { return &k }

// PathIndex returns the event's disjoint-route index and whether the
// event belongs to a multipath transfer at all.
func (e Event) PathIndex() (int, bool) {
	if e.Path == nil {
		return 0, false
	}
	return *e.Path, true
}

// Sink consumes trace events. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a plain function to the Sink interface. The function
// must be safe for concurrent calls, as Sink requires.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Emit sends e to sink if it is non-nil, stamping Time when unset.
// Instrumented code calls this instead of branching on configuration.
func Emit(sink Sink, e Event) {
	if sink == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	sink.Emit(e)
}

// JSONSink writes events as JSON lines to an io.Writer, serialized
// under a mutex so concurrent sessions interleave whole lines. Encode
// failures never propagate to the data path (a broken trace file must
// not break the transfer), but they are counted: Drops reports them,
// and CountDrops mirrors them into a registry counter so a silently
// failing trace file is at least visible on /metrics.
type JSONSink struct {
	mu    sync.Mutex
	enc   *json.Encoder
	drops atomic.Int64
	dropC *Counter
}

// NewJSONSink returns a sink writing one JSON object per line to w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// CountDrops mirrors encode failures into c (typically
// Registry.Counter(MetricTraceDrops)) and returns the sink for
// chaining.
func (s *JSONSink) CountDrops(c *Counter) *JSONSink {
	s.mu.Lock()
	s.dropC = c
	s.mu.Unlock()
	return s
}

// Drops returns the number of events lost to encode failures.
func (s *JSONSink) Drops() int64 { return s.drops.Load() }

// Emit implements Sink.
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(e); err != nil {
		s.drops.Add(1)
		s.dropC.Inc()
	}
}

// MemorySink accumulates events in order of arrival, for tests and
// in-process analysis.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Session returns the events of one session, preserving order.
func (s *MemorySink) Session(id string) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, e := range s.events {
		if e.Session == id {
			out = append(out, e)
		}
	}
	return out
}

// MultiSink fans each event out to every member sink.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}
