package obs

import (
	"testing"
	"time"
)

// chainEvents builds the events of a 2-hop pipelined transfer: the
// depot (hop 1) starts streaming halfway through the initiator's
// (hop 0) window and keeps going after it closes.
func chainEvents(base time.Time) []Event {
	sec := func(n int) time.Time { return base.Add(time.Duration(n) * time.Second) }
	return []Event{
		{Time: sec(0), Session: "s", Hop: 0, Kind: KindConnect, Node: "src", Peer: "d1"},
		{Time: sec(1), Session: "s", Hop: 0, Kind: KindFirstByte, Node: "src"},
		{Time: sec(9), Session: "s", Hop: 0, Kind: KindLastByte, Node: "src", Bytes: 1 << 20},
		{Time: sec(2), Session: "s", Hop: 1, Kind: KindAccept, Node: "d1", Peer: "src"},
		{Time: sec(3), Session: "s", Hop: 1, Kind: KindConnect, Node: "d1", Peer: "dst"},
		{Time: sec(5), Session: "s", Hop: 1, Kind: KindFirstByte, Node: "d1"},
		{Time: sec(13), Session: "s", Hop: 1, Kind: KindLastByte, Node: "d1", Bytes: 1 << 20},
		{Time: sec(13), Session: "s", Hop: 1, Kind: KindDeliver, Node: "d1", Bytes: 1 << 20},
	}
}

func TestSpansLifecycleAndOverlap(t *testing.T) {
	base := time.Date(2004, 11, 6, 0, 0, 0, 0, time.UTC)
	spans := Spans(chainEvents(base))
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	h0, h1 := spans[0], spans[1]
	if h0.Hop != 0 || h1.Hop != 1 {
		t.Fatalf("span order: %+v", spans)
	}
	if h0.Streaming() != 8*time.Second {
		t.Fatalf("hop 0 streaming = %v", h0.Streaming())
	}
	if h1.Accept.IsZero() || h1.Connect.IsZero() || h1.Deliver.IsZero() {
		t.Fatalf("hop 1 lifecycle incomplete: %+v", h1)
	}
	if h1.Bytes != 1<<20 {
		t.Fatalf("hop 1 bytes = %d", h1.Bytes)
	}
	// Hop 1 streams seconds 5..13, hop 0 streams 1..9: 4 of hop 1's 8
	// seconds overlap — 50% cut-through.
	if h1.Overlap < 0.49 || h1.Overlap > 0.51 {
		t.Fatalf("hop 1 overlap = %v, want 0.5", h1.Overlap)
	}
	if h0.Overlap != 0 {
		t.Fatalf("hop 0 has no upstream, overlap = %v", h0.Overlap)
	}
}

func TestSpansStoreAndForwardHasZeroOverlap(t *testing.T) {
	base := time.Now()
	sec := func(n int) time.Time { return base.Add(time.Duration(n) * time.Second) }
	spans := Spans([]Event{
		{Time: sec(0), Session: "s", Hop: 0, Kind: KindFirstByte, Node: "a"},
		{Time: sec(2), Session: "s", Hop: 0, Kind: KindLastByte, Node: "a"},
		// The depot buffers the whole object before forwarding.
		{Time: sec(3), Session: "s", Hop: 1, Kind: KindFirstByte, Node: "b"},
		{Time: sec(5), Session: "s", Hop: 1, Kind: KindLastByte, Node: "b"},
	})
	if spans[1].Overlap != 0 {
		t.Fatalf("store-and-forward overlap = %v, want 0", spans[1].Overlap)
	}
}

func TestSpansSeparateStripesAndCountRecovery(t *testing.T) {
	base := time.Now()
	spans := Spans([]Event{
		{Time: base, Session: "s", Hop: 0, Kind: KindConnect, Stripe: StripeOf(0)},
		{Time: base, Session: "s", Hop: 0, Kind: KindConnect, Stripe: StripeOf(1)},
		{Time: base, Session: "s", Hop: 0, Kind: KindRetry, Stripe: StripeOf(1)},
		{Time: base, Session: "s", Hop: 0, Kind: KindError, Stripe: StripeOf(1)},
		{Time: base, Session: "s", Hop: 0, Kind: KindConnect}, // unstriped sibling
	})
	if len(spans) != 3 {
		t.Fatalf("spans = %+v", spans)
	}
	// Unstriped sorts first, then stripes ascending.
	if spans[0].Stripe != nil {
		t.Fatalf("first span should be unstriped, got stripe %d", *spans[0].Stripe)
	}
	if k1, k2 := stripeOrd(spans[1].Stripe), stripeOrd(spans[2].Stripe); k1 != 0 || k2 != 1 {
		t.Fatalf("stripe order: %d, %d", k1, k2)
	}
	if spans[2].Retries != 1 || spans[2].Errors != 1 {
		t.Fatalf("stripe 1 recovery counts: %+v", spans[2])
	}
}

func TestOverlapRatioEdges(t *testing.T) {
	base := time.Now()
	sec := func(n int) time.Time { return base.Add(time.Duration(n) * time.Second) }
	if r := overlapRatio(time.Time{}, sec(1), sec(0), sec(2)); r != 0 {
		t.Fatalf("zero-time window overlap = %v", r)
	}
	if r := overlapRatio(sec(0), sec(10), sec(2), sec(4)); r != 1 {
		t.Fatalf("contained window overlap = %v, want 1", r)
	}
	if r := overlapRatio(sec(0), sec(1), sec(1), sec(1)); r != 0 {
		t.Fatalf("empty window overlap = %v", r)
	}
}
