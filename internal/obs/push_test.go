package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPushSinkDeliversToCollectorIngest(t *testing.T) {
	col := NewCollector(0)
	defer col.Close()
	srv := httptest.NewServer(NewHandler(HandlerConfig{Collector: col}))
	defer srv.Close()

	push := NewPushSink(PushConfig{
		URL:           srv.URL + "/traces/ingest",
		BatchSize:     4,
		FlushInterval: 10 * time.Millisecond,
		Client:        srv.Client(),
	})
	for i := 0; i < 10; i++ {
		push.Emit(Event{Trace: "t-push", Session: "s", Hop: 1, Kind: KindSample})
	}
	push.Close() // flushes the final partial batch
	col.Sync()

	tl, ok := col.Timeline("t-push")
	if !ok || tl.Summary.Events != 10 {
		t.Fatalf("collector got %d of 10 events (ok=%v, drops=%d)",
			tl.Summary.Events, ok, push.Drops())
	}
	if push.Drops() != 0 {
		t.Fatalf("drops = %d on a healthy collector", push.Drops())
	}
}

func TestPushSinkDropsOnDeadCollector(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	push := NewPushSink(PushConfig{
		URL:       srv.URL,
		BatchSize: 2,
		Client:    srv.Client(),
	}).CountDrops(reg.Counter(MetricTraceDrops))
	for i := 0; i < 6; i++ {
		push.Emit(Event{Trace: "t", Kind: KindSample})
	}
	push.Close()

	if push.Drops() != 6 {
		t.Fatalf("drops = %d, want all 6", push.Drops())
	}
	if got := reg.Counter(MetricTraceDrops).Value(); got != 6 {
		t.Fatalf("%s = %d, want 6", MetricTraceDrops, got)
	}
}

func TestPushSinkQueueOverflowNeverBlocks(t *testing.T) {
	// An unreachable URL with a tiny queue: Emit must return immediately
	// and shed load rather than stall the caller.
	push := NewPushSink(PushConfig{
		URL:           "http://127.0.0.1:1/ingest",
		Queue:         2,
		FlushInterval: time.Hour, // no timer flush during the test
	})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			push.Emit(Event{Kind: KindSample})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a full queue")
	}
	push.Close()
	if push.Drops() == 0 {
		t.Fatal("no drops despite unreachable collector")
	}
}
