package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits") // concurrent get-or-create on purpose
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGaugeAddSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("occupancy")
	g.Add(100)
	g.Add(-40)
	if g.Value() != 60 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(7)
	if r.Gauge("occupancy").Value() != 7 {
		t.Fatal("gauge not shared by name")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	// A value exactly on a bound lands in that bound's bucket
	// (inclusive upper bounds).
	for _, v := range []float64{0.5, 1.0} { // -> le=1
		h.Observe(v)
	}
	h.Observe(1.0001) // -> le=10
	h.Observe(10)     // -> le=10
	h.Observe(99.9)   // -> le=100
	h.Observe(1e9)    // -> +Inf overflow
	snap := h.snapshot()
	wantCounts := []int64{2, 2, 1, 1}
	for i, want := range wantCounts {
		if snap.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, snap.Buckets[i].Count, want, snap)
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket should be +Inf")
	}
	if snap.Count != 6 {
		t.Fatalf("count = %d", snap.Count)
	}
}

func TestHistogramSnapshotConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", ExpBuckets(1, 2, 10))
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(float64(i*per+j) / 100)
			}
		}()
	}
	wg.Wait()
	snap := h.snapshot()
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != snap.Count || snap.Count != workers*per {
		t.Fatalf("buckets sum to %d, count %d, want %d", bucketTotal, snap.Count, workers*per)
	}
	// Sum of 0/100 .. 3999/100 = (0+1+...+3999)/100.
	want := float64(workers*per-1) * float64(workers*per) / 2 / 100
	if math.Abs(snap.Sum-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", snap.Sum, want)
	}
	if got := snap.Mean(); math.Abs(got-want/float64(workers*per)) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("buckets = %v", got)
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Add(5)
	r.Histogram("c", []float64{1}).Observe(3)
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Histogram("c", nil).Count() != 0 {
		t.Fatal("nil registry must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("depot_sessions_accepted_total").Add(3)
	r.Gauge("depot_pipeline_occupancy_bytes").Set(1024)
	r.Histogram("depot_chunk_write_seconds", []float64{0.001, 0.1}).Observe(0.0005)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"depot_sessions_accepted_total 3",
		"depot_pipeline_occupancy_bytes 1024",
		`depot_chunk_write_seconds_bucket{le="0.001"} 1`,
		`depot_chunk_write_seconds_bucket{le="+Inf"} 0`,
		"depot_chunk_write_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	var j strings.Builder
	if err := r.Snapshot().WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `"depot_sessions_accepted_total": 3`) {
		t.Fatalf("json output:\n%s", j.String())
	}
}
