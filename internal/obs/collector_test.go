package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCollectorAssemblesByTraceAcrossSessions(t *testing.T) {
	c := NewCollector(0)
	defer c.Close()
	base := time.Date(2004, 11, 6, 0, 0, 0, 0, time.UTC)

	// One logical transfer: session s1 dies, continuation s2 resumes —
	// both carry the same trace id.
	c.Emit(Event{Time: base, Trace: "t1", Session: "s1", Hop: 0, Kind: KindConnect})
	c.Emit(Event{Time: base.Add(time.Second), Trace: "t1", Session: "s1", Hop: 0, Kind: KindRetry})
	c.Emit(Event{Time: base.Add(2 * time.Second), Trace: "t1", Session: "s2", Hop: 0, Kind: KindConnect})
	c.Emit(Event{Time: base.Add(3 * time.Second), Trace: "t1", Session: "s2", Hop: 1, Kind: KindDeliver, Bytes: 4096})
	// An unrelated untraced event groups under its session id.
	c.Emit(Event{Time: base, Session: "legacy", Kind: KindAccept})
	c.Sync()

	sums := c.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	tl, ok := c.Timeline("t1")
	if !ok {
		t.Fatal("trace t1 not found")
	}
	s := tl.Summary
	if s.Events != 4 || s.Sessions != 2 || s.Retries != 1 || s.Bytes != 4096 || s.Hops != 1 {
		t.Fatalf("summary = %+v", s)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Time.Before(tl.Events[i-1].Time) {
			t.Fatalf("timeline out of order at %d: %+v", i, tl.Events)
		}
	}
	if _, ok := c.Timeline("legacy"); !ok {
		t.Fatal("untraced events lost their session-keyed timeline")
	}
	if _, ok := c.Timeline("nope"); ok {
		t.Fatal("unknown trace reported found")
	}
}

func TestCollectorOverflowDropsAndCounts(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(1).CountDrops(reg.Counter(MetricTraceDrops))
	// Stall the worker with a flush so queued events pile up: fill the
	// 1-slot queue, then overflow it.
	c.mu.Lock() // block ingest inside the worker
	c.Emit(Event{Trace: "t", Kind: KindAccept})
	for i := 0; i < 50; i++ {
		c.Emit(Event{Trace: "t", Kind: KindSample})
	}
	c.mu.Unlock()
	c.Close()
	if c.Drops() == 0 {
		t.Fatal("overflow never dropped")
	}
	if got := reg.Counter(MetricTraceDrops).Value(); got != c.Drops() {
		t.Fatalf("counter = %d, drops = %d", got, c.Drops())
	}
	// Nothing vanished silently: kept + dropped = emitted.
	tl, _ := c.Timeline("t")
	if int64(tl.Summary.Events)+c.Drops() != 51 {
		t.Fatalf("kept %d + dropped %d != emitted 51", tl.Summary.Events, c.Drops())
	}
}

func TestCollectorIngestJSONL(t *testing.T) {
	c := NewCollector(0)
	defer c.Close()
	in := `{"t":"2004-11-06T00:00:00Z","session":"s","trace":"t9","hop":1,"kind":"accept"}
{"t":"2004-11-06T00:00:01Z","session":"s","trace":"t9","hop":1,"kind":"deliver","bytes":77}
`
	n, err := c.Ingest(strings.NewReader(in))
	if err != nil || n != 2 {
		t.Fatalf("Ingest = %d, %v", n, err)
	}
	c.Sync()
	tl, ok := c.Timeline("t9")
	if !ok || tl.Summary.Bytes != 77 {
		t.Fatalf("timeline = %+v, ok = %v", tl, ok)
	}

	if _, err := c.Ingest(strings.NewReader("{not json}")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Emit(Event{Kind: KindAccept}) // must not panic
	c.Sync()
	if c.Drops() != 0 || c.Summaries() != nil {
		t.Fatal("nil collector not inert")
	}
	if _, ok := c.Timeline("x"); ok {
		t.Fatal("nil collector found a trace")
	}
}

func TestCollectorSyncIsDeterministic(t *testing.T) {
	c := NewCollector(0)
	defer c.Close()
	for i := 0; i < 1000; i++ {
		c.Emit(Event{Trace: "t", Kind: KindSample})
	}
	c.Sync()
	tl, _ := c.Timeline("t")
	if tl.Summary.Events != 1000 {
		t.Fatalf("after Sync, %d of 1000 events assembled", tl.Summary.Events)
	}
}
