package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` metadata per family, counters and
// gauges as bare samples, histograms as cumulative `_bucket{le=...}`
// series ending in `+Inf` plus `_sum` and `_count`. Metric names are
// sanitized to the Prometheus grammar (invalid runes become `_`), so
// the output scrapes cleanly regardless of registry naming.
func (s Snapshot) WriteProm(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; the snapshot's are
		// per-bucket, so accumulate while writing.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = promFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing anything else with `_`.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation; infinities as +Inf/-Inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
