package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves the debug endpoints over the given registry and
// session table (either may be nil):
//
//	GET /metrics               flat text, one metric per line
//	GET /metrics?format=json   full Snapshot as JSON
//	GET /sessions              in-flight session table as JSON
//	GET /                      plain-text index
//
// It is intended for a loopback or operations network; it exposes no
// mutating routes.
func Handler(reg *Registry, sessions *SessionTable) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		infos := sessions.Snapshot()
		if infos == nil {
			infos = []SessionInfo{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(infos)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("lsl debug endpoints:\n  /metrics\n  /metrics?format=json\n  /sessions\n"))
	})
	return mux
}

func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}
