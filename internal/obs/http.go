package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
)

// HandlerConfig selects what the debug handler exposes. Any field may
// be nil/false; the corresponding routes then answer 404 (or, for
// /metrics and /sessions, serve empty views).
type HandlerConfig struct {
	// Registry backs /metrics.
	Registry *Registry
	// Sessions backs /sessions.
	Sessions *SessionTable
	// Collector backs the trace routes: GET /traces, GET /traces/{id},
	// and POST /traces/ingest (the PushSink target).
	Collector *Collector
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiling endpoints are opt-in even on a debug listener.
	Pprof bool
}

// NewHandler serves the debug endpoints for the configured components:
//
//	GET  /metrics                 flat text, one metric per line
//	GET  /metrics?format=json     full Snapshot as JSON
//	GET  /metrics?format=prom     Prometheus text exposition
//	GET  /sessions                in-flight session table as JSON
//	GET  /traces                  assembled trace summaries as JSON
//	GET  /traces/{id}             one trace's timeline + hop spans
//	POST /traces/ingest           NDJSON event batch (PushSink target)
//	GET  /debug/pprof/...         runtime profiles (when Pprof is set)
//	GET  /                        plain-text index
//
// Format negotiation accepts either the ?format= query parameter or the
// Accept header ("application/json", or "application/openmetrics-text"
// / "text/plain; version=0.0.4" for the Prometheus form). It is
// intended for a loopback or operations network; /traces/ingest is the
// only mutating route.
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := cfg.Registry.Snapshot()
		switch {
		case wantsJSON(r):
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
		case wantsProm(r):
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WriteProm(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
		}
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		infos := cfg.Sessions.Snapshot()
		if infos == nil {
			infos = []SessionInfo{}
		}
		writeJSON(w, infos)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Collector == nil {
			http.NotFound(w, r)
			return
		}
		cfg.Collector.Sync()
		sums := cfg.Collector.Summaries()
		if sums == nil {
			sums = []TraceSummary{}
		}
		writeJSON(w, sums)
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Collector == nil {
			http.NotFound(w, r)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/traces/")
		if rest == "ingest" {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			n, err := cfg.Collector.Ingest(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, map[string]int{"ingested": n})
			return
		}
		if rest == "" || strings.Contains(rest, "/") {
			http.NotFound(w, r)
			return
		}
		cfg.Collector.Sync()
		tl, ok := cfg.Collector.Timeline(rest)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, tl)
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		index := "lsl debug endpoints:\n  /metrics\n  /metrics?format=json\n  /metrics?format=prom\n  /sessions\n"
		if cfg.Collector != nil {
			index += "  /traces\n  /traces/{id}\n  /traces/ingest (POST)\n"
		}
		if cfg.Pprof {
			index += "  /debug/pprof/\n"
		}
		_, _ = w.Write([]byte(index))
	})
	return mux
}

// Handler serves the classic metrics + sessions endpoints — it is
// NewHandler without trace collection or profiling, kept for callers
// predating those.
func Handler(reg *Registry, sessions *SessionTable) http.Handler {
	return NewHandler(HandlerConfig{Registry: reg, Sessions: sessions})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// wantsJSON reports whether the request asked for JSON, by query
// parameter (?format=json) or Accept header.
func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	if r.URL.Query().Get("format") != "" {
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// wantsProm reports whether the request asked for the Prometheus text
// exposition, by query parameter (?format=prom) or Accept header (the
// OpenMetrics type, or text/plain with the 0.0.4 version parameter a
// Prometheus scraper sends).
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	if r.URL.Query().Get("format") != "" {
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		(strings.Contains(accept, "text/plain") && strings.Contains(accept, "version=0.0.4"))
}
