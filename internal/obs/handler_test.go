package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a path with optional Accept header and returns status,
// content type, and body.
func get(t *testing.T, srv *httptest.Server, path, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("negotiated_total").Add(9)
	srv := httptest.NewServer(NewHandler(HandlerConfig{Registry: reg}))
	defer srv.Close()

	// Query parameter wins and is exclusive: format=prom with a JSON
	// Accept header still returns Prometheus text.
	cases := []struct {
		path, accept string
		wantType     string
		wantBody     string
	}{
		{"/metrics", "", "text/plain", "negotiated_total 9"},
		{"/metrics?format=json", "", "application/json", `"negotiated_total": 9`},
		{"/metrics?format=prom", "application/json", "version=0.0.4", "# TYPE negotiated_total counter"},
		{"/metrics", "application/json", "application/json", `"negotiated_total": 9`},
		{"/metrics", "application/openmetrics-text", "version=0.0.4", "# TYPE negotiated_total counter"},
		{"/metrics", "text/plain; version=0.0.4", "version=0.0.4", "negotiated_total 9"},
		{"/metrics?format=text", "application/json", "text/plain", "negotiated_total 9"},
	}
	for _, tc := range cases {
		status, ctype, body := get(t, srv, tc.path, tc.accept)
		if status != 200 {
			t.Fatalf("GET %s (Accept %q): status %d", tc.path, tc.accept, status)
		}
		if !strings.Contains(ctype, tc.wantType) {
			t.Fatalf("GET %s (Accept %q): content type %q, want %q", tc.path, tc.accept, ctype, tc.wantType)
		}
		if !strings.Contains(body, tc.wantBody) {
			t.Fatalf("GET %s (Accept %q): body %q missing %q", tc.path, tc.accept, body, tc.wantBody)
		}
	}
}

func TestHandlerTraceRoutes(t *testing.T) {
	col := NewCollector(0)
	defer col.Close()
	srv := httptest.NewServer(NewHandler(HandlerConfig{Collector: col}))
	defer srv.Close()

	// Ingest a two-event trace through the POST route.
	body := `{"t":"2004-11-06T00:00:00Z","session":"s","trace":"tid1","hop":0,"kind":"connect"}
{"t":"2004-11-06T00:00:02Z","session":"s","trace":"tid1","hop":1,"kind":"deliver","bytes":512}
`
	resp, err := srv.Client().Post(srv.URL+"/traces/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	status, _, listBody := get(t, srv, "/traces", "")
	var sums []TraceSummary
	if status != 200 {
		t.Fatalf("/traces status = %d", status)
	}
	if err := json.Unmarshal([]byte(listBody), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Trace != "tid1" || sums[0].Events != 2 {
		t.Fatalf("summaries = %+v", sums)
	}

	status, _, tlBody := get(t, srv, "/traces/tid1", "")
	if status != 200 {
		t.Fatalf("/traces/tid1 status = %d", status)
	}
	var tl TraceTimeline
	if err := json.Unmarshal([]byte(tlBody), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Summary.Bytes != 512 || len(tl.Events) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}

	if status, _, _ := get(t, srv, "/traces/absent", ""); status != 404 {
		t.Fatalf("unknown trace status = %d", status)
	}
	resp, err = srv.Client().Get(srv.URL + "/traces/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status = %d", resp.StatusCode)
	}
	resp, err = srv.Client().Post(srv.URL+"/traces/ingest", "application/x-ndjson", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ingest status = %d", resp.StatusCode)
	}
}

func TestHandlerTracesAbsentWithoutCollector(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerConfig{}))
	defer srv.Close()
	if status, _, _ := get(t, srv, "/traces", ""); status != 404 {
		t.Fatalf("/traces without collector: status %d", status)
	}
	if status, _, _ := get(t, srv, "/traces/x", ""); status != 404 {
		t.Fatalf("/traces/x without collector: status %d", status)
	}
}

func TestHandlerPprofOptIn(t *testing.T) {
	off := httptest.NewServer(NewHandler(HandlerConfig{}))
	defer off.Close()
	if status, _, _ := get(t, off, "/debug/pprof/", ""); status != 404 {
		t.Fatalf("pprof served without opt-in: status %d", status)
	}

	on := httptest.NewServer(NewHandler(HandlerConfig{Pprof: true}))
	defer on.Close()
	status, _, body := get(t, on, "/debug/pprof/", "")
	if status != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d, body %q", status, body)
	}
}

func TestHandlerIndexListsConfiguredRoutes(t *testing.T) {
	col := NewCollector(0)
	defer col.Close()
	srv := httptest.NewServer(NewHandler(HandlerConfig{Collector: col, Pprof: true}))
	defer srv.Close()
	_, _, body := get(t, srv, "/", "")
	for _, want := range []string{"/metrics?format=prom", "/traces", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}
}
