package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SessionEntry is the live record of one in-flight session at one node.
// The identifying fields are written once at registration; the byte and
// queue counters are updated atomically from the data path.
type SessionEntry struct {
	ID      string // hex session id
	Trace   string // hex end-to-end trace id ("" when the header carried none)
	Type    string // "data", "generate", "multicast", "store", "fetch"
	Src     string // header source endpoint
	Dst     string // header destination endpoint
	Next    string // next-hop endpoint ("" when delivering locally)
	Hop     int    // this node's position in the chain
	Stripe  int    // 0-based stripe index (0 for unstriped sessions)
	Stripes int    // stripe count carried by the header (1 = unstriped)
	Path    int    // 0-based disjoint-route index (0 for single-path sessions)
	Paths   int    // route count carried by the header (1 = single-path)
	Started time.Time

	bytes  atomic.Int64 // payload bytes moved so far
	queued atomic.Int64 // bytes sitting in the pipeline buffer
}

// AddBytes records payload progress.
func (e *SessionEntry) AddBytes(n int64) {
	if e != nil {
		e.bytes.Add(n)
	}
}

// AddQueued moves the pipeline-occupancy figure (positive on enqueue,
// negative on dequeue).
func (e *SessionEntry) AddQueued(n int64) {
	if e != nil {
		e.queued.Add(n)
	}
}

// Bytes returns the payload bytes moved so far.
func (e *SessionEntry) Bytes() int64 {
	if e == nil {
		return 0
	}
	return e.bytes.Load()
}

// SessionInfo is the exported snapshot of a SessionEntry.
type SessionInfo struct {
	ID          string        `json:"session"`
	Trace       string        `json:"trace,omitempty"`
	Type        string        `json:"type"`
	Src         string        `json:"src"`
	Dst         string        `json:"dst"`
	Next        string        `json:"next,omitempty"`
	Hop         int           `json:"hop"`
	Stripe      int           `json:"stripe,omitempty"`
	Stripes     int           `json:"stripes,omitempty"`
	Path        int           `json:"path,omitempty"`
	Paths       int           `json:"paths,omitempty"`
	Started     time.Time     `json:"started"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Bytes       int64         `json:"bytes"`
	QueuedBytes int64         `json:"queued_bytes"`
}

// SessionTable tracks the sessions currently in flight at a node, for
// the /sessions debug endpoint. Registration and snapshot take a
// mutex; per-byte updates go through the entry's atomics and never
// touch the table. A nil table is a no-op.
type SessionTable struct {
	mu sync.Mutex
	m  map[*SessionEntry]struct{}
}

// NewSessionTable returns an empty table.
func NewSessionTable() *SessionTable {
	return &SessionTable{m: make(map[*SessionEntry]struct{})}
}

// Register adds a live session entry; the caller must Remove it when
// the session ends.
func (t *SessionTable) Register(e *SessionEntry) {
	if t == nil || e == nil {
		return
	}
	t.mu.Lock()
	t.m[e] = struct{}{}
	t.mu.Unlock()
}

// Remove drops a finished session.
func (t *SessionTable) Remove(e *SessionEntry) {
	if t == nil || e == nil {
		return
	}
	t.mu.Lock()
	delete(t.m, e)
	t.mu.Unlock()
}

// Len reports the number of in-flight sessions.
func (t *SessionTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Snapshot returns the in-flight sessions ordered by start time.
func (t *SessionTable) Snapshot() []SessionInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	entries := make([]*SessionEntry, 0, len(t.m))
	for e := range t.m {
		entries = append(entries, e)
	}
	t.mu.Unlock()
	now := time.Now()
	out := make([]SessionInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, SessionInfo{
			ID:          e.ID,
			Trace:       e.Trace,
			Type:        e.Type,
			Src:         e.Src,
			Dst:         e.Dst,
			Next:        e.Next,
			Hop:         e.Hop,
			Stripe:      e.Stripe,
			Stripes:     e.Stripes,
			Path:        e.Path,
			Paths:       e.Paths,
			Started:     e.Started,
			Elapsed:     now.Sub(e.Started),
			Bytes:       e.bytes.Load(),
			QueuedBytes: e.queued.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Started.Equal(out[j].Started) {
			return out[i].Started.Before(out[j].Started)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
