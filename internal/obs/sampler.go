package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/trace"
)

// ByteSampler samples a cumulative byte count on a wall-clock interval
// into a trace.Series, so Figure 4/5-style sequence plots (and their
// slope-knee analysis) work on real TCP transfers, not only on tcpsim
// runs. The sampled quantity is bytes the instrumented side has pushed
// into (or pulled out of) its transport — the closest user-level proxy
// for tcpdump's acknowledged-sequence curve: a sender blocked by
// downstream back-pressure flattens exactly where the paper's Figure 5
// knees do, once the kernel socket buffer fills.
//
// Writers call Add (or wrap their stream with Writer/Reader) from any
// goroutine; a single background goroutine owns the series, so there is
// no contention on the data path beyond one atomic add.
type ByteSampler struct {
	start    time.Time
	total    atomic.Int64
	series   *trace.Series
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewByteSampler starts a sampler that records a point every interval
// (minimum 1 ms) into a series with the given name. Call Stop to
// finish and collect the series.
func NewByteSampler(name string, interval time.Duration) *ByteSampler {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	s := &ByteSampler{
		start:  time.Now(),
		series: trace.NewSeries(name),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.run(interval)
	return s
}

func (s *ByteSampler) run(interval time.Duration) {
	defer close(s.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	s.series.Observe(0, 0)
	for {
		select {
		case <-tick.C:
			s.observeNow()
		case <-s.stop:
			s.observeNow()
			return
		}
	}
}

func (s *ByteSampler) observeNow() {
	at := simtime.Time(time.Since(s.start).Seconds())
	s.series.Observe(at, s.total.Load())
}

// Add advances the cumulative byte count.
func (s *ByteSampler) Add(n int64) { s.total.Add(n) }

// Total returns the bytes recorded so far.
func (s *ByteSampler) Total() int64 { return s.total.Load() }

// Stop records a final point and returns the finished series. It is
// idempotent; the series must not be read before Stop returns.
func (s *ByteSampler) Stop() *trace.Series {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	return s.series
}

// Writer returns a wrapper that counts every byte written through it.
func (s *ByteSampler) Writer(w io.Writer) io.Writer { return &countingWriter{w: w, s: s} }

// Reader returns a wrapper that counts every byte read through it.
func (s *ByteSampler) Reader(r io.Reader) io.Reader { return &countingReader{r: r, s: s} }

type countingWriter struct {
	w io.Writer
	s *ByteSampler
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.s.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	s *ByteSampler
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.s.Add(int64(n))
	return n, err
}

// SeriesEvents converts a sampled series into KindSample trace events
// for a session, so a per-hop trace file carries the sequence curve
// alongside the lifecycle events. The wall-clock base anchors the
// series' relative instants.
func SeriesEvents(s *trace.Series, base time.Time, session string, hop int, node string) []Event {
	out := make([]Event, 0, s.Len())
	for _, p := range s.Points {
		out = append(out, Event{
			Time:    base.Add(time.Duration(p.At.Seconds() * float64(time.Second))),
			Session: session,
			Hop:     hop,
			Kind:    KindSample,
			Node:    node,
			Bytes:   p.Acked,
		})
	}
	return out
}
