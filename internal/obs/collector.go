package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector assembles per-trace timelines from events pushed by depots
// and initiators — the central end of the distributed tracing path.
// Events arrive through Emit (it is a Sink, so it can sit directly in a
// MultiSink next to a JSON file) or through Ingest (the HTTP POST body
// of a depot's PushSink batch). A bounded queue decouples ingestion
// from assembly: when the queue is full Emit drops and counts instead
// of blocking, so a slow collector can never stall a depot pump.
//
// Events are correlated by their Trace field; events without one (from
// senders predating trace propagation) fall back to the session id, so
// they still group per session rather than vanishing.
type Collector struct {
	ch    chan Event
	flush chan chan struct{}
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	drops atomic.Int64
	dropC atomic.Pointer[Counter]

	mu     sync.Mutex
	traces map[string]*traceRec
}

// traceRec accumulates one trace's events in arrival order.
type traceRec struct {
	events []Event
}

// DefaultCollectorQueue is the event queue depth a Collector uses when
// NewCollector is given a non-positive size.
const DefaultCollectorQueue = 4096

// NewCollector returns a running collector whose ingestion queue holds
// queue events (DefaultCollectorQueue when <= 0). Close releases its
// worker.
func NewCollector(queue int) *Collector {
	if queue <= 0 {
		queue = DefaultCollectorQueue
	}
	c := &Collector{
		ch:     make(chan Event, queue),
		flush:  make(chan chan struct{}),
		done:   make(chan struct{}),
		traces: make(map[string]*traceRec),
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// CountDrops mirrors queue-overflow drops into ctr (typically
// Registry.Counter(MetricTraceDrops)) and returns the collector for
// chaining.
func (c *Collector) CountDrops(ctr *Counter) *Collector {
	c.dropC.Store(ctr)
	return c
}

// Drops returns the number of events lost to queue overflow.
func (c *Collector) Drops() int64 {
	if c == nil {
		return 0
	}
	return c.drops.Load()
}

// Emit implements Sink: the event is queued for assembly, or dropped
// and counted when the queue is full. It never blocks.
func (c *Collector) Emit(e Event) {
	if c == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	select {
	case c.ch <- e:
	default:
		c.drops.Add(1)
		c.dropC.Load().Inc()
	}
}

// Ingest reads JSON-encoded events from r — one object per line, the
// JSONSink/PushSink wire format — and queues each for assembly. It
// returns the number of events read; a malformed line aborts with an
// error (events before it are already queued).
func (c *Collector) Ingest(r io.Reader) (int, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("obs: ingest event %d: %w", n+1, err)
		}
		c.Emit(e)
		n++
	}
}

// Sync blocks until every event queued before the call is assembled —
// the determinism hook tests and scrapes use before reading timelines.
func (c *Collector) Sync() {
	if c == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case c.flush <- ack:
		<-ack
	case <-c.done:
	}
}

// Close stops the assembly worker. Queued events are drained first;
// Emit after Close drops silently.
func (c *Collector) Close() {
	c.once.Do(func() { close(c.done) })
	c.wg.Wait()
}

// run is the assembly worker: it owns all map writes.
func (c *Collector) run() {
	defer c.wg.Done()
	for {
		select {
		case e := <-c.ch:
			c.ingest(e)
		case ack := <-c.flush:
			c.drain()
			close(ack)
		case <-c.done:
			c.drain()
			return
		}
	}
}

// drain absorbs everything currently queued without blocking.
func (c *Collector) drain() {
	for {
		select {
		case e := <-c.ch:
			c.ingest(e)
		default:
			return
		}
	}
}

// key returns the correlation key events group under.
func key(e Event) string {
	if e.Trace != "" {
		return e.Trace
	}
	return e.Session
}

func (c *Collector) ingest(e Event) {
	k := key(e)
	if k == "" {
		return // no correlation key at all: nothing to assemble under
	}
	c.mu.Lock()
	rec := c.traces[k]
	if rec == nil {
		rec = &traceRec{}
		c.traces[k] = rec
	}
	rec.events = append(rec.events, e)
	c.mu.Unlock()
}

// TraceSummary is the /traces list entry for one assembled trace.
type TraceSummary struct {
	// Trace is the correlation key (the trace id, or the session id for
	// events that carried none).
	Trace string `json:"trace"`
	// Events counts the events assembled so far.
	Events int `json:"events"`
	// Sessions counts the distinct session ids seen — 1 for a clean
	// transfer, more when retries or failover reroutes spawned
	// continuation sessions.
	Sessions int `json:"sessions"`
	// Hops is the deepest hop index seen.
	Hops int `json:"hops"`
	// Stripes counts distinct stripe indices (0 when unstriped).
	Stripes int `json:"stripes"`
	// Paths counts distinct disjoint-route indices (0 when
	// single-path).
	Paths int `json:"paths"`
	// Retries and Failovers count recovery events in the timeline.
	Retries   int `json:"retries"`
	Failovers int `json:"failovers"`
	// Errors counts error and refused events.
	Errors int `json:"errors"`
	// Bytes is the largest delivered byte count reported at the sink,
	// or, when the timeline has no deliver event (e.g. a sender-only
	// trace file), the largest last-byte count.
	Bytes int64 `json:"bytes"`
	// Start and End bound the timeline in wall-clock time.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Summaries lists every assembled trace, most recent first. Call Sync
// first for a read that includes everything already emitted.
func (c *Collector) Summaries() []TraceSummary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]TraceSummary, 0, len(c.traces))
	for k, rec := range c.traces {
		out = append(out, summarize(k, rec.events))
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

func summarize(k string, events []Event) TraceSummary {
	s := TraceSummary{Trace: k, Events: len(events)}
	sessions := map[string]bool{}
	stripes := map[int]bool{}
	paths := map[int]bool{}
	var delivered, lastByte int64
	for _, e := range events {
		if e.Session != "" {
			sessions[e.Session] = true
		}
		if e.Hop > s.Hops {
			s.Hops = e.Hop
		}
		if idx, ok := e.StripeIndex(); ok {
			stripes[idx] = true
		}
		if idx, ok := e.PathIndex(); ok {
			paths[idx] = true
		}
		switch e.Kind {
		case KindRetry:
			s.Retries++
		case KindFailover:
			s.Failovers++
		case KindError, KindRefused:
			s.Errors++
		case KindDeliver:
			if e.Bytes > delivered {
				delivered = e.Bytes
			}
		case KindLastByte:
			if e.Bytes > lastByte {
				lastByte = e.Bytes
			}
		}
		if s.Start.IsZero() || e.Time.Before(s.Start) {
			s.Start = e.Time
		}
		if e.Time.After(s.End) {
			s.End = e.Time
		}
	}
	s.Bytes = delivered
	if delivered == 0 {
		s.Bytes = lastByte
	}
	s.Sessions = len(sessions)
	s.Stripes = len(stripes)
	s.Paths = len(paths)
	return s
}

// TraceTimeline is the /traces/{id} view: the causally ordered events
// of one logical transfer plus the per-hop span breakdown.
type TraceTimeline struct {
	// Summary aggregates the timeline.
	Summary TraceSummary `json:"summary"`
	// Events is the full event list ordered by time (ties keep arrival
	// order, which preserves causality within one emitter).
	Events []Event `json:"events"`
	// Spans is the per-sublink breakdown, ordered by stripe then hop.
	Spans []HopSpan `json:"spans"`
}

// Timeline assembles the ordered timeline of one trace. The boolean
// reports whether the collector has seen the trace at all. Call Sync
// first for a read that includes everything already emitted.
func (c *Collector) Timeline(trace string) (TraceTimeline, bool) {
	if c == nil {
		return TraceTimeline{}, false
	}
	c.mu.Lock()
	rec := c.traces[trace]
	var events []Event
	if rec != nil {
		events = append([]Event(nil), rec.events...)
	}
	c.mu.Unlock()
	if events == nil {
		return TraceTimeline{}, false
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	return TraceTimeline{
		Summary: summarize(trace, events),
		Events:  events,
		Spans:   Spans(events),
	}, true
}
