package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerMetricsTextAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("depot_sessions_accepted_total").Add(5)
	reg.Gauge("depot_pipeline_occupancy_bytes").Set(2048)
	srv := httptest.NewServer(Handler(reg, NewSessionTable()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "depot_sessions_accepted_total 5") {
		t.Fatalf("text metrics:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["depot_sessions_accepted_total"] != 5 || snap.Gauges["depot_pipeline_occupancy_bytes"] != 2048 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHandlerSessions(t *testing.T) {
	tab := NewSessionTable()
	e := &SessionEntry{ID: "cafe", Type: "data", Src: "10.0.0.1:7411",
		Dst: "10.0.0.4:7411", Next: "10.0.0.3:7411", Hop: 1, Started: time.Now()}
	e.AddBytes(999)
	e.AddQueued(32 << 10)
	tab.Register(e)
	srv := httptest.NewServer(Handler(nil, tab))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].ID != "cafe" || infos[0].Bytes != 999 || infos[0].QueuedBytes != 32<<10 {
		t.Fatalf("sessions = %+v", infos)
	}

	tab.Remove(e)
	if tab.Len() != 0 {
		t.Fatal("entry not removed")
	}
	resp, err = srv.Client().Get(srv.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty table served %q", body)
	}
}

func TestHandlerIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/metrics") {
		t.Fatalf("index = %q", body)
	}
	resp, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path status = %d", resp.StatusCode)
	}
}
