package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONSinkWritesValidLines(t *testing.T) {
	var buf strings.Builder
	sink := NewJSONSink(&buf)
	base := time.Date(2004, 11, 6, 0, 0, 0, 0, time.UTC)
	Emit(sink, Event{Time: base, Session: "ab12", Hop: 1, Kind: KindConnect, Peer: "10.0.0.3:7411"})
	Emit(sink, Event{Time: base.Add(time.Second), Session: "ab12", Hop: 1, Kind: KindLastByte, Bytes: 4096})

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[0].Kind != KindConnect || events[1].Bytes != 4096 {
		t.Fatalf("events = %+v", events)
	}
}

func TestEmitStampsTimeAndToleratesNilSink(t *testing.T) {
	Emit(nil, Event{Kind: KindError}) // must not panic
	var mem MemorySink
	Emit(&mem, Event{Session: "x", Kind: KindAccept})
	got := mem.Events()
	if len(got) != 1 || got[0].Time.IsZero() {
		t.Fatalf("events = %+v", got)
	}
}

func TestMemorySinkConcurrentAndSessionFilter(t *testing.T) {
	var mem MemorySink
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := "a"
			if i%2 == 1 {
				id = "b"
			}
			for j := 0; j < 100; j++ {
				mem.Emit(Event{Session: id, Kind: KindSample})
			}
		}()
	}
	wg.Wait()
	if n := len(mem.Events()); n != 800 {
		t.Fatalf("total events = %d", n)
	}
	if n := len(mem.Session("a")); n != 400 {
		t.Fatalf("session a events = %d", n)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b MemorySink
	sink := MultiSink{&a, nil, &b}
	Emit(sink, Event{Session: "s", Kind: KindDeliver})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}

func TestStripeOfRoundTrips(t *testing.T) {
	e := Event{Stripe: StripeOf(0)}
	if k, ok := e.StripeIndex(); !ok || k != 0 {
		t.Fatalf("StripeIndex = %d, %v — stripe 0 must stay distinguishable from unstriped", k, ok)
	}
	if _, ok := (Event{}).StripeIndex(); ok {
		t.Fatal("unstriped event reported a stripe")
	}
	data, err := json.Marshal(Event{Session: "s", Kind: KindConnect, Stripe: StripeOf(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"stripe":0`) {
		t.Fatalf("stripe 0 omitted from JSON: %s", data)
	}
	data, _ = json.Marshal(Event{Session: "s", Kind: KindConnect})
	if strings.Contains(string(data), "stripe") {
		t.Fatalf("unstriped event serialized a stripe: %s", data)
	}
}

// errWriter fails every write, simulating a full disk under -trace-out.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONSinkCountsEncodeDrops(t *testing.T) {
	reg := NewRegistry()
	sink := NewJSONSink(errWriter{}).CountDrops(reg.Counter(MetricTraceDrops))
	for i := 0; i < 3; i++ {
		sink.Emit(Event{Session: "s", Kind: KindSample}) // must not panic or propagate
	}
	if sink.Drops() != 3 {
		t.Fatalf("drops = %d, want 3", sink.Drops())
	}
	if got := reg.Counter(MetricTraceDrops).Value(); got != 3 {
		t.Fatalf("%s = %d, want 3", MetricTraceDrops, got)
	}
}

// TestEmitDisabledIsZeroAlloc guards the instrumentation's off switch:
// with no sink configured, an Emit on the data path must cost nothing.
func TestEmitDisabledIsZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		Emit(nil, Event{Session: "s", Hop: 1, Kind: KindFirstByte})
	})
	if allocs != 0 {
		t.Fatalf("Emit(nil, ...) allocates %v per call", allocs)
	}
}

func BenchmarkEmit(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Emit(nil, Event{Session: "s", Hop: 1, Kind: KindFirstByte})
		}
	})
	b.Run("json", func(b *testing.B) {
		sink := NewJSONSink(io.Discard)
		e := Event{Time: time.Now(), Session: "s", Hop: 1, Kind: KindFirstByte}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Emit(sink, e)
		}
	})
	b.Run("collector", func(b *testing.B) {
		c := NewCollector(b.N + 1)
		defer c.Close()
		e := Event{Time: time.Now(), Trace: "t", Session: "s", Kind: KindSample}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Emit(e)
		}
	})
}
