package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONSinkWritesValidLines(t *testing.T) {
	var buf strings.Builder
	sink := NewJSONSink(&buf)
	base := time.Date(2004, 11, 6, 0, 0, 0, 0, time.UTC)
	Emit(sink, Event{Time: base, Session: "ab12", Hop: 1, Kind: KindConnect, Peer: "10.0.0.3:7411"})
	Emit(sink, Event{Time: base.Add(time.Second), Session: "ab12", Hop: 1, Kind: KindLastByte, Bytes: 4096})

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[0].Kind != KindConnect || events[1].Bytes != 4096 {
		t.Fatalf("events = %+v", events)
	}
}

func TestEmitStampsTimeAndToleratesNilSink(t *testing.T) {
	Emit(nil, Event{Kind: KindError}) // must not panic
	var mem MemorySink
	Emit(&mem, Event{Session: "x", Kind: KindAccept})
	got := mem.Events()
	if len(got) != 1 || got[0].Time.IsZero() {
		t.Fatalf("events = %+v", got)
	}
}

func TestMemorySinkConcurrentAndSessionFilter(t *testing.T) {
	var mem MemorySink
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := "a"
			if i%2 == 1 {
				id = "b"
			}
			for j := 0; j < 100; j++ {
				mem.Emit(Event{Session: id, Kind: KindSample})
			}
		}()
	}
	wg.Wait()
	if n := len(mem.Events()); n != 800 {
		t.Fatalf("total events = %d", n)
	}
	if n := len(mem.Session("a")); n != 400 {
		t.Fatalf("session a events = %d", n)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b MemorySink
	sink := MultiSink{&a, nil, &b}
	Emit(sink, Event{Session: "s", Kind: KindDeliver})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out")
	}
}
