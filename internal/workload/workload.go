// Package workload implements the paper's Section 4.2 evaluation
// driver: a pseudo-random test generator that picks (source,
// destination, 2^n MB) cases, measures each case both directly and over
// the scheduled LSL route, and aggregates per-case speedups. Only pairs
// for which the scheduler chose a depot route are measured, exactly as
// in the paper ("Only routes where the scheduler chose to use depots
// were measured").
package workload

import (
	"fmt"
	"math/rand"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
)

// Test is one generated measurement request.
type Test struct {
	Src, Dst  int
	Size      int64
	Scheduled bool // measure the LSL route (true) or the direct path
}

// Generator produces the paper's pseudo-random tests.
type Generator struct {
	rng  *rand.Rand
	n    int
	pool [][2]int
	// MaxExp bounds the size distribution: size = 2^k MB with
	// 0 <= k < MaxExp (paper: 7, i.e. 1..64 MB).
	MaxExp int
}

// NewGenerator returns a generator drawing uniformly random ordered
// pairs over n hosts.
func NewGenerator(n int, rng *rand.Rand) *Generator {
	return &Generator{rng: rng, n: n, MaxExp: 7}
}

// NewPoolGenerator returns a generator drawing pairs from a fixed pool,
// used to concentrate a bounded measurement budget so each (pair, size)
// case accumulates several direct and scheduled observations.
func NewPoolGenerator(pool [][2]int, rng *rand.Rand) *Generator {
	return &Generator{rng: rng, pool: pool, MaxExp: 7}
}

// Next draws one test: a host pair (uniform over the pool, or over all
// ordered pairs when no pool is set), size 2^k MB, and a fair coin for
// direct vs scheduled.
func (g *Generator) Next() Test {
	var src, dst int
	if len(g.pool) > 0 {
		p := g.pool[g.rng.Intn(len(g.pool))]
		src, dst = p[0], p[1]
	} else {
		src = g.rng.Intn(g.n)
		dst = g.rng.Intn(g.n - 1)
		if dst >= src {
			dst++
		}
	}
	k := g.rng.Intn(g.MaxExp)
	return Test{
		Src:       src,
		Dst:       dst,
		Size:      int64(1) << (20 + k),
		Scheduled: g.rng.Intn(2) == 0,
	}
}

// Runner executes generated tests against a topology via the planner.
type Runner struct {
	Topo    *topo.Topology
	Planner *schedule.Planner
	Eng     *netsim.Engine
	Rng     *rand.Rand
	Agg     *stats.SpeedupAggregator

	// ReplanEvery rebuilds the plan after this many executed
	// measurements, standing in for the paper's 5-minute re-scheduling
	// interval. Zero keeps the initial plan for the whole run.
	ReplanEvery int
	// FeedObservations feeds each measured bandwidth back into the NWS
	// monitor so replans see fresh data.
	FeedObservations bool
	// ReprimeOnReplan re-feeds one fresh NWS probe per ordered host
	// pair before every replan, modelling the background sensors that
	// run continuously between scheduling rounds. Without it a replan
	// only sees whatever direct-transfer observations happened to
	// arrive.
	ReprimeOnReplan bool

	executed int
	skipped  int
}

// NewRunner wires a runner over t with an already-primed-and-planned
// planner.
func NewRunner(t *topo.Topology, p *schedule.Planner, eng *netsim.Engine, rng *rand.Rand) *Runner {
	return &Runner{
		Topo:    t,
		Planner: p,
		Eng:     eng,
		Rng:     rng,
		Agg:     stats.NewSpeedupAggregator(),
	}
}

// Executed reports how many measurements have run.
func (r *Runner) Executed() int { return r.executed }

// Skipped reports how many generated tests were discarded because the
// scheduler chose the direct route for the pair.
func (r *Runner) Skipped() int { return r.skipped }

// RunOne executes one test if its pair has a scheduled depot route,
// recording the result in the aggregator. It reports whether the test
// was executed.
func (r *Runner) RunOne(t Test) (bool, error) {
	path, err := r.Planner.Path(t.Src, t.Dst)
	if err != nil {
		return false, err
	}
	if len(path) <= 2 {
		r.skipped++
		return false, nil
	}

	var chain pipesim.Chain
	if t.Scheduled {
		chain, err = r.Topo.RelayChain(path, t.Size, r.Rng, false)
		if err != nil {
			return false, err
		}
	} else {
		chain = r.Topo.DirectChain(t.Src, t.Dst, t.Size, r.Rng, false)
	}
	res, err := pipesim.Run(r.Eng, chain)
	if err != nil {
		return false, fmt.Errorf("workload: %s", err)
	}

	key := stats.CaseKey{
		Source: r.Topo.Hosts[t.Src].Name,
		Dest:   r.Topo.Hosts[t.Dst].Name,
		Size:   t.Size,
	}
	if t.Scheduled {
		r.Agg.AddScheduled(key, res.Bandwidth)
	} else {
		r.Agg.AddDirect(key, res.Bandwidth)
		if r.FeedObservations {
			// Direct transfers double as end-to-end measurements.
			if err := r.Planner.Observe(key.Source, key.Dest, res.Bandwidth); err != nil {
				return false, err
			}
		}
	}

	r.executed++
	// One measurement is one tick of wall-clock on the testbed: the
	// slow per-host load walk (when the topology enables it) advances.
	r.Topo.AdvanceLoad(r.Rng)
	if r.ReplanEvery > 0 && r.executed%r.ReplanEvery == 0 {
		if r.ReprimeOnReplan {
			if err := r.Planner.Prime(r.Rng, 1); err != nil {
				return false, err
			}
		}
		if err := r.Planner.Replan(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Run draws tests from gen until measurements tests have executed.
// To guarantee termination on topologies where depot routes are rare,
// it gives up after 1000×measurements draws.
func (r *Runner) Run(gen *Generator, measurements int) error {
	budget := 1000 * measurements
	for r.executed < measurements && budget > 0 {
		budget--
		if _, err := r.RunOne(gen.Next()); err != nil {
			return err
		}
	}
	if r.executed < measurements {
		return fmt.Errorf("workload: only %d/%d measurements executed (scheduler rarely picks depots here)",
			r.executed, measurements)
	}
	return nil
}

// MeasurePair runs reps direct and reps scheduled transfers for one
// pair at one size, regardless of whether the planner chose a relay
// (used by the Figure 11 experiment, where all pairs are measured both
// ways). It records results in the aggregator and returns the planned
// path.
func (r *Runner) MeasurePair(src, dst int, size int64, reps int) ([]int, error) {
	path, err := r.Planner.Path(src, dst)
	if err != nil {
		return nil, err
	}
	if path == nil {
		return nil, fmt.Errorf("workload: no route %s→%s",
			r.Topo.Hosts[src].Name, r.Topo.Hosts[dst].Name)
	}
	key := stats.CaseKey{
		Source: r.Topo.Hosts[src].Name,
		Dest:   r.Topo.Hosts[dst].Name,
		Size:   size,
	}
	for i := 0; i < reps; i++ {
		direct := r.Topo.DirectChain(src, dst, size, r.Rng, false)
		res, err := pipesim.Run(r.Eng, direct)
		if err != nil {
			return nil, err
		}
		r.Agg.AddDirect(key, res.Bandwidth)
		r.executed++

		var chain pipesim.Chain
		if len(path) > 2 {
			chain, err = r.Topo.RelayChain(path, size, r.Rng, false)
			if err != nil {
				return nil, err
			}
		} else {
			chain = r.Topo.DirectChain(src, dst, size, r.Rng, false)
		}
		res, err = pipesim.Run(r.Eng, chain)
		if err != nil {
			return nil, err
		}
		r.Agg.AddScheduled(key, res.Bandwidth)
		r.executed++
	}
	return path, nil
}
