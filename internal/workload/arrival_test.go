package workload

import (
	"math/rand"
	"testing"
	"time"
)

// TestArrivalFirstSessionImmediate: every process releases session 0
// with no delay, so a load's first transfer starts at t=0.
func TestArrivalFirstSessionImmediate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	procs := []ArrivalProcess{
		PoissonArrivals{Rate: 10},
		UniformArrivals{Every: time.Second},
		BurstArrivals{Size: 4, Gap: time.Second},
	}
	for _, p := range procs {
		if d := p.Delay(0, rng); d != 0 {
			t.Fatalf("%T released session 0 after %v, want immediately", p, d)
		}
	}
}

// TestPoissonZeroRate: a zero (or negative) rate must degrade to the
// all-at-once closed load, not divide by zero or stall.
func TestPoissonZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0, -3} {
		p := PoissonArrivals{Rate: rate}
		for i := 0; i < 100; i++ {
			if d := p.Delay(i, rng); d != 0 {
				t.Fatalf("rate %.0f delayed session %d by %v", rate, i, d)
			}
		}
	}
}

// TestPoissonMeanDelay: with a real rate the mean inter-arrival delay
// must approximate 1/rate.
func TestPoissonMeanDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := PoissonArrivals{Rate: 100} // mean gap 10ms
	const n = 5000
	var sum time.Duration
	for i := 1; i <= n; i++ {
		sum += p.Delay(i, rng)
	}
	mean := sum / n
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Fatalf("mean inter-arrival %v, want ≈10ms", mean)
	}
}

// TestUniformSpacing: fixed spacing after the first session, and
// non-positive intervals release at once.
func TestUniformSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformArrivals{Every: 50 * time.Millisecond}
	for i := 1; i < 10; i++ {
		if d := u.Delay(i, rng); d != 50*time.Millisecond {
			t.Fatalf("session %d delay %v", i, d)
		}
	}
	if d := (UniformArrivals{}).Delay(5, rng); d != 0 {
		t.Fatalf("zero interval delayed by %v", d)
	}
}

// TestBurstShape: back-to-back groups of Size separated by Gap; only
// the first session of each later group waits.
func TestBurstShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := BurstArrivals{Size: 3, Gap: time.Second}
	want := []time.Duration{0, 0, 0, time.Second, 0, 0, time.Second, 0}
	for i, w := range want {
		if d := b.Delay(i, rng); d != w {
			t.Fatalf("session %d delay %v, want %v", i, d, w)
		}
	}
}

// TestBurstDegenerate: a single-session burst is uniform pacing, and
// size below 1 must not panic on the modulo.
func TestBurstDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{1, 0, -2} {
		b := BurstArrivals{Size: size, Gap: time.Second}
		for i := 1; i < 5; i++ {
			if d := b.Delay(i, rng); d != time.Second {
				t.Fatalf("size %d session %d delay %v, want 1s", size, i, d)
			}
		}
	}
	// Zero gap releases everything at once regardless of size.
	if d := (BurstArrivals{Size: 3}).Delay(3, rng); d != 0 {
		t.Fatalf("zero-gap burst delayed by %v", d)
	}
}

// TestSingleSessionLoad: a load of one session never waits under any
// process — the single-session edge of every arrival shape.
func TestSingleSessionLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	procs := []ArrivalProcess{
		PoissonArrivals{Rate: 1},
		UniformArrivals{Every: time.Hour},
		BurstArrivals{Size: 1, Gap: time.Hour},
	}
	for _, p := range procs {
		if d := p.Delay(0, rng); d != 0 {
			t.Fatalf("%T delayed a single-session load by %v", p, d)
		}
	}
}
