package workload

import (
	"math/rand"
	"testing"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
)

func TestGeneratorDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGenerator(10, rng)
	sizes := map[int64]bool{}
	var scheduled, direct int
	for i := 0; i < 2000; i++ {
		tt := g.Next()
		if tt.Src == tt.Dst {
			t.Fatal("generated self-pair")
		}
		if tt.Src < 0 || tt.Src >= 10 || tt.Dst < 0 || tt.Dst >= 10 {
			t.Fatalf("pair out of range: %+v", tt)
		}
		sizes[tt.Size] = true
		if tt.Scheduled {
			scheduled++
		} else {
			direct++
		}
	}
	if len(sizes) != 7 {
		t.Fatalf("distinct sizes = %d, want 7 (1..64 MB)", len(sizes))
	}
	for s := range sizes {
		if s < 1<<20 || s > 64<<20 {
			t.Fatalf("size %d outside 1..64MB", s)
		}
	}
	// Fair coin: neither kind should dominate badly.
	if scheduled < 800 || direct < 800 {
		t.Fatalf("unbalanced kinds: %d scheduled, %d direct", scheduled, direct)
	}
}

func TestPoolGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := [][2]int{{1, 2}, {3, 4}}
	g := NewPoolGenerator(pool, rng)
	for i := 0; i < 100; i++ {
		tt := g.Next()
		if !(tt.Src == 1 && tt.Dst == 2) && !(tt.Src == 3 && tt.Dst == 4) {
			t.Fatalf("pair %d,%d outside pool", tt.Src, tt.Dst)
		}
	}
}

func TestGeneratorCustomMaxExp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGenerator(5, rng)
	g.MaxExp = 2
	for i := 0; i < 100; i++ {
		if s := g.Next().Size; s != 1<<20 && s != 2<<20 {
			t.Fatalf("size %d with MaxExp=2", s)
		}
	}
}

func planned(t *testing.T, tp *topo.Topology) *schedule.Planner {
	t.Helper()
	p, err := schedule.NewPlanner(tp, schedule.DefaultEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := p.Prime(rng, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Replan(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunOneSkipsDirectPairs(t *testing.T) {
	tp := topo.TwoPath()
	p := planned(t, tp)
	r := NewRunner(tp, p, netsim.New(1), rand.New(rand.NewSource(5)))

	// Find a pair the scheduler routes directly.
	var src, dst int = -1, -1
	for s := 0; s < tp.N() && src < 0; s++ {
		for d := 0; d < tp.N(); d++ {
			if s == d {
				continue
			}
			rel, err := p.Relayed(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if !rel {
				src, dst = s, d
				break
			}
		}
	}
	if src < 0 {
		t.Skip("every pair relayed in this topology")
	}
	ran, err := r.RunOne(Test{Src: src, Dst: dst, Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("direct pair should be skipped")
	}
	if r.Skipped() != 1 || r.Executed() != 0 {
		t.Fatalf("counters: skipped=%d executed=%d", r.Skipped(), r.Executed())
	}
}

func TestRunOneExecutesRelayedPair(t *testing.T) {
	tp := topo.TwoPath()
	p := planned(t, tp)
	r := NewRunner(tp, p, netsim.New(1), rand.New(rand.NewSource(5)))
	ucsb, uiuc := tp.MustHost(topo.UCSB), tp.MustHost(topo.UIUC)
	rel, err := p.Relayed(ucsb, uiuc)
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Skip("UCSB→UIUC not relayed under this seed")
	}
	for _, scheduled := range []bool{true, false} {
		ran, err := r.RunOne(Test{Src: ucsb, Dst: uiuc, Size: 2 << 20, Scheduled: scheduled})
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatal("relayed pair should run")
		}
	}
	if r.Executed() != 2 {
		t.Fatalf("executed = %d", r.Executed())
	}
	rows := r.Agg.BySize()
	if len(rows) != 1 || rows[0].Cases != 1 {
		t.Fatalf("aggregation rows = %+v", rows)
	}
}

func TestRunReachesTarget(t *testing.T) {
	tp := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	p := planned(t, tp)
	r := NewRunner(tp, p, netsim.New(2), rand.New(rand.NewSource(6)))
	gen := NewGenerator(tp.N(), rand.New(rand.NewSource(7)))
	gen.MaxExp = 3 // keep sizes small for test speed
	if err := r.Run(gen, 60); err != nil {
		t.Fatal(err)
	}
	if r.Executed() != 60 {
		t.Fatalf("executed = %d", r.Executed())
	}
	if r.Agg.Measurements() != 60 {
		t.Fatalf("aggregator measurements = %d", r.Agg.Measurements())
	}
}

func TestRunnerReplanCadence(t *testing.T) {
	tp := topo.PlanetLab(topo.DefaultPlanetLab(), 1)
	p := planned(t, tp)
	before := p.Replans()
	r := NewRunner(tp, p, netsim.New(2), rand.New(rand.NewSource(6)))
	r.ReplanEvery = 10
	r.FeedObservations = true
	gen := NewGenerator(tp.N(), rand.New(rand.NewSource(7)))
	gen.MaxExp = 2
	if err := r.Run(gen, 30); err != nil {
		t.Fatal(err)
	}
	if got := p.Replans() - before; got != 3 {
		t.Fatalf("replans during run = %d, want 3", got)
	}
}

func TestMeasurePair(t *testing.T) {
	tp := topo.TwoPath()
	p := planned(t, tp)
	r := NewRunner(tp, p, netsim.New(3), rand.New(rand.NewSource(8)))
	ucsb, uiuc := tp.MustHost(topo.UCSB), tp.MustHost(topo.UIUC)
	path, err := r.MeasurePair(ucsb, uiuc, 2<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != ucsb || path[len(path)-1] != uiuc {
		t.Fatalf("path = %v", path)
	}
	if r.Executed() != 6 { // 3 direct + 3 scheduled
		t.Fatalf("executed = %d", r.Executed())
	}
	rows := r.Agg.BySize()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Box.N != 1 {
		t.Fatalf("cases = %d", rows[0].Box.N)
	}
}
