package workload

import (
	"math/rand"
	"time"
)

// ArrivalProcess produces the inter-arrival delay before each session
// of a generated load. Sessions are indexed from 0; every process
// releases session 0 immediately, so a run's first transfer never
// waits. Implementations must be usable from a single launcher
// goroutine (the rng is not shared).
type ArrivalProcess interface {
	// Delay returns how long the launcher waits before releasing
	// session i, measured from the release of session i-1.
	Delay(i int, rng *rand.Rand) time.Duration
}

// PoissonArrivals releases sessions as a Poisson process: delays are
// exponentially distributed with mean 1/Rate. Rate is sessions per
// second of wall time. A zero or negative rate degrades to releasing
// everything at once — the "closed" load where all sessions contend
// from the start — rather than dividing by zero or stalling forever.
type PoissonArrivals struct {
	Rate float64
}

// Delay implements ArrivalProcess.
func (p PoissonArrivals) Delay(i int, rng *rand.Rand) time.Duration {
	if i == 0 || p.Rate <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// UniformArrivals spaces sessions a fixed interval apart — the paced
// open load. A non-positive interval releases everything at once.
type UniformArrivals struct {
	Every time.Duration
}

// Delay implements ArrivalProcess.
func (u UniformArrivals) Delay(i int, rng *rand.Rand) time.Duration {
	if i == 0 || u.Every <= 0 {
		return 0
	}
	return u.Every
}

// BurstArrivals releases sessions in back-to-back groups of Size
// separated by Gap — the flash-crowd shape that stresses a depot's
// admission queue. Size below 1 is treated as 1 (degenerating to
// UniformArrivals), and a non-positive Gap releases everything at
// once.
type BurstArrivals struct {
	Size int
	Gap  time.Duration
}

// Delay implements ArrivalProcess.
func (b BurstArrivals) Delay(i int, rng *rand.Rand) time.Duration {
	if i == 0 || b.Gap <= 0 {
		return 0
	}
	size := b.Size
	if size < 1 {
		size = 1
	}
	if i%size == 0 {
		return b.Gap
	}
	return 0
}
